(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md §3) and offers Bechamel micro-benchmarks of the
   computational kernels.

   Usage: main.exe [-j N|--jobs N] [table1|table2|table3|fig2|fig3|fig4|fig5|
                    table4|fig6|fig7|table5|table6|micro|all]  (default: all)

   RATS_SCALE=smoke (default, 149 configurations) or paper (the full 557).
   RATS_JOBS / -j picks the pool size (default: all cores); RATS_CACHE=off
   disables the on-disk result cache under bench_results/.cache. Every run
   writes wall time, jobs and cache hit/miss counts per executed target to
   BENCH_runtime.json. *)

module Suite = Rats_daggen.Suite
module Cluster = Rats_platform.Cluster
module Core = Rats_core
module Exp = Rats_exp
module Pool = Rats_runtime.Pool
module Cache = Rats_runtime.Cache
module Report = Rats_runtime.Report

let ppf = Format.std_formatter
let scale = Suite.scale_of_env ()

let scale_name = match scale with Suite.Smoke -> "smoke" | Suite.Paper -> "paper"

(* Set from the command line before any target runs; the lazies below read
   them at force time. *)
let jobs = ref (Pool.default_jobs ())
let cache = ref (Cache.of_env ())
let report = ref (Report.create ~scale:scale_name ~jobs:1 ())

let results_dir = "bench_results"

let ensure_results_dir () =
  if not (Sys.file_exists results_dir) then Unix.mkdir results_dir 0o755

let section title =
  Format.fprintf ppf "@.=== %s ===@." title

let timed label f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Format.fprintf ppf "(%s computed in %.1fs)@." label (Unix.gettimeofday () -. t0);
  r

(* Wall time and cache-counter deltas of one executed bench target, recorded
   for BENCH_runtime.json. *)
let recorded label f =
  let hits0, misses0 =
    match !cache with Some c -> (Cache.hits c, Cache.misses c) | None -> (0, 0)
  in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let hits1, misses1 =
    match !cache with Some c -> (Cache.hits c, Cache.misses c) | None -> (0, 0)
  in
  Report.record !report ~label
    ~wall_s:(Unix.gettimeofday () -. t0)
    ~cache_hits:(hits1 - hits0) ~cache_misses:(misses1 - misses0);
  r

(* Expensive inputs shared between figures. *)
let naive_grillon =
  lazy
    (timed "naive suite on grillon" (fun () ->
         Exp.Runner.run_suite ~progress:true ~jobs:!jobs ?cache:!cache scale
           Cluster.grillon))

let table4_data =
  lazy
    (timed "parameter tuning (Table IV)" (fun () ->
         Exp.Tuning.table4 ~jobs:!jobs ?cache:!cache scale))

let tuned_per_cluster =
  lazy
    (timed "tuned suites on all clusters" (fun () ->
         let table = Lazy.force table4_data in
         List.map
           (fun c ->
             ( c.Cluster.name,
               Exp.Figures.run_tuned_suite ~jobs:!jobs ?cache:!cache scale
                 table c ))
           Cluster.presets))

let tuned_grillon () = List.assoc "grillon" (Lazy.force tuned_per_cluster)

let run_table1 () =
  section "Table I";
  Exp.Figures.table1 ppf

let run_table2 () =
  section "Table II";
  Exp.Figures.table2 ppf

let run_table3 () =
  section "Table III";
  Exp.Figures.table3 ppf scale

let run_fig2 () =
  section "Figure 2";
  let results = Lazy.force naive_grillon in
  Exp.Figures.fig2 ppf results;
  ensure_results_dir ();
  let path = Filename.concat results_dir "naive_grillon.csv" in
  Exp.Figures.write_csv path results;
  Format.fprintf ppf "(full data: %s)@." path

let run_fig3 () =
  section "Figure 3";
  Exp.Figures.fig3 ppf (Lazy.force naive_grillon)

let run_fig4 () =
  section "Figure 4";
  let points =
    timed "delta sweep on FFT/grillon" (fun () ->
        let configs = Exp.Tuning.tuning_configs scale `Fft in
        Exp.Tuning.sweep_delta_for ~jobs:!jobs ?cache:!cache Cluster.grillon
          configs)
  in
  Exp.Figures.fig4 ppf points

let run_fig5 () =
  section "Figure 5";
  let points =
    timed "time-cost sweep on irregular/grillon" (fun () ->
        let configs = Exp.Tuning.tuning_configs scale `Irregular in
        Exp.Tuning.sweep_timecost_for ~jobs:!jobs ?cache:!cache Cluster.grillon
          configs)
  in
  Exp.Figures.fig5 ppf points

let run_table4 () =
  section "Table IV";
  Exp.Figures.table4 ppf (Lazy.force table4_data)

let run_fig6 () =
  section "Figure 6";
  let results = tuned_grillon () in
  Exp.Figures.fig6 ppf results;
  ensure_results_dir ();
  let path = Filename.concat results_dir "tuned_grillon.csv" in
  Exp.Figures.write_csv path results;
  Format.fprintf ppf "(full data: %s)@." path

let run_fig7 () =
  section "Figure 7";
  Exp.Figures.fig7 ppf (tuned_grillon ())

let run_table5 () =
  section "Table V";
  Exp.Figures.table5 ppf (Lazy.force tuned_per_cluster)

let run_table6 () =
  section "Table VI";
  Exp.Figures.table6 ppf (Lazy.force tuned_per_cluster)

let run_ablations () =
  section "Ablations";
  timed "ablation studies" (fun () ->
      Exp.Ablation.print_all ~jobs:!jobs ?cache:!cache ppf scale)

let run_ccr () =
  section "CCR crossover (extension)";
  (* Half the study set: the sweep re-simulates every configuration six
     times. *)
  let configs =
    List.filteri (fun i _ -> i mod 2 = 0) (Exp.Ablation.study_configs scale)
  in
  let points =
    timed "CCR sweep" (fun () ->
        Exp.Ccr_sweep.run ~jobs:!jobs ?cache:!cache Cluster.grillon configs)
  in
  Exp.Ccr_sweep.print ppf points

let run_autotune () =
  section "Automatic tuning";
  let configs = Exp.Ablation.study_configs scale in
  let rows =
    timed "selector study" (fun () ->
        Exp.Autotune.selector_study ~jobs:!jobs ?cache:!cache Cluster.grillon
          configs)
  in
  Format.fprintf ppf
    "mean makespan relative to HCPA over %d configurations (grillon):@."
    (List.length configs);
  List.iter
    (fun (name, v) -> Format.fprintf ppf "  %-18s %.3f@." name v)
    rows

(* --- Bechamel micro-benchmarks ------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let cluster = Cluster.grillon in
  let fft_cfg = { Suite.spec = Suite.Fft { k = 8 }; sample = 0 } in
  let dag = Suite.generate fft_cfg in
  let problem = Core.Problem.make ~dag ~cluster in
  let alloc = Core.Hcpa.allocate problem in
  let schedule = Core.Rats.schedule ~alloc problem Core.Rats.Baseline in
  let flows =
    Array.init 128 (fun i ->
        {
          Rats_sim.Maxmin.links = [| i mod 20; 20 + (i mod 15) |];
          rate_cap = 1e9;
        })
  in
  let sender = Rats_util.Procset.range 0 8 in
  let receiver = Rats_util.Procset.range 4 12 in
  Test.make_grouped ~name:"rats"
    [
      Test.make ~name:"maxmin-128flows"
        (Staged.stage (fun () ->
             ignore
               (Rats_sim.Maxmin.solve ~n_links:47
                  ~capacity:(fun _ -> 1.25e8)
                  flows)));
      Test.make ~name:"comm-matrix-32x24"
        (Staged.stage (fun () ->
             ignore (Rats_redist.Block.comm_matrix ~amount:1e9 ~senders:32 ~receivers:24)));
      Test.make ~name:"redist-plan"
        (Staged.stage (fun () ->
             ignore (Rats_redist.Redistribution.plan ~sender ~receiver ~bytes:1e9 ())));
      Test.make ~name:"hcpa-alloc-fft8"
        (Staged.stage (fun () -> ignore (Core.Hcpa.allocate problem)));
      Test.make ~name:"rats-timecost-map-fft8"
        (Staged.stage (fun () ->
             ignore
               (Core.Rats.schedule ~alloc problem
                  (Core.Rats.Timecost Core.Rats.naive_timecost))));
      Test.make ~name:"simulate-fft8"
        (Staged.stage (fun () -> ignore (Core.Evaluate.run schedule)));
    ]

let run_micro () =
  section "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg [ instance ] (micro_tests ()) in
  let results = Analyze.all ols instance raw in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> t
        | _ -> nan
      in
      Format.fprintf ppf "  %-28s %12.1f ns/run@." name ns)
    results

let targets =
  [
    ("table1", run_table1);
    ("table2", run_table2);
    ("table3", run_table3);
    ("fig2", run_fig2);
    ("fig3", run_fig3);
    ("fig4", run_fig4);
    ("fig5", run_fig5);
    ("table4", run_table4);
    ("fig6", run_fig6);
    ("fig7", run_fig7);
    ("table5", run_table5);
    ("table6", run_table6);
    ("ablations", run_ablations);
    ("ccr", run_ccr);
    ("autotune", run_autotune);
    ("micro", run_micro);
  ]

let run_all () =
  Format.fprintf ppf "RATS benchmark harness — scale: %s (%d configurations)@."
    scale_name (Suite.n_configs scale);
  List.iter (fun (label, run) -> recorded label run) targets

(* Minimal flag parsing: [-j N], [--jobs N], [--jobs=N] anywhere; the first
   remaining argument is the target. *)
let parse_argv () =
  let cmd = ref None in
  let bad what =
    Format.eprintf "invalid jobs value %S@." what;
    exit 2
  in
  let set_jobs s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> jobs := n
    | _ -> bad s
  in
  let rec go = function
    | [] -> ()
    | ("-j" | "--jobs") :: v :: rest ->
        set_jobs v;
        go rest
    | ("-j" | "--jobs") :: [] -> bad "<missing>"
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs="
      ->
        set_jobs (String.sub arg 7 (String.length arg - 7));
        go rest
    | arg :: rest ->
        (match !cmd with
        | None -> cmd := Some arg
        | Some _ ->
            Format.eprintf "unexpected argument %S@." arg;
            exit 2);
        go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  Option.value !cmd ~default:"all"

let () =
  let cmd = parse_argv () in
  report := Report.create ~scale:scale_name ~jobs:!jobs ();
  (match cmd with
  | "all" -> run_all ()
  | cmd -> (
      match List.assoc_opt cmd targets with
      | Some run -> recorded cmd run
      | None ->
          Format.eprintf "unknown command %S@." cmd;
          exit 2));
  (match !cache with
  | Some c ->
      Format.fprintf ppf "@.cache: %d hits, %d misses (hit rate %.0f%%)@."
        (Cache.hits c) (Cache.misses c)
        (100. *. Cache.hit_rate c)
  | None -> ());
  Report.write !report "BENCH_runtime.json";
  Format.fprintf ppf "(runtime report: BENCH_runtime.json)@.";
  Format.pp_print_flush ppf ()
