(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md §3) and offers Bechamel micro-benchmarks of the
   computational kernels.

   Usage: main.exe [-j N|--jobs N] [--retries N] [--timeout S] [--resume]
                   [--strict] [--trace FILE] [--metrics FILE] [-h|--help]
                   [table1|table2|table3|fig2|fig3|fig4|fig5|table4|fig6|
                    fig7|table5|table6|ablations|ccr|autotune|workload|
                    micro|all]
   (default: all)

   RATS_SCALE=smoke (default, 149 configurations) or paper (the full 557).
   RATS_JOBS / -j picks the pool size (default: all cores); RATS_CACHE=off
   disables the on-disk result cache under bench_results/.cache;
   RATS_FAULT injects deterministic faults (see Rats_runtime.Fault);
   RATS_JOURNAL=off disables the write-ahead journal under
   bench_results/.journal. A run killed mid-sweep is resumed with
   [--resume]: journaled results are replayed bit-exactly and only the
   missing work re-executes. Without [--resume] the journal of the previous
   run is discarded. A configuration that keeps failing is reported (and
   counted in BENCH_runtime.json) instead of aborting the run; [--strict]
   restores fail-fast. Every run writes wall time, jobs, cache hit/miss and
   failed/retried/resumed counts per executed target to
   BENCH_runtime.json. [--trace FILE] (or RATS_TRACE) records a Chrome
   trace-event file viewable in Perfetto; [--metrics FILE] (or
   RATS_METRICS) dumps the metrics registry at exit (.json → JSON,
   otherwise Prometheus text). *)

module Suite = Rats_daggen.Suite
module Cluster = Rats_platform.Cluster
module Core = Rats_core
module Exp = Rats_exp
module Pool = Rats_runtime.Pool
module Cache = Rats_runtime.Cache
module Exec = Rats_runtime.Exec
module Journal = Rats_runtime.Journal
module Retry = Rats_runtime.Retry
module Report = Rats_runtime.Report
module Obs_cli = Rats_obs.Obs_cli
module Instr = Rats_obs.Instr

let ppf = Format.std_formatter
let scale = Suite.scale_of_env ()

let scale_name = match scale with Suite.Smoke -> "smoke" | Suite.Paper -> "paper"

(* Set from the command line before any target runs; the lazies below read
   them at force time. *)
let exec = ref (Exec.make ())
let report = ref (Report.create ~scale:scale_name ~jobs:1 ())

let results_dir = "bench_results"

let ensure_results_dir () =
  if not (Sys.file_exists results_dir) then Unix.mkdir results_dir 0o755

let section title =
  Format.fprintf ppf "@.=== %s ===@." title

let timed label f =
  let t0 = Instr.now_s () in
  let r = f () in
  Format.fprintf ppf "(%s computed in %.1fs)@." label (Instr.now_s () -. t0);
  r

(* Wall time, cache and fault-counter deltas of one executed bench target,
   recorded for BENCH_runtime.json. *)
let recorded label f =
  let cache_counters () =
    match !exec.Exec.cache with
    | Some c -> (Cache.hits c, Cache.misses c)
    | None -> (0, 0)
  in
  let stat_counters () =
    let s = !exec.Exec.stats in
    Atomic.(get s.Exec.failed, get s.Exec.retried, get s.Exec.resumed)
  in
  let hits0, misses0 = cache_counters () in
  let failed0, retried0, resumed0 = stat_counters () in
  let t0 = Instr.now_s () in
  let r = f () in
  let hits1, misses1 = cache_counters () in
  let failed1, retried1, resumed1 = stat_counters () in
  Report.record !report ~label
    ~wall_s:(Instr.now_s () -. t0)
    ~cache_hits:(hits1 - hits0) ~cache_misses:(misses1 - misses0)
    ~failed:(failed1 - failed0) ~retried:(retried1 - retried0)
    ~resumed:(resumed1 - resumed0) ();
  r

let sweep_results sweep =
  Exp.Runner.pp_failures Format.err_formatter sweep;
  sweep.Exp.Runner.results

(* Expensive inputs shared between figures. *)
let naive_grillon =
  lazy
    (timed "naive suite on grillon" (fun () ->
         sweep_results
           (Exp.Runner.run_sweep ~progress:true ~exec:!exec scale
              Cluster.grillon)))

let table4_data =
  lazy
    (timed "parameter tuning (Table IV)" (fun () ->
         Exp.Tuning.table4 ~exec:!exec scale))

let tuned_per_cluster =
  lazy
    (timed "tuned suites on all clusters" (fun () ->
         let table = Lazy.force table4_data in
         List.map
           (fun c ->
             (c.Cluster.name, Exp.Figures.run_tuned_suite ~exec:!exec scale table c))
           Cluster.presets))

let tuned_grillon () = List.assoc "grillon" (Lazy.force tuned_per_cluster)

let run_table1 () =
  section "Table I";
  Exp.Figures.table1 ppf

let run_table2 () =
  section "Table II";
  Exp.Figures.table2 ppf

let run_table3 () =
  section "Table III";
  Exp.Figures.table3 ppf scale

let run_fig2 () =
  section "Figure 2";
  let results = Lazy.force naive_grillon in
  Exp.Figures.fig2 ppf results;
  ensure_results_dir ();
  let path = Filename.concat results_dir "naive_grillon.csv" in
  Exp.Figures.write_csv path results;
  Format.fprintf ppf "(full data: %s)@." path

let run_fig3 () =
  section "Figure 3";
  Exp.Figures.fig3 ppf (Lazy.force naive_grillon)

let run_fig4 () =
  section "Figure 4";
  let points =
    timed "delta sweep on FFT/grillon" (fun () ->
        let configs = Exp.Tuning.tuning_configs scale `Fft in
        Exp.Tuning.sweep_delta_for ~exec:!exec Cluster.grillon configs)
  in
  Exp.Figures.fig4 ppf points

let run_fig5 () =
  section "Figure 5";
  let points =
    timed "time-cost sweep on irregular/grillon" (fun () ->
        let configs = Exp.Tuning.tuning_configs scale `Irregular in
        Exp.Tuning.sweep_timecost_for ~exec:!exec Cluster.grillon configs)
  in
  Exp.Figures.fig5 ppf points

let run_table4 () =
  section "Table IV";
  Exp.Figures.table4 ppf (Lazy.force table4_data)

let run_fig6 () =
  section "Figure 6";
  let results = tuned_grillon () in
  Exp.Figures.fig6 ppf results;
  ensure_results_dir ();
  let path = Filename.concat results_dir "tuned_grillon.csv" in
  Exp.Figures.write_csv path results;
  Format.fprintf ppf "(full data: %s)@." path

let run_fig7 () =
  section "Figure 7";
  Exp.Figures.fig7 ppf (tuned_grillon ())

let run_table5 () =
  section "Table V";
  Exp.Figures.table5 ppf (Lazy.force tuned_per_cluster)

let run_table6 () =
  section "Table VI";
  Exp.Figures.table6 ppf (Lazy.force tuned_per_cluster)

let run_ablations () =
  section "Ablations";
  timed "ablation studies" (fun () ->
      Exp.Ablation.print_all ~exec:!exec ppf scale)

let run_ccr () =
  section "CCR crossover (extension)";
  (* Half the study set: the sweep re-simulates every configuration six
     times. *)
  let configs =
    List.filteri (fun i _ -> i mod 2 = 0) (Exp.Ablation.study_configs scale)
  in
  let points =
    timed "CCR sweep" (fun () ->
        Exp.Ccr_sweep.run ~exec:!exec Cluster.grillon configs)
  in
  Exp.Ccr_sweep.print ppf points

let run_autotune () =
  section "Automatic tuning";
  let configs = Exp.Ablation.study_configs scale in
  let rows =
    timed "selector study" (fun () ->
        Exp.Autotune.selector_study ~exec:!exec Cluster.grillon configs)
  in
  Format.fprintf ppf
    "mean makespan relative to HCPA over %d configurations (grillon):@."
    (List.length configs);
  List.iter
    (fun (name, v) -> Format.fprintf ppf "  %-18s %.3f@." name v)
    rows

(* --- Workload studies --------------------------------------------------- *)

(* Tight enough that the bursty/diurnal/mixed profiles exercise rejection
   and expiry, loose enough that the pure poisson profile completes clean —
   the same arrival traces tell both stories. *)
let workload_policy =
  Rats_server.Admission.make ~deadline_s:400. ~queue_limit:32 ~tenant_limit:8
    ()

let workload_profiles = [ "poisson"; "bursty"; "diurnal"; "mixed" ]

let run_workload () =
  section "Workload studies";
  let module Study = Rats_workload_study.Study in
  let cluster = Cluster.grillon in
  ensure_results_dir ();
  List.iter
    (fun name ->
      let profile =
        match Rats_workload.Profile.of_string ~cluster name with
        | Ok p -> p
        | Error e -> failwith ("workload profile: " ^ e)
      in
      let reports =
        timed (name ^ " study") (fun () ->
            Study.run ~policy:workload_policy ~cluster profile)
      in
      List.iter
        (fun (r : Rats_workload.Report.t) ->
          Format.fprintf ppf
            "  %-8s %-9s completed %3d/%3d  p99 sojourn %7.1f s  fairness \
             %.3f  utilization %4.1f%%@."
            name r.Rats_workload.Report.arm r.Rats_workload.Report.completed
            r.Rats_workload.Report.jobs r.Rats_workload.Report.sojourn_p99
            r.Rats_workload.Report.fairness
            (100. *. r.Rats_workload.Report.utilization))
        reports;
      let path = Filename.concat results_dir ("workload_" ^ name ^ ".csv") in
      Study.write_csv path reports;
      Format.fprintf ppf "(full data: %s)@." path)
    workload_profiles

(* --- Bechamel micro-benchmarks ------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let cluster = Cluster.grillon in
  let fft_cfg = { Suite.spec = Suite.Fft { k = 8 }; sample = 0 } in
  let dag = Suite.generate fft_cfg in
  let problem = Core.Problem.make ~dag ~cluster in
  let alloc = Core.Hcpa.allocate problem in
  let schedule = Core.Rats.schedule ~alloc problem Core.Rats.Baseline in
  let flows =
    Array.init 128 (fun i ->
        {
          Rats_sim.Maxmin.links = [| i mod 20; 20 + (i mod 15) |];
          rate_cap = 1e9;
        })
  in
  let sender = Rats_util.Procset.range 0 8 in
  let receiver = Rats_util.Procset.range 4 12 in
  Test.make_grouped ~name:"rats"
    [
      Test.make ~name:"maxmin-128flows"
        (Staged.stage (fun () ->
             ignore
               (Rats_sim.Maxmin.solve ~n_links:47
                  ~capacity:(fun _ -> 1.25e8)
                  flows)));
      Test.make ~name:"comm-matrix-32x24"
        (Staged.stage (fun () ->
             ignore (Rats_redist.Block.comm_matrix ~amount:1e9 ~senders:32 ~receivers:24)));
      Test.make ~name:"redist-plan"
        (Staged.stage (fun () ->
             ignore (Rats_redist.Redistribution.plan ~sender ~receiver ~bytes:1e9 ())));
      Test.make ~name:"hcpa-alloc-fft8"
        (Staged.stage (fun () -> ignore (Core.Hcpa.allocate problem)));
      Test.make ~name:"rats-timecost-map-fft8"
        (Staged.stage (fun () ->
             ignore
               (Core.Rats.schedule ~alloc problem
                  (Core.Rats.Timecost Core.Rats.naive_timecost))));
      Test.make ~name:"simulate-fft8"
        (Staged.stage (fun () -> ignore (Core.Evaluate.run schedule)));
    ]

let run_micro () =
  section "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg [ instance ] (micro_tests ()) in
  let results = Analyze.all ols instance raw in
  (* Name-sorted so the report order never depends on hash layout. *)
  Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, ols_result) ->
         let ns =
           match Analyze.OLS.estimates ols_result with
           | Some (t :: _) -> t
           | _ -> nan
         in
         Format.fprintf ppf "  %-28s %12.1f ns/run@." name ns)

let targets =
  [
    ("table1", run_table1);
    ("table2", run_table2);
    ("table3", run_table3);
    ("fig2", run_fig2);
    ("fig3", run_fig3);
    ("fig4", run_fig4);
    ("fig5", run_fig5);
    ("table4", run_table4);
    ("fig6", run_fig6);
    ("fig7", run_fig7);
    ("table5", run_table5);
    ("table6", run_table6);
    ("ablations", run_ablations);
    ("ccr", run_ccr);
    ("autotune", run_autotune);
    ("workload", run_workload);
    ("micro", run_micro);
  ]

let run_all () =
  Format.fprintf ppf "RATS benchmark harness — scale: %s (%d configurations)@."
    scale_name (Suite.n_configs scale);
  List.iter (fun (label, run) -> recorded label run) targets

(* Minimal flag parsing: [-j N], [--jobs N], [--jobs=N], [--retries N],
   [--timeout S], [--trace F], [--metrics F], [--resume], [--strict]
   anywhere; the first remaining argument is the target. *)
type options = {
  mutable jobs : int;
  mutable retries : int;
  mutable timeout_s : float option;
  mutable resume : bool;
  mutable strict : bool;
  mutable trace : string option;
  mutable metrics : string option;
}

let usage () =
  Format.printf
    "Usage: main.exe [OPTION]… [TARGET]@.@.\
     Regenerates the paper's tables and figures (default target: all).@.@.\
     Targets: %s@.@.\
     Options:@.\
    \  -j N, --jobs=N    pool workers (default: RATS_JOBS or all cores)@.\
    \  --retries=N       extra attempts for a failing configuration@.\
    \  --timeout=SECONDS per-configuration wall-clock budget@.\
    \  --resume          replay the journal of an interrupted run@.\
    \  --strict          abort on the first configuration failure@.\
    \  --trace=FILE      record a Chrome trace-event file (or RATS_TRACE)@.\
    \  --metrics=FILE    dump the metrics registry at exit (or RATS_METRICS)@.\
    \  -h, --help        show this message@.@.\
     Environment: RATS_SCALE=smoke|paper, RATS_JOBS, RATS_CACHE=off,@.\
     RATS_CACHE_DIR, RATS_FAULT (see Rats_runtime.Fault), RATS_JOURNAL=off.@."
    (String.concat "|" (List.map fst targets))

let parse_argv () =
  let opts =
    {
      jobs = Pool.default_jobs ();
      retries = 0;
      timeout_s = None;
      resume = false;
      strict = false;
      trace = None;
      metrics = None;
    }
  in
  let cmd = ref None in
  let bad flag what =
    Format.eprintf "invalid %s value %S@." flag what;
    exit 2
  in
  let set_jobs s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> opts.jobs <- n
    | _ -> bad "jobs" s
  in
  let set_retries s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> opts.retries <- n
    | _ -> bad "retries" s
  in
  let set_timeout s =
    match float_of_string_opt s with
    | Some t when t > 0. -> opts.timeout_s <- Some t
    | _ -> bad "timeout" s
  in
  let prefixed ~prefix arg =
    let n = String.length prefix in
    if String.length arg > n && String.sub arg 0 n = prefix then
      Some (String.sub arg n (String.length arg - n))
    else None
  in
  let rec go = function
    | [] -> ()
    | ("-h" | "--help") :: _ ->
        usage ();
        exit 0
    | ("-j" | "--jobs") :: v :: rest ->
        set_jobs v;
        go rest
    | "--retries" :: v :: rest ->
        set_retries v;
        go rest
    | "--timeout" :: v :: rest ->
        set_timeout v;
        go rest
    | "--trace" :: v :: rest ->
        opts.trace <- Some v;
        go rest
    | "--metrics" :: v :: rest ->
        opts.metrics <- Some v;
        go rest
    | [ ("-j" | "--jobs") ] -> bad "jobs" "<missing>"
    | [ "--retries" ] -> bad "retries" "<missing>"
    | [ "--timeout" ] -> bad "timeout" "<missing>"
    | [ "--trace" ] -> bad "trace" "<missing>"
    | [ "--metrics" ] -> bad "metrics" "<missing>"
    | "--resume" :: rest ->
        opts.resume <- true;
        go rest
    | "--strict" :: rest ->
        opts.strict <- true;
        go rest
    | arg :: rest -> (
        let assignments =
          [
            ("--jobs=", set_jobs);
            ("--retries=", set_retries);
            ("--timeout=", set_timeout);
            ("--trace=", fun v -> opts.trace <- Some v);
            ("--metrics=", fun v -> opts.metrics <- Some v);
          ]
        in
        let matched =
          List.find_map
            (fun (prefix, set) ->
              Option.map set (prefixed ~prefix arg))
            assignments
        in
        match matched with
        | Some () -> go rest
        | None ->
            (match !cmd with
            | None -> cmd := Some arg
            | Some _ ->
                Format.eprintf "unexpected argument %S@." arg;
                exit 2);
            go rest)
  in
  go (List.tl (Array.to_list Sys.argv));
  (opts, Option.value !cmd ~default:"all")

let () =
  let opts, cmd = parse_argv () in
  Obs_cli.configure ?trace:opts.trace ?metrics:opts.metrics ();
  let journal =
    match Sys.getenv_opt "RATS_JOURNAL" with
    | Some "off" -> None
    | _ ->
        Some
          (Journal.open_ ~name:("bench-" ^ scale_name) ~resume:opts.resume ())
  in
  let retry =
    { Retry.default with retries = opts.retries; timeout_s = opts.timeout_s }
  in
  exec :=
    Exec.of_env ~jobs:opts.jobs ~retry ~strict:opts.strict ?journal ();
  (match journal with
  | Some j when opts.resume ->
      Format.fprintf ppf "(resuming: %d journaled results in %s)@."
        (Journal.loaded j) (Journal.path j)
  | _ -> ());
  report := Report.create ~scale:scale_name ~jobs:opts.jobs ();
  (match cmd with
  | "all" -> run_all ()
  | cmd -> (
      match List.assoc_opt cmd targets with
      | Some run -> recorded cmd run
      | None ->
          Format.eprintf "unknown command %S@." cmd;
          exit 2));
  (match !exec.Exec.cache with
  | Some c ->
      Format.fprintf ppf "@.cache: %d hits, %d misses (hit rate %.0f%%)@."
        (Cache.hits c) (Cache.misses c)
        (100. *. Cache.hit_rate c);
      let q = Cache.quarantined c in
      if q > 0 then
        Format.fprintf ppf "cache: %d corrupt entries quarantined under %s@." q
          (Cache.quarantine_dir c)
  | None -> ());
  let stats = !exec.Exec.stats in
  let failed = Atomic.get stats.Exec.failed in
  let retried = Atomic.get stats.Exec.retried in
  let resumed = Atomic.get stats.Exec.resumed in
  if failed > 0 || retried > 0 || resumed > 0 then
    Format.fprintf ppf "faults: %d failed, %d retried, %d resumed@." failed
      retried resumed;
  Option.iter Journal.close journal;
  Report.write !report "BENCH_runtime.json";
  Format.fprintf ppf "(runtime report: BENCH_runtime.json)@.";
  Obs_cli.finalize ();
  Option.iter (Format.fprintf ppf "(trace: %s)@.") (Obs_cli.trace_path ());
  Option.iter (Format.fprintf ppf "(metrics: %s)@.") (Obs_cli.metrics_path ());
  Format.pp_print_flush ppf ();
  if failed > 0 then exit 1
