(* rats_client: command-line client for the ratsd scheduling service.

   One invocation = one connection = one operation:
     dune exec bin/rats_client.exe -- --op ping
     dune exec bin/rats_client.exe -- --op submit --tenant alice --kind fft \
       --fft-k 4 --procs 16 --at 0 --drain --follow
     dune exec bin/rats_client.exe -- --op load --load-jobs 40 --rate 0.1
     dune exec bin/rats_client.exe -- --op watch --json
     dune exec bin/rats_client.exe -- --op log --json
     dune exec bin/rats_client.exe -- --op shutdown

   Every op takes --timeout (socket deadline: a wedged daemon cannot hang
   a script) and --retries (bounded exponential-backoff reconnects, for
   racing a daemon that is still starting or restarting). *)

open Cmdliner
module Server = Rats_server
module Api = Rats_server.Api
module Protocol = Rats_server.Protocol
module Load = Rats_server.Load
module Retry = Rats_runtime.Retry
module Core = Rats_core
module J = Rats_obs.Json

let fail fmt = Format.kasprintf (fun m -> prerr_endline m; exit 1) fmt

(* --- connection ---------------------------------------------------------- *)

type conn = { fd : Unix.file_descr; decoder : Protocol.Decoder.t; buf : Bytes.t }

let connect ~retries ~timeout socket =
  let attempt_once () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> fd
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  let policy =
    { Retry.default with Retry.retries; backoff_s = 0.1; jitter = 0.5 }
  in
  let outcome =
    Retry.run ~policy ~name:("rats_client:" ^ socket) (fun ~attempt:_ ->
        attempt_once ())
  in
  match outcome.Retry.value with
  | Error f ->
      fail "rats_client: cannot connect to %s: %s" socket
        (Retry.failure_to_string f)
  | Ok fd ->
      if timeout > 0. then begin
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
      end;
      { fd; decoder = Protocol.Decoder.create (); buf = Bytes.create 65536 }

let send conn msg =
  let frame = Protocol.to_frame (Protocol.client_to_json msg) in
  let n = String.length frame in
  let pos = ref 0 in
  try
    while !pos < n do
      pos := !pos + Unix.write_substring conn.fd frame !pos (n - !pos)
    done
  with Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
    fail "rats_client: send timed out (is ratsd wedged?)"

(* [None] = orderly EOF. Timeouts and protocol damage are fatal. *)
let next_msg_opt conn =
  let rec go () =
    match Protocol.Decoder.next conn.decoder with
    | Error e -> fail "rats_client: %s" e
    | Ok (Some doc) -> (
        match Protocol.server_of_json doc with
        | Ok msg -> Some msg
        | Error e -> fail "rats_client: bad reply: %s" e)
    | Ok None -> (
        match Unix.read conn.fd conn.buf 0 (Bytes.length conn.buf) with
        | 0 -> None
        | n ->
            Protocol.Decoder.feed conn.decoder conn.buf 0 n;
            go ()
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
            fail "rats_client: timed out waiting for ratsd's reply")
  in
  go ()

let next_msg conn =
  match next_msg_opt conn with
  | Some msg -> msg
  | None -> fail "rats_client: connection closed by ratsd"

let print_event json ev =
  if json then print_endline (J.to_string (Api.stamped_to_json ev))
  else Format.printf "%a@." Api.pp_stamped ev

(* Waits for a non-[Event] reply, printing streamed events as they come. *)
let rec wait_reply conn json =
  match next_msg conn with
  | Protocol.Event ev ->
      print_event json ev;
      wait_reply conn json
  | msg -> msg

let expect_ok conn json =
  match wait_reply conn json with
  | Protocol.Err e -> fail "ratsd: %s" e
  | msg -> msg

(* --- operations ---------------------------------------------------------- *)

let do_drain conn json =
  send conn Protocol.Drain;
  match expect_ok conn json with
  | Protocol.Drained { end_time } ->
      Format.printf "drained: simulated end time %.6f s@." end_time
  | _ -> fail "rats_client: unexpected reply to drain"

let do_watch conn json stall =
  send conn Protocol.Watch;
  (match expect_ok conn json with
  | Protocol.Watching -> ()
  | _ -> fail "rats_client: unexpected reply to watch");
  (* A deliberate stall turns this client into the chaos harness's slow
     reader: subscribed but consuming nothing, until ratsd evicts it. *)
  if stall > 0. then Unix.sleepf stall;
  let rec go () =
    match next_msg_opt conn with
    | None -> ()  (* daemon shut down, or we were evicted *)
    | Some (Protocol.Event ev) ->
        print_event json ev;
        go ()
    | Some _ -> go ()
  in
  go ()

let do_load conn json profile load_from load_to =
  let trace = Load.trace profile in
  let n = List.length trace in
  let lo = max 0 load_from in
  let hi = if load_to <= 0 then n else min load_to n in
  let sent = ref 0 in
  List.iteri
    (fun i (at, request) ->
      if i >= lo && i < hi then begin
        send conn (Protocol.Submit { at = Some at; request });
        match expect_ok conn json with
        | Protocol.Ack _ -> incr sent
        | _ -> fail "rats_client: unexpected reply to submit"
      end)
    trace;
  Format.printf "loaded: %d submission(s) (trace slice [%d,%d) of %d)@." !sent
    lo hi n

let run socket op tenant at procs follow drain json dag_file config algo
    mindelta maxdelta minrho packing retries timeout stall cluster load_jobs
    tenants rate seed load_from load_to =
  let strategy =
    match algo with
    | `Hcpa -> Core.Rats.Baseline
    | `Delta -> Core.Rats.Delta { mindelta; maxdelta }
    | `Timecost -> Core.Rats.Timecost { minrho; packing }
  in
  let job () =
    match dag_file with
    | None -> Api.Generated config
    | Some path -> (
        let contents =
          try In_channel.with_open_bin path In_channel.input_all
          with Sys_error e -> fail "rats_client: %s" e
        in
        match J.parse contents with
        | Error e -> fail "rats_client: %s: %s" path e
        | Ok doc -> (
            match Api.job_spec_of_json doc with
            | Ok spec -> spec
            | Error e -> fail "rats_client: %s: %s" path e))
  in
  let request () = { Api.tenant; job = job (); strategy; procs } in
  let conn = connect ~retries ~timeout socket in
  (match op with
  | `Ping -> (
      send conn Protocol.Ping;
      match expect_ok conn json with
      | Protocol.Pong -> print_endline "pong"
      | _ -> fail "rats_client: unexpected reply to ping")
  | `Health -> (
      send conn Protocol.Health;
      match expect_ok conn json with
      | Protocol.Healthy h -> print_endline (J.to_string h)
      | _ -> fail "rats_client: unexpected reply to health")
  | `Plan -> (
      send conn (Protocol.Plan (request ()));
      match expect_ok conn json with
      | Protocol.Placed resp -> print_endline (J.to_string resp)
      | _ -> fail "rats_client: unexpected reply to plan")
  | `Submit -> (
      if follow then begin
        send conn Protocol.Watch;
        match expect_ok conn json with
        | Protocol.Watching -> ()
        | _ -> fail "rats_client: unexpected reply to watch"
      end;
      send conn (Protocol.Submit { at; request = request () });
      match expect_ok conn json with
      | Protocol.Ack { id } ->
          Format.printf "submitted: id %d@." id;
          if drain then do_drain conn json
      | _ -> fail "rats_client: unexpected reply to submit")
  | `Watch -> do_watch conn json stall
  | `Load ->
      let profile =
        {
          (Load.default_profile cluster) with
          Load.n_jobs = load_jobs;
          n_tenants = tenants;
          rate;
          seed;
          strategy;
        }
      in
      do_load conn json profile load_from load_to;
      if drain then do_drain conn json
  | `Drain ->
      if follow then begin
        send conn Protocol.Watch;
        match expect_ok conn json with
        | Protocol.Watching -> do_drain conn json
        | _ -> fail "rats_client: unexpected reply to watch"
      end
      else do_drain conn json
  | `Log -> (
      send conn Protocol.Log;
      match expect_ok conn json with
      | Protocol.Log events -> List.iter (print_event json) events
      | _ -> fail "rats_client: unexpected reply to log")
  | `Stats -> (
      send conn Protocol.Stats;
      match expect_ok conn json with
      | Protocol.Stats s -> print_endline (J.to_string s)
      | _ -> fail "rats_client: unexpected reply to stats")
  | `Shutdown -> (
      send conn Protocol.Shutdown;
      match expect_ok conn json with
      | Protocol.Bye -> print_endline "bye"
      | _ -> fail "rats_client: unexpected reply to shutdown"));
  Unix.close conn.fd

(* --- command line -------------------------------------------------------- *)

let socket_term =
  Arg.(
    value
    & opt string "/tmp/ratsd.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~env:(Cmd.Env.info "RATS_SOCKET")
        ~doc:"Unix-domain socket ratsd listens on.")

let op_term =
  Arg.(
    value
    & opt
        (enum
           [ ("ping", `Ping); ("plan", `Plan); ("submit", `Submit);
             ("drain", `Drain); ("log", `Log); ("stats", `Stats);
             ("watch", `Watch); ("health", `Health); ("load", `Load);
             ("shutdown", `Shutdown) ])
        `Ping
    & info [ "op" ] ~docv:"OP"
        ~doc:
          "Operation: ping, plan (pure schedule, no queueing), submit, \
           drain, log, stats, watch (stream events until the daemon goes \
           away), health (liveness/readiness snapshot), load (submit a \
           slice of the Poisson load trace) or shutdown.")

let tenant_term =
  Arg.(
    value & opt string "default"
    & info [ "tenant" ] ~docv:"NAME" ~doc:"Tenant the submission belongs to.")

let at_term =
  Arg.(
    value
    & opt (some float) None
    & info [ "at" ] ~docv:"T"
        ~doc:
          "Simulated arrival time of the submission (default: the \
           service's current simulated time).")

let procs_term =
  Arg.(
    value & opt int 0
    & info [ "procs" ] ~docv:"N"
        ~doc:"Processor share to request; 0 = the whole platform.")

let follow_term =
  Arg.(
    value & flag
    & info [ "follow" ]
        ~doc:"Subscribe to the event stream and print events as they occur.")

let drain_client_term =
  Arg.(
    value & flag
    & info [ "drain" ]
        ~doc:"After a submit or load, immediately drain the service (run \
              the simulation dry).")

let json_term =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Print events as JSON lines instead of text.")

let dag_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "dag" ] ~docv:"FILE"
        ~doc:
          "Submit the inline DAG described by this JSON file instead of a \
           generated suite application.")

let algo_term =
  Arg.(
    value
    & opt (enum [ ("hcpa", `Hcpa); ("delta", `Delta); ("timecost", `Timecost) ])
        `Delta
    & info [ "algo" ] ~docv:"ALGO" ~doc:"Scheduling strategy: hcpa, delta or timecost.")

let mindelta_term =
  Arg.(value & opt float (-0.5) & info [ "mindelta" ] ~docv:"F" ~doc:"Delta packing bound in [-1,0].")

let maxdelta_term =
  Arg.(value & opt float 0.5 & info [ "maxdelta" ] ~docv:"F" ~doc:"Delta stretching bound >= 0.")

let minrho_term =
  Arg.(value & opt float 0.5 & info [ "minrho" ] ~docv:"F" ~doc:"Time-cost ratio threshold in (0,1].")

let packing_term =
  Arg.(value & opt bool true & info [ "packing" ] ~docv:"BOOL" ~doc:"Time-cost packing toggle.")

let retries_term =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retry the initial connection up to $(docv) extra times with \
           bounded exponential backoff (for daemons still starting or \
           restarting).")

let timeout_term =
  Arg.(
    value & opt float 0.
    & info [ "timeout" ] ~docv:"S"
        ~doc:
          "Socket send/receive deadline in seconds; 0 = wait forever. A \
           wedged daemon then fails the op instead of hanging it.")

let stall_term =
  Arg.(
    value & opt float 0.
    & info [ "stall" ] ~docv:"S"
        ~doc:
          "watch only: after subscribing, read nothing for $(docv) \
           seconds — a deliberately slow client, for testing eviction.")

let load_jobs_term =
  Arg.(
    value & opt int 120
    & info [ "load-jobs" ] ~docv:"N"
        ~doc:"load: total jobs in the generated trace.")

let tenants_term =
  Arg.(
    value & opt int 4
    & info [ "tenants" ] ~docv:"N" ~doc:"load: number of tenants.")

let rate_term =
  Arg.(
    value & opt float 0.05
    & info [ "rate" ] ~docv:"R"
        ~doc:"load: aggregate arrival rate, jobs per simulated second.")

let seed_term =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"S" ~doc:"load: arrival-trace random seed.")

let load_from_term =
  Arg.(
    value & opt int 0
    & info [ "load-from" ] ~docv:"I"
        ~doc:
          "load: first trace index to submit (resuming a partially \
           submitted trace skips what the journal already has).")

let load_to_term =
  Arg.(
    value & opt int 0
    & info [ "load-to" ] ~docv:"J"
        ~doc:"load: submit trace indices below $(docv); 0 = to the end.")

let cmd =
  Cmd.v
    (Cmd.info "rats_client" ~doc:"Client for the ratsd scheduling service")
    Term.(
      const run $ socket_term $ op_term $ tenant_term $ at_term $ procs_term
      $ follow_term $ drain_client_term $ json_term $ dag_term
      $ Common.config_term $ algo_term $ mindelta_term $ maxdelta_term
      $ minrho_term $ packing_term $ retries_term $ timeout_term $ stall_term
      $ Common.cluster_term $ load_jobs_term $ tenants_term $ rate_term
      $ seed_term $ load_from_term $ load_to_term)

let () = exit (Cmd.eval cmd)
