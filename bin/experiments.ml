(* experiments: run the paper's evaluation suite and export the data.

   Examples:
     dune exec bin/experiments.exe -- --scale smoke
     dune exec bin/experiments.exe -- --cluster grelon --csv out.csv *)

open Cmdliner
module Suite = Rats_daggen.Suite
module Exp = Rats_exp

let run scale cluster mindelta maxdelta minrho packing csv jobs =
  let delta = { Rats_core.Rats.mindelta; maxdelta } in
  let timecost = { Rats_core.Rats.minrho; packing } in
  let jobs =
    if jobs >= 1 then jobs else Rats_runtime.Pool.default_jobs ()
  in
  let results =
    Exp.Runner.run_suite ~delta ~timecost ~progress:true ~jobs
      ?cache:(Rats_runtime.Cache.of_env ()) scale cluster
  in
  Exp.Figures.fig2 Format.std_formatter results;
  Exp.Figures.fig3 Format.std_formatter results;
  (match csv with
  | None -> ()
  | Some path ->
      Exp.Figures.write_csv path results;
      Format.printf "CSV written to %s@." path);
  Format.printf "%d configurations done.@." (List.length results)

let scale_term =
  Arg.(
    value
    & opt (enum [ ("smoke", Suite.Smoke); ("paper", Suite.Paper) ]) Suite.Smoke
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:"smoke (149 configurations) or paper (the full 557).")

let csv_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Write per-configuration results to $(docv).")

let mindelta_term =
  Arg.(value & opt float (-0.5) & info [ "mindelta" ] ~docv:"F" ~doc:"Delta packing bound.")

let maxdelta_term =
  Arg.(value & opt float 0.5 & info [ "maxdelta" ] ~docv:"F" ~doc:"Delta stretching bound.")

let minrho_term =
  Arg.(value & opt float 0.5 & info [ "minrho" ] ~docv:"F" ~doc:"Time-cost threshold.")

let packing_term =
  Arg.(value & opt bool true & info [ "packing" ] ~docv:"BOOL" ~doc:"Time-cost packing.")

let jobs_term =
  Arg.(
    value
    & opt int 0
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Pool workers for the suite run (default: $(b,RATS_JOBS) or all \
           cores; 1 forces serial execution). Results are identical for \
           every value.")

let cmd =
  Cmd.v
    (Cmd.info "experiments" ~doc:"Run the RATS evaluation suite")
    Term.(
      const run $ scale_term $ Common.cluster_term $ mindelta_term
      $ maxdelta_term $ minrho_term $ packing_term $ csv_term $ jobs_term)

let () = exit (Cmd.eval cmd)
