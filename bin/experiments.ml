(* experiments: run the paper's evaluation suite and export the data.

   Examples:
     dune exec bin/experiments.exe -- --scale smoke
     dune exec bin/experiments.exe -- --cluster grelon --csv out.csv
     dune exec bin/experiments.exe -- --retries 2 --timeout 60 --resume *)

open Cmdliner
module Suite = Rats_daggen.Suite
module Exp = Rats_exp
module Runtime = Rats_runtime

let run scale cluster mindelta maxdelta minrho packing csv jobs retries timeout
    resume strict trace metrics =
  Common.with_obs trace metrics @@ fun () ->
  let delta = { Rats_core.Rats.mindelta; maxdelta } in
  let timecost = { Rats_core.Rats.minrho; packing } in
  let jobs =
    if jobs >= 1 then jobs else Rats_runtime.Pool.default_jobs ()
  in
  let scale_name =
    match scale with Suite.Smoke -> "smoke" | Suite.Paper -> "paper"
  in
  let journal =
    match Sys.getenv_opt "RATS_JOURNAL" with
    | Some "off" -> None
    | _ ->
        Some
          (Runtime.Journal.open_
             ~name:
               (Printf.sprintf "experiments-%s-%s" scale_name
                  cluster.Rats_platform.Cluster.name)
             ~resume ())
  in
  let retry = { Runtime.Retry.default with retries; timeout_s = timeout } in
  let exec = Runtime.Exec.of_env ~jobs ~retry ~strict ?journal () in
  (match journal with
  | Some j when resume ->
      Format.printf "(resuming: %d journaled results in %s)@."
        (Runtime.Journal.loaded j) (Runtime.Journal.path j)
  | _ -> ());
  let sweep =
    Exp.Runner.run_sweep ~delta ~timecost ~progress:true ~exec scale cluster
  in
  let results = sweep.Exp.Runner.results in
  Exp.Figures.fig2 Format.std_formatter results;
  Exp.Figures.fig3 Format.std_formatter results;
  (match csv with
  | None -> ()
  | Some path ->
      Exp.Figures.write_csv path results;
      Format.printf "CSV written to %s@." path);
  Exp.Runner.pp_failures Format.err_formatter sweep;
  Option.iter Runtime.Journal.close journal;
  Format.printf "%d/%d configurations done.@." (List.length results)
    sweep.Exp.Runner.total;
  if sweep.Exp.Runner.failed <> [] then exit 1

let scale_term =
  Arg.(
    value
    & opt (enum [ ("smoke", Suite.Smoke); ("paper", Suite.Paper) ]) Suite.Smoke
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:"smoke (149 configurations) or paper (the full 557).")

let csv_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Write per-configuration results to $(docv).")

let mindelta_term =
  Arg.(value & opt float (-0.5) & info [ "mindelta" ] ~docv:"F" ~doc:"Delta packing bound.")

let maxdelta_term =
  Arg.(value & opt float 0.5 & info [ "maxdelta" ] ~docv:"F" ~doc:"Delta stretching bound.")

let minrho_term =
  Arg.(value & opt float 0.5 & info [ "minrho" ] ~docv:"F" ~doc:"Time-cost threshold.")

let packing_term =
  Arg.(value & opt bool true & info [ "packing" ] ~docv:"BOOL" ~doc:"Time-cost packing.")

let jobs_term =
  Arg.(
    value
    & opt int 0
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Pool workers for the suite run (default: $(b,RATS_JOBS) or all \
           cores; 1 forces serial execution). Results are identical for \
           every value.")

let retries_term =
  Arg.(
    value
    & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Re-run a failing configuration up to $(docv) extra times \
           (exponential backoff) before recording it as failed.")

let timeout_term =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Per-configuration wall-clock budget (monotonic). An attempt that \
           exceeds it counts as a failure, subject to $(b,--retries).")

let resume_term =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Replay the results journaled by an interrupted run \
           (bench_results/.journal) and execute only the missing \
           configurations; the combined output is bit-identical to an \
           uninterrupted run. Without this flag the previous journal is \
           discarded.")

let strict_term =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Abort on the first configuration failure (fail fast) instead of \
           completing the sweep and reporting failures at the end.")

let cmd =
  Cmd.v
    (Cmd.info "experiments" ~doc:"Run the RATS evaluation suite")
    Term.(
      const run $ scale_term $ Common.cluster_term $ mindelta_term
      $ maxdelta_term $ minrho_term $ packing_term $ csv_term $ jobs_term
      $ retries_term $ timeout_term $ resume_term $ strict_term
      $ Common.trace_term $ Common.metrics_term)

let () = exit (Cmd.eval cmd)
