(* trace_check: validate the files written by --trace / --metrics.

   Parses a Chrome trace-event document and (optionally) a metrics snapshot
   with the in-repo JSON parser, checks their shape, and exits nonzero with
   a diagnostic on the first violation — the machine end of `make
   trace-smoke`.

   Examples:
     dune exec bin/trace_check.exe -- --trace t.json
     dune exec bin/trace_check.exe -- --trace t.json --metrics m.json \
       --require-bench-counters --svg timeline.svg *)

open Cmdliner
module Json = Rats_obs.Json
module Trace = Rats_obs.Trace

let fail fmt = Printf.ksprintf (fun msg -> Error msg) fmt

let ( let* ) = Result.bind

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> Ok contents
  | exception Sys_error msg -> Error msg

let parse_file path =
  let* contents = read_file path in
  match Json.parse contents with
  | Ok json -> Ok json
  | Error msg -> fail "%s: %s" path msg

(* --- Chrome trace validation -------------------------------------------- *)

(* The decoder itself lives in {!Trace.events_of_json}, shared with the
   studio report generator; this wrapper only prefixes the file name. *)
let validate_trace path =
  let* json = parse_file path in
  match Trace.events_of_json json with
  | Ok events -> Ok events
  | Error msg -> fail "%s: %s" path msg

(* --- Metrics validation ------------------------------------------------- *)

let counter metrics name =
  Option.bind (Json.member "counters" metrics) (fun c ->
      Option.bind (Json.member name c) Json.to_int)

let histogram_count metrics name =
  Option.bind (Json.member "histograms" metrics) (fun h ->
      Option.bind (Json.member name h) (fun m ->
          Option.bind (Json.member "count" m) Json.to_int))

let validate_metrics path =
  let* json = parse_file path in
  let* () =
    match
      ( Json.member "counters" json,
        Json.member "gauges" json,
        Json.member "histograms" json )
    with
    | Some (Json.Obj _), Some (Json.Obj _), Some (Json.Obj _) -> Ok ()
    | _ -> fail "%s: missing counters/gauges/histograms objects" path
  in
  Ok json

(* The counters a bench-harness run must have moved (or at least
   registered): the acceptance contract of `make trace-smoke`. *)
let check_bench_counters metrics =
  let require_positive name =
    match counter metrics name with
    | Some n when n > 0 -> Ok ()
    | Some n -> fail "counter %s is %d, expected > 0" name n
    | None -> fail "counter %s missing" name
  in
  let require_present name =
    match counter metrics name with
    | Some _ -> Ok ()
    | None -> fail "counter %s missing" name
  in
  let require_hist name =
    match histogram_count metrics name with
    | Some n when n > 0 -> Ok ()
    | Some _ -> fail "histogram %s recorded no observations" name
    | None -> fail "histogram %s missing" name
  in
  let* () = require_positive "rats_sim_events_total" in
  (* A cold run has no hits; presence is what matters. *)
  let* () = require_present "rats_cache_hits_total" in
  let* () = require_positive "rats_cache_misses_total" in
  let* () = require_hist "rats_cache_read_seconds" in
  let* () = require_hist "rats_cache_write_seconds" in
  (* Steals need >1 worker; a serial run legitimately reports 0. *)
  let* () = require_present "rats_pool_steals_total" in
  let* () = require_positive "rats_pool_tasks_total" in
  let* () =
    List.fold_left
      (fun acc strategy ->
        let* () = acc in
        let* () =
          require_present (Printf.sprintf "rats_map_%s_packed_total" strategy)
        in
        require_present (Printf.sprintf "rats_map_%s_stretched_total" strategy))
      (Ok ())
      [ "delta"; "time_cost" ]
  in
  (* Both redistribution-aware strategies must have eliminated something
     over a whole suite sweep. *)
  List.fold_left
    (fun acc strategy ->
      let* () = acc in
      require_positive
        (Printf.sprintf "rats_map_%s_redistributions_eliminated_total" strategy))
    (Ok ())
    [ "delta"; "time_cost" ]

(* --- Driver ------------------------------------------------------------- *)

let run trace metrics require_bench svg =
  let result =
    let* events = validate_trace trace in
    Printf.printf "%s: %d events ok\n" trace (List.length events);
    let* () =
      match metrics with
      | None ->
          if require_bench then
            fail "--require-bench-counters needs --metrics"
          else Ok ()
      | Some path ->
          let* m = validate_metrics path in
          Printf.printf "%s: well-formed snapshot\n" path;
          if require_bench then (
            let* () = check_bench_counters m in
            Printf.printf "%s: bench counters ok\n" path;
            Ok ())
          else Ok ()
    in
    match svg with
    | None -> Ok ()
    | Some out ->
        Rats_viz.Timeline.save events ~path:out
          ~title:(Printf.sprintf "trace timeline (%s)" trace);
        Printf.printf "timeline written to %s\n" out;
        Ok ()
  in
  match result with
  | Ok () -> 0
  | Error msg ->
      Printf.eprintf "trace_check: %s\n" msg;
      1

let trace_term =
  Arg.(
    required
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE" ~doc:"Chrome trace-event file to validate.")

let metrics_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE" ~doc:"Metrics JSON snapshot to validate.")

let require_term =
  Arg.(
    value & flag
    & info [ "require-bench-counters" ]
        ~doc:
          "Fail unless the snapshot shows the counters a bench run must \
           move: simulator events, cache hits/misses with read/write \
           latency histograms, pool task/steal counters, and per-strategy \
           pack/stretch counters with eliminated redistributions.")

let svg_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "svg" ] ~docv:"FILE"
        ~doc:"Also render the trace as an SVG timeline to $(docv).")

let cmd =
  Cmd.v
    (Cmd.info "trace_check" ~doc:"Validate --trace / --metrics output files")
    Term.(const run $ trace_term $ metrics_term $ require_term $ svg_term)

let () = exit (Cmd.eval' cmd)
