(* workload: trace-driven multi-tenant workload studies over the online
   engine.

   Compiles a deterministic arrival trace from a profile (see
   docs/WORKLOAD.md for the grammar), drives each requested scheduler arm
   over the same trace on a fresh engine, and prints per-arm service-level
   reports. [--csv] writes the comparison table in the byte-stable golden
   format; [--save-trace]/[--replay] round-trip the compiled trace through
   a JSON-lines file.

     dune exec bin/workload.exe -- --profile bursty:jobs=60 --arms delta,hcpa
*)

open Cmdliner
module Cluster = Rats_platform.Cluster
module Admission = Rats_server.Admission
module Profile = Rats_workload.Profile
module Trace = Rats_workload.Trace
module Report = Rats_workload.Report
module Study = Rats_workload_study.Study

let die fmt = Format.kasprintf (fun m -> prerr_endline ("workload: " ^ m); exit 2) fmt

let parse_arms s =
  List.map
    (fun a ->
      match Study.arm_of_string (String.trim a) with
      | Ok arm -> arm
      | Error e -> die "%s" e)
    (String.split_on_char ',' s)

let run cluster profiles arms_s seed jobs queue_limit tenant_limit deadline
    csv save_trace replay trace metrics =
  Common.with_obs trace metrics @@ fun () ->
  let arms = parse_arms arms_s in
  let policy =
    Admission.make
      ?deadline_s:(if deadline > 0. then Some deadline else None)
      ~queue_limit ~tenant_limit ()
  in
  let profiles =
    List.map
      (fun s ->
        match Profile.of_string ~cluster ?seed s with
        | Ok p -> p
        | Error e -> die "%s" e)
      profiles
  in
  let jobs = if jobs = 0 then None else Some jobs in
  (match (save_trace, replay) with
  | Some _, Some _ -> die "--save-trace and --replay are mutually exclusive"
  | _ -> ());
  (match save_trace with
  | None -> ()
  | Some path -> (
      match profiles with
      | [ profile ] ->
          Trace.save path (Trace.compile profile);
          Format.printf "(trace: %s)@." path
      | _ -> die "--save-trace needs exactly one --profile"));
  let reports =
    match replay with
    | Some path -> (
        match profiles with
        | [ profile ] -> (
            match Trace.load path with
            | Error e -> die "%s" e
            | Ok trace ->
                List.map
                  (fun arm ->
                    Study.run_arm ~policy ?jobs ~cluster ~profile ~trace arm)
                  arms)
        | _ -> die "--replay needs exactly one --profile")
    | None ->
        List.concat_map
          (fun profile -> Study.run ~policy ?jobs ~arms ~cluster profile)
          profiles
  in
  List.iter (fun r -> Format.printf "%a@.@." Report.pp r) reports;
  match csv with
  | None -> ()
  | Some path ->
      Study.write_csv path reports;
      Format.printf "(csv: %s)@." path

let profile_term =
  Arg.(
    value
    & opt_all string [ "poisson" ]
    & info [ "profile" ] ~docv:"SPEC"
        ~doc:
          "Workload profile (repeatable): NAME[:key=val,…] with NAME one of \
           poisson, bursty, diurnal, pipeline or mixed and keys jobs, \
           tenants, rate, seed (see docs/WORKLOAD.md).")

let arms_term =
  Arg.(
    value & opt string "delta,hcpa,packing"
    & info [ "arms" ] ~docv:"LIST"
        ~doc:
          "Comma-separated scheduler arms to compare: delta, hcpa, \
           time-cost, packing.")

let seed_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"S"
        ~doc:"Trace seed override (wins over the profile's seed= key).")

let jobs_term =
  Arg.(
    value & opt int 0
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Schedule-computation pool workers; 0 = pool default. Never \
           affects results.")

let queue_limit_term =
  Arg.(
    value & opt int 256
    & info [ "queue-limit" ] ~docv:"N"
        ~doc:"Admission: reject when the waiting queue holds $(docv) jobs.")

let tenant_limit_term =
  Arg.(
    value & opt int 64
    & info [ "tenant-limit" ] ~docv:"N"
        ~doc:
          "Admission: reject a tenant with $(docv) jobs queued or running.")

let deadline_term =
  Arg.(
    value & opt float 0.
    & info [ "deadline" ] ~docv:"S"
        ~doc:
          "Admission: drop a job still queued after $(docv) simulated \
           seconds; 0 disables expiry.")

let csv_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE"
        ~doc:"Write the per-arm comparison table to $(docv) as CSV.")

let save_trace_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-trace" ] ~docv:"FILE"
        ~doc:
          "Compile the (single) profile's trace and write it to $(docv) as \
           JSON lines.")

let replay_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:
          "Replay an on-disk trace (written by $(b,--save-trace)) instead \
           of compiling the profile's; the profile still names the tenants \
           reported on.")

let cmd =
  Cmd.v
    (Cmd.info "workload"
       ~doc:
         "Trace-driven multi-tenant workload studies over the online RATS \
          engine")
    Term.(
      const run $ Common.cluster_term $ profile_term $ arms_term $ seed_term
      $ jobs_term $ queue_limit_term $ tenant_limit_term $ deadline_term
      $ csv_term $ save_trace_term $ replay_term $ Common.trace_term
      $ Common.metrics_term)

let () = exit (Cmd.eval cmd)
