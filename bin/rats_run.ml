(* rats_run: schedule one application on one cluster and report makespans.

   Examples:
     dune exec bin/rats_run.exe -- --kind fft --fft-k 8 --cluster grelon
     dune exec bin/rats_run.exe -- --algo delta --mindelta -0.25 --maxdelta 1
     dune exec bin/rats_run.exe -- --algo all --gantt *)

open Cmdliner
module Suite = Rats_daggen.Suite
module Core = Rats_core
module Procset = Rats_util.Procset

let strategies algo mindelta maxdelta minrho packing =
  let delta = Core.Rats.Delta { mindelta; maxdelta } in
  let timecost = Core.Rats.Timecost { minrho; packing } in
  match algo with
  | `Hcpa -> [ Core.Rats.Baseline ]
  | `Delta -> [ delta ]
  | `Timecost -> [ timecost ]
  | `All -> [ Core.Rats.Baseline; delta; timecost ]

let report problem strategy alloc gantt svg =
  let outcome = Core.Algorithms.run ~alloc problem strategy in
  let sched = outcome.Core.Algorithms.schedule in
  let sim = outcome.Core.Algorithms.simulated in
  (match svg with
  | None -> ()
  | Some prefix ->
      let path =
        Printf.sprintf "%s-%s.svg" prefix (Core.Rats.strategy_name strategy)
      in
      Rats_viz.Gantt.save sched sim
        ~title:
          (Printf.sprintf "%s (simulated makespan %.2fs)"
             (Core.Rats.strategy_name strategy)
             sim.Core.Evaluate.makespan)
        ~path;
      Format.printf "Gantt chart written to %s@." path);
  Format.printf
    "%-10s estimated=%10.2fs simulated=%10.2fs work=%12.0f \
     redistributions=%d avoided=%d remote=%a@."
    (Core.Rats.strategy_name strategy)
    (Core.Schedule.makespan_estimated sched)
    sim.Core.Evaluate.makespan (Core.Schedule.total_work sched)
    sim.Core.Evaluate.redistributions sim.Core.Evaluate.avoided
    Rats_util.Units.pp_bytes sim.Core.Evaluate.remote_bytes;
  if gantt then begin
    Format.printf "  task  procs                        sim-start    sim-end@.";
    Array.iteri
      (fun i start ->
        let e = Core.Schedule.entry sched i in
        Format.printf "  %4d  %-28s %9.2f  %9.2f@." i
          (Format.asprintf "%a" Procset.pp e.Core.Schedule.procs)
          start
          sim.Core.Evaluate.finishes.(i))
      sim.Core.Evaluate.starts
  end

let run config cluster algo mindelta maxdelta minrho packing gantt svg trace
    metrics =
  Common.with_obs trace metrics @@ fun () ->
  let dag = Suite.generate config in
  let problem = Core.Problem.make ~dag ~cluster in
  Format.printf "%s on %s (%a)@." (Suite.name config)
    cluster.Rats_platform.Cluster.name Rats_dag.Dag.pp_stats dag;
  let alloc = Core.Hcpa.allocate problem in
  Format.printf "HCPA allocation: %d processor-slots over %d tasks (max %d)@."
    (Array.fold_left ( + ) 0 alloc)
    (Array.length alloc)
    (Array.fold_left max 0 alloc);
  List.iter
    (fun s -> report problem s alloc gantt svg)
    (strategies algo mindelta maxdelta minrho packing)

let algo_term =
  Arg.(
    value
    & opt (enum [ ("hcpa", `Hcpa); ("delta", `Delta); ("timecost", `Timecost);
                  ("all", `All) ])
        `All
    & info [ "algo" ] ~docv:"ALGO" ~doc:"hcpa, delta, timecost or all.")

let mindelta_term =
  Arg.(value & opt float (-0.5) & info [ "mindelta" ] ~docv:"F" ~doc:"Delta packing bound in [-1,0].")

let maxdelta_term =
  Arg.(value & opt float 0.5 & info [ "maxdelta" ] ~docv:"F" ~doc:"Delta stretching bound >= 0.")

let minrho_term =
  Arg.(value & opt float 0.5 & info [ "minrho" ] ~docv:"F" ~doc:"Time-cost ratio threshold in (0,1].")

let packing_term =
  Arg.(value & opt bool true & info [ "packing" ] ~docv:"BOOL" ~doc:"Time-cost packing toggle.")

let gantt_term =
  Arg.(value & flag & info [ "gantt" ] ~doc:"Print per-task simulated spans.")

let svg_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "svg" ] ~docv:"PREFIX"
        ~doc:"Write a Gantt chart to $(docv)-<algo>.svg for each algorithm.")

let cmd =
  Cmd.v
    (Cmd.info "rats_run" ~doc:"Schedule a mixed-parallel application with RATS")
    Term.(
      const run $ Common.config_term $ Common.cluster_term $ algo_term
      $ mindelta_term $ maxdelta_term $ minrho_term $ packing_term $ gantt_term
      $ svg_term $ Common.trace_term $ Common.metrics_term)

let () = exit (Cmd.eval cmd)
