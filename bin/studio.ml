(* studio: render run artifacts into self-contained HTML.

   Three subcommands over the artifact formats the other six binaries
   already write — no new formats, no external assets:

     report   one run's artifacts -> a single offline HTML report
     diff     A/B two BENCH_runtime.json files, text + optional HTML
     serve    live auto-refreshing monitor of a running sweep

   Examples:
     dune exec bin/studio.exe -- report --bench BENCH_runtime.json \
       --trace trace.json --metrics metrics.json --out report.html
     dune exec bin/studio.exe -- diff old/BENCH_runtime.json BENCH_runtime.json
     dune exec bin/studio.exe -- serve --journal sweep.journal \
       --metrics metrics.json --port 8080 *)

open Cmdliner
module Studio = Rats_studio
module Json = Rats_obs.Json

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> Ok contents
  | exception Sys_error msg -> Error msg

let ( let* ) = Result.bind

(* --- report -------------------------------------------------------------- *)

let load_trace path =
  let* contents = read_file path in
  let* json = Json.parse contents in
  Rats_obs.Trace.events_of_json json

let basename_caption path = Printf.sprintf "%s (embedded)" path

let run_report bench metrics trace workloads svgs title out =
  let result =
    let warn what path msg =
      Printf.eprintf "studio: warning: %s %s: %s (section omitted)\n%!" what
        path msg
    in
    let bench_t =
      Option.bind bench (fun path ->
          match Studio.Bench.load path with
          | Ok b -> Some b
          | Error msg ->
              warn "bench report" path msg;
              None)
    in
    let snapshot =
      Option.bind metrics (fun path ->
          match Rats_obs.Snapshot.of_file path with
          | Ok s -> Some s
          | Error msg ->
              warn "metrics snapshot" path msg;
              None)
    in
    let trace_events =
      Option.bind trace (fun path ->
          match load_trace path with
          | Ok events -> Some events
          | Error msg ->
              warn "trace" path msg;
              None)
    in
    let* workloads =
      List.fold_left
        (fun acc path ->
          let* acc = acc in
          let* contents = read_file path in
          Ok ((Filename.basename path, contents) :: acc))
        (Ok []) workloads
    in
    let* figures =
      List.fold_left
        (fun acc path ->
          let* acc = acc in
          let* contents = read_file path in
          Ok ((basename_caption path, contents) :: acc))
        (Ok []) svgs
    in
    let input =
      {
        Studio.Page.title;
        bench = bench_t;
        snapshot;
        trace = trace_events;
        workloads = List.rev workloads;
        figures = List.rev figures;
      }
    in
    Studio.Page.write input out;
    Printf.printf "report written to %s\n" out;
    Ok ()
  in
  match result with
  | Ok () -> 0
  | Error msg ->
      Printf.eprintf "studio: %s\n" msg;
      1

let bench_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "bench" ] ~docv:"FILE"
        ~doc:"BENCH_runtime.json perf report to include.")

let metrics_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Metrics snapshot JSON to include (overrides the one embedded in \
           the bench report).")

let trace_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Chrome trace-event file to render as an inline timeline.")

let workload_term =
  Arg.(
    value & opt_all string []
    & info [ "workload" ] ~docv:"CSV"
        ~doc:
          "Workload comparison CSV to render as a table (repeatable); the \
           fairness and p99 columns are highlighted.")

let svg_in_term =
  Arg.(
    value & opt_all string []
    & info [ "svg" ] ~docv:"FILE"
        ~doc:"Pre-rendered SVG figure to embed verbatim (repeatable).")

let title_term default =
  Arg.(
    value & opt string default
    & info [ "title" ] ~docv:"TEXT" ~doc:"Page title.")

let out_term default =
  Arg.(
    value & opt string default
    & info [ "out" ] ~docv:"FILE" ~doc:"Output HTML file.")

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render one run's artifacts into a single self-contained HTML \
          report (inline SVG figures, no external fetches).")
    Term.(
      const run_report $ bench_term $ metrics_term $ trace_term
      $ workload_term $ svg_in_term
      $ title_term "RATS run report"
      $ out_term "report.html")

(* --- diff ---------------------------------------------------------------- *)

let run_diff a b threshold out =
  let result =
    let* ta = Studio.Bench.load a in
    let* tb = Studio.Bench.load b in
    print_string (Studio.Diff.to_text ~threshold ta tb);
    (match out with
    | None -> ()
    | Some path ->
        let html = Studio.Diff.to_html ~threshold ta tb in
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc html);
        Printf.printf "\nhtml diff written to %s\n" path);
    Ok ()
  in
  match result with
  | Ok () -> 0
  | Error msg ->
      Printf.eprintf "studio: %s\n" msg;
      1

let a_term =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"A" ~doc:"Baseline BENCH_runtime.json.")

let b_term =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"B" ~doc:"Candidate BENCH_runtime.json.")

let threshold_term =
  Arg.(
    value & opt float 5.
    & info [ "threshold" ] ~docv:"PCT"
        ~doc:
          "Wall-time delta (percent) beyond which a target is flagged as a \
           regression or improvement.")

let diff_cmd =
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two BENCH_runtime.json files: per-target wall-time \
          deltas and changed counters, with warnings when the runs are \
          not comparable (different scale, schema, or cache warmth).")
    Term.(
      const run_diff $ a_term $ b_term $ threshold_term
      $ Arg.(
          value
          & opt (some string) None
          & info [ "out" ] ~docv:"FILE"
              ~doc:"Also write the diff as a standalone HTML page."))

(* --- serve --------------------------------------------------------------- *)

let run_serve journal metrics bench port refresh max_requests title =
  let source =
    Studio.Live.make ?journal ?metrics ?bench ~refresh_s:refresh ~title ()
  in
  match
    Studio.Httpd.serve ~port ?max_requests
      ~on_listen:(fun bound ->
        Printf.printf "studio: serving http://127.0.0.1:%d/ (ctrl-C to stop)\n%!"
          bound)
      (fun _path -> Studio.Live.render source)
  with
  | () -> 0
  | exception Unix.Unix_error (err, _, _) ->
      Printf.eprintf "studio: serve: %s\n" (Unix.error_message err);
      1

let journal_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:"Resumable sweep journal to tail (read-only, torn-tail safe).")

let port_term =
  Arg.(
    value & opt int 8080
    & info [ "port" ] ~docv:"PORT"
        ~doc:"TCP port to listen on (0 lets the kernel pick).")

let refresh_term =
  Arg.(
    value & opt int 2
    & info [ "refresh" ] ~docv:"SECONDS"
        ~doc:"Auto-refresh interval baked into the served page.")

let max_requests_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-requests" ] ~docv:"N"
        ~doc:"Exit after answering $(docv) requests (smoke tests).")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a live auto-refreshing HTML monitor of a running sweep \
          over a loopback HTTP socket, re-reading the journal, metrics \
          snapshot, and bench report on every request.")
    Term.(
      const run_serve $ journal_term $ metrics_term $ bench_term $ port_term
      $ refresh_term $ max_requests_term
      $ title_term "RATS live sweep monitor")

let cmd =
  Cmd.group
    (Cmd.info "studio"
       ~doc:"Render run artifacts into self-contained HTML reports")
    [ report_cmd; diff_cmd; serve_cmd ]

let () = exit (Cmd.eval' cmd)
