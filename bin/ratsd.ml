(* ratsd: the online scheduler-as-a-service daemon.

   Serves the Server.Engine over a Unix-domain socket speaking
   Server.Protocol (length-prefixed JSON frames): clients submit DAGs,
   subscribe to the event stream, trigger drains and read the log. The
   daemon is single-threaded by design — admission, dispatch and the
   shared simulation run inside the select loop, so the event log is a
   deterministic function of the accepted submissions, which the journal
   makes crash-recoverable (--resume).

   Robustness (docs/SERVER.md "Failure semantics"): client sockets are
   non-blocking with bounded per-client output buffers, so a slow reader
   is evicted instead of head-of-line-blocking the loop; when the total
   buffered output crosses --backlog-limit the daemon degrades (sheds
   event frames and refuses new watch/log streams until the backlog
   halves); RATS_FAULT arms the server-side injection sites
   (server.read, server.client, journal.append, engine.step,
   replay.task).

   Examples:
     dune exec bin/ratsd.exe -- --socket /tmp/ratsd.sock &
     dune exec bin/ratsd.exe -- --selftest --load-jobs 200 --tenants 8
     dune exec bin/ratsd.exe -- --resume --journal myrun *)

open Cmdliner
module Server = Rats_server
module Engine = Rats_server.Engine
module Protocol = Rats_server.Protocol
module Load = Rats_server.Load
module Journal = Rats_runtime.Journal
module Fault = Rats_runtime.Fault
module Stats = Rats_util.Stats
module Core = Rats_core
module J = Rats_obs.Json
module Metrics = Rats_obs.Metrics
module Instr = Rats_obs.Instr

(* --- service statistics as JSON ----------------------------------------- *)

let num x = J.Num x
let int n = J.Num (float_of_int n)

let stats_json (s : Engine.stats) =
  J.Obj
    [
      ("submitted", int s.Engine.submitted);
      ("admitted", int s.Engine.admitted);
      ("rejected", int s.Engine.rejected);
      ("completed", int s.Engine.completed);
      ("expired", int s.Engine.expired);
      ("queue_depth_max", int s.Engine.queue_depth_max);
      ("busy_time", num s.Engine.busy_time);
      ("end_time", num s.Engine.end_time);
      ("utilization", num s.Engine.utilization);
      ("sojourn_p50", num (Stats.percentile s.Engine.sojourns 50.));
      ("sojourn_p99", num (Stats.percentile s.Engine.sojourns 99.));
    ]

(* --- connection handling ------------------------------------------------- *)

type client = {
  cid : int;
  fd : Unix.file_descr;
  decoder : Protocol.Decoder.t;
  mutable watching : bool;
  mutable alive : bool;
  outq : string Queue.t;  (* frames not yet started *)
  mutable out_cur : string;  (* frame currently being written *)
  mutable out_off : int;
  mutable out_pending : int;  (* total unwritten bytes across outq + out_cur *)
  mutable reads : int;  (* chunks read, keys the server.read fault site *)
  mutable msgs : int;  (* messages handled, keys server.client *)
}

type srv = {
  engine : Engine.t;
  fault : Fault.t option;
  journal : Journal.t option;
  client_buffer : int;
  backlog_limit : int;
  mutable clients : client list;
  mutable backlog : int;  (* sum of out_pending over live clients *)
  mutable degraded : bool;
  mutable n_evicted : int;
  mutable n_shed : int;
  mutable next_cid : int;
}

let kill srv client =
  if client.alive then begin
    client.alive <- false;
    srv.backlog <- srv.backlog - client.out_pending;
    client.out_pending <- 0;
    Queue.clear client.outq;
    client.out_cur <- "";
    client.out_off <- 0
  end

let update_degraded srv =
  if (not srv.degraded) && srv.backlog > srv.backlog_limit then begin
    srv.degraded <- true;
    Printf.eprintf
      "ratsd: degraded: %d bytes of client backlog (limit %d); shedding \
       event streams\n\
       %!"
      srv.backlog srv.backlog_limit
  end
  else if srv.degraded && srv.backlog < srv.backlog_limit / 2 then begin
    srv.degraded <- false;
    Printf.eprintf "ratsd: recovered: backlog down to %d bytes\n%!" srv.backlog
  end

let evict srv client reason =
  if client.alive then begin
    srv.n_evicted <- srv.n_evicted + 1;
    Metrics.incr Instr.server_clients_evicted;
    Printf.eprintf "ratsd: evicting client #%d (%s)\n%!" client.cid reason;
    kill srv client;
    update_degraded srv
  end

(* Drain as much buffered output as the socket accepts right now; never
   blocks. EAGAIN leaves the rest for the next writable round. *)
let rec flush_client srv client =
  if client.alive then
    if client.out_off >= String.length client.out_cur then (
      match Queue.take_opt client.outq with
      | None -> ()
      | Some frame ->
          client.out_cur <- frame;
          client.out_off <- 0;
          flush_client srv client)
    else
      let remaining = String.length client.out_cur - client.out_off in
      match
        Unix.write_substring client.fd client.out_cur client.out_off remaining
      with
      | 0 -> ()
      | n ->
          client.out_off <- client.out_off + n;
          client.out_pending <- client.out_pending - n;
          srv.backlog <- srv.backlog - n;
          flush_client srv client
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
          kill srv client

let send srv client msg =
  if client.alive then begin
    match msg with
    | Protocol.Event _ when srv.degraded ->
        (* Shed streamed events first: watchers are best-effort, command
           replies are not. *)
        srv.n_shed <- srv.n_shed + 1;
        Metrics.incr Instr.server_events_shed
    | _ ->
        let frame = Protocol.to_frame (Protocol.server_to_json msg) in
        Queue.add frame client.outq;
        client.out_pending <- client.out_pending + String.length frame;
        srv.backlog <- srv.backlog + String.length frame;
        flush_client srv client;
        (* The per-client budget polices the unsolicited event stream: a
           watcher that stops reading gets evicted. Replies the client
           asked for (even a large Log) may exceed the budget — the client
           is about to read them, and the global backlog limit still
           bounds the total. *)
        (match msg with
        | Protocol.Event _ when client.out_pending > srv.client_buffer ->
            evict srv client
              (Printf.sprintf "%d bytes of output buffered, budget %d"
                 client.out_pending srv.client_buffer)
        | _ -> update_degraded srv)
  end

let health_json srv =
  let watchers =
    List.length (List.filter (fun c -> c.alive && c.watching) srv.clients)
  in
  let live = List.length (List.filter (fun c -> c.alive) srv.clients) in
  J.Obj
    [
      ("ready", J.Bool (not srv.degraded));
      ("degraded", J.Bool srv.degraded);
      ("clients", int live);
      ("watchers", int watchers);
      ("backlog_bytes", int srv.backlog);
      ("evicted", int srv.n_evicted);
      ("events_shed", int srv.n_shed);
      ("queue_depth", int (Engine.queue_depth srv.engine));
      ("free_procs", int (Engine.free_procs srv.engine));
      ("now", num (Engine.now srv.engine));
      ( "journal_writable",
        J.Bool
          (match srv.journal with Some j -> Journal.writable j | None -> false)
      );
      ( "fault",
        match srv.fault with Some f -> J.Str (Fault.spec f) | None -> J.Null );
    ]

let handle_msg srv client stop = function
  | Protocol.Ping -> send srv client Protocol.Pong
  | Protocol.Health -> send srv client (Protocol.Healthy (health_json srv))
  | Protocol.Watch ->
      if srv.degraded then
        send srv client
          (Protocol.Err "degraded: event streaming disabled until the \
                         backlog clears")
      else begin
        client.watching <- true;
        send srv client Protocol.Watching
      end
  | Protocol.Plan request -> (
      let cluster = Engine.cluster srv.engine in
      match
        Server.Api.validate
          ~n_procs:(Rats_platform.Cluster.n_procs cluster)
          request
      with
      | Error e -> send srv client (Protocol.Err e)
      | Ok k ->
          let share = Server.Api.subcluster cluster k in
          let schedule = Server.Api.plan ~cluster:share request in
          let response =
            Server.Api.response_of_schedule
              ~job_name:(Server.Api.spec_name request.Server.Api.job)
              ~strategy:(Core.Rats.strategy_name request.Server.Api.strategy)
              schedule
          in
          send srv client
            (Protocol.Placed (Server.Api.response_to_json response)))
  | Protocol.Submit { at; request } -> (
      match Engine.submit srv.engine ?at request with
      | Ok id -> send srv client (Protocol.Ack { id })
      | Error e -> send srv client (Protocol.Err e))
  | Protocol.Drain ->
      let end_time = Engine.drain srv.engine in
      send srv client (Protocol.Drained { end_time })
  | Protocol.Log ->
      if srv.degraded then
        send srv client
          (Protocol.Err "degraded: log streaming disabled until the backlog \
                         clears")
      else send srv client (Protocol.Log (Engine.events srv.engine))
  | Protocol.Stats ->
      send srv client (Protocol.Stats (stats_json (Engine.stats srv.engine)))
  | Protocol.Shutdown ->
      send srv client Protocol.Bye;
      stop := true

let drain_frames srv client stop =
  let rec go () =
    match Protocol.Decoder.next client.decoder with
    | Ok None -> ()
    | Ok (Some doc) ->
        client.msgs <- client.msgs + 1;
        (match srv.fault with
        | Some f
          when Fault.fires f Fault.Crash ~site:"server.client"
                 ~key:(Printf.sprintf "%d:%d" client.cid client.msgs) ->
            (* Injected mid-session disconnect: the client sees a closed
               socket, the daemon must shrug it off. *)
            Metrics.incr Instr.fault_injections;
            Printf.eprintf "ratsd: injected disconnect of client #%d\n%!"
              client.cid;
            kill srv client
        | _ -> (
            match Protocol.client_of_json doc with
            | Ok msg -> handle_msg srv client stop msg
            | Error e -> send srv client (Protocol.Err e)));
        if client.alive && not !stop then go ()
    | Error e ->
        send srv client (Protocol.Err ("protocol error: " ^ e));
        kill srv client
  in
  go ()

(* --- startup probe ------------------------------------------------------- *)

(* Only remove a socket file that no daemon answers on. A live daemon
   (answers ping) or an unidentifiable listener makes startup fail
   instead of stealing the path; a non-socket file is never touched. *)
let claim_socket_path socket_path =
  match Unix.stat socket_path with
  | exception Unix.Unix_error (ENOENT, _, _) -> Ok ()
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
      Fun.protect ~finally (fun () ->
          match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
          | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) ->
              (* Stale: nothing is listening. *)
              (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
              Ok ()
          | () -> (
              let ping =
                Protocol.to_frame (Protocol.client_to_json Protocol.Ping)
              in
              Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.;
              Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.;
              match
                let n = String.length ping in
                let pos = ref 0 in
                while !pos < n do
                  pos := !pos + Unix.write_substring fd ping !pos (n - !pos)
                done;
                Unix.read fd (Bytes.create 4096) 0 4096
              with
              | 0 ->
                  (* Listener hung up without answering: likely a daemon
                     shutting down — treat the path as stale. *)
                  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
                  Ok ()
              | _ ->
                  Error
                    (Printf.sprintf
                       "a live daemon is already serving %s (it answered); \
                        use --socket for a second instance"
                       socket_path)
              | exception Unix.Unix_error _ ->
                  Error
                    (Printf.sprintf
                       "something is listening on %s but did not answer a \
                        ping; refusing to replace it"
                       socket_path))))
  | _ ->
      Error
        (Printf.sprintf "%s exists and is not a socket; refusing to remove it"
           socket_path)
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot stat %s: %s" socket_path (Unix.error_message e))

(* --- select loop --------------------------------------------------------- *)

(* Cap the kernel-side send buffer so a non-reading client backs up into
   our accounted buffer quickly (and deterministically small --client-buffer
   settings actually bite). The kernel clamps to its own minimum. *)
let tune_sndbuf fd client_buffer =
  try Unix.setsockopt_int fd Unix.SO_SNDBUF (min client_buffer (256 * 1024))
  with Unix.Unix_error _ -> ()

let final_flush srv =
  (* Best-effort, bounded: give slow-but-live clients ~1s to take the
     shutdown replies, then close regardless. *)
  let deadline = Instr.now_s () +. 1. in
  let pending () =
    List.filter (fun c -> c.alive && c.out_pending > 0) srv.clients
  in
  let rec go () =
    match pending () with
    | [] -> ()
    | ps when Instr.now_s () < deadline ->
        let fds = List.map (fun c -> c.fd) ps in
        (match Unix.select [] fds [] 0.05 with
        | _, writable, _ ->
            List.iter
              (fun c -> if List.mem c.fd writable then flush_client srv c)
              ps
        | exception Unix.Unix_error (EINTR, _, _) -> ());
        go ()
    | _ -> ()
  in
  go ()

let serve srv socket_path =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX socket_path);
  Unix.listen lfd 64;
  Format.printf "ratsd: listening on %s@." socket_path;
  (* Events stream synchronously to every watcher, including during a
     drain triggered by another connection; send only buffers (and may
     evict), it never blocks the loop. *)
  Engine.subscribe srv.engine (fun ev ->
      List.iter
        (fun c -> if c.watching then send srv c (Protocol.Event ev))
        srv.clients);
  let stop = ref false in
  let buf = Bytes.create 65536 in
  while not !stop do
    let readable_fds =
      lfd
      :: List.filter_map
           (fun c -> if c.alive then Some c.fd else None)
           srv.clients
    in
    let writable_fds =
      List.filter_map
        (fun c -> if c.alive && c.out_pending > 0 then Some c.fd else None)
        srv.clients
    in
    (match Unix.select readable_fds writable_fds [] (-1.) with
    | readable, writable, _ ->
        List.iter
          (fun fd ->
            match List.find_opt (fun c -> c.fd = fd) srv.clients with
            | Some c when c.alive -> flush_client srv c
            | _ -> ())
          writable;
        update_degraded srv;
        List.iter
          (fun fd ->
            if fd = lfd then begin
              let cfd, _ = Unix.accept lfd in
              Unix.set_nonblock cfd;
              tune_sndbuf cfd srv.client_buffer;
              let cid = srv.next_cid in
              srv.next_cid <- cid + 1;
              srv.clients <-
                srv.clients
                @ [
                    {
                      cid;
                      fd = cfd;
                      decoder = Protocol.Decoder.create ();
                      watching = false;
                      alive = true;
                      outq = Queue.create ();
                      out_cur = "";
                      out_off = 0;
                      out_pending = 0;
                      reads = 0;
                      msgs = 0;
                    };
                  ]
            end
            else
              match List.find_opt (fun c -> c.fd = fd) srv.clients with
              | None -> ()
              | Some client when not client.alive -> ()
              | Some client -> (
                  match Unix.read fd buf 0 (Bytes.length buf) with
                  | 0 -> kill srv client
                  | n ->
                      client.reads <- client.reads + 1;
                      let chunk = Bytes.sub_string buf 0 n in
                      (* server.read: a corrupt chunk desynchronizes the
                         frame stream; the decoder's sticky error drops
                         exactly this client. *)
                      let chunk =
                        Fault.corrupt_payload srv.fault ~site:"server.read"
                          ~key:
                            (Printf.sprintf "%d:%d" client.cid client.reads)
                          chunk
                      in
                      Protocol.Decoder.feed client.decoder
                        (Bytes.of_string chunk) 0 (String.length chunk);
                      drain_frames srv client stop
                  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _)
                    ->
                      ()
                  | exception Unix.Unix_error (ECONNRESET, _, _) ->
                      kill srv client))
          readable
    | exception Unix.Unix_error (EINTR, _, _) -> ());
    srv.clients <-
      List.filter
        (fun c ->
          if c.alive then true
          else begin
            (try Unix.close c.fd with Unix.Unix_error _ -> ());
            false
          end)
        srv.clients
  done;
  final_flush srv;
  List.iter
    (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    srv.clients;
  Unix.close lfd;
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ())

(* --- selftest: simulated-time load driver -------------------------------- *)

let run_profile config profile =
  let engine = Engine.create config in
  let report = Load.run engine profile in
  let log =
    String.concat "\n"
      (List.map
         (fun ev -> J.to_string (Server.Api.stamped_to_json ev))
         (Engine.events engine))
  in
  (report, log)

let selftest cluster policy jobs fault load_jobs tenants rate seed =
  let config =
    { (Engine.default_config cluster) with Engine.policy; jobs; fault }
  in
  let failures = ref 0 in
  List.iter
    (fun strategy ->
      let profile =
        {
          (Load.default_profile cluster) with
          Load.n_jobs = load_jobs;
          n_tenants = tenants;
          rate;
          seed;
          strategy;
        }
      in
      let name = Core.Rats.strategy_name strategy in
      Format.printf "@.=== %s: %d jobs, %d tenants, %.3f jobs/s ===@." name
        load_jobs tenants rate;
      let report, log1 = run_profile config profile in
      let _, log2 = run_profile config profile in
      Format.printf "%a@." Load.pp_report report;
      if log1 <> log2 then begin
        incr failures;
        Format.printf "FAIL: %s event log differs between identical runs@."
          name
      end
      else
        Format.printf "determinism: %d events, re-run byte-identical@."
          (List.length (String.split_on_char '\n' log1));
      if
        report.Load.completed + report.Load.rejected + report.Load.expired
        <> report.Load.jobs
      then begin
        incr failures;
        Format.printf "FAIL: %s lost jobs (%d submitted, %d completed, %d \
                       rejected, %d expired)@."
          name report.Load.jobs report.Load.completed report.Load.rejected
          report.Load.expired
      end)
    [ Core.Rats.Baseline; Core.Rats.Delta Core.Rats.naive_delta ];
  if !failures > 0 then begin
    Format.printf "@.selftest: %d failure(s)@." !failures;
    exit 1
  end;
  Format.printf "@.selftest: OK@."

(* --- command line -------------------------------------------------------- *)

let run cluster socket selftest_flag queue_limit tenant_limit shed_watermark
    retry_after deadline client_buffer backlog_limit jobs journal_name
    journal_dir resume load_jobs tenants rate seed trace metrics =
  Common.with_obs trace metrics @@ fun () ->
  let fault = Fault.of_env () in
  let policy =
    Rats_server.Admission.make ~shed_watermark ~retry_after_s:retry_after
      ?deadline_s:(if deadline > 0. then Some deadline else None)
      ~queue_limit ~tenant_limit ()
  in
  let jobs = if jobs = 0 then None else Some jobs in
  (match fault with
  | Some f -> Printf.eprintf "ratsd: fault injection armed: %s\n%!" (Fault.spec f)
  | None -> ());
  if selftest_flag then
    selftest cluster policy jobs fault load_jobs tenants rate seed
  else begin
    match claim_socket_path socket with
    | Error msg ->
        prerr_endline ("ratsd: " ^ msg);
        exit 1
    | Ok () ->
        let journal =
          Journal.open_ ?dir:journal_dir ?fault ~name:journal_name ~resume ()
        in
        let config =
          { (Engine.default_config cluster) with Engine.policy; jobs; fault }
        in
        let engine = Engine.create ~journal config in
        if resume then begin
          let n = Engine.resume engine in
          Format.printf "ratsd: resumed %d journaled submission(s)@." n
        end;
        let srv =
          {
            engine;
            fault;
            journal = Some journal;
            client_buffer;
            backlog_limit;
            clients = [];
            backlog = 0;
            degraded = false;
            n_evicted = 0;
            n_shed = 0;
            next_cid = 0;
          }
        in
        Fun.protect
          ~finally:(fun () -> Journal.close journal)
          (fun () -> serve srv socket)
  end

let socket_term =
  Arg.(
    value
    & opt string "/tmp/ratsd.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~env:(Cmd.Env.info "RATS_SOCKET")
        ~doc:"Unix-domain socket to listen on.")

let selftest_term =
  Arg.(
    value & flag
    & info [ "selftest" ]
        ~doc:
          "Run the simulated-time load driver instead of serving: Poisson \
           arrivals from several tenants under both HCPA and RATS, with a \
           byte-identical re-run determinism check. Exits non-zero on any \
           failure.")

let queue_limit_term =
  Arg.(
    value & opt int 256
    & info [ "queue-limit" ] ~docv:"N"
        ~doc:"Admission: reject when the waiting queue holds $(docv) jobs.")

let tenant_limit_term =
  Arg.(
    value & opt int 64
    & info [ "tenant-limit" ] ~docv:"N"
        ~doc:
          "Admission: reject a tenant with $(docv) jobs queued or running.")

let shed_watermark_term =
  Arg.(
    value & opt float 1.
    & info [ "shed-watermark" ] ~docv:"F"
        ~doc:
          "Admission: shed arrivals (reject overloaded, with a retry-after \
           hint) once the queue is $(docv) full (fraction of the queue \
           limit, in (0,1]); 1 disables shedding.")

let retry_after_term =
  Arg.(
    value & opt float 1.
    & info [ "retry-after" ] ~docv:"S"
        ~doc:
          "Admission: base retry-after hint in simulated seconds carried \
           by overloaded rejections, scaled by how far past the watermark \
           the queue is.")

let deadline_term =
  Arg.(
    value & opt float 0.
    & info [ "deadline" ] ~docv:"S"
        ~doc:
          "Admission: drop a queued job (expired event) if it has not \
           started $(docv) simulated seconds after arrival; 0 disables.")

let client_buffer_term =
  Arg.(
    value
    & opt int (4 * 1024 * 1024)
    & info [ "client-buffer" ] ~docv:"BYTES"
        ~doc:
          "Evict a client once $(docv) bytes of output are buffered for it \
           (a slow or stalled reader never blocks the service).")

let backlog_limit_term =
  Arg.(
    value
    & opt int (64 * 1024 * 1024)
    & info [ "backlog-limit" ] ~docv:"BYTES"
        ~doc:
          "Degrade (shed event streams, refuse new watch/log) when the \
           total output buffered across clients exceeds $(docv) bytes; \
           recover below half.")

let jobs_term =
  Arg.(
    value & opt int 0
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for batch schedule computation; 0 = automatic. \
           Never affects results.")

let journal_term =
  Arg.(
    value & opt string "ratsd"
    & info [ "journal" ] ~docv:"NAME"
        ~doc:"Journal name for crash-recoverable submissions.")

let journal_dir_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal-dir" ] ~docv:"DIR"
        ~doc:"Journal directory (default: bench_results/.journal).")

let resume_term =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Reload the journaled submissions of a previous run before \
           serving; a subsequent drain replays them bit-exactly.")

let load_jobs_term =
  Arg.(
    value & opt int 120
    & info [ "load-jobs" ] ~docv:"N" ~doc:"Selftest: total jobs to submit.")

let tenants_term =
  Arg.(
    value & opt int 4
    & info [ "tenants" ] ~docv:"N" ~doc:"Selftest: number of tenants.")

let rate_term =
  Arg.(
    value & opt float 0.05
    & info [ "rate" ] ~docv:"R"
        ~doc:"Selftest: aggregate arrival rate, jobs per simulated second.")

let seed_term =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"S" ~doc:"Selftest: arrival-trace random seed.")

let cmd =
  Cmd.v
    (Cmd.info "ratsd"
       ~doc:"Online RATS scheduling service over a Unix-domain socket")
    Term.(
      const run $ Common.cluster_term $ socket_term $ selftest_term
      $ queue_limit_term $ tenant_limit_term $ shed_watermark_term
      $ retry_after_term $ deadline_term $ client_buffer_term
      $ backlog_limit_term $ jobs_term $ journal_term $ journal_dir_term
      $ resume_term $ load_jobs_term $ tenants_term $ rate_term $ seed_term
      $ Common.trace_term $ Common.metrics_term)

let () = exit (Cmd.eval cmd)
