(* ratsd: the online scheduler-as-a-service daemon.

   Serves the Server.Engine over a Unix-domain socket speaking
   Server.Protocol (length-prefixed JSON frames): clients submit DAGs,
   subscribe to the event stream, trigger drains and read the log. The
   daemon is single-threaded by design — admission, dispatch and the
   shared simulation run inside the select loop, so the event log is a
   deterministic function of the accepted submissions, which the journal
   makes crash-recoverable (--resume).

   Examples:
     dune exec bin/ratsd.exe -- --socket /tmp/ratsd.sock &
     dune exec bin/ratsd.exe -- --selftest --load-jobs 200 --tenants 8
     dune exec bin/ratsd.exe -- --resume --journal myrun *)

open Cmdliner
module Server = Rats_server
module Engine = Rats_server.Engine
module Protocol = Rats_server.Protocol
module Load = Rats_server.Load
module Journal = Rats_runtime.Journal
module Stats = Rats_util.Stats
module Core = Rats_core
module J = Rats_obs.Json

(* --- service statistics as JSON ----------------------------------------- *)

let num x = J.Num x
let int n = J.Num (float_of_int n)

let stats_json (s : Engine.stats) =
  J.Obj
    [
      ("submitted", int s.Engine.submitted);
      ("admitted", int s.Engine.admitted);
      ("rejected", int s.Engine.rejected);
      ("completed", int s.Engine.completed);
      ("queue_depth_max", int s.Engine.queue_depth_max);
      ("busy_time", num s.Engine.busy_time);
      ("end_time", num s.Engine.end_time);
      ("utilization", num s.Engine.utilization);
      ("sojourn_p50", num (Stats.percentile s.Engine.sojourns 50.));
      ("sojourn_p99", num (Stats.percentile s.Engine.sojourns 99.));
    ]

(* --- connection handling ------------------------------------------------- *)

type client = {
  fd : Unix.file_descr;
  decoder : Protocol.Decoder.t;
  mutable watching : bool;
  mutable alive : bool;
}

let send client msg =
  if client.alive then begin
    let frame = Protocol.to_frame (Protocol.server_to_json msg) in
    let n = String.length frame in
    let pos = ref 0 in
    try
      while !pos < n do
        pos := !pos + Unix.write_substring client.fd frame !pos (n - !pos)
      done
    with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> client.alive <- false
  end

let handle_msg engine client stop = function
  | Protocol.Ping -> send client Protocol.Pong
  | Protocol.Watch ->
      client.watching <- true;
      send client Protocol.Watching
  | Protocol.Plan request -> (
      let cluster = Engine.cluster engine in
      match
        Server.Api.validate
          ~n_procs:(Rats_platform.Cluster.n_procs cluster)
          request
      with
      | Error e -> send client (Protocol.Err e)
      | Ok k ->
          let share = Server.Api.subcluster cluster k in
          let schedule = Server.Api.plan ~cluster:share request in
          let response =
            Server.Api.response_of_schedule
              ~job_name:(Server.Api.spec_name request.Server.Api.job)
              ~strategy:(Core.Rats.strategy_name request.Server.Api.strategy)
              schedule
          in
          send client
            (Protocol.Placed (Server.Api.response_to_json response)))
  | Protocol.Submit { at; request } -> (
      match Engine.submit engine ?at request with
      | Ok id -> send client (Protocol.Ack { id })
      | Error e -> send client (Protocol.Err e))
  | Protocol.Drain ->
      let end_time = Engine.drain engine in
      send client (Protocol.Drained { end_time })
  | Protocol.Log -> send client (Protocol.Log (Engine.events engine))
  | Protocol.Stats ->
      send client (Protocol.Stats (stats_json (Engine.stats engine)))
  | Protocol.Shutdown ->
      send client Protocol.Bye;
      stop := true

let drain_frames engine client stop =
  let rec go () =
    match Protocol.Decoder.next client.decoder with
    | Ok None -> ()
    | Ok (Some doc) ->
        (match Protocol.client_of_json doc with
        | Ok msg -> handle_msg engine client stop msg
        | Error e -> send client (Protocol.Err e));
        if not !stop then go ()
    | Error e ->
        send client (Protocol.Err ("protocol error: " ^ e));
        client.alive <- false
  in
  go ()

let serve engine socket_path =
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX socket_path);
  Unix.listen lfd 64;
  Format.printf "ratsd: listening on %s@." socket_path;
  let clients = ref [] in
  (* Events stream synchronously to every watcher, including during a
     drain triggered by another connection. *)
  Engine.subscribe engine (fun ev ->
      List.iter
        (fun c -> if c.watching then send c (Protocol.Event ev))
        !clients);
  let stop = ref false in
  let buf = Bytes.create 65536 in
  while not !stop do
    let fds =
      lfd :: List.filter_map (fun c -> if c.alive then Some c.fd else None) !clients
    in
    (match Unix.select fds [] [] (-1.) with
    | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = lfd then begin
              let cfd, _ = Unix.accept lfd in
              clients :=
                !clients
                @ [
                    {
                      fd = cfd;
                      decoder = Protocol.Decoder.create ();
                      watching = false;
                      alive = true;
                    };
                  ]
            end
            else
              match List.find_opt (fun c -> c.fd = fd) !clients with
              | None -> ()
              | Some client -> (
                  match Unix.read fd buf 0 (Bytes.length buf) with
                  | 0 -> client.alive <- false
                  | n ->
                      Protocol.Decoder.feed client.decoder buf 0 n;
                      drain_frames engine client stop
                  | exception Unix.Unix_error (ECONNRESET, _, _) ->
                      client.alive <- false))
          readable
    | exception Unix.Unix_error (EINTR, _, _) -> ());
    clients :=
      List.filter
        (fun c ->
          if c.alive then true
          else begin
            (try Unix.close c.fd with Unix.Unix_error _ -> ());
            false
          end)
        !clients
  done;
  List.iter
    (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    !clients;
  Unix.close lfd;
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ())

(* --- selftest: simulated-time load driver -------------------------------- *)

let run_profile config profile =
  let engine = Engine.create config in
  let report = Load.run engine profile in
  let log =
    String.concat "\n"
      (List.map
         (fun ev -> J.to_string (Server.Api.stamped_to_json ev))
         (Engine.events engine))
  in
  (report, log)

let selftest cluster policy jobs load_jobs tenants rate seed =
  let config =
    { (Engine.default_config cluster) with Engine.policy; jobs }
  in
  let failures = ref 0 in
  List.iter
    (fun strategy ->
      let profile =
        {
          (Load.default_profile cluster) with
          Load.n_jobs = load_jobs;
          n_tenants = tenants;
          rate;
          seed;
          strategy;
        }
      in
      let name = Core.Rats.strategy_name strategy in
      Format.printf "@.=== %s: %d jobs, %d tenants, %.3f jobs/s ===@." name
        load_jobs tenants rate;
      let report, log1 = run_profile config profile in
      let _, log2 = run_profile config profile in
      Format.printf "%a@." Load.pp_report report;
      if log1 <> log2 then begin
        incr failures;
        Format.printf "FAIL: %s event log differs between identical runs@."
          name
      end
      else
        Format.printf "determinism: %d events, re-run byte-identical@."
          (List.length (String.split_on_char '\n' log1));
      if report.Load.completed + report.Load.rejected <> report.Load.jobs
      then begin
        incr failures;
        Format.printf "FAIL: %s lost jobs (%d submitted, %d completed, %d \
                       rejected)@."
          name report.Load.jobs report.Load.completed report.Load.rejected
      end)
    [ Core.Rats.Baseline; Core.Rats.Delta Core.Rats.naive_delta ];
  if !failures > 0 then begin
    Format.printf "@.selftest: %d failure(s)@." !failures;
    exit 1
  end;
  Format.printf "@.selftest: OK@."

(* --- command line -------------------------------------------------------- *)

let run cluster socket selftest_flag queue_limit tenant_limit jobs journal_name
    journal_dir resume load_jobs tenants rate seed trace metrics =
  Common.with_obs trace metrics @@ fun () ->
  let policy =
    Rats_server.Admission.make ~queue_limit ~tenant_limit
  in
  let jobs = if jobs = 0 then None else Some jobs in
  if selftest_flag then selftest cluster policy jobs load_jobs tenants rate seed
  else begin
    let journal =
      Journal.open_ ?dir:journal_dir ~name:journal_name ~resume ()
    in
    let config =
      { (Engine.default_config cluster) with Engine.policy; jobs }
    in
    let engine = Engine.create ~journal config in
    if resume then begin
      let n = Engine.resume engine in
      Format.printf "ratsd: resumed %d journaled submission(s)@." n
    end;
    Fun.protect
      ~finally:(fun () -> Journal.close journal)
      (fun () -> serve engine socket)
  end

let socket_term =
  Arg.(
    value
    & opt string "/tmp/ratsd.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~env:(Cmd.Env.info "RATS_SOCKET")
        ~doc:"Unix-domain socket to listen on.")

let selftest_term =
  Arg.(
    value & flag
    & info [ "selftest" ]
        ~doc:
          "Run the simulated-time load driver instead of serving: Poisson \
           arrivals from several tenants under both HCPA and RATS, with a \
           byte-identical re-run determinism check. Exits non-zero on any \
           failure.")

let queue_limit_term =
  Arg.(
    value & opt int 256
    & info [ "queue-limit" ] ~docv:"N"
        ~doc:"Admission: reject when the waiting queue holds $(docv) jobs.")

let tenant_limit_term =
  Arg.(
    value & opt int 64
    & info [ "tenant-limit" ] ~docv:"N"
        ~doc:
          "Admission: reject a tenant with $(docv) jobs queued or running.")

let jobs_term =
  Arg.(
    value & opt int 0
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for batch schedule computation; 0 = automatic. \
           Never affects results.")

let journal_term =
  Arg.(
    value & opt string "ratsd"
    & info [ "journal" ] ~docv:"NAME"
        ~doc:"Journal name for crash-recoverable submissions.")

let journal_dir_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal-dir" ] ~docv:"DIR"
        ~doc:"Journal directory (default: bench_results/.journal).")

let resume_term =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Reload the journaled submissions of a previous run before \
           serving; a subsequent drain replays them bit-exactly.")

let load_jobs_term =
  Arg.(
    value & opt int 120
    & info [ "load-jobs" ] ~docv:"N" ~doc:"Selftest: total jobs to submit.")

let tenants_term =
  Arg.(
    value & opt int 4
    & info [ "tenants" ] ~docv:"N" ~doc:"Selftest: number of tenants.")

let rate_term =
  Arg.(
    value & opt float 0.05
    & info [ "rate" ] ~docv:"R"
        ~doc:"Selftest: aggregate arrival rate, jobs per simulated second.")

let seed_term =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"S" ~doc:"Selftest: arrival-trace random seed.")

let cmd =
  Cmd.v
    (Cmd.info "ratsd"
       ~doc:"Online RATS scheduling service over a Unix-domain socket")
    Term.(
      const run $ Common.cluster_term $ socket_term $ selftest_term
      $ queue_limit_term $ tenant_limit_term $ jobs_term $ journal_term
      $ journal_dir_term $ resume_term $ load_jobs_term $ tenants_term
      $ rate_term $ seed_term $ Common.trace_term $ Common.metrics_term)

let () = exit (Cmd.eval cmd)
