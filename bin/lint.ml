(* rats_lint driver: static determinism & hygiene analysis over the
   repo's OCaml sources, now whole-program (cross-module taint, allow
   staleness) with a digest-keyed summary cache. Exit status: 0 clean,
   1 unsuppressed findings (new ones only under --baseline), 2 usage/IO
   error. See docs/LINTING.md for the rule catalogue. *)

let usage =
  "usage: lint.exe [--root DIR] [--json FILE] [--baseline FILE] \
   [--write-baseline FILE] [--graph FILE] [--cache FILE] [--no-cache] \
   [--list-allows] [--rules] [DIR ...]"

let default_cache = "bench_results/.lintcache"

let () =
  let root = ref "." in
  let json_out = ref "" in
  let baseline = ref "" in
  let write_baseline = ref "" in
  let graph_out = ref "" in
  let cache = ref default_cache in
  let no_cache = ref false in
  let list_allows = ref false in
  let show_rules = ref false in
  let dirs = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repo root to scan (default .)");
      ( "--json",
        Arg.Set_string json_out,
        "FILE also write the full report (findings, suppressed, allows) as \
         JSON" );
      ( "--baseline",
        Arg.Set_string baseline,
        "FILE fail only on findings not recorded in FILE (the CI ratchet)" );
      ( "--write-baseline",
        Arg.Set_string write_baseline,
        "FILE record the current findings as the accepted baseline and exit" );
      ( "--graph",
        Arg.Set_string graph_out,
        "FILE write the module-level call graph as Graphviz DOT ('-' for \
         stdout)" );
      ( "--cache",
        Arg.Set_string cache,
        "FILE per-file summary cache (default " ^ default_cache ^ ")" );
      ( "--no-cache",
        Arg.Set no_cache,
        " summarize every file from scratch and do not write the cache" );
      ( "--list-allows",
        Arg.Set list_allows,
        " list every suppression with its justification and exit" );
      ("--rules", Arg.Set show_rules, " print the rule catalogue and exit");
    ]
  in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  if !show_rules then begin
    List.iter
      (fun r ->
        Printf.printf "%s %s: %s\n  %s\n" r.Rats_lint.Rule.id
          (Rats_lint.Rule.severity_to_string r.Rats_lint.Rule.severity)
          r.Rats_lint.Rule.title r.Rats_lint.Rule.rationale)
      Rats_lint.Rules.catalogue;
    exit 0
  end;
  let dirs =
    match List.rev !dirs with [] -> Rats_lint.Engine.default_dirs | ds -> ds
  in
  let cache = if !no_cache then None else Some (Filename.concat !root !cache) in
  let report =
    try Rats_lint.Engine.lint_tree ~dirs ?cache ~root:!root ()
    with Sys_error msg ->
      prerr_endline ("lint: " ^ msg);
      exit 2
  in
  if !list_allows then begin
    print_string (Rats_lint.Engine.render_allows report);
    Printf.eprintf "rats_lint: %d suppression%s in %d files\n"
      (List.length report.allows)
      (if List.length report.allows = 1 then "" else "s")
      (List.length report.files);
    exit 0
  end;
  if !graph_out <> "" then begin
    let dot =
      match report.graph with
      | Some g -> Rats_lint.Callgraph.to_dot g
      | None -> "digraph rats_callgraph {\n}\n"
    in
    if !graph_out = "-" then print_string dot
    else begin
      let oc = open_out !graph_out in
      output_string oc dot;
      close_out oc
    end
  end;
  if !json_out <> "" then begin
    let dir = Filename.dirname !json_out in
    if dir <> "." && not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    let oc = open_out !json_out in
    output_string oc (Rats_obs.Json.to_string (Rats_lint.Engine.to_json report));
    output_char oc '\n';
    close_out oc
  end;
  if !write_baseline <> "" then begin
    Rats_lint.Baseline.save !write_baseline report.findings;
    Printf.eprintf "rats_lint: wrote %d finding%s to baseline %s\n"
      (List.length report.findings)
      (if List.length report.findings = 1 then "" else "s")
      !write_baseline;
    exit 0
  end;
  let shown, stale =
    if !baseline = "" then (report.findings, [])
    else
      match Rats_lint.Baseline.load !baseline with
      | keys ->
          let d = Rats_lint.Baseline.diff ~baseline:keys report.findings in
          (d.Rats_lint.Baseline.fresh, d.Rats_lint.Baseline.stale)
      | exception Sys_error msg ->
          prerr_endline ("lint: " ^ msg);
          exit 2
  in
  print_string
    (String.concat ""
       (List.map (fun f -> Rats_lint.Finding.to_human f ^ "\n") shown));
  List.iter
    (fun k -> Printf.eprintf "rats_lint: baseline entry no longer fires: %s\n" k)
    stale;
  if !baseline = "" then
    Printf.eprintf "rats_lint: %d finding%s (%d suppressed) in %d files\n"
      (List.length shown)
      (if List.length shown = 1 then "" else "s")
      (List.length report.suppressed)
      (List.length report.files)
  else
    Printf.eprintf
      "rats_lint: %d new finding%s (%d baselined, %d suppressed) in %d files\n"
      (List.length shown)
      (if List.length shown = 1 then "" else "s")
      (List.length report.findings - List.length shown)
      (List.length report.suppressed)
      (List.length report.files);
  exit (if shown = [] then 0 else 1)
