(* rats_lint driver: static determinism & hygiene analysis over the
   repo's OCaml sources. Exit status: 0 clean, 1 unsuppressed findings,
   2 usage/IO error. See docs/LINTING.md for the rule catalogue. *)

let usage = "usage: lint.exe [--root DIR] [--json FILE] [--list-allows] [--rules] [DIR ...]"

let () =
  let root = ref "." in
  let json_out = ref "" in
  let list_allows = ref false in
  let show_rules = ref false in
  let dirs = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repo root to scan (default .)");
      ( "--json",
        Arg.Set_string json_out,
        "FILE also write the full report (findings, suppressed, allows) as \
         JSON" );
      ( "--list-allows",
        Arg.Set list_allows,
        " list every suppression with its justification and exit" );
      ("--rules", Arg.Set show_rules, " print the rule catalogue and exit");
    ]
  in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  if !show_rules then begin
    List.iter
      (fun r ->
        Printf.printf "%s %s: %s\n  %s\n" r.Rats_lint.Rule.id
          (Rats_lint.Rule.severity_to_string r.Rats_lint.Rule.severity)
          r.Rats_lint.Rule.title r.Rats_lint.Rule.rationale)
      Rats_lint.Rules.catalogue;
    exit 0
  end;
  let dirs =
    match List.rev !dirs with [] -> Rats_lint.Engine.default_dirs | ds -> ds
  in
  let report =
    try Rats_lint.Engine.lint_tree ~dirs ~root:!root ()
    with Sys_error msg ->
      prerr_endline ("lint: " ^ msg);
      exit 2
  in
  if !list_allows then begin
    print_string (Rats_lint.Engine.render_allows report);
    Printf.eprintf "rats_lint: %d suppression%s in %d files\n"
      (List.length report.allows)
      (if List.length report.allows = 1 then "" else "s")
      (List.length report.files);
    exit 0
  end;
  if !json_out <> "" then begin
    let dir = Filename.dirname !json_out in
    if dir <> "." && not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    let oc = open_out !json_out in
    output_string oc (Rats_obs.Json.to_string (Rats_lint.Engine.to_json report));
    output_char oc '\n';
    close_out oc
  end;
  print_string (Rats_lint.Engine.render report);
  Printf.eprintf "rats_lint: %d finding%s (%d suppressed) in %d files\n"
    (List.length report.findings)
    (if List.length report.findings = 1 then "" else "s")
    (List.length report.suppressed)
    (List.length report.files);
  exit (if report.findings = [] then 0 else 1)
