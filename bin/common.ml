(* Shared cmdliner terms of the CLI tools. *)

open Cmdliner
module Suite = Rats_daggen.Suite
module Shape = Rats_daggen.Shape
module Cluster = Rats_platform.Cluster

let cluster_conv =
  let parse s =
    match
      List.find_opt (fun c -> c.Cluster.name = String.lowercase_ascii s)
        Cluster.presets
    with
    | Some c -> Ok c
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown cluster %S (expected chti, grillon or grelon)"
               s))
  in
  Arg.conv (parse, fun ppf c -> Format.pp_print_string ppf c.Cluster.name)

let cluster_term =
  Arg.(
    value
    & opt cluster_conv Cluster.grillon
    & info [ "cluster" ] ~docv:"NAME"
        ~doc:"Target cluster: chti, grillon or grelon (Table II presets).")

let kind_term =
  Arg.(
    value
    & opt (enum [ ("layered", `Layered); ("irregular", `Irregular);
                  ("fft", `Fft); ("strassen", `Strassen) ])
        `Irregular
    & info [ "kind" ] ~docv:"KIND"
        ~doc:"Application kind: layered, irregular, fft or strassen.")

let n_tasks_term =
  Arg.(
    value & opt int 50
    & info [ "tasks"; "n" ] ~docv:"N" ~doc:"Computation tasks (random DAGs).")

let width_term =
  Arg.(value & opt float 0.5 & info [ "width" ] ~docv:"W" ~doc:"DAG width in (0,1].")

let density_term =
  Arg.(
    value & opt float 0.5 & info [ "density" ] ~docv:"D" ~doc:"Edge density in (0,1].")

let regularity_term =
  Arg.(
    value & opt float 0.5
    & info [ "regularity" ] ~docv:"R" ~doc:"Level-size regularity in (0,1].")

let jump_term =
  Arg.(
    value & opt int 1
    & info [ "jump" ] ~docv:"J" ~doc:"Jump-edge length (irregular DAGs); 1 = none.")

let fft_k_term =
  Arg.(
    value & opt int 8
    & info [ "fft-k" ] ~docv:"K" ~doc:"FFT data points (power of two >= 2).")

let sample_term =
  Arg.(
    value & opt int 0
    & info [ "sample" ] ~docv:"S" ~doc:"Sample index (selects the random seed).")

let trace_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a Chrome trace-event file to $(docv) (open in \
           ui.perfetto.dev). Defaults to $(b,RATS_TRACE) when unset.")

let metrics_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Dump the metrics registry to $(docv) at exit — JSON when $(docv) \
           ends in .json, Prometheus text otherwise. Defaults to \
           $(b,RATS_METRICS) when unset.")

(* Runs [f] with tracing/metrics configured from the flags (or the
   environment) and writes the requested files even when [f] raises or
   [exit]s — the run's partial trace is usually exactly what one wants to
   see of a failing run. *)
let with_obs trace metrics f =
  Rats_obs.Obs_cli.configure ?trace ?metrics ();
  Fun.protect ~finally:Rats_obs.Obs_cli.finalize f

let config_term =
  let build kind n_tasks width density regularity jump k sample =
    let spec =
      match kind with
      | `Layered ->
          Suite.Layered
            { n_tasks; shape = Shape.make ~width ~regularity ~density () }
      | `Irregular ->
          Suite.Irregular
            { n_tasks; shape = Shape.make ~width ~regularity ~density ~jump () }
      | `Fft -> Suite.Fft { k }
      | `Strassen -> Suite.Strassen
    in
    { Suite.spec; sample }
  in
  Term.(
    const build $ kind_term $ n_tasks_term $ width_term $ density_term
    $ regularity_term $ jump_term $ fft_k_term $ sample_term)
