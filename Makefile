# Convenience entry points; everything is plain dune underneath.
#
#   make build        compile everything
#   make test         tier-1 verification (dune build && dune runtest)
#   make bench-smoke  timed smoke-scale bench run, all cores, report in
#                     BENCH_runtime.json
#   make clean-cache  drop the on-disk result cache (bench_results/.cache)
#   make clean        dune clean

JOBS ?= 0   # 0 = auto (RATS_JOBS or all cores)
JOBS_FLAG := $(if $(filter-out 0,$(JOBS)),-j $(JOBS),)

.PHONY: build test bench-smoke clean-cache clean

build:
	dune build

test: build
	dune runtest

# Wall time per target (and in total) lands in BENCH_runtime.json.
bench-smoke: build
	RATS_SCALE=smoke dune exec bench/main.exe -- all $(JOBS_FLAG)

clean-cache:
	rm -rf bench_results/.cache

clean:
	dune clean
