# Convenience entry points; everything is plain dune underneath.
#
#   make build              compile everything
#   make test               tier-1 verification (dune build && dune runtest)
#   make test-fault         fault-tolerance suite only (injection, retry,
#                           journal, resume)
#   make bench-smoke        timed smoke-scale bench run, all cores, report in
#                           BENCH_runtime.json
#   make bench-resume-smoke kill a cold fig2 run mid-sweep, then resume it —
#                           the smoke test of crash-resumable sweeps
#   make trace-smoke        cold fig2 run with --trace/--metrics, then validate
#                           both files and render an SVG timeline
#   make server-smoke       ratsd end-to-end: live socket session, kill -9 +
#                           journal resume (bit-exact event log), selftest
#                           load driver
#   make chaos-smoke        ratsd under fire: delay faults + kill -9 mid-trace
#                           (bit-exact resume), slow-client eviction, overload
#                           shedding/deadlines, corrupt/disconnect survival
#   make workload-smoke     workload.exe three-arm study: same-seed byte
#                           determinism, save-trace/replay round-trip, worker
#                           independence
#   make studio-smoke       studio.exe end-to-end: traced fig2 run rendered
#                           into a self-contained HTML report, A/B diff with
#                           the scale-mismatch guard, one-shot live serve
#   make flags-check        diff README's CLI flag table against each binary's
#                           --help
#   make lint               rats_lint whole-program static analysis
#                           (determinism, taint, domain-safety rules —
#                           docs/LINTING.md) against the committed baseline
#                           tools/lint_baseline.txt; JSON report lands in
#                           bench_results/lint.json
#   make lint-smoke         analyzer acceptance: cold run under the 2s
#                           budget, warm cache run byte-identical, baseline
#                           ratchet both directions, DOT graph export
#   make bench-archive      snapshot BENCH_runtime.json as
#                           bench_results/archive/BENCH_runtime.<LABEL>.json
#                           (LABEL=... required) so studio diffs can reach
#                           past runs
#   make salt-check         warn when lib/{sim,core,dag,redist} changed
#                           without a Cache.version bump (STRICT=1 to fail)
#   make check              build + tier-1 tests + lint + lint-smoke +
#                           trace-smoke + server-smoke + chaos-smoke +
#                           workload-smoke + studio-smoke + flags-check +
#                           advisory salt-check
#   make clean-cache        drop the on-disk result cache and journal
#                           (bench_results/.cache, bench_results/.journal)
#   make clean              dune clean

JOBS ?= 0   # 0 = auto (RATS_JOBS or all cores; this container has 1)
JOBS_FLAG := $(if $(filter-out 0,$(JOBS)),-j $(JOBS),)

.PHONY: build test test-fault bench-smoke bench-resume-smoke bench-archive \
  trace-smoke server-smoke chaos-smoke workload-smoke studio-smoke \
  flags-check lint lint-smoke salt-check check clean-cache clean

build:
	dune build

test: build
	dune runtest

test-fault: build
	dune exec test/test_fault.exe

# Wall time per target (and in total) lands in BENCH_runtime.json.
bench-smoke: build
	RATS_SCALE=smoke dune exec bench/main.exe -- all $(JOBS_FLAG)

# Crash-resume acceptance: start fig2 cold (cache off so the journal is the
# only persistence), SIGKILL it mid-sweep, then resume. The resumed run must
# replay the journaled prefix and only execute the missing configurations.
bench-resume-smoke: build
	rm -rf bench_results/.journal
	-RATS_SCALE=smoke RATS_CACHE=off timeout -s KILL 10 \
	  dune exec bench/main.exe -- fig2 $(JOBS_FLAG)
	@echo "--- killed; resuming ---"
	RATS_SCALE=smoke RATS_CACHE=off \
	  dune exec bench/main.exe -- fig2 --resume $(JOBS_FLAG)

# Observability acceptance: a cold fig2 run (scratch cache directory, so
# every counter the validator requires actually moves) recording a Chrome
# trace and a metrics snapshot, which trace_check then parses back,
# checks for the bench counters, and renders as an SVG timeline.
trace-smoke: build
	rm -rf bench_results/.trace-cache
	RATS_SCALE=smoke RATS_JOURNAL=off \
	  RATS_CACHE_DIR=bench_results/.trace-cache \
	  dune exec bench/main.exe -- fig2 $(JOBS_FLAG) \
	  --trace bench_results/trace.json --metrics bench_results/metrics.json
	dune exec bin/trace_check.exe -- \
	  --trace bench_results/trace.json --metrics bench_results/metrics.json \
	  --require-bench-counters --svg bench_results/timeline.svg
	rm -rf bench_results/.trace-cache

# Service acceptance: live daemon/client session over the socket, kill -9 +
# --resume replays the submission journal to a bit-identical event log, and
# the selftest load driver pushes 120 jobs from 4 tenants through both
# strategies with a byte-level determinism check.
server-smoke: build
	tools/server_smoke.sh

# Robustness acceptance: deterministic fault injection at every service-layer
# site, kill -9 + resume under delay faults with a byte-identical event log,
# slow-client eviction without disturbing other tenants, overload shedding
# with retry-after hints, queue-wait deadlines, and survival under corrupted
# reads / forced disconnects (docs/SERVER.md "Failure semantics").
chaos-smoke: build
	tools/chaos_smoke.sh

# Multi-tenant workload engine acceptance: a small three-arm study must be
# byte-deterministic across reruns, survive a save-trace/replay round-trip
# unchanged, and be independent of the worker-pool size (docs/WORKLOAD.md).
workload-smoke: build
	tools/workload_smoke.sh

# Experiment studio acceptance: a traced smoke bench run must render into a
# single self-contained HTML report (inline SVGs, counter table, per-target
# breakdown, no external fetches), `studio diff` must print per-target
# deltas and warn when comparing runs of different scale, and one-shot
# `studio serve` must answer an HTTP request (docs/STUDIO.md).
studio-smoke: build
	tools/studio_smoke.sh

flags-check: build
	tools/flags_check.sh

lint: build
	dune exec --no-build bin/lint.exe -- --json bench_results/lint.json \
	  --baseline tools/lint_baseline.txt

lint-smoke: build
	tools/lint_smoke.sh

# Archive convention: bench_results/archive/BENCH_runtime.<label>.json.
# Labeled snapshots survive later bench runs, so `studio diff` can compare
# against any archived run, not just the latest.
bench-archive:
	@test -n "$(LABEL)" || { echo "usage: make bench-archive LABEL=<label>"; exit 2; }
	@test -f BENCH_runtime.json || { echo "bench-archive: BENCH_runtime.json missing — run make bench-smoke first"; exit 2; }
	mkdir -p bench_results/archive
	cp BENCH_runtime.json bench_results/archive/BENCH_runtime.$(LABEL).json
	@echo "archived: bench_results/archive/BENCH_runtime.$(LABEL).json"

# Advisory by default (comment-only edits to the salted dirs are legal);
# STRICT=1 turns a violation into a failure.
salt-check:
	tools/salt_check.sh $(if $(STRICT),--strict,)

check: build
	dune runtest
	$(MAKE) lint
	$(MAKE) lint-smoke
	$(MAKE) trace-smoke
	$(MAKE) server-smoke
	$(MAKE) chaos-smoke
	$(MAKE) workload-smoke
	$(MAKE) studio-smoke
	$(MAKE) flags-check
	$(MAKE) salt-check

clean-cache:
	rm -rf bench_results/.cache bench_results/.journal

clean:
	dune clean
