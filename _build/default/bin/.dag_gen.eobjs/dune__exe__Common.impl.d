bin/common.ml: Arg Cmdliner Format List Printf Rats_daggen Rats_platform String Term
