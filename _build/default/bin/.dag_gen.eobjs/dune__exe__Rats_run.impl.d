bin/rats_run.ml: Arg Array Cmd Cmdliner Common Format List Printf Rats_core Rats_dag Rats_daggen Rats_platform Rats_util Rats_viz Term
