bin/experiments.mli:
