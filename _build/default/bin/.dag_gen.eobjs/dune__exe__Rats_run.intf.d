bin/rats_run.mli:
