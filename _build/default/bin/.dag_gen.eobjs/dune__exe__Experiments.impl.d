bin/experiments.ml: Arg Cmd Cmdliner Common Format List Rats_core Rats_daggen Rats_exp Term
