bin/dag_gen.ml: Arg Array Cmd Cmdliner Common Format Fun List Rats_dag Rats_daggen Rats_util Term
