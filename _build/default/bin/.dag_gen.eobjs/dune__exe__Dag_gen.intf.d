bin/dag_gen.mli:
