(* dag_gen: generate mixed-parallel task graphs and inspect or export them.

   Examples:
     dune exec bin/dag_gen.exe -- --kind fft --fft-k 8 --dot fft.dot
     dune exec bin/dag_gen.exe -- --kind layered --tasks 50 --width 0.8 *)

open Cmdliner
module Suite = Rats_daggen.Suite
module Dag = Rats_dag.Dag
module Task = Rats_dag.Task

let run config dot levels =
  let dag = Suite.generate config in
  Format.printf "%s: %a@." (Suite.name config) Dag.pp_stats dag;
  let total_flop =
    Array.fold_left (fun acc t -> acc +. t.Task.flop) 0. (Dag.tasks dag)
  in
  let total_bytes =
    List.fold_left (fun acc e -> acc +. e.Dag.bytes) 0. (Dag.edges dag)
  in
  Format.printf "total computation: %.3g Gflop, total transfers: %a@."
    (total_flop /. 1e9) Rats_util.Units.pp_bytes total_bytes;
  if levels then begin
    let groups = Dag.level_groups dag in
    Array.iteri
      (fun l tasks ->
        Format.printf "level %2d (%2d tasks):" l (List.length tasks);
        List.iter
          (fun i -> Format.printf " %s" (Dag.task dag i).Task.name)
          tasks;
        Format.printf "@.")
      groups
  end;
  match dot with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          let ppf = Format.formatter_of_out_channel oc in
          Dag.pp_dot ppf dag;
          Format.pp_print_flush ppf ());
      Format.printf "DOT written to %s@." path

let dot_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE" ~doc:"Write a Graphviz rendering to $(docv).")

let levels_term =
  Arg.(value & flag & info [ "levels" ] ~doc:"Print the level decomposition.")

let cmd =
  Cmd.v
    (Cmd.info "dag_gen" ~doc:"Generate mixed-parallel task graphs")
    Term.(const run $ Common.config_term $ dot_term $ levels_term)

let () = exit (Cmd.eval cmd)
