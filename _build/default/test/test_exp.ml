(* Tests for rats_exp: runner, metrics, tuning, figures. *)

module Suite = Rats_daggen.Suite
module Shape = Rats_daggen.Shape
module Cluster = Rats_platform.Cluster
module Rats = Rats_core.Rats
module Runner = Rats_exp.Runner
module Metrics = Rats_exp.Metrics
module Tuning = Rats_exp.Tuning
module Figures = Rats_exp.Figures

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* Small, fast configurations. *)
let small_configs =
  [
    { Suite.spec = Suite.Fft { k = 2 }; sample = 0 };
    { Suite.spec = Suite.Fft { k = 4 }; sample = 1 };
    { Suite.spec = Suite.Strassen; sample = 0 };
    { Suite.spec =
        Suite.Layered
          { n_tasks = 25;
            shape = Shape.make ~width:0.5 ~regularity:0.8 ~density:0.2 () };
      sample = 0 };
  ]

let small_results =
  lazy (List.map (Runner.run_config Cluster.chti) small_configs)

(* Hand-built results with known relationships for metric tests. *)
let synthetic_results =
  let mk name h d t =
    {
      Runner.config = { Suite.spec = Suite.Strassen; sample = name };
      cluster = "synthetic";
      hcpa = { Runner.makespan = h; work = h };
      delta = { Runner.makespan = d; work = d };
      timecost = { Runner.makespan = t; work = t };
    }
  in
  [ mk 0 100. 80. 50.; mk 1 100. 120. 100.; mk 2 200. 100. 100. ]

(* --- Runner ----------------------------------------------------------------- *)

let test_run_config_positive () =
  List.iter
    (fun (r : Runner.result) ->
      Alcotest.(check bool) "positive measurements" true
        (r.Runner.hcpa.Runner.makespan > 0.
        && r.Runner.delta.Runner.makespan > 0.
        && r.Runner.timecost.Runner.makespan > 0.
        && r.Runner.hcpa.Runner.work > 0.);
      Alcotest.(check string) "cluster recorded" "chti" r.Runner.cluster)
    (Lazy.force small_results)

let test_run_config_custom_params () =
  let config = List.hd small_configs in
  (* Forbidding every modification makes both RATS variants behave like the
     baseline. *)
  let r =
    Runner.run_config
      ~delta:{ Rats.mindelta = 0.; maxdelta = 0. }
      ~timecost:{ Rats.minrho = 1.0; packing = false }
      Cluster.chti config
  in
  checkf "delta = hcpa" r.Runner.hcpa.Runner.makespan r.Runner.delta.Runner.makespan

let test_strategy_measurement () =
  let config = List.hd small_configs in
  let dag = Suite.generate config in
  let problem = Rats_core.Problem.make ~dag ~cluster:Cluster.chti in
  let m = Runner.strategy_measurement problem Rats.Baseline in
  Alcotest.(check bool) "positive" true (m.Runner.makespan > 0. && m.Runner.work > 0.)

(* --- Metrics ----------------------------------------------------------------- *)

let test_relative_series_sorted () =
  List.iter
    (fun (s : Metrics.series) ->
      let v = s.Metrics.values in
      check Alcotest.int "three points" 3 (Array.length v);
      Alcotest.(check bool) "sorted" true (v.(0) <= v.(1) && v.(1) <= v.(2)))
    (Metrics.relative_makespan synthetic_results)

let test_relative_values () =
  match Metrics.relative_makespan synthetic_results with
  | [ delta; timecost ] ->
      Alcotest.(check string) "labels" "delta" delta.Metrics.label;
      Alcotest.(check (array (float 1e-9))) "delta ratios" [| 0.5; 0.8; 1.2 |]
        delta.Metrics.values;
      Alcotest.(check (array (float 1e-9))) "timecost ratios" [| 0.5; 0.5; 1.0 |]
        timecost.Metrics.values
  | _ -> Alcotest.fail "expected two series"

let test_mean_and_win_fraction () =
  let s = { Metrics.label = "x"; values = [| 0.5; 0.9; 1.0; 1.5 |] } in
  let mean, wins = Metrics.mean_and_win_fraction s in
  checkf "mean" 0.975 mean;
  checkf "wins" 0.5 wins

let test_pairwise_counts () =
  let labels, m = Metrics.pairwise synthetic_results in
  Alcotest.(check (array string)) "labels" [| "HCPA"; "delta"; "time-cost" |] labels;
  (* HCPA vs delta: 100<80? worse; 100<120 better; 200>100 worse -> 1/0/2 *)
  let c = m.(0).(1) in
  check Alcotest.int "hcpa better than delta" 1 c.Metrics.better;
  check Alcotest.int "hcpa equal delta" 0 c.Metrics.equal;
  check Alcotest.int "hcpa worse than delta" 2 c.Metrics.worse;
  (* Symmetry: delta vs hcpa mirrors. *)
  let c' = m.(1).(0) in
  check Alcotest.int "mirror better" 2 c'.Metrics.better;
  check Alcotest.int "mirror worse" 1 c'.Metrics.worse;
  (* hcpa vs timecost: 100>50 worse; 100=100 equal; 200>100 worse *)
  let c2 = m.(0).(2) in
  check Alcotest.int "hcpa equal tc" 1 c2.Metrics.equal;
  check Alcotest.int "hcpa worse tc" 2 c2.Metrics.worse

let test_pairwise_sums () =
  let _, m = Metrics.pairwise synthetic_results in
  let n = List.length synthetic_results in
  for i = 0 to 2 do
    for j = 0 to 2 do
      if i <> j then begin
        let c = m.(i).(j) in
        check Alcotest.int "cells sum to n" n
          (c.Metrics.better + c.Metrics.equal + c.Metrics.worse)
      end
    done
  done

let test_combined_percent () =
  let _, m = Metrics.pairwise synthetic_results in
  let _, pct = Metrics.combined_percent m 0 in
  Alcotest.(check (float 1e-9)) "percentages sum to 100" 100.
    (pct.(0) +. pct.(1) +. pct.(2))

let test_degradation () =
  match Metrics.degradation_from_best synthetic_results with
  | [ hcpa; delta; timecost ] ->
      (* Experiment bests: 50, 100, 100.
         HCPA: 100/50-1=100%, 0%, 100% -> avg over all 66.67, not-best 2. *)
      Alcotest.(check (float 1e-6)) "hcpa avg all" (200. /. 3.)
        hcpa.Metrics.avg_over_all;
      check Alcotest.int "hcpa not best" 2 hcpa.Metrics.n_not_best;
      Alcotest.(check (float 1e-6)) "hcpa avg not best" 100.
        hcpa.Metrics.avg_over_not_best;
      (* delta: 80/50-1=60%, 20%, 0% best -> not best 2, avg all 26.67 *)
      check Alcotest.int "delta not best" 2 delta.Metrics.n_not_best;
      Alcotest.(check (float 1e-6)) "delta avg all" (80. /. 3.)
        delta.Metrics.avg_over_all;
      (* timecost is best everywhere *)
      check Alcotest.int "tc always best" 0 timecost.Metrics.n_not_best;
      Alcotest.(check (float 1e-6)) "tc zero degradation" 0.
        timecost.Metrics.avg_over_all
  | _ -> Alcotest.fail "expected three entries"

let test_equal_tolerance () =
  let r =
    {
      Runner.config = { Suite.spec = Suite.Strassen; sample = 9 };
      cluster = "synthetic";
      hcpa = { Runner.makespan = 100.; work = 1. };
      delta = { Runner.makespan = 100.00001; work = 1. };
      timecost = { Runner.makespan = 99.99999; work = 1. };
    }
  in
  let _, m = Metrics.pairwise [ r ] in
  check Alcotest.int "tiny differences are equal" 1 m.(0).(1).Metrics.equal;
  check Alcotest.int "tiny differences are equal (2)" 1 m.(0).(2).Metrics.equal

(* --- Tuning ------------------------------------------------------------------ *)

let tiny_prepared =
  lazy
    (Tuning.prepare Cluster.chti
       [ { Suite.spec = Suite.Fft { k = 2 }; sample = 0 };
         { Suite.spec = Suite.Strassen; sample = 1 } ])

let test_sweep_delta_grid () =
  let points = Tuning.sweep_delta (Lazy.force tiny_prepared) in
  check Alcotest.int "4 x 5 grid" 20 (List.length points);
  List.iter
    (fun (pt : Tuning.delta_point) ->
      Alcotest.(check bool) "positive relative makespan" true
        (pt.Tuning.avg_relative_makespan > 0.))
    points

let test_sweep_timecost_grid () =
  let points = Tuning.sweep_timecost (Lazy.force tiny_prepared) in
  check Alcotest.int "2 x 6 grid" 12 (List.length points);
  let on = List.filter (fun (p : Tuning.timecost_point) -> p.Tuning.packing) points in
  check Alcotest.int "half with packing" 6 (List.length on)

let test_no_modification_point_is_neutral () =
  (* (mindelta, maxdelta) = (0, 0) forbids every allocation change; only the
     delta ready-list ordering may still differ from the baseline, so the
     relative makespan sits close to 1. *)
  let points = Tuning.sweep_delta (Lazy.force tiny_prepared) in
  match
    List.find_opt
      (fun (p : Tuning.delta_point) ->
        p.Tuning.mindelta = 0. && p.Tuning.maxdelta = 0.)
      points
  with
  | Some p ->
      Alcotest.(check bool) "close to 1" true
        (Float.abs (p.Tuning.avg_relative_makespan -. 1.) < 0.15)
  | None -> Alcotest.fail "missing (0,0) grid point"

let test_best_picks_minimum () =
  let dp =
    [
      { Tuning.mindelta = 0.; maxdelta = 0.5; avg_relative_makespan = 0.9 };
      { Tuning.mindelta = -0.5; maxdelta = 1.; avg_relative_makespan = 0.8 };
    ]
  in
  let tp =
    [
      { Tuning.packing = true; minrho = 0.4; avg_relative_makespan = 0.7 };
      { Tuning.packing = false; minrho = 0.2; avg_relative_makespan = 0.5 };
      { Tuning.packing = true; minrho = 0.6; avg_relative_makespan = 0.9 };
    ]
  in
  let t = Tuning.best dp tp in
  checkf "best mindelta" (-0.5) t.Tuning.delta.Rats.mindelta;
  checkf "best maxdelta" 1. t.Tuning.delta.Rats.maxdelta;
  (* Packing-off points are ignored: the tuned setting always packs. *)
  checkf "best minrho among packing" 0.4 t.Tuning.minrho

let test_tuning_configs_subsample () =
  List.iter
    (fun kind ->
      let configs = Tuning.tuning_configs Suite.Paper kind in
      Alcotest.(check bool) "at most 24" true (List.length configs <= 24);
      List.iter
        (fun c -> check Alcotest.int "first sample only" 0 c.Suite.sample)
        configs)
    [ `Layered; `Irregular; `Fft; `Strassen ]

let test_tuned_for_lookup () =
  let tuned =
    { Tuning.delta = { Rats.mindelta = 0.; maxdelta = 1. }; minrho = 0.4 }
  in
  let table = [ ("chti", [ (`Fft, tuned) ]) ] in
  let t = Tuning.tuned_for table ~cluster:"chti" ~kind:`Fft in
  checkf "lookup" 0.4 t.Tuning.minrho

(* --- Figures ------------------------------------------------------------------ *)

let test_figure_printers () =
  let results = Lazy.force small_results in
  let s = Format.asprintf "%a" (fun ppf () -> Figures.fig2 ppf results) () in
  Alcotest.(check bool) "fig2 mentions both strategies" true
    (contains s "delta" && contains s "time-cost");
  let s3 = Format.asprintf "%a" (fun ppf () -> Figures.fig3 ppf results) () in
  Alcotest.(check bool) "fig3 about work" true (contains s3 "work");
  let t1 = Format.asprintf "%a" (fun ppf () -> Figures.table1 ppf) () in
  Alcotest.(check bool) "table1 has the 2.5-unit split" true (contains t1 "1.5");
  let t2 = Format.asprintf "%a" (fun ppf () -> Figures.table2 ppf) () in
  Alcotest.(check bool) "table2 lists grelon" true (contains t2 "grelon");
  let t3 =
    Format.asprintf "%a" (fun ppf () -> Figures.table3 ppf Suite.Paper) ()
  in
  Alcotest.(check bool) "table3 has 557" true (contains t3 "557")

let test_table5_table6_printers () =
  let per_cluster = [ ("chti", synthetic_results) ] in
  let t5 = Format.asprintf "%a" (fun ppf () -> Figures.table5 ppf per_cluster) () in
  Alcotest.(check bool) "table5 mentions combined" true (contains t5 "combined");
  let t6 = Format.asprintf "%a" (fun ppf () -> Figures.table6 ppf per_cluster) () in
  Alcotest.(check bool) "table6 mentions degradation" true
    (contains t6 "degradation")

let test_write_csv () =
  let path = Filename.temp_file "rats" ".csv" in
  Figures.write_csv path synthetic_results;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  check Alcotest.int "header + rows" 4 (List.length !lines);
  Alcotest.(check bool) "header labels" true
    (contains (List.nth !lines 3) "hcpa_makespan")


(* --- Ablation ----------------------------------------------------------------- *)

module Ablation = Rats_exp.Ablation

let ablation_configs =
  [ { Suite.spec = Suite.Fft { k = 2 }; sample = 0 };
    { Suite.spec = Suite.Strassen; sample = 2 } ]

let test_ablation_placement () =
  let rows = Ablation.placement_study Cluster.chti ablation_configs in
  check Alcotest.int "two strategies" 2 (List.length rows);
  List.iter
    (fun (r : Ablation.ratio_row) ->
      Alcotest.(check bool) "ratios sane" true
        (r.Ablation.mean_ratio > 0.3 && r.Ablation.mean_ratio < 5.
        && r.Ablation.max_ratio >= r.Ablation.mean_ratio -. 1e-9))
    rows

let test_ablation_replay () =
  let rows = Ablation.replay_study Cluster.chti ablation_configs in
  List.iter
    (fun (r : Ablation.ratio_row) ->
      Alcotest.(check bool) "strict not hugely faster" true
        (r.Ablation.mean_ratio > 0.8))
    rows

let test_ablation_window_monotone () =
  (* A larger TCP window can only help (weakly): mean makespans must be
     non-increasing along the sweep. *)
  let rows = Ablation.window_study ablation_configs in
  check Alcotest.int "five windows" 5 (List.length rows);
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b -. 1e-6 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "non-increasing in window size" true (monotone rows)

let test_ablation_purity () =
  let rows = Ablation.purity_study Cluster.chti ablation_configs in
  check Alcotest.int "four rows" 4 (List.length rows);
  (match rows with
  | ("time-cost RATS", v) :: _ ->
      Alcotest.(check (float 1e-9)) "normalized to itself" 1. v
  | _ -> Alcotest.fail "unexpected ordering");
  List.iter
    (fun (_, v) -> Alcotest.(check bool) "positive" true (v > 0.))
    rows

let test_ablation_study_configs () =
  let configs = Ablation.study_configs Suite.Paper in
  Alcotest.(check bool) "bounded" true (List.length configs <= 20);
  List.iter
    (fun c -> check Alcotest.int "first samples" 0 c.Suite.sample)
    configs

(* --- Autotune ----------------------------------------------------------------- *)

module Autotune = Rats_exp.Autotune

let autotune_problem () =
  let dag = Suite.generate { Suite.spec = Suite.Fft { k = 4 }; sample = 5 } in
  Rats_core.Problem.make ~dag ~cluster:Cluster.grillon

let test_autotune_features () =
  let f = Autotune.features (autotune_problem ()) in
  Alcotest.(check bool) "parallelism at least 1" true (f.Autotune.avg_parallelism >= 1.);
  Alcotest.(check bool) "ccr positive" true (f.Autotune.ccr > 0.);
  Alcotest.(check bool) "procs/parallelism consistent" true
    (Float.abs
       (f.Autotune.procs_per_parallelism -. (47. /. f.Autotune.avg_parallelism))
    < 1e-9)

let test_autotune_probe_in_grid () =
  let p = autotune_problem () in
  let d = Autotune.probe_delta p in
  Alcotest.(check bool) "mindelta from grid" true
    (List.mem d.Rats.mindelta Tuning.mindelta_values);
  Alcotest.(check bool) "maxdelta from grid" true
    (List.mem d.Rats.maxdelta Tuning.maxdelta_values);
  let t = Autotune.probe_timecost p in
  Alcotest.(check bool) "minrho from grid" true
    (List.mem t.Rats.minrho Tuning.minrho_values)

let test_autotune_probe_not_worse_by_estimate () =
  (* The probed parameters must beat (or tie) the naive ones on the metric
     the probe optimizes: the estimated makespan. *)
  let p = autotune_problem () in
  let alloc = Rats_core.Hcpa.allocate p in
  let est strategy =
    Rats_core.Schedule.makespan_estimated (Rats_core.Rats.schedule ~alloc p strategy)
  in
  let probed = Autotune.probe_delta p in
  Alcotest.(check bool) "probe beats naive delta (estimated)" true
    (est (Rats.Delta probed) <= est (Rats.Delta Rats.naive_delta) +. 1e-9)

let test_autotune_rules_domains () =
  let f = Autotune.features (autotune_problem ()) in
  let d = Autotune.rules_delta f in
  Alcotest.(check bool) "mindelta in domain" true
    (d.Rats.mindelta <= 0. && d.Rats.mindelta >= -1.);
  Alcotest.(check (float 1e-9)) "maxdelta is generous" 1. d.Rats.maxdelta;
  let t = Autotune.rules_timecost f in
  Alcotest.(check bool) "minrho in (0,1]" true
    (t.Rats.minrho > 0. && t.Rats.minrho <= 1.);
  Alcotest.(check bool) "packing on" true t.Rats.packing

let test_autotune_selector_study () =
  let rows = Autotune.selector_study Cluster.chti ablation_configs in
  check Alcotest.int "five selectors" 5 (List.length rows);
  List.iter
    (fun (_, v) -> Alcotest.(check bool) "sane ratio" true (v > 0.2 && v < 5.))
    rows


(* --- CCR sweep ----------------------------------------------------------------- *)

module Ccr_sweep = Rats_exp.Ccr_sweep

let test_ccr_sweep () =
  let points = Ccr_sweep.run Cluster.chti [ List.hd ablation_configs ] in
  check Alcotest.int "one point per factor"
    (List.length Ccr_sweep.flop_factors)
    (List.length points);
  (* CCR decreases as the flop factor grows. *)
  let rec decreasing = function
    | (a : Ccr_sweep.point) :: (b : Ccr_sweep.point) :: rest ->
        a.Ccr_sweep.ccr < b.Ccr_sweep.ccr && decreasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "ccr grows along the sweep" true (decreasing points);
  List.iter
    (fun (p : Ccr_sweep.point) ->
      Alcotest.(check bool) "sane ratios" true
        (p.Ccr_sweep.delta_relative > 0.2
        && p.Ccr_sweep.timecost_relative > 0.2
        && p.Ccr_sweep.delta_relative < 5.))
    points

let () =
  Alcotest.run "rats_exp"
    [
      ( "runner",
        [
          Alcotest.test_case "measurements positive" `Slow test_run_config_positive;
          Alcotest.test_case "custom parameters" `Quick test_run_config_custom_params;
          Alcotest.test_case "strategy measurement" `Quick test_strategy_measurement;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "series sorted" `Quick test_relative_series_sorted;
          Alcotest.test_case "relative values" `Quick test_relative_values;
          Alcotest.test_case "mean and wins" `Quick test_mean_and_win_fraction;
          Alcotest.test_case "pairwise counts" `Quick test_pairwise_counts;
          Alcotest.test_case "pairwise sums" `Quick test_pairwise_sums;
          Alcotest.test_case "combined percent" `Quick test_combined_percent;
          Alcotest.test_case "degradation" `Quick test_degradation;
          Alcotest.test_case "equality tolerance" `Quick test_equal_tolerance;
        ] );
      ( "tuning",
        [
          Alcotest.test_case "delta grid" `Slow test_sweep_delta_grid;
          Alcotest.test_case "timecost grid" `Slow test_sweep_timecost_grid;
          Alcotest.test_case "(0,0) is neutral" `Slow
            test_no_modification_point_is_neutral;
          Alcotest.test_case "best picks minimum" `Quick test_best_picks_minimum;
          Alcotest.test_case "tuning subsample" `Quick test_tuning_configs_subsample;
          Alcotest.test_case "tuned_for lookup" `Quick test_tuned_for_lookup;
        ] );
      ( "figures",
        [
          Alcotest.test_case "printers" `Slow test_figure_printers;
          Alcotest.test_case "table 5 and 6" `Quick test_table5_table6_printers;
          Alcotest.test_case "csv export" `Quick test_write_csv;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "placement" `Slow test_ablation_placement;
          Alcotest.test_case "replay" `Slow test_ablation_replay;
          Alcotest.test_case "window monotone" `Slow test_ablation_window_monotone;
          Alcotest.test_case "purity" `Slow test_ablation_purity;
          Alcotest.test_case "study configs" `Quick test_ablation_study_configs;
        ] );
      ( "autotune",
        [
          Alcotest.test_case "features" `Quick test_autotune_features;
          Alcotest.test_case "probe in grid" `Quick test_autotune_probe_in_grid;
          Alcotest.test_case "probe beats naive (estimate)" `Quick
            test_autotune_probe_not_worse_by_estimate;
          Alcotest.test_case "rules domains" `Quick test_autotune_rules_domains;
          Alcotest.test_case "selector study" `Slow test_autotune_selector_study;
        ] );
      ( "ccr",
        [ Alcotest.test_case "sweep" `Slow test_ccr_sweep ] );
    ]
