(* End-to-end reproduction regression tests.

   The unit suites check the pieces; these integration tests assert that the
   paper's headline claims still hold when the whole pipeline — generator,
   allocation, mapping, contention simulation, metrics — runs on a small but
   shape-diverse subset of the evaluation suite. If a change to any layer
   breaks a comparative claim, this suite catches it. *)

module Suite = Rats_daggen.Suite
module Shape = Rats_daggen.Shape
module Cluster = Rats_platform.Cluster
module Core = Rats_core
module Rats = Rats_core.Rats
module Runner = Rats_exp.Runner
module Metrics = Rats_exp.Metrics
module Stats = Rats_util.Stats

(* 12 configurations spanning all four application kinds. *)
let mini_suite =
  let shape w d r j = Shape.make ~width:w ~regularity:r ~density:d ~jump:j () in
  [
    { Suite.spec = Suite.Fft { k = 4 }; sample = 0 };
    { Suite.spec = Suite.Fft { k = 8 }; sample = 1 };
    { Suite.spec = Suite.Strassen; sample = 0 };
    { Suite.spec = Suite.Strassen; sample = 1 };
    { Suite.spec = Suite.Layered { n_tasks = 25; shape = shape 0.5 0.8 0.8 1 }; sample = 0 };
    { Suite.spec = Suite.Layered { n_tasks = 50; shape = shape 0.2 0.2 0.2 1 }; sample = 1 };
    { Suite.spec = Suite.Layered { n_tasks = 25; shape = shape 0.8 0.8 0.2 1 }; sample = 2 };
    { Suite.spec = Suite.Irregular { n_tasks = 25; shape = shape 0.5 0.2 0.8 2 }; sample = 0 };
    { Suite.spec = Suite.Irregular { n_tasks = 50; shape = shape 0.5 0.8 0.8 4 }; sample = 1 };
    { Suite.spec = Suite.Irregular { n_tasks = 25; shape = shape 0.2 0.8 0.2 1 }; sample = 2 };
    { Suite.spec = Suite.Irregular { n_tasks = 25; shape = shape 0.8 0.2 0.8 2 }; sample = 3 };
    { Suite.spec = Suite.Layered { n_tasks = 100; shape = shape 0.5 0.8 0.8 1 }; sample = 3 };
  ]

let results = lazy (List.map (Runner.run_config Cluster.chti) mini_suite)

let relative_means () =
  match Metrics.relative_makespan (Lazy.force results) with
  | [ delta; timecost ] ->
      (Stats.mean delta.Metrics.values, Stats.mean timecost.Metrics.values)
  | _ -> Alcotest.fail "expected two series"

(* Claim (Fig. 2, §IV-B): the time-cost strategy beats HCPA on average. *)
let test_timecost_beats_hcpa () =
  let _, timecost = relative_means () in
  Alcotest.(check bool)
    (Printf.sprintf "time-cost mean %.3f < 1" timecost)
    true (timecost < 1.)

(* Claim (Table V): by pairwise wins the ranking is time-cost, then delta,
   then HCPA — here asserted as time-cost winning more scenarios than HCPA
   wins against it. *)
let test_pairwise_ranking () =
  let _, m = Metrics.pairwise (Lazy.force results) in
  let tc_vs_hcpa = m.(2).(0) in
  Alcotest.(check bool) "time-cost wins the HCPA duel" true
    (tc_vs_hcpa.Metrics.better > tc_vs_hcpa.Metrics.worse)

(* Claim (Table VI): the time-cost strategy stays closest to the best. *)
let test_timecost_degradation_smallest () =
  match Metrics.degradation_from_best (Lazy.force results) with
  | [ hcpa; delta; timecost ] ->
      Alcotest.(check bool) "time-cost closest to best" true
        (timecost.Metrics.avg_over_all <= hcpa.Metrics.avg_over_all
        && timecost.Metrics.avg_over_all <= delta.Metrics.avg_over_all)
  | _ -> Alcotest.fail "expected three entries"

(* Claim (Fig. 3): neither strategy consumes much more resources than HCPA
   (within 15 % on average). *)
let test_work_stays_close () =
  match Metrics.relative_work (Lazy.force results) with
  | [ delta; timecost ] ->
      let dm = Stats.mean delta.Metrics.values
      and tm = Stats.mean timecost.Metrics.values in
      Alcotest.(check bool)
        (Printf.sprintf "work within 15%% (delta %.3f, tc %.3f)" dm tm)
        true
        (dm < 1.15 && tm < 1.15)
  | _ -> Alcotest.fail "expected two series"

(* Claim (§IV-C / Fig. 6): tuning never hurts delta — a stretch-friendly
   parameter choice is at least as good as the naive one on average. *)
let test_tuned_delta_improves () =
  let naive =
    Stats.mean
      (match Metrics.relative_makespan (Lazy.force results) with
      | [ d; _ ] -> d.Metrics.values
      | _ -> [||])
  in
  let tuned_results =
    List.map
      (Runner.run_config ~delta:{ Rats.mindelta = 0.; maxdelta = 1. }
         Cluster.chti)
      mini_suite
  in
  let tuned =
    match Metrics.relative_makespan tuned_results with
    | [ d; _ ] -> Stats.mean d.Metrics.values
    | _ -> nan
  in
  Alcotest.(check bool)
    (Printf.sprintf "tuned delta (%.3f) <= naive (%.3f) + margin" tuned naive)
    true
    (tuned <= naive +. 0.02)

(* Cross-layer determinism: the full pipeline is bit-reproducible. *)
let test_pipeline_deterministic () =
  let run () =
    List.map
      (fun (r : Runner.result) ->
        (r.Runner.hcpa.Runner.makespan, r.Runner.timecost.Runner.makespan))
      (List.map (Runner.run_config Cluster.chti) (List.filteri (fun i _ -> i < 4) mini_suite))
  in
  Alcotest.(check (list (pair (float 0.) (float 0.)))) "bit-identical"
    (run ()) (run ())

let () =
  Alcotest.run "reproduction"
    [
      ( "headline claims",
        [
          Alcotest.test_case "time-cost beats HCPA" `Slow test_timecost_beats_hcpa;
          Alcotest.test_case "pairwise ranking" `Slow test_pairwise_ranking;
          Alcotest.test_case "degradation from best" `Slow
            test_timecost_degradation_smallest;
          Alcotest.test_case "work stays close" `Slow test_work_stays_close;
          Alcotest.test_case "tuned delta improves" `Slow test_tuned_delta_improves;
          Alcotest.test_case "pipeline determinism" `Slow
            test_pipeline_deterministic;
        ] );
    ]
