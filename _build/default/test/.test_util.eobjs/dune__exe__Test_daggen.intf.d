test/test_daggen.mli:
