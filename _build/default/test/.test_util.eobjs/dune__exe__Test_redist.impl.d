test/test_redist.ml: Alcotest Array Float Gen List QCheck QCheck_alcotest Rats_platform Rats_redist Rats_util
