test/test_platform.ml: Alcotest List Rats_platform Rats_util
