test/test_core.ml: Alcotest Array Float Fun Hashtbl List Option Printf Rats_core Rats_dag Rats_daggen Rats_platform Rats_util
