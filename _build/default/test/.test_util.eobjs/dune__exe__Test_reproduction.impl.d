test/test_reproduction.ml: Alcotest Array Lazy List Printf Rats_core Rats_daggen Rats_exp Rats_platform Rats_util
