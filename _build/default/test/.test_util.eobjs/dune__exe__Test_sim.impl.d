test/test_sim.ml: Alcotest Array Float Fun Gen Hashtbl List QCheck QCheck_alcotest Rats_platform Rats_sim Rats_util
