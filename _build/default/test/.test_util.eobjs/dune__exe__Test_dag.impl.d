test/test_dag.ml: Alcotest Array Format List QCheck QCheck_alcotest Rats_dag Rats_daggen Rats_util String
