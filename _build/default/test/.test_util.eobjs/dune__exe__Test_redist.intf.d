test/test_redist.mli:
