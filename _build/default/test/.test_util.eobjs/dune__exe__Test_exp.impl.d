test/test_exp.ml: Alcotest Array Filename Float Format Lazy List Rats_core Rats_daggen Rats_exp Rats_platform String Sys
