test/test_properties.ml: Alcotest Array Float Gen List QCheck QCheck_alcotest Rats_core Rats_dag Rats_daggen Rats_platform Rats_redist Rats_util
