test/test_viz.ml: Alcotest Array Filename Rats_core Rats_daggen Rats_platform Rats_util Rats_viz String Sys Unix
