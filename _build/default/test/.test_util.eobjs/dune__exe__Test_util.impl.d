test/test_util.ml: Alcotest Array Float Format Fun List Option QCheck QCheck_alcotest Rats_util
