test/test_daggen.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Rats_dag Rats_daggen Rats_util
