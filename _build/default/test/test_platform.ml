(* Tests for rats_platform: links, topologies, cluster presets and routes. *)

module Link = Rats_platform.Link
module Topology = Rats_platform.Topology
module Cluster = Rats_platform.Cluster
module Units = Rats_util.Units

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

(* --- Link ---------------------------------------------------------------- *)

let test_link_gigabit () =
  checkf "latency 100us" 1e-4 Link.gigabit.Link.latency;
  checkf "bandwidth 1Gb/s in bytes" 1.25e8 Link.gigabit.Link.bandwidth

let test_link_validation () =
  Alcotest.check_raises "negative latency"
    (Invalid_argument "Link.make: negative latency") (fun () ->
      ignore (Link.make ~latency:(-1.) ~bandwidth:1.));
  Alcotest.check_raises "zero bandwidth"
    (Invalid_argument "Link.make: non-positive bandwidth") (fun () ->
      ignore (Link.make ~latency:0. ~bandwidth:0.))

(* --- Topology ------------------------------------------------------------ *)

let test_topology_flat () =
  let t = Topology.Flat 8 in
  check Alcotest.int "nodes" 8 (Topology.n_nodes t);
  check Alcotest.int "no uplinks" 0 (Topology.n_uplinks t);
  check Alcotest.int "single cabinet" 0 (Topology.cabinet_of t 5);
  Alcotest.(check bool) "same cabinet" true (Topology.same_cabinet t 0 7)

let test_topology_cabinets () =
  let t = Topology.Cabinets { cabinets = 3; per_cabinet = 4 } in
  check Alcotest.int "nodes" 12 (Topology.n_nodes t);
  check Alcotest.int "uplinks" 3 (Topology.n_uplinks t);
  check Alcotest.int "node 0 cabinet" 0 (Topology.cabinet_of t 0);
  check Alcotest.int "node 4 cabinet" 1 (Topology.cabinet_of t 4);
  check Alcotest.int "node 11 cabinet" 2 (Topology.cabinet_of t 11);
  Alcotest.(check bool) "same cabinet" true (Topology.same_cabinet t 4 7);
  Alcotest.(check bool) "different cabinets" false (Topology.same_cabinet t 3 4)

let test_topology_bounds () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Topology: node out of range") (fun () ->
      ignore (Topology.cabinet_of (Topology.Flat 4) 4))

(* --- Cluster presets (Table II) ------------------------------------------ *)

let test_presets_table2 () =
  check Alcotest.int "chti procs" 20 (Cluster.n_procs Cluster.chti);
  check Alcotest.int "grillon procs" 47 (Cluster.n_procs Cluster.grillon);
  check Alcotest.int "grelon procs" 120 (Cluster.n_procs Cluster.grelon);
  checkf "chti speed" (Units.gflops 4.311) Cluster.chti.Cluster.speed;
  checkf "grillon speed" (Units.gflops 3.379) Cluster.grillon.Cluster.speed;
  checkf "grelon speed" (Units.gflops 3.185) Cluster.grelon.Cluster.speed;
  check Alcotest.int "grelon uplinks" 125 (Cluster.n_links Cluster.grelon);
  check Alcotest.int "grillon links" 47 (Cluster.n_links Cluster.grillon);
  check Alcotest.int "three presets" 3 (List.length Cluster.presets)

let test_cluster_validation () =
  Alcotest.check_raises "bad speed"
    (Invalid_argument "Cluster.make: non-positive speed") (fun () ->
      ignore
        (Cluster.make ~name:"x" ~topology:(Topology.Flat 2) ~speed_gflops:0. ()))

(* --- Routes -------------------------------------------------------------- *)

let test_route_flat () =
  let c = Cluster.grillon in
  Alcotest.(check (array int)) "self route empty" [||]
    (Cluster.route c ~src:3 ~dst:3);
  Alcotest.(check (array int)) "two private links" [| 3; 9 |]
    (Cluster.route c ~src:3 ~dst:9)

let test_route_hierarchical () =
  let c = Cluster.grelon in
  (* nodes 0 and 5 share cabinet 0 (24 per cabinet) *)
  Alcotest.(check (array int)) "same cabinet" [| 0; 5 |]
    (Cluster.route c ~src:0 ~dst:5);
  (* nodes 0 (cab 0) and 30 (cab 1): both NICs plus both uplinks *)
  Alcotest.(check (array int)) "across cabinets" [| 0; 120; 121; 30 |]
    (Cluster.route c ~src:0 ~dst:30)

let test_route_bounds () =
  Alcotest.check_raises "bad node"
    (Invalid_argument "Cluster.route: node out of range") (fun () ->
      ignore (Cluster.route Cluster.chti ~src:0 ~dst:20))

let test_one_way_latency () =
  let c = Cluster.grelon in
  let flat = Cluster.route c ~src:0 ~dst:5 in
  checkf "2 hops" 2e-4 (Cluster.one_way_latency c ~route:flat);
  let deep = Cluster.route c ~src:0 ~dst:30 in
  checkf "4 hops" 4e-4 (Cluster.one_way_latency c ~route:deep)

let test_flow_rate_cap () =
  let c = Cluster.grillon in
  let route = Cluster.route c ~src:0 ~dst:1 in
  (* RTT = 2 x 200us = 400us; Wmax = 4MiB -> 10.5 GB/s >> 125 MB/s *)
  checkf "bandwidth-bound" 1.25e8 (Cluster.flow_rate_cap c ~route);
  checkf "empty route unbounded" infinity (Cluster.flow_rate_cap c ~route:[||]);
  (* A tiny TCP window makes the empirical bandwidth bind. *)
  let small =
    Cluster.make ~name:"tiny" ~topology:(Topology.Flat 4) ~speed_gflops:1.
      ~tcp_wmax:1000. ()
  in
  let r = Cluster.route small ~src:0 ~dst:1 in
  checkf "window-bound" (1000. /. 4e-4) (Cluster.flow_rate_cap small ~route:r)

let test_all_procs () =
  check Alcotest.int "all procs size" 20
    (Rats_util.Procset.size (Cluster.all_procs Cluster.chti))

let test_link_lookup () =
  let c = Cluster.grelon in
  checkf "node link bandwidth" 1.25e8 (Cluster.link c 0).Link.bandwidth;
  checkf "uplink bandwidth" 1.25e8 (Cluster.link c 124).Link.bandwidth;
  Alcotest.check_raises "link out of range"
    (Invalid_argument "Cluster.link: out of range") (fun () ->
      ignore (Cluster.link c 125))

let () =
  Alcotest.run "rats_platform"
    [
      ( "link",
        [
          Alcotest.test_case "gigabit" `Quick test_link_gigabit;
          Alcotest.test_case "validation" `Quick test_link_validation;
        ] );
      ( "topology",
        [
          Alcotest.test_case "flat" `Quick test_topology_flat;
          Alcotest.test_case "cabinets" `Quick test_topology_cabinets;
          Alcotest.test_case "bounds" `Quick test_topology_bounds;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "Table II presets" `Quick test_presets_table2;
          Alcotest.test_case "validation" `Quick test_cluster_validation;
          Alcotest.test_case "flat routes" `Quick test_route_flat;
          Alcotest.test_case "hierarchical routes" `Quick test_route_hierarchical;
          Alcotest.test_case "route bounds" `Quick test_route_bounds;
          Alcotest.test_case "one-way latency" `Quick test_one_way_latency;
          Alcotest.test_case "flow rate cap" `Quick test_flow_rate_cap;
          Alcotest.test_case "all procs" `Quick test_all_procs;
          Alcotest.test_case "link lookup" `Quick test_link_lookup;
        ] );
    ]
