(* Tests for rats_viz: SVG builder and Gantt rendering. *)

module Svg = Rats_viz.Svg
module Gantt = Rats_viz.Gantt
module Core = Rats_core
module Suite = Rats_daggen.Suite

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_svg_structure () =
  let svg = Svg.create ~width:100. ~height:50. in
  Svg.rect svg ~x:1. ~y:2. ~w:10. ~h:5. ~fill:"red" ();
  Svg.line svg ~x1:0. ~y1:0. ~x2:9. ~y2:9. ~stroke:"blue" ();
  Svg.text svg ~x:5. ~y:5. "hello";
  let out = Svg.to_string svg in
  Alcotest.(check bool) "svg root" true (contains out "<svg xmlns");
  Alcotest.(check bool) "has rect" true (contains out "<rect");
  Alcotest.(check bool) "has line" true (contains out "<line");
  Alcotest.(check bool) "has text" true (contains out ">hello</text>");
  Alcotest.(check bool) "closed" true (contains out "</svg>")

let test_svg_escaping () =
  let svg = Svg.create ~width:10. ~height:10. in
  Svg.text svg ~x:0. ~y:0. "a<b&c>d\"e";
  let out = Svg.to_string svg in
  Alcotest.(check bool) "escaped" true
    (contains out "a&lt;b&amp;c&gt;d&quot;e")

let test_svg_element_order () =
  let svg = Svg.create ~width:10. ~height:10. in
  Svg.text svg ~x:0. ~y:0. "first";
  Svg.text svg ~x:0. ~y:0. "second";
  let out = Svg.to_string svg in
  let idx needle =
    let nl = String.length needle in
    let rec go i =
      if i + nl > String.length out then -1
      else if String.sub out i nl = needle then i
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "insertion order preserved" true
    (idx "first" < idx "second")

let test_svg_save () =
  let svg = Svg.create ~width:10. ~height:10. in
  Svg.rect svg ~x:0. ~y:0. ~w:1. ~h:1. ~fill:"green" ();
  let path = Filename.temp_file "rats" ".svg" in
  Svg.save svg path;
  let ok = Sys.file_exists path in
  Sys.remove path;
  Alcotest.(check bool) "file written" true ok

let gantt_fixture () =
  let dag = Suite.generate { Suite.spec = Suite.Strassen; sample = 0 } in
  let problem = Core.Problem.make ~dag ~cluster:Rats_platform.Cluster.chti in
  let schedule =
    Core.Rats.schedule problem (Core.Rats.Timecost Core.Rats.naive_timecost)
  in
  (schedule, Core.Evaluate.run schedule)

let test_gantt_renders () =
  let schedule, result = gantt_fixture () in
  let out = Svg.to_string (Gantt.render schedule result ~title:"strassen") in
  Alcotest.(check bool) "has title" true (contains out "strassen");
  Alcotest.(check bool) "has processor label" true (contains out ">p0</text>");
  Alcotest.(check bool) "draws boxes" true (contains out "<rect");
  (* Every non-virtual task paints at least one box per processor: count
     rect occurrences as a sanity lower bound. *)
  let rects = ref 0 in
  String.iteri
    (fun i c ->
      if c = '<' && i + 5 <= String.length out && String.sub out i 5 = "<rect"
      then incr rects)
    out;
  let min_boxes =
    Array.fold_left
      (fun acc e ->
        if Core.Problem.is_virtual (Core.Schedule.problem schedule)
             e.Core.Schedule.task
        then acc
        else acc + Rats_util.Procset.size e.Core.Schedule.procs)
      0
      (Core.Schedule.entries schedule)
  in
  Alcotest.(check bool) "one box per task-processor" true (!rects >= min_boxes)

let test_gantt_save () =
  let schedule, result = gantt_fixture () in
  let path = Filename.temp_file "rats_gantt" ".svg" in
  Gantt.save schedule result ~title:"t" ~path;
  let size = (Unix.stat path).Unix.st_size in
  Sys.remove path;
  Alcotest.(check bool) "non-trivial file" true (size > 1000)

let () =
  Alcotest.run "rats_viz"
    [
      ( "svg",
        [
          Alcotest.test_case "structure" `Quick test_svg_structure;
          Alcotest.test_case "escaping" `Quick test_svg_escaping;
          Alcotest.test_case "element order" `Quick test_svg_element_order;
          Alcotest.test_case "save" `Quick test_svg_save;
        ] );
      ( "gantt",
        [
          Alcotest.test_case "renders" `Quick test_gantt_renders;
          Alcotest.test_case "save" `Quick test_gantt_save;
        ] );
    ]
