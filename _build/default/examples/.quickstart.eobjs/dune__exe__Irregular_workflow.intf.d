examples/irregular_workflow.mli:
