examples/tuning_demo.mli:
