examples/fft_workflow.mli:
