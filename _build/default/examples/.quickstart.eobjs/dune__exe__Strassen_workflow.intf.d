examples/strassen_workflow.mli:
