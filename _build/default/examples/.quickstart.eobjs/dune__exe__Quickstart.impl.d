examples/quickstart.ml: Array Format List Rats_core Rats_dag Rats_platform Rats_util
