examples/irregular_workflow.ml: Array Format List Rats_core Rats_dag Rats_daggen Rats_platform
