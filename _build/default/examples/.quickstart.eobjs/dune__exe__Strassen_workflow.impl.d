examples/strassen_workflow.ml: Format List Rats_core Rats_dag Rats_daggen Rats_platform Rats_util
