examples/tuning_demo.ml: Format List Rats_core Rats_daggen Rats_exp Rats_platform
