examples/quickstart.mli:
