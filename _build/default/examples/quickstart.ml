(* Quickstart: build a small mixed-parallel application by hand, schedule it
   with RATS and inspect the result.

   The application is a diamond: a producer task fans out to two parallel
   workers whose results a consumer combines — the smallest shape on which
   redistribution-aware mapping matters, because each worker can inherit the
   producer's processor set instead of paying a redistribution.

   Run with: dune exec examples/quickstart.exe *)

module Task = Rats_dag.Task
module Dag = Rats_dag.Dag
module Cluster = Rats_platform.Cluster
module Core = Rats_core
module Units = Rats_util.Units

let () =
  (* 1. Describe the application. Sizes follow the paper's task model: a
     dataset of m double elements, a.m flop, Amdahl fraction alpha. *)
  let m = 32. *. Units.mega in
  let task id name flop_factor =
    Task.make ~id ~name ~data_elements:m ~flop:(flop_factor *. m) ~alpha:0.05
  in
  let b = Dag.Builder.create () in
  Dag.Builder.add_task b (task 0 "produce" 128.);
  Dag.Builder.add_task b (task 1 "filter" 256.);
  Dag.Builder.add_task b (task 2 "transform" 256.);
  Dag.Builder.add_task b (task 3 "combine" 128.);
  let bytes = m *. Units.bytes_per_element in
  Dag.Builder.add_edge b ~src:0 ~dst:1 ~bytes;
  Dag.Builder.add_edge b ~src:0 ~dst:2 ~bytes;
  Dag.Builder.add_edge b ~src:1 ~dst:3 ~bytes;
  Dag.Builder.add_edge b ~src:2 ~dst:3 ~bytes;
  let dag = Dag.Builder.build b in
  Format.printf "application: %a@." Dag.pp_stats dag;

  (* 2. Pick a platform and bundle the problem. *)
  let cluster = Cluster.grillon in
  let problem = Core.Problem.make ~dag ~cluster in
  Format.printf "platform:    %a@.@." Cluster.pp cluster;

  (* 3. First step: HCPA decides how many processors each task gets. *)
  let alloc = Core.Hcpa.allocate problem in
  Array.iteri
    (fun i np ->
      Format.printf "allocation: %-10s -> %2d processors@."
        (Dag.task dag i).Task.name np)
    alloc;

  (* 4. Second step: map with the baseline and with both RATS strategies,
     then measure each schedule in the contention simulator. *)
  Format.printf "@.%-10s %12s %12s %10s@." "mapping" "est. (s)" "sim. (s)"
    "work";
  List.iter
    (fun strategy ->
      let outcome = Core.Algorithms.run ~alloc problem strategy in
      Format.printf "%-10s %12.2f %12.2f %10.0f@."
        (Core.Rats.strategy_name strategy)
        (Core.Schedule.makespan_estimated outcome.Core.Algorithms.schedule)
        (Core.Algorithms.makespan outcome)
        (Core.Algorithms.work outcome))
    [
      Core.Rats.Baseline;
      Core.Rats.Delta Core.Rats.naive_delta;
      Core.Rats.Timecost Core.Rats.naive_timecost;
    ];

  (* 5. Look inside the best schedule. *)
  let outcome =
    Core.Algorithms.run ~alloc problem (Core.Rats.Timecost Core.Rats.naive_timecost)
  in
  Format.printf "@.time-cost schedule:@.%a" Core.Schedule.pp
    outcome.Core.Algorithms.schedule;
  let sim = outcome.Core.Algorithms.simulated in
  Format.printf "redistributions: %d paid, %d avoided, %a over the network@."
    sim.Core.Evaluate.redistributions sim.Core.Evaluate.avoided
    Units.pp_bytes sim.Core.Evaluate.remote_bytes
