(* FFT workflow: the paper's first HPC kernel (§IV-A) on the hierarchical
   grelon cluster.

   A Fast Fourier Transform over k data points is a binary tree of recursive
   calls feeding a butterfly network — every root-to-exit path is critical,
   which makes it a stress test for allocation decisions: whatever the
   scheduler does to one path it should do to all of them. This example
   scans k in {2, 4, 8, 16} and shows how the RATS strategies trade
   redistributions against allocation changes on a cluster whose cabinet
   uplinks make inter-cabinet redistribution extra expensive.

   Run with: dune exec examples/fft_workflow.exe *)

module Suite = Rats_daggen.Suite
module Dag = Rats_dag.Dag
module Cluster = Rats_platform.Cluster
module Core = Rats_core

let strategies =
  [
    Core.Rats.Baseline;
    Core.Rats.Delta Core.Rats.naive_delta;
    Core.Rats.Timecost Core.Rats.naive_timecost;
  ]

let () =
  let cluster = Cluster.grelon in
  Format.printf "cluster: %a@.@." Cluster.pp cluster;
  List.iter
    (fun k ->
      let config = { Suite.spec = Suite.Fft { k }; sample = 0 } in
      let dag = Suite.generate config in
      let problem = Core.Problem.make ~dag ~cluster in
      let alloc = Core.Hcpa.allocate problem in
      Format.printf "FFT k=%-2d (%d tasks, average parallelism %.1f):@." k
        (Dag.n_tasks dag)
        (Core.Hcpa.average_parallelism problem);
      (* Allocation profile per DAG level: the tree narrows toward the root,
         the butterfly is uniformly k wide. *)
      let groups = Dag.level_groups dag in
      Format.printf "  allocations per level:";
      Array.iter
        (fun tasks ->
          let nps = List.map (fun i -> alloc.(i)) tasks in
          let mn = List.fold_left min max_int nps
          and mx = List.fold_left max 0 nps in
          if mn = mx then Format.printf " %d" mn
          else Format.printf " %d-%d" mn mx)
        groups;
      Format.printf "@.";
      List.iter
        (fun strategy ->
          let o = Core.Algorithms.run ~alloc problem strategy in
          let sim = o.Core.Algorithms.simulated in
          Format.printf
            "  %-10s simulated=%8.2fs work=%9.0f redist paid/avoided=%3d/%3d@."
            (Core.Rats.strategy_name strategy)
            sim.Core.Evaluate.makespan (Core.Algorithms.work o)
            sim.Core.Evaluate.redistributions sim.Core.Evaluate.avoided)
        strategies;
      Format.printf "@.")
    [ 2; 4; 8; 16 ]
