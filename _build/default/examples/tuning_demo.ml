(* Tuning demo: a miniature of the paper's §IV-C parameter study.

   Sweeps the delta strategy's (mindelta, maxdelta) grid and the time-cost
   strategy's minrho values over a handful of irregular workflows on
   grillon, printing the average makespan relative to HCPA for every grid
   point — the same surfaces as Figures 4 and 5, at toy scale (the full
   versions live in bench/main.exe fig4 / fig5).

   Run with: dune exec examples/tuning_demo.exe *)

module Suite = Rats_daggen.Suite
module Shape = Rats_daggen.Shape
module Cluster = Rats_platform.Cluster
module Exp = Rats_exp

let () =
  let configs =
    List.concat_map
      (fun width ->
        List.map
          (fun sample ->
            let shape =
              Shape.make ~width ~regularity:0.8 ~density:0.2 ~jump:2 ()
            in
            { Suite.spec = Suite.Irregular { n_tasks = 25; shape }; sample })
          [ 0; 1 ])
      [ 0.2; 0.5 ]
  in
  Format.printf "preparing %d workflows on grillon...@."
    (List.length configs);
  let prepared = Exp.Tuning.prepare Cluster.grillon configs in

  let delta_points = Exp.Tuning.sweep_delta prepared in
  Exp.Figures.fig4 Format.std_formatter delta_points;

  Format.printf "@.";
  let timecost_points = Exp.Tuning.sweep_timecost prepared in
  Exp.Figures.fig5 Format.std_formatter timecost_points;

  let tuned = Exp.Tuning.best delta_points timecost_points in
  Format.printf
    "@.best parameters here: mindelta=%.2f maxdelta=%.2f minrho=%.2f@."
    tuned.Exp.Tuning.delta.Rats_core.Rats.mindelta
    tuned.Exp.Tuning.delta.Rats_core.Rats.maxdelta tuned.Exp.Tuning.minrho
