(* Strassen workflow: the paper's second HPC kernel (§IV-A) on the small
   chti cluster.

   Strassen's matrix multiplication (one recursion level) is 25 tasks: 10
   operand additions feed 7 sub-multiplications whose results 8 additions
   combine into the four quadrants of C. On a 20-node cluster the processor
   sets of parents and children overlap constantly, so this example focuses
   on the redistribution ledger: how many transfers each strategy avoids and
   how many bytes stay local, plus the effect of the time-cost minrho
   threshold.

   Run with: dune exec examples/strassen_workflow.exe *)

module Suite = Rats_daggen.Suite
module Cluster = Rats_platform.Cluster
module Core = Rats_core
module Units = Rats_util.Units

let pct a b = if b > 0. then 100. *. a /. b else 0.

let () =
  let cluster = Cluster.chti in
  Format.printf "cluster: %a@.@." Cluster.pp cluster;
  let config = { Suite.spec = Suite.Strassen; sample = 3 } in
  let dag = Suite.generate config in
  let problem = Core.Problem.make ~dag ~cluster in
  let alloc = Core.Hcpa.allocate problem in
  Format.printf "%s: %a@.@." (Suite.name config) Rats_dag.Dag.pp_stats dag;

  Format.printf "redistribution ledger (naive parameters):@.";
  List.iter
    (fun strategy ->
      let o = Core.Algorithms.run ~alloc problem strategy in
      let sim = o.Core.Algorithms.simulated in
      let total = sim.Core.Evaluate.remote_bytes +. sim.Core.Evaluate.local_bytes in
      Format.printf
        "  %-10s makespan=%7.2fs avoided=%2d/%2d transfers, %5.1f%% of bytes \
         stayed local@."
        (Core.Rats.strategy_name strategy)
        sim.Core.Evaluate.makespan sim.Core.Evaluate.avoided
        (sim.Core.Evaluate.avoided + sim.Core.Evaluate.redistributions)
        (pct sim.Core.Evaluate.local_bytes total))
    [
      Core.Rats.Baseline;
      Core.Rats.Delta Core.Rats.naive_delta;
      Core.Rats.Timecost Core.Rats.naive_timecost;
    ];

  (* The minrho threshold controls how much efficiency loss a stretch may
     cost. Low values stretch eagerly, 1.0 never stretches. *)
  Format.printf "@.time-cost sensitivity to minrho (packing on):@.";
  List.iter
    (fun minrho ->
      let strategy = Core.Rats.Timecost { minrho; packing = true } in
      let o = Core.Algorithms.run ~alloc problem strategy in
      Format.printf "  minrho=%.1f -> simulated makespan %7.2fs, work %7.0f@."
        minrho (Core.Algorithms.makespan o) (Core.Algorithms.work o))
    [ 0.2; 0.4; 0.5; 0.6; 0.8; 1.0 ]
