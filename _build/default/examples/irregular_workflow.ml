(* Irregular workflow: a heterogeneous scientific workflow (paper §IV-A).

   Irregular random DAGs model real workflows: levels of dissimilar sizes,
   tasks of dissimilar costs, and jump edges that skip levels. This example
   generates one, inspects it through the DAG API (levels, critical path,
   average parallelism), then compares naive and hand-tuned RATS parameters
   against the HCPA baseline — the §IV-C observation that tuning pays.

   Run with: dune exec examples/irregular_workflow.exe *)

module Suite = Rats_daggen.Suite
module Shape = Rats_daggen.Shape
module Dag = Rats_dag.Dag
module Task = Rats_dag.Task
module Cluster = Rats_platform.Cluster
module Core = Rats_core

let () =
  let shape = Shape.make ~width:0.5 ~regularity:0.2 ~density:0.5 ~jump:2 () in
  let config =
    { Suite.spec = Suite.Irregular { n_tasks = 50; shape }; sample = 1 }
  in
  let dag = Suite.generate config in
  let cluster = Cluster.grillon in
  let problem = Core.Problem.make ~dag ~cluster in
  Format.printf "%s on %s@." (Suite.name config) cluster.Cluster.name;
  Format.printf "%a@." Dag.pp_stats dag;
  Format.printf "average parallelism: %.2f@."
    (Core.Hcpa.average_parallelism problem);

  (* Level structure: irregular DAGs have dissimilar level sizes. *)
  let groups = Dag.level_groups dag in
  Format.printf "level sizes:";
  Array.iter (fun tasks -> Format.printf " %d" (List.length tasks)) groups;
  Format.printf "@.";

  (* The computation-weighted critical path under the HCPA allocation. *)
  let alloc = Core.Hcpa.allocate problem in
  let path, c_inf =
    Dag.critical_path dag
      ~task_cost:(fun i -> Core.Problem.task_time problem i ~procs:alloc.(i))
      ~edge_cost:(fun _ _ bytes -> Core.Problem.edge_cost_estimate problem bytes)
  in
  Format.printf "critical path (%.1fs):" c_inf;
  List.iter (fun i -> Format.printf " %s" (Dag.task dag i).Task.name) path;
  Format.printf "@.@.";

  let hcpa = Core.Algorithms.run ~alloc problem Core.Rats.Baseline in
  let hcpa_makespan = Core.Algorithms.makespan hcpa in
  Format.printf "%-28s %10.2fs (1.000)@." "hcpa baseline" hcpa_makespan;
  List.iter
    (fun (label, strategy) ->
      let schedule, stats = Core.Rats.schedule_with_stats ~alloc problem strategy in
      let m = (Core.Evaluate.run schedule).Core.Evaluate.makespan in
      Format.printf "%-28s %10.2fs (%.3f)  stretched %d, packed %d tasks@."
        label m (m /. hcpa_makespan) stats.Core.Rats.stretched
        stats.Core.Rats.packed)
    [
      ("delta naive (-0.5, 0.5)", Core.Rats.Delta Core.Rats.naive_delta);
      ( "delta tuned (0, 1)",
        Core.Rats.Delta { Core.Rats.mindelta = 0.; maxdelta = 1. } );
      ("time-cost naive (0.5)", Core.Rats.Timecost Core.Rats.naive_timecost);
      ( "time-cost eager (0.2)",
        Core.Rats.Timecost { Core.Rats.minrho = 0.2; packing = true } );
    ]
