module Schedule = Rats_core.Schedule
module Evaluate = Rats_core.Evaluate
module Problem = Rats_core.Problem
module Procset = Rats_util.Procset

let margin_left = 60.
let margin_top = 40.
let row_height = 14.
let row_gap = 2.
let chart_width = 900.

(* Stable, readable task colors: hue from a hash of the id, fixed
   saturation/lightness. *)
let color_of_task id =
  let hue = (id * 2654435761) land 0xFFFF mod 360 in
  Printf.sprintf "hsl(%d, 65%%, 55%%)" hue

let render schedule result ~title =
  let problem = Schedule.problem schedule in
  let n_procs = Problem.n_procs problem in
  let makespan = Float.max 1e-9 result.Evaluate.makespan in
  let height =
    margin_top
    +. (float_of_int n_procs *. (row_height +. row_gap))
    +. 30. (* axis *)
    +. row_height +. 14. (* network lane *)
  in
  let svg = Svg.create ~width:(chart_width +. margin_left +. 20.) ~height in
  Svg.title svg ~x:margin_left ~y:20. title;
  let x_of time = margin_left +. (time /. makespan *. chart_width) in
  let y_of proc = margin_top +. (float_of_int proc *. (row_height +. row_gap)) in
  (* Axis with ~8 ticks. *)
  let axis_y = margin_top +. (float_of_int n_procs *. (row_height +. row_gap)) in
  Svg.line svg ~x1:margin_left ~y1:axis_y ~x2:(x_of makespan) ~y2:axis_y
    ~stroke:"#444" ();
  for k = 0 to 8 do
    let time = makespan *. float_of_int k /. 8. in
    let x = x_of time in
    Svg.line svg ~x1:x ~y1:axis_y ~x2:x ~y2:(axis_y +. 4.) ~stroke:"#444" ();
    Svg.text svg ~x ~y:(axis_y +. 14.) ~size:8. ~anchor:"middle"
      (Printf.sprintf "%.1fs" time)
  done;
  (* Processor labels. *)
  for q = 0 to n_procs - 1 do
    if n_procs <= 32 || q mod 8 = 0 then
      Svg.text svg ~x:(margin_left -. 6.) ~y:(y_of q +. row_height -. 3.)
        ~size:8. ~anchor:"end"
        (Printf.sprintf "p%d" q)
  done;
  (* Task boxes. *)
  Array.iter
    (fun e ->
      let t = e.Schedule.task in
      if not (Problem.is_virtual problem t) then begin
        let start = result.Evaluate.starts.(t)
        and finish = result.Evaluate.finishes.(t) in
        let x = x_of start in
        let w = Float.max 0.5 (x_of finish -. x) in
        Procset.iter
          (fun q ->
            Svg.rect svg ~x ~y:(y_of q) ~w ~h:row_height
              ~stroke:"#333" ~fill:(color_of_task t) ())
          e.Schedule.procs;
        (* Label the task once, on its first processor, if the box is wide
           enough to hold it. *)
        if w > 18. then
          Svg.text svg ~x:(x +. 2.)
            ~y:(y_of (Procset.nth e.Schedule.procs 0) +. row_height -. 3.)
            ~size:8. ~fill:"#fff"
            (string_of_int t)
      end)
    (Schedule.entries schedule);
  (* Network lane: every paid redistribution as a translucent bar, colored
     by the producing task. *)
  let net_y = axis_y +. 20. in
  Svg.text svg ~x:(margin_left -. 6.) ~y:(net_y +. row_height -. 3.) ~size:8.
    ~anchor:"end" "net";
  List.iter
    (fun (s : Evaluate.span) ->
      let x = x_of s.Evaluate.span_start in
      let w = Float.max 0.5 (x_of s.Evaluate.span_finish -. x) in
      Svg.rect svg ~x ~y:net_y ~w ~h:row_height ~opacity:0.45
        ~fill:(color_of_task s.Evaluate.src_task) ())
    result.Evaluate.spans;
  svg

let save schedule result ~title ~path =
  Svg.save (render schedule result ~title) path
