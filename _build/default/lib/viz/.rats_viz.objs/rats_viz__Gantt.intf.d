lib/viz/gantt.mli: Rats_core Svg
