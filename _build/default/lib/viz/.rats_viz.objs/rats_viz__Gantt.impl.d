lib/viz/gantt.ml: Array Float List Printf Rats_core Rats_util Svg
