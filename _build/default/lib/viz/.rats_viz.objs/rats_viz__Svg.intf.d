lib/viz/svg.mli:
