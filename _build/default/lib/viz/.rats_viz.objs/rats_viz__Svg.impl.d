lib/viz/svg.ml: Buffer Fun List Printf String
