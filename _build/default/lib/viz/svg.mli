(** Minimal SVG document builder.

    Just enough vector drawing for the Gantt renderer: a growing list of
    shapes serialized into a standalone [.svg]. Coordinates are in user
    units (pixels); colors are any CSS color string. *)

type t

val create : width:float -> height:float -> t

val rect :
  t -> x:float -> y:float -> w:float -> h:float -> ?stroke:string ->
  ?opacity:float -> fill:string -> unit -> unit

val line :
  t -> x1:float -> y1:float -> x2:float -> y2:float -> ?width:float ->
  stroke:string -> unit -> unit

val text :
  t -> x:float -> y:float -> ?size:float -> ?anchor:string -> ?fill:string ->
  string -> unit
(** [anchor] is the SVG [text-anchor]: "start" (default), "middle", "end". *)

val title : t -> x:float -> y:float -> string -> unit
(** Convenience: 14-px bold-ish heading. *)

val to_string : t -> string

val save : t -> string -> unit
(** Writes the document to a file. *)
