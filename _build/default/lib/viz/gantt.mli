(** Gantt-chart rendering of simulated schedules.

    One row per processor, one colored box per task execution span (using
    the {e simulated} start/finish dates from {!Rats_core.Evaluate}), with a
    time axis and a task color derived from the task id, so the same task is
    recognizable across the processors of its set. Virtual entry/exit tasks
    are skipped (zero width anyway). Useful to eyeball where RATS removes
    redistribution gaps compared to the baseline. *)

val render :
  Rats_core.Schedule.t -> Rats_core.Evaluate.result -> title:string -> Svg.t

val save :
  Rats_core.Schedule.t -> Rats_core.Evaluate.result -> title:string ->
  path:string -> unit
