type t = {
  width : float;
  height : float;
  mutable rev_elements : string list;
}

let create ~width ~height = { width; height; rev_elements = [] }

let push t e = t.rev_elements <- e :: t.rev_elements

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rect t ~x ~y ~w ~h ?stroke ?(opacity = 1.) ~fill () =
  let stroke =
    match stroke with
    | Some s -> Printf.sprintf {| stroke="%s" stroke-width="0.5"|} s
    | None -> ""
  in
  push t
    (Printf.sprintf
       {|<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="%.2f"%s/>|}
       x y w h fill opacity stroke)

let line t ~x1 ~y1 ~x2 ~y2 ?(width = 1.) ~stroke () =
  push t
    (Printf.sprintf
       {|<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"/>|}
       x1 y1 x2 y2 stroke width)

let text t ~x ~y ?(size = 10.) ?(anchor = "start") ?(fill = "#222") s =
  push t
    (Printf.sprintf
       {|<text x="%.2f" y="%.2f" font-size="%.1f" font-family="sans-serif" text-anchor="%s" fill="%s">%s</text>|}
       x y size anchor fill (escape s))

let title t ~x ~y s = text t ~x ~y ~size:14. s

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       {|<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">|}
       t.width t.height t.width t.height);
  Buffer.add_string buf "\n";
  List.iter
    (fun e ->
      Buffer.add_string buf e;
      Buffer.add_char buf '\n')
    (List.rev t.rev_elements);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))
