type t = int array

let empty = [||]

let of_sorted_array_unchecked a = a

let of_array a =
  let a = Array.copy a in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    if a.(0) < 0 then invalid_arg "Procset.of_array: negative index";
    (* Deduplicate in place. *)
    let w = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(!w - 1) then begin
        a.(!w) <- a.(i);
        incr w
      end
    done;
    Array.sub a 0 !w
  end

let of_list l = of_array (Array.of_list l)

let range lo n =
  if n < 0 || lo < 0 then invalid_arg "Procset.range";
  Array.init n (fun i -> lo + i)

let size = Array.length
let is_empty s = Array.length s = 0

let find_index p s =
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      if s.(mid) = p then Some mid
      else if s.(mid) < p then go (mid + 1) hi
      else go lo mid
  in
  go 0 (Array.length s)

let mem p s = find_index p s <> None

let nth s r =
  if r < 0 || r >= Array.length s then invalid_arg "Procset.nth";
  s.(r)

let rank p s = find_index p s

let equal a b = a = b
let compare = compare

let subset a b = Array.for_all (fun p -> mem p b) a

let inter a b = Array.to_list a |> List.filter (fun p -> mem p b) |> Array.of_list

let union a b =
  let out = Array.make (Array.length a + Array.length b) 0 in
  let i = ref 0 and j = ref 0 and w = ref 0 in
  let push v = out.(!w) <- v; incr w in
  while !i < Array.length a && !j < Array.length b do
    let x = a.(!i) and y = b.(!j) in
    if x < y then (push x; incr i)
    else if y < x then (push y; incr j)
    else (push x; incr i; incr j)
  done;
  while !i < Array.length a do push a.(!i); incr i done;
  while !j < Array.length b do push b.(!j); incr j done;
  Array.sub out 0 !w

let diff a b = Array.to_list a |> List.filter (fun p -> not (mem p b)) |> Array.of_list

let fold f s init = Array.fold_left (fun acc p -> f p acc) init s
let iter f s = Array.iter f s
let to_list = Array.to_list
let to_array = Array.copy

let first_n s n =
  if n < 0 || n > Array.length s then invalid_arg "Procset.first_n";
  Array.sub s 0 n

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (to_list s)
