(** Deterministic pseudo-random number generator.

    SplitMix64 (Steele, Lea, Flood, OOPSLA 2014): a tiny, fast, splittable
    generator with a 64-bit state. Every experiment in this repository is
    seeded explicitly so that DAG generation, parameter draws and therefore
    all figures and tables are bit-reproducible across runs. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** [copy r] is an independent generator starting from [r]'s current state. *)

val split : t -> t
(** [split r] advances [r] and returns a new generator whose stream is
    statistically independent of [r]'s subsequent output. Used to give each
    DAG sample its own stream so that adding samples never perturbs the
    existing ones. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float r bound] draws uniformly in [\[0, bound)]. [bound] must be > 0. *)

val uniform : t -> float -> float -> float
(** [uniform r lo hi] draws uniformly in [\[lo, hi)]. Requires [lo <= hi]. *)

val int : t -> int -> int
(** [int r n] draws uniformly in [\[0, n)]. [n] must be > 0. *)

val int_range : t -> int -> int -> int
(** [int_range r lo hi] draws uniformly in [\[lo, hi\]] (inclusive).
    Requires [lo <= hi]. *)

val bool : t -> float -> bool
(** [bool r p] is true with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
