(** Unit constants and conversions shared across the model.

    Conventions used throughout the repository:
    - data sizes are in {b bytes} ([float]),
    - compute amounts are in {b flop} ([float]),
    - rates are in {b bytes/s} and {b flop/s},
    - times are in {b seconds}. *)

val mega : float
(** 2{^20}, binary mega as used by the paper's "4M–121M elements". *)

val giga : float
(** 10{^9}, decimal giga for GFlop/s and Gb/s network rates. *)

val gibi : float
(** 2{^30}. *)

val bytes_per_element : float
(** Double-precision element size: 8 bytes. *)

val gflops : float -> float
(** [gflops x] is [x] GFlop/s in flop/s. *)

val gbit_per_s : float -> float
(** [gbit_per_s x] is [x] Gb/s in bytes/s. *)

val microseconds : float -> float
(** [microseconds x] is [x] µs in seconds. *)

val pp_time : Format.formatter -> float -> unit
(** Human-readable duration (µs/ms/s). *)

val pp_bytes : Format.formatter -> float -> unit
(** Human-readable size (B/KiB/MiB/GiB). *)
