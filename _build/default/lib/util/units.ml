let mega = 1048576.
let giga = 1e9
let gibi = 1073741824.
let bytes_per_element = 8.

let gflops x = x *. giga
let gbit_per_s x = x *. giga /. 8.
let microseconds x = x *. 1e-6

let pp_time ppf t =
  if t < 1e-3 then Format.fprintf ppf "%.2fus" (t *. 1e6)
  else if t < 1. then Format.fprintf ppf "%.2fms" (t *. 1e3)
  else Format.fprintf ppf "%.3fs" t

let pp_bytes ppf b =
  if b < 1024. then Format.fprintf ppf "%.0fB" b
  else if b < 1048576. then Format.fprintf ppf "%.1fKiB" (b /. 1024.)
  else if b < gibi then Format.fprintf ppf "%.1fMiB" (b /. 1048576.)
  else Format.fprintf ppf "%.2fGiB" (b /. gibi)
