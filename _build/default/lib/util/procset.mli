(** Sets of processor indices.

    A processor set is the unit of allocation in mixed-parallel scheduling: a
    moldable task executes on exactly one set. Represented as a sorted array
    of distinct non-negative processor indices, which makes the operations the
    schedulers need — cardinality, equality, rank lookup for 1-D block
    distributions, subset tests — cheap and allocation-light. Values are
    immutable by convention: no function in this interface mutates its
    argument. *)

type t

val empty : t

val of_list : int list -> t
(** [of_list l] builds a set from [l] (sorted, deduplicated). *)

val of_array : int array -> t
(** [of_array a] builds a set from [a] (sorted, deduplicated; [a] is not
    modified). Raises [Invalid_argument] on negative indices. *)

val of_sorted_array_unchecked : int array -> t
(** [of_sorted_array_unchecked a] adopts [a], which must already be strictly
    increasing. O(1); the caller must not mutate [a] afterwards. *)

val range : int -> int -> t
(** [range lo n] is the set [{lo, lo+1, ..., lo+n-1}]. [n] may be 0. *)

val size : t -> int
val is_empty : t -> bool
val mem : int -> t -> bool
val nth : t -> int -> int
(** [nth s r] is the processor holding block rank [r]; raises
    [Invalid_argument] if [r] is out of bounds. *)

val rank : int -> t -> int option
(** [rank p s] is the block rank of processor [p] in [s], if present. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val subset : t -> t -> bool
val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (int -> unit) -> t -> unit
val to_list : t -> int list
val to_array : t -> int array
(** Fresh copy; safe to mutate. *)

val first_n : t -> int -> t
(** [first_n s n] keeps the [n] smallest members. Requires [n <= size s]. *)

val pp : Format.formatter -> t -> unit
