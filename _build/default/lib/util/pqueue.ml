type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }

let size q = q.len
let is_empty q = q.len = 0

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow q e =
  let cap = Array.length q.data in
  if q.len = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let nd = Array.make ncap e in
    Array.blit q.data 0 nd 0 q.len;
    q.data <- nd
  end

let push q prio value =
  let e = { prio; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  grow q e;
  (* Sift up. *)
  let i = ref q.len in
  q.len <- q.len + 1;
  let d = q.data in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less e d.(parent) then begin
      d.(!i) <- d.(parent);
      i := parent
    end
    else continue := false
  done;
  d.(!i) <- e

let peek q = if q.len = 0 then None else Some (q.data.(0).prio, q.data.(0).value)

let pop q =
  if q.len = 0 then None
  else begin
    let top = q.data.(0) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      let e = q.data.(q.len) in
      (* Sift down. *)
      let d = q.data in
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        let cur = ref e in
        if l < q.len && less d.(l) !cur then (smallest := l; cur := d.(l));
        if r < q.len && less d.(r) !cur then smallest := r;
        if !smallest = !i then continue := false
        else begin
          d.(!i) <- d.(!smallest);
          i := !smallest
        end
      done;
      d.(!i) <- e
    end;
    Some (top.prio, top.value)
  end

let clear q =
  q.len <- 0;
  q.next_seq <- 0
