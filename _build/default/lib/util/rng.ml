type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy r = { state = r.state }

(* SplitMix64 output function: one additive step then two xor-shift-multiply
   mixing rounds (constants from the reference implementation). *)
let int64 r =
  r.state <- Int64.add r.state golden_gamma;
  let z = r.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split r = { state = int64 r }

(* 53 random bits mapped to [0,1). *)
let unit_float r =
  let bits = Int64.shift_right_logical (int64 r) 11 in
  Int64.to_float bits *. 0x1p-53

let float r bound =
  assert (bound > 0.);
  unit_float r *. bound

let uniform r lo hi =
  assert (lo <= hi);
  lo +. (unit_float r *. (hi -. lo))

let int r n =
  assert (n > 0);
  (* Rejection-free modulo is fine here: n is tiny w.r.t. 2^62 so the bias is
     immeasurable for simulation purposes. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 r) 2) in
  v mod n

let int_range r lo hi =
  assert (lo <= hi);
  lo + int r (hi - lo + 1)

let bool r p = unit_float r < p

let shuffle r a =
  for i = Array.length a - 1 downto 1 do
    let j = int r (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
