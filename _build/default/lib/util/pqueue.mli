(** Mutable binary min-heap priority queue.

    The discrete-event simulation engine and the list schedulers both need a
    cheap "extract the earliest event / highest-priority task" operation.
    Priorities are [float]s; ties are broken by insertion order (FIFO), which
    keeps the simulator deterministic when several events share a date. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push q prio v] inserts [v] with priority [prio]. O(log n). *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-priority element (FIFO among equal
    priorities). O(log n). *)

val peek : 'a t -> (float * 'a) option
(** Returns the minimum without removing it. O(1). *)

val clear : 'a t -> unit
