lib/util/pqueue.mli:
