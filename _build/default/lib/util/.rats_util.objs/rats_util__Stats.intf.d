lib/util/stats.mli:
