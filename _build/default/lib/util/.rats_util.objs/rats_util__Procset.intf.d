lib/util/procset.mli: Format
