lib/util/rng.mli:
