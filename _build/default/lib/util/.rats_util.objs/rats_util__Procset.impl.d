lib/util/procset.ml: Array Format List
