module Procset = Rats_util.Procset
module Dag = Rats_dag.Dag
module Redistribution = Rats_redist.Redistribution

type t = {
  problem : Problem.t;
  alloc : int array;
  avail : float array;
  entries : Schedule.entry option array;
  mutable next_seq : int;
}

let create problem ~alloc =
  if Array.length alloc <> Problem.n_tasks problem then
    invalid_arg "Mapping.create: allocation size mismatch";
  Array.iteri
    (fun i np ->
      if np < 1 || np > Problem.n_procs problem then
        invalid_arg
          (Printf.sprintf "Mapping.create: allocation %d of task %d invalid" np i))
    alloc;
  {
    problem;
    alloc = Array.copy alloc;
    avail = Array.make (Problem.n_procs problem) 0.;
    entries = Array.make (Problem.n_tasks problem) None;
    next_seq = 0;
  }

let problem t = t.problem
let alloc t i = t.alloc.(i)

let set_alloc t i np =
  if np < 1 || np > Problem.n_procs t.problem then
    invalid_arg "Mapping.set_alloc: invalid count";
  t.alloc.(i) <- np

let is_mapped t i = t.entries.(i) <> None

let entry t i =
  match t.entries.(i) with
  | Some e -> e
  | None -> invalid_arg "Mapping.entry: task not mapped"

(* [np] processors minimizing (availability, index), drawn from [pool]
   minus [exclude]. *)
let earliest_from t ~pool ~exclude np =
  let cands =
    List.filter (fun q -> not (Procset.mem q exclude)) (Procset.to_list pool)
  in
  let sorted =
    List.sort
      (fun a b -> compare (t.avail.(a), a) (t.avail.(b), b))
      cands
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: tl -> x :: take (k - 1) tl
  in
  Procset.of_list (take np sorted)

let all_procs t = Rats_platform.Cluster.all_procs (Problem.cluster t.problem)

let earliest_set t np =
  if np < 1 || np > Problem.n_procs t.problem then
    invalid_arg "Mapping.earliest_set: invalid count";
  earliest_from t ~pool:(all_procs t) ~exclude:Procset.empty np

let from_pred_set t ~pred_procs np =
  if np < 1 || np > Problem.n_procs t.problem then
    invalid_arg "Mapping.from_pred_set: invalid count";
  let sz = Procset.size pred_procs in
  if sz = np then pred_procs
  else if sz > np then earliest_from t ~pool:pred_procs ~exclude:Procset.empty np
  else
    Procset.union pred_procs
      (earliest_from t ~pool:(all_procs t) ~exclude:pred_procs (np - sz))

let estimate t i set =
  let dag = Problem.dag t.problem in
  let cluster = Problem.cluster t.problem in
  let data_ready =
    List.fold_left
      (fun acc (pred, bytes) ->
        match t.entries.(pred) with
        | None -> invalid_arg "Mapping.estimate: predecessor not mapped"
        | Some pe ->
            let redist =
              Redistribution.estimate_between cluster ~sender:pe.Schedule.procs
                ~receiver:set ~bytes
            in
            Float.max acc (pe.Schedule.est_finish +. redist))
      0. (Dag.preds dag i)
  in
  let proc_ready = Procset.fold (fun q acc -> Float.max acc t.avail.(q)) set 0. in
  let start = Float.max data_ready proc_ready in
  (start, start +. Problem.task_time t.problem i ~procs:(Procset.size set))

let baseline_choice t i = earliest_set t t.alloc.(i)

let commit t i set =
  if is_mapped t i then invalid_arg "Mapping.commit: task already mapped";
  let est_start, est_finish = estimate t i set in
  let e =
    {
      Schedule.task = i;
      procs = set;
      est_start;
      est_finish;
      seq = t.next_seq;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.entries.(i) <- Some e;
  t.alloc.(i) <- Procset.size set;
  Procset.iter (fun q -> t.avail.(q) <- Float.max t.avail.(q) est_finish) set;
  e

let to_schedule t =
  let entries =
    Array.mapi
      (fun i -> function
        | Some e -> e
        | None ->
            invalid_arg
              (Printf.sprintf "Mapping.to_schedule: task %d unmapped" i))
      t.entries
  in
  Schedule.make t.problem entries
