(** A scheduling problem: one mixed-parallel application on one cluster.

    Bundles the DAG and the platform and provides the cost helpers every
    scheduling phase needs: Amdahl execution times on the cluster's
    processors, task work, and the allocation-independent edge cost estimate
    used when computing critical paths and bottom-level priorities (one NIC
    serializing the whole transfer — the conventional pre-mapping
    approximation, since actual redistribution costs depend on the processor
    sets chosen later). *)

type t

val make : dag:Rats_dag.Dag.t -> cluster:Rats_platform.Cluster.t -> t
(** Raises [Invalid_argument] if the DAG does not have a single entry and a
    single exit task (apply {!Rats_dag.Dag.ensure_single_entry_exit} first). *)

val dag : t -> Rats_dag.Dag.t
val cluster : t -> Rats_platform.Cluster.t

val n_tasks : t -> int
val n_procs : t -> int

val entry : t -> int
val exit_task : t -> int

val task_time : t -> int -> procs:int -> float
(** [task_time p i ~procs] = Amdahl time of task [i] on [procs] nodes. *)

val task_work : t -> int -> procs:int -> float

val edge_cost_estimate : t -> float -> float
(** [edge_cost_estimate p bytes]: latency + transfer time of [bytes] through
    one node link. *)

val is_virtual : t -> int -> bool
