let data_parallel_alloc problem =
  let p = Problem.n_procs problem in
  Array.init (Problem.n_tasks problem) (fun i ->
      if Problem.is_virtual problem i then 1 else p)

let task_parallel_alloc problem = Array.make (Problem.n_tasks problem) 1

let data_parallel problem =
  Rats.schedule ~alloc:(data_parallel_alloc problem) problem Rats.Baseline

let task_parallel problem =
  Rats.schedule ~alloc:(task_parallel_alloc problem) problem Rats.Baseline
