module Dag = Rats_dag.Dag

let level_caps problem =
  let dag = Problem.dag problem in
  let p = Problem.n_procs problem in
  let depths = Dag.depths dag in
  let groups = Dag.level_groups dag in
  let widths = Array.map List.length groups in
  Array.map (fun d -> max 1 (p / widths.(d))) depths

let allocate problem =
  let caps = level_caps problem in
  Cpa.allocate_capped problem ~cap:(fun i -> caps.(i))
