module Procset = Rats_util.Procset
module Dag = Rats_dag.Dag

type entry = {
  task : int;
  procs : Procset.t;
  est_start : float;
  est_finish : float;
  seq : int;
}

type t = { problem : Problem.t; entries : entry array }

let make problem entries =
  let n = Problem.n_tasks problem in
  let p = Problem.n_procs problem in
  if Array.length entries <> n then
    invalid_arg "Schedule.make: entry count differs from task count";
  Array.iteri
    (fun i e ->
      if e.task <> i then invalid_arg "Schedule.make: entry/task id mismatch";
      let np = Procset.size e.procs in
      if np = 0 then invalid_arg "Schedule.make: empty processor set";
      Procset.iter
        (fun q -> if q < 0 || q >= p then invalid_arg "Schedule.make: bad processor")
        e.procs;
      if e.est_start < 0. then invalid_arg "Schedule.make: negative start";
      let duration = Problem.task_time problem i ~procs:np in
      let expected = e.est_start +. duration in
      if Float.abs (e.est_finish -. expected) > 1e-6 *. Float.max 1. expected then
        invalid_arg "Schedule.make: finish inconsistent with Amdahl duration")
    entries;
  let dag = Problem.dag problem in
  Array.iteri
    (fun i e ->
      List.iter
        (fun (succ, _) ->
          if entries.(succ).est_start +. 1e-9 < e.est_finish then
            invalid_arg "Schedule.make: precedence violated in estimates")
        (Dag.succs dag i))
    entries;
  { problem; entries }

let problem s = s.problem
let entry s i = s.entries.(i)
let entries s = Array.copy s.entries
let n_tasks s = Array.length s.entries

let makespan_estimated s =
  Array.fold_left (fun acc e -> Float.max acc e.est_finish) 0. s.entries

let total_work s =
  let acc = ref 0. in
  Array.iter
    (fun e ->
      if not (Problem.is_virtual s.problem e.task) then
        acc :=
          !acc
          +. Problem.task_work s.problem e.task ~procs:(Procset.size e.procs))
    s.entries;
  !acc

let allocation s = Array.map (fun e -> Procset.size e.procs) s.entries

let pp ppf s =
  let by_seq = entries s in
  Array.sort (fun a b -> compare a.seq b.seq) by_seq;
  Array.iter
    (fun e ->
      Format.fprintf ppf "@[#%02d task %3d on %a: [%g, %g]@]@."
        e.seq e.task Procset.pp e.procs e.est_start e.est_finish)
    by_seq
