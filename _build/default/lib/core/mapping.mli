(** Mapping-step machinery shared by the HCPA baseline and RATS.

    Holds the mutable mapping state — per-processor availability, the
    entries committed so far, the (possibly RATS-adjusted) allocation — and
    the finish-time estimation primitives. Start-time estimates combine
    processor availability with data-arrival times, pricing each incoming
    redistribution with the analytic {!Rats_redist.Redistribution.estimate}
    (zero when predecessor and task share the same processor set). Network
    contention is deliberately absent here, exactly like the estimates the
    paper's mapping procedures rely on (§IV-D discusses the consequences). *)

type t

val create : Problem.t -> alloc:int array -> t
(** [alloc] is copied; RATS mutates its copy through {!set_alloc}. *)

val problem : t -> Problem.t
val alloc : t -> int -> int
val set_alloc : t -> int -> int -> unit
val is_mapped : t -> int -> bool
val entry : t -> int -> Schedule.entry
(** Raises [Invalid_argument] if the task is not mapped yet. *)

val earliest_set : t -> int -> Rats_util.Procset.t
(** The [np] processors with the earliest availability (ties by index). *)

val from_pred_set : t -> pred_procs:Rats_util.Procset.t -> int -> Rats_util.Procset.t
(** A set of size [np] anchored on a predecessor's processors: its [np]
    earliest-available members when it is large enough, otherwise all of it
    completed with the earliest-available outside processors. *)

val estimate : t -> int -> Rats_util.Procset.t -> float * float
(** [(start, finish)] of a task on a candidate set: all predecessors must be
    mapped; start = max(availability of the set, data arrival from each
    predecessor = pred finish + redistribution estimate). *)

val baseline_choice : t -> int -> Rats_util.Procset.t
(** The decoupled mapping step of CPA/HCPA: the [alloc t]-many
    earliest-available processors, chosen {e without looking at where the
    predecessors ran} — this blindness to processor-set identity is
    precisely what makes two-step schedules pay avoidable redistributions
    (paper §I) and what the RATS strategies repair. *)

val commit : t -> int -> Rats_util.Procset.t -> Schedule.entry
(** Maps the task on the set: records the entry, marks the processors busy
    until the estimated finish, updates the allocation to the set's size. *)

val to_schedule : t -> Schedule.t
(** Raises [Invalid_argument] when some task is still unmapped. *)
