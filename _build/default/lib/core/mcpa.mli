(** MCPA allocation (Bansal, Kumar & Singh, Parallel Computing 2006;
    paper §II-C).

    The Modified CPA limits processor allocations so that {e all the tasks of
    a DAG level can execute concurrently}: a task in a level of width [w] may
    use at most [⌊P / w⌋] processors (never below 1). Within those caps the
    procedure is CPA. The paper notes this is only appropriate for very
    regular DAGs — on irregular graphs the widest level throttles everything;
    it is provided as the third comparison point of the related work. *)

val level_caps : Problem.t -> int array
(** Per-task allocation bound [max(1, ⌊P / width(level(task))⌋)]. Virtual
    entry/exit tasks (levels of width 1) get the full machine but never grow
    anyway. *)

val allocate : Problem.t -> int array
