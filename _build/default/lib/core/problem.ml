module Dag = Rats_dag.Dag
module Task = Rats_dag.Task
module Cluster = Rats_platform.Cluster
module Link = Rats_platform.Link

type t = {
  dag : Dag.t;
  cluster : Cluster.t;
  entry : int;
  exit_task : int;
}

let make ~dag ~cluster =
  match (Dag.entries dag, Dag.exits dag) with
  | [ entry ], [ exit_task ] -> { dag; cluster; entry; exit_task }
  | _ ->
      invalid_arg
        "Problem.make: DAG must have a single entry and exit \
         (use Dag.ensure_single_entry_exit)"

let dag p = p.dag
let cluster p = p.cluster
let n_tasks p = Dag.n_tasks p.dag
let n_procs p = Cluster.n_procs p.cluster
let entry p = p.entry
let exit_task p = p.exit_task

let task_time p i ~procs =
  Task.time (Dag.task p.dag i) ~speed:p.cluster.Cluster.speed ~procs

let task_work p i ~procs =
  Task.work (Dag.task p.dag i) ~speed:p.cluster.Cluster.speed ~procs

let edge_cost_estimate p bytes =
  if bytes <= 0. then 0.
  else begin
    let link = p.cluster.Cluster.node_link in
    link.Link.latency +. (bytes /. link.Link.bandwidth)
  end

let is_virtual p i = Task.is_virtual (Dag.task p.dag i)
