(** RATS — Redistribution Aware Two-Step scheduling (paper §III, Alg. 1).

    The mapping step processes ready tasks in rounds: all currently ready
    tasks are sorted (primary key: decreasing bottom level; secondary key:
    strategy-specific, stable) and mapped in that order; tasks becoming ready
    during a round wait for the next one. For each popped task the strategy
    decides whether to {e replace its allocation by the exact processor set
    of one of its predecessors} — eliminating that redistribution — or to
    fall back to the decoupled {!Mapping.baseline_choice}:

    - {b delta} bounds how far the processor count may move:
      stretching is allowed when [δ⁺ = min (Np(pred) − Np(t))] over larger
      predecessors is at most [⌊maxdelta·Np(t)⌋]; packing when
      [δ⁻ = max (Np(pred) − Np(t))] over smaller predecessors is at least
      [−⌊−mindelta·Np(t)⌋]. When both are possible the smaller change wins
      (stretch on ties). Ready tasks of equal priority are ordered by
      increasing [δ(t) = min(δ⁺, −δ⁻)] — least-modification first.
    - {b time-cost} stretches onto the predecessor maximizing the work ratio
      [ρ = (T(t,Np(t))·Np(t)) / (T(t,Np(pred))·Np(pred))] provided
      [ρ ≥ minrho], and (when [packing] is on) packs onto a smaller
      predecessor only if the estimated finish time does not exceed the
      baseline mapping's. Secondary sort: decreasing
      [gain(t) = max (T(t,Np(t)) − T(t,Np(pred)))].

    Virtual entry/exit tasks and zero-byte edges never participate in the
    strategies (there is no redistribution to save).

    Note on Alg. 1 lines 11–12 ("recompute … resort if necessary"): the sort
    keys δ and gain depend only on allocations already fixed, so they never
    change within a round; the finish-time estimates that {e do} change when
    a sibling claims a predecessor's processors are recomputed here at pop
    time, which subsumes the recomputation the pseudo-code describes. *)

type delta_params = { mindelta : float; maxdelta : float }
(** [mindelta ∈ \[−1, 0\]] (fraction of processors removable), [maxdelta ≥ 0]
    (fraction addable). The paper's naive setting is [(−0.5, 0.5)]. *)

type timecost_params = { minrho : float; packing : bool }
(** [minrho ∈ (0, 1]]. The paper's naive setting is [(0.5, true)]. *)

type strategy =
  | Baseline  (** Pure two-step HCPA mapping — the comparison baseline. *)
  | Delta of delta_params
  | Timecost of timecost_params

val naive_delta : delta_params
val naive_timecost : timecost_params

val strategy_name : strategy -> string

val schedule : ?alloc:int array -> Problem.t -> strategy -> Schedule.t
(** [schedule p strategy] runs the two-step algorithm: HCPA allocation
    (unless [alloc] is supplied) followed by the strategy's mapping. *)

type stats = { stretched : int; packed : int; unchanged : int }
(** Mapping decisions taken: tasks mapped onto a larger predecessor set, a
    smaller one, or left on their first-step allocation (virtual tasks and
    baseline mappings count as unchanged). *)

val schedule_with_stats :
  ?alloc:int array -> Problem.t -> strategy -> Schedule.t * stats
(** Like {!schedule}, also reporting what the strategy actually did — the
    instrumentation behind the redistribution-savings analyses. *)
