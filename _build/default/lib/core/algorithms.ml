type outcome = {
  schedule : Schedule.t;
  simulated : Evaluate.result;
}

let run ?alloc problem strategy =
  let schedule = Rats.schedule ?alloc problem strategy in
  { schedule; simulated = Evaluate.run schedule }

let makespan o = o.simulated.Evaluate.makespan
let work o = Schedule.total_work o.schedule
