(** CPA allocation — Critical Path and Area-based scheduling, step one
    (Radulescu & van Gemund, ICPP 2001; paper §II-C).

    Start with one processor per task. While the critical-path length [C∞]
    exceeds the average area [W = Σωᵢ / P], give one more processor to the
    critical-path task that benefits the most from the increase. [C∞] and
    [W] are both lower bounds on the makespan, so [C∞ = W] is the sweet spot
    where trading task parallelism for data parallelism stops paying.

    Critical paths are priced with Amdahl task times under the current
    allocation plus the {!Problem.edge_cost_estimate} of each edge. Virtual
    entry/exit tasks always keep one processor. *)

val allocate : Problem.t -> int array
(** [allocate p] returns the per-task processor counts. *)

val allocate_with : Problem.t -> max_per_task:int -> int array
(** Generalized procedure additionally capping every task's allocation at
    [max_per_task] — the hook {!Hcpa} uses to keep the large-platform bias
    of CPA in check. [max_per_task] must be ≥ 1; allocations are always also
    capped by the physical processor count. The loop stops when [C∞ ≤ W] or
    no critical-path task can still grow. *)

val allocate_capped : Problem.t -> cap:(int -> int) -> int array
(** Fully general variant with a per-task cap — {!Mcpa} caps by DAG-level
    width, {!Hcpa} uniformly. [cap i] must be ≥ 1 for every task. *)

val average_area : Problem.t -> alloc:int array -> area_procs:int -> float
(** [Σ task_work / area_procs] under [alloc] — exposed for tests and
    diagnostics. *)

val critical_path_length : Problem.t -> alloc:int array -> float
(** [C∞] under [alloc], with edge cost estimates. *)

val bottom_levels : Problem.t -> alloc:int array -> float array
(** Bottom level of every task under [alloc] (task times + edge cost
    estimates) — the primary mapping priority of CPA, HCPA and RATS. *)
