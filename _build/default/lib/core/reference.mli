(** Pure-parallelism reference allocations.

    Mixed parallelism is motivated (Chakrabarti, Demmel & Yelick, SPAA'95 —
    the paper's [1]) by beating both degenerate strategies:

    - {e pure data parallelism}: run tasks one after the other, each on the
      whole machine — scalability is then limited by Amdahl's [α] and the
      machine size;
    - {e pure task parallelism}: give every task one processor — no moldable
      speedup at all, parallelism limited by the DAG's width.

    These allocations, mapped with the standard list-scheduling step, bound
    the mixed-parallel schedulers from both sides and power the
    mixed-vs-pure ablation bench. *)

val data_parallel_alloc : Problem.t -> int array
(** Every non-virtual task gets all [P] processors. *)

val task_parallel_alloc : Problem.t -> int array
(** Every task gets exactly one processor. *)

val data_parallel : Problem.t -> Schedule.t
(** Pure data parallelism, mapped with the baseline list scheduler (all
    tasks share the full-machine processor set, so no redistribution is
    ever paid). *)

val task_parallel : Problem.t -> Schedule.t
(** Pure task parallelism under the baseline list scheduler. *)
