(** HCPA allocation (N'takpé, Suter & Casanova, ISPDC 2007; paper §II-C).

    CPA's allocation loop has a large-platform bias: with many processors the
    average area [W = Σω/P] stays small, so the loop keeps inflating
    critical-path allocations far beyond what the application's task
    parallelism can exploit, preventing independent tasks from running
    concurrently. HCPA removes that bias; we realize it with N'takpé &
    Suter's {e self-constrained} rule — every task's allocation is capped at
    its fair share of the platform,

    [cap = ⌈P / A⌉]   where   [A = W₁ / D₁]

    is the application's average parallelism (total sequential work over the
    computation-only critical-path depth under one-processor allocations).
    Within that cap the procedure is exactly CPA. On the paper's homogeneous
    clusters this reproduces HCPA's operative effect; the reference-cluster
    translation HCPA adds for heterogeneous platforms is not needed here
    (DESIGN.md §4).

    The paper uses HCPA's allocation as the first step of both the baseline
    and RATS. *)

val average_parallelism : Problem.t -> float
(** [A = W₁ / D₁] ≥ 1; 1 for a chain. *)

val max_per_task : Problem.t -> int
(** [⌈P / A⌉], at least 1 — the per-task allocation cap. *)

val allocate : Problem.t -> int array
