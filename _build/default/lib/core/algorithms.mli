(** One-call pipelines: allocation → mapping → simulated evaluation. *)

type outcome = {
  schedule : Schedule.t;
  simulated : Evaluate.result;
}

val run : ?alloc:int array -> Problem.t -> Rats.strategy -> outcome
(** HCPA allocation (unless given), the strategy's mapping, then simulation.
    Passing the same [alloc] to several strategies makes comparisons share
    the first step, as in the paper. *)

val makespan : outcome -> float
(** Simulated makespan. *)

val work : outcome -> float
(** Resource consumption of the schedule. *)
