(** Schedules: the output of the mapping step.

    A schedule assigns every task a concrete processor set and carries the
    mapper's start/finish estimates (computed with the analytic
    redistribution estimator, i.e. without network contention). Ground-truth
    times come from {!Evaluate}, which replays the schedule in the
    discrete-event engine. *)

type entry = {
  task : int;
  procs : Rats_util.Procset.t;
  est_start : float;
  est_finish : float;
  seq : int;  (** Position in the mapping order (deterministic tie-break). *)
}

type t

val make : Problem.t -> entry array -> t
(** [entry array] indexed by task id. Validates: every task mapped on a
    non-empty set within the cluster, estimates non-negative and
    [est_finish = est_start + T(t, |procs|)] up to rounding, and
    [est_start t ≥ est_finish pred] for every DAG edge. Raises
    [Invalid_argument] on violation. *)

val problem : t -> Problem.t
val entry : t -> int -> entry
val entries : t -> entry array
(** Fresh copy. *)

val n_tasks : t -> int

val makespan_estimated : t -> float
(** Mapper's estimate: max finish over tasks (= exit task's finish). *)

val total_work : t -> float
(** Σ |procs(t)| · T(t, |procs(t)|) over non-virtual tasks — the paper's
    resource-consumption metric (Figures 3 and 7). *)

val allocation : t -> int array
(** Per-task processor counts actually used. *)

val pp : Format.formatter -> t -> unit
(** Gantt-style text listing, mapping order. *)
