lib/core/mapping.ml: Array Float List Printf Problem Rats_dag Rats_platform Rats_redist Rats_util Schedule
