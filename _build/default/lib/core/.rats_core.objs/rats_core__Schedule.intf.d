lib/core/schedule.mli: Format Problem Rats_util
