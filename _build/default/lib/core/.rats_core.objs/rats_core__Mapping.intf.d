lib/core/mapping.mli: Problem Rats_util Schedule
