lib/core/cpa.ml: Array List Problem Rats_dag
