lib/core/evaluate.ml: Array Float List Printf Problem Rats_dag Rats_redist Rats_sim Rats_util Schedule
