lib/core/schedule.ml: Array Float Format List Problem Rats_dag Rats_util
