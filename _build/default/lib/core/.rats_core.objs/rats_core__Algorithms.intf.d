lib/core/algorithms.mli: Evaluate Problem Rats Schedule
