lib/core/problem.mli: Rats_dag Rats_platform
