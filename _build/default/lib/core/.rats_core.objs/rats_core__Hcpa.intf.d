lib/core/hcpa.mli: Problem
