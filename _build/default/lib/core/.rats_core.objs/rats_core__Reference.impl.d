lib/core/reference.ml: Array Problem Rats
