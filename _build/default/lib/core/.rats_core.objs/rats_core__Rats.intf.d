lib/core/rats.mli: Problem Schedule
