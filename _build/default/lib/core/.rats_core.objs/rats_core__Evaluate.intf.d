lib/core/evaluate.mli: Schedule
