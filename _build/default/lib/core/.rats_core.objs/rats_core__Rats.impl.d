lib/core/rats.ml: Array Cpa Float Hcpa List Mapping Option Problem Rats_dag Rats_util Schedule
