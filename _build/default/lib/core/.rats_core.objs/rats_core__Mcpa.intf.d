lib/core/mcpa.mli: Problem
