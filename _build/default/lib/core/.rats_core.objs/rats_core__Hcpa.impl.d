lib/core/hcpa.ml: Array Cpa Float Problem Rats_dag
