lib/core/mcpa.ml: Array Cpa List Problem Rats_dag
