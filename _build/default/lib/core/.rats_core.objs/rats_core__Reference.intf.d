lib/core/reference.mli: Problem Schedule
