lib/core/cpa.mli: Problem
