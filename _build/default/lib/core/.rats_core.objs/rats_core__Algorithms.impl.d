lib/core/algorithms.ml: Evaluate Rats Schedule
