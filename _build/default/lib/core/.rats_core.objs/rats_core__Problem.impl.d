lib/core/problem.ml: Rats_dag Rats_platform
