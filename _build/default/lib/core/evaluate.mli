(** Ground-truth schedule evaluation by discrete-event simulation.

    Replays a schedule in the {!Rats_sim.Engine}: tasks execute on their
    assigned processor sets, and every redistribution becomes the
    point-to-point flows of its {!Rats_redist.Redistribution.plan}, released
    when the producing task finishes and contending for NIC and uplink
    bandwidth under Max-Min fairness. The replay is work-conserving, like
    the mixed-parallel runtimes the paper targets (TGrid): a task starts as
    soon as {e all} its input redistributions have arrived and {e all} its
    assigned processors are free (acquired atomically — no partial holds, no
    deadlock); a task whose data is late never blocks a later-ready task
    assigned to the same processors. Each processor offers itself to its
    assigned tasks in the mapper's estimated order.

    This is where the effects the mapper's analytic estimates ignore —
    network contention between concurrent redistributions — show up, exactly
    as in the paper's SimGrid experiments (§IV). *)

type span = {
  src_task : int;
  dst_task : int;
  span_start : float;  (** Producing task's finish date. *)
  span_finish : float;  (** Arrival of the last byte. *)
  span_bytes : float;  (** Remote bytes of this redistribution. *)
}
(** One paid (partially remote) redistribution, as observed in simulation. *)

type result = {
  makespan : float;  (** Simulated completion time of the exit task. *)
  starts : float array;  (** Per-task simulated start dates. *)
  finishes : float array;
  remote_bytes : float;  (** Bytes that crossed the network. *)
  local_bytes : float;  (** Bytes kept on-processor by redistributions. *)
  redistributions : int;  (** Data-carrying edges whose plan had remote flows. *)
  avoided : int;  (** Data-carrying edges fully served locally. *)
  spans : span list;  (** Paid redistributions in chronological order. *)
}

val run :
  ?work_conserving:bool -> ?optimize_placement:bool -> Schedule.t -> result
(** Both flags default to true. [work_conserving = false] makes each
    processor serve its assigned tasks strictly in the mapper's order — a
    late input then blocks everything queued behind it (the replay
    discipline ablation). [optimize_placement = false] makes redistribution
    plans use the natural ascending receiver placement instead of the
    self-communication-maximizing one (the placement ablation). *)
