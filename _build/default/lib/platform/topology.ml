type t =
  | Flat of int
  | Cabinets of { cabinets : int; per_cabinet : int }

let n_nodes = function
  | Flat n -> n
  | Cabinets { cabinets; per_cabinet } -> cabinets * per_cabinet

let check_node t i =
  if i < 0 || i >= n_nodes t then invalid_arg "Topology: node out of range"

let cabinet_of t i =
  check_node t i;
  match t with
  | Flat _ -> 0
  | Cabinets { per_cabinet; _ } -> i / per_cabinet

let n_uplinks = function Flat _ -> 0 | Cabinets { cabinets; _ } -> cabinets

let same_cabinet t i j = cabinet_of t i = cabinet_of t j
