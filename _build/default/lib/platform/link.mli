(** Network link: latency (s) + bandwidth (bytes/s).

    In the bounded multi-port model each node owns one private link that all
    of its flows — sending and receiving — share; hierarchical clusters add
    one uplink per cabinet. *)

type t = { latency : float; bandwidth : float }

val make : latency:float -> bandwidth:float -> t
(** Raises [Invalid_argument] on negative latency or non-positive bandwidth. *)

val gigabit : t
(** The paper's cluster interconnect: 100 µs latency, 1 Gb/s bandwidth. *)

val pp : Format.formatter -> t -> unit
