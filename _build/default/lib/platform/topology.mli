(** Cluster interconnect shape (paper §II-B).

    Small clusters hang every node off a single switch ({!Flat}); larger ones
    spread nodes across cabinets, each with its own switch, connected through
    a top switch ({!Cabinets}). Switch backplanes are not contention points;
    the shared resources are the per-node private links and, in the
    hierarchical case, the per-cabinet uplinks. *)

type t =
  | Flat of int  (** [Flat n]: [n] nodes on one switch. *)
  | Cabinets of { cabinets : int; per_cabinet : int }
      (** [cabinets × per_cabinet] nodes; inter-cabinet traffic additionally
          crosses both cabinets' uplinks. *)

val n_nodes : t -> int

val cabinet_of : t -> int -> int
(** Cabinet index of a node (always 0 for {!Flat}). Raises
    [Invalid_argument] on out-of-range nodes. *)

val n_uplinks : t -> int
(** 0 for {!Flat}, [cabinets] otherwise. *)

val same_cabinet : t -> int -> int -> bool
