lib/platform/cluster.ml: Array Float Format Link Printf Rats_util Topology
