lib/platform/topology.ml:
