lib/platform/cluster.mli: Format Link Rats_util Topology
