lib/platform/link.ml: Format Rats_util
