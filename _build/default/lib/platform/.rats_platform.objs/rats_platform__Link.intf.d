lib/platform/link.mli: Format
