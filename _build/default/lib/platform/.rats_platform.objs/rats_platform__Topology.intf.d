lib/platform/topology.mli:
