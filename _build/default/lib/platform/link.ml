module Units = Rats_util.Units

type t = { latency : float; bandwidth : float }

let make ~latency ~bandwidth =
  if latency < 0. then invalid_arg "Link.make: negative latency";
  if bandwidth <= 0. then invalid_arg "Link.make: non-positive bandwidth";
  { latency; bandwidth }

let gigabit =
  make ~latency:(Units.microseconds 100.) ~bandwidth:(Units.gbit_per_s 1.)

let pp ppf l =
  Format.fprintf ppf "%a/%.2fMB/s" Units.pp_time l.latency (l.bandwidth /. 1e6)
