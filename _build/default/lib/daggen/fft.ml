module Rng = Rats_util.Rng
module Task = Rats_dag.Task
module Dag = Rats_dag.Dag

let is_power_of_two k = k > 0 && k land (k - 1) = 0

let log2_exact k =
  let rec go acc v = if v = 1 then acc else go (acc + 1) (v / 2) in
  go 0 k

let check_k k =
  if k < 2 || not (is_power_of_two k) then
    invalid_arg "Fft: k must be a power of two >= 2"

let n_computation_tasks ~k =
  check_k k;
  (2 * k) - 1 + (k * log2_exact k)

let generate rng ~k =
  check_k k;
  let logk = log2_exact k in
  let b = Dag.Builder.create () in
  let out_bytes = Array.make (n_computation_tasks ~k) 0. in
  let next_id = ref 0 in
  let add_level_tasks ~prefix ~level ~count =
    let template = Task.random rng ~id:!next_id ~name:"template" in
    Array.init count (fun j ->
        let id = !next_id in
        incr next_id;
        let task =
          Task.make ~id
            ~name:(Printf.sprintf "%s%d_%d" prefix level j)
            ~data_elements:template.Task.data_elements ~flop:template.Task.flop
            ~alpha:template.Task.alpha
        in
        Dag.Builder.add_task b task;
        out_bytes.(id) <- Task.data_bytes task;
        id)
  in
  (* Recursive-call tree: level d has 2^d tasks, leaves at d = log2 k. *)
  let tree = Array.init (logk + 1) (fun d -> add_level_tasks ~prefix:"rc" ~level:d ~count:(1 lsl d)) in
  for d = 0 to logk - 1 do
    Array.iteri
      (fun i u ->
        Dag.Builder.add_edge b ~src:u ~dst:tree.(d + 1).(2 * i) ~bytes:out_bytes.(u);
        Dag.Builder.add_edge b ~src:u ~dst:tree.(d + 1).((2 * i) + 1)
          ~bytes:out_bytes.(u))
      tree.(d)
  done;
  (* Butterfly network: level b task j <- level b-1 tasks j and j xor 2^(b-1),
     level 0 being the tree leaves. *)
  let prev = ref tree.(logk) in
  for bl = 1 to logk do
    let cur = add_level_tasks ~prefix:"bf" ~level:bl ~count:k in
    let stride = 1 lsl (bl - 1) in
    Array.iteri
      (fun j v ->
        let p1 = !prev.(j) and p2 = !prev.(j lxor stride) in
        Dag.Builder.add_edge b ~src:p1 ~dst:v ~bytes:out_bytes.(p1);
        Dag.Builder.add_edge b ~src:p2 ~dst:v ~bytes:out_bytes.(p2))
      cur;
    prev := cur
  done;
  Dag.ensure_single_entry_exit (Dag.Builder.build b)
