module Rng = Rats_util.Rng

type t = {
  width : float;
  regularity : float;
  density : float;
  jump : int;
}

let make ~width ~regularity ~density ?(jump = 1) () =
  let check name v =
    if v <= 0. || v > 1. then
      invalid_arg (Printf.sprintf "Shape.make: %s outside (0,1]" name)
  in
  check "width" width;
  check "regularity" regularity;
  check "density" density;
  if jump < 1 then invalid_arg "Shape.make: jump < 1";
  { width; regularity; density; jump }

let level_sizes t rng ~n_tasks =
  if n_tasks <= 0 then invalid_arg "Shape.level_sizes: n_tasks <= 0";
  let target = Float.max 1. (float_of_int n_tasks ** t.width) in
  let rec draw remaining acc =
    if remaining = 0 then List.rev acc
    else begin
      let factor = Rng.uniform rng t.regularity (2. -. t.regularity) in
      let size = max 1 (int_of_float (Float.round (target *. factor))) in
      let size = min size remaining in
      draw (remaining - size) (size :: acc)
    end
  in
  Array.of_list (draw n_tasks [])

let pp ppf t =
  Format.fprintf ppf "w=%.1f r=%.1f d=%.1f j=%d" t.width t.regularity t.density
    t.jump
