module Rng = Rats_util.Rng
module Task = Rats_dag.Task
module Dag = Rats_dag.Dag

let n_computation_tasks = 25

(* Task ids, names and depths. Depth groups share one cost draw. *)
let names =
  [|
    (* 0-9: operand additions, depth 0 *)
    "s1"; "s2"; "s3"; "s4"; "s5"; "s6"; "s7"; "s8"; "s9"; "s10";
    (* 10-16: multiplications, depth 1 *)
    "m1"; "m2"; "m3"; "m4"; "m5"; "m6"; "m7";
    (* 17-24: result additions *)
    "u1" (* m1+m4, depth 2 *);
    "u2" (* u1-m5, depth 3 *);
    "c11" (* u2+m7, depth 4 *);
    "c12" (* m3+m5, depth 2 *);
    "c21" (* m2+m4, depth 2 *);
    "v1" (* m1-m2, depth 2 *);
    "v2" (* v1+m3, depth 3 *);
    "c22" (* v2+m6, depth 4 *);
  |]

let depths =
  [| 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 1; 1; 1; 2; 3; 4; 2; 2; 2; 3; 4 |]

(* (src, dst) dependency pairs. *)
let dependency_pairs =
  [
    (* M1 = (A11+A22)(B11+B22) <- S1, S2 ... M7 <- S9, S10 *)
    (0, 10); (1, 10);
    (2, 11);
    (3, 12);
    (4, 13);
    (5, 14);
    (6, 15); (7, 15);
    (8, 16); (9, 16);
    (* u1 = M1 + M4; u2 = u1 - M5; C11 = u2 + M7 *)
    (10, 17); (13, 17);
    (17, 18); (14, 18);
    (18, 19); (16, 19);
    (* C12 = M3 + M5; C21 = M2 + M4 *)
    (12, 20); (14, 20);
    (11, 21); (13, 21);
    (* v1 = M1 - M2; v2 = v1 + M3; C22 = v2 + M6 *)
    (10, 22); (11, 22);
    (22, 23); (12, 23);
    (23, 24); (15, 24);
  ]

let generate rng =
  let n_depths = 1 + Array.fold_left max 0 depths in
  let templates =
    Array.init n_depths (fun _ -> Task.random rng ~id:0 ~name:"template")
  in
  let b = Dag.Builder.create () in
  let out_bytes = Array.make n_computation_tasks 0. in
  Array.iteri
    (fun id name ->
      let tpl = templates.(depths.(id)) in
      let task =
        Task.make ~id ~name ~data_elements:tpl.Task.data_elements
          ~flop:tpl.Task.flop ~alpha:tpl.Task.alpha
      in
      Dag.Builder.add_task b task;
      out_bytes.(id) <- Task.data_bytes task)
    names;
  List.iter
    (fun (src, dst) -> Dag.Builder.add_edge b ~src ~dst ~bytes:out_bytes.(src))
    dependency_pairs;
  Dag.ensure_single_entry_exit (Dag.Builder.build b)
