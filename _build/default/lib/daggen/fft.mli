(** FFT task graphs (paper §IV-A).

    For [k] data points ([k] a power of two ≥ 2) the graph has two parts:
    the recursive-call binary tree (2k − 1 tasks: one root splitting down to
    [k] leaves) followed by the butterfly network (log₂k levels of [k] tasks
    each, level [b] task [j] depending on level [b−1] tasks [j] and
    [j XOR 2^(b−1)]), for a total of [2k − 1 + k·log₂k] computation tasks —
    5, 15, 39 and 95 for k = 2, 4, 8, 16. Tasks of a level share one random
    cost draw, so every root-to-exit path is a critical path. A virtual exit
    task joins the [k] final butterflies. *)

val n_computation_tasks : k:int -> int
(** [2k − 1 + k·log₂k]. Raises [Invalid_argument] unless [k] is a power of
    two ≥ 2. *)

val generate : Rats_util.Rng.t -> k:int -> Rats_dag.Dag.t
