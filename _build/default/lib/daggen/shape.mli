(** Shape parameters of random task graphs (paper §IV-A, Table III).

    - [width] ∈ (0, 1]: maximum parallelism. The number of tasks in a level
      is drawn around [n^width] (so width → 0 gives chains, width → 1 gives
      fork-join graphs), the law of Suter's daggen generator.
    - [regularity] ∈ (0, 1]: uniformity of level sizes. A level's size is
      the target scaled by a uniform factor in [regularity, 2 − regularity].
    - [density] ∈ (0, 1]: probability of an edge between a task and each
      task of the previous level (each task is guaranteed at least one
      parent so levels are preserved).
    - [jump] ≥ 1: irregular DAGs additionally draw edges from level [l] to
      level [l + jump]; [jump = 1] adds nothing ("no jumping over any
      level"). *)

type t = {
  width : float;
  regularity : float;
  density : float;
  jump : int;
}

val make :
  width:float -> regularity:float -> density:float -> ?jump:int -> unit -> t
(** [jump] defaults to 1. Raises [Invalid_argument] when a parameter leaves
    its documented domain. *)

val level_sizes : t -> Rats_util.Rng.t -> n_tasks:int -> int array
(** Draws the level structure: positive sizes summing to [n_tasks]. *)

val pp : Format.formatter -> t -> unit
