module Rng = Rats_util.Rng

type spec =
  | Layered of { n_tasks : int; shape : Shape.t }
  | Irregular of { n_tasks : int; shape : Shape.t }
  | Fft of { k : int }
  | Strassen

type config = { spec : spec; sample : int }

type app_kind = [ `Layered | `Irregular | `Fft | `Strassen ]

let kind c =
  match c.spec with
  | Layered _ -> `Layered
  | Irregular _ -> `Irregular
  | Fft _ -> `Fft
  | Strassen -> `Strassen

let kind_name = function
  | `Layered -> "layered"
  | `Irregular -> "irregular"
  | `Fft -> "fft"
  | `Strassen -> "strassen"

let name c =
  match c.spec with
  | Layered { n_tasks; shape } ->
      Printf.sprintf "layered-n%d-w%.1f-d%.1f-r%.1f-s%d" n_tasks
        shape.Shape.width shape.Shape.density shape.Shape.regularity c.sample
  | Irregular { n_tasks; shape } ->
      Printf.sprintf "irregular-n%d-w%.1f-d%.1f-r%.1f-j%d-s%d" n_tasks
        shape.Shape.width shape.Shape.density shape.Shape.regularity
        shape.Shape.jump c.sample
  | Fft { k } -> Printf.sprintf "fft-k%d-s%d" k c.sample
  | Strassen -> Printf.sprintf "strassen-s%d" c.sample

(* FNV-1a, 64-bit, truncated to OCaml's int. *)
let seed c =
  let s = name c in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Int64.to_int !h land max_int

let generate c =
  let rng = Rng.create (seed c) in
  match c.spec with
  | Layered { n_tasks; shape } -> Random_dag.layered rng ~n_tasks ~shape
  | Irregular { n_tasks; shape } -> Random_dag.irregular rng ~n_tasks ~shape
  | Fft { k } -> Fft.generate rng ~k
  | Strassen -> Strassen.generate rng

type scale = Smoke | Paper

let task_counts = [ 25; 50; 100 ]
let widths = [ 0.2; 0.5; 0.8 ]
let densities = [ 0.2; 0.8 ]
let regularities = [ 0.2; 0.8 ]
let jumps = [ 1; 2; 4 ]
let fft_ks = [ 2; 4; 8; 16 ]

let all scale =
  let random_samples, kernel_samples =
    match scale with Smoke -> (1, 1) | Paper -> (3, 25)
  in
  let samples n = List.init n (fun i -> i) in
  let layered =
    List.concat_map
      (fun n_tasks ->
        List.concat_map
          (fun width ->
            List.concat_map
              (fun density ->
                List.concat_map
                  (fun regularity ->
                    List.map
                      (fun sample ->
                        let shape = Shape.make ~width ~regularity ~density () in
                        { spec = Layered { n_tasks; shape }; sample })
                      (samples random_samples))
                  regularities)
              densities)
          widths)
      task_counts
  in
  let irregular =
    List.concat_map
      (fun n_tasks ->
        List.concat_map
          (fun width ->
            List.concat_map
              (fun density ->
                List.concat_map
                  (fun regularity ->
                    List.concat_map
                      (fun jump ->
                        List.map
                          (fun sample ->
                            let shape =
                              Shape.make ~width ~regularity ~density ~jump ()
                            in
                            { spec = Irregular { n_tasks; shape }; sample })
                          (samples random_samples))
                      jumps)
                  regularities)
              densities)
          widths)
      task_counts
  in
  let fft =
    List.concat_map
      (fun k ->
        List.map (fun sample -> { spec = Fft { k }; sample })
          (samples kernel_samples))
      fft_ks
  in
  let strassen =
    List.map (fun sample -> { spec = Strassen; sample }) (samples kernel_samples)
  in
  layered @ irregular @ fft @ strassen

let scale_of_env () =
  match Sys.getenv_opt "RATS_SCALE" with
  | Some s when String.lowercase_ascii s = "paper" -> Paper
  | _ -> Smoke

let n_configs scale = List.length (all scale)
