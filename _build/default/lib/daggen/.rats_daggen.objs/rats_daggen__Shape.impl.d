lib/daggen/shape.ml: Array Float Format List Printf Rats_util
