lib/daggen/fft.ml: Array Printf Rats_dag Rats_util
