lib/daggen/random_dag.ml: Array Hashtbl Printf Rats_dag Rats_util Shape
