lib/daggen/strassen.mli: Rats_dag Rats_util
