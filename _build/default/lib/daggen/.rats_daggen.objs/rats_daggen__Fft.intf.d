lib/daggen/fft.mli: Rats_dag Rats_util
