lib/daggen/suite.mli: Rats_dag Shape
