lib/daggen/strassen.ml: Array List Rats_dag Rats_util
