lib/daggen/random_dag.mli: Rats_dag Rats_util Shape
