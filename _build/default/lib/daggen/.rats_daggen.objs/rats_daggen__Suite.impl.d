lib/daggen/suite.ml: Char Fft Int64 List Printf Random_dag Rats_util Shape Strassen String Sys
