lib/daggen/shape.mli: Format Rats_util
