(** The paper's 557-configuration application suite (paper §IV-A, Table III).

    - layered random DAGs: {25, 50, 100} tasks × width {0.2, 0.5, 0.8} ×
      density {0.2, 0.8} × regularity {0.2, 0.8} × 3 samples = 108;
    - irregular random DAGs: the same × jump {1, 2, 4} = 324;
    - FFT: k ∈ {2, 4, 8, 16} (5/15/39/95 tasks) × 25 samples = 100;
    - Strassen: 25 samples.

    Every configuration owns a deterministic seed derived from its name, so
    the whole study is reproducible and adding samples never perturbs
    existing ones. *)

type spec =
  | Layered of { n_tasks : int; shape : Shape.t }
  | Irregular of { n_tasks : int; shape : Shape.t }
  | Fft of { k : int }
  | Strassen

type config = { spec : spec; sample : int }

type app_kind = [ `Layered | `Irregular | `Fft | `Strassen ]

val kind : config -> app_kind
val kind_name : app_kind -> string

val name : config -> string
(** Unique, stable identifier, e.g. ["layered-n50-w0.5-d0.2-r0.8-s1"]. *)

val seed : config -> int
(** FNV-1a hash of {!name} — stable across runs and OCaml versions. *)

val generate : config -> Rats_dag.Dag.t

type scale = Smoke | Paper
(** [Smoke]: one sample per parameter combination (149 configurations) for
    fast runs; [Paper]: the full 557. *)

val all : scale -> config list

val scale_of_env : unit -> scale
(** Reads [RATS_SCALE] ("smoke" / "paper"); defaults to [Smoke]. *)

val n_configs : scale -> int
