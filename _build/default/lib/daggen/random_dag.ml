module Rng = Rats_util.Rng
module Task = Rats_dag.Task
module Dag = Rats_dag.Dag

(* Shared machinery. [per_level_cost] clones one cost draw across each level
   (layered DAGs); otherwise every task draws its own (irregular DAGs). *)
let generate rng ~n_tasks ~(shape : Shape.t) ~per_level_cost =
  let sizes = Shape.level_sizes shape rng ~n_tasks in
  let n_levels = Array.length sizes in
  let b = Dag.Builder.create () in
  let out_bytes = Array.make n_tasks 0. in
  let next_id = ref 0 in
  let make_level l size =
    let template =
      if per_level_cost then
        Some (Task.random rng ~id:!next_id ~name:"template")
      else None
    in
    Array.init size (fun k ->
        let id = !next_id in
        incr next_id;
        let name = Printf.sprintf "t%d_%d" l k in
        let task =
          match template with
          | Some tpl ->
              Task.make ~id ~name ~data_elements:tpl.Task.data_elements
                ~flop:tpl.Task.flop ~alpha:tpl.Task.alpha
          | None -> Task.random rng ~id ~name
        in
        Dag.Builder.add_task b task;
        out_bytes.(id) <- Task.data_bytes task;
        id)
  in
  let levels = Array.mapi make_level sizes in
  let edge_set = Hashtbl.create 64 in
  let add_edge src dst =
    if not (Hashtbl.mem edge_set (src, dst)) then begin
      Hashtbl.add edge_set (src, dst) ();
      Dag.Builder.add_edge b ~src ~dst ~bytes:out_bytes.(src)
    end
  in
  let has_edge src dst = Hashtbl.mem edge_set (src, dst) in
  for l = 0 to n_levels - 2 do
    let parents = levels.(l) and children = levels.(l + 1) in
    (* Bernoulli(density) edges between consecutive levels... *)
    Array.iter
      (fun u ->
        Array.iter
          (fun v -> if Rng.bool rng shape.Shape.density then add_edge u v)
          children)
      parents;
    (* ...then connectivity guarantees: every child keeps a parent in the
       previous level (preserving its depth), every parent keeps a child. *)
    Array.iter
      (fun v ->
        if not (Array.exists (fun u -> has_edge u v) parents) then
          add_edge parents.(Rng.int rng (Array.length parents)) v)
      children;
    Array.iter
      (fun u ->
        if not (Array.exists (fun v -> has_edge u v) children) then
          add_edge u children.(Rng.int rng (Array.length children)))
      parents
  done;
  (* Jump edges of irregular DAGs: level l -> level l + jump. *)
  if shape.Shape.jump > 1 then
    for l = 0 to n_levels - 1 - shape.Shape.jump do
      let srcs = levels.(l) and dsts = levels.(l + shape.Shape.jump) in
      Array.iter
        (fun u ->
          Array.iter
            (fun v -> if Rng.bool rng shape.Shape.density then add_edge u v)
            dsts)
        srcs
    done;
  Dag.ensure_single_entry_exit (Dag.Builder.build b)

let layered rng ~n_tasks ~shape =
  if shape.Shape.jump <> 1 then
    invalid_arg "Random_dag.layered: layered DAGs have no jump edges";
  generate rng ~n_tasks ~shape ~per_level_cost:true

let irregular rng ~n_tasks ~shape =
  generate rng ~n_tasks ~shape ~per_level_cost:false
