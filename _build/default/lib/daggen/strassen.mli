(** Strassen matrix-multiplication task graph (paper §IV-A).

    One level of Strassen's algorithm as 25 computation tasks: 10 operand
    additions (S1–S10), 7 sub-multiplications (M1–M7), and 8 result
    additions combining the Mᵢ into C11, C12, C21, C22 (C11 = M1+M4−M5+M7
    and C22 = M1−M2+M3+M6 each need a 3-addition chain; C12 = M3+M5 and
    C21 = M2+M4 one each). All ten entry additions sit on maximal-depth
    paths; tasks at the same depth share one random cost draw. Virtual
    entry/exit tasks give the graph a single source and sink. *)

val n_computation_tasks : int
(** 25. *)

val generate : Rats_util.Rng.t -> Rats_dag.Dag.t
