(** Layered and irregular random task graphs (paper §IV-A).

    Both kinds share the level machinery of {!Shape}. In a {e layered} DAG
    every task of a level has the same cost (one random draw per level), so
    all transfers between two given levels share the same communication
    volume. In an {e irregular} DAG every task draws its own cost, and
    additional "jump edges" may skip levels — capturing heterogeneous,
    unpredictable scientific workflows.

    Generated DAGs always have a single (virtual) entry and exit task. *)

val layered : Rats_util.Rng.t -> n_tasks:int -> shape:Shape.t -> Rats_dag.Dag.t
(** [jump] in [shape] must be 1 (layered DAGs have no jump edges); raises
    [Invalid_argument] otherwise. *)

val irregular : Rats_util.Rng.t -> n_tasks:int -> shape:Shape.t -> Rats_dag.Dag.t
