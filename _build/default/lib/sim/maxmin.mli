(** Max-Min fair bandwidth sharing (the core of the SimGrid contention model,
    paper §IV-A).

    Given a set of links with finite capacities and a set of flows, each
    crossing a subset of the links and optionally bounded by an end-to-end
    rate cap (SimGrid's empirical TCP bandwidth [β' = min(β, Wmax/RTT)]),
    compute the unique Max-Min fair rate vector by progressive filling: all
    unfrozen flow rates grow at the same speed; when a link saturates (or a
    flow hits its cap) the flows it carries freeze; repeat.

    A flow crossing no links and having an infinite cap gets rate
    [infinity]. *)

type flow = {
  links : int array;  (** Indices of the links the flow crosses. *)
  rate_cap : float;  (** End-to-end bound; [infinity] when unconstrained. *)
}

val solve : n_links:int -> capacity:(int -> float) -> flow array -> float array
(** [solve ~n_links ~capacity flows] returns the fair rate of each flow, in
    the order of [flows]. [capacity l] must be > 0 for every link crossed by
    some flow. Raises [Invalid_argument] on out-of-range link indices or
    non-positive capacities/caps. *)

val utilization :
  n_links:int -> flow array -> rates:float array -> int -> float
(** [utilization ~n_links flows ~rates l] is the total rate crossing link
    [l] — handy for asserting feasibility in tests. *)
