lib/sim/maxmin.mli:
