lib/sim/engine.ml: Array Float List Maxmin Rats_platform Rats_util
