lib/sim/engine.mli: Rats_platform
