lib/sim/maxmin.ml: Array Float
