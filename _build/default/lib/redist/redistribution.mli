(** Redistribution plans and cost estimates.

    A redistribution moves a task's output (1-D block distributed over the
    predecessor's processor set) to the block distribution over the
    successor's set. {!plan} produces the point-to-point transfers;
    {!estimate} prices a plan under the bounded multi-port model in
    isolation — the analytic estimate list schedulers use at mapping time
    (actual times come from replaying plans in the simulation engine, where
    concurrent redistributions contend). When the two processor sets are
    equal, the plan is entirely local and costs zero (paper §II-A). *)

type transfer = { src : int; dst : int; bytes : float }
(** One point-to-point message between physical processors. [src = dst]
    means a local copy (free). *)

val plan :
  ?optimize_placement:bool ->
  sender:Rats_util.Procset.t ->
  receiver:Rats_util.Procset.t ->
  bytes:float ->
  unit ->
  transfer list
(** Transfers realizing the redistribution of [bytes] of data, using the
    self-communication-maximizing receiver placement ([optimize_placement],
    default true; disable it to measure the ablation — receiver ranks then
    follow ascending processor order). Empty when [bytes <= 0]. Raises
    [Invalid_argument] on empty processor sets. *)

val remote_bytes : transfer list -> float
(** Total bytes actually crossing the network. *)

val local_bytes : transfer list -> float
(** Total bytes kept on-processor. *)

val estimate : Rats_platform.Cluster.t -> transfer list -> float
(** Completion time of the plan executed alone on the cluster: every remote
    transfer starts at once; each link (node NICs, cabinet uplinks) serves
    its aggregate load at full bandwidth; the estimate is the maximum
    per-link drain time plus the largest one-way route latency. This is
    exact for a single bottleneck link and a lower bound otherwise — the
    right fidelity for a list scheduler's finish-time estimates. 0 for an
    all-local plan. *)

val estimate_between :
  Rats_platform.Cluster.t ->
  sender:Rats_util.Procset.t ->
  receiver:Rats_util.Procset.t ->
  bytes:float ->
  float
(** [estimate cluster (plan ~sender ~receiver ~bytes)], with the documented
    zero fast-path when the sets are equal. *)
