module Procset = Rats_util.Procset
module Cluster = Rats_platform.Cluster
module Link = Rats_platform.Link

type transfer = { src : int; dst : int; bytes : float }

let plan ?(optimize_placement = true) ~sender ~receiver ~bytes () =
  if Procset.is_empty sender || Procset.is_empty receiver then
    invalid_arg "Redistribution.plan: empty processor set";
  if bytes <= 0. then []
  else if Procset.equal sender receiver then
    (* Identical sets: by assumption the redistribution is free; represent it
       as a single local transfer so observers still see the data motion. *)
    [ { src = Procset.nth sender 0; dst = Procset.nth sender 0; bytes } ]
  else begin
    let p = Procset.size sender and q = Procset.size receiver in
    let entries = Block.comm_matrix ~amount:bytes ~senders:p ~receivers:q in
    let place =
      if optimize_placement then Placement.receiver_ranks ~sender ~receiver ~bytes
      else Array.of_list (Procset.to_list receiver)
    in
    List.map
      (fun (i, j, amount) ->
        { src = Procset.nth sender i; dst = place.(j); bytes = amount })
      entries
  end

let remote_bytes transfers =
  List.fold_left
    (fun acc t -> if t.src <> t.dst then acc +. t.bytes else acc)
    0. transfers

let local_bytes transfers =
  List.fold_left
    (fun acc t -> if t.src = t.dst then acc +. t.bytes else acc)
    0. transfers

let estimate cluster transfers =
  let n_links = Cluster.n_links cluster in
  let load = Array.make n_links 0. in
  let max_latency = ref 0. in
  let any_remote = ref false in
  List.iter
    (fun t ->
      if t.src <> t.dst && t.bytes > 0. then begin
        any_remote := true;
        let route = Cluster.route cluster ~src:t.src ~dst:t.dst in
        Array.iter (fun l -> load.(l) <- load.(l) +. t.bytes) route;
        let lat = Cluster.one_way_latency cluster ~route in
        if lat > !max_latency then max_latency := lat
      end)
    transfers;
  if not !any_remote then 0.
  else begin
    let drain = ref 0. in
    for l = 0 to n_links - 1 do
      if load.(l) > 0. then begin
        let t = load.(l) /. (Cluster.link cluster l).Link.bandwidth in
        if t > !drain then drain := t
      end
    done;
    !max_latency +. !drain
  end

let estimate_between cluster ~sender ~receiver ~bytes =
  if bytes <= 0. || Procset.equal sender receiver then 0.
  else estimate cluster (plan ~sender ~receiver ~bytes ())
