lib/redist/redistribution.ml: Array Block List Placement Rats_platform Rats_util
