lib/redist/block.mli:
