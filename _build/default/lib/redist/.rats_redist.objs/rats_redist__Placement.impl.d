lib/redist/placement.ml: Array Block Hashtbl List Rats_util
