lib/redist/block.ml: Array List
