lib/redist/redistribution.mli: Rats_platform Rats_util
