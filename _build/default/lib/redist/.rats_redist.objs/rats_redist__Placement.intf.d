lib/redist/placement.mli: Rats_util
