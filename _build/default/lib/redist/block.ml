let interval ~amount ~ranks i =
  if ranks <= 0 then invalid_arg "Block.interval: ranks <= 0";
  if i < 0 || i >= ranks then invalid_arg "Block.interval: rank out of range";
  let r = float_of_int ranks in
  (amount *. float_of_int i /. r, amount *. float_of_int (i + 1) /. r)

(* Overlap length of [i·m/p, (i+1)·m/p) and [j·m/q, (j+1)·m/q), computed in
   integer units of m/(p·q): ranges [i·q, (i+1)·q) and [j·p, (j+1)·p). *)
let overlap_units ~senders:p ~receivers:q i j =
  let lo = max (i * q) (j * p) and hi = min ((i + 1) * q) ((j + 1) * p) in
  max 0 (hi - lo)

let overlap ~amount ~senders ~receivers i j =
  if senders <= 0 || receivers <= 0 then invalid_arg "Block.overlap: bad ranks";
  if i < 0 || i >= senders then invalid_arg "Block.overlap: sender out of range";
  if j < 0 || j >= receivers then invalid_arg "Block.overlap: receiver out of range";
  let units = overlap_units ~senders ~receivers i j in
  amount *. float_of_int units /. float_of_int (senders * receivers)

let comm_matrix ~amount ~senders ~receivers =
  if senders <= 0 || receivers <= 0 then invalid_arg "Block.comm_matrix: bad ranks";
  let unit = amount /. float_of_int (senders * receivers) in
  let acc = ref [] in
  for i = senders - 1 downto 0 do
    (* Receiver ranks overlapping sender i lie in [i·q/p, ((i+1)·q − 1)/p]. *)
    let j_lo = i * receivers / senders in
    let j_hi = min (receivers - 1) ((((i + 1) * receivers) - 1) / senders) in
    for j = j_hi downto j_lo do
      let units = overlap_units ~senders ~receivers i j in
      if units > 0 then acc := (i, j, unit *. float_of_int units) :: !acc
    done
  done;
  !acc

let row_sums ~senders entries =
  let sums = Array.make senders 0. in
  List.iter (fun (i, _, a) -> sums.(i) <- sums.(i) +. a) entries;
  sums

let col_sums ~receivers entries =
  let sums = Array.make receivers 0. in
  List.iter (fun (_, j, a) -> sums.(j) <- sums.(j) +. a) entries;
  sums
