(** One-dimensional block data distribution (paper §II-A).

    An amount of data distributed over [r] ranks gives rank [i] the interval
    [\[i·m/r, (i+1)·m/r)]. The communication matrix of a redistribution
    between a [p]-rank and a [q]-rank block distribution of the same data is
    obtained from the pairwise interval overlaps; amounts are computed with
    integer arithmetic in units of [m/(p·q)] so they are exact (the paper's
    Table I example — 10 units, 4 senders, 5 receivers — is reproduced
    bit-for-bit). *)

val interval : amount:float -> ranks:int -> int -> float * float
(** [interval ~amount ~ranks i] is rank [i]'s half-open interval. Raises
    [Invalid_argument] if [i] is out of range or [ranks <= 0]. *)

val overlap : amount:float -> senders:int -> receivers:int -> int -> int -> float
(** [overlap ~amount ~senders ~receivers i j] is the amount sender rank [i]
    must ship to receiver rank [j]. *)

val comm_matrix :
  amount:float -> senders:int -> receivers:int -> (int * int * float) list
(** Sparse matrix of the non-zero [(sender rank, receiver rank, amount)]
    entries, ordered by sender then receiver rank. The block structure makes
    it banded: at most [senders + receivers − 1] entries. *)

val row_sums : senders:int -> (int * int * float) list -> float array
(** Amount leaving each sender rank. *)

val col_sums : receivers:int -> (int * int * float) list -> float array
(** Amount entering each receiver rank. *)
