(** Moldable data-parallel task model (paper §II-A).

    A task operates on a dataset of [m] double-precision elements
    (4M ≤ m ≤ 121M, where M = 2{^20}) and performs [a·m] floating-point
    operations with [a ∈ \[2^6, 2^9\]] — representative of, e.g., an iterated
    stencil on a √m×√m domain. Parallel execution time follows Amdahl's law
    with a non-parallelizable fraction [α ∈ \[0, 0.25\]]:

    [T(t, p) = T_seq(t) · (α + (1 − α) / p)]

    which is monotonically decreasing in [p]. The {e work} of a task on [p]
    processors is [ω = p · T(t, p)]. The volume of data a task sends to each
    of its successors equals its own dataset ([m] elements = [8m] bytes). *)

type t = private {
  id : int;  (** Index of the task in its DAG; assigned by the builder. *)
  name : string;
  data_elements : float;  (** [m]: dataset size in double elements. *)
  flop : float;  (** Sequential computation amount [a·m] in flop. *)
  alpha : float;  (** Non-parallelizable fraction in [\[0, 1\]]. *)
}

val min_elements : float
(** Lower bound on [m]: 4M elements (paper §II-A). *)

val max_elements : float
(** Upper bound on [m]: 121M elements (1 GiB of doubles minus headroom). *)

val make :
  id:int -> name:string -> data_elements:float -> flop:float -> alpha:float -> t
(** Raises [Invalid_argument] on negative sizes or [alpha] outside [0, 1]. *)

val virtual_task : id:int -> name:string -> t
(** Zero-cost, zero-data task used as synthetic single entry/exit point. *)

val is_virtual : t -> bool

val random : Rats_util.Rng.t -> id:int -> name:string -> t
(** Draws [m], [a], [α] from the paper's distributions. *)

val random_with_elements : Rats_util.Rng.t -> id:int -> name:string -> data_elements:float -> t
(** Like {!random} but with a fixed dataset size (used by layered generators
    where all tasks of a level share the same cost). *)

val data_bytes : t -> float
(** [8 · m]: size of the task's dataset, and of each outgoing transfer. *)

val seq_time : t -> speed:float -> float
(** Sequential execution time on a node of [speed] flop/s. *)

val time : t -> speed:float -> procs:int -> float
(** Amdahl execution time on [procs] ≥ 1 homogeneous processors. *)

val work : t -> speed:float -> procs:int -> float
(** [procs · time t ~speed ~procs]. *)

val relabel : t -> id:int -> t
(** Same task with a new DAG index (used when composing graphs). *)

val pp : Format.formatter -> t -> unit
