module Rng = Rats_util.Rng
module Units = Rats_util.Units

type t = {
  id : int;
  name : string;
  data_elements : float;
  flop : float;
  alpha : float;
}

let min_elements = 4. *. Units.mega
let max_elements = 121. *. Units.mega

let make ~id ~name ~data_elements ~flop ~alpha =
  if data_elements < 0. then invalid_arg "Task.make: negative data size";
  if flop < 0. then invalid_arg "Task.make: negative flop";
  if alpha < 0. || alpha > 1. then invalid_arg "Task.make: alpha outside [0,1]";
  { id; name; data_elements; flop; alpha }

let virtual_task ~id ~name =
  { id; name; data_elements = 0.; flop = 0.; alpha = 0. }

let is_virtual t = t.flop = 0. && t.data_elements = 0.

let random_with_elements rng ~id ~name ~data_elements =
  let a = Rng.uniform rng 64. 512. in
  let alpha = Rng.uniform rng 0. 0.25 in
  make ~id ~name ~data_elements ~flop:(a *. data_elements) ~alpha

let random rng ~id ~name =
  let m = Rng.uniform rng min_elements max_elements in
  random_with_elements rng ~id ~name ~data_elements:m

let data_bytes t = t.data_elements *. Units.bytes_per_element

let seq_time t ~speed =
  if speed <= 0. then invalid_arg "Task.seq_time: non-positive speed";
  t.flop /. speed

let time t ~speed ~procs =
  if procs < 1 then invalid_arg "Task.time: procs < 1";
  let seq = seq_time t ~speed in
  seq *. (t.alpha +. ((1. -. t.alpha) /. float_of_int procs))

let work t ~speed ~procs = float_of_int procs *. time t ~speed ~procs

let relabel t ~id = { t with id }

let pp ppf t =
  Format.fprintf ppf "%s#%d(m=%a, %.2eflop, a=%.3f)" t.name t.id
    Rats_util.Units.pp_bytes (data_bytes t) t.flop t.alpha
