lib/dag/task.mli: Format Rats_util
