lib/dag/task.ml: Format Rats_util
