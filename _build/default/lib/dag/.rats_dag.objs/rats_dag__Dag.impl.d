lib/dag/dag.ml: Array Float Format Hashtbl Int List Printf Queue Set Task
