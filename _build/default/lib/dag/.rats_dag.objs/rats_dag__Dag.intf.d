lib/dag/dag.mli: Format Task
