lib/dag/metrics.ml: Array Dag Format List Rats_util Task
