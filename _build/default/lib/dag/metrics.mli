(** Application characterization metrics.

    Scalar descriptors of a mixed-parallel application, used to reason about
    scheduler behaviour across the configuration space (and by the automatic
    tuner): how parallel the graph is, how communication-heavy, how regular
    its levels are. All computation amounts are taken at one processor per
    task; communication amounts are raw bytes, so callers can price them on
    any platform. *)

type t = {
  n_tasks : int;  (** Including virtual entry/exit tasks. *)
  n_edges : int;
  n_levels : int;
  max_width : int;  (** Tasks in the largest level. *)
  avg_width : float;  (** Tasks per level. *)
  width_cv : float;
      (** Coefficient of variation of level sizes — 0 for perfectly regular
          DAGs, large for irregular ones. *)
  total_flop : float;
  total_bytes : float;  (** Sum of edge weights. *)
  bytes_per_flop : float;
      (** Platform-independent communication intensity; multiply by
          [speed / bandwidth] to get a CCR. *)
  critical_path_flop : float;
      (** Computation on the longest flop-weighted path. *)
  avg_parallelism : float;  (** [total_flop / critical_path_flop]. *)
  edge_density : float;
      (** [n_edges] over the maximum possible for the level structure
          (consecutive-level complete bipartite graphs), > 1 when jump
          edges are present. *)
}

val compute : Dag.t -> t

val pp : Format.formatter -> t -> unit
