type t = {
  n_tasks : int;
  n_edges : int;
  n_levels : int;
  max_width : int;
  avg_width : float;
  width_cv : float;
  total_flop : float;
  total_bytes : float;
  bytes_per_flop : float;
  critical_path_flop : float;
  avg_parallelism : float;
  edge_density : float;
}

let compute dag =
  let n_tasks = Dag.n_tasks dag in
  let n_edges = Dag.n_edges dag in
  let groups = Dag.level_groups dag in
  let n_levels = Array.length groups in
  let widths = Array.map (fun l -> float_of_int (List.length l)) groups in
  let max_width =
    Array.fold_left (fun acc l -> max acc (List.length l)) 0 groups
  in
  let avg_width = Rats_util.Stats.mean widths in
  let width_cv =
    if avg_width > 0. then Rats_util.Stats.stddev widths /. avg_width else 0.
  in
  let total_flop =
    Array.fold_left (fun acc t -> acc +. t.Task.flop) 0. (Dag.tasks dag)
  in
  let total_bytes =
    List.fold_left (fun acc e -> acc +. e.Dag.bytes) 0. (Dag.edges dag)
  in
  let _, critical_path_flop =
    Dag.critical_path dag
      ~task_cost:(fun i -> (Dag.task dag i).Task.flop)
      ~edge_cost:(fun _ _ _ -> 0.)
  in
  let max_consecutive_edges =
    let acc = ref 0. in
    for l = 0 to n_levels - 2 do
      acc := !acc +. (widths.(l) *. widths.(l + 1))
    done;
    !acc
  in
  {
    n_tasks;
    n_edges;
    n_levels;
    max_width;
    avg_width;
    width_cv;
    total_flop;
    total_bytes;
    bytes_per_flop = (if total_flop > 0. then total_bytes /. total_flop else 0.);
    critical_path_flop;
    avg_parallelism =
      (if critical_path_flop > 0. then total_flop /. critical_path_flop else 1.);
    edge_density =
      (if max_consecutive_edges > 0. then float_of_int n_edges /. max_consecutive_edges
       else 0.);
  }

let pp ppf m =
  Format.fprintf ppf
    "%d tasks, %d edges, %d levels (max width %d, cv %.2f), %.3g flop, %a \
     transferred, parallelism %.2f"
    m.n_tasks m.n_edges m.n_levels m.max_width m.width_cv m.total_flop
    Rats_util.Units.pp_bytes m.total_bytes m.avg_parallelism
