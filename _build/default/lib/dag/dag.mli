(** Directed acyclic graph of moldable tasks (paper §II-A).

    [G = (N, E)] where nodes are {!Task.t} values and each edge [e_ij] carries
    the amount of data (bytes) task [n_i] sends to [n_j]. Built through the
    {!Builder} interface, which validates acyclicity; most paper algorithms
    additionally assume a single entry and a single exit task, which
    {!ensure_single_entry_exit} establishes by adding virtual tasks when
    needed. A constructed DAG is immutable. *)

type t

type edge = { src : int; dst : int; bytes : float }

(** Incremental construction with validation at [build] time. *)
module Builder : sig
  type dag = t
  type t

  val create : unit -> t

  val add_task : t -> Task.t -> unit
  (** Tasks must be added in id order starting at 0; raises
      [Invalid_argument] otherwise. *)

  val add_edge : t -> src:int -> dst:int -> bytes:float -> unit
  (** Raises [Invalid_argument] on unknown endpoints, negative weight,
      self-loop, or duplicate edge. *)

  val build : t -> dag
  (** Raises [Failure] if the graph contains a cycle. *)
end

val n_tasks : t -> int
val n_edges : t -> int
val task : t -> int -> Task.t
val tasks : t -> Task.t array
(** Fresh copy of the task array. *)

val succs : t -> int -> (int * float) list
(** [(successor id, edge bytes)] pairs, in edge insertion order. *)

val preds : t -> int -> (int * float) list

val edges : t -> edge list
val edge_bytes : t -> src:int -> dst:int -> float option

val entries : t -> int list
(** Tasks with no predecessor. *)

val exits : t -> int list
(** Tasks with no successor. *)

val ensure_single_entry_exit : t -> t
(** Returns a DAG with exactly one entry and one exit task. When the input
    already satisfies this, it is returned unchanged; otherwise zero-cost
    virtual tasks are appended and connected by zero-byte edges. *)

val topological_order : t -> int array
(** Kahn's algorithm; ties resolved by ascending task id (deterministic). *)

val depths : t -> int array
(** [depths g].(i) is the length of the longest edge path from an entry to
    task [i]; entries have depth 0. This is the "level" of a task in the
    layered sense of the paper's DAG generator. *)

val level_groups : t -> int list array
(** Tasks grouped by {!depths}, ascending ids within a level. *)

val bottom_levels :
  t -> task_cost:(int -> float) -> edge_cost:(int -> int -> float -> float) ->
  float array
(** [bottom_levels g ~task_cost ~edge_cost].(i) is the classic bottom level:
    the maximum, over paths from [i] to an exit, of the sum of task costs and
    edge costs along the path (including [task_cost i]). [edge_cost src dst
    bytes] lets callers price redistributions. *)

val top_levels :
  t -> task_cost:(int -> float) -> edge_cost:(int -> int -> float -> float) ->
  float array
(** Symmetric: longest cost path from an entry to just {e before} task [i]
    (excluding [task_cost i]). *)

val critical_path :
  t -> task_cost:(int -> float) -> edge_cost:(int -> int -> float -> float) ->
  int list * float
(** The path achieving the maximal end-to-end cost, as a task id list from an
    entry to an exit, together with its length [C∞]. *)

val total_cost : t -> task_cost:(int -> float) -> float
(** Σ over tasks of [task_cost]. *)

val map_tasks : t -> f:(Task.t -> Task.t) -> t
(** Rebuilds the DAG with transformed tasks (ids must be preserved by [f]). *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: #tasks, #edges, #levels, max width. *)

val pp_dot : Format.formatter -> t -> unit
(** Graphviz rendering: nodes labelled with name, dataset size and flop;
    edges labelled with transferred bytes. *)
