type t = {
  tasks : Task.t array;
  succs : (int * float) list array;  (* insertion order *)
  preds : (int * float) list array;
}

type edge = { src : int; dst : int; bytes : float }

module Builder = struct
  type dag = t

  type t = {
    mutable rev_tasks : Task.t list;
    mutable count : int;
    mutable rev_edges : edge list;
    edge_set : (int * int, unit) Hashtbl.t;
  }

  let create () =
    { rev_tasks = []; count = 0; rev_edges = []; edge_set = Hashtbl.create 64 }

  let add_task b (task : Task.t) =
    if task.Task.id <> b.count then
      invalid_arg
        (Printf.sprintf "Dag.Builder.add_task: expected id %d, got %d" b.count
           task.Task.id);
    b.rev_tasks <- task :: b.rev_tasks;
    b.count <- b.count + 1

  let add_edge b ~src ~dst ~bytes =
    if src < 0 || src >= b.count then invalid_arg "Dag.Builder.add_edge: bad src";
    if dst < 0 || dst >= b.count then invalid_arg "Dag.Builder.add_edge: bad dst";
    if src = dst then invalid_arg "Dag.Builder.add_edge: self loop";
    if bytes < 0. then invalid_arg "Dag.Builder.add_edge: negative weight";
    if Hashtbl.mem b.edge_set (src, dst) then
      invalid_arg "Dag.Builder.add_edge: duplicate edge";
    Hashtbl.add b.edge_set (src, dst) ();
    b.rev_edges <- { src; dst; bytes } :: b.rev_edges

  let build b =
    let n = b.count in
    let tasks = Array.of_list (List.rev b.rev_tasks) in
    let succs = Array.make n [] and preds = Array.make n [] in
    let edges = List.rev b.rev_edges in
    List.iter
      (fun e ->
        succs.(e.src) <- (e.dst, e.bytes) :: succs.(e.src);
        preds.(e.dst) <- (e.src, e.bytes) :: preds.(e.dst))
      edges;
    Array.iteri (fun i l -> succs.(i) <- List.rev l) succs;
    Array.iteri (fun i l -> preds.(i) <- List.rev l) preds;
    let g = { tasks; succs; preds } in
    (* Cycle check via Kahn: every node must be output. *)
    let indeg = Array.map List.length preds in
    let queue = Queue.create () in
    Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
    let seen = ref 0 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      incr seen;
      List.iter
        (fun (v, _) ->
          indeg.(v) <- indeg.(v) - 1;
          if indeg.(v) = 0 then Queue.add v queue)
        succs.(u)
    done;
    if !seen <> n then failwith "Dag.Builder.build: graph contains a cycle";
    g
end

let n_tasks g = Array.length g.tasks
let n_edges g = Array.fold_left (fun acc l -> acc + List.length l) 0 g.succs
let task g i = g.tasks.(i)
let tasks g = Array.copy g.tasks
let succs g i = g.succs.(i)
let preds g i = g.preds.(i)

let edges g =
  let acc = ref [] in
  for i = n_tasks g - 1 downto 0 do
    List.iter (fun (dst, bytes) -> acc := { src = i; dst; bytes } :: !acc)
      (List.rev g.succs.(i))
  done;
  !acc

let edge_bytes g ~src ~dst = List.assoc_opt dst g.succs.(src)

let entries g =
  let acc = ref [] in
  for i = n_tasks g - 1 downto 0 do
    if g.preds.(i) = [] then acc := i :: !acc
  done;
  !acc

let exits g =
  let acc = ref [] in
  for i = n_tasks g - 1 downto 0 do
    if g.succs.(i) = [] then acc := i :: !acc
  done;
  !acc

let ensure_single_entry_exit g =
  let ents = entries g and exs = exits g in
  match (ents, exs) with
  | [ _ ], [ _ ] -> g
  | _ ->
      let n = n_tasks g in
      let b = Builder.create () in
      Array.iter (fun t -> Builder.add_task b t) g.tasks;
      let need_entry = List.length ents > 1 in
      let need_exit = List.length exs > 1 in
      let entry_id = if need_entry then n else -1 in
      let exit_id = if need_exit then (if need_entry then n + 1 else n) else -1 in
      if need_entry then
        Builder.add_task b (Task.virtual_task ~id:entry_id ~name:"entry");
      if need_exit then
        Builder.add_task b (Task.virtual_task ~id:exit_id ~name:"exit");
      Array.iteri
        (fun i l ->
          List.iter (fun (dst, bytes) -> Builder.add_edge b ~src:i ~dst ~bytes) l)
        g.succs;
      if need_entry then
        List.iter (fun e -> Builder.add_edge b ~src:entry_id ~dst:e ~bytes:0.) ents;
      if need_exit then
        List.iter (fun x -> Builder.add_edge b ~src:x ~dst:exit_id ~bytes:0.) exs;
      Builder.build b

let topological_order g =
  let n = n_tasks g in
  let indeg = Array.make n 0 in
  Array.iteri
    (fun _ l -> List.iter (fun (v, _) -> indeg.(v) <- indeg.(v) + 1) l)
    g.succs;
  (* Min-id-first ready set keeps the order deterministic. *)
  let module IS = Set.Make (Int) in
  let ready = ref IS.empty in
  Array.iteri (fun i d -> if d = 0 then ready := IS.add i !ready) indeg;
  let out = Array.make n 0 in
  let w = ref 0 in
  while not (IS.is_empty !ready) do
    let u = IS.min_elt !ready in
    ready := IS.remove u !ready;
    out.(!w) <- u;
    incr w;
    List.iter
      (fun (v, _) ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then ready := IS.add v !ready)
      g.succs.(u)
  done;
  assert (!w = n);
  out

let depths g =
  let order = topological_order g in
  let d = Array.make (n_tasks g) 0 in
  Array.iter
    (fun u ->
      List.iter (fun (v, _) -> if d.(u) + 1 > d.(v) then d.(v) <- d.(u) + 1)
        g.succs.(u))
    order;
  d

let level_groups g =
  let d = depths g in
  let n_levels = 1 + Array.fold_left max 0 d in
  let groups = Array.make n_levels [] in
  for i = n_tasks g - 1 downto 0 do
    groups.(d.(i)) <- i :: groups.(d.(i))
  done;
  groups

let bottom_levels g ~task_cost ~edge_cost =
  let order = topological_order g in
  let n = n_tasks g in
  let bl = Array.make n 0. in
  for k = n - 1 downto 0 do
    let u = order.(k) in
    let best =
      List.fold_left
        (fun acc (v, bytes) -> Float.max acc (edge_cost u v bytes +. bl.(v)))
        0. g.succs.(u)
    in
    bl.(u) <- task_cost u +. best
  done;
  bl

let top_levels g ~task_cost ~edge_cost =
  let order = topological_order g in
  let n = n_tasks g in
  let tl = Array.make n 0. in
  Array.iter
    (fun u ->
      List.iter
        (fun (v, bytes) ->
          let candidate = tl.(u) +. task_cost u +. edge_cost u v bytes in
          if candidate > tl.(v) then tl.(v) <- candidate)
        g.succs.(u))
    order;
  tl

let critical_path g ~task_cost ~edge_cost =
  let bl = bottom_levels g ~task_cost ~edge_cost in
  (* Start from the entry with maximal bottom level and greedily follow the
     successor realizing it. *)
  let start =
    List.fold_left
      (fun acc e -> match acc with
        | None -> Some e
        | Some best -> if bl.(e) > bl.(best) then Some e else acc)
      None (entries g)
  in
  match start with
  | None -> ([], 0.)
  | Some s ->
      let rec follow u acc =
        let nexts = succs g u in
        if nexts = [] then List.rev (u :: acc)
        else begin
          let eps = 1e-9 *. (1. +. Float.abs bl.(u)) in
          let next =
            List.find
              (fun (v, bytes) ->
                Float.abs (bl.(u) -. (task_cost u +. edge_cost u v bytes +. bl.(v)))
                <= eps)
              nexts
          in
          follow (fst next) (u :: acc)
        end
      in
      (follow s [], bl.(s))

let total_cost g ~task_cost =
  let acc = ref 0. in
  for i = 0 to n_tasks g - 1 do
    acc := !acc +. task_cost i
  done;
  !acc

let map_tasks g ~f =
  let tasks = Array.map f g.tasks in
  Array.iteri
    (fun i t ->
      if t.Task.id <> i then invalid_arg "Dag.map_tasks: f changed a task id")
    tasks;
  { g with tasks }

let pp_dot ppf g =
  Format.fprintf ppf "digraph dag {@.  rankdir=TB;@.";
  Array.iteri
    (fun i t ->
      Format.fprintf ppf "  n%d [label=\"%s\\n%.0fMB %.2gGflop\"];@." i
        t.Task.name
        (t.Task.data_elements *. 8. /. 1e6)
        (t.Task.flop /. 1e9))
    g.tasks;
  Array.iteri
    (fun i l ->
      List.iter
        (fun (j, bytes) ->
          Format.fprintf ppf "  n%d -> n%d [label=\"%.0fMB\"];@." i j
            (bytes /. 1e6))
        l)
    g.succs;
  Format.fprintf ppf "}@."

let pp_stats ppf g =
  let groups = level_groups g in
  let max_width = Array.fold_left (fun acc l -> max acc (List.length l)) 0 groups in
  Format.fprintf ppf "dag: %d tasks, %d edges, %d levels, max width %d"
    (n_tasks g) (n_edges g) (Array.length groups) max_width
