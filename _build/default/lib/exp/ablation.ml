module Suite = Rats_daggen.Suite
module Cluster = Rats_platform.Cluster
module Topology = Rats_platform.Topology
module Core = Rats_core
module Stats = Rats_util.Stats

type ratio_row = {
  label : string;
  mean_ratio : float;
  max_ratio : float;
}

let schedules_for cluster configs strategy =
  List.map
    (fun config ->
      let dag = Suite.generate config in
      let problem = Core.Problem.make ~dag ~cluster in
      Core.Rats.schedule problem strategy)
    configs

let ratio_study cluster configs ~ablated ~full =
  List.map
    (fun (label, strategy) ->
      let ratios =
        List.map
          (fun s ->
            let a = (ablated s : Core.Evaluate.result) in
            let f = (full s : Core.Evaluate.result) in
            a.Core.Evaluate.makespan /. f.Core.Evaluate.makespan)
          (schedules_for cluster configs strategy)
        |> Array.of_list
      in
      {
        label;
        mean_ratio = Stats.mean ratios;
        max_ratio = snd (Stats.min_max ratios);
      })
    [
      ("hcpa", Core.Rats.Baseline);
      ("time-cost", Core.Rats.Timecost Core.Rats.naive_timecost);
    ]

let placement_study cluster configs =
  ratio_study cluster configs
    ~ablated:(Core.Evaluate.run ~optimize_placement:false)
    ~full:(Core.Evaluate.run ~optimize_placement:true)

let replay_study cluster configs =
  ratio_study cluster configs
    ~ablated:(Core.Evaluate.run ~work_conserving:false)
    ~full:(Core.Evaluate.run ~work_conserving:true)

let window_values =
  [ 16. *. 1024.; 65536.; 262144.; 1048576.; 4. *. 1048576. ]

let window_study configs =
  List.map
    (fun tcp_wmax ->
      let cluster =
        Cluster.make ~name:"grelon-like"
          ~topology:(Topology.Cabinets { cabinets = 5; per_cabinet = 24 })
          ~speed_gflops:3.185 ~tcp_wmax ()
      in
      let makespans =
        List.map
          (fun s -> (Core.Evaluate.run s).Core.Evaluate.makespan)
          (schedules_for cluster configs Core.Rats.Baseline)
        |> Array.of_list
      in
      (tcp_wmax, Stats.mean makespans))
    window_values

let purity_study cluster configs =
  let problems =
    List.map
      (fun config ->
        Core.Problem.make ~dag:(Suite.generate config) ~cluster)
      configs
  in
  let mean_of schedules =
    Stats.mean
      (Array.of_list
         (List.map
            (fun s -> (Core.Evaluate.run s).Core.Evaluate.makespan)
            schedules))
  in
  let timecost =
    mean_of
      (List.map
         (fun p -> Core.Rats.schedule p (Core.Rats.Timecost Core.Rats.naive_timecost))
         problems)
  in
  let rows =
    [
      ("time-cost RATS", timecost);
      ("hcpa", mean_of (List.map (fun p -> Core.Rats.schedule p Core.Rats.Baseline) problems));
      ("pure data-parallel", mean_of (List.map Core.Reference.data_parallel problems));
      ("pure task-parallel", mean_of (List.map Core.Reference.task_parallel problems));
    ]
  in
  List.map (fun (label, v) -> (label, v /. timecost)) rows

(* A small, shape-diverse subset keeps the studies affordable. *)
let study_configs scale =
  let all = Suite.all scale in
  let firsts = List.filter (fun c -> c.Suite.sample = 0) all in
  let n = List.length firsts in
  let cap = 20 in
  if n <= cap then firsts
  else List.filteri (fun i _ -> i * cap / n <> (i - 1) * cap / n) firsts

let print_all ppf scale =
  let configs = study_configs scale in
  let cluster = Cluster.grillon in
  Format.fprintf ppf
    "Ablation studies (%d configurations, %s cluster unless noted)@."
    (List.length configs) cluster.Cluster.name;
  Format.fprintf ppf
    "@.1. Self-communication-maximizing placement (natural / optimized):@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "   %-12s mean x%.3f, worst x%.3f@." r.label
        r.mean_ratio r.max_ratio)
    (placement_study cluster configs);
  Format.fprintf ppf
    "@.2. Work-conserving replay (strict-order / work-conserving):@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "   %-12s mean x%.3f, worst x%.3f@." r.label
        r.mean_ratio r.max_ratio)
    (replay_study cluster configs);
  Format.fprintf ppf
    "@.3. TCP window sensitivity (grelon-like hierarchical cluster):@.";
  List.iter
    (fun (wmax, makespan) ->
      Format.fprintf ppf "   Wmax=%8.0fKiB  mean makespan %10.2fs@."
        (wmax /. 1024.) makespan)
    (window_study configs);
  Format.fprintf ppf
    "@.4. Mixed parallelism vs pure corners (relative to time-cost RATS):@.";
  List.iter
    (fun (label, v) -> Format.fprintf ppf "   %-20s x%.3f@." label v)
    (purity_study cluster configs)
