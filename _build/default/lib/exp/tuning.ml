module Suite = Rats_daggen.Suite
module Cluster = Rats_platform.Cluster
module Core = Rats_core
module Stats = Rats_util.Stats

let mindelta_values = [ 0.; -0.25; -0.5; -0.75 ]
let maxdelta_values = [ 0.; 0.25; 0.5; 0.75; 1. ]
let minrho_values = [ 0.2; 0.4; 0.5; 0.6; 0.8; 1. ]

type prepared = {
  problem : Core.Problem.t;
  alloc : int array;
  hcpa_makespan : float;
}

let prepare cluster configs =
  List.map
    (fun config ->
      let dag = Suite.generate config in
      let problem = Core.Problem.make ~dag ~cluster in
      let alloc = Core.Hcpa.allocate problem in
      let hcpa =
        Runner.strategy_measurement ~alloc problem Core.Rats.Baseline
      in
      { problem; alloc; hcpa_makespan = hcpa.Runner.makespan })
    configs

let configs_of_kind scale kind =
  List.filter (fun c -> Suite.kind c = kind) (Suite.all scale)

let tuning_configs scale kind =
  let firsts =
    List.filter (fun c -> c.Suite.sample = 0) (configs_of_kind scale kind)
  in
  let n = List.length firsts in
  let cap = 24 in
  if n <= cap then firsts
  else
    (* Even thinning keeps the whole shape spectrum represented. *)
    List.filteri (fun i _ -> i * cap / n <> (i - 1) * cap / n) firsts

let average_relative prepared strategy =
  let ratios =
    List.map
      (fun p ->
        let m = Runner.strategy_measurement ~alloc:p.alloc p.problem strategy in
        m.Runner.makespan /. p.hcpa_makespan)
      prepared
  in
  Stats.mean (Array.of_list ratios)

type delta_point = {
  mindelta : float;
  maxdelta : float;
  avg_relative_makespan : float;
}

let sweep_delta prepared =
  List.concat_map
    (fun mindelta ->
      List.map
        (fun maxdelta ->
          let strategy = Core.Rats.Delta { mindelta; maxdelta } in
          {
            mindelta;
            maxdelta;
            avg_relative_makespan = average_relative prepared strategy;
          })
        maxdelta_values)
    mindelta_values

type timecost_point = {
  packing : bool;
  minrho : float;
  avg_relative_makespan : float;
}

let sweep_timecost prepared =
  List.concat_map
    (fun packing ->
      List.map
        (fun minrho ->
          let strategy = Core.Rats.Timecost { minrho; packing } in
          {
            packing;
            minrho;
            avg_relative_makespan = average_relative prepared strategy;
          })
        minrho_values)
    [ false; true ]

type tuned = { delta : Core.Rats.delta_params; minrho : float }

let best delta_points timecost_points =
  let best_delta =
    List.fold_left
      (fun (acc : delta_point option) (p : delta_point) ->
        match acc with
        | Some b when b.avg_relative_makespan <= p.avg_relative_makespan -> acc
        | _ -> Some p)
      None delta_points
  in
  let best_tc =
    List.fold_left
      (fun (acc : timecost_point option) p ->
        if not p.packing then acc
        else
          match acc with
          | Some b when b.avg_relative_makespan <= p.avg_relative_makespan -> acc
          | _ -> Some p)
      None timecost_points
  in
  match (best_delta, best_tc) with
  | Some d, Some t ->
      {
        delta = { Core.Rats.mindelta = d.mindelta; maxdelta = d.maxdelta };
        minrho = t.minrho;
      }
  | _ -> invalid_arg "Tuning.best: empty sweep"

let kinds : Suite.app_kind list = [ `Fft; `Strassen; `Layered; `Irregular ]

let table4 scale =
  List.map
    (fun cluster ->
      let per_kind =
        List.map
          (fun kind ->
            let prepared = prepare cluster (tuning_configs scale kind) in
            let tuned = best (sweep_delta prepared) (sweep_timecost prepared) in
            (kind, tuned))
          kinds
      in
      (cluster.Cluster.name, per_kind))
    Cluster.presets

let tuned_for table ~cluster ~kind = List.assoc kind (List.assoc cluster table)
