module Stats = Rats_util.Stats

type series = { label : string; values : float array }

let equal_tolerance = 1e-3

let sorted_ratios results ~num ~den =
  let values =
    List.map (fun r -> num r /. den r) results |> Array.of_list
  in
  Array.sort compare values;
  values

let relative_makespan results =
  let hcpa r = r.Runner.hcpa.Runner.makespan in
  [
    {
      label = "delta";
      values =
        sorted_ratios results
          ~num:(fun r -> r.Runner.delta.Runner.makespan)
          ~den:hcpa;
    };
    {
      label = "time-cost";
      values =
        sorted_ratios results
          ~num:(fun r -> r.Runner.timecost.Runner.makespan)
          ~den:hcpa;
    };
  ]

let relative_work results =
  let hcpa r = r.Runner.hcpa.Runner.work in
  [
    {
      label = "delta";
      values =
        sorted_ratios results ~num:(fun r -> r.Runner.delta.Runner.work) ~den:hcpa;
    };
    {
      label = "time-cost";
      values =
        sorted_ratios results
          ~num:(fun r -> r.Runner.timecost.Runner.work)
          ~den:hcpa;
    };
  ]

let mean_and_win_fraction s =
  (Stats.mean s.values, Stats.fraction_below s.values 1.)

type pairwise_cell = { better : int; equal : int; worse : int }

let labels = [| "HCPA"; "delta"; "time-cost" |]

let makespan_of r = function
  | 0 -> r.Runner.hcpa.Runner.makespan
  | 1 -> r.Runner.delta.Runner.makespan
  | _ -> r.Runner.timecost.Runner.makespan

let compare_makespans a b =
  if Float.abs (a -. b) <= equal_tolerance *. Float.max a b then 0
  else if a < b then -1
  else 1

let pairwise results =
  let zero = { better = 0; equal = 0; worse = 0 } in
  let m = Array.init 3 (fun _ -> Array.make 3 zero) in
  List.iter
    (fun r ->
      for i = 0 to 2 do
        for j = 0 to 2 do
          if i <> j then begin
            let cell = m.(i).(j) in
            m.(i).(j) <-
              (match compare_makespans (makespan_of r i) (makespan_of r j) with
              | -1 -> { cell with better = cell.better + 1 }
              | 0 -> { cell with equal = cell.equal + 1 }
              | _ -> { cell with worse = cell.worse + 1 })
          end
        done
      done)
    results;
  (labels, m)

let combined_percent m i =
  let acc = ref { better = 0; equal = 0; worse = 0 } in
  Array.iteri
    (fun j cell ->
      if j <> i then
        acc :=
          {
            better = !acc.better + cell.better;
            equal = !acc.equal + cell.equal;
            worse = !acc.worse + cell.worse;
          })
    m.(i);
  let total = !acc.better + !acc.equal + !acc.worse in
  let pct x = if total = 0 then 0. else 100. *. float_of_int x /. float_of_int total in
  (!acc, [| pct !acc.better; pct !acc.equal; pct !acc.worse |])

type degradation = {
  label : string;
  avg_over_all : float;
  n_not_best : int;
  avg_over_not_best : float;
}

let degradation_from_best results =
  let n = List.length results in
  List.init 3 (fun i ->
      let degradations =
        List.map
          (fun r ->
            let mine = makespan_of r i in
            let best =
              Float.min (makespan_of r 0) (Float.min (makespan_of r 1) (makespan_of r 2))
            in
            let was_best = compare_makespans mine best = 0 in
            let pct = if best > 0. then 100. *. ((mine /. best) -. 1.) else 0. in
            (was_best, Float.max 0. pct))
          results
      in
      let not_best = List.filter (fun (wb, _) -> not wb) degradations in
      let sum l = List.fold_left (fun acc (_, p) -> acc +. p) 0. l in
      let n_not_best = List.length not_best in
      {
        label = labels.(i);
        avg_over_all = (if n = 0 then 0. else sum degradations /. float_of_int n);
        n_not_best;
        avg_over_not_best =
          (if n_not_best = 0 then 0. else sum not_best /. float_of_int n_not_best);
      })
