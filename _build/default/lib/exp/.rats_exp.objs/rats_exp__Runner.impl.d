lib/exp/runner.ml: List Printf Rats_core Rats_daggen Rats_platform
