lib/exp/tuning.ml: Array List Rats_core Rats_daggen Rats_platform Rats_util Runner
