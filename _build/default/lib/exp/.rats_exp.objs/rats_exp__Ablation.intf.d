lib/exp/ablation.mli: Format Rats_daggen Rats_platform
