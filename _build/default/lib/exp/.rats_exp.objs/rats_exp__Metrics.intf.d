lib/exp/metrics.mli: Runner
