lib/exp/ablation.ml: Array Format List Rats_core Rats_daggen Rats_platform Rats_util
