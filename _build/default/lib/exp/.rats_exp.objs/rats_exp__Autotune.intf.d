lib/exp/autotune.mli: Rats_core Rats_daggen Rats_platform
