lib/exp/tuning.mli: Rats_core Rats_daggen Rats_platform
