lib/exp/ccr_sweep.mli: Format Rats_daggen Rats_platform
