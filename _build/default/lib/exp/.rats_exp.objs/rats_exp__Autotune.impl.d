lib/exp/autotune.ml: Array Float List Rats_core Rats_dag Rats_daggen Rats_util Tuning
