lib/exp/metrics.ml: Array Float List Rats_util Runner
