lib/exp/runner.mli: Rats_core Rats_daggen Rats_platform
