lib/exp/ccr_sweep.ml: Array Autotune Format List Rats_core Rats_dag Rats_daggen Rats_util
