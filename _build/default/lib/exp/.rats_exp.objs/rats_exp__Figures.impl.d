lib/exp/figures.ml: Array Format Fun List Metrics Printf Rats_core Rats_daggen Rats_platform Rats_redist Runner String Tuning
