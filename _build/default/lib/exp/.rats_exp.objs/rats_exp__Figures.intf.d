lib/exp/figures.mli: Format Rats_daggen Rats_platform Runner Tuning
