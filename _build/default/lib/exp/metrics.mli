(** Comparison metrics of the evaluation section.

    - {e relative makespan / work} (Figures 2, 3, 6, 7): RATS value divided
      by HCPA's for the same configuration, each series sorted independently
      by increasing value;
    - {e pairwise comparison} (Table V): per algorithm pair, in how many
      scenarios one is better / equal / worse (two makespans are "equal"
      within a 0.1 % relative tolerance), plus the combined
      better/equal/worse percentages of each algorithm against all others;
    - {e degradation from best} (Table VI): percent distance to the best
      makespan of the scenario, averaged (a) over all experiments and
      (b) over only the experiments where the algorithm was not best. *)

type series = { label : string; values : float array }

val relative_makespan : Runner.result list -> series list
(** [Delta] and [Time-cost] series relative to HCPA, sorted increasing. *)

val relative_work : Runner.result list -> series list

val mean_and_win_fraction : series -> float * float
(** (mean of the series, fraction of values < 1). *)

type pairwise_cell = { better : int; equal : int; worse : int }

val pairwise : Runner.result list -> string array * pairwise_cell array array
(** [(labels, m)] with [m.(i).(j)] comparing algorithm [i] against [j] by
    simulated makespan. Diagonal cells are all-zero. *)

val combined_percent : pairwise_cell array array -> int -> pairwise_cell * float array
(** For algorithm [i]: summed cells against all others and the
    better/equal/worse percentages. *)

type degradation = {
  label : string;
  avg_over_all : float;  (** percent *)
  n_not_best : int;
  avg_over_not_best : float;  (** percent *)
}

val degradation_from_best : Runner.result list -> degradation list

val equal_tolerance : float
(** Relative tolerance under which two makespans count as equal (0.001). *)
