module Suite = Rats_daggen.Suite
module Cluster = Rats_platform.Cluster
module Core = Rats_core

type measurement = { makespan : float; work : float }

type result = {
  config : Suite.config;
  cluster : string;
  hcpa : measurement;
  delta : measurement;
  timecost : measurement;
}

let strategy_measurement ?alloc problem strategy =
  let outcome = Core.Algorithms.run ?alloc problem strategy in
  {
    makespan = Core.Algorithms.makespan outcome;
    work = Core.Algorithms.work outcome;
  }

let run_config ?(delta = Core.Rats.naive_delta)
    ?(timecost = Core.Rats.naive_timecost) cluster config =
  let dag = Suite.generate config in
  let problem = Core.Problem.make ~dag ~cluster in
  let alloc = Core.Hcpa.allocate problem in
  {
    config;
    cluster = cluster.Cluster.name;
    hcpa = strategy_measurement ~alloc problem Core.Rats.Baseline;
    delta = strategy_measurement ~alloc problem (Core.Rats.Delta delta);
    timecost = strategy_measurement ~alloc problem (Core.Rats.Timecost timecost);
  }

let run_suite ?delta ?timecost ?(progress = false) scale cluster =
  let configs = Suite.all scale in
  let total = List.length configs in
  List.mapi
    (fun i config ->
      if progress && i mod 25 = 0 then
        Printf.eprintf "[%s] %d/%d %s\n%!" cluster.Cluster.name i total
          (Suite.name config);
      run_config ?delta ?timecost cluster config)
    configs
