(* Tests for rats_util: RNG, processor sets, priority queue, statistics. *)

module Rng = Rats_util.Rng
module Procset = Rats_util.Procset
module Pqueue = Rats_util.Pqueue
module Stats = Rats_util.Stats
module Units = Rats_util.Units

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg
let qcheck t = Rats_test_support.Seeded.to_alcotest t

(* --- Rng ----------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let test_rng_split () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int64 a) in
  let ys = List.init 20 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_float_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.float r 5. in
    Alcotest.(check bool) "in [0,5)" true (x >= 0. && x < 5.)
  done

let test_rng_uniform_bounds () =
  let r = Rng.create 4 in
  for _ = 1 to 1000 do
    let x = Rng.uniform r 2. 3. in
    Alcotest.(check bool) "in [2,3)" true (x >= 2. && x < 3.)
  done

let test_rng_uniform_mean () =
  let r = Rng.create 5 in
  let n = 20000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.uniform r 0. 1.
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_rng_int_bounds () =
  let r = Rng.create 6 in
  let seen = Array.make 7 false in
  for _ = 1 to 2000 do
    let x = Rng.int r 7 in
    Alcotest.(check bool) "in [0,7)" true (x >= 0 && x < 7);
    seen.(x) <- true
  done;
  Alcotest.(check bool) "all values reached" true (Array.for_all Fun.id seen)

let test_rng_int_range () =
  let r = Rng.create 8 in
  for _ = 1 to 1000 do
    let x = Rng.int_range r (-3) 3 in
    Alcotest.(check bool) "in [-3,3]" true (x >= -3 && x <= 3)
  done;
  check Alcotest.int "degenerate range" 5 (Rng.int_range r 5 5)

let test_rng_bool_probability () =
  let r = Rng.create 9 in
  let n = 10000 in
  let t = ref 0 in
  for _ = 1 to n do
    if Rng.bool r 0.3 then incr t
  done;
  let f = float_of_int !t /. float_of_int n in
  Alcotest.(check bool) "frequency near 0.3" true (Float.abs (f -. 0.3) < 0.03)

let test_rng_shuffle_multiset () =
  let r = Rng.create 10 in
  let a = Array.init 50 Fun.id in
  let b = Array.copy a in
  Rng.shuffle r b;
  let sb = Array.copy b in
  Array.sort compare sb;
  Alcotest.(check (array int)) "permutation" a sb;
  Alcotest.(check bool) "actually shuffled" true (a <> b)

(* --- Procset ------------------------------------------------------------- *)

let procset = Alcotest.testable Procset.pp Procset.equal

let test_procset_of_array () =
  let s = Procset.of_array [| 5; 1; 3; 1; 5 |] in
  Alcotest.(check (list int)) "sorted dedup" [ 1; 3; 5 ] (Procset.to_list s);
  check Alcotest.int "size" 3 (Procset.size s)

let test_procset_negative_rejected () =
  Alcotest.check_raises "negative index" (Invalid_argument
    "Procset.of_array: negative index") (fun () ->
      ignore (Procset.of_array [| -1; 2 |]))

let test_procset_range () =
  let s = Procset.range 3 4 in
  Alcotest.(check (list int)) "range" [ 3; 4; 5; 6 ] (Procset.to_list s);
  check procset "empty range" Procset.empty (Procset.range 0 0)

let test_procset_mem_rank_nth () =
  let s = Procset.of_list [ 2; 4; 9 ] in
  Alcotest.(check bool) "mem 4" true (Procset.mem 4 s);
  Alcotest.(check bool) "mem 5" false (Procset.mem 5 s);
  Alcotest.(check (option int)) "rank 9" (Some 2) (Procset.rank 9 s);
  Alcotest.(check (option int)) "rank 3" None (Procset.rank 3 s);
  check Alcotest.int "nth 1" 4 (Procset.nth s 1)

let test_procset_nth_out_of_bounds () =
  let s = Procset.of_list [ 1 ] in
  Alcotest.check_raises "nth oob" (Invalid_argument "Procset.nth") (fun () ->
      ignore (Procset.nth s 1))

let test_procset_set_ops () =
  let a = Procset.of_list [ 1; 2; 3; 4 ] and b = Procset.of_list [ 3; 4; 5 ] in
  Alcotest.(check (list int)) "inter" [ 3; 4 ] (Procset.to_list (Procset.inter a b));
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4; 5 ]
    (Procset.to_list (Procset.union a b));
  Alcotest.(check (list int)) "diff" [ 1; 2 ] (Procset.to_list (Procset.diff a b));
  Alcotest.(check bool) "subset" true
    (Procset.subset (Procset.of_list [ 3 ]) b);
  Alcotest.(check bool) "not subset" false (Procset.subset a b)

let test_procset_first_n () =
  let s = Procset.of_list [ 4; 8; 15; 16 ] in
  Alcotest.(check (list int)) "first 2" [ 4; 8 ]
    (Procset.to_list (Procset.first_n s 2))

let sorted_int_list =
  QCheck.(small_list (int_bound 200))

let qcheck_union_model =
  QCheck.Test.make ~count:200 ~name:"union matches list model"
    QCheck.(pair sorted_int_list sorted_int_list)
    (fun (xs, ys) ->
      let a = Procset.of_list xs and b = Procset.of_list ys in
      let model = List.sort_uniq compare (xs @ ys) in
      Procset.to_list (Procset.union a b) = model)

let qcheck_inter_model =
  QCheck.Test.make ~count:200 ~name:"inter matches list model"
    QCheck.(pair sorted_int_list sorted_int_list)
    (fun (xs, ys) ->
      let a = Procset.of_list xs and b = Procset.of_list ys in
      let model =
        List.sort_uniq compare (List.filter (fun x -> List.mem x ys) xs)
      in
      Procset.to_list (Procset.inter a b) = model)

let qcheck_rank_nth_inverse =
  QCheck.Test.make ~count:200 ~name:"rank and nth are inverse"
    sorted_int_list
    (fun xs ->
      QCheck.assume (xs <> []);
      let s = Procset.of_list xs in
      let ok = ref true in
      for r = 0 to Procset.size s - 1 do
        let p = Procset.nth s r in
        if Procset.rank p s <> Some r then ok := false
      done;
      !ok)

(* --- Pqueue -------------------------------------------------------------- *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.push q p v)
    [ (3., "c"); (1., "a"); (2., "b"); (0.5, "z") ];
  let out = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some (_, v) ->
        out := v :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "min-first" [ "z"; "a"; "b"; "c" ]
    (List.rev !out)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q 1. v) [ 1; 2; 3; 4; 5 ];
  let out = List.init 5 (fun _ -> snd (Option.get (Pqueue.pop q))) in
  Alcotest.(check (list int)) "insertion order for equal priorities"
    [ 1; 2; 3; 4; 5 ] out

let test_pqueue_peek () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty peek" true (Pqueue.peek q = None);
  Pqueue.push q 2. "b";
  Pqueue.push q 1. "a";
  Alcotest.(check bool) "peek min" true (Pqueue.peek q = Some (1., "a"));
  check Alcotest.int "size" 2 (Pqueue.size q)

let test_pqueue_clear () =
  let q = Pqueue.create () in
  Pqueue.push q 1. ();
  Pqueue.clear q;
  Alcotest.(check bool) "empty after clear" true (Pqueue.is_empty q)

let qcheck_pqueue_sorts =
  QCheck.Test.make ~count:200 ~name:"pqueue drains in sorted order"
    QCheck.(list (float_bound_exclusive 1000.))
    (fun prios ->
      let q = Pqueue.create () in
      List.iter (fun p -> Pqueue.push q p p) prios;
      let rec drain acc =
        match Pqueue.pop q with
        | Some (p, _) -> drain (p :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort compare prios)

let test_pqueue_interleaved () =
  let q = Pqueue.create () in
  Pqueue.push q 5. 5;
  Pqueue.push q 1. 1;
  Alcotest.(check bool) "pop 1" true (Pqueue.pop q = Some (1., 1));
  Pqueue.push q 3. 3;
  Pqueue.push q 0.5 0;
  Alcotest.(check bool) "pop 0" true (Pqueue.pop q = Some (0.5, 0));
  Alcotest.(check bool) "pop 3" true (Pqueue.pop q = Some (3., 3));
  Alcotest.(check bool) "pop 5" true (Pqueue.pop q = Some (5., 5));
  Alcotest.(check bool) "empty" true (Pqueue.pop q = None)

(* --- Stats --------------------------------------------------------------- *)

let test_stats_mean () =
  checkf "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  checkf "empty mean" 0. (Stats.mean [||])

let test_stats_median () =
  checkf "odd" 3. (Stats.median [| 5.; 3.; 1. |]);
  checkf "even" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |]);
  let a = [| 3.; 1.; 2. |] in
  ignore (Stats.median a);
  Alcotest.(check (array (float 0.))) "argument untouched" [| 3.; 1.; 2. |] a

let test_stats_stddev () =
  checkf "constant" 0. (Stats.stddev [| 2.; 2.; 2. |]);
  Alcotest.(check (float 1e-6)) "known" (sqrt 2.)
    (Stats.stddev [| 1.; 3.; 1.; 3.; 1.; 3.; 1.; 3. |] *. sqrt 2.)

let test_stats_min_max () =
  let lo, hi = Stats.min_max [| 3.; -1.; 7. |] in
  checkf "min" (-1.) lo;
  checkf "max" 7. hi;
  Alcotest.check_raises "empty" (Invalid_argument "Stats.min_max: empty")
    (fun () -> ignore (Stats.min_max [||]))

let test_stats_fraction_below () =
  checkf "half" 0.5 (Stats.fraction_below [| 0.5; 1.5; 0.7; 2. |] 1.);
  checkf "none" 0. (Stats.fraction_below [||] 1.)

let test_stats_geometric_mean () =
  checkf "gm of 2,8" 4. (Stats.geometric_mean [| 2.; 8. |]);
  checkf "empty" 1. (Stats.geometric_mean [||])

(* --- Units --------------------------------------------------------------- *)

let test_units () =
  checkf "gflops" 2e9 (Units.gflops 2.);
  checkf "gbit" 1.25e8 (Units.gbit_per_s 1.);
  checkf "us" 1e-4 (Units.microseconds 100.);
  checkf "element size" 8. Units.bytes_per_element

let test_units_pp () =
  check Alcotest.string "time us" "50.00us"
    (Format.asprintf "%a" Units.pp_time 50e-6);
  check Alcotest.string "bytes mib" "1.0MiB"
    (Format.asprintf "%a" Units.pp_bytes 1048576.)

let () =
  Alcotest.run "rats_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "uniform bounds" `Quick test_rng_uniform_bounds;
          Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "bool probability" `Quick test_rng_bool_probability;
          Alcotest.test_case "shuffle multiset" `Quick test_rng_shuffle_multiset;
        ] );
      ( "procset",
        [
          Alcotest.test_case "of_array" `Quick test_procset_of_array;
          Alcotest.test_case "negative rejected" `Quick test_procset_negative_rejected;
          Alcotest.test_case "range" `Quick test_procset_range;
          Alcotest.test_case "mem/rank/nth" `Quick test_procset_mem_rank_nth;
          Alcotest.test_case "nth bounds" `Quick test_procset_nth_out_of_bounds;
          Alcotest.test_case "set operations" `Quick test_procset_set_ops;
          Alcotest.test_case "first_n" `Quick test_procset_first_n;
          qcheck qcheck_union_model;
          qcheck qcheck_inter_model;
          qcheck qcheck_rank_nth_inverse;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "order" `Quick test_pqueue_order;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "peek" `Quick test_pqueue_peek;
          Alcotest.test_case "clear" `Quick test_pqueue_clear;
          Alcotest.test_case "interleaved" `Quick test_pqueue_interleaved;
          qcheck qcheck_pqueue_sorts;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "median" `Quick test_stats_median;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "min_max" `Quick test_stats_min_max;
          Alcotest.test_case "fraction_below" `Quick test_stats_fraction_below;
          Alcotest.test_case "geometric mean" `Quick test_stats_geometric_mean;
        ] );
      ( "units",
        [
          Alcotest.test_case "conversions" `Quick test_units;
          Alcotest.test_case "pretty printing" `Quick test_units_pp;
        ] );
    ]
