(* Tests for rats_studio: HTML escaping against hostile labels, page
   self-containment, bench parsing across schema versions, diff delta math
   and comparability warnings, journal torn-tail reading, golden report
   fragments, and the HTTP responder's framing and serve loop. *)

module Studio = Rats_studio
module Html = Rats_studio.Html
module Bench = Rats_studio.Bench
module Diff = Rats_studio.Diff
module Page = Rats_studio.Page
module Live = Rats_studio.Live
module Httpd = Rats_studio.Httpd
module Json = Rats_obs.Json
module Snapshot = Rats_obs.Snapshot
module Journal = Rats_runtime.Journal

let check = Alcotest.check

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let temp_file contents =
  let path = Filename.temp_file "rats_studio_test" ".json" in
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc;
  path

let with_temp contents f =
  let path = temp_file contents in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

(* --- Html ----------------------------------------------------------------- *)

let hostile = "<script>alert(\"pwned\")</script> & 'quotes'\x01\x1b"

let test_escape () =
  let e = Html.escape hostile in
  check Alcotest.bool "no raw <" false (contains e "<");
  check Alcotest.bool "no raw >" false (contains e ">");
  check Alcotest.bool "no raw quote" false (contains e "\"");
  check Alcotest.bool "entities" true (contains e "&lt;script&gt;");
  check Alcotest.bool "amp escaped" true (contains e "&amp;");
  check Alcotest.bool "controls stripped" false (contains e "\x01");
  check Alcotest.bool "esc stripped" false (contains e "\x1b");
  check Alcotest.string "tab/newline become spaces" "a b c"
    (Html.escape "a\tb\nc")

let test_page_well_formed () =
  let page = Html.page ~title:hostile (Html.text_el "p" "body") in
  check Alcotest.bool "doctype" true (contains page "<!DOCTYPE html>");
  check Alcotest.bool "closes html" true (contains page "</html>");
  check Alcotest.bool "title escaped" false (contains page hostile);
  (* Self-containment: nothing in a studio page may fetch. *)
  check Alcotest.bool "no script tag" false (contains page "<script");
  check Alcotest.bool "no link tag" false (contains page "<link");
  check Alcotest.bool "no src attr" false (contains page " src=")

let test_table_highlight () =
  let t =
    Html.table ~highlight:(fun i -> i = 1) ~header:[ "a"; "b" ]
      [ [ "x"; "<y>" ] ]
  in
  check Alcotest.bool "highlighted cell" true
    (contains t "<td class=\"hl\">&lt;y&gt;</td>");
  check Alcotest.bool "plain cell" true (contains t "<td>x</td>")

(* --- Bench fixtures ------------------------------------------------------- *)

(* A v1 document: no schema_version, no scale, no metrics. *)
let v1_doc =
  {|{
  "targets": [
    {"label": "fig2", "wall_s": 10.0, "jobs": 2,
     "cache_hits": 0, "cache_misses": 8,
     "failed": 0, "retried": 0, "resumed": 0}
  ]
}|}

(* A v2 document with scale, embedded metrics, and a second target. *)
let v2_doc ?(scale = "smoke") ?(fig2_wall = 11.0) ?(sim_events = 100) () =
  Printf.sprintf
    {|{
  "schema_version": 2,
  "scale": "%s",
  "jobs": 2,
  "total_wall_s": %g,
  "targets": [
    {"label": "fig2", "wall_s": %g, "jobs": 2,
     "cache_hits": 8, "cache_misses": 0,
     "failed": 0, "retried": 0, "resumed": 0},
    {"label": "workload", "wall_s": 2.0, "jobs": 2,
     "cache_hits": 0, "cache_misses": 0,
     "failed": 0, "retried": 0, "resumed": 0}
  ],
  "metrics": {
    "counters": {"sim.events": %d, "cache.hits": 8},
    "gauges": {},
    "histograms": {
      "cache.read_s": {"count": 2, "sum": 0.5,
        "buckets": [{"le": 0.001, "count": 1}, {"le": "+Inf", "count": 2}]}
    }
  }
}|}
    scale (fig2_wall +. 2.0) fig2_wall sim_events

let load_fixture doc f =
  with_temp doc (fun path ->
      match Bench.load path with
      | Ok b -> f b
      | Error msg -> Alcotest.failf "fixture load: %s" msg)

let test_bench_versions () =
  load_fixture v1_doc (fun b ->
      check Alcotest.int "v1 version" 1 b.Bench.version;
      check Alcotest.bool "v1 no scale" true (b.Bench.scale = None);
      check Alcotest.bool "v1 no metrics" true (b.Bench.metrics = None);
      check Alcotest.int "v1 targets" 1 (List.length b.Bench.targets));
  load_fixture (v2_doc ()) (fun b ->
      check Alcotest.int "v2 version" 2 b.Bench.version;
      check (Alcotest.option Alcotest.string) "v2 scale" (Some "smoke")
        b.Bench.scale;
      check (Alcotest.option Alcotest.int) "v2 counter" (Some 100)
        (Bench.counter b "sim.events");
      match Bench.target b "fig2" with
      | None -> Alcotest.fail "fig2 missing"
      | Some tg -> check Alcotest.int "hits" 8 tg.Bench.cache_hits)

let test_bench_tolerant () =
  (* Alien documents parse to an empty report, never raise. *)
  let b = Bench.of_json ~path:"x" (Json.Obj [ ("targets", Json.Str "?") ]) in
  check Alcotest.int "alien targets" 0 (List.length b.Bench.targets);
  let b = Bench.of_json ~path:"x" Json.Null in
  check Alcotest.int "null doc" 0 (List.length b.Bench.targets)

(* --- Diff ----------------------------------------------------------------- *)

let test_diff_deltas () =
  load_fixture (v2_doc ~fig2_wall:10.0 ()) (fun a ->
      load_fixture (v2_doc ~fig2_wall:12.0 ()) (fun b ->
          let ds = Diff.targets a b in
          match List.find_opt (fun d -> d.Diff.label = "fig2") ds with
          | None -> Alcotest.fail "fig2 delta missing"
          | Some d ->
              (match d.Diff.pct with
              | None -> Alcotest.fail "pct missing"
              | Some pct ->
                  check (Alcotest.float 1e-6) "pct = +20%" 20.0 pct);
              check Alcotest.bool "no warnings on like runs" true
                (Diff.warnings a b = [])))

let test_diff_one_sided () =
  load_fixture v1_doc (fun a ->
      load_fixture (v2_doc ()) (fun b ->
          let ds = Diff.targets a b in
          (* workload exists only in B. *)
          match List.find_opt (fun d -> d.Diff.label = "workload") ds with
          | None -> Alcotest.fail "B-only target dropped"
          | Some d ->
              check Alcotest.bool "A side absent" true (d.Diff.a = None);
              check Alcotest.bool "no pct one-sided" true (d.Diff.pct = None)))

let test_diff_counters () =
  load_fixture (v2_doc ()) (fun a ->
      load_fixture (v2_doc ~sim_events:150 ())
      @@ fun b ->
      let cs = Diff.counters a b in
      check Alcotest.int "one changed counter" 1 (List.length cs);
      let c = List.hd cs in
      check Alcotest.string "name" "sim.events" c.Diff.name;
      check Alcotest.int "delta" 50 c.Diff.delta;
      let all = Diff.counters ~all:true a b in
      check Alcotest.int "all keeps unchanged" 2 (List.length all))

let test_diff_warnings () =
  (* Scale mismatch: the committed-snapshot-is-smoke-scale trap. *)
  load_fixture (v2_doc ~scale:"smoke" ()) (fun a ->
      load_fixture (v2_doc ~scale:"paper" ()) (fun b ->
          let ws = Diff.warnings a b in
          check Alcotest.bool "scale warning" true
            (List.exists (fun w -> contains w "scale mismatch") ws);
          let text = Diff.to_text a b in
          check Alcotest.bool "warning printed" true
            (contains text "scale mismatch")));
  (* Schema mismatch: v1 baseline vs v2 candidate. *)
  load_fixture v1_doc (fun a ->
      load_fixture (v2_doc ()) (fun b ->
          let ws = Diff.warnings a b in
          check Alcotest.bool "schema warning" true
            (List.exists (fun w -> contains w "schema versions differ") ws);
          check Alcotest.bool "cache warmth warning" true
            (List.exists (fun w -> contains w "warm") ws)))

let test_diff_html () =
  load_fixture (v2_doc ~fig2_wall:10.0 ()) (fun a ->
      load_fixture (v2_doc ~fig2_wall:12.0 ()) (fun b ->
          let html = Diff.to_html a b in
          check Alcotest.bool "regression class" true
            (contains html "class=\"regression\"");
          check Alcotest.bool "self-contained" false (contains html "<script")))

(* --- journal tailing ------------------------------------------------------ *)

let journal_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rats_studio_journal_%d_%d" (Unix.getpid ()) !counter)

let test_journal_tail () =
  let dir = journal_dir () in
  let j = Journal.open_ ~dir ~name:"tail-test" ~resume:false () in
  Journal.append j ~key:"k1" "payload one";
  Journal.append j ~key:"k2" "payload\ntwo";
  let path = Journal.path j in
  (* Tail while the writer still has the file open: clean prefix. *)
  (match Journal.read_tail path with
  | Error msg -> Alcotest.failf "tail: %s" msg
  | Ok t ->
      check Alcotest.int "records" 2 (List.length t.Journal.records);
      check Alcotest.bool "not torn" false t.Journal.torn;
      check Alcotest.int "prefix covers file" t.Journal.bytes
        t.Journal.good_bytes;
      check (Alcotest.option Alcotest.string) "payload kept"
        (Some "payload\ntwo")
        (List.assoc_opt "k2" t.Journal.records));
  (* Simulate a torn append: garbage at the end of the file. *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "deadbeef 4 9\nk3incompl";
  close_out oc;
  (match Journal.read_tail path with
  | Error msg -> Alcotest.failf "torn tail: %s" msg
  | Ok t ->
      check Alcotest.int "records survive tear" 2 (List.length t.Journal.records);
      check Alcotest.bool "torn flagged" true t.Journal.torn;
      check Alcotest.bool "good < bytes" true
        (t.Journal.good_bytes < t.Journal.bytes));
  Journal.close j;
  (* Not a journal at all. *)
  with_temp "not a journal\n" (fun p ->
      match Journal.read_tail p with
      | Error msg -> check Alcotest.bool "bad header named" true (contains msg "header")
      | Ok _ -> Alcotest.fail "bad header accepted")

(* --- report page ---------------------------------------------------------- *)

let test_report_golden () =
  load_fixture (v2_doc ()) (fun b ->
      let input =
        {
          (Page.empty ~title:"golden") with
          Page.bench = Some b;
          workloads =
            [
              ( "study.csv",
                "profile,arm,sojourn_p99,jain_fairness\nweb,fifo,0.5,0.91\n" );
            ];
        }
      in
      let html = Page.render input in
      (* Golden fragments: every section the fixture feeds must surface. *)
      List.iter
        (fun frag ->
          check Alcotest.bool ("contains " ^ frag) true (contains html frag))
        [
          "<h2>Run</h2>";
          "<h2>Targets</h2>";
          "<td>fig2</td>";
          "wall time per target";
          "<svg";
          "sim.events";
          "cache.read_s";
          "study.csv";
          "<th class=\"hl\">sojourn_p99</th>";
          "<th class=\"hl\">jain_fairness</th>";
        ];
      check Alcotest.bool "no external fetches" false (contains html "<script"))

let test_report_hostile_labels () =
  let doc =
    {|{"schema_version": 2, "scale": "x",
       "targets": [{"label": "<img src=x onerror=alert(1)>", "wall_s": 1.0,
                    "jobs": 1, "cache_hits": 0, "cache_misses": 0,
                    "failed": 0, "retried": 0, "resumed": 0}]}|}
  in
  load_fixture doc (fun b ->
      let html =
        Page.render { (Page.empty ~title:"t") with Page.bench = Some b }
      in
      check Alcotest.bool "label defanged" false (contains html "<img");
      check Alcotest.bool "label present escaped" true
        (contains html "&lt;img"))

let test_report_empty_inputs () =
  let html = Page.render (Page.empty ~title:"empty") in
  check Alcotest.bool "bench placeholder" true
    (contains html "No bench report");
  check Alcotest.bool "metrics placeholder" true
    (contains html "No metrics snapshot")

(* --- live page ------------------------------------------------------------ *)

let test_live_render () =
  let missing = Live.make ~journal:"/nonexistent/journal" ~title:"live" () in
  let html = Live.render missing in
  check Alcotest.bool "placeholder for missing journal" true
    (contains html "No journal");
  check Alcotest.bool "meta refresh" true (contains html "http-equiv=\"refresh\"");
  with_temp (v2_doc ()) (fun path ->
      let src = Live.make ~bench:path ~title:"live" () in
      let html = Live.render src in
      check Alcotest.bool "bench table served" true (contains html "fig2"))

(* --- httpd ---------------------------------------------------------------- *)

let test_response_framing () =
  let r = Httpd.response "<p>hi</p>" in
  check Alcotest.bool "status line" true
    (contains r "HTTP/1.1 200 OK\r\n");
  check Alcotest.bool "length" true (contains r "Content-Length: 9\r\n");
  check Alcotest.bool "close" true (contains r "Connection: close\r\n");
  check Alcotest.bool "body after blank line" true (contains r "\r\n\r\n<p>hi</p>");
  let r = Httpd.response ~status:(404, "Not Found") "" in
  check Alcotest.bool "custom status" true (contains r "404 Not Found")

let test_serve_loop () =
  (* Serve exactly two requests on an ephemeral port from a thread; the
     client side runs in the test thread. *)
  let port = ref 0 in
  let m = Mutex.create () and c = Condition.create () in
  let server =
    Thread.create
      (fun () ->
        Httpd.serve ~port:0 ~max_requests:2
          ~on_listen:(fun p ->
            Mutex.lock m;
            port := p;
            Condition.signal c;
            Mutex.unlock m)
          (fun path -> Html.page ~title:"srv" (Html.text_el "p" path)))
      ()
  in
  Mutex.lock m;
  while !port = 0 do
    Condition.wait c m
  done;
  let p = !port in
  Mutex.unlock m;
  let fetch path =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd
          (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", p));
        let req = Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\n\r\n" path in
        ignore (Unix.write_substring fd req 0 (String.length req));
        let buf = Buffer.create 1024 in
        let chunk = Bytes.create 1024 in
        let rec go () =
          match Unix.read fd chunk 0 1024 with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              go ()
        in
        go ();
        Buffer.contents buf)
  in
  let r1 = fetch "/" in
  check Alcotest.bool "served html" true (contains r1 "<p>/</p>");
  let r2 = fetch "/again" in
  check Alcotest.bool "path handed to handler" true (contains r2 "/again");
  (* max_requests reached: serve returns and the thread joins. *)
  Thread.join server

(* --- suite ---------------------------------------------------------------- *)

let () =
  Alcotest.run "studio"
    [
      ( "html",
        [
          Alcotest.test_case "escape hostile strings" `Quick test_escape;
          Alcotest.test_case "page well-formed + self-contained" `Quick
            test_page_well_formed;
          Alcotest.test_case "table column highlight" `Quick
            test_table_highlight;
        ] );
      ( "bench",
        [
          Alcotest.test_case "v1 and v2 schemas load" `Quick
            test_bench_versions;
          Alcotest.test_case "alien documents tolerated" `Quick
            test_bench_tolerant;
        ] );
      ( "diff",
        [
          Alcotest.test_case "wall-time delta math" `Quick test_diff_deltas;
          Alcotest.test_case "one-sided targets kept" `Quick
            test_diff_one_sided;
          Alcotest.test_case "counter deltas" `Quick test_diff_counters;
          Alcotest.test_case "comparability warnings" `Quick
            test_diff_warnings;
          Alcotest.test_case "html diff highlights" `Quick test_diff_html;
        ] );
      ( "journal",
        [ Alcotest.test_case "read_tail torn + clean" `Quick test_journal_tail ] );
      ( "report",
        [
          Alcotest.test_case "golden fragments" `Quick test_report_golden;
          Alcotest.test_case "hostile labels escaped" `Quick
            test_report_hostile_labels;
          Alcotest.test_case "empty inputs placeholder" `Quick
            test_report_empty_inputs;
        ] );
      ( "live",
        [ Alcotest.test_case "render with/without files" `Quick test_live_render ] );
      ( "httpd",
        [
          Alcotest.test_case "response framing" `Quick test_response_framing;
          Alcotest.test_case "serve loop end-to-end" `Quick test_serve_loop;
        ] );
    ]
