(* Tests for rats_core: problem bundling, CPA/HCPA allocation, mapping,
   RATS strategies, schedules and simulated evaluation. *)

module Problem = Rats_core.Problem
module Cpa = Rats_core.Cpa
module Hcpa = Rats_core.Hcpa
module Mapping = Rats_core.Mapping
module Schedule = Rats_core.Schedule
module Rats = Rats_core.Rats
module Evaluate = Rats_core.Evaluate
module Algorithms = Rats_core.Algorithms
module Dag = Rats_dag.Dag
module Task = Rats_dag.Task
module Procset = Rats_util.Procset
module Cluster = Rats_platform.Cluster
module Suite = Rats_daggen.Suite
module Shape = Rats_daggen.Shape

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

let mk_task ?(m = 1e6) ?(a = 100.) ?(alpha = 0.1) id name =
  Task.make ~id ~name ~data_elements:m ~flop:(a *. m) ~alpha

(* A 4-task chain with data-carrying edges. *)
let chain_dag () =
  let b = Dag.Builder.create () in
  List.iteri (fun i n -> Dag.Builder.add_task b (mk_task i n))
    [ "a"; "b"; "c"; "d" ];
  List.iter (fun (s, d) -> Dag.Builder.add_edge b ~src:s ~dst:d ~bytes:8e6)
    [ (0, 1); (1, 2); (2, 3) ];
  Dag.Builder.build b

(* Fork: entry -> k parallel tasks -> exit (virtual entry/exit added). *)
let fork_dag k =
  let b = Dag.Builder.create () in
  for i = 0 to k - 1 do
    Dag.Builder.add_task b (mk_task i (Printf.sprintf "w%d" i))
  done;
  Dag.ensure_single_entry_exit (Dag.Builder.build b)

let chain_problem () = Problem.make ~dag:(chain_dag ()) ~cluster:Cluster.chti

(* Representative suite configurations for property-style checks. *)
let sample_configs =
  [
    ( { Suite.spec =
          Suite.Layered
            { n_tasks = 25;
              shape = Shape.make ~width:0.5 ~regularity:0.8 ~density:0.5 () };
        sample = 0 },
      Cluster.grillon );
    ( { Suite.spec =
          Suite.Irregular
            { n_tasks = 30;
              shape =
                Shape.make ~width:0.5 ~regularity:0.2 ~density:0.8 ~jump:2 () };
        sample = 1 },
      Cluster.chti );
    ( { Suite.spec = Suite.Fft { k = 4 }; sample = 2 }, Cluster.grelon );
    ( { Suite.spec = Suite.Strassen; sample = 3 }, Cluster.grillon );
  ]

let sample_problems () =
  List.map
    (fun (config, cluster) ->
      (Suite.name config, Problem.make ~dag:(Suite.generate config) ~cluster))
    sample_configs

let all_strategies =
  [
    Rats.Baseline;
    Rats.Delta Rats.naive_delta;
    Rats.Delta { Rats.mindelta = 0.; maxdelta = 1. };
    Rats.Timecost Rats.naive_timecost;
    Rats.Timecost { Rats.minrho = 0.8; packing = false };
  ]

(* --- Problem -------------------------------------------------------------- *)

let test_problem_validation () =
  let dag = fork_dag 3 in
  ignore (Problem.make ~dag ~cluster:Cluster.chti);
  let b = Dag.Builder.create () in
  Dag.Builder.add_task b (mk_task 0 "a");
  Dag.Builder.add_task b (mk_task 1 "b");
  let two_entries = Dag.Builder.build b in
  Alcotest.check_raises "two entries rejected"
    (Invalid_argument
       "Problem.make: DAG must have a single entry and exit (use \
        Dag.ensure_single_entry_exit)") (fun () ->
      ignore (Problem.make ~dag:two_entries ~cluster:Cluster.chti))

let test_problem_costs () =
  let p = chain_problem () in
  let speed = Cluster.chti.Cluster.speed in
  checkf "task time" (1e8 /. speed *. (0.1 +. (0.9 /. 2.)))
    (Problem.task_time p 0 ~procs:2);
  checkf "work = p x time"
    (2. *. Problem.task_time p 0 ~procs:2)
    (Problem.task_work p 0 ~procs:2);
  checkf "edge estimate" (1e-4 +. (8e6 /. 1.25e8)) (Problem.edge_cost_estimate p 8e6);
  checkf "zero bytes free" 0. (Problem.edge_cost_estimate p 0.)

let test_problem_timing_table () =
  (* Problem serves T(t,p)/ω(t,p) from its memoized table; the values must
     be bit-identical to the direct Amdahl computation, inside the table's
     range and beyond it (direct fallback). *)
  let p = chain_problem () in
  let speed = Cluster.chti.Cluster.speed in
  let ok = ref true in
  for i = 0 to Problem.n_tasks p - 1 do
    let task = Dag.task (Problem.dag p) i in
    for procs = 1 to Problem.n_procs p + 2 do
      if
        Problem.task_time p i ~procs <> Task.time task ~speed ~procs
        || Problem.task_work p i ~procs <> Task.work task ~speed ~procs
      then ok := false
    done
  done;
  Alcotest.(check bool) "bit-identical to Task.time/work" true !ok

let test_problem_entry_exit () =
  let p = chain_problem () in
  check Alcotest.int "entry" 0 (Problem.entry p);
  check Alcotest.int "exit" 3 (Problem.exit_task p);
  Alcotest.(check bool) "chain tasks not virtual" false (Problem.is_virtual p 1)

(* --- CPA / HCPA allocation ------------------------------------------------ *)

let test_cpa_bounds () =
  List.iter
    (fun (name, p) ->
      let alloc = Cpa.allocate p in
      Array.iteri
        (fun i np ->
          Alcotest.(check bool) (name ^ ": np in [1, P]") true
            (np >= 1 && np <= Problem.n_procs p);
          if Problem.is_virtual p i then
            check Alcotest.int (name ^ ": virtual stays at 1") 1 np)
        alloc)
    (sample_problems ())

let test_cpa_cap_respected () =
  List.iter
    (fun (name, p) ->
      let alloc = Cpa.allocate_with p ~max_per_task:3 in
      Array.iter
        (fun np -> Alcotest.(check bool) (name ^ ": capped") true (np <= 3))
        alloc)
    (sample_problems ())

let test_cpa_allocates_on_chain () =
  (* A chain's critical path is everything; C-inf starts above W, so CPA
     must grow allocations beyond 1. *)
  let p = chain_problem () in
  let alloc = Cpa.allocate p in
  Alcotest.(check bool) "grew beyond 1" true (Array.exists (fun n -> n > 1) alloc)

let test_cpa_stop_condition () =
  List.iter
    (fun (name, p) ->
      let alloc = Cpa.allocate p in
      let c_inf =
        (* computation-only, as used by the allocation loop *)
        let bl =
          Dag.bottom_levels (Problem.dag p)
            ~task_cost:(fun i -> Problem.task_time p i ~procs:alloc.(i))
            ~edge_cost:(fun _ _ _ -> 0.)
        in
        bl.(Problem.entry p)
      in
      let w = Cpa.average_area p ~alloc ~area_procs:(Problem.n_procs p) in
      let all_capped = Array.for_all (fun np -> np >= Problem.n_procs p) alloc in
      Alcotest.(check bool)
        (name ^ ": stopped because C-inf <= W or saturated") true
        (c_inf <= w +. 1e-9 || not all_capped))
    (sample_problems ())

let test_cpa_validation () =
  Alcotest.check_raises "bad cap"
    (Invalid_argument "Cpa.allocate_with: max_per_task < 1") (fun () ->
      ignore (Cpa.allocate_with (chain_problem ()) ~max_per_task:0))

let test_hcpa_chain_parallelism () =
  let p = chain_problem () in
  Alcotest.(check (float 1e-6)) "chain has parallelism 1" 1.
    (Hcpa.average_parallelism p);
  check Alcotest.int "cap is full cluster" (Problem.n_procs p) (Hcpa.max_per_task p)

let test_hcpa_fork_parallelism () =
  (* k identical independent tasks: average parallelism approximately k. *)
  let p = Problem.make ~dag:(fork_dag 8) ~cluster:Cluster.grillon in
  let a = Hcpa.average_parallelism p in
  Alcotest.(check bool) "close to k" true (a > 7.5 && a <= 8.5);
  let cap = Hcpa.max_per_task p in
  check Alcotest.int "fair share" (int_of_float (ceil (47. /. a))) cap

let test_hcpa_alloc_obeys_cap () =
  List.iter
    (fun (name, p) ->
      let cap = Hcpa.max_per_task p in
      Array.iter
        (fun np -> Alcotest.(check bool) (name ^ ": within cap") true (np <= cap))
        (Hcpa.allocate p))
    (sample_problems ())

(* --- Mapping -------------------------------------------------------------- *)

let test_mapping_earliest_set () =
  let p = chain_problem () in
  let st = Mapping.create p ~alloc:[| 2; 2; 2; 2 |] in
  Alcotest.(check (list int)) "lowest indices when all idle" [ 0; 1 ]
    (Procset.to_list (Mapping.earliest_set st 2))

let test_mapping_commit_updates_avail () =
  let p = chain_problem () in
  let st = Mapping.create p ~alloc:[| 2; 2; 2; 2 |] in
  let e0 = Mapping.commit st 0 (Procset.of_list [ 0; 1 ]) in
  checkf "starts at zero" 0. e0.Schedule.est_start;
  (* Processors 0,1 are now busy until e0 finishes: the earliest pair must
     avoid them. *)
  Alcotest.(check (list int)) "avoids busy procs" [ 2; 3 ]
    (Procset.to_list (Mapping.earliest_set st 2))

let test_mapping_estimate_respects_data () =
  let p = chain_problem () in
  let st = Mapping.create p ~alloc:[| 2; 2; 2; 2 |] in
  let e0 = Mapping.commit st 0 (Procset.of_list [ 0; 1 ]) in
  (* Same set: no redistribution, can start right at the predecessor's end. *)
  let start_same, _ = Mapping.estimate st 1 (Procset.of_list [ 0; 1 ]) in
  checkf "same set starts at pred finish" e0.Schedule.est_finish start_same;
  (* Disjoint set: start delayed by the redistribution estimate. *)
  let start_other, _ = Mapping.estimate st 1 (Procset.of_list [ 2; 3 ]) in
  Alcotest.(check bool) "redistribution delays start" true
    (start_other > e0.Schedule.est_finish)

let test_mapping_from_pred_set () =
  let p = chain_problem () in
  let st = Mapping.create p ~alloc:[| 2; 2; 2; 2 |] in
  let pred = Procset.of_list [ 4; 5; 6 ] in
  Alcotest.(check (list int)) "same size reuses" [ 4; 5; 6 ]
    (Procset.to_list (Mapping.from_pred_set st ~pred_procs:pred 3));
  check Alcotest.int "shrinks" 2
    (Procset.size (Mapping.from_pred_set st ~pred_procs:pred 2));
  let grown = Mapping.from_pred_set st ~pred_procs:pred 5 in
  check Alcotest.int "grows" 5 (Procset.size grown);
  Alcotest.(check bool) "keeps the anchor" true (Procset.subset pred grown)

let test_mapping_unmapped_errors () =
  let p = chain_problem () in
  let st = Mapping.create p ~alloc:[| 1; 1; 1; 1 |] in
  Alcotest.check_raises "entry of unmapped"
    (Invalid_argument "Mapping.entry: task not mapped") (fun () ->
      ignore (Mapping.entry st 0));
  Alcotest.check_raises "estimate needs mapped preds"
    (Invalid_argument "Mapping.estimate: predecessor not mapped") (fun () ->
      ignore (Mapping.estimate st 1 (Procset.of_list [ 0 ])));
  Alcotest.check_raises "incomplete schedule"
    (Invalid_argument "Mapping.to_schedule: task 0 unmapped") (fun () ->
      ignore (Mapping.to_schedule st))

let test_mapping_create_validation () =
  let p = chain_problem () in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Mapping.create: allocation size mismatch") (fun () ->
      ignore (Mapping.create p ~alloc:[| 1; 1 |]))

(* --- Schedule ------------------------------------------------------------- *)

let test_schedule_accessors () =
  let p = chain_problem () in
  let s = Rats.schedule p Rats.Baseline in
  check Alcotest.int "n_tasks" 4 (Schedule.n_tasks s);
  let exit_entry = Schedule.entry s 3 in
  checkf "makespan is exit finish" exit_entry.Schedule.est_finish
    (Schedule.makespan_estimated s);
  let alloc = Schedule.allocation s in
  Array.iteri
    (fun i np -> check Alcotest.int "allocation matches procs" np
        (Procset.size (Schedule.entry s i).Schedule.procs))
    alloc

let test_schedule_total_work () =
  let p = chain_problem () in
  let s = Rats.schedule p Rats.Baseline in
  let expected =
    Array.fold_left
      (fun acc e ->
        acc
        +. Problem.task_work p e.Schedule.task
             ~procs:(Procset.size e.Schedule.procs))
      0. (Schedule.entries s)
  in
  checkf "work sums task works" expected (Schedule.total_work s)

let test_schedule_validation () =
  let p = chain_problem () in
  let s = Rats.schedule p Rats.Baseline in
  let entries = Schedule.entries s in
  (* Tamper: shift one task before its predecessor finishes. *)
  let bad = Array.copy entries in
  let e = bad.(1) in
  let d = Problem.task_time p 1 ~procs:(Procset.size e.Schedule.procs) in
  bad.(1) <- { e with Schedule.est_start = 0.; est_finish = d };
  Alcotest.check_raises "precedence violation"
    (Invalid_argument "Schedule.make: precedence violated in estimates")
    (fun () -> ignore (Schedule.make p bad));
  (* Tamper: finish inconsistent with the Amdahl duration. *)
  let bad2 = Array.copy entries in
  bad2.(3) <- { bad2.(3) with Schedule.est_finish = bad2.(3).Schedule.est_finish +. 1. };
  Alcotest.check_raises "duration mismatch"
    (Invalid_argument "Schedule.make: finish inconsistent with Amdahl duration")
    (fun () -> ignore (Schedule.make p bad2))

(* --- RATS strategies -------------------------------------------------------- *)

let test_rats_param_validation () =
  let p = chain_problem () in
  Alcotest.check_raises "mindelta positive"
    (Invalid_argument "Rats: mindelta outside [-1, 0]") (fun () ->
      ignore (Rats.schedule p (Rats.Delta { Rats.mindelta = 0.1; maxdelta = 0.5 })));
  Alcotest.check_raises "minrho zero"
    (Invalid_argument "Rats: minrho outside (0, 1]") (fun () ->
      ignore (Rats.schedule p (Rats.Timecost { Rats.minrho = 0.; packing = true })))

let test_rats_strategy_names () =
  Alcotest.(check string) "baseline" "hcpa" (Rats.strategy_name Rats.Baseline);
  Alcotest.(check string) "delta" "delta"
    (Rats.strategy_name (Rats.Delta Rats.naive_delta));
  Alcotest.(check string) "tc" "time-cost"
    (Rats.strategy_name (Rats.Timecost Rats.naive_timecost))

let test_baseline_keeps_allocation () =
  List.iter
    (fun (name, p) ->
      let alloc = Hcpa.allocate p in
      let s = Rats.schedule ~alloc p Rats.Baseline in
      Array.iteri
        (fun i np ->
          check Alcotest.int (name ^ ": baseline preserves np") np
            (Procset.size (Schedule.entry s i).Schedule.procs))
        alloc)
    (sample_problems ())

(* Every deviation from the HCPA allocation must be the exact processor set
   of a predecessor, within the delta bounds. *)
let test_delta_bounds_invariant () =
  let params = { Rats.mindelta = -0.5; maxdelta = 0.5 } in
  List.iter
    (fun (name, p) ->
      let alloc = Hcpa.allocate p in
      let s = Rats.schedule ~alloc p (Rats.Delta params) in
      let dag = Problem.dag p in
      Array.iteri
        (fun i np ->
          let procs = (Schedule.entry s i).Schedule.procs in
          let sz = Procset.size procs in
          if sz <> np then begin
            let matches_pred =
              List.exists
                (fun (pred, _) ->
                  Procset.equal procs (Schedule.entry s pred).Schedule.procs)
                (Dag.preds dag i)
            in
            Alcotest.(check bool) (name ^ ": reused a predecessor set") true
              matches_pred;
            let d = sz - np in
            let fnp = float_of_int np in
            Alcotest.(check bool) (name ^ ": within delta bounds") true
              (d <= int_of_float ((params.Rats.maxdelta *. fnp) +. 1e-9)
              && d >= -int_of_float ((-.params.Rats.mindelta *. fnp) +. 1e-9))
          end)
        alloc)
    (sample_problems ())

let test_timecost_no_packing_never_shrinks () =
  let params = { Rats.minrho = 0.5; packing = false } in
  List.iter
    (fun (name, p) ->
      let alloc = Hcpa.allocate p in
      let s = Rats.schedule ~alloc p (Rats.Timecost params) in
      Array.iteri
        (fun i np ->
          Alcotest.(check bool) (name ^ ": no shrink without packing") true
            (Procset.size (Schedule.entry s i).Schedule.procs >= np
            || Problem.is_virtual p i))
        alloc)
    (sample_problems ())

let test_timecost_stretch_respects_rho () =
  let params = { Rats.minrho = 0.7; packing = false } in
  List.iter
    (fun (name, p) ->
      let alloc = Hcpa.allocate p in
      let s = Rats.schedule ~alloc p (Rats.Timecost params) in
      Array.iteri
        (fun i np ->
          let sz = Procset.size (Schedule.entry s i).Schedule.procs in
          if sz > np then begin
            let rho =
              Problem.task_work p i ~procs:np /. Problem.task_work p i ~procs:sz
            in
            Alcotest.(check bool) (name ^ ": rho above threshold") true
              (rho >= params.Rats.minrho -. 1e-9)
          end)
        alloc)
    (sample_problems ())

let test_delta_zero_params_is_baseline () =
  (* mindelta = maxdelta = 0 forbids every allocation modification (the
     ready-list order may still differ, so sizes are the invariant). *)
  List.iter
    (fun (name, p) ->
      let alloc = Hcpa.allocate p in
      let s =
        Rats.schedule ~alloc p (Rats.Delta { Rats.mindelta = 0.; maxdelta = 0. })
      in
      Array.iteri
        (fun i np ->
          check Alcotest.int (name ^ ": allocation untouched") np
            (Procset.size (Schedule.entry s i).Schedule.procs))
        alloc)
    (sample_problems ())

let test_rats_deterministic () =
  List.iter
    (fun (name, p) ->
      List.iter
        (fun strategy ->
          let s1 = Rats.schedule p strategy and s2 = Rats.schedule p strategy in
          checkf (name ^ ": deterministic") (Schedule.makespan_estimated s1)
            (Schedule.makespan_estimated s2))
        all_strategies)
    (sample_problems ())

(* --- Evaluate ---------------------------------------------------------------- *)

let overlapping a b = a.(0) < b.(1) -. 1e-9 && b.(0) < a.(1) -. 1e-9

let test_evaluate_invariants () =
  List.iter
    (fun (name, p) ->
      List.iter
        (fun strategy ->
          let s = Rats.schedule p strategy in
          let r = Evaluate.run s in
          let n = Schedule.n_tasks s in
          (* All tasks ran, in finite time. *)
          for i = 0 to n - 1 do
            Alcotest.(check bool) (name ^ ": finite times") true
              (Float.is_finite r.Evaluate.starts.(i)
              && Float.is_finite r.Evaluate.finishes.(i)
              && r.Evaluate.starts.(i) >= 0.
              && r.Evaluate.finishes.(i) >= r.Evaluate.starts.(i))
          done;
          (* Makespan is the last finish. *)
          checkf (name ^ ": makespan = max finish")
            (Array.fold_left Float.max 0. r.Evaluate.finishes)
            r.Evaluate.makespan;
          (* Precedence: a successor starts no earlier than its predecessor
             finishes. *)
          let dag = Problem.dag p in
          for i = 0 to n - 1 do
            List.iter
              (fun (succ, _) ->
                Alcotest.(check bool) (name ^ ": precedence") true
                  (r.Evaluate.starts.(succ) >= r.Evaluate.finishes.(i) -. 1e-9))
              (Dag.succs dag i)
          done;
          (* Exclusivity: no two tasks overlap on a processor. *)
          let per_proc = Hashtbl.create 64 in
          for i = 0 to n - 1 do
            Procset.iter
              (fun q ->
                let span = [| r.Evaluate.starts.(i); r.Evaluate.finishes.(i) |] in
                let prev = Hashtbl.find_opt per_proc q |> Option.value ~default:[] in
                List.iter
                  (fun other ->
                    Alcotest.(check bool) (name ^ ": exclusive processors") false
                      (overlapping span other))
                  prev;
                Hashtbl.replace per_proc q (span :: prev))
              (Schedule.entry s i).Schedule.procs
          done)
        [ Rats.Baseline; Rats.Timecost Rats.naive_timecost ])
    (sample_problems ())

let test_evaluate_deterministic () =
  let _, p = List.hd (sample_problems ()) in
  let s = Rats.schedule p (Rats.Delta Rats.naive_delta) in
  let r1 = Evaluate.run s and r2 = Evaluate.run s in
  checkf "same makespan" r1.Evaluate.makespan r2.Evaluate.makespan;
  checkf "same traffic" r1.Evaluate.remote_bytes r2.Evaluate.remote_bytes

let test_evaluate_chain_same_set_no_traffic () =
  (* Force the whole chain onto one identical processor set: every
     redistribution is local, so no bytes cross the network. *)
  let p = chain_problem () in
  let st = Mapping.create p ~alloc:[| 2; 2; 2; 2 |] in
  let set = Procset.of_list [ 0; 1 ] in
  for i = 0 to 3 do
    ignore (Mapping.commit st i set)
  done;
  let r = Evaluate.run (Mapping.to_schedule st) in
  checkf "no remote traffic" 0. r.Evaluate.remote_bytes;
  check Alcotest.int "all redistributions avoided" 3 r.Evaluate.avoided;
  (* And the makespan is exactly the sum of the four execution times. *)
  let expected =
    List.fold_left (fun acc i -> acc +. Problem.task_time p i ~procs:2) 0.
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (float 1e-6)) "pure compute chain" expected r.Evaluate.makespan

let test_evaluate_counts_redistributions () =
  (* Two disjoint sets back to back: one paid redistribution per edge. *)
  let p = chain_problem () in
  let st = Mapping.create p ~alloc:[| 2; 2; 2; 2 |] in
  ignore (Mapping.commit st 0 (Procset.of_list [ 0; 1 ]));
  ignore (Mapping.commit st 1 (Procset.of_list [ 2; 3 ]));
  ignore (Mapping.commit st 2 (Procset.of_list [ 0; 1 ]));
  ignore (Mapping.commit st 3 (Procset.of_list [ 2; 3 ]));
  let r = Evaluate.run (Mapping.to_schedule st) in
  check Alcotest.int "three paid" 3 r.Evaluate.redistributions;
  check Alcotest.int "none avoided" 0 r.Evaluate.avoided;
  checkf "all bytes remote" (3. *. 8e6) r.Evaluate.remote_bytes

let test_evaluate_slower_than_estimate_under_contention () =
  (* The analytic estimates ignore contention, so simulation can only be
     later or equal on communication-heavy graphs. *)
  List.iter
    (fun (name, p) ->
      let s = Rats.schedule p Rats.Baseline in
      let r = Evaluate.run s in
      Alcotest.(check bool) (name ^ ": sim >= 0.5 x estimate") true
        (r.Evaluate.makespan >= 0.5 *. Schedule.makespan_estimated s))
    (sample_problems ())

(* --- Algorithms --------------------------------------------------------------- *)

let test_algorithms_consistency () =
  let _, p = List.hd (sample_problems ()) in
  let o = Algorithms.run p (Rats.Timecost Rats.naive_timecost) in
  checkf "work accessor" (Schedule.total_work o.Algorithms.schedule)
    (Algorithms.work o);
  checkf "makespan accessor" o.Algorithms.simulated.Evaluate.makespan
    (Algorithms.makespan o)

let test_algorithms_shared_alloc () =
  let _, p = List.hd (sample_problems ()) in
  let alloc = Hcpa.allocate p in
  let o1 = Algorithms.run ~alloc p Rats.Baseline in
  let o2 = Algorithms.run ~alloc p Rats.Baseline in
  checkf "same allocation, same result" (Algorithms.makespan o1)
    (Algorithms.makespan o2)


(* --- MCPA ------------------------------------------------------------------- *)

module Mcpa = Rats_core.Mcpa

let test_mcpa_level_caps () =
  (* fork of 8 tasks on chti (20 procs): virtual entry/exit levels have
     width 1 (cap 20), the worker level width 8 (cap 2). *)
  let p = Problem.make ~dag:(fork_dag 8) ~cluster:Cluster.chti in
  let caps = Mcpa.level_caps p in
  let workers = List.init 8 Fun.id in
  List.iter (fun i -> check Alcotest.int "worker cap" 2 caps.(i)) workers

let test_mcpa_alloc_fits_levels () =
  List.iter
    (fun (name, p) ->
      let caps = Mcpa.level_caps p in
      Array.iteri
        (fun i np ->
          Alcotest.(check bool) (name ^ ": below level cap") true (np <= caps.(i)))
        (Mcpa.allocate p))
    (sample_problems ())

let test_mcpa_levels_fit_concurrently () =
  (* The defining MCPA property: the sum of allocations in a level never
     exceeds the machine. *)
  List.iter
    (fun (name, p) ->
      let alloc = Mcpa.allocate p in
      let groups = Rats_dag.Dag.level_groups (Problem.dag p) in
      Array.iter
        (fun tasks ->
          let total = List.fold_left (fun acc i -> acc + alloc.(i)) 0 tasks in
          Alcotest.(check bool) (name ^ ": level fits machine") true
            (total <= Problem.n_procs p
            || List.length tasks > Problem.n_procs p))
        groups)
    (sample_problems ())

(* --- Reference allocations ---------------------------------------------------- *)

module Reference = Rats_core.Reference

let test_reference_data_parallel () =
  let p = chain_problem () in
  let s = Reference.data_parallel p in
  Array.iter
    (fun e ->
      check Alcotest.int "whole machine" (Problem.n_procs p)
        (Procset.size e.Schedule.procs))
    (Schedule.entries s);
  (* Everything runs on the same set: the simulation pays no redistribution. *)
  let r = Evaluate.run s in
  checkf "no traffic" 0. r.Evaluate.remote_bytes

let test_reference_task_parallel () =
  let p = chain_problem () in
  let s = Reference.task_parallel p in
  Array.iter
    (fun e -> check Alcotest.int "one proc" 1 (Procset.size e.Schedule.procs))
    (Schedule.entries s)

let test_reference_mixed_beats_corners_sometimes () =
  (* On a wide fork, pure data parallelism serializes the workers and pure
     task parallelism foregoes all speedup: mixed should beat at least one
     of them in every sample (usually both). *)
  List.iter
    (fun (name, p) ->
      let mixed =
        (Evaluate.run (Rats.schedule p (Rats.Timecost Rats.naive_timecost)))
          .Evaluate.makespan
      in
      let dp = (Evaluate.run (Reference.data_parallel p)).Evaluate.makespan in
      let tp = (Evaluate.run (Reference.task_parallel p)).Evaluate.makespan in
      Alcotest.(check bool) (name ^ ": mixed not dominated") true
        (mixed <= dp +. 1e-9 || mixed <= tp +. 1e-9))
    (sample_problems ())

(* --- Evaluate ablation flags --------------------------------------------------- *)

let test_evaluate_strict_replay_not_faster () =
  (* Scheduling anomalies allow strict order to win on a specific instance
     (different overlap of redistributions), but on aggregate head-of-line
     blocking must not help. *)
  let ratios =
    List.map
      (fun (_, p) ->
        let s = Rats.schedule p Rats.Baseline in
        let wc = (Evaluate.run ~work_conserving:true s).Evaluate.makespan in
        let strict = (Evaluate.run ~work_conserving:false s).Evaluate.makespan in
        strict /. wc)
      (sample_problems ())
  in
  let mean = Rats_util.Stats.mean (Array.of_list ratios) in
  Alcotest.(check bool) "strict not faster on average" true (mean >= 0.98);
  List.iter
    (fun r ->
      Alcotest.(check bool) "ratio in sane range" true (r > 0.5 && r < 20.))
    ratios

let test_evaluate_strict_deadlock_free () =
  (* Strict replay must still complete every task. *)
  List.iter
    (fun (name, p) ->
      List.iter
        (fun strategy ->
          let s = Rats.schedule p strategy in
          let r = Evaluate.run ~work_conserving:false s in
          Alcotest.(check bool) (name ^ ": completes") true
            (Float.is_finite r.Evaluate.makespan))
        [ Rats.Baseline; Rats.Timecost Rats.naive_timecost ])
    (sample_problems ())

let test_evaluate_placement_ablation () =
  (* Disabling the placement optimization can only increase (or keep) the
     remote traffic. *)
  List.iter
    (fun (name, p) ->
      let s = Rats.schedule p (Rats.Timecost Rats.naive_timecost) in
      let opt = Evaluate.run ~optimize_placement:true s in
      let nat = Evaluate.run ~optimize_placement:false s in
      Alcotest.(check bool) (name ^ ": optimized moves no more bytes") true
        (opt.Evaluate.remote_bytes <= nat.Evaluate.remote_bytes +. 1e-6))
    (sample_problems ())


let test_evaluate_spans () =
  (* Chain mapped on alternating sets: one span per edge, consistent with
     the task timeline and the remote byte count. *)
  let p = chain_problem () in
  let st = Mapping.create p ~alloc:[| 2; 2; 2; 2 |] in
  ignore (Mapping.commit st 0 (Procset.of_list [ 0; 1 ]));
  ignore (Mapping.commit st 1 (Procset.of_list [ 2; 3 ]));
  ignore (Mapping.commit st 2 (Procset.of_list [ 0; 1 ]));
  ignore (Mapping.commit st 3 (Procset.of_list [ 2; 3 ]));
  let r = Evaluate.run (Mapping.to_schedule st) in
  check Alcotest.int "three spans" 3 (List.length r.Evaluate.spans);
  List.iter
    (fun (s : Evaluate.span) ->
      checkf "starts at producer finish" r.Evaluate.finishes.(s.Evaluate.src_task)
        s.Evaluate.span_start;
      Alcotest.(check bool) "arrives before consumer starts" true
        (s.Evaluate.span_finish <= r.Evaluate.starts.(s.Evaluate.dst_task) +. 1e-9);
      checkf "full dataset remote" 8e6 s.Evaluate.span_bytes)
    r.Evaluate.spans;
  let total = List.fold_left (fun acc (s : Evaluate.span) -> acc +. s.Evaluate.span_bytes) 0. r.Evaluate.spans in
  checkf "spans account for all remote bytes" r.Evaluate.remote_bytes total


let test_schedule_stats () =
  List.iter
    (fun (name, p) ->
      let alloc = Hcpa.allocate p in
      (* Baseline never changes anything. *)
      let _, st = Rats.schedule_with_stats ~alloc p Rats.Baseline in
      check Alcotest.int (name ^ ": baseline stretches none") 0 st.Rats.stretched;
      check Alcotest.int (name ^ ": baseline packs none") 0 st.Rats.packed;
      check Alcotest.int (name ^ ": everything accounted") (Problem.n_tasks p)
        (st.Rats.stretched + st.Rats.packed + st.Rats.unchanged);
      (* Stretch-only delta never packs. *)
      let _, st =
        Rats.schedule_with_stats ~alloc p
          (Rats.Delta { Rats.mindelta = 0.; maxdelta = 1. })
      in
      check Alcotest.int (name ^ ": no packs when mindelta = 0") 0 st.Rats.packed;
      (* Stats agree with the schedule's final allocation. *)
      let s, st = Rats.schedule_with_stats ~alloc p (Rats.Delta Rats.naive_delta) in
      let grew = ref 0 and shrank = ref 0 in
      Array.iteri
        (fun i np ->
          let sz = Procset.size (Schedule.entry s i).Schedule.procs in
          if sz > np then incr grew else if sz < np then incr shrank)
        alloc;
      check Alcotest.int (name ^ ": stretched = grown sets") !grew st.Rats.stretched;
      check Alcotest.int (name ^ ": packed = shrunk sets") !shrank st.Rats.packed)
    (sample_problems ())

let () =
  Alcotest.run "rats_core"
    [
      ( "problem",
        [
          Alcotest.test_case "validation" `Quick test_problem_validation;
          Alcotest.test_case "costs" `Quick test_problem_costs;
          Alcotest.test_case "timing table" `Quick test_problem_timing_table;
          Alcotest.test_case "entry/exit" `Quick test_problem_entry_exit;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "cpa bounds" `Quick test_cpa_bounds;
          Alcotest.test_case "cpa cap" `Quick test_cpa_cap_respected;
          Alcotest.test_case "cpa grows chains" `Quick test_cpa_allocates_on_chain;
          Alcotest.test_case "cpa stop condition" `Quick test_cpa_stop_condition;
          Alcotest.test_case "cpa validation" `Quick test_cpa_validation;
          Alcotest.test_case "hcpa chain" `Quick test_hcpa_chain_parallelism;
          Alcotest.test_case "hcpa fork" `Quick test_hcpa_fork_parallelism;
          Alcotest.test_case "hcpa cap obeyed" `Quick test_hcpa_alloc_obeys_cap;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "earliest set" `Quick test_mapping_earliest_set;
          Alcotest.test_case "commit avail" `Quick test_mapping_commit_updates_avail;
          Alcotest.test_case "estimate data arrival" `Quick
            test_mapping_estimate_respects_data;
          Alcotest.test_case "from pred set" `Quick test_mapping_from_pred_set;
          Alcotest.test_case "unmapped errors" `Quick test_mapping_unmapped_errors;
          Alcotest.test_case "create validation" `Quick
            test_mapping_create_validation;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "accessors" `Quick test_schedule_accessors;
          Alcotest.test_case "total work" `Quick test_schedule_total_work;
          Alcotest.test_case "validation" `Quick test_schedule_validation;
        ] );
      ( "rats",
        [
          Alcotest.test_case "parameter validation" `Quick
            test_rats_param_validation;
          Alcotest.test_case "strategy names" `Quick test_rats_strategy_names;
          Alcotest.test_case "baseline keeps allocation" `Quick
            test_baseline_keeps_allocation;
          Alcotest.test_case "delta bounds invariant" `Quick
            test_delta_bounds_invariant;
          Alcotest.test_case "no packing never shrinks" `Quick
            test_timecost_no_packing_never_shrinks;
          Alcotest.test_case "stretch respects rho" `Quick
            test_timecost_stretch_respects_rho;
          Alcotest.test_case "zero delta = baseline" `Quick
            test_delta_zero_params_is_baseline;
          Alcotest.test_case "deterministic" `Quick test_rats_deterministic;
        ] );
      ( "evaluate",
        [
          Alcotest.test_case "invariants on samples" `Slow test_evaluate_invariants;
          Alcotest.test_case "deterministic" `Quick test_evaluate_deterministic;
          Alcotest.test_case "same-set chain is free" `Quick
            test_evaluate_chain_same_set_no_traffic;
          Alcotest.test_case "counts redistributions" `Quick
            test_evaluate_counts_redistributions;
          Alcotest.test_case "contention slows" `Quick
            test_evaluate_slower_than_estimate_under_contention;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "consistency" `Quick test_algorithms_consistency;
          Alcotest.test_case "shared allocation" `Quick test_algorithms_shared_alloc;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "mcpa level caps" `Quick test_mcpa_level_caps;
          Alcotest.test_case "mcpa within caps" `Quick test_mcpa_alloc_fits_levels;
          Alcotest.test_case "mcpa concurrent levels" `Quick
            test_mcpa_levels_fit_concurrently;
          Alcotest.test_case "pure data parallel" `Quick
            test_reference_data_parallel;
          Alcotest.test_case "pure task parallel" `Quick
            test_reference_task_parallel;
          Alcotest.test_case "mixed vs corners" `Slow
            test_reference_mixed_beats_corners_sometimes;
          Alcotest.test_case "strict replay slower" `Slow
            test_evaluate_strict_replay_not_faster;
          Alcotest.test_case "strict replay completes" `Quick
            test_evaluate_strict_deadlock_free;
          Alcotest.test_case "placement ablation" `Quick
            test_evaluate_placement_ablation;
          Alcotest.test_case "redistribution spans" `Quick test_evaluate_spans;
          Alcotest.test_case "decision statistics" `Quick test_schedule_stats;
        ] );
    ]
