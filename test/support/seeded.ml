let default_seed = 20080929
(* The Cluster 2008 paper's conference date — arbitrary but memorable;
   every qcheck property in the suite is known green on this seed. *)

let seed_value =
  lazy
    (match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n -> n
        | None -> default_seed)
    | None -> default_seed)

let seed () = Lazy.force seed_value

let announced = ref false

let rand () =
  if not !announced then begin
    announced := true;
    Printf.eprintf "qcheck seed: %d (override with QCHECK_SEED)\n%!" (seed ())
  end;
  Random.State.make [| seed () |]

let to_alcotest ?speed_level t =
  QCheck_alcotest.to_alcotest ?speed_level ~rand:(rand ()) t
