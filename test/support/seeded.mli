(** Deterministic qcheck runs for the whole suite.

    [QCheck_alcotest.to_alcotest] self-initializes its RNG when
    [QCHECK_SEED] is unset, so a property that only fails on some seeds
    (the historical [test_redist] "placement 4" flake) reproduces by
    luck. Every test file builds its qcheck cases through {!to_alcotest}
    instead, which pins the seed to {!default_seed} while preserving the
    override: set [QCHECK_SEED=<int>] to replay any other seed on
    demand. The seed in effect is announced once on stderr. *)

val default_seed : int

val seed : unit -> int
(** [QCHECK_SEED] when set to an integer, {!default_seed} otherwise. *)

val to_alcotest :
  ?speed_level:Alcotest.speed_level -> QCheck2.Test.t -> unit Alcotest.test_case
(** Drop-in replacement for [QCheck_alcotest.to_alcotest], with the
    RNG pinned to {!seed}. *)
