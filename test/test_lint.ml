(* Tests for rats_lint: every fixture violation is reported with the
   right file:line (golden output), suppressions work and are audited,
   the JSON report parses back, and — the actual point of the tool —
   the repo's own tree lints clean. *)

module Engine = Rats_lint.Engine
module Rules = Rats_lint.Rules
module Finding = Rats_lint.Finding
module Allow = Rats_lint.Allow
module Json = Rats_obs.Json

let check = Alcotest.check

(* dune runtest runs in _build/default/test where the (source_tree) dep
   lands; dune exec from the repo root sees it under test/. *)
let fixture_root =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures"
  else "test/lint_fixtures"

let fixture_report = lazy (Engine.lint_tree ~dirs:[ "lib" ] ~root:fixture_root ())

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The repo root is the nearest ancestor holding dune-project; under dune
   runtest that is _build/default, which mirrors every source file. *)
let repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let rule_ids findings =
  List.sort_uniq String.compare
    (List.map (fun f -> f.Finding.rule_id) findings)

let test_golden () =
  let expected = read_file (Filename.concat fixture_root "expected.txt") in
  check Alcotest.string "fixture findings (golden)" expected
    (Engine.render (Lazy.force fixture_report))

let test_every_rule_fires () =
  let r = Lazy.force fixture_report in
  check
    Alcotest.(list string)
    "one unsuppressed positive per rule"
    [ "A001"; "D001"; "D002"; "D003"; "D004"; "E001"; "H001"; "H002" ]
    (rule_ids r.findings)

let test_every_rule_suppressible () =
  let r = Lazy.force fixture_report in
  check
    Alcotest.(list string)
    "one suppressed case per catalogue rule"
    [ "D001"; "D002"; "D003"; "D004"; "H001"; "H002" ]
    (rule_ids r.suppressed)

let test_unjustified_allow_is_listed () =
  let r = Lazy.force fixture_report in
  let unjustified =
    List.filter (fun (a : Allow.t) -> a.reason = None) r.allows
  in
  check Alcotest.int "exactly the A001 fixture lacks a reason" 1
    (List.length unjustified);
  (* ... and the A001 finding anchors to that allow's line. *)
  let a = List.hd unjustified in
  check Alcotest.bool "A001 finding on the allow's line" true
    (List.exists
       (fun f ->
         f.Finding.rule_id = "A001" && f.Finding.file = a.Allow.file
         && f.Finding.line = a.Allow.line)
       r.findings)

let test_json_parse_back () =
  let r = Lazy.force fixture_report in
  match Json.parse (Json.to_string (Engine.to_json r)) with
  | Error e -> Alcotest.failf "report JSON does not parse: %s" e
  | Ok j ->
      let len key =
        match Option.bind (Json.member key j) Json.to_list with
        | Some l -> List.length l
        | None -> Alcotest.failf "missing %s array" key
      in
      check Alcotest.int "findings round-trip" (List.length r.findings)
        (len "findings");
      check Alcotest.int "suppressed round-trip" (List.length r.suppressed)
        (len "suppressed");
      check Alcotest.int "allows round-trip" (List.length r.allows)
        (len "allows");
      check
        Alcotest.(option int)
        "files_scanned round-trip"
        (Some (List.length r.files))
        (Option.bind (Json.member "files_scanned" j) Json.to_int)

let test_catalogue_sorted_and_scoped () =
  let ids = List.map (fun r -> r.Rats_lint.Rule.id) Rules.catalogue in
  check Alcotest.(list string) "catalogue is id-sorted"
    (List.sort String.compare ids) ids;
  (* D002 must not fire inside the observability layer itself. *)
  let d002 = Option.get (Rules.by_id "D002") in
  check Alcotest.bool "D002 exempts lib/obs" false
    (Rats_lint.Rule.applies d002 ~path:"lib/obs/instr.ml");
  check Alcotest.bool "D002 covers lib/runtime" true
    (Rats_lint.Rule.applies d002 ~path:"lib/runtime/progress.ml")

let test_repo_tree_clean () =
  match repo_root () with
  | None -> Alcotest.fail "cannot locate repo root (no dune-project upward)"
  | Some root ->
      let r = Engine.lint_tree ~root () in
      check Alcotest.bool "scanned a real tree" true
        (List.length r.files > 50);
      check
        Alcotest.(list string)
        "repo tree lints clean" []
        (List.map Finding.to_human r.findings)

let test_repo_allows_justified () =
  match repo_root () with
  | None -> Alcotest.fail "cannot locate repo root (no dune-project upward)"
  | Some root ->
      let r = Engine.lint_tree ~root () in
      check
        Alcotest.(list string)
        "every repo suppression carries a justification" []
        (List.filter_map
           (fun (a : Allow.t) ->
             if a.reason = None then Some (Allow.to_human a) else None)
           r.allows)

let () =
  Alcotest.run "rats_lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "golden findings" `Quick test_golden;
          Alcotest.test_case "every rule fires" `Quick test_every_rule_fires;
          Alcotest.test_case "every rule suppressible" `Quick
            test_every_rule_suppressible;
          Alcotest.test_case "unjustified allow reported" `Quick
            test_unjustified_allow_is_listed;
          Alcotest.test_case "json parse-back" `Quick test_json_parse_back;
        ] );
      ( "catalogue",
        [
          Alcotest.test_case "sorted and scoped" `Quick
            test_catalogue_sorted_and_scoped;
        ] );
      ( "repo",
        [
          Alcotest.test_case "tree lints clean" `Quick test_repo_tree_clean;
          Alcotest.test_case "allows justified" `Quick
            test_repo_allows_justified;
        ] );
    ]
