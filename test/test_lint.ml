(* Tests for rats_lint: every fixture violation is reported with the
   right file:line (golden output), suppressions work and are audited,
   the JSON report parses back, and — the actual point of the tool —
   the repo's own tree lints clean. *)

module Engine = Rats_lint.Engine
module Rules = Rats_lint.Rules
module Finding = Rats_lint.Finding
module Allow = Rats_lint.Allow
module Baseline = Rats_lint.Baseline
module Callgraph = Rats_lint.Callgraph
module Json = Rats_obs.Json

let check = Alcotest.check

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* dune runtest runs in _build/default/test where the (source_tree) dep
   lands; dune exec from the repo root sees it under test/. *)
let fixture_root =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures"
  else "test/lint_fixtures"

let fixture_report = lazy (Engine.lint_tree ~dirs:[ "lib" ] ~root:fixture_root ())

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The repo root is the nearest ancestor holding dune-project; under dune
   runtest that is _build/default, which mirrors every source file. *)
let repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let rule_ids findings =
  List.sort_uniq String.compare
    (List.map (fun f -> f.Finding.rule_id) findings)

let test_golden () =
  let expected = read_file (Filename.concat fixture_root "expected.txt") in
  check Alcotest.string "fixture findings (golden)" expected
    (Engine.render (Lazy.force fixture_report))

let test_every_rule_fires () =
  let r = Lazy.force fixture_report in
  check
    Alcotest.(list string)
    "one unsuppressed positive per rule"
    [ "A001"; "A002"; "D001"; "D002"; "D003"; "D004"; "D005"; "E001"; "H001";
      "H002"; "R001"; "R002" ]
    (rule_ids r.findings)

let test_every_rule_suppressible () =
  let r = Lazy.force fixture_report in
  check
    Alcotest.(list string)
    "one suppressed case per catalogue rule"
    [ "A002"; "D001"; "D002"; "D003"; "D004"; "D005"; "H001"; "H002"; "R001";
      "R002" ]
    (rule_ids r.suppressed)

let test_unjustified_allow_is_listed () =
  let r = Lazy.force fixture_report in
  let unjustified =
    List.filter (fun (a : Allow.t) -> a.reason = None) r.allows
  in
  check Alcotest.int "exactly the A001 fixture lacks a reason" 1
    (List.length unjustified);
  (* ... and the A001 finding anchors to that allow's line. *)
  let a = List.hd unjustified in
  check Alcotest.bool "A001 finding on the allow's line" true
    (List.exists
       (fun f ->
         f.Finding.rule_id = "A001" && f.Finding.file = a.Allow.file
         && f.Finding.line = a.Allow.line)
       r.findings)

let test_json_parse_back () =
  let r = Lazy.force fixture_report in
  match Json.parse (Json.to_string (Engine.to_json r)) with
  | Error e -> Alcotest.failf "report JSON does not parse: %s" e
  | Ok j ->
      let len key =
        match Option.bind (Json.member key j) Json.to_list with
        | Some l -> List.length l
        | None -> Alcotest.failf "missing %s array" key
      in
      check Alcotest.int "findings round-trip" (List.length r.findings)
        (len "findings");
      check Alcotest.int "suppressed round-trip" (List.length r.suppressed)
        (len "suppressed");
      check Alcotest.int "allows round-trip" (List.length r.allows)
        (len "allows");
      check
        Alcotest.(option int)
        "files_scanned round-trip"
        (Some (List.length r.files))
        (Option.bind (Json.member "files_scanned" j) Json.to_int)

let test_catalogue_sorted_and_scoped () =
  let ids = List.map (fun r -> r.Rats_lint.Rule.id) Rules.catalogue in
  check Alcotest.(list string) "catalogue is id-sorted"
    (List.sort String.compare ids) ids;
  (* D002 must not fire inside the observability layer itself. *)
  let d002 = Option.get (Rules.by_id "D002") in
  check Alcotest.bool "D002 exempts lib/obs" false
    (Rats_lint.Rule.applies d002 ~path:"lib/obs/instr.ml");
  check Alcotest.bool "D002 covers lib/runtime" true
    (Rats_lint.Rule.applies d002 ~path:"lib/runtime/progress.ml")

(* D005's whole point: the per-file scan of the frontier file is clean;
   only the whole-program pass sees the two-modules-away entropy draw,
   and its finding carries the full call path. *)
let test_d005_needs_whole_program () =
  let per_file = Engine.lint_file ~root:fixture_root "lib/sim/d005_sampler.ml" in
  check
    Alcotest.(list string)
    "per-file scan of the D005 fixture is clean" []
    (List.map Finding.to_human (per_file.findings @ per_file.suppressed));
  let r = Lazy.force fixture_report in
  match List.filter (fun f -> f.Finding.rule_id = "D005") r.findings with
  | [ f ] ->
      check Alcotest.string "frontier file" "lib/sim/d005_sampler.ml" f.file;
      check Alcotest.bool "path walks both intermediate hops" true
        (contains ~sub:"Sampling.sample → Entropy_pool.draw → Random.float"
           f.message);
      check Alcotest.bool "hop count rendered" true
        (contains ~sub:"(3 hops)" f.message)
  | fs -> Alcotest.failf "expected exactly one D005 finding, got %d" (List.length fs)

let test_a002_stale_allow () =
  let r = Lazy.force fixture_report in
  check Alcotest.bool "stale allow reported" true
    (List.exists
       (fun f ->
         f.Finding.rule_id = "A002"
         && f.Finding.file = "lib/exp/a002_stale.ml"
         && f.Finding.line = 6)
       r.findings);
  (* An allow naming A002 itself may keep a deliberately stale entry. *)
  check Alcotest.bool "self-allowed staleness lands in suppressed" true
    (List.exists
       (fun f ->
         f.Finding.rule_id = "A002"
         && f.Finding.file = "lib/exp/a002_stale.ml"
         && f.Finding.line = 8)
       r.suppressed)

let test_baseline_roundtrip () =
  let r = Lazy.force fixture_report in
  let path = Filename.temp_file "rats_lint_baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Baseline.save path r.findings;
      let keys = Baseline.load path in
      check Alcotest.int "one key per finding" (List.length r.findings)
        (List.length keys);
      let d = Baseline.diff ~baseline:keys r.findings in
      check Alcotest.int "round-trip: nothing fresh" 0 (List.length d.fresh);
      check Alcotest.(list string) "round-trip: nothing stale" [] d.stale;
      (* Dropping a stored entry makes that finding fresh again... *)
      let d = Baseline.diff ~baseline:(List.tl keys) r.findings in
      check Alcotest.int "removed entry turns fresh" 1 (List.length d.fresh);
      (* ...and an entry nothing fires for is reported stale. *)
      let bogus = "x.ml|D001|long gone" in
      let d = Baseline.diff ~baseline:(bogus :: keys) r.findings in
      check Alcotest.(list string) "dead entry reported stale" [ bogus ] d.stale)

let test_cache_invalidation () =
  let dir = Filename.temp_dir "rats_lint_cache" "" in
  let file = Filename.concat dir "probe.ml" in
  let write src =
    let oc = open_out file in
    output_string oc src;
    close_out oc
  in
  let cache = Filename.concat dir "summaries.bin" in
  let stats () =
    match (Engine.lint_tree ~dirs:[] ~cache ~root:dir ()).Engine.cache_stats with
    | Some s -> s
    | None -> Alcotest.fail "tree run must report cache stats"
  in
  write "let x = 1\n";
  check Alcotest.(pair int int) "cold run summarizes" (0, 1) (stats ());
  check Alcotest.(pair int int) "warm run hits" (1, 0) (stats ());
  write "let x = 2\n";
  check Alcotest.(pair int int) "edit invalidates the entry" (0, 1) (stats ())

let test_graph_dot () =
  let r = Lazy.force fixture_report in
  match r.Engine.graph with
  | None -> Alcotest.fail "tree run must carry the call graph"
  | Some g ->
      let dot = Callgraph.to_dot g in
      check Alcotest.bool "DOT header" true
        (contains ~sub:"digraph rats_callgraph" dot);
      check Alcotest.bool "cross-module taint edge present" true
        (contains ~sub:"\"Rats_sim.D005_sampler\" -> \"Rats_util.Sampling\""
           dot)

let test_repo_tree_clean () =
  match repo_root () with
  | None -> Alcotest.fail "cannot locate repo root (no dune-project upward)"
  | Some root ->
      let r = Engine.lint_tree ~root () in
      check Alcotest.bool "scanned a real tree" true
        (List.length r.files > 50);
      check
        Alcotest.(list string)
        "repo tree lints clean" []
        (List.map Finding.to_human r.findings)

let test_repo_allows_justified () =
  match repo_root () with
  | None -> Alcotest.fail "cannot locate repo root (no dune-project upward)"
  | Some root ->
      let r = Engine.lint_tree ~root () in
      check
        Alcotest.(list string)
        "every repo suppression carries a justification" []
        (List.filter_map
           (fun (a : Allow.t) ->
             if a.reason = None then Some (Allow.to_human a) else None)
           r.allows)

(* The committed CI baseline must stay empty: the ratchet exists for
   landing new rules on a dirty tree, and the tree is clean. *)
let test_repo_baseline_empty () =
  match repo_root () with
  | None -> Alcotest.fail "cannot locate repo root (no dune-project upward)"
  | Some root ->
      let path = Filename.concat root "tools/lint_baseline.txt" in
      check Alcotest.bool "baseline file committed" true (Sys.file_exists path);
      check
        Alcotest.(list string)
        "zero baselined findings" [] (Baseline.load path)

let () =
  Alcotest.run "rats_lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "golden findings" `Quick test_golden;
          Alcotest.test_case "every rule fires" `Quick test_every_rule_fires;
          Alcotest.test_case "every rule suppressible" `Quick
            test_every_rule_suppressible;
          Alcotest.test_case "unjustified allow reported" `Quick
            test_unjustified_allow_is_listed;
          Alcotest.test_case "json parse-back" `Quick test_json_parse_back;
        ] );
      ( "catalogue",
        [
          Alcotest.test_case "sorted and scoped" `Quick
            test_catalogue_sorted_and_scoped;
        ] );
      ( "whole-program",
        [
          Alcotest.test_case "d005 needs the whole program" `Quick
            test_d005_needs_whole_program;
          Alcotest.test_case "a002 stale allow" `Quick test_a002_stale_allow;
          Alcotest.test_case "baseline round-trip" `Quick
            test_baseline_roundtrip;
          Alcotest.test_case "summary cache invalidation" `Quick
            test_cache_invalidation;
          Alcotest.test_case "call-graph dot" `Quick test_graph_dot;
        ] );
      ( "repo",
        [
          Alcotest.test_case "tree lints clean" `Quick test_repo_tree_clean;
          Alcotest.test_case "allows justified" `Quick
            test_repo_allows_justified;
          Alcotest.test_case "baseline empty" `Quick test_repo_baseline_empty;
        ] );
    ]
