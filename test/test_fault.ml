(* Tests for the fault-tolerance layer: deterministic fault injection,
   retry/timeout, failure capture in sweeps, strict mode, the write-ahead
   journal and crash-resumable execution. *)

module Suite = Rats_daggen.Suite
module Cluster = Rats_platform.Cluster
module Runner = Rats_exp.Runner
module Fault = Rats_runtime.Fault
module Retry = Rats_runtime.Retry
module Journal = Rats_runtime.Journal
module Exec = Rats_runtime.Exec

let check = Alcotest.check

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rats_fault_test_%d_%d" (Unix.getpid ()) !counter)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f))
      (Sys.readdir path) (* lint: allow D003 — deletion order is irrelevant *);
    Sys.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let fault_of_spec spec =
  match Fault.parse spec with
  | Ok t -> t
  | Error reason -> Alcotest.failf "spec %S rejected: %s" spec reason

(* --- fault spec parsing --------------------------------------------------- *)

let test_fault_parse () =
  let ok spec = ignore (fault_of_spec spec) in
  ok "crash=0.1";
  ok "seed=42, crash=0.1, delay=0.02, corrupt=0.2, delay_s=0.1";
  ok "crash@worker=0.5,corrupt@cache.write=1";
  let err spec =
    match Fault.parse spec with
    | Ok _ -> Alcotest.failf "spec %S unexpectedly accepted" spec
    | Error _ -> ()
  in
  err "crash=2";
  err "crash=-0.1";
  err "crash=abc";
  err "seed=1.5";
  err "frobnicate=0.5";
  err "banana";
  err "explode@worker=0.5"

let test_fault_spec_roundtrip () =
  let t = fault_of_spec "seed=7,crash=0.25,corrupt@cache.write=1" in
  let t' = fault_of_spec (Fault.spec t) in
  check Alcotest.string "spec round-trips" (Fault.spec t) (Fault.spec t')

(* --- decision determinism ------------------------------------------------- *)

let decisions t ~site n =
  List.init n (fun i ->
      Fault.fires t Fault.Crash ~site ~key:(Printf.sprintf "task-%d" i))

let test_fault_determinism () =
  let t = fault_of_spec "seed=1,crash=0.5" in
  let a = decisions t ~site:"worker" 200 in
  let b = decisions t ~site:"worker" 200 in
  check Alcotest.(list bool) "same decisions on re-evaluation" a b;
  let hits = List.length (List.filter Fun.id a) in
  check Alcotest.bool
    (Printf.sprintf "plausible rate (%d/200 at p=0.5)" hits)
    true
    (hits > 50 && hits < 150);
  let other = decisions (fault_of_spec "seed=2,crash=0.5") ~site:"worker" 200 in
  check Alcotest.bool "different seed, different decisions" true (a <> other);
  (* Site overrides: probability 0 globally means nothing fires elsewhere. *)
  let scoped = fault_of_spec "seed=1,crash@worker=1" in
  check Alcotest.bool "override site always fires" true
    (Fault.fires scoped Fault.Crash ~site:"worker" ~key:"k");
  check Alcotest.bool "other site never fires" false
    (Fault.fires scoped Fault.Crash ~site:"cache.write" ~key:"k")

(* --- retry ----------------------------------------------------------------- *)

let test_retry_recovers () =
  let policy = { Retry.default with retries = 3; backoff_s = 0. } in
  let outcome =
    Retry.run ~policy ~name:"flaky" (fun ~attempt ->
        if attempt < 3 then failwith "transient" else attempt)
  in
  check Alcotest.int "attempts" 3 outcome.Retry.attempts;
  match outcome.Retry.value with
  | Ok v -> check Alcotest.int "value from third attempt" 3 v
  | Error f -> Alcotest.failf "unexpected failure: %s" (Retry.failure_to_string f)

let test_retry_exhausts () =
  let policy = { Retry.default with retries = 2; backoff_s = 0. } in
  let calls = ref 0 in
  let outcome =
    Retry.run ~policy ~name:"doomed" (fun ~attempt:_ ->
        incr calls;
        failwith "permanent")
  in
  check Alcotest.int "three attempts made" 3 !calls;
  match outcome.Retry.value with
  | Error (Retry.Crashed e) ->
      check Alcotest.int "attempts recorded" 3 e.Retry.attempts;
      check Alcotest.bool "message kept" true
        (String.length e.Retry.message > 0)
  | Error f -> Alcotest.failf "wrong failure: %s" (Retry.failure_to_string f)
  | Ok _ -> Alcotest.fail "expected failure"

let test_retry_timeout () =
  let policy = { Retry.default with timeout_s = Some 0.05 } in
  let outcome =
    Retry.run ~policy ~name:"hang" (fun ~attempt:_ ->
        Thread.delay 2.0;
        0)
  in
  (match outcome.Retry.value with
  | Error (Retry.Timed_out { timeout_s; attempts }) ->
      check (Alcotest.float 1e-9) "timeout recorded" 0.05 timeout_s;
      check Alcotest.int "single attempt" 1 attempts
  | Error f -> Alcotest.failf "wrong failure: %s" (Retry.failure_to_string f)
  | Ok _ -> Alcotest.fail "expected timeout");
  (* A fast task under the same policy is unaffected. *)
  let ok = Retry.run ~policy ~name:"fast" (fun ~attempt:_ -> 41 + 1) in
  check Alcotest.bool "fast task succeeds under timeout" true
    (ok.Retry.value = Ok 42)

(* --- failure capture in sweeps -------------------------------------------- *)

let crashy_exec ?(strict = false) ?(retries = 0) () =
  let fault = fault_of_spec "seed=3,crash@worker=0.4" in
  let retry = { Retry.default with retries; backoff_s = 0. } in
  Exec.make ~jobs:1 ~fault ~retry ~strict ()

let test_crash_capture () =
  let input = List.init 50 Fun.id in
  let exec = crashy_exec () in
  let slots =
    Exec.map exec ~name:(fun i -> Printf.sprintf "task-%d" i) ~f:succ input
  in
  check Alcotest.int "one slot per task" 50 (List.length slots);
  let oks = Exec.oks slots and failures = Exec.failures slots in
  check Alcotest.bool "some tasks failed" true (failures <> []);
  check Alcotest.bool "some tasks survived" true (oks <> []);
  check Alcotest.int "partition covers the sweep" 50
    (List.length oks + List.length failures);
  check Alcotest.int "failure counter matches"
    (List.length failures)
    (Atomic.get exec.Exec.stats.Exec.failed);
  (* Surviving slots hold the right values, in order. *)
  List.iter2
    (fun i slot ->
      match slot with
      | Ok v -> check Alcotest.int (Printf.sprintf "value of task %d" i) (i + 1) v
      | Error (name, f) ->
          check Alcotest.string "failure names its task"
            (Printf.sprintf "task-%d" i)
            name;
          check Alcotest.bool "failure is the injected crash" true
            (let s = Retry.failure_to_string f in
             let has_sub sub =
               let n = String.length s and m = String.length sub in
               let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
               go 0
             in
             has_sub "Injected"))
    input slots;
  (* Same spec, fresh context: the identical failure partition. *)
  let again =
    Exec.map (crashy_exec ())
      ~name:(fun i -> Printf.sprintf "task-%d" i)
      ~f:succ input
  in
  check Alcotest.(list bool) "deterministic failure partition"
    (List.map Result.is_ok slots)
    (List.map Result.is_ok again)

let test_crash_retry_recovers_some () =
  let input = List.init 50 Fun.id in
  let no_retry =
    Exec.failures
      (Exec.map (crashy_exec ())
         ~name:(fun i -> Printf.sprintf "task-%d" i)
         ~f:succ input)
  in
  let with_retry_exec = crashy_exec ~retries:3 () in
  let with_retry =
    Exec.failures
      (Exec.map with_retry_exec
         ~name:(fun i -> Printf.sprintf "task-%d" i)
         ~f:succ input)
  in
  (* The attempt number is part of the fault key, so retries are fresh
     draws: at p=0.4 and 3 retries nearly every task recovers. *)
  check Alcotest.bool
    (Printf.sprintf "retries recover tasks (%d -> %d failures)"
       (List.length no_retry) (List.length with_retry))
    true
    (List.length with_retry < List.length no_retry);
  check Alcotest.bool "retries were counted" true
    (Atomic.get with_retry_exec.Exec.stats.Exec.retried > 0)

let test_strict_fails_fast () =
  let exec = crashy_exec ~strict:true () in
  let raised =
    try
      ignore
        (Exec.map exec
           ~name:(fun i -> Printf.sprintf "task-%d" i)
           ~f:succ (List.init 50 Fun.id));
      false
    with Exec.Task_failed (_, _) -> true
  in
  check Alcotest.bool "strict mode raises Task_failed" true raised

let test_no_fault_no_change () =
  let input = List.init 30 Fun.id in
  let exec = Exec.make ~jobs:1 () in
  let slots = Exec.map exec ~name:(fun _ -> "t") ~f:succ input in
  check Alcotest.(list int) "all Ok, plain map semantics"
    (List.map succ input) (Exec.oks slots);
  check Alcotest.int "no failures" 0 (Atomic.get exec.Exec.stats.Exec.failed)

(* --- journal --------------------------------------------------------------- *)

let test_journal_roundtrip () =
  with_dir (fun dir ->
      let j = Journal.open_ ~dir ~name:"t" ~resume:false () in
      let payload_a = "line one\nline two \xff\x00 binary" in
      Journal.append j ~key:"a" payload_a;
      Journal.append j ~key:"b" "second";
      check Alcotest.int "appended" 2 (Journal.appended j);
      Journal.close j;
      let j2 = Journal.open_ ~dir ~name:"t" ~resume:true () in
      check Alcotest.int "loaded" 2 (Journal.loaded j2);
      check Alcotest.(option string) "payload a" (Some payload_a)
        (Journal.find j2 "a");
      check Alcotest.(option string) "payload b" (Some "second")
        (Journal.find j2 "b");
      check Alcotest.(option string) "unknown key" None (Journal.find j2 "c");
      Journal.close j2;
      (* resume:false discards the previous run. *)
      let j3 = Journal.open_ ~dir ~name:"t" ~resume:false () in
      check Alcotest.int "discarded" 0 (Journal.loaded j3);
      check Alcotest.(option string) "discarded entry" None (Journal.find j3 "a");
      Journal.close j3)

let test_journal_torn_tail () =
  with_dir (fun dir ->
      let j = Journal.open_ ~dir ~name:"torn" ~resume:false () in
      Journal.append j ~key:"a" "kept";
      Journal.append j ~key:"b" "also kept";
      let path = Journal.path j in
      Journal.close j;
      (* Simulate a crash mid-append: a half-written record at the tail. *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "0123456789abcdef 4 100\nxyz";
      close_out oc;
      let j2 = Journal.open_ ~dir ~name:"torn" ~resume:true () in
      check Alcotest.int "well-formed prefix survives" 2 (Journal.loaded j2);
      check Alcotest.(option string) "entry before the tear" (Some "kept")
        (Journal.find j2 "a");
      (* The tear was truncated away; appending works and round-trips. *)
      Journal.append j2 ~key:"c" "after recovery";
      Journal.close j2;
      let j3 = Journal.open_ ~dir ~name:"torn" ~resume:true () in
      check Alcotest.int "recovered + appended" 3 (Journal.loaded j3);
      check Alcotest.(option string) "post-recovery entry"
        (Some "after recovery") (Journal.find j3 "c");
      Journal.close j3)

let test_journal_injected_append_failure () =
  with_dir (fun dir ->
      (* An injected append failure behaves like a real I/O error: the
         journal disables itself (service keeps running, resume guarantee
         degrades) instead of raising into the caller. *)
      let fault = fault_of_spec "seed=1,crash@journal.append=1" in
      let j = Journal.open_ ~dir ~fault ~name:"inj" ~resume:false () in
      check Alcotest.bool "writable when opened" true (Journal.writable j);
      Journal.append j ~key:"a" "lost";
      check Alcotest.bool "disabled after injected failure" false
        (Journal.writable j);
      (* Subsequent appends are silent no-ops on a disabled journal. *)
      Journal.append j ~key:"b" "also lost";
      check Alcotest.int "nothing recorded" 0 (Journal.appended j);
      Journal.close j;
      (* An unfaulted journal in the same dir is unaffected. *)
      let j2 = Journal.open_ ~dir ~name:"inj" ~resume:true () in
      check Alcotest.int "nothing to resume" 0 (Journal.loaded j2);
      check Alcotest.bool "fresh journal writable" true (Journal.writable j2);
      Journal.append j2 ~key:"c" "kept";
      check Alcotest.int "append works" 1 (Journal.appended j2);
      Journal.close j2)

(* --- crash + resume -------------------------------------------------------- *)

(* A sweep killed mid-run leaves a journal of completed configurations;
   resuming replays exactly those and re-executes only the rest, with
   bit-identical output. Simulated by journaling a prefix of the work. *)
let test_resume_bit_identical () =
  with_dir (fun dir ->
      let keys = List.init 10 (fun i -> Printf.sprintf "key-%d" i) in
      let compute k = sqrt (float_of_int (Hashtbl.hash k land 0xFFFF)) in
      let encode = Printf.sprintf "%h" and decode = float_of_string_opt in
      let run_keyed exec k =
        Exec.keyed exec ~name:k ~key:k ~encode ~decode (fun () -> compute k)
      in
      (* Clean reference run, no persistence. *)
      let reference =
        List.map (fun k -> (run_keyed (Exec.make ~jobs:1 ()) k).Exec.value) keys
      in
      (* "Interrupted" run: only the first 4 keys complete before the kill. *)
      let j1 = Journal.open_ ~dir ~name:"sweep" ~resume:false () in
      let exec1 = Exec.make ~jobs:1 ~journal:j1 () in
      List.iteri (fun i k -> if i < 4 then ignore (run_keyed exec1 k)) keys;
      Journal.close j1;
      (* Resumed run over the full key set. *)
      let j2 = Journal.open_ ~dir ~name:"sweep" ~resume:true () in
      check Alcotest.int "journal holds the completed prefix" 4
        (Journal.loaded j2);
      let exec2 = Exec.make ~jobs:1 ~journal:j2 () in
      let outcomes = List.map (run_keyed exec2) keys in
      Journal.close j2;
      check Alcotest.int "resumed count" 4
        (Atomic.get exec2.Exec.stats.Exec.resumed);
      List.iteri
        (fun i o ->
          check Alcotest.bool
            (Printf.sprintf "source of key %d" i)
            true
            (o.Exec.source
            = if i < 4 then Exec.From_journal else Exec.Computed))
        outcomes;
      List.iteri
        (fun i (reference, o) ->
          check Alcotest.bool
            (Printf.sprintf "bit-identical value for key %d" i)
            true
            (o.Exec.value = reference))
        (List.combine reference outcomes))

(* The same property through the real experiment layer: a journaled
   configuration resumes bit-identically to fresh computation. *)
let test_resume_runner_integration () =
  with_dir (fun dir ->
      let cfg_a = { Suite.spec = Suite.Fft { k = 2 }; sample = 0 } in
      let cfg_b = { Suite.spec = Suite.Fft { k = 3 }; sample = 0 } in
      let j1 = Journal.open_ ~dir ~name:"runner" ~resume:false () in
      let exec1 = Exec.make ~jobs:1 ~journal:j1 () in
      let first =
        Runner.run_config_outcome ~exec:exec1 Cluster.chti cfg_a
      in
      Journal.close j1;
      let j2 = Journal.open_ ~dir ~name:"runner" ~resume:true () in
      let exec2 = Exec.make ~jobs:1 ~journal:j2 () in
      let replayed = Runner.run_config_outcome ~exec:exec2 Cluster.chti cfg_a in
      let computed = Runner.run_config_outcome ~exec:exec2 Cluster.chti cfg_b in
      Journal.close j2;
      check Alcotest.bool "replayed from journal" true
        (replayed.Exec.source = Exec.From_journal);
      check Alcotest.bool "missing config computed" true
        (computed.Exec.source = Exec.Computed);
      check Alcotest.bool "bit-identical replay" true
        (replayed.Exec.value = first.Exec.value);
      check Alcotest.int "one resumed" 1
        (Atomic.get exec2.Exec.stats.Exec.resumed))

let () =
  Alcotest.run "rats_fault"
    [
      ( "fault",
        [
          Alcotest.test_case "spec parsing" `Quick test_fault_parse;
          Alcotest.test_case "spec round-trip" `Quick test_fault_spec_roundtrip;
          Alcotest.test_case "deterministic decisions" `Quick
            test_fault_determinism;
        ] );
      ( "retry",
        [
          Alcotest.test_case "recovers after transient failures" `Quick
            test_retry_recovers;
          Alcotest.test_case "exhausts into a structured error" `Quick
            test_retry_exhausts;
          Alcotest.test_case "timeout fires on a hung task" `Quick
            test_retry_timeout;
        ] );
      ( "capture",
        [
          Alcotest.test_case "crashes become per-slot failures" `Quick
            test_crash_capture;
          Alcotest.test_case "retries shrink the failure set" `Quick
            test_crash_retry_recovers_some;
          Alcotest.test_case "strict mode fails fast" `Quick
            test_strict_fails_fast;
          Alcotest.test_case "no fault, no change" `Quick test_no_fault_no_change;
        ] );
      ( "journal",
        [
          Alcotest.test_case "round-trip and discard" `Quick
            test_journal_roundtrip;
          Alcotest.test_case "torn tail truncated on resume" `Quick
            test_journal_torn_tail;
          Alcotest.test_case "injected append failure disables journal"
            `Quick test_journal_injected_append_failure;
        ] );
      ( "resume",
        [
          Alcotest.test_case "bit-identical, only missing work re-runs" `Quick
            test_resume_bit_identical;
          Alcotest.test_case "runner integration" `Quick
            test_resume_runner_integration;
        ] );
    ]
