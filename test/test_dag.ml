(* Tests for rats_dag: the moldable task model and the DAG structure. *)

module Task = Rats_dag.Task
module Dag = Rats_dag.Dag
module Rng = Rats_util.Rng

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg
let qcheck t = Rats_test_support.Seeded.to_alcotest t

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let speed = 1e9

let mk_task ?(m = 1e6) ?(a = 100.) ?(alpha = 0.1) id name =
  Task.make ~id ~name ~data_elements:m ~flop:(a *. m) ~alpha

(* --- Task ---------------------------------------------------------------- *)

let test_task_validation () =
  Alcotest.check_raises "negative data"
    (Invalid_argument "Task.make: negative data size") (fun () ->
      ignore (Task.make ~id:0 ~name:"x" ~data_elements:(-1.) ~flop:1. ~alpha:0.));
  Alcotest.check_raises "negative flop"
    (Invalid_argument "Task.make: negative flop") (fun () ->
      ignore (Task.make ~id:0 ~name:"x" ~data_elements:1. ~flop:(-1.) ~alpha:0.));
  Alcotest.check_raises "alpha > 1"
    (Invalid_argument "Task.make: alpha outside [0,1]") (fun () ->
      ignore (Task.make ~id:0 ~name:"x" ~data_elements:1. ~flop:1. ~alpha:1.5))

let test_task_seq_time () =
  let t = mk_task 0 "t" in
  checkf "flop / speed" 0.1 (Task.seq_time t ~speed)

let test_task_amdahl () =
  let t = mk_task ~alpha:0.2 0 "t" in
  let seq = Task.seq_time t ~speed in
  checkf "1 proc = seq" seq (Task.time t ~speed ~procs:1);
  checkf "4 procs" (seq *. (0.2 +. (0.8 /. 4.))) (Task.time t ~speed ~procs:4);
  Alcotest.(check bool) "bounded below by alpha" true
    (Task.time t ~speed ~procs:10000 > seq *. 0.2)

let qcheck_amdahl_monotone =
  QCheck.Test.make ~count:100 ~name:"execution time decreases with processors"
    QCheck.(pair (float_range 0. 0.9) (int_range 1 63))
    (fun (alpha, p) ->
      let t = mk_task ~alpha 0 "t" in
      Task.time t ~speed ~procs:(p + 1) <= Task.time t ~speed ~procs:p)

let qcheck_work_monotone =
  QCheck.Test.make ~count:100 ~name:"work grows with processors when alpha > 0"
    QCheck.(pair (float_range 0.01 0.9) (int_range 1 63))
    (fun (alpha, p) ->
      let t = mk_task ~alpha 0 "t" in
      Task.work t ~speed ~procs:(p + 1) > Task.work t ~speed ~procs:p)

let test_task_work_zero_alpha () =
  let t = mk_task ~alpha:0. 0 "t" in
  checkf "perfectly parallel work is constant"
    (Task.work t ~speed ~procs:1)
    (Task.work t ~speed ~procs:16)

let test_task_random_bounds () =
  let rng = Rng.create 11 in
  for i = 0 to 200 do
    let t = Task.random rng ~id:i ~name:"r" in
    Alcotest.(check bool) "m in [4M,121M]" true
      (t.Task.data_elements >= Task.min_elements
      && t.Task.data_elements <= Task.max_elements);
    let a = t.Task.flop /. t.Task.data_elements in
    Alcotest.(check bool) "a in [2^6,2^9]" true (a >= 64. && a <= 512.);
    Alcotest.(check bool) "alpha in [0,0.25]" true
      (t.Task.alpha >= 0. && t.Task.alpha <= 0.25)
  done

let test_task_virtual () =
  let v = Task.virtual_task ~id:3 ~name:"v" in
  Alcotest.(check bool) "virtual" true (Task.is_virtual v);
  checkf "no time" 0. (Task.time v ~speed ~procs:5);
  Alcotest.(check bool) "real task not virtual" false
    (Task.is_virtual (mk_task 0 "t"))

let test_task_data_bytes () =
  checkf "8 bytes per element" 8e6 (Task.data_bytes (mk_task 0 "t"))

let test_task_relabel () =
  let t = Task.relabel (mk_task 0 "t") ~id:9 in
  check Alcotest.int "new id" 9 t.Task.id

(* --- Dag builder --------------------------------------------------------- *)

let diamond () =
  (* 0 -> {1,2} -> 3, classic diamond. *)
  let b = Dag.Builder.create () in
  List.iteri (fun i name -> Dag.Builder.add_task b (mk_task i name))
    [ "a"; "b"; "c"; "d" ];
  Dag.Builder.add_edge b ~src:0 ~dst:1 ~bytes:8e6;
  Dag.Builder.add_edge b ~src:0 ~dst:2 ~bytes:8e6;
  Dag.Builder.add_edge b ~src:1 ~dst:3 ~bytes:8e6;
  Dag.Builder.add_edge b ~src:2 ~dst:3 ~bytes:8e6;
  Dag.Builder.build b

let test_builder_id_order () =
  let b = Dag.Builder.create () in
  Alcotest.check_raises "wrong first id"
    (Invalid_argument "Dag.Builder.add_task: expected id 0, got 1") (fun () ->
      Dag.Builder.add_task b (mk_task 1 "x"))

let test_builder_self_loop () =
  let b = Dag.Builder.create () in
  Dag.Builder.add_task b (mk_task 0 "a");
  Alcotest.check_raises "self loop"
    (Invalid_argument "Dag.Builder.add_edge: self loop") (fun () ->
      Dag.Builder.add_edge b ~src:0 ~dst:0 ~bytes:1.)

let test_builder_duplicate_edge () =
  let b = Dag.Builder.create () in
  Dag.Builder.add_task b (mk_task 0 "a");
  Dag.Builder.add_task b (mk_task 1 "b");
  Dag.Builder.add_edge b ~src:0 ~dst:1 ~bytes:1.;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Dag.Builder.add_edge: duplicate edge") (fun () ->
      Dag.Builder.add_edge b ~src:0 ~dst:1 ~bytes:2.)

let test_builder_bad_endpoint () =
  let b = Dag.Builder.create () in
  Dag.Builder.add_task b (mk_task 0 "a");
  Alcotest.check_raises "bad dst"
    (Invalid_argument "Dag.Builder.add_edge: bad dst") (fun () ->
      Dag.Builder.add_edge b ~src:0 ~dst:7 ~bytes:1.)

let test_builder_cycle () =
  let b = Dag.Builder.create () in
  List.iteri (fun i n -> Dag.Builder.add_task b (mk_task i n)) [ "a"; "b"; "c" ];
  Dag.Builder.add_edge b ~src:0 ~dst:1 ~bytes:1.;
  Dag.Builder.add_edge b ~src:1 ~dst:2 ~bytes:1.;
  Dag.Builder.add_edge b ~src:2 ~dst:0 ~bytes:1.;
  Alcotest.check_raises "cycle"
    (Failure "Dag.Builder.build: graph contains a cycle") (fun () ->
      ignore (Dag.Builder.build b))

(* --- Dag queries ---------------------------------------------------------- *)

let test_dag_counts () =
  let g = diamond () in
  check Alcotest.int "tasks" 4 (Dag.n_tasks g);
  check Alcotest.int "edges" 4 (Dag.n_edges g);
  check Alcotest.int "edge list length" 4 (List.length (Dag.edges g))

let test_dag_adjacency () =
  let g = diamond () in
  Alcotest.(check (list (pair int (float 0.)))) "succs of 0"
    [ (1, 8e6); (2, 8e6) ] (Dag.succs g 0);
  Alcotest.(check (list (pair int (float 0.)))) "preds of 3"
    [ (1, 8e6); (2, 8e6) ] (Dag.preds g 3);
  Alcotest.(check (option (float 0.))) "edge bytes" (Some 8e6)
    (Dag.edge_bytes g ~src:0 ~dst:1);
  Alcotest.(check (option (float 0.))) "missing edge" None
    (Dag.edge_bytes g ~src:1 ~dst:2)

let test_dag_entries_exits () =
  let g = diamond () in
  Alcotest.(check (list int)) "entries" [ 0 ] (Dag.entries g);
  Alcotest.(check (list int)) "exits" [ 3 ] (Dag.exits g)

let test_dag_topological_order () =
  let g = diamond () in
  Alcotest.(check (list int)) "topo order" [ 0; 1; 2; 3 ]
    (Array.to_list (Dag.topological_order g))

let test_dag_depths () =
  let g = diamond () in
  Alcotest.(check (list int)) "depths" [ 0; 1; 1; 2 ]
    (Array.to_list (Dag.depths g));
  let groups = Dag.level_groups g in
  check Alcotest.int "levels" 3 (Array.length groups);
  Alcotest.(check (list int)) "middle level" [ 1; 2 ] groups.(1)

let test_dag_bottom_levels () =
  let g = diamond () in
  let bl = Dag.bottom_levels g ~task_cost:(fun _ -> 1.) ~edge_cost:(fun _ _ _ -> 0.) in
  Alcotest.(check (array (float 1e-9))) "bottom levels" [| 3.; 2.; 2.; 1. |] bl

let test_dag_bottom_levels_with_edges () =
  let g = diamond () in
  let bl =
    Dag.bottom_levels g ~task_cost:(fun _ -> 1.)
      ~edge_cost:(fun _ _ bytes -> bytes /. 8e6)
  in
  checkf "entry bl" 5. bl.(0)

let test_dag_top_levels () =
  let g = diamond () in
  let tl = Dag.top_levels g ~task_cost:(fun _ -> 1.) ~edge_cost:(fun _ _ _ -> 0.) in
  Alcotest.(check (array (float 1e-9))) "top levels" [| 0.; 1.; 1.; 2. |] tl

let test_dag_critical_path () =
  let b = Dag.Builder.create () in
  List.iteri (fun i n -> Dag.Builder.add_task b (mk_task i n))
    [ "a"; "b"; "c"; "d" ];
  Dag.Builder.add_edge b ~src:0 ~dst:1 ~bytes:0.;
  Dag.Builder.add_edge b ~src:0 ~dst:2 ~bytes:0.;
  Dag.Builder.add_edge b ~src:1 ~dst:3 ~bytes:0.;
  Dag.Builder.add_edge b ~src:2 ~dst:3 ~bytes:0.;
  let g = Dag.Builder.build b in
  let cost = function 2 -> 10. | _ -> 1. in
  let path, len = Dag.critical_path g ~task_cost:cost ~edge_cost:(fun _ _ _ -> 0.) in
  Alcotest.(check (list int)) "path through heavy node" [ 0; 2; 3 ] path;
  checkf "length" 12. len

let test_dag_total_cost () =
  let g = diamond () in
  checkf "sum" 4. (Dag.total_cost g ~task_cost:(fun _ -> 1.))

let test_ensure_single_entry_exit_noop () =
  let g = diamond () in
  let g' = Dag.ensure_single_entry_exit g in
  check Alcotest.int "unchanged" (Dag.n_tasks g) (Dag.n_tasks g')

let test_ensure_single_entry_exit_adds () =
  let b = Dag.Builder.create () in
  List.iteri (fun i n -> Dag.Builder.add_task b (mk_task i n))
    [ "s1"; "s2"; "t1"; "t2" ];
  Dag.Builder.add_edge b ~src:0 ~dst:2 ~bytes:1.;
  Dag.Builder.add_edge b ~src:1 ~dst:3 ~bytes:1.;
  let g = Dag.ensure_single_entry_exit (Dag.Builder.build b) in
  check Alcotest.int "added entry+exit" 6 (Dag.n_tasks g);
  Alcotest.(check int) "one entry" 1 (List.length (Dag.entries g));
  Alcotest.(check int) "one exit" 1 (List.length (Dag.exits g));
  let entry = List.hd (Dag.entries g) in
  Alcotest.(check bool) "entry virtual" true
    (Task.is_virtual (Dag.task g entry));
  List.iter
    (fun (_, bytes) -> checkf "virtual edges carry no data" 0. bytes)
    (Dag.succs g entry)

let test_map_tasks () =
  let g = diamond () in
  let g' =
    Dag.map_tasks g ~f:(fun t ->
        Task.make ~id:t.Task.id ~name:t.Task.name
          ~data_elements:t.Task.data_elements ~flop:(2. *. t.Task.flop)
          ~alpha:t.Task.alpha)
  in
  checkf "flop doubled" (2. *. (Dag.task g 0).Task.flop) (Dag.task g' 0).Task.flop;
  Alcotest.check_raises "id change rejected"
    (Invalid_argument "Dag.map_tasks: f changed a task id") (fun () ->
      ignore (Dag.map_tasks g ~f:(fun t -> Task.relabel t ~id:(t.Task.id + 1))))

let test_pp_dot () =
  let out = Format.asprintf "%a" Dag.pp_dot (diamond ()) in
  Alcotest.(check bool) "has digraph" true (contains out "digraph dag");
  Alcotest.(check bool) "mentions edge" true (contains out "n0 -> n1")


(* --- Metrics --------------------------------------------------------------- *)

module Metrics = Rats_dag.Metrics

let test_metrics_diamond () =
  let m = Metrics.compute (diamond ()) in
  check Alcotest.int "tasks" 4 m.Metrics.n_tasks;
  check Alcotest.int "edges" 4 m.Metrics.n_edges;
  check Alcotest.int "levels" 3 m.Metrics.n_levels;
  check Alcotest.int "max width" 2 m.Metrics.max_width;
  checkf "avg width" (4. /. 3.) m.Metrics.avg_width;
  checkf "total bytes" 3.2e7 m.Metrics.total_bytes;
  (* All tasks cost 1e8 flop: critical path a-b-d (or a-c-d) = 3e8. *)
  checkf "cp flop" 3e8 m.Metrics.critical_path_flop;
  checkf "parallelism" (4. /. 3.) m.Metrics.avg_parallelism;
  (* Possible consecutive-level edges: 1x2 + 2x1 = 4, all present. *)
  checkf "edge density" 1. m.Metrics.edge_density

let test_metrics_chain_parallelism () =
  let b = Dag.Builder.create () in
  List.iteri (fun i n -> Dag.Builder.add_task b (mk_task i n)) [ "a"; "b"; "c" ];
  Dag.Builder.add_edge b ~src:0 ~dst:1 ~bytes:1.;
  Dag.Builder.add_edge b ~src:1 ~dst:2 ~bytes:1.;
  let m = Metrics.compute (Dag.Builder.build b) in
  checkf "chain parallelism 1" 1. m.Metrics.avg_parallelism;
  checkf "no width variance" 0. m.Metrics.width_cv

let qcheck_metrics_consistency =
  QCheck.Test.make ~count:50 ~name:"metrics are internally consistent"
    QCheck.(pair (int_range 5 50) (int_range 0 500))
    (fun (n, seed) ->
      let shape =
        Rats_daggen.Shape.make ~width:0.5 ~regularity:0.5 ~density:0.5 ~jump:2 ()
      in
      let dag =
        Rats_daggen.Random_dag.irregular (Rats_util.Rng.create seed) ~n_tasks:n
          ~shape
      in
      let m = Metrics.compute dag in
      m.Metrics.n_tasks = Dag.n_tasks dag
      && m.Metrics.avg_parallelism >= 1. -. 1e-9
      && m.Metrics.critical_path_flop <= m.Metrics.total_flop +. 1e-6
      && m.Metrics.max_width >= 1
      && m.Metrics.width_cv >= 0.)

(* --- Timing tables --------------------------------------------------------- *)

module Timing = Rats_dag.Timing

let test_timing_validation () =
  let dag = diamond () in
  Alcotest.check_raises "bad max_procs"
    (Invalid_argument "Timing.build: max_procs < 1") (fun () ->
      ignore (Timing.build dag ~speed ~max_procs:0));
  let tbl = Timing.build dag ~speed ~max_procs:4 in
  check Alcotest.int "max procs" 4 (Timing.max_procs tbl);
  check Alcotest.int "tasks" 4 (Timing.n_tasks tbl);
  Alcotest.check_raises "procs above table"
    (Invalid_argument "Timing.time: bad procs") (fun () ->
      ignore (Timing.time tbl 0 ~procs:5))

let qcheck_timing_bit_exact =
  QCheck.Test.make ~count:100
    ~name:"timing table entries are bit-identical to Task.time/work"
    QCheck.(pair (int_range 2 40) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let b = Dag.Builder.create () in
      for i = 0 to n - 1 do
        Dag.Builder.add_task b (Task.random rng ~id:i ~name:(string_of_int i))
      done;
      let dag = Dag.Builder.build b in
      let max_procs = 1 + Rng.int rng 64 in
      let tbl = Timing.build dag ~speed ~max_procs in
      let ok = ref true in
      for i = 0 to n - 1 do
        let task = Dag.task dag i in
        for p = 1 to max_procs do
          if
            Timing.time tbl i ~procs:p <> Task.time task ~speed ~procs:p
            || Timing.work tbl i ~procs:p <> Task.work task ~speed ~procs:p
          then ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "rats_dag"
    [
      ( "task",
        [
          Alcotest.test_case "validation" `Quick test_task_validation;
          Alcotest.test_case "seq time" `Quick test_task_seq_time;
          Alcotest.test_case "amdahl law" `Quick test_task_amdahl;
          qcheck qcheck_amdahl_monotone;
          qcheck qcheck_work_monotone;
          Alcotest.test_case "zero alpha work" `Quick test_task_work_zero_alpha;
          Alcotest.test_case "random bounds" `Quick test_task_random_bounds;
          Alcotest.test_case "virtual" `Quick test_task_virtual;
          Alcotest.test_case "data bytes" `Quick test_task_data_bytes;
          Alcotest.test_case "relabel" `Quick test_task_relabel;
        ] );
      ( "builder",
        [
          Alcotest.test_case "id order" `Quick test_builder_id_order;
          Alcotest.test_case "self loop" `Quick test_builder_self_loop;
          Alcotest.test_case "duplicate edge" `Quick test_builder_duplicate_edge;
          Alcotest.test_case "bad endpoint" `Quick test_builder_bad_endpoint;
          Alcotest.test_case "cycle detection" `Quick test_builder_cycle;
        ] );
      ( "queries",
        [
          Alcotest.test_case "counts" `Quick test_dag_counts;
          Alcotest.test_case "adjacency" `Quick test_dag_adjacency;
          Alcotest.test_case "entries/exits" `Quick test_dag_entries_exits;
          Alcotest.test_case "topological order" `Quick test_dag_topological_order;
          Alcotest.test_case "depths and levels" `Quick test_dag_depths;
          Alcotest.test_case "bottom levels" `Quick test_dag_bottom_levels;
          Alcotest.test_case "bottom levels with edges" `Quick
            test_dag_bottom_levels_with_edges;
          Alcotest.test_case "top levels" `Quick test_dag_top_levels;
          Alcotest.test_case "critical path" `Quick test_dag_critical_path;
          Alcotest.test_case "total cost" `Quick test_dag_total_cost;
          Alcotest.test_case "single entry/exit noop" `Quick
            test_ensure_single_entry_exit_noop;
          Alcotest.test_case "single entry/exit added" `Quick
            test_ensure_single_entry_exit_adds;
          Alcotest.test_case "map tasks" `Quick test_map_tasks;
          Alcotest.test_case "dot output" `Quick test_pp_dot;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "diamond" `Quick test_metrics_diamond;
          Alcotest.test_case "chain parallelism" `Quick
            test_metrics_chain_parallelism;
          qcheck qcheck_metrics_consistency;
        ] );
      ( "timing",
        [
          Alcotest.test_case "validation" `Quick test_timing_validation;
          qcheck qcheck_timing_bit_exact;
        ] );
    ]
