(* Tests for rats_redist: block distributions, communication matrices,
   self-communication-maximizing placement and cost estimates. *)

module Block = Rats_redist.Block
module Placement = Rats_redist.Placement
module Redistribution = Rats_redist.Redistribution
module Procset = Rats_util.Procset
module Cluster = Rats_platform.Cluster
module Topology = Rats_platform.Topology

let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg
let qcheck t = Rats_test_support.Seeded.to_alcotest t

(* --- Block --------------------------------------------------------------- *)

let test_interval () =
  let lo, hi = Block.interval ~amount:10. ~ranks:4 2 in
  checkf "lo" 5. lo;
  checkf "hi" 7.5 hi;
  Alcotest.check_raises "rank range"
    (Invalid_argument "Block.interval: rank out of range") (fun () ->
      ignore (Block.interval ~amount:10. ~ranks:4 4))

let test_table1_exact () =
  (* The paper's Table I: 10 units, 4 senders, 5 receivers. *)
  let m = Block.comm_matrix ~amount:10. ~senders:4 ~receivers:5 in
  let expected =
    [
      (0, 0, 2.); (0, 1, 0.5);
      (1, 1, 1.5); (1, 2, 1.);
      (2, 2, 1.); (2, 3, 1.5);
      (3, 3, 0.5); (3, 4, 2.);
    ]
  in
  Alcotest.(check int) "entry count" (List.length expected) (List.length m);
  List.iter2
    (fun (i, j, v) (i', j', v') ->
      Alcotest.(check int) "sender" i i';
      Alcotest.(check int) "receiver" j j';
      checkf "amount" v v')
    expected m

let test_comm_matrix_identity () =
  let m = Block.comm_matrix ~amount:12. ~senders:3 ~receivers:3 in
  Alcotest.(check int) "diagonal" 3 (List.length m);
  List.iter (fun (i, j, v) ->
      Alcotest.(check int) "i=j" i j;
      checkf "share" 4. v)
    m

let test_comm_matrix_sums () =
  let m = Block.comm_matrix ~amount:100. ~senders:7 ~receivers:3 in
  let rows = Block.row_sums ~senders:7 m in
  Array.iter (fun r -> checkf "row = m/p" (100. /. 7.) r) rows;
  let cols = Block.col_sums ~receivers:3 m in
  Array.iter (fun c -> checkf "col = m/q" (100. /. 3.) c) cols

let qcheck_comm_matrix_conservation =
  QCheck.Test.make ~count:300 ~name:"comm matrix conserves the data"
    QCheck.(pair (int_range 1 40) (int_range 1 40))
    (fun (p, q) ->
      let amount = 1000. in
      let m = Block.comm_matrix ~amount ~senders:p ~receivers:q in
      let total = List.fold_left (fun acc (_, _, v) -> acc +. v) 0. m in
      Float.abs (total -. amount) < 1e-6 *. amount)

let qcheck_comm_matrix_banded =
  QCheck.Test.make ~count:300 ~name:"comm matrix has at most p+q-1 entries"
    QCheck.(pair (int_range 1 40) (int_range 1 40))
    (fun (p, q) ->
      let m = Block.comm_matrix ~amount:1. ~senders:p ~receivers:q in
      List.length m <= p + q - 1
      && List.for_all (fun (_, _, v) -> v > 0.) m)

let test_overlap_matches_matrix () =
  let p = 5 and q = 7 in
  let m = Block.comm_matrix ~amount:35. ~senders:p ~receivers:q in
  List.iter
    (fun (i, j, v) ->
      checkf "overlap agrees" v
        (Block.overlap ~amount:35. ~senders:p ~receivers:q i j))
    m

(* --- Placement ----------------------------------------------------------- *)

let test_placement_disjoint_natural () =
  let sender = Procset.of_list [ 0; 1 ] in
  let receiver = Procset.of_list [ 5; 6; 7 ] in
  Alcotest.(check (array int)) "ascending order" [| 5; 6; 7 |]
    (Placement.receiver_ranks ~sender ~receiver ~bytes:100.)

let test_placement_identical_sets () =
  let s = Procset.of_list [ 2; 3; 4 ] in
  let place = Placement.receiver_ranks ~sender:s ~receiver:s ~bytes:100. in
  Alcotest.(check (array int)) "identity" [| 2; 3; 4 |] place

let test_placement_keeps_shared_proc_local () =
  (* Sender {0,1}, receiver {1,8}: processor 1 holds sender rank 1 (second
     half of the data); placing it at receiver rank 1 keeps that half local. *)
  let sender = Procset.of_list [ 0; 1 ] in
  let receiver = Procset.of_list [ 1; 8 ] in
  let place = Placement.receiver_ranks ~sender ~receiver ~bytes:100. in
  Alcotest.(check (array int)) "shared proc aligned" [| 8; 1 |] place

let qcheck_placement_is_permutation =
  QCheck.Test.make ~count:300 ~name:"placement is a permutation of receivers"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 10) (int_bound 15))
        (list_of_size Gen.(1 -- 10) (int_bound 15)))
    (fun (s, r) ->
      QCheck.assume (s <> [] && r <> []);
      let sender = Procset.of_list s and receiver = Procset.of_list r in
      let place = Placement.receiver_ranks ~sender ~receiver ~bytes:1000. in
      List.sort compare (Array.to_list place) = Procset.to_list receiver)

let qcheck_placement_no_worse_than_natural =
  QCheck.Test.make ~count:300
    ~name:"placement keeps at least as many bytes local as natural order"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 8) (int_bound 11))
        (list_of_size Gen.(1 -- 8) (int_bound 11)))
    (fun (s, r) ->
      QCheck.assume (s <> [] && r <> []);
      let sender = Procset.of_list s and receiver = Procset.of_list r in
      let bytes = 840. in
      let p = Procset.size sender and q = Procset.size receiver in
      let entries = Block.comm_matrix ~amount:bytes ~senders:p ~receivers:q in
      let local place =
        List.fold_left
          (fun acc (i, j, v) ->
            if Procset.nth sender i = place.(j) then acc +. v else acc)
          0. entries
      in
      let natural = Array.of_list (Procset.to_list receiver) in
      let optimized = Placement.receiver_ranks ~sender ~receiver ~bytes in
      local optimized >= local natural -. 1e-9)

(* --- Redistribution ------------------------------------------------------ *)

let test_plan_conservation () =
  let sender = Procset.of_list [ 0; 1; 2 ] in
  let receiver = Procset.of_list [ 2; 3 ] in
  let plan = Redistribution.plan ~sender ~receiver ~bytes:600. () in
  let total = List.fold_left (fun acc t -> acc +. t.Redistribution.bytes) 0. plan in
  checkf "bytes conserved" 600. total;
  checkf "split local/remote" 600.
    (Redistribution.remote_bytes plan +. Redistribution.local_bytes plan)

let test_plan_equal_sets_free () =
  let s = Procset.of_list [ 1; 4 ] in
  let plan = Redistribution.plan ~sender:s ~receiver:s ~bytes:100. () in
  checkf "all local" 100. (Redistribution.local_bytes plan);
  checkf "nothing remote" 0. (Redistribution.remote_bytes plan)

let test_plan_empty_cases () =
  let s = Procset.of_list [ 0 ] in
  Alcotest.(check int) "no bytes, no transfers" 0
    (List.length (Redistribution.plan ~sender:s ~receiver:s ~bytes:0. ()));
  Alcotest.check_raises "empty set"
    (Invalid_argument "Redistribution.plan: empty processor set") (fun () ->
      ignore (Redistribution.plan ~sender:Procset.empty ~receiver:s ~bytes:1. ()))

let flat8 =
  Cluster.make ~name:"flat8" ~topology:(Topology.Flat 8) ~speed_gflops:1. ()

let test_estimate_zero_for_local () =
  let s = Procset.of_list [ 0; 1 ] in
  checkf "same set costs nothing" 0.
    (Redistribution.estimate_between flat8 ~sender:s ~receiver:s ~bytes:1e9)

let test_estimate_single_transfer () =
  let sender = Procset.of_list [ 0 ] and receiver = Procset.of_list [ 1 ] in
  let t =
    Redistribution.estimate_between flat8 ~sender ~receiver ~bytes:1.25e8
  in
  checkf "latency + drain" 1.0002 t

let test_estimate_bottleneck_is_max_link () =
  let sender = Procset.of_list [ 0; 1 ] and receiver = Procset.of_list [ 2 ] in
  let t =
    Redistribution.estimate_between flat8 ~sender ~receiver ~bytes:1.25e8
  in
  checkf "receiver NIC bound" 1.0002 t

let test_estimate_monotone_in_bytes () =
  let sender = Procset.of_list [ 0; 1; 2 ] and receiver = Procset.of_list [ 3; 4 ] in
  let e b = Redistribution.estimate_between flat8 ~sender ~receiver ~bytes:b in
  Alcotest.(check bool) "monotone" true (e 1e9 > e 1e8 && e 1e8 > 0.)

let qcheck_plan_conservation =
  QCheck.Test.make ~count:300 ~name:"plans conserve bytes for any set pair"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 8) (int_bound 7))
        (list_of_size Gen.(1 -- 8) (int_bound 7)))
    (fun (s, r) ->
      QCheck.assume (s <> [] && r <> []);
      let sender = Procset.of_list s and receiver = Procset.of_list r in
      let plan = Redistribution.plan ~sender ~receiver ~bytes:4200. () in
      let total =
        List.fold_left (fun acc t -> acc +. t.Redistribution.bytes) 0. plan
      in
      Float.abs (total -. 4200.) < 1e-6)

let qcheck_estimate_nonnegative =
  QCheck.Test.make ~count:200 ~name:"estimates are finite and non-negative"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 6) (int_bound 7))
        (list_of_size Gen.(1 -- 6) (int_bound 7)))
    (fun (s, r) ->
      QCheck.assume (s <> [] && r <> []);
      let sender = Procset.of_list s and receiver = Procset.of_list r in
      let e =
        Redistribution.estimate_between flat8 ~sender ~receiver ~bytes:1e8
      in
      e >= 0. && Float.is_finite e)

let () =
  Alcotest.run "rats_redist"
    [
      ( "block",
        [
          Alcotest.test_case "interval" `Quick test_interval;
          Alcotest.test_case "Table I exact" `Quick test_table1_exact;
          Alcotest.test_case "identity distribution" `Quick
            test_comm_matrix_identity;
          Alcotest.test_case "row and column sums" `Quick test_comm_matrix_sums;
          Alcotest.test_case "overlap agrees with matrix" `Quick
            test_overlap_matches_matrix;
          qcheck qcheck_comm_matrix_conservation;
          qcheck qcheck_comm_matrix_banded;
        ] );
      ( "placement",
        [
          Alcotest.test_case "disjoint -> natural" `Quick
            test_placement_disjoint_natural;
          Alcotest.test_case "identical sets" `Quick test_placement_identical_sets;
          Alcotest.test_case "shared proc kept local" `Quick
            test_placement_keeps_shared_proc_local;
          qcheck qcheck_placement_is_permutation;
          qcheck qcheck_placement_no_worse_than_natural;
        ] );
      ( "redistribution",
        [
          Alcotest.test_case "conservation" `Quick test_plan_conservation;
          Alcotest.test_case "equal sets free" `Quick test_plan_equal_sets_free;
          Alcotest.test_case "empty cases" `Quick test_plan_empty_cases;
          Alcotest.test_case "local estimate zero" `Quick
            test_estimate_zero_for_local;
          Alcotest.test_case "single transfer" `Quick test_estimate_single_transfer;
          Alcotest.test_case "bottleneck link" `Quick
            test_estimate_bottleneck_is_max_link;
          Alcotest.test_case "monotone in bytes" `Quick
            test_estimate_monotone_in_bytes;
          qcheck qcheck_plan_conservation;
          qcheck qcheck_estimate_nonnegative;
        ] );
    ]
