(* Tests for rats_daggen: shapes, random DAGs, FFT, Strassen, the suite. *)

module Shape = Rats_daggen.Shape
module Random_dag = Rats_daggen.Random_dag
module Fft = Rats_daggen.Fft
module Strassen = Rats_daggen.Strassen
module Suite = Rats_daggen.Suite
module Dag = Rats_dag.Dag
module Task = Rats_dag.Task
module Rng = Rats_util.Rng

let check = Alcotest.check
let qcheck t = Rats_test_support.Seeded.to_alcotest t

(* --- Shape --------------------------------------------------------------- *)

let test_shape_validation () =
  Alcotest.check_raises "width 0" (Invalid_argument "Shape.make: width outside (0,1]")
    (fun () -> ignore (Shape.make ~width:0. ~regularity:0.5 ~density:0.5 ()));
  Alcotest.check_raises "jump 0" (Invalid_argument "Shape.make: jump < 1")
    (fun () ->
      ignore (Shape.make ~width:0.5 ~regularity:0.5 ~density:0.5 ~jump:0 ()))

let test_level_sizes_sum () =
  let shape = Shape.make ~width:0.5 ~regularity:0.2 ~density:0.5 () in
  let rng = Rng.create 1 in
  for n = 1 to 60 do
    let sizes = Shape.level_sizes shape rng ~n_tasks:n in
    check Alcotest.int "sums to n" n (Array.fold_left ( + ) 0 sizes);
    Alcotest.(check bool) "all positive" true (Array.for_all (fun s -> s > 0) sizes)
  done

let test_level_sizes_regular () =
  (* regularity 1 means every level hits the target exactly. *)
  let shape = Shape.make ~width:0.5 ~regularity:1.0 ~density:0.5 () in
  let rng = Rng.create 2 in
  let sizes = Shape.level_sizes shape rng ~n_tasks:100 in
  let target = int_of_float (Float.round (100. ** 0.5)) in
  Array.iteri
    (fun i s -> if i < Array.length sizes - 1 then check Alcotest.int "target" target s)
    sizes

let test_width_extremes () =
  let rng = Rng.create 3 in
  let narrow = Shape.make ~width:0.01 ~regularity:1.0 ~density:0.5 () in
  let sizes = Shape.level_sizes narrow rng ~n_tasks:30 in
  check Alcotest.int "chain" 30 (Array.length sizes);
  let wide = Shape.make ~width:1.0 ~regularity:1.0 ~density:0.5 () in
  let sizes = Shape.level_sizes wide rng ~n_tasks:30 in
  check Alcotest.int "fork-join" 1 (Array.length sizes)

(* --- Random DAGs ---------------------------------------------------------- *)

let shape_ly = Shape.make ~width:0.5 ~regularity:0.5 ~density:0.5 ()
let shape_ir = Shape.make ~width:0.5 ~regularity:0.5 ~density:0.5 ~jump:2 ()

let count_virtual dag =
  Array.fold_left
    (fun acc t -> if Task.is_virtual t then acc + 1 else acc)
    0 (Dag.tasks dag)

let test_layered_structure () =
  let dag = Random_dag.layered (Rng.create 4) ~n_tasks:40 ~shape:shape_ly in
  check Alcotest.int "real tasks" 40 (Dag.n_tasks dag - count_virtual dag);
  check Alcotest.int "one entry" 1 (List.length (Dag.entries dag));
  check Alcotest.int "one exit" 1 (List.length (Dag.exits dag))

let test_layered_rejects_jump () =
  Alcotest.check_raises "jump forbidden"
    (Invalid_argument "Random_dag.layered: layered DAGs have no jump edges")
    (fun () ->
      ignore (Random_dag.layered (Rng.create 5) ~n_tasks:10 ~shape:shape_ir))

let test_layered_equal_costs_per_level () =
  let dag = Random_dag.layered (Rng.create 6) ~n_tasks:40 ~shape:shape_ly in
  let groups = Dag.level_groups dag in
  Array.iter
    (fun tasks ->
      let real =
        List.filter (fun i -> not (Task.is_virtual (Dag.task dag i))) tasks
      in
      match real with
      | [] -> ()
      | first :: rest ->
          let t0 = Dag.task dag first in
          List.iter
            (fun i ->
              let t = Dag.task dag i in
              Alcotest.(check (float 0.)) "same m" t0.Task.data_elements
                t.Task.data_elements;
              Alcotest.(check (float 0.)) "same flop" t0.Task.flop t.Task.flop;
              Alcotest.(check (float 0.)) "same alpha" t0.Task.alpha t.Task.alpha)
            rest)
    groups

let test_irregular_jump_edges_span () =
  let dag = Random_dag.irregular (Rng.create 7) ~n_tasks:50 ~shape:shape_ir in
  (* All real->real edges span at most `jump` levels of the generator's
     layering. Use depths as a proxy: depth(dst) - depth(src) in [1, jump]
     need not hold exactly after jump edges change depths, so just check the
     DAG is well-formed and has more edges than a comparable layered one. *)
  check Alcotest.int "real tasks" 50 (Dag.n_tasks dag - count_virtual dag);
  check Alcotest.int "one entry" 1 (List.length (Dag.entries dag))

let test_every_real_task_connected () =
  let dag = Random_dag.irregular (Rng.create 8) ~n_tasks:30 ~shape:shape_ir in
  Array.iter
    (fun (t : Task.t) ->
      if not (Task.is_virtual t) then begin
        Alcotest.(check bool) "has pred or is entry" true
          (Dag.preds dag t.Task.id <> [] || Dag.entries dag = [ t.Task.id ]);
        Alcotest.(check bool) "has succ or is exit" true
          (Dag.succs dag t.Task.id <> [] || Dag.exits dag = [ t.Task.id ])
      end)
    (Dag.tasks dag)

let test_edge_bytes_match_producer () =
  let dag = Random_dag.layered (Rng.create 9) ~n_tasks:25 ~shape:shape_ly in
  List.iter
    (fun e ->
      let src = Dag.task dag e.Dag.src and dst = Dag.task dag e.Dag.dst in
      if not (Task.is_virtual src || Task.is_virtual dst) then
        Alcotest.(check (float 0.)) "edge carries producer's dataset"
          (Task.data_bytes src) e.Dag.bytes)
    (Dag.edges dag)

let qcheck_random_dags_well_formed =
  QCheck.Test.make ~count:60 ~name:"random DAGs are well-formed"
    QCheck.(triple (int_range 5 60) (int_range 0 1000) bool)
    (fun (n, seed, layered) ->
      let rng = Rng.create seed in
      let dag =
        if layered then Random_dag.layered rng ~n_tasks:n ~shape:shape_ly
        else Random_dag.irregular rng ~n_tasks:n ~shape:shape_ir
      in
      List.length (Dag.entries dag) = 1
      && List.length (Dag.exits dag) = 1
      && Array.length (Dag.topological_order dag) = Dag.n_tasks dag)

(* --- FFT ------------------------------------------------------------------ *)

let test_fft_task_counts () =
  List.iter
    (fun (k, expected) ->
      check Alcotest.int
        (Printf.sprintf "k=%d" k)
        expected
        (Fft.n_computation_tasks ~k))
    [ (2, 5); (4, 15); (8, 39); (16, 95) ]

let test_fft_generate_counts () =
  List.iter
    (fun k ->
      let dag = Fft.generate (Rng.create 10) ~k in
      check Alcotest.int "computation + virtual exit"
        (Fft.n_computation_tasks ~k + 1)
        (Dag.n_tasks dag))
    [ 2; 4; 8; 16 ]

let test_fft_validation () =
  Alcotest.check_raises "k=3" (Invalid_argument "Fft: k must be a power of two >= 2")
    (fun () -> ignore (Fft.n_computation_tasks ~k:3));
  Alcotest.check_raises "k=1" (Invalid_argument "Fft: k must be a power of two >= 2")
    (fun () -> ignore (Fft.generate (Rng.create 0) ~k:1))

let test_fft_every_path_critical () =
  (* Tasks of a level share one cost, so all bottom levels within a level
     are equal and every entry-to-exit path is critical. *)
  let dag = Fft.generate (Rng.create 11) ~k:8 in
  let bl =
    Dag.bottom_levels dag
      ~task_cost:(fun i -> (Dag.task dag i).Task.flop)
      ~edge_cost:(fun _ _ bytes -> bytes)
  in
  let groups = Dag.level_groups dag in
  Array.iter
    (fun tasks ->
      match tasks with
      | [] | [ _ ] -> ()
      | first :: rest ->
          List.iter
            (fun i ->
              Alcotest.(check (float 1e-6)) "equal bottom levels within level"
                bl.(first) bl.(i))
            rest)
    groups

let test_fft_butterfly_wiring () =
  (* k=4: butterfly level 1 task j has predecessors j and j xor 1 of the
     leaves; level 2 task j has predecessors j and j xor 2 of level 1. *)
  let dag = Fft.generate (Rng.create 12) ~k:4 in
  (* ids: tree levels 1+2+4 = 0..6 (leaves 3..6); bf1 7..10; bf2 11..14 *)
  let preds i = List.map fst (Dag.preds dag i) |> List.sort compare in
  Alcotest.(check (list int)) "bf1_0" [ 3; 4 ] (preds 7);
  Alcotest.(check (list int)) "bf1_1" [ 3; 4 ] (preds 8);
  Alcotest.(check (list int)) "bf1_2" [ 5; 6 ] (preds 9);
  Alcotest.(check (list int)) "bf2_0" [ 7; 9 ] (preds 11);
  Alcotest.(check (list int)) "bf2_3" [ 8; 10 ] (preds 14)

(* --- Strassen ------------------------------------------------------------- *)

let test_strassen_counts () =
  check Alcotest.int "25 computation tasks" 25 Strassen.n_computation_tasks;
  let dag = Strassen.generate (Rng.create 13) in
  check Alcotest.int "with virtual entry+exit" 27 (Dag.n_tasks dag);
  check Alcotest.int "one entry" 1 (List.length (Dag.entries dag));
  check Alcotest.int "one exit" 1 (List.length (Dag.exits dag))

let test_strassen_structure () =
  let dag = Strassen.generate (Rng.create 14) in
  (* M1 (id 10) consumes S1 and S2 (ids 0, 1). *)
  let preds i =
    List.map fst (Dag.preds dag i)
    |> List.filter (fun p -> not (Task.is_virtual (Dag.task dag p)))
    |> List.sort compare
  in
  Alcotest.(check (list int)) "m1 <- s1,s2" [ 0; 1 ] (preds 10);
  Alcotest.(check (list int)) "m2 <- s3" [ 2 ] (preds 11);
  (* C11 (id 19) consumes u2 (18) and M7 (16). *)
  Alcotest.(check (list int)) "c11 <- u2,m7" [ 16; 18 ] (preds 19);
  (* The four quadrant results feed the virtual exit. *)
  let exit = List.hd (Dag.exits dag) in
  Alcotest.(check (list int)) "exit preds are C quadrants" [ 19; 20; 21; 24 ]
    (preds exit)

let test_strassen_multiplications_cost_alike () =
  let dag = Strassen.generate (Rng.create 15) in
  let m1 = Dag.task dag 10 in
  for i = 11 to 16 do
    Alcotest.(check (float 0.)) "same multiplication cost" m1.Task.flop
      (Dag.task dag i).Task.flop
  done

(* --- Suite ---------------------------------------------------------------- *)

let test_suite_counts_paper () =
  let all = Suite.all Suite.Paper in
  let count k = List.length (List.filter (fun c -> Suite.kind c = k) all) in
  check Alcotest.int "layered" 108 (count `Layered);
  check Alcotest.int "irregular" 324 (count `Irregular);
  check Alcotest.int "fft" 100 (count `Fft);
  check Alcotest.int "strassen" 25 (count `Strassen);
  check Alcotest.int "total 557" 557 (List.length all)

let test_suite_counts_smoke () =
  check Alcotest.int "smoke total" 149 (Suite.n_configs Suite.Smoke)

let test_suite_names_unique () =
  let all = Suite.all Suite.Paper in
  let names = List.map Suite.name all in
  check Alcotest.int "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_suite_seed_deterministic () =
  let c = { Suite.spec = Suite.Fft { k = 8 }; sample = 3 } in
  check Alcotest.int "stable seed" (Suite.seed c) (Suite.seed c);
  let c' = { c with sample = 4 } in
  Alcotest.(check bool) "different samples differ" true
    (Suite.seed c <> Suite.seed c')

let test_suite_generate_deterministic () =
  let c =
    {
      Suite.spec =
        Suite.Irregular { n_tasks = 25; shape = shape_ir };
      sample = 1;
    }
  in
  let d1 = Suite.generate c and d2 = Suite.generate c in
  check Alcotest.int "same size" (Dag.n_tasks d1) (Dag.n_tasks d2);
  check Alcotest.int "same edges" (Dag.n_edges d1) (Dag.n_edges d2);
  let flops d =
    Array.fold_left (fun acc t -> acc +. t.Task.flop) 0. (Dag.tasks d)
  in
  Alcotest.(check (float 0.)) "same costs" (flops d1) (flops d2)

let test_suite_kind_names () =
  Alcotest.(check string) "layered" "layered" (Suite.kind_name `Layered);
  Alcotest.(check string) "fft" "fft" (Suite.kind_name `Fft)

let test_suite_generate_dispatch () =
  let fft = Suite.generate { Suite.spec = Suite.Fft { k = 2 }; sample = 0 } in
  check Alcotest.int "fft k=2 size" 6 (Dag.n_tasks fft);
  let st = Suite.generate { Suite.spec = Suite.Strassen; sample = 0 } in
  check Alcotest.int "strassen size" 27 (Dag.n_tasks st)


let test_all_paper_configs_generate () =
  (* Every one of the 557 configurations must yield a well-formed problem
     instance: single entry/exit, acyclic, expected task count. *)
  List.iter
    (fun c ->
      let dag = Suite.generate c in
      Alcotest.(check bool) (Suite.name c ^ ": single entry") true
        (List.length (Dag.entries dag) = 1);
      Alcotest.(check bool) (Suite.name c ^ ": single exit") true
        (List.length (Dag.exits dag) = 1);
      Alcotest.(check bool) (Suite.name c ^ ": topo covers all") true
        (Array.length (Dag.topological_order dag) = Dag.n_tasks dag);
      let expected_real =
        match c.Suite.spec with
        | Suite.Layered { n_tasks; _ } | Suite.Irregular { n_tasks; _ } ->
            n_tasks
        | Suite.Fft { k } -> Fft.n_computation_tasks ~k
        | Suite.Strassen -> Strassen.n_computation_tasks
      in
      let real =
        Array.fold_left
          (fun acc t -> if Task.is_virtual t then acc else acc + 1)
          0 (Dag.tasks dag)
      in
      Alcotest.(check int) (Suite.name c ^ ": computation tasks") expected_real
        real)
    (Suite.all Suite.Paper)

let () =
  Alcotest.run "rats_daggen"
    [
      ( "shape",
        [
          Alcotest.test_case "validation" `Quick test_shape_validation;
          Alcotest.test_case "level sizes sum" `Quick test_level_sizes_sum;
          Alcotest.test_case "regular levels" `Quick test_level_sizes_regular;
          Alcotest.test_case "width extremes" `Quick test_width_extremes;
        ] );
      ( "random",
        [
          Alcotest.test_case "layered structure" `Quick test_layered_structure;
          Alcotest.test_case "layered rejects jump" `Quick test_layered_rejects_jump;
          Alcotest.test_case "layered equal costs" `Quick
            test_layered_equal_costs_per_level;
          Alcotest.test_case "irregular with jumps" `Quick
            test_irregular_jump_edges_span;
          Alcotest.test_case "connectivity" `Quick test_every_real_task_connected;
          Alcotest.test_case "edge bytes" `Quick test_edge_bytes_match_producer;
          qcheck qcheck_random_dags_well_formed;
        ] );
      ( "fft",
        [
          Alcotest.test_case "task counts" `Quick test_fft_task_counts;
          Alcotest.test_case "generated counts" `Quick test_fft_generate_counts;
          Alcotest.test_case "validation" `Quick test_fft_validation;
          Alcotest.test_case "every path critical" `Quick
            test_fft_every_path_critical;
          Alcotest.test_case "butterfly wiring" `Quick test_fft_butterfly_wiring;
        ] );
      ( "strassen",
        [
          Alcotest.test_case "counts" `Quick test_strassen_counts;
          Alcotest.test_case "structure" `Quick test_strassen_structure;
          Alcotest.test_case "multiplication costs" `Quick
            test_strassen_multiplications_cost_alike;
        ] );
      ( "suite",
        [
          Alcotest.test_case "paper counts (557)" `Quick test_suite_counts_paper;
          Alcotest.test_case "smoke counts" `Quick test_suite_counts_smoke;
          Alcotest.test_case "unique names" `Quick test_suite_names_unique;
          Alcotest.test_case "deterministic seeds" `Quick
            test_suite_seed_deterministic;
          Alcotest.test_case "deterministic generation" `Quick
            test_suite_generate_deterministic;
          Alcotest.test_case "kind names" `Quick test_suite_kind_names;
          Alcotest.test_case "generate dispatch" `Quick test_suite_generate_dispatch;
          Alcotest.test_case "all 557 generate" `Slow
            test_all_paper_configs_generate;
        ] );
    ]
