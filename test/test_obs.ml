(* Tests for rats_obs: the JSON codec, span recording with a fake clock,
   Chrome export parse-back, histogram bucket boundaries, counter atomicity
   under pooled execution, the nil-sink contract, Report schema versioning
   and the Timeline renderer. *)

module Json = Rats_obs.Json
module Trace = Rats_obs.Trace
module Metrics = Rats_obs.Metrics
module Pool = Rats_runtime.Pool
module Report = Rats_runtime.Report

let check = Alcotest.check

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- Json ---------------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("a", Json.Num 1.);
        ("b", Json.Str "x \"quoted\"\nline");
        ("c", Json.Arr [ Json.Bool true; Json.Null; Json.Num (-2.5) ]);
        ("empty", Json.Obj []);
      ]
  in
  match Json.parse (Json.to_string doc) with
  | Error msg -> Alcotest.failf "re-parse failed: %s" msg
  | Ok doc' -> check Alcotest.bool "round-trips" true (doc = doc')

let test_json_escapes () =
  (match Json.parse {|"\u0041\t\\"|} with
  | Ok (Json.Str s) -> check Alcotest.string "unicode + escapes" "A\t\\" s
  | _ -> Alcotest.fail "escape parse failed");
  match Json.parse "{\"a\": 1,}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing comma accepted"

let test_json_accessors () =
  match Json.parse {|{"xs": [1, 2, 3], "name": "n"}|} with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok doc ->
      let xs = Option.get (Option.bind (Json.member "xs" doc) Json.to_list) in
      check (Alcotest.list Alcotest.int) "xs" [ 1; 2; 3 ]
        (List.filter_map Json.to_int xs);
      check (Alcotest.option Alcotest.string) "name" (Some "n")
        (Option.bind (Json.member "name" doc) Json.to_str);
      check (Alcotest.option Alcotest.int) "absent" None
        (Option.bind (Json.member "missing" doc) Json.to_int)

(* --- Trace with a deterministic clock ------------------------------------ *)

(* A clock the test advances by hand, in microseconds. *)
let fake_clock () =
  let now = ref 0. in
  ((fun () -> !now), fun dt -> now := !now +. dt)

let test_span_nesting () =
  let clock, advance = fake_clock () in
  let t = Trace.create ~clock () in
  Trace.span_on t "outer" (fun () ->
      advance 10.;
      Trace.span_on t "inner" ~cat:"test" (fun () -> advance 5.);
      Trace.instant_on t "mark";
      advance 3.);
  match Trace.events t with
  | [ outer; inner; mark ] ->
      check Alcotest.string "outer first" "outer" outer.Trace.name;
      check (Alcotest.float 1e-9) "outer ts" 0. outer.Trace.ts;
      check (Alcotest.float 1e-9) "outer dur" 18. outer.Trace.dur;
      check Alcotest.string "inner second" "inner" inner.Trace.name;
      check (Alcotest.float 1e-9) "inner ts" 10. inner.Trace.ts;
      check (Alcotest.float 1e-9) "inner dur" 5. inner.Trace.dur;
      check Alcotest.string "inner cat" "test" inner.Trace.cat;
      check Alcotest.string "instant last" "mark" mark.Trace.name;
      check (Alcotest.float 1e-9) "instant ts" 15. mark.Trace.ts;
      check Alcotest.bool "instant phase" true (mark.Trace.phase = `Instant)
  | events -> Alcotest.failf "expected 3 events, got %d" (List.length events)

let test_span_records_on_raise () =
  let clock, advance = fake_clock () in
  let t = Trace.create ~clock () in
  (try
     Trace.span_on t "failing" (fun () ->
         advance 7.;
         failwith "boom")
   with Failure _ -> ());
  match Trace.events t with
  | [ e ] ->
      check Alcotest.string "span recorded" "failing" e.Trace.name;
      check (Alcotest.float 1e-9) "duration up to the raise" 7. e.Trace.dur
  | events -> Alcotest.failf "expected 1 event, got %d" (List.length events)

let test_chrome_parse_back () =
  let clock, advance = fake_clock () in
  let t = Trace.create ~clock () in
  Trace.span_on t "work" ~cat:"c"
    ~args:(fun () -> [ ("key", "value \"quoted\"") ])
    (fun () -> advance 2.);
  Trace.instant_on t "tick";
  match Json.parse (Trace.to_chrome_json t) with
  | Error msg -> Alcotest.failf "chrome json does not parse: %s" msg
  | Ok doc -> (
      let events =
        Option.get (Option.bind (Json.member "traceEvents" doc) Json.to_list)
      in
      check Alcotest.int "two events" 2 (List.length events);
      match events with
      | [ span; instant ] ->
          let str name j =
            Option.bind (Json.member name j) Json.to_str
          in
          check (Alcotest.option Alcotest.string) "ph X" (Some "X")
            (str "ph" span);
          check (Alcotest.option Alcotest.string) "name" (Some "work")
            (str "name" span);
          check (Alcotest.option Alcotest.string) "arg survives escaping"
            (Some "value \"quoted\"")
            (Option.bind (Json.member "args" span) (str "key"));
          check (Alcotest.option Alcotest.int) "dur" (Some 2)
            (Option.bind (Json.member "dur" span) Json.to_int);
          check (Alcotest.option Alcotest.string) "ph i" (Some "i")
            (str "ph" instant)
      | _ -> Alcotest.fail "unexpected event shapes")

(* --- Nil sink ------------------------------------------------------------ *)

let test_disabled_path () =
  Trace.uninstall ();
  check Alcotest.bool "disabled" false (Trace.is_enabled ());
  let args_evaluated = ref false in
  let r =
    Trace.span "untraced"
      ~args:(fun () ->
        args_evaluated := true;
        [])
      (fun () -> 42)
  in
  Trace.instant "untraced-instant" ~args:(fun () ->
      args_evaluated := true;
      []);
  check Alcotest.int "value passes through" 42 r;
  check Alcotest.bool "args closure never evaluated" false !args_evaluated;
  (* And when installed, module-level recording reaches the tracer. *)
  let clock, advance = fake_clock () in
  let t = Trace.create ~clock () in
  Trace.install t;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      Trace.span "traced" (fun () -> advance 1.));
  check Alcotest.int "recorded when installed" 1 (List.length (Trace.events t))

(* --- Histogram buckets --------------------------------------------------- *)

let test_histogram_buckets () =
  check Alcotest.int "1µs lands in bucket 0" 0 (Metrics.bucket_index 1e-6);
  check Alcotest.int "below 1µs lands in bucket 0" 0 (Metrics.bucket_index 1e-9);
  (* Upper bounds are inclusive; just above goes one bucket up. *)
  check Alcotest.int "2µs in bucket 1" 1 (Metrics.bucket_index 2e-6);
  check Alcotest.int "2µs+eps in bucket 2" 2 (Metrics.bucket_index 2.01e-6);
  check Alcotest.int "1ms bucket" 10 (Metrics.bucket_index 1.024e-3);
  check Alcotest.int "1h overflows" 32 (Metrics.bucket_index 3600.);
  check (Alcotest.float 1e-18) "bucket 0 upper" 1e-6 (Metrics.bucket_upper 0);
  check (Alcotest.float 1e-12) "bucket 10 upper" 1.024e-3
    (Metrics.bucket_upper 10);
  check Alcotest.bool "overflow upper" true (Metrics.bucket_upper 32 = infinity);
  let h = Metrics.histogram "test_obs_hist_seconds" in
  List.iter (Metrics.observe h) [ 1e-6; 2e-6; 2e-6; 1.5; 9999. ];
  check Alcotest.int "count" 5 (Metrics.hist_count h);
  check (Alcotest.float 1e-6) "sum" 10000.500005 (Metrics.hist_sum h);
  let nonzero =
    List.filter (fun (_, c) -> c > 0) (Metrics.bucket_counts h)
  in
  check Alcotest.int "four occupied buckets" 4 (List.length nonzero);
  check
    (Alcotest.list Alcotest.int)
    "bucket counts" [ 1; 2; 1; 1 ]
    (List.map snd nonzero)

(* --- Counter atomicity under the pool ------------------------------------ *)

let test_counter_atomicity () =
  let c = Metrics.counter "test_obs_atomic_total" in
  List.iter
    (fun jobs ->
      let before = Metrics.counter_value c in
      let n = 500 in
      ignore
        (Pool.map ~jobs
           (fun _ ->
             Metrics.incr c;
             Metrics.add c 2)
           (List.init n Fun.id));
      check Alcotest.int
        (Printf.sprintf "no lost updates at jobs=%d" jobs)
        (3 * n)
        (Metrics.counter_value c - before))
    [ 2; 4 ]

let test_gauge_max () =
  let g = Metrics.gauge "test_obs_gauge" in
  Metrics.observe_max g 3.;
  Metrics.observe_max g 1.;
  check (Alcotest.float 1e-9) "keeps max" 3. (Metrics.gauge_value g);
  Metrics.set g 0.5;
  check (Alcotest.float 1e-9) "set overrides" 0.5 (Metrics.gauge_value g)

(* --- Snapshot formats ----------------------------------------------------- *)

let test_snapshot_formats () =
  let c = Metrics.counter "test_obs_snapshot_total" in
  Metrics.incr c;
  (match Json.parse (Metrics.to_json ()) with
  | Error msg -> Alcotest.failf "snapshot JSON invalid: %s" msg
  | Ok doc ->
      let v =
        Option.bind (Json.member "counters" doc) (fun cs ->
            Option.bind (Json.member "test_obs_snapshot_total" cs) Json.to_int)
      in
      check Alcotest.bool "counter appears" true (match v with Some n -> n >= 1 | None -> false));
  let prom = Metrics.to_prometheus () in
  let has_line needle =
    List.exists
      (fun line ->
        String.length line >= String.length needle
        && String.sub line 0 (String.length needle) = needle)
      (String.split_on_char '\n' prom)
  in
  check Alcotest.bool "TYPE line" true
    (has_line "# TYPE test_obs_snapshot_total counter");
  check Alcotest.bool "value line" true (has_line "test_obs_snapshot_total ");
  check Alcotest.bool "histogram buckets" true
    (has_line "test_obs_hist_seconds_bucket{le=\"1e-06\"}")

(* --- Report schema version ------------------------------------------------ *)

let test_report_schema_version () =
  let dir = Filename.get_temp_dir_name () in
  let path =
    Filename.concat dir (Printf.sprintf "rats_report_%d.json" (Unix.getpid ()))
  in
  let report = Report.create ~scale:"smoke" ~jobs:1 () in
  Report.record report ~label:"t" ~wall_s:1.0 ~cache_hits:1 ~cache_misses:2 ();
  Report.write report path;
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      match Report.load path with
      | Error msg -> Alcotest.failf "load: %s" msg
      | Ok doc ->
          check Alcotest.int "current version" Report.schema_version
            (Report.version_of doc);
          check Alcotest.bool "metrics embedded" true
            (Json.member "metrics" doc <> None);
          (* A pre-versioning document reads as version 1. *)
          check Alcotest.int "absent field means v1" 1
            (Report.version_of
               (Json.Obj [ ("scale", Json.Str "smoke") ])))

(* --- Timeline rendering --------------------------------------------------- *)

let test_timeline_render () =
  let clock, advance = fake_clock () in
  let t = Trace.create ~clock () in
  Trace.span_on t "outer" ~cat:"pool" (fun () ->
      advance 100.;
      Trace.span_on t "nested" ~cat:"cache" (fun () -> advance 40.);
      Trace.instant_on t "fault");
  let svg = Rats_viz.Svg.to_string (Rats_viz.Timeline.render (Trace.events t)) in
  check Alcotest.bool "has rects" true (contains svg "<rect");
  check Alcotest.bool "labels the lane" true (contains svg ">d0<");
  check Alcotest.bool "empty trace renders" true
    (contains (Rats_viz.Svg.to_string (Rats_viz.Timeline.render [])) "<svg")

let () =
  Alcotest.run "rats_obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span on raise" `Quick test_span_records_on_raise;
          Alcotest.test_case "chrome parse-back" `Quick test_chrome_parse_back;
          Alcotest.test_case "nil sink" `Quick test_disabled_path;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "counter atomicity" `Quick test_counter_atomicity;
          Alcotest.test_case "gauge max" `Quick test_gauge_max;
          Alcotest.test_case "snapshot formats" `Quick test_snapshot_formats;
        ] );
      ( "report",
        [
          Alcotest.test_case "schema version" `Quick test_report_schema_version;
        ] );
      ( "timeline",
        [ Alcotest.test_case "renders spans" `Quick test_timeline_render ] );
    ]
