(* Tests for rats_runtime: pool determinism, cache round-trip/keying/
   corruption recovery, and the qcheck order-preservation property. *)

module Suite = Rats_daggen.Suite
module Cluster = Rats_platform.Cluster
module Runner = Rats_exp.Runner
module Pool = Rats_runtime.Pool
module Cache = Rats_runtime.Cache

let check = Alcotest.check

(* A private cache directory per test run; tests must not touch the real
   bench_results/.cache. *)
let fresh_cache_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rats_cache_test_%d_%d" (Unix.getpid ()) !counter)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f))
      (Sys.readdir path) (* lint: allow D003 — deletion order is irrelevant *);
    Sys.rmdir path
  end
  else Sys.remove path

let with_cache f =
  let dir = fresh_cache_dir () in
  let cache = Cache.create ~dir () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f cache)

(* --- pool ---------------------------------------------------------------- *)

(* The acceptance bar of the subsystem: a 20-configuration suite prefix
   yields the same result list — same order, bit-identical floats — for any
   worker count. *)
let test_pool_determinism () =
  let configs = List.filteri (fun i _ -> i < 20) (Suite.all Suite.Smoke) in
  let run jobs = Pool.map ~jobs (Runner.run_config Cluster.chti) configs in
  let serial = run 1 in
  List.iter
    (fun jobs ->
      let parallel = run jobs in
      check Alcotest.int
        (Printf.sprintf "length at jobs=%d" jobs)
        (List.length serial) (List.length parallel);
      List.iter2
        (fun (a : Runner.result) (b : Runner.result) ->
          check Alcotest.bool
            (Printf.sprintf "identical result at jobs=%d for %s" jobs
               (Suite.name a.Runner.config))
            true (a = b))
        serial parallel)
    [ 2; 4; 7 ]

let test_pool_exception () =
  Alcotest.check_raises "exception propagates" Exit (fun () ->
      ignore
        (Pool.map ~jobs:4
           (fun i -> if i = 17 then raise Exit else i)
           (List.init 40 Fun.id)))

let test_pool_empty_and_mapi () =
  check Alcotest.(list int) "empty input" [] (Pool.map ~jobs:4 succ []);
  check
    Alcotest.(list int)
    "mapi indices" [ 10; 12; 14 ]
    (Pool.mapi ~jobs:3 (fun i x -> i + x) [ 10; 11; 12 ])

(* --- cache --------------------------------------------------------------- *)

let test_cache_roundtrip () =
  with_cache (fun cache ->
      let key = Cache.key [ "test"; "roundtrip" ] in
      check Alcotest.(option string) "miss before store" None
        (Cache.find cache key);
      Cache.store cache key "payload with\nnewline and \xff bytes";
      check
        Alcotest.(option string)
        "hit after store"
        (Some "payload with\nnewline and \xff bytes")
        (Cache.find cache key);
      check Alcotest.int "one hit" 1 (Cache.hits cache);
      check Alcotest.int "one miss" 1 (Cache.misses cache))

let test_cache_key_sensitivity () =
  let base = [ "runner"; "cluster-sig"; "fft-k8-s0"; "0x1p-1" ] in
  let k = Cache.key base in
  List.iter
    (fun (label, parts) ->
      check Alcotest.bool label true (k <> Cache.key parts))
    [
      ("parameter change", [ "runner"; "cluster-sig"; "fft-k8-s0"; "0x1p-2" ]);
      ("config change", [ "runner"; "cluster-sig"; "fft-k4-s0"; "0x1p-1" ]);
      ("cluster change", [ "runner"; "other-sig"; "fft-k8-s0"; "0x1p-1" ]);
      ("part-boundary shift", [ "runner"; "cluster-sigf"; "ft-k8-s0"; "0x1p-1" ]);
    ]

let test_cache_corruption_recovery () =
  with_cache (fun cache ->
      let key = Cache.key [ "test"; "corruption" ] in
      Cache.store cache key "precious result";
      let file = Cache.path cache key in
      (* Tamper with the payload behind the checksum's back. *)
      let oc = open_out_bin file in
      output_string oc "garbage that is long enough to parse as an entry";
      close_out oc;
      check Alcotest.(option string) "corrupted entry is a miss" None
        (Cache.find cache key);
      check Alcotest.bool "corrupted entry deleted" false
        (Sys.file_exists file);
      (* The slot is usable again after recovery. *)
      Cache.store cache key "recomputed";
      check
        Alcotest.(option string)
        "recovered" (Some "recomputed") (Cache.find cache key))

(* --- cache error paths (driven by fault injection) ----------------------- *)

let fault_of_spec spec =
  match Rats_runtime.Fault.parse spec with
  | Ok t -> t
  | Error reason -> Alcotest.failf "spec %S rejected: %s" spec reason

(* A write fault tears the payload behind the checksum's back; the reader
   must detect it, quarantine the file and recover on the next store. *)
let test_cache_corrupt_write_quarantine () =
  let dir = fresh_cache_dir () in
  let fault = fault_of_spec "corrupt@cache.write=1" in
  let cache = Cache.create ~fault ~dir () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      let key = Cache.key [ "test"; "torn-write" ] in
      Cache.store cache key "a payload long enough to be torn in half";
      check Alcotest.(option string) "torn entry is a miss" None
        (Cache.find cache key);
      check Alcotest.int "torn entry quarantined" 1 (Cache.quarantined cache);
      check Alcotest.bool "quarantine dir holds the evidence" true
        (Sys.file_exists (Cache.quarantine_dir cache)
        && Sys.readdir (Cache.quarantine_dir cache) <> [||] (* lint: allow D003 — only emptiness is checked *));
      (* A clean cache on the same directory can reuse the slot. *)
      let clean = Cache.create ~dir () in
      Cache.store clean key "recomputed";
      check
        Alcotest.(option string)
        "slot usable after quarantine" (Some "recomputed")
        (Cache.find clean key))

(* A crash mid-write (simulated ENOSPC) must leave no entry at all — the
   temp-file-plus-rename protocol never exposes a half-written file. *)
let test_cache_crash_write_is_noop () =
  let dir = fresh_cache_dir () in
  let fault = fault_of_spec "crash@cache.write=1" in
  let cache = Cache.create ~fault ~dir () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      let key = Cache.key [ "test"; "enospc" ] in
      Cache.store cache key "never makes it to disk";
      check Alcotest.bool "no entry file" false
        (Sys.file_exists (Cache.path cache key));
      check Alcotest.(option string) "store degraded to a no-op" None
        (Cache.find cache key);
      check Alcotest.bool "no temp litter" true
        (Array.for_all
           (fun f -> f = "quarantine")
           (Sys.readdir dir) (* lint: allow D003 — order-insensitive for_all *)))

(* A cache directory that cannot be created (nested under a regular file —
   chmod is useless when tests run as root) degrades to misses and no-op
   stores instead of raising. *)
let test_cache_unwritable_dir () =
  let blocker = Filename.temp_file "rats_cache_blocker" "" in
  Fun.protect ~finally:(fun () -> Sys.remove blocker)
    (fun () ->
      let cache = Cache.create ~dir:(Filename.concat blocker "cache") () in
      let key = Cache.key [ "test"; "unwritable" ] in
      Cache.store cache key "dropped";
      check Alcotest.(option string) "store was a no-op" None
        (Cache.find cache key);
      check Alcotest.int "lookups count as misses" 1 (Cache.misses cache))

let test_cache_runner_integration () =
  with_cache (fun cache ->
      let config = { Suite.spec = Suite.Fft { k = 2 }; sample = 0 } in
      let fresh = Runner.run_config Cluster.chti config in
      let stored = Runner.run_config ~cache Cluster.chti config in
      let replayed = Runner.run_config ~cache Cluster.chti config in
      check Alcotest.bool "cached result identical" true (fresh = stored);
      check Alcotest.bool "replayed result identical" true (fresh = replayed);
      check Alcotest.int "second lookup hit" 1 (Cache.hits cache))

(* --- qcheck -------------------------------------------------------------- *)

let prop_pool_map_order =
  QCheck.Test.make ~count:100 ~name:"Pool.map preserves order for arbitrary f"
    QCheck.(
      triple (fun1 Observable.int small_int) (small_list int) (int_range 1 8))
    (fun (f, l, jobs) ->
      Pool.map ~jobs (QCheck.Fn.apply f) l = List.map (QCheck.Fn.apply f) l)

let () =
  Alcotest.run "rats_runtime"
    [
      ( "pool",
        [
          Alcotest.test_case "determinism vs serial (20-config suite)" `Slow
            test_pool_determinism;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception;
          Alcotest.test_case "empty input and mapi" `Quick
            test_pool_empty_and_mapi;
        ] );
      ( "cache",
        [
          Alcotest.test_case "round-trip" `Quick test_cache_roundtrip;
          Alcotest.test_case "key sensitivity" `Quick
            test_cache_key_sensitivity;
          Alcotest.test_case "corrupted entry recovery" `Quick
            test_cache_corruption_recovery;
          Alcotest.test_case "torn write quarantined" `Quick
            test_cache_corrupt_write_quarantine;
          Alcotest.test_case "crashed write is a no-op" `Quick
            test_cache_crash_write_is_noop;
          Alcotest.test_case "unwritable directory degrades" `Quick
            test_cache_unwritable_dir;
          Alcotest.test_case "runner integration" `Quick
            test_cache_runner_integration;
        ] );
      ( "properties",
        [ Rats_test_support.Seeded.to_alcotest prop_pool_map_order ] );
    ]
