(* Cross-cutting property tests: invariants that tie several layers together,
   checked over randomly generated instances. *)

module Dag = Rats_dag.Dag
module Task = Rats_dag.Task
module Shape = Rats_daggen.Shape
module Random_dag = Rats_daggen.Random_dag
module Suite = Rats_daggen.Suite
module Rng = Rats_util.Rng
module Procset = Rats_util.Procset
module Cluster = Rats_platform.Cluster
module Core = Rats_core

let qcheck t = Rats_test_support.Seeded.to_alcotest t

let random_dag seed n =
  let shape = Shape.make ~width:0.5 ~regularity:0.5 ~density:0.5 ~jump:2 () in
  Random_dag.irregular (Rng.create seed) ~n_tasks:n ~shape

let dag_gen = QCheck.(pair (int_range 0 10_000) (int_range 5 40))

(* --- DAG structure ------------------------------------------------------- *)

let prop_topo_respects_edges =
  QCheck.Test.make ~count:100 ~name:"topological order puts sources first"
    dag_gen
    (fun (seed, n) ->
      let dag = random_dag seed n in
      let order = Dag.topological_order dag in
      let pos = Array.make (Dag.n_tasks dag) 0 in
      Array.iteri (fun k t -> pos.(t) <- k) order;
      List.for_all (fun e -> pos.(e.Dag.src) < pos.(e.Dag.dst)) (Dag.edges dag))

let prop_bottom_levels_decrease_along_edges =
  QCheck.Test.make ~count:100
    ~name:"bottom level strictly dominates every successor's" dag_gen
    (fun (seed, n) ->
      let dag = random_dag seed n in
      let bl = Dag.bottom_levels dag ~task_cost:(fun _ -> 1.) ~edge_cost:(fun _ _ _ -> 0.) in
      List.for_all (fun e -> bl.(e.Dag.src) >= bl.(e.Dag.dst) +. 1.) (Dag.edges dag))

let prop_top_plus_bottom_bounded_by_cp =
  QCheck.Test.make ~count:100
    ~name:"top level + bottom level never exceeds the critical path" dag_gen
    (fun (seed, n) ->
      let dag = random_dag seed n in
      let cost _ = 1. and ecost _ _ _ = 0. in
      let bl = Dag.bottom_levels dag ~task_cost:cost ~edge_cost:ecost in
      let tl = Dag.top_levels dag ~task_cost:cost ~edge_cost:ecost in
      let _, c_inf = Dag.critical_path dag ~task_cost:cost ~edge_cost:ecost in
      let ok = ref true in
      for i = 0 to Dag.n_tasks dag - 1 do
        if tl.(i) +. bl.(i) > c_inf +. 1e-9 then ok := false
      done;
      !ok)

let prop_depths_bounded_by_levels =
  QCheck.Test.make ~count:100 ~name:"level count equals max depth + 1" dag_gen
    (fun (seed, n) ->
      let dag = random_dag seed n in
      let d = Dag.depths dag in
      Array.length (Dag.level_groups dag) = 1 + Array.fold_left max 0 d)

(* --- Redistribution estimates --------------------------------------------- *)

let flat8 =
  Cluster.make ~name:"flat8" ~topology:(Rats_platform.Topology.Flat 8)
    ~speed_gflops:1. ()

let procs_list = QCheck.(list_of_size Gen.(1 -- 6) (int_bound 7))

let prop_estimate_at_least_busiest_nic =
  QCheck.Test.make ~count:200
    ~name:"redistribution estimate covers the busiest NIC's drain time"
    QCheck.(pair procs_list procs_list)
    (fun (s, r) ->
      QCheck.assume (s <> [] && r <> []);
      let sender = Procset.of_list s and receiver = Procset.of_list r in
      let bytes = 1e8 in
      let plan = Rats_redist.Redistribution.plan ~sender ~receiver ~bytes () in
      let est = Rats_redist.Redistribution.estimate flat8 plan in
      let load = Array.make 8 0. in
      List.iter
        (fun t ->
          if t.Rats_redist.Redistribution.src <> t.Rats_redist.Redistribution.dst
          then begin
            load.(t.Rats_redist.Redistribution.src) <-
              load.(t.Rats_redist.Redistribution.src) +. t.Rats_redist.Redistribution.bytes;
            load.(t.Rats_redist.Redistribution.dst) <-
              load.(t.Rats_redist.Redistribution.dst) +. t.Rats_redist.Redistribution.bytes
          end)
        plan;
      let busiest = Array.fold_left Float.max 0. load /. 1.25e8 in
      est >= busiest -. 1e-9)

(* --- End-to-end scheduling invariants -------------------------------------- *)

let config_gen =
  QCheck.(pair (int_range 0 1000) (int_range 8 25))

let prop_schedules_valid_for_all_strategies =
  (* Schedule.make re-validates every invariant (durations, precedence,
     processor ranges), so "it constructs" is a strong property. *)
  QCheck.Test.make ~count:25 ~name:"every strategy yields a valid schedule"
    config_gen
    (fun (seed, n) ->
      let dag = random_dag seed n in
      let problem = Core.Problem.make ~dag ~cluster:Cluster.chti in
      List.for_all
        (fun strategy ->
          let s = Core.Rats.schedule problem strategy in
          Core.Schedule.n_tasks s = Dag.n_tasks dag)
        [
          Core.Rats.Baseline;
          Core.Rats.Delta Core.Rats.naive_delta;
          Core.Rats.Timecost Core.Rats.naive_timecost;
        ])

let prop_simulation_dominates_compute_lower_bound =
  QCheck.Test.make ~count:20
    ~name:"simulated makespan covers the computation critical path" config_gen
    (fun (seed, n) ->
      let dag = random_dag seed n in
      let problem = Core.Problem.make ~dag ~cluster:Cluster.chti in
      let s = Core.Rats.schedule problem Core.Rats.Baseline in
      let alloc = Core.Schedule.allocation s in
      let bl =
        Dag.bottom_levels dag
          ~task_cost:(fun i -> Core.Problem.task_time problem i ~procs:alloc.(i))
          ~edge_cost:(fun _ _ _ -> 0.)
      in
      let lower = bl.(Core.Problem.entry problem) in
      (Core.Evaluate.run s).Core.Evaluate.makespan >= lower -. 1e-6)

let prop_work_conservation =
  QCheck.Test.make ~count:20
    ~name:"simulated busy time equals the schedule's work" config_gen
    (fun (seed, n) ->
      let dag = random_dag seed n in
      let problem = Core.Problem.make ~dag ~cluster:Cluster.chti in
      let s = Core.Rats.schedule problem (Core.Rats.Timecost Core.Rats.naive_timecost) in
      let r = Core.Evaluate.run s in
      let busy = ref 0. in
      Array.iteri
        (fun i start ->
          if not (Core.Problem.is_virtual problem i) then
            busy :=
              !busy
              +. (r.Core.Evaluate.finishes.(i) -. start)
                 *. float_of_int
                      (Procset.size (Core.Schedule.entry s i).Core.Schedule.procs))
        r.Core.Evaluate.starts;
      Float.abs (!busy -. Core.Schedule.total_work s)
      <= 1e-6 *. Float.max 1. (Core.Schedule.total_work s))

let prop_strategies_never_overflow_machine =
  QCheck.Test.make ~count:25 ~name:"no processor set exceeds the cluster"
    config_gen
    (fun (seed, n) ->
      let dag = random_dag seed n in
      let problem = Core.Problem.make ~dag ~cluster:Cluster.chti in
      let s = Core.Rats.schedule problem (Core.Rats.Delta { mindelta = -1.; maxdelta = 2. }) in
      Array.for_all
        (fun e ->
          Procset.size e.Core.Schedule.procs <= Core.Problem.n_procs problem)
        (Core.Schedule.entries s))

let () =
  Alcotest.run "properties"
    [
      ( "dag",
        [
          qcheck prop_topo_respects_edges;
          qcheck prop_bottom_levels_decrease_along_edges;
          qcheck prop_top_plus_bottom_bounded_by_cp;
          qcheck prop_depths_bounded_by_levels;
        ] );
      ( "redistribution", [ qcheck prop_estimate_at_least_busiest_nic ] );
      ( "scheduling",
        [
          qcheck prop_schedules_valid_for_all_strategies;
          qcheck prop_simulation_dominates_compute_lower_bound;
          qcheck prop_work_conservation;
          qcheck prop_strategies_never_overflow_machine;
        ] );
    ]
