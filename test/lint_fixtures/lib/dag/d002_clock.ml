(* D002 fixture: wall-clock read outside lib/obs; the suppressed case
   uses the attribute syntax. Parsed by rats_lint's tests, never compiled. *)

let positive () = Unix.gettimeofday ()

let suppressed () = (Unix.gettimeofday () [@lint.allow "D002 — fixture: coarse display timestamp only"])
