(* D005 fixture, frontier: in-scope (lib/sim) code whose nondeterminism
   is two modules away — a per-file scan of this file is clean; the
   whole-program taint pass reports the full path. Parsed by rats_lint's
   tests, never compiled. *)

let observe u = Sampling.sample u

let observe_quiet u = Sampling.sample (u +. 1.0) (* lint: allow D005 — fixture: sampled diagnostics only, never lands in results *)
