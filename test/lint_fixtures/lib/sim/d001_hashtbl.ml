(* D001 fixture: unordered hash traversal in a result-producing library.
   Parsed by rats_lint's tests, never compiled. *)

let positive tbl = Hashtbl.iter (fun _ v -> ignore v) tbl

let suppressed tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] (* lint: allow D001 — fixture: caller sorts the folded list *)

let negative tbl = Hashtbl.length tbl
