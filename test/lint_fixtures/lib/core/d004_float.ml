(* D004 fixture: polymorphic comparison on float operands, evidenced by a
   literal or an annotation. Parsed by rats_lint's tests, never compiled. *)

let positive x = max 1.0 x

let suppressed x y = compare (x : float) y (* lint: allow D004 — fixture: operands are NaN-free by construction *)

let negative x y = Float.max x y
