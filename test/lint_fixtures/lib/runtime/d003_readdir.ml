(* D003 fixture: unsorted directory listing. The negative case shows the
   sort-nearby heuristic. Parsed by rats_lint's tests, never compiled. *)

let positive dir = Array.to_list (Sys.readdir dir)

let suppressed dir = Sys.readdir dir (* lint: allow D003 — fixture: order handled downstream *)

let negative dir =
  let entries = Sys.readdir dir in
  Array.sort String.compare entries;
  entries
