(* R002 fixture: Mutex.lock without a guaranteed unlock. The negative
   shows the Fun.protect discipline. Parsed by rats_lint's tests, never
   compiled. *)

let positive m x =
  Mutex.lock m;
  let r = x + 1 in
  Mutex.unlock m;
  r

let suppressed m = Mutex.lock m; Mutex.unlock m (* lint: allow R002 — fixture: nothing between lock and unlock can raise *)

let negative m x =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> x + 1)
