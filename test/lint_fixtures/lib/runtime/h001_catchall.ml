(* H001 fixture: catch-all exception handlers in runtime code. The guarded
   and constructor-matching cases are negative. Parsed by rats_lint's
   tests, never compiled. *)

let positive f = try f () with _ -> None

let suppressed f = try f () with _ -> None (* lint: allow H001 — fixture: caller re-raises from the captured error *)

let negative_specific f = try f () with Not_found -> None

let negative_guarded f = try f () with e when e <> Exit -> Some e
