(* R001 fixture: shared mutable state captured by parallel closures. The
   negative shows the sanctioned Atomic route. Parsed by rats_lint's
   tests, never compiled. *)

let positive () =
  let table = Hashtbl.create 8 in
  let d = Domain.spawn (fun () -> Hashtbl.replace table 1 "x") in
  Domain.join d;
  Hashtbl.length table

let suppressed () =
  let buf = Buffer.create 64 in
  let d = Domain.spawn (fun () -> Buffer.add_char buf 'x') in (* lint: allow R001 — fixture: single writer, buffer read only after join *)
  Domain.join d;
  Buffer.length buf

let negative () =
  let hits = Atomic.make 0 in
  let d = Domain.spawn (fun () -> Atomic.incr hits) in
  Domain.join d;
  Atomic.get hits
