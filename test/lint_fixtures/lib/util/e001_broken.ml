(* E001 fixture: deliberately unparseable. *)
let broken = (
