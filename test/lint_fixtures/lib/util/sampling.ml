(* D005 fixture chain, middle hop: launders the entropy through one more
   module so only the whole-program pass can see it. Parsed by
   rats_lint's tests, never compiled. *)

let sample u = Entropy_pool.draw () *. u
