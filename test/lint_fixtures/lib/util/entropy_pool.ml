(* D005 fixture chain, leaf: draws raw entropy. Out of D005 scope
   (lib/util) and invisible to D002's name list, so every per-file scan
   of this chain stays clean. Parsed by rats_lint's tests, never
   compiled. *)

let draw () = Random.float 1.0
