(* H002 fixture: direct stdout print in library code. Parsed by
   rats_lint's tests, never compiled. *)

let positive x = print_endline x

let suppressed x = Printf.printf "%s" x (* lint: allow H002 — fixture: demo of a sanctioned CLI helper *)

let negative ppf x = Format.fprintf ppf "%s" x
