(* File-wide suppression fixture: a floating [@@@lint.allow] covers every
   matching finding in the file. Parsed by rats_lint's tests, never
   compiled. *)

[@@@lint.allow "D002 — fixture: whole-file sandbox for clock experiments"]

let a () = Unix.gettimeofday ()
let b () = Unix.time ()
