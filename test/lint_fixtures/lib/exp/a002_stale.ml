(* A002 fixture: suppressions no finding needs. The first is the
   unsuppressed positive; the second also names A002 itself, which is
   the sanctioned way to keep a deliberately stale allow. Parsed by
   rats_lint's tests, never compiled. *)

let positive = 1 (* lint: allow D001 — fixture: deliberately stale, nothing here traverses a table *)

let suppressed = 2 (* lint: allow D001, A002 — fixture: stale on purpose and allowed to stay that way *)
