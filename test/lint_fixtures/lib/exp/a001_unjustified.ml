(* A001 fixture: a suppression without a written justification still
   suppresses its target but is itself reported. Parsed by rats_lint's
   tests, never compiled. *)

let suppressed tbl = Hashtbl.iter (fun _ v -> ignore v) tbl (* lint: allow D001 *)
