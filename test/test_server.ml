(* Tests for the online scheduling service (lib/server): API and protocol
   codecs, the admission/queueing discipline, online-engine determinism
   (across runs, worker counts and journal resume), and agreement between
   the shared-engine replay and the offline evaluator. *)

module Api = Rats_server.Api
module Protocol = Rats_server.Protocol
module Admission = Rats_server.Admission
module Jobq = Rats_server.Jobq
module Engine = Rats_server.Engine
module Load = Rats_server.Load
module Suite = Rats_daggen.Suite
module Shape = Rats_daggen.Shape
module Cluster = Rats_platform.Cluster
module Journal = Rats_runtime.Journal
module Fault = Rats_runtime.Fault
module Core = Rats_core
module J = Rats_obs.Json
module Seeded = Rats_test_support.Seeded

let check = Alcotest.check

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rats_server_test_%d_%d" (Unix.getpid ()) !counter)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f))
      (Sys.readdir path) (* lint: allow D003 — deletion order is irrelevant *);
    Sys.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

(* A quiet configuration: no wall-clock noise in tests. *)
let config cluster = { (Engine.default_config cluster) with clock = (fun () -> 0.) }

let fft k sample = Api.Generated { Suite.spec = Suite.Fft { k }; sample }

let request ?(tenant = "t0") ?(strategy = Core.Rats.Baseline) ?(procs = 0) job =
  { Api.tenant; job; strategy; procs }

let log_string engine =
  String.concat "\n"
    (List.map (fun ev -> J.to_string (Api.stamped_to_json ev)) (Engine.events engine))

(* --- codecs -------------------------------------------------------------- *)

let roundtrip to_json of_json eq what v =
  let json = to_json v in
  (* Through the printer and parser, like the wire. *)
  match J.parse (J.to_string json) with
  | Error e -> Alcotest.failf "%s: reparse failed: %s" what e
  | Ok json' -> (
      match of_json json' with
      | Error e -> Alcotest.failf "%s: decode failed: %s" what e
      | Ok v' -> check Alcotest.bool what true (eq v v'))

let test_request_roundtrip () =
  let specs =
    [
      fft 4 2;
      Api.Generated
        {
          Suite.spec =
            Suite.Layered
              {
                n_tasks = 25;
                shape = Shape.make ~width:0.5 ~regularity:0.8 ~density:0.2 ();
              };
          sample = 1;
        };
      Api.Generated
        {
          Suite.spec =
            Suite.Irregular
              {
                n_tasks = 50;
                shape =
                  Shape.make ~width:0.2 ~regularity:0.2 ~density:0.8 ~jump:2 ();
              };
          sample = 0;
        };
      Api.Generated { Suite.spec = Suite.Strassen; sample = 3 };
      Api.Inline
        {
          name = "diamond";
          tasks =
            Array.init 4 (fun i ->
                {
                  Api.data_elements = 1000. +. float_of_int i;
                  flop = 1e9;
                  alpha = 0.9;
                });
          edges =
            [
              { Api.src = 0; dst = 1; bytes = 1e6 };
              { Api.src = 0; dst = 2; bytes = 2e6 };
              { Api.src = 1; dst = 3; bytes = 3e6 };
              { Api.src = 2; dst = 3; bytes = 4e6 };
            ];
        };
    ]
  in
  let strategies =
    [
      Core.Rats.Baseline;
      Core.Rats.Delta Core.Rats.naive_delta;
      Core.Rats.Timecost { minrho = 0.25; packing = false };
    ]
  in
  List.iter
    (fun job ->
      List.iter
        (fun strategy ->
          roundtrip Api.request_to_json Api.request_of_json ( = ) "request"
            (request ~tenant:"alice" ~strategy ~procs:7 job))
        strategies)
    specs

let test_event_roundtrip () =
  let events =
    [
      Api.Submitted { procs = 8; strategy = "delta"; spec = "fft-k4-s0" };
      Api.Admitted;
      Api.Queued { depth = 3 };
      Api.Started { procs = [ 0; 1; 5 ]; est_makespan = 12.5 };
      Api.Redistribution
        { src_task = 3; dst_task = 7; bytes = 1.5e8; started = 3.25 };
      Api.Completed
        {
          makespan = 100.125;
          sojourn = 110.5;
          waited = 10.375;
          remote_bytes = 2.5e9;
          redistributions = 4;
          avoided = 2;
        };
      Api.Rejected { reason = Api.Queue_full };
      Api.Rejected { reason = Api.Tenant_quota };
      Api.Rejected { reason = Api.Overloaded { retry_after = 2.5 } };
      Api.Expired { waited = 31.75 };
    ]
  in
  List.iteri
    (fun i event ->
      roundtrip Api.stamped_to_json Api.stamped_of_json ( = )
        (Printf.sprintf "event %d" i)
        {
          Api.t = 1.5 *. float_of_int i;
          seq = i;
          job_id = 42;
          tenant = "bob";
          job_name = "strassen-s0";
          event;
        })
    events

let test_protocol_roundtrip () =
  let req = request ~tenant:"alice" ~procs:4 (fft 2 0) in
  let client_msgs =
    [
      Protocol.Ping;
      Protocol.Plan req;
      Protocol.Submit { at = Some 3.5; request = req };
      Protocol.Submit { at = None; request = req };
      Protocol.Watch;
      Protocol.Drain;
      Protocol.Log;
      Protocol.Stats;
      Protocol.Health;
      Protocol.Shutdown;
    ]
  in
  List.iteri
    (fun i m ->
      roundtrip Protocol.client_to_json Protocol.client_of_json ( = )
        (Printf.sprintf "client msg %d" i)
        m)
    client_msgs;
  let stamped =
    {
      Api.t = 0.5;
      seq = 9;
      job_id = 1;
      tenant = "t";
      job_name = "n";
      event = Api.Admitted;
    }
  in
  let server_msgs =
    [
      Protocol.Pong;
      Protocol.Ack { id = 17 };
      Protocol.Placed (J.Obj [ ("x", J.Num 1.) ]);
      Protocol.Watching;
      Protocol.Event stamped;
      Protocol.Drained { end_time = 54.25 };
      Protocol.Log [ stamped; { stamped with Api.seq = 10 } ];
      Protocol.Stats (J.Obj [ ("completed", J.Num 3.) ]);
      Protocol.Healthy
        (J.Obj [ ("ready", J.Bool true); ("degraded", J.Bool false) ]);
      Protocol.Bye;
      Protocol.Err "nope";
    ]
  in
  List.iteri
    (fun i m ->
      roundtrip Protocol.server_to_json Protocol.server_of_json ( = )
        (Printf.sprintf "server msg %d" i)
        m)
    server_msgs

let test_decoder_chunked () =
  let docs =
    [
      Protocol.client_to_json Protocol.Ping;
      Protocol.client_to_json
        (Protocol.Submit
           { at = Some 1.; request = request ~tenant:"x" (fft 2 1) });
      Protocol.server_to_json (Protocol.Ack { id = 3 });
    ]
  in
  let stream = String.concat "" (List.map Protocol.to_frame docs) in
  (* Feed one byte at a time: framing must never depend on chunk shape. *)
  let dec = Protocol.Decoder.create () in
  let out = ref [] in
  String.iter
    (fun c ->
      Protocol.Decoder.feed dec (Bytes.make 1 c) 0 1;
      let rec pop () =
        match Protocol.Decoder.next dec with
        | Ok (Some doc) ->
            out := doc :: !out;
            pop ()
        | Ok None -> ()
        | Error e -> Alcotest.failf "decoder error: %s" e
      in
      pop ())
    stream;
  check Alcotest.int "all frames decoded" (List.length docs)
    (List.length !out);
  List.iter2
    (fun want got ->
      check Alcotest.string "frame" (J.to_string want) (J.to_string got))
    docs (List.rev !out);
  (* A hostile length prefix is a sticky error. *)
  let dec = Protocol.Decoder.create () in
  let bad = Bytes.create 4 in
  Bytes.set_int32_be bad 0 0x7fffffffl;
  Protocol.Decoder.feed dec bad 0 4;
  (match Protocol.Decoder.next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized frame accepted");
  match Protocol.Decoder.next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoder error not sticky"

(* Fuzz: the decoder must never raise, must decode a valid prefix intact,
   and must turn any byte damage into a sticky error — regardless of how
   the stream is chunked. This is the offline twin of the daemon's
   [server.read] corruption site. *)
let decoder_fuzz_test =
  let open QCheck2 in
  let frames =
    [|
      Protocol.to_frame (Protocol.client_to_json Protocol.Ping);
      Protocol.to_frame (Protocol.client_to_json Protocol.Watch);
      Protocol.to_frame
        (Protocol.client_to_json
           (Protocol.Submit
              { at = Some 2.; request = request ~tenant:"fuzz" (fft 2 0) }));
      Protocol.to_frame (Protocol.server_to_json (Protocol.Ack { id = 9 }));
      Protocol.to_frame
        (Protocol.server_to_json (Protocol.Drained { end_time = 1.5 }));
    |]
  in
  let gen =
    Gen.(
      let* picks = list_size (int_range 1 6) (int_range 0 4) in
      let* cuts = list_size (int_range 0 12) (int_range 0 4096) in
      let* damage =
        opt (pair (int_range 0 4096) (int_range 1 255))
        (* position, xor mask *)
      in
      return (picks, cuts, damage))
  in
  let prop (picks, cuts, damage) =
    let stream = String.concat "" (List.map (fun i -> frames.(i)) picks) in
    let stream, damaged_at =
      match damage with
      | Some (pos, mask) when pos < String.length stream ->
          let b = Bytes.of_string stream in
          Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask));
          (Bytes.to_string b, Some pos)
      | _ -> (stream, None)
    in
    (* Split points define the chunking; the decoder must not care. *)
    let splits =
      List.sort_uniq compare
        (0 :: String.length stream
        :: List.filter (fun c -> c <= String.length stream) cuts)
    in
    let dec = Protocol.Decoder.create () in
    let decoded = ref 0 in
    let errored = ref false in
    let rec pop () =
      if not !errored then
        match Protocol.Decoder.next dec with
        | Ok (Some _) ->
            incr decoded;
            pop ()
        | Ok None -> ()
        | Error _ -> errored := true
    in
    let rec feed = function
      | a :: (b :: _ as rest) ->
          Protocol.Decoder.feed dec (Bytes.of_string stream) a (b - a);
          pop ();
          feed rest
      | _ -> ()
    in
    feed splits;
    (* Frames wholly before any damage must have decoded; an intact
       stream must decode completely without error. *)
    let intact_prefix =
      let limit =
        match damaged_at with
        | None -> String.length stream
        | Some pos -> pos
      in
      let rec count off n = function
        | [] -> n
        | i :: rest ->
            let off' = off + String.length frames.(i) in
            if off' <= limit then count off' (n + 1) rest else n
      in
      count 0 0 picks
    in
    (match damaged_at with
    | None ->
        if !errored then Test.fail_report "error on an undamaged stream";
        if !decoded <> List.length picks then
          Test.fail_reportf "decoded %d of %d undamaged frames" !decoded
            (List.length picks)
    | Some _ ->
        (* Damage may hit a length prefix (error), a payload (error from
           the JSON parser) or may even keep the JSON well-formed; the
           only hard guarantees are prefix delivery and no crash. *)
        if !decoded < intact_prefix then
          Test.fail_reportf "decoded %d, expected at least %d before damage"
            !decoded intact_prefix);
    (* Sticky: after an error, next never yields a document again. *)
    if !errored then
      (match Protocol.Decoder.next dec with
      | Error _ -> ()
      | Ok _ -> Test.fail_report "decoder error not sticky");
    true
  in
  Seeded.to_alcotest
    (Test.make ~name:"decoder fuzz (split + corrupt)" ~count:500 gen prop)

(* --- validation and admission -------------------------------------------- *)

let test_validate () =
  let n_procs = 20 in
  let ok r =
    match Api.validate ~n_procs r with
    | Ok k -> k
    | Error e -> Alcotest.failf "unexpected rejection: %s" e
  in
  let err r =
    match Api.validate ~n_procs r with
    | Ok _ -> Alcotest.fail "invalid request accepted"
    | Error _ -> ()
  in
  check Alcotest.int "procs 0 = whole platform" 20 (ok (request (fft 2 0)));
  check Alcotest.int "explicit share" 5 (ok (request ~procs:5 (fft 2 0)));
  err (request ~procs:21 (fft 2 0));
  err (request ~procs:(-1) (fft 2 0));
  err (request ~tenant:"" (fft 2 0));
  err
    (request
       (Api.Inline { name = "empty"; tasks = [||]; edges = [] }));
  (* A cyclic inline DAG must be caught at validation. *)
  err
    (request
       (Api.Inline
          {
            name = "cycle";
            tasks =
              Array.make 2 { Api.data_elements = 1.; flop = 1.; alpha = 1. };
            edges =
              [
                { Api.src = 0; dst = 1; bytes = 1. };
                { Api.src = 1; dst = 0; bytes = 1. };
              ];
          }))

let test_admission_policy () =
  let policy = Admission.make ~queue_limit:3 ~tenant_limit:2 () in
  let decide ~queue_depth ~tenant_outstanding =
    Admission.decide policy ~queue_depth ~tenant_outstanding
  in
  check Alcotest.bool "accepts" true
    (decide ~queue_depth:0 ~tenant_outstanding:0 = Admission.Accept);
  (* Boundary: one below each limit is still in. *)
  check Alcotest.bool "queue one below limit" true
    (decide ~queue_depth:2 ~tenant_outstanding:0 = Admission.Accept);
  check Alcotest.bool "tenant one below quota" true
    (decide ~queue_depth:0 ~tenant_outstanding:1 = Admission.Accept);
  (* Boundary: exactly at each limit is out. *)
  check Alcotest.bool "queue full" true
    (decide ~queue_depth:3 ~tenant_outstanding:0
    = Admission.Reject Api.Queue_full);
  check Alcotest.bool "tenant quota" true
    (decide ~queue_depth:0 ~tenant_outstanding:2
    = Admission.Reject Api.Tenant_quota);
  check Alcotest.bool "tenant quota wins" true
    (decide ~queue_depth:3 ~tenant_outstanding:2
    = Admission.Reject Api.Tenant_quota);
  (* With the default watermark of 1.0 shedding never preempts the hard
     queue_full check. *)
  check Alcotest.int "threshold capped at queue_limit" 3
    (Admission.shed_threshold policy);
  (* Constructor validation. *)
  let invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | (_ : Admission.policy) -> Alcotest.fail "invalid policy accepted"
  in
  invalid (fun () -> Admission.make ~queue_limit:0 ~tenant_limit:1 ());
  invalid (fun () -> Admission.make ~queue_limit:1 ~tenant_limit:0 ());
  invalid (fun () ->
      Admission.make ~shed_watermark:0. ~queue_limit:1 ~tenant_limit:1 ());
  invalid (fun () ->
      Admission.make ~shed_watermark:1.5 ~queue_limit:1 ~tenant_limit:1 ());
  invalid (fun () ->
      Admission.make ~retry_after_s:0. ~queue_limit:1 ~tenant_limit:1 ());
  invalid (fun () ->
      Admission.make ~deadline_s:(-1.) ~queue_limit:1 ~tenant_limit:1 ())

let test_admission_shedding () =
  let policy =
    Admission.make ~shed_watermark:0.5 ~retry_after_s:2. ~queue_limit:10
      ~tenant_limit:10 ()
  in
  let decide queue_depth =
    Admission.decide policy ~queue_depth ~tenant_outstanding:0
  in
  check Alcotest.int "threshold = ceil(0.5 * 10)" 5
    (Admission.shed_threshold policy);
  check Alcotest.bool "below watermark accepts" true
    (decide 4 = Admission.Accept);
  (* At the threshold the retry hint starts at one base unit and grows
     linearly with the overshoot — deeper queue, longer backoff. *)
  check Alcotest.bool "at watermark sheds" true
    (decide 5 = Admission.Reject (Api.Overloaded { retry_after = 2. }));
  check Alcotest.bool "overshoot scales the hint" true
    (decide 8 = Admission.Reject (Api.Overloaded { retry_after = 8. }));
  (* The hard limit still wins over shedding at full depth. *)
  check Alcotest.bool "hard limit past watermark" true
    (decide 10 = Admission.Reject Api.Queue_full);
  (* A tenant over quota is never offered a retry hint. *)
  check Alcotest.bool "tenant quota beats shedding" true
    (Admission.decide policy ~queue_depth:7 ~tenant_outstanding:10
    = Admission.Reject Api.Tenant_quota)

let test_jobq () =
  let q = Jobq.create () in
  Jobq.push q ~tenant:"a" 1;
  Jobq.push q ~tenant:"a" 2;
  Jobq.push q ~tenant:"b" 3;
  Jobq.push q ~tenant:"a" 4;
  check Alcotest.int "depth" 4 (Jobq.depth q);
  check Alcotest.int "tenant depth" 3 (Jobq.tenant_depth q "a");
  (* Tenant a's head doesn't fit: its later jobs are locked out, but b's
     job backfills. *)
  let fits x = x <> 1 in
  check Alcotest.(option int) "backfill" (Some 3) (Jobq.pop q ~fits);
  (* Everything fits: strict arrival order within tenant a. *)
  let fits _ = true in
  check Alcotest.(option int) "fifo 1" (Some 1) (Jobq.pop q ~fits);
  check Alcotest.(option int) "fifo 2" (Some 2) (Jobq.pop q ~fits);
  check Alcotest.(option int) "fifo 3" (Some 4) (Jobq.pop q ~fits);
  check Alcotest.(option int) "empty" None (Jobq.pop q ~fits)

let test_jobq_remove () =
  let q = Jobq.create () in
  Jobq.push q ~tenant:"a" 1;
  Jobq.push q ~tenant:"b" 2;
  Jobq.push q ~tenant:"a" 3;
  Jobq.push q ~tenant:"a" 1;
  (* [remove] takes the oldest match only and keeps the rest in order. *)
  check Alcotest.(option int) "removes oldest match" (Some 1)
    (Jobq.remove q ~f:(fun x -> x = 1));
  check Alcotest.int "depth after removal" 3 (Jobq.depth q);
  check Alcotest.int "tenant depth after removal" 2 (Jobq.tenant_depth q "a");
  check Alcotest.(option int) "no match" None
    (Jobq.remove q ~f:(fun x -> x = 99));
  let fits _ = true in
  check Alcotest.(option int) "order preserved 1" (Some 2) (Jobq.pop q ~fits);
  check Alcotest.(option int) "order preserved 2" (Some 3) (Jobq.pop q ~fits);
  check Alcotest.(option int) "duplicate survives" (Some 1) (Jobq.pop q ~fits);
  check Alcotest.(option int) "drained" None (Jobq.pop q ~fits);
  (* Removing a blocked tenant-head unblocks that tenant's next job. *)
  let q = Jobq.create () in
  Jobq.push q ~tenant:"a" 10;
  Jobq.push q ~tenant:"a" 11;
  let fits x = x <> 10 in
  check Alcotest.(option int) "head blocks its tenant" None (Jobq.pop q ~fits);
  check Alcotest.(option int) "expire the head" (Some 10)
    (Jobq.remove q ~f:(fun x -> x = 10));
  check Alcotest.(option int) "successor unblocked" (Some 11)
    (Jobq.pop q ~fits)

(* --- online engine ------------------------------------------------------- *)

let small_profile ?(strategy = Core.Rats.Delta Core.Rats.naive_delta) cluster =
  {
    (Load.default_profile cluster) with
    Load.n_jobs = 16;
    n_tenants = 4;
    rate = 0.1;
    seed = 7;
    strategy;
  }

let test_engine_deterministic () =
  let cluster = Cluster.chti in
  let profile = small_profile cluster in
  let run jobs =
    let engine = Engine.create { (config cluster) with Engine.jobs } in
    let report = Load.run engine profile in
    (report, log_string engine)
  in
  let report1, log1 = run (Some 1) in
  let report2, log2 = run (Some 1) in
  check Alcotest.bool "re-run identical" true (log1 = log2);
  check Alcotest.int "all jobs completed" report1.Load.jobs
    (report1.Load.completed + report1.Load.rejected);
  ignore report2;
  (* Worker count must never leak into the event log. *)
  let _, log4 = run (Some 4) in
  check Alcotest.bool "jobs-setting invariant" true (log1 = log4)

let test_engine_invariants () =
  let cluster = Cluster.chti in
  let n_procs = Cluster.n_procs cluster in
  let engine = Engine.create (config cluster) in
  (* Track processor exclusivity from the event stream alone. *)
  let running = Hashtbl.create 16 (* job_id -> procs *) in
  let busy = ref 0 in
  let started_order = ref [] in
  Engine.subscribe engine (fun ev ->
      match ev.Api.event with
      | Api.Started { procs; _ } ->
          List.iter
            (fun p ->
              if p < 0 || p >= n_procs then
                Alcotest.failf "granted processor %d out of range" p;
              Hashtbl.iter
                (fun _ held ->
                  if List.mem p held then
                    Alcotest.failf "processor %d granted twice" p)
                running)
            procs;
          Hashtbl.replace running ev.Api.job_id procs;
          busy := !busy + List.length procs;
          if !busy > n_procs then
            Alcotest.failf "oversubscribed: %d of %d processors" !busy n_procs;
          started_order := (ev.Api.tenant, ev.Api.job_id) :: !started_order
      | Api.Completed _ ->
          (match Hashtbl.find_opt running ev.Api.job_id with
          | Some procs ->
              busy := !busy - List.length procs;
              Hashtbl.remove running ev.Api.job_id
          | None -> Alcotest.fail "completion of a job that never started")
      | _ -> ());
  let report = Load.run engine (small_profile cluster) in
  check Alcotest.int "all jobs completed" report.Load.jobs
    (report.Load.completed + report.Load.rejected);
  check Alcotest.int "nothing left running" 0 !busy;
  check Alcotest.bool "queueing exercised" true (report.Load.queue_depth_max > 0);
  (* FIFO within tenant: a tenant's jobs start in arrival (= id) order. *)
  let by_tenant = Hashtbl.create 8 in
  List.iter
    (fun (tenant, id) ->
      (* Reverse chronological fold: each id must be below its tenant's
         previously seen minimum. *)
      match Hashtbl.find_opt by_tenant tenant with
      | Some earlier when id >= earlier ->
          Alcotest.failf "tenant %s started job %d after job %d" tenant id
            earlier
      | _ -> Hashtbl.replace by_tenant tenant id)
    !started_order;
  let stats = Engine.stats engine in
  check Alcotest.int "stats.completed" report.Load.completed
    stats.Engine.completed;
  check Alcotest.bool "utilization in (0, 1]" true
    (stats.Engine.utilization > 0. && stats.Engine.utilization <= 1.)

let test_engine_rejections () =
  let cluster = Cluster.chti in
  let policy = Admission.make ~queue_limit:64 ~tenant_limit:2 () in
  let engine =
    Engine.create { (config cluster) with Engine.policy }
  in
  (* Five simultaneous whole-platform jobs from one tenant: the first is
     dispatched immediately, the second queues, the rest exceed the
     tenant's outstanding quota. *)
  for _ = 1 to 5 do
    match Engine.submit engine ~at:0. (request ~tenant:"greedy" (fft 2 0)) with
    | Ok (_ : int) -> ()
    | Error e -> Alcotest.failf "submit failed: %s" e
  done;
  ignore (Engine.drain engine);
  let stats = Engine.stats engine in
  check Alcotest.int "submitted" 5 stats.Engine.submitted;
  check Alcotest.int "admitted" 2 stats.Engine.admitted;
  check Alcotest.int "rejected" 3 stats.Engine.rejected;
  check Alcotest.int "completed" 2 stats.Engine.completed;
  let rejections =
    List.filter
      (fun ev ->
        match ev.Api.event with
        | Api.Rejected { reason = Api.Tenant_quota } -> true
        | Api.Rejected _ -> Alcotest.fail "wrong rejection reason"
        | _ -> false)
      (Engine.events engine)
  in
  check Alcotest.int "rejection events" 3 (List.length rejections)

let test_engine_deadline_expiry () =
  let cluster = Cluster.chti in
  (* A queue-wait deadline far below any makespan: whole-platform jobs
     serialize, so of a simultaneous burst only the first ever runs — the
     rest are still waiting when their deadline fires. *)
  let deadline = 1e-3 in
  let policy =
    Admission.make ~deadline_s:deadline ~queue_limit:64 ~tenant_limit:64 ()
  in
  let run () =
    let engine = Engine.create { (config cluster) with Engine.policy } in
    for _ = 1 to 4 do
      match Engine.submit engine ~at:0. (request ~tenant:"t" (fft 2 0)) with
      | Ok (_ : int) -> ()
      | Error e -> Alcotest.failf "submit failed: %s" e
    done;
    ignore (Engine.drain engine);
    engine
  in
  let engine = run () in
  let stats = Engine.stats engine in
  check Alcotest.int "submitted" 4 stats.Engine.submitted;
  check Alcotest.int "admitted" 4 stats.Engine.admitted;
  check Alcotest.int "head of burst completed" 1 stats.Engine.completed;
  check Alcotest.int "waiting tail expired" 3 stats.Engine.expired;
  check Alcotest.int "every job accounted for" 4
    (stats.Engine.completed + stats.Engine.rejected + stats.Engine.expired);
  (* Expiry events carry the queue wait, which is exactly the deadline. *)
  let expiries =
    List.filter_map
      (fun ev ->
        match ev.Api.event with
        | Api.Expired { waited } -> Some (ev.Api.t, waited)
        | _ -> None)
      (Engine.events engine)
  in
  check Alcotest.int "expiry events match stats" stats.Engine.expired
    (List.length expiries);
  List.iter
    (fun (t, waited) ->
      check (Alcotest.float 1e-9) "waited = deadline" deadline waited;
      check (Alcotest.float 1e-9) "stamped at arrival + deadline" deadline t)
    expiries;
  (* Expiry is part of the deterministic event log. *)
  check Alcotest.bool "deterministic" true
    (log_string engine = log_string (run ()))

let test_engine_delay_faults_invariant () =
  (* Delay faults stall the wall clock only: with every delay site firing
     at p=1 the event log must stay byte-identical to the unfaulted run.
     delay_s is kept microscopic so the test doesn't actually wait. *)
  let cluster = Cluster.chti in
  let profile = { (small_profile cluster) with Load.n_jobs = 8 } in
  let fault =
    match
      Fault.parse
        "seed=1,delay_s=0.0001,delay@engine.step=1,delay@replay.task=1"
    with
    | Ok f -> f
    | Error e -> Alcotest.failf "fault spec rejected: %s" e
  in
  let run fault =
    let engine =
      Engine.create { (config cluster) with Engine.fault }
    in
    ignore (Load.run engine profile);
    log_string engine
  in
  check Alcotest.bool "delay faults never change the log" true
    (run None = run (Some fault))

let test_engine_matches_evaluate () =
  (* A single job on the whole platform must behave exactly like the
     offline evaluator: same state machine, same engine, same numbers. *)
  let cluster = Cluster.chti in
  List.iter
    (fun strategy ->
      let r = request ~strategy (fft 4 1) in
      let _, offline = Api.run_local ~cluster r in
      let engine = Engine.create (config cluster) in
      (match Engine.submit engine ~at:0. r with
      | Ok (_ : int) -> ()
      | Error e -> Alcotest.failf "submit failed: %s" e);
      ignore (Engine.drain engine);
      let completed =
        List.find_map
          (fun ev ->
            match ev.Api.event with
            | Api.Completed
                {
                  makespan;
                  remote_bytes;
                  redistributions;
                  avoided;
                  sojourn = _;
                  waited = _;
                } ->
                Some (ev.Api.t, makespan, remote_bytes, redistributions, avoided)
            | _ -> None)
          (Engine.events engine)
      in
      match completed with
      | None -> Alcotest.fail "no completion event"
      | Some (at, makespan, remote_bytes, redistributions, avoided) ->
          check Alcotest.bool "makespan bit-equal" true
            (makespan = offline.Core.Evaluate.makespan);
          check Alcotest.bool "remote bytes bit-equal" true
            (remote_bytes = offline.Core.Evaluate.remote_bytes);
          check Alcotest.int "redistributions"
            offline.Core.Evaluate.redistributions redistributions;
          check Alcotest.int "avoided" offline.Core.Evaluate.avoided avoided;
          check Alcotest.bool "completion stamp = makespan" true
            (at = offline.Core.Evaluate.makespan))
    [ Core.Rats.Baseline; Core.Rats.Delta Core.Rats.naive_delta ]

let test_journal_resume () =
  with_dir @@ fun dir ->
  let cluster = Cluster.chti in
  let profile = small_profile cluster in
  let arrivals = Load.trace profile in
  (* Reference: uninterrupted journaled run. *)
  let reference =
    let journal = Journal.open_ ~dir ~name:"ref" ~resume:false () in
    let engine = Engine.create ~journal (config cluster) in
    List.iter
      (fun (at, r) ->
        match Engine.submit engine ~at r with
        | Ok (_ : int) -> ()
        | Error e -> Alcotest.failf "submit failed: %s" e)
      arrivals;
    ignore (Engine.drain engine);
    Journal.close journal;
    log_string engine
  in
  (* "Crashed" run: submissions journaled, then the process dies before
     draining — abandon the engine without closing anything cleanly. *)
  let journal = Journal.open_ ~dir ~name:"crash" ~resume:false () in
  let engine = Engine.create ~journal (config cluster) in
  List.iter
    (fun (at, r) -> ignore (Engine.submit engine ~at r))
    arrivals;
  Journal.close journal;
  (* Resume in a fresh engine: drain must reproduce the reference log
     byte for byte. *)
  let journal = Journal.open_ ~dir ~name:"crash" ~resume:true () in
  let resumed = Engine.create ~journal (config cluster) in
  let n = Engine.resume resumed in
  check Alcotest.int "all submissions resumed" (List.length arrivals) n;
  ignore (Engine.drain resumed);
  Journal.close journal;
  check Alcotest.bool "resumed log bit-identical" true
    (log_string resumed = reference)

let () =
  Alcotest.run "server"
    [
      ( "codecs",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "event roundtrip" `Quick test_event_roundtrip;
          Alcotest.test_case "protocol roundtrip" `Quick
            test_protocol_roundtrip;
          Alcotest.test_case "chunked decoder" `Quick test_decoder_chunked;
          decoder_fuzz_test;
        ] );
      ( "admission",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "policy" `Quick test_admission_policy;
          Alcotest.test_case "shedding" `Quick test_admission_shedding;
          Alcotest.test_case "jobq" `Quick test_jobq;
          Alcotest.test_case "jobq remove" `Quick test_jobq_remove;
        ] );
      ( "engine",
        [
          Alcotest.test_case "deterministic" `Quick test_engine_deterministic;
          Alcotest.test_case "invariants" `Quick test_engine_invariants;
          Alcotest.test_case "rejections" `Quick test_engine_rejections;
          Alcotest.test_case "deadline expiry" `Quick
            test_engine_deadline_expiry;
          Alcotest.test_case "delay faults log-invariant" `Quick
            test_engine_delay_faults_invariant;
          Alcotest.test_case "matches offline evaluator" `Quick
            test_engine_matches_evaluate;
          Alcotest.test_case "journal resume" `Quick test_journal_resume;
        ] );
    ]
