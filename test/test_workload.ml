(* Tests for the workload engine (lib/workload) and its study runner:
   arrival-process sanity, trace compilation determinism and byte-compat
   with the historical Server.Load generator, trace-file round-trips,
   study-runner invariants and CSV determinism, and the new Stats
   helpers (Welford mean/std, Jain's fairness). *)

module Rng = Rats_util.Rng
module Stats = Rats_util.Stats
module Cluster = Rats_platform.Cluster
module Suite = Rats_daggen.Suite
module Shape = Rats_daggen.Shape
module Rats = Rats_core.Rats
module Arrival = Rats_workload.Arrival
module App = Rats_workload.App
module Tenant = Rats_workload.Tenant
module Profile = Rats_workload.Profile
module Trace = Rats_workload.Trace
module Report = Rats_workload.Report
module Study = Rats_workload_study.Study
module Api = Rats_server.Api
module Admission = Rats_server.Admission
module Load = Rats_server.Load
module Seeded = Rats_test_support.Seeded

let check = Alcotest.check
let qcheck t = Seeded.to_alcotest t

let tmp_file =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rats_workload_test_%d_%d.jsonl" (Unix.getpid ())
         !counter)

(* --- Stats helpers ------------------------------------------------------- *)

let test_mean_std () =
  let m, s = Stats.mean_std [||] in
  check (Alcotest.float 0.) "empty mean" 0. m;
  check (Alcotest.float 0.) "empty std" 0. s;
  let m, s = Stats.mean_std [| 42. |] in
  check (Alcotest.float 0.) "singleton mean" 42. m;
  check (Alcotest.float 0.) "singleton std" 0. s;
  let m, s = Stats.mean_std [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  (* Classic example: mean 5, population std 2. *)
  check (Alcotest.float 1e-12) "mean" 5. m;
  check (Alcotest.float 1e-12) "std" 2. s

let prop_mean_std_matches_two_pass =
  QCheck.Test.make ~count:200 ~name:"Welford agrees with the two-pass formula"
    QCheck.(list_of_size Gen.(2 -- 50) (float_range 0. 1e6))
    (fun l ->
      let xs = Array.of_list l in
      let n = float_of_int (Array.length xs) in
      let mean = Array.fold_left ( +. ) 0. xs /. n in
      let var =
        Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. n
      in
      let m, s = Stats.mean_std xs in
      Float.abs (m -. mean) <= 1e-6 *. (1. +. Float.abs mean)
      && Float.abs (s -. sqrt var) <= 1e-6 *. (1. +. sqrt var))

let test_jain_fairness () =
  check (Alcotest.float 0.) "empty is fair" 1. (Stats.jain_fairness [||]);
  check (Alcotest.float 0.) "all zero is fair" 1.
    (Stats.jain_fairness [| 0.; 0.; 0. |]);
  check (Alcotest.float 1e-12) "equal shares are fair" 1.
    (Stats.jain_fairness [| 3.; 3.; 3.; 3. |]);
  (* One-hot: the index collapses to 1/n. *)
  check (Alcotest.float 1e-12) "one-hot is 1/n" 0.25
    (Stats.jain_fairness [| 10.; 0.; 0.; 0. |]);
  check (Alcotest.float 1e-12) "two of four" 0.5
    (Stats.jain_fairness [| 5.; 5.; 0.; 0. |]);
  Alcotest.check_raises "negative raises"
    (Invalid_argument "Stats.jain_fairness: negative value") (fun () ->
      ignore (Stats.jain_fairness [| 1.; -1. |]))

(* --- arrival processes --------------------------------------------------- *)

let increasing times =
  let ok = ref true in
  Array.iteri
    (fun i t ->
      if t < 0. then ok := false;
      if i > 0 && t < times.(i - 1) then ok := false)
    times;
  !ok

let prop_poisson_sane =
  QCheck.Test.make ~count:50 ~name:"poisson: increasing, mean ~ 1/rate"
    QCheck.(pair (int_range 0 10_000) (float_range 0.05 5.))
    (fun (seed, rate) ->
      let n = 400 in
      let times =
        Arrival.times (Arrival.Poisson { rate }) (Rng.create seed) ~n
      in
      let mean_gap = times.(n - 1) /. float_of_int n in
      increasing times
      && Float.abs ((mean_gap *. rate) -. 1.) < 0.35)

let prop_bursty_sane =
  QCheck.Test.make ~count:50
    ~name:"bursty: increasing, mean rate between off and on"
    QCheck.(pair (int_range 0 10_000) (float_range 0.2 2.))
    (fun (seed, rate_on) ->
      let n = 400 in
      let p =
        Arrival.Bursty
          { rate_on; rate_off = rate_on /. 10.; mean_on = 20.; mean_off = 20. }
      in
      let times = Arrival.times p (Rng.create seed) ~n in
      let mean_rate = float_of_int n /. times.(n - 1) in
      increasing times
      && mean_rate <= rate_on *. 1.1
      && mean_rate >= rate_on /. 10. *. 0.9)

let prop_diurnal_sane =
  QCheck.Test.make ~count:50
    ~name:"diurnal: increasing, mean rate within the modulation envelope"
    QCheck.(pair (int_range 0 10_000) (float_range 0.1 2.))
    (fun (seed, base) ->
      let n = 400 in
      let p = Arrival.Diurnal { base; amplitude = 0.8; period = 200. } in
      let times = Arrival.times p (Rng.create seed) ~n in
      let mean_rate = float_of_int n /. times.(n - 1) in
      (* Long-run average of the sinusoid is [base]; allow generous slack. *)
      increasing times
      && mean_rate <= base *. 1.8
      && mean_rate >= base *. 0.5)

let test_replay_wraps () =
  let p = Arrival.Replay { times = [| 1.; 3.; 10. |] } in
  let times = Arrival.times p (Rng.create 1) ~n:8 in
  (* Cycle length: span + span/n = 10 + 10/3. *)
  let cycle = 10. +. (10. /. 3.) in
  let expected =
    [| 1.; 3.; 10.; 1. +. cycle; 3. +. cycle; 10. +. cycle;
       1. +. (2. *. cycle); 3. +. (2. *. cycle) |]
  in
  check Alcotest.bool "replay wraps with a gap" true (times = expected);
  check Alcotest.bool "increasing" true (increasing times)

let test_arrival_validate () =
  Alcotest.check_raises "poisson rate" (Invalid_argument "Arrival: Poisson rate <= 0")
    (fun () -> Arrival.validate (Arrival.Poisson { rate = 0. }));
  Alcotest.check_raises "replay unsorted"
    (Invalid_argument "Arrival: Replay times not sorted") (fun () ->
      Arrival.validate (Arrival.Replay { times = [| 2.; 1. |] }))

(* --- trace compilation --------------------------------------------------- *)

let cluster = Cluster.grillon

let profile_of name =
  match Profile.of_string ~cluster name with
  | Ok p -> p
  | Error e -> Alcotest.failf "profile %S: %s" name e

let test_trace_deterministic () =
  List.iter
    (fun name ->
      let p = profile_of (name ^ ":jobs=30") in
      let t1 = Trace.compile p and t2 = Trace.compile p in
      check Alcotest.bool (name ^ " same seed same trace") true
        (Trace.equal t1 t2);
      check Alcotest.int (name ^ " job count") 30 (Array.length t1);
      check Alcotest.bool (name ^ " sorted") true
        (increasing (Array.map (fun j -> j.Trace.at) t1));
      let p' = profile_of (name ^ ":jobs=30,seed=43") in
      check Alcotest.bool (name ^ " different seed different trace") false
        (Trace.equal t1 (Trace.compile p')))
    [ "poisson"; "bursty"; "diurnal"; "pipeline"; "mixed" ]

(* Replicates the pre-workload-engine Server.Load generator loop verbatim;
   the shim must reproduce it draw for draw, bit for bit. *)
let legacy_trace (p : Load.profile) =
  let spec_pool =
    [|
      Suite.Layered
        {
          n_tasks = 25;
          shape = Shape.make ~width:0.5 ~regularity:0.8 ~density:0.2 ();
        };
      Suite.Layered
        {
          n_tasks = 25;
          shape = Shape.make ~width:0.2 ~regularity:0.2 ~density:0.8 ();
        };
      Suite.Irregular
        {
          n_tasks = 25;
          shape = Shape.make ~width:0.5 ~regularity:0.2 ~density:0.2 ~jump:2 ();
        };
      Suite.Fft { k = 2 };
      Suite.Strassen;
    |]
  in
  let per_tenant_rate = p.Load.rate /. float_of_int p.Load.n_tenants in
  let arrivals = ref [] in
  for tenant = 0 to p.Load.n_tenants - 1 do
    let rng = Rng.create (p.Load.seed + (7919 * tenant)) in
    let tenant_name = Printf.sprintf "tenant-%d" tenant in
    let jobs =
      (p.Load.n_jobs / p.Load.n_tenants)
      + if tenant < p.Load.n_jobs mod p.Load.n_tenants then 1 else 0
    in
    let t = ref 0. in
    for _ = 1 to jobs do
      let u = Rng.float rng 1. in
      t := !t +. (-.log (1. -. u) /. per_tenant_rate);
      let spec = spec_pool.(Rng.int rng (Array.length spec_pool)) in
      let sample = Rng.int_range rng 0 2 in
      let procs = Rng.int_range rng p.Load.procs_min p.Load.procs_max in
      let request =
        {
          Api.tenant = tenant_name;
          job = Api.Generated { Suite.spec; sample };
          strategy = p.Load.strategy;
          procs;
        }
      in
      arrivals := (!t, request) :: !arrivals
    done
  done;
  List.sort
    (fun ((t1 : float), (r1 : Api.request)) (t2, (r2 : Api.request)) ->
      compare (t1, r1.Api.tenant) (t2, r2.Api.tenant))
    !arrivals

let test_load_shim_byte_identical () =
  List.iter
    (fun (profile : Load.profile) ->
      let legacy = legacy_trace profile in
      let shimmed = Load.trace profile in
      check Alcotest.int "same length" (List.length legacy)
        (List.length shimmed);
      (* Structural equality covers every float bit and every spec field. *)
      check Alcotest.bool "trace bit-identical" true (legacy = shimmed))
    [
      Load.default_profile cluster;
      { (Load.default_profile cluster) with Load.n_jobs = 31; n_tenants = 3 };
      {
        (Load.default_profile Cluster.chti) with
        Load.n_jobs = 17;
        seed = 7;
        rate = 0.4;
        strategy = Rats.Baseline;
      };
    ]

let test_trace_jobs_invariant () =
  (* The engine's worker count must never leak into study results. *)
  let p = profile_of "mixed:jobs=20" in
  let trace = Trace.compile p in
  let rows jobs =
    Study.csv
      (List.map
         (fun arm -> Study.run_arm ~jobs ~cluster ~profile:p ~trace arm)
         Study.default_arms)
  in
  check Alcotest.string "jobs=1 and jobs=4 byte-identical" (rows 1) (rows 4)

let test_trace_file_roundtrip () =
  (* The mixed profile covers every app kind, including pipelines. *)
  let p = profile_of "mixed:jobs=40" in
  let trace = Trace.compile p in
  let path = tmp_file () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Trace.save path trace;
      match Trace.load path with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok trace' ->
          check Alcotest.bool "round-trip bit-identical" true
            (Trace.equal trace trace'));
  check Alcotest.bool "load error carries position" true
    (match
       Fun.protect
         ~finally:(fun () -> Sys.remove path)
         (fun () ->
           let oc = open_out path in
           output_string oc "{\"at\":1.0}\n";
           close_out oc;
           Trace.load path)
     with
    | Error e -> String.length e > 0
    | Ok _ -> false)

(* --- study runner -------------------------------------------------------- *)

let test_study_invariants () =
  let p = profile_of "bursty:jobs=24,tenants=3" in
  let policy = Admission.make ~deadline_s:300. ~queue_limit:8 ~tenant_limit:4 () in
  let reports = Study.run ~policy ~arms:Study.all_arms ~cluster p in
  check Alcotest.int "one report per arm" (List.length Study.all_arms)
    (List.length reports);
  List.iter
    (fun (r : Report.t) ->
      check Alcotest.int (r.Report.arm ^ ": conservation") r.Report.jobs
        (r.Report.completed + r.Report.rejected + r.Report.expired);
      check Alcotest.int (r.Report.arm ^ ": all submitted") 24 r.Report.jobs;
      check Alcotest.bool (r.Report.arm ^ ": fairness in (0,1]") true
        (r.Report.fairness > 0. && r.Report.fairness <= 1. +. 1e-12);
      check Alcotest.bool (r.Report.arm ^ ": utilization in [0,1]") true
        (r.Report.utilization >= 0. && r.Report.utilization <= 1.);
      check Alcotest.int (r.Report.arm ^ ": tenant rows") 3
        (List.length r.Report.tenants);
      let per_tenant_sum =
        List.fold_left
          (fun acc (pt : Report.per_tenant) ->
            check Alcotest.int (pt.Report.tenant ^ ": tenant conservation")
              pt.Report.submitted
              (pt.Report.completed + pt.Report.rejected + pt.Report.expired);
            check Alcotest.int
              (pt.Report.tenant ^ ": sojourn per completion")
              pt.Report.completed
              (Array.length pt.Report.sojourns);
            acc + pt.Report.submitted)
          0 r.Report.tenants
      in
      check Alcotest.int (r.Report.arm ^ ": tenants cover all jobs")
        r.Report.jobs per_tenant_sum)
    reports

let test_study_deterministic_csv () =
  let p = profile_of "diurnal:jobs=18" in
  let csv1 = Study.csv (Study.run ~cluster p) in
  let csv2 = Study.csv (Study.run ~cluster p) in
  check Alcotest.string "same profile same csv" csv1 csv2;
  let lines = String.split_on_char '\n' csv1 in
  check Alcotest.string "header" Report.csv_header (List.hd lines);
  List.iter
    (fun line ->
      if line <> "" then
        check Alcotest.int "column count"
          (List.length (String.split_on_char ',' Report.csv_header))
          (List.length (String.split_on_char ',' line)))
    lines

let test_arm_names () =
  List.iter
    (fun arm ->
      match Study.arm_of_string (Study.arm_name arm) with
      | Ok arm' ->
          check Alcotest.bool (Study.arm_name arm ^ " round-trips") true
            (arm = arm')
      | Error e -> Alcotest.fail e)
    Study.all_arms;
  check Alcotest.bool "unknown arm is an error" true
    (Result.is_error (Study.arm_of_string "simulated-annealing"))

(* --- profile grammar ----------------------------------------------------- *)

let test_profile_grammar () =
  let p = profile_of "bursty:jobs=60,tenants=5,rate=0.2,seed=9" in
  check Alcotest.int "jobs" 60 p.Profile.n_jobs;
  check Alcotest.int "tenants" 5 (List.length p.Profile.tenants);
  check Alcotest.int "seed" 9 p.Profile.seed;
  check Alcotest.string "name" "bursty" p.Profile.name;
  (match Profile.of_string ~cluster ~seed:77 "poisson:seed=9" with
  | Ok p -> check Alcotest.int "explicit seed wins" 77 p.Profile.seed
  | Error e -> Alcotest.fail e);
  check Alcotest.bool "unknown preset" true
    (Result.is_error (Profile.of_string ~cluster "zipf"));
  check Alcotest.bool "bad key" true
    (Result.is_error (Profile.of_string ~cluster "poisson:procs=9"));
  check Alcotest.bool "bad value" true
    (Result.is_error (Profile.of_string ~cluster "poisson:jobs=-3"))

let () =
  Alcotest.run "workload"
    [
      ( "stats",
        [
          Alcotest.test_case "mean/std" `Quick test_mean_std;
          qcheck prop_mean_std_matches_two_pass;
          Alcotest.test_case "jain fairness" `Quick test_jain_fairness;
        ] );
      ( "arrivals",
        [
          qcheck prop_poisson_sane;
          qcheck prop_bursty_sane;
          qcheck prop_diurnal_sane;
          Alcotest.test_case "replay wraps" `Quick test_replay_wraps;
          Alcotest.test_case "validation" `Quick test_arrival_validate;
        ] );
      ( "trace",
        [
          Alcotest.test_case "deterministic" `Quick test_trace_deterministic;
          Alcotest.test_case "load shim byte-identical" `Quick
            test_load_shim_byte_identical;
          Alcotest.test_case "worker count invariant" `Quick
            test_trace_jobs_invariant;
          Alcotest.test_case "file round-trip" `Quick
            test_trace_file_roundtrip;
        ] );
      ( "study",
        [
          Alcotest.test_case "invariants" `Quick test_study_invariants;
          Alcotest.test_case "deterministic csv" `Quick
            test_study_deterministic_csv;
          Alcotest.test_case "arm names" `Quick test_arm_names;
        ] );
      ( "profile",
        [ Alcotest.test_case "grammar" `Quick test_profile_grammar ] );
    ]
