(* Tests for rats_sim: Max-Min fairness solver and discrete-event engine. *)

module Maxmin = Rats_sim.Maxmin
module Engine = Rats_sim.Engine
module Cluster = Rats_platform.Cluster
module Topology = Rats_platform.Topology
module Link = Rats_platform.Link

let checkf msg = Alcotest.check (Alcotest.float 1e-6) msg
let checkf_rel msg expected actual =
  Alcotest.check (Alcotest.float (1e-6 *. Float.max 1. (Float.abs expected)))
    msg expected actual
let qcheck t = Rats_test_support.Seeded.to_alcotest t

let flow links rate_cap = { Maxmin.links = Array.of_list links; rate_cap }

let solve ?(cap = 100.) n_links flows =
  Maxmin.solve ~n_links ~capacity:(fun _ -> cap) (Array.of_list flows)

(* --- Maxmin -------------------------------------------------------------- *)

let test_maxmin_single () =
  let rates = solve 1 [ flow [ 0 ] infinity ] in
  checkf "full capacity" 100. rates.(0)

let test_maxmin_two_share () =
  let rates = solve 1 [ flow [ 0 ] infinity; flow [ 0 ] infinity ] in
  checkf "half each (1)" 50. rates.(0);
  checkf "half each (2)" 50. rates.(1)

let test_maxmin_cap_binds () =
  let rates = solve 1 [ flow [ 0 ] 10.; flow [ 0 ] infinity ] in
  checkf "capped flow" 10. rates.(0);
  checkf "rest to the other" 90. rates.(1)

let test_maxmin_bottleneck_chain () =
  (* Flow A crosses links 0,1; flow B crosses link 0; flow C crosses link 1.
     Classic max-min solution with capacity 100: A=50, B=50, C=50. *)
  let rates =
    solve 2 [ flow [ 0; 1 ] infinity; flow [ 0 ] infinity; flow [ 1 ] infinity ]
  in
  checkf "A" 50. rates.(0);
  checkf "B" 50. rates.(1);
  checkf "C" 50. rates.(2)

let test_maxmin_asymmetric_bottleneck () =
  (* Link 0 capacity 100 with 3 flows; link 1 capacity 100 with 1 of them.
     All flows on link 0 get 100/3; the long flow is limited by link 0. *)
  let rates =
    solve 2
      [ flow [ 0; 1 ] infinity; flow [ 0 ] infinity; flow [ 0 ] infinity ]
  in
  checkf_rel "long flow" (100. /. 3.) rates.(0);
  checkf_rel "short 1" (100. /. 3.) rates.(1);
  checkf_rel "short 2" (100. /. 3.) rates.(2)

let test_maxmin_progressive_refill () =
  (* After the bottleneck freezes, remaining flows keep filling: link 0 has
     flows A,B; link 1 has flow B only... use capacities via distinct links:
     link0 cap 100 shared by A,B; link1 cap 30 used by A alone: A limited to
     30, then B gets 70. *)
  let capacity = function 0 -> 100. | _ -> 30. in
  let rates =
    Maxmin.solve ~n_links:2 ~capacity
      [| flow [ 0; 1 ] infinity; flow [ 0 ] infinity |]
  in
  checkf "A at small link" 30. rates.(0);
  checkf "B takes the rest" 70. rates.(1)

let test_maxmin_unconstrained_flow () =
  let rates = solve 1 [ flow [] infinity ] in
  checkf "infinite" infinity rates.(0)

let test_maxmin_empty_links_with_cap () =
  let rates = solve 1 [ flow [] 42. ] in
  checkf "cap" 42. rates.(0)

let test_maxmin_validation () =
  Alcotest.check_raises "bad link" (Invalid_argument "Maxmin.solve: bad link")
    (fun () -> ignore (solve 1 [ flow [ 3 ] infinity ]));
  Alcotest.check_raises "bad cap"
    (Invalid_argument "Maxmin.solve: non-positive cap") (fun () ->
      ignore (solve 1 [ flow [ 0 ] 0. ]))

let test_maxmin_utilization () =
  let flows = [| flow [ 0 ] infinity; flow [ 0 ] infinity |] in
  let rates = Maxmin.solve ~n_links:1 ~capacity:(fun _ -> 100.) flows in
  checkf "sums to capacity" 100. (Maxmin.utilization ~n_links:1 flows ~rates 0)

(* qcheck: feasibility (no link over capacity) and saturation (every flow is
   blocked by a saturated link or its own cap) — the definition of Max-Min
   fairness. *)
let random_flows =
  QCheck.(
    list_of_size Gen.(1 -- 30)
      (pair (list_of_size Gen.(0 -- 4) (int_bound 9)) (float_range 1. 1000.)))

let qcheck_maxmin_feasible =
  QCheck.Test.make ~count:200 ~name:"maxmin respects link capacities"
    random_flows
    (fun specs ->
      let flows =
        Array.of_list
          (List.map (fun (ls, cap) -> flow (List.sort_uniq compare ls) cap) specs)
      in
      let rates = Maxmin.solve ~n_links:10 ~capacity:(fun _ -> 50.) flows in
      let ok = ref true in
      for l = 0 to 9 do
        if Maxmin.utilization ~n_links:10 flows ~rates l > 50. *. (1. +. 1e-6)
        then ok := false
      done;
      !ok)

let qcheck_maxmin_saturated =
  QCheck.Test.make ~count:200 ~name:"every flow hits a bottleneck or its cap"
    random_flows
    (fun specs ->
      let flows =
        Array.of_list
          (List.map (fun (ls, cap) -> flow (List.sort_uniq compare ls) cap) specs)
      in
      let rates = Maxmin.solve ~n_links:10 ~capacity:(fun _ -> 50.) flows in
      let saturated l =
        Maxmin.utilization ~n_links:10 flows ~rates l >= 50. *. (1. -. 1e-5)
      in
      Array.for_all Fun.id
        (Array.mapi
           (fun i f ->
             let at_cap = rates.(i) >= f.Maxmin.rate_cap *. (1. -. 1e-5) in
             at_cap || Array.exists saturated f.Maxmin.links)
           flows))

(* --- Incremental Maxmin --------------------------------------------------- *)

module Inc = Maxmin.Incremental

let inc_create ?full_threshold () =
  Inc.create ?full_threshold ~n_links:10 ~capacity:(fun _ -> 50.) ()

(* Random op sequences over the incremental solver. [`Remove k] removes the
   [k mod alive]-th live flow; [`Refresh] forces a mid-sequence solve so
   both the incremental and the fallback paths get exercised. *)
let ops_gen =
  QCheck.Gen.(
    list_size (1 -- 60)
      (frequency
         [
           ( 3,
             map
               (fun (ls, cap) -> `Add (List.sort_uniq compare ls, cap))
               (pair (list_size (0 -- 4) (int_bound 9)) (float_range 1. 1000.))
           );
           (2, map (fun k -> `Remove k) (int_bound 100));
           (1, return `Refresh);
         ]))

let pp_op = function
  | `Add (ls, cap) ->
      Printf.sprintf "add[%s]@%g" (String.concat ";" (List.map string_of_int ls)) cap
  | `Remove k -> Printf.sprintf "rm%d" k
  | `Refresh -> "refresh"

let random_ops =
  QCheck.make ops_gen ~print:(fun ops -> String.concat " " (List.map pp_op ops))

(* Replay [ops] on [inc]; returns the live (handle, flow) list, newest
   first. A final refresh is always applied. *)
let run_ops inc ops =
  let alive = ref [] in
  List.iter
    (fun op ->
      match op with
      | `Add (ls, cap) ->
          let links = Array.of_list ls in
          let h = Inc.add inc ~links ~rate_cap:cap in
          alive := (h, { Maxmin.links; rate_cap = cap }) :: !alive
      | `Remove k -> (
          match !alive with
          | [] -> ()
          | l ->
              let k = k mod List.length l in
              Inc.remove inc (fst (List.nth l k));
              alive := List.filteri (fun i _ -> i <> k) l)
      | `Refresh -> Inc.refresh inc)
    ops;
  Inc.refresh inc;
  !alive

let same_float a b = (Float.is_nan a && Float.is_nan b) || a = b

let qcheck_inc_matches_reference =
  QCheck.Test.make ~count:300 ~name:"incremental matches reference oracle"
    random_ops
    (fun ops ->
      let inc = inc_create () in
      let alive = run_ops inc ops in
      let flows = Array.of_list (List.map snd alive) in
      let expected = Maxmin.solve ~n_links:10 ~capacity:(fun _ -> 50.) flows in
      List.for_all2
        (fun (h, _) exp ->
          let got = Inc.rate inc h in
          if exp = infinity then got = infinity
          else Float.abs (got -. exp) <= 1e-7 *. Float.max 1. (Float.abs exp))
        alive (Array.to_list expected))

let qcheck_inc_path_independent =
  QCheck.Test.make ~count:300
    ~name:"incremental rates are a pure function of the flow set" random_ops
    (fun ops ->
      let inc = inc_create () in
      let alive = run_ops inc ops in
      (* Re-add the surviving flows to a fresh solver: bit-identical rates
         must come out, however the first solver got there. *)
      let fresh = inc_create () in
      let readded =
        List.map
          (fun (h, f) ->
            (h, Inc.add fresh ~links:f.Maxmin.links ~rate_cap:f.Maxmin.rate_cap))
          alive
      in
      Inc.refresh fresh;
      List.for_all
        (fun (h, h') -> same_float (Inc.rate inc h) (Inc.rate fresh h'))
        readded)

let qcheck_inc_threshold_equivalent =
  QCheck.Test.make ~count:300
    ~name:"always-full fallback gives bit-identical rates" random_ops
    (fun ops ->
      (* threshold 0. re-solves every component on each refresh; default
         re-solves only dirty ones. Identical per-component arithmetic
         means identical rates after every replayed op. *)
      let inc = inc_create () in
      let full = inc_create ~full_threshold:0. () in
      let alive = run_ops inc ops in
      let alive_full = run_ops full ops in
      List.for_all2
        (fun (h, _) (h', _) -> same_float (Inc.rate inc h) (Inc.rate full h'))
        alive alive_full)

let test_inc_basics () =
  let inc = inc_create () in
  let a = Inc.add inc ~links:[| 0 |] ~rate_cap:infinity in
  Inc.refresh inc;
  checkf "full capacity" 50. (Inc.rate inc a);
  let b = Inc.add inc ~links:[| 0 |] ~rate_cap:infinity in
  Inc.refresh inc;
  checkf "half (a)" 25. (Inc.rate inc a);
  checkf "half (b)" 25. (Inc.rate inc b);
  Inc.remove inc b;
  Inc.refresh inc;
  checkf "back to full" 50. (Inc.rate inc a);
  Alcotest.(check int) "one live flow" 1 (Inc.n_flows inc)

let test_inc_untouched_component_stable () =
  (* Flows on disjoint links: adding to one component must not disturb the
     other (its rates are reused verbatim, not recomputed). *)
  let inc = inc_create () in
  let a = Inc.add inc ~links:[| 0 |] ~rate_cap:infinity in
  let b = Inc.add inc ~links:[| 1 |] ~rate_cap:7. in
  Inc.refresh inc;
  let ra = Inc.rate inc a and rb = Inc.rate inc b in
  let c = Inc.add inc ~links:[| 2; 3 |] ~rate_cap:infinity in
  Inc.refresh inc;
  Alcotest.(check bool) "a untouched" true (same_float ra (Inc.rate inc a));
  Alcotest.(check bool) "b untouched" true (same_float rb (Inc.rate inc b));
  checkf "c solved" 50. (Inc.rate inc c)

let test_inc_linkless () =
  let inc = inc_create () in
  let free = Inc.add inc ~links:[||] ~rate_cap:infinity in
  let capped = Inc.add inc ~links:[||] ~rate_cap:42. in
  (* Linkless rates are final immediately, no refresh needed. *)
  checkf "infinite" infinity (Inc.rate inc free);
  checkf "cap, exactly" 42. (Inc.rate inc capped)

let test_inc_validation () =
  let inc = inc_create () in
  Alcotest.check_raises "bad link"
    (Invalid_argument "Maxmin.Incremental.add: bad link") (fun () ->
      ignore (Inc.add inc ~links:[| 10 |] ~rate_cap:infinity));
  Alcotest.check_raises "bad cap"
    (Invalid_argument "Maxmin.Incremental.add: non-positive cap") (fun () ->
      ignore (Inc.add inc ~links:[| 0 |] ~rate_cap:0.));
  let h = Inc.add inc ~links:[| 0 |] ~rate_cap:1. in
  Inc.remove inc h;
  Alcotest.check_raises "dead handle"
    (Invalid_argument "Maxmin.Incremental.remove: dead handle") (fun () ->
      Inc.remove inc h)

(* --- Engine -------------------------------------------------------------- *)

let flat4 =
  Cluster.make ~name:"flat4" ~topology:(Topology.Flat 4) ~speed_gflops:1. ()

let test_engine_single_flow_timing () =
  let eng = Engine.create flat4 in
  let finish = ref nan in
  Engine.start_flow eng ~src:0 ~dst:1 ~bytes:1.25e8
    ~on_complete:(fun eng -> finish := Engine.now eng);
  ignore (Engine.run eng);
  (* one-way latency 200us + 1.25e8 bytes at 125MB/s = 1s *)
  checkf "latency + transfer" 1.0002 !finish

let test_engine_two_flows_share_nic () =
  let eng = Engine.create flat4 in
  let finishes = ref [] in
  for dst = 1 to 2 do
    Engine.start_flow eng ~src:0 ~dst ~bytes:1.25e8
      ~on_complete:(fun eng -> finishes := Engine.now eng :: !finishes)
  done;
  ignore (Engine.run eng);
  (* Sender NIC shared: both flows at 62.5MB/s -> 2s + latency. *)
  List.iter (fun f -> checkf "shared bandwidth" 2.0002 f) !finishes

let test_engine_disjoint_flows_full_speed () =
  let eng = Engine.create flat4 in
  let finishes = ref [] in
  List.iter
    (fun (src, dst) ->
      Engine.start_flow eng ~src ~dst ~bytes:1.25e8
        ~on_complete:(fun eng -> finishes := Engine.now eng :: !finishes))
    [ (0, 1); (2, 3) ];
  ignore (Engine.run eng);
  List.iter (fun f -> checkf "no sharing" 1.0002 f) !finishes

let test_engine_self_flow_instant () =
  let eng = Engine.create flat4 in
  let finish = ref nan in
  Engine.start_flow eng ~src:2 ~dst:2 ~bytes:1e12
    ~on_complete:(fun eng -> finish := Engine.now eng);
  ignore (Engine.run eng);
  checkf "free local copy" 0. !finish

let test_engine_zero_bytes_instant () =
  let eng = Engine.create flat4 in
  let finish = ref nan in
  Engine.start_flow eng ~src:0 ~dst:1 ~bytes:0.
    ~on_complete:(fun eng -> finish := Engine.now eng);
  ignore (Engine.run eng);
  checkf "empty payload" 0. !finish

let test_engine_timers () =
  let eng = Engine.create flat4 in
  let log = ref [] in
  Engine.at eng 2. (fun _ -> log := 2 :: !log);
  Engine.at eng 1. (fun _ -> log := 1 :: !log);
  Engine.after eng 3. (fun _ -> log := 3 :: !log);
  let final = Engine.run eng in
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log);
  checkf "final time" 3. final

let test_engine_same_time_fifo () =
  let eng = Engine.create flat4 in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.at eng 1. (fun _ -> log := i :: !log)
  done;
  ignore (Engine.run eng);
  Alcotest.(check (list int)) "fifo at equal dates" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_past_event_rejected () =
  let eng = Engine.create flat4 in
  Engine.at eng 1. (fun eng ->
      Alcotest.check_raises "past" (Invalid_argument "Engine.at: time in the past")
        (fun () -> Engine.at eng 0.5 (fun _ -> ())));
  ignore (Engine.run eng)

let test_engine_run_until () =
  let eng = Engine.create flat4 in
  let fired = ref false in
  Engine.at eng 5. (fun _ -> fired := true);
  Engine.run_until eng 3.;
  checkf "clock advanced" 3. (Engine.now eng);
  Alcotest.(check bool) "not yet" false !fired;
  Engine.run_until eng 6.;
  Alcotest.(check bool) "fired" true !fired

let test_engine_dynamic_rate_change () =
  (* Second flow arrives halfway through the first: the first transfers
     0.5s at full rate, then shares. 1.25e8 bytes total: 0.5s x 125MB/s =
     62.5MB done; remaining 62.5MB at 62.5MB/s = 1s more. *)
  let eng = Engine.create flat4 in
  let f1 = ref nan in
  Engine.start_flow eng ~src:0 ~dst:1 ~bytes:1.25e8
    ~on_complete:(fun eng -> f1 := Engine.now eng);
  Engine.at eng 0.5002 (fun eng ->
      Engine.start_flow eng ~src:0 ~dst:2 ~bytes:1e9 ~on_complete:(fun _ -> ()));
  ignore (Engine.run eng);
  Alcotest.(check (float 1e-3)) "slowed by the newcomer" 1.5004 !f1

let test_engine_empirical_bandwidth () =
  (* A tiny TCP window caps the end-to-end rate below the link bandwidth. *)
  let tiny =
    Cluster.make ~name:"tiny" ~topology:(Topology.Flat 2) ~speed_gflops:1.
      ~tcp_wmax:12500. ()
  in
  (* RTT = 2 x 200us = 400us -> cap = 12500/4e-4 = 31.25 MB/s. *)
  let eng = Engine.create tiny in
  let finish = ref nan in
  Engine.start_flow eng ~src:0 ~dst:1 ~bytes:3.125e7
    ~on_complete:(fun eng -> finish := Engine.now eng);
  ignore (Engine.run eng);
  Alcotest.(check (float 1e-3)) "window-capped transfer" 1.0002 !finish

let test_engine_determinism () =
  let run () =
    let eng = Engine.create flat4 in
    let acc = ref [] in
    List.iter
      (fun (s, d, b) ->
        Engine.start_flow eng ~src:s ~dst:d ~bytes:b
          ~on_complete:(fun eng -> acc := Engine.now eng :: !acc))
      [ (0, 1, 1e8); (1, 2, 2e8); (2, 3, 5e7); (0, 2, 1e8); (3, 0, 3e8) ];
    ignore (Engine.run eng);
    !acc
  in
  Alcotest.(check (list (float 0.))) "identical runs" (run ()) (run ())

let test_engine_cabinet_contention () =
  (* Two flows between different cabinets share the uplinks. *)
  let c =
    Cluster.make ~name:"cab"
      ~topology:(Topology.Cabinets { cabinets = 2; per_cabinet = 2 })
      ~speed_gflops:1. ()
  in
  let eng = Engine.create c in
  let finishes = ref [] in
  List.iter
    (fun (s, d) ->
      Engine.start_flow eng ~src:s ~dst:d ~bytes:1.25e8
        ~on_complete:(fun eng -> finishes := Engine.now eng :: !finishes))
    [ (0, 2); (1, 3) ];
  ignore (Engine.run eng);
  (* Both cross uplinks 4 and 5: 62.5MB/s each; 4-hop latency 400us. *)
  List.iter (fun f -> Alcotest.(check (float 1e-3)) "uplink shared" 2.0004 f)
    !finishes


(* --- Engine stress and property tests -------------------------------------- *)

let random_flow_set seed n =
  let rng = Rats_util.Rng.create seed in
  List.init n (fun _ ->
      let src = Rats_util.Rng.int rng 4 in
      let dst = (src + 1 + Rats_util.Rng.int rng 3) mod 4 in
      let bytes = Rats_util.Rng.uniform rng 1e6 1e8 in
      (src, dst, bytes))

let test_engine_mass_flows () =
  let eng = Engine.create flat4 in
  let flows = random_flow_set 99 500 in
  let completed = ref 0 in
  List.iter
    (fun (src, dst, bytes) ->
      Engine.start_flow eng ~src ~dst ~bytes
        ~on_complete:(fun _ -> incr completed))
    flows;
  let final = Engine.run eng in
  Alcotest.(check int) "all flows completed" 500 !completed;
  (* Aggregate bound: the busiest NIC must drain all its bytes at link rate. *)
  let load = Array.make 4 0. in
  List.iter
    (fun (src, dst, bytes) ->
      load.(src) <- load.(src) +. bytes;
      load.(dst) <- load.(dst) +. bytes)
    flows;
  let bound = Array.fold_left Float.max 0. load /. 1.25e8 in
  Alcotest.(check bool) "final time >= busiest NIC drain" true
    (final >= bound -. 1e-6);
  (* And it cannot be slower than fully serializing everything. *)
  let serial =
    List.fold_left (fun acc (_, _, b) -> acc +. (b /. 1.25e8) +. 2e-4) 0. flows
  in
  Alcotest.(check bool) "no slower than serial" true (final <= serial +. 1e-6)

let qcheck_engine_flow_lower_bound =
  QCheck.Test.make ~count:50
    ~name:"every flow takes at least its isolated transfer time"
    QCheck.(pair (int_range 0 10000) (int_range 1 40))
    (fun (seed, n) ->
      let eng = Engine.create flat4 in
      let finishes = Hashtbl.create 16 in
      List.iteri
        (fun i (src, dst, bytes) ->
          Engine.start_flow eng ~src ~dst ~bytes ~on_complete:(fun e ->
              Hashtbl.replace finishes i (Engine.now e)))
        (random_flow_set seed n);
      ignore (Engine.run eng);
      let ok = ref true in
      List.iteri
        (fun i (_, _, bytes) ->
          let isolated = 2e-4 +. (bytes /. 1.25e8) in
          match Hashtbl.find_opt finishes i with
          | Some f -> if f < isolated -. 1e-6 then ok := false
          | None -> ok := false)
        (random_flow_set seed n);
      !ok)

let test_engine_run_until_equivalence () =
  (* Stepping the clock in small increments must not change any completion
     date compared to one uninterrupted run. *)
  let run_with_steps step =
    let eng = Engine.create flat4 in
    let finishes = ref [] in
    List.iter
      (fun (src, dst, bytes) ->
        Engine.start_flow eng ~src ~dst ~bytes ~on_complete:(fun e ->
            finishes := Engine.now e :: !finishes))
      (random_flow_set 7 20);
    (match step with
    | None -> ignore (Engine.run eng)
    | Some dt ->
        for k = 1 to 200 do
          Engine.run_until eng (float_of_int k *. dt)
        done;
        ignore (Engine.run eng));
    List.rev !finishes
  in
  let direct = run_with_steps None in
  let stepped = run_with_steps (Some 0.01) in
  Alcotest.(check (list (float 1e-9))) "identical completions" direct stepped

let test_engine_flow_during_compute_timer () =
  (* Timers and flows advance on the same clock. *)
  let eng = Engine.create flat4 in
  let order = ref [] in
  Engine.after eng 0.5 (fun _ -> order := "timer" :: !order);
  Engine.start_flow eng ~src:0 ~dst:1 ~bytes:1.25e8 ~on_complete:(fun _ ->
      order := "flow" :: !order);
  ignore (Engine.run eng);
  Alcotest.(check (list string)) "timer fires mid-transfer" [ "timer"; "flow" ]
    (List.rev !order)

let () =
  Alcotest.run "rats_sim"
    [
      ( "maxmin",
        [
          Alcotest.test_case "single flow" `Quick test_maxmin_single;
          Alcotest.test_case "two flows share" `Quick test_maxmin_two_share;
          Alcotest.test_case "cap binds" `Quick test_maxmin_cap_binds;
          Alcotest.test_case "bottleneck chain" `Quick test_maxmin_bottleneck_chain;
          Alcotest.test_case "asymmetric bottleneck" `Quick
            test_maxmin_asymmetric_bottleneck;
          Alcotest.test_case "progressive refill" `Quick
            test_maxmin_progressive_refill;
          Alcotest.test_case "unconstrained flow" `Quick
            test_maxmin_unconstrained_flow;
          Alcotest.test_case "empty links with cap" `Quick
            test_maxmin_empty_links_with_cap;
          Alcotest.test_case "validation" `Quick test_maxmin_validation;
          Alcotest.test_case "utilization" `Quick test_maxmin_utilization;
          qcheck qcheck_maxmin_feasible;
          qcheck qcheck_maxmin_saturated;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "add/remove basics" `Quick test_inc_basics;
          Alcotest.test_case "untouched component stable" `Quick
            test_inc_untouched_component_stable;
          Alcotest.test_case "linkless flows" `Quick test_inc_linkless;
          Alcotest.test_case "validation" `Quick test_inc_validation;
          qcheck qcheck_inc_matches_reference;
          qcheck qcheck_inc_path_independent;
          qcheck qcheck_inc_threshold_equivalent;
        ] );
      ( "engine",
        [
          Alcotest.test_case "single flow timing" `Quick
            test_engine_single_flow_timing;
          Alcotest.test_case "NIC sharing" `Quick test_engine_two_flows_share_nic;
          Alcotest.test_case "disjoint flows" `Quick
            test_engine_disjoint_flows_full_speed;
          Alcotest.test_case "self flow" `Quick test_engine_self_flow_instant;
          Alcotest.test_case "zero bytes" `Quick test_engine_zero_bytes_instant;
          Alcotest.test_case "timers" `Quick test_engine_timers;
          Alcotest.test_case "fifo same date" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "past event rejected" `Quick
            test_engine_past_event_rejected;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "dynamic rate change" `Quick
            test_engine_dynamic_rate_change;
          Alcotest.test_case "empirical bandwidth" `Quick
            test_engine_empirical_bandwidth;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
          Alcotest.test_case "cabinet contention" `Quick
            test_engine_cabinet_contention;
        ] );
      ( "stress",
        [
          Alcotest.test_case "500 flows" `Quick test_engine_mass_flows;
          qcheck qcheck_engine_flow_lower_bound;
          Alcotest.test_case "run_until equivalence" `Quick
            test_engine_run_until_equivalence;
          Alcotest.test_case "timer during flow" `Quick
            test_engine_flow_during_compute_timer;
        ] );
    ]
