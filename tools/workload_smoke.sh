#!/usr/bin/env bash
# Smoke test of the trace-driven workload engine (bin/workload.exe).
#
# Three parts:
#   1. determinism: a small three-arm study run twice with the same seed must
#      produce byte-identical CSV comparison tables;
#   2. trace round-trip: --save-trace followed by --replay of the written
#      file must reproduce the direct run's CSV byte-for-byte;
#   3. worker independence: the same study with --jobs 3 must not change a
#      single byte of the CSV.
#
# Binaries are expected to be built already (make workload-smoke builds
# first).
set -euo pipefail
cd "$(dirname "$0")/.."

WORKLOAD=_build/default/bin/workload.exe
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

PROFILE=mixed:jobs=24,tenants=3,rate=0.08,seed=11
ARMS=delta,hcpa,packing

run() { # $1 = csv path, extra args follow
    local csv=$1
    shift
    "$WORKLOAD" --cluster grillon --profile "$PROFILE" --arms "$ARMS" \
        --queue-limit 16 --tenant-limit 8 --deadline 400 \
        --csv "$csv" "$@" > /dev/null
}

# --- 1. same seed, same bytes --------------------------------------------- #

run "$WORK/a.csv"
run "$WORK/b.csv"
if ! cmp -s "$WORK/a.csv" "$WORK/b.csv"; then
    echo "workload-smoke: same-seed reruns differ" >&2
    diff "$WORK/a.csv" "$WORK/b.csv" >&2 || true
    exit 1
fi

grep -q '^profile,arm,jobs,' "$WORK/a.csv" || {
    echo "workload-smoke: CSV header missing" >&2
    exit 1
}
for arm in delta hcpa packing; do
    grep -q ",$arm," "$WORK/a.csv" || {
        echo "workload-smoke: no $arm row in the CSV" >&2
        exit 1
    }
done

# --- 2. save-trace / replay round-trip ------------------------------------ #

run "$WORK/direct.csv" --save-trace "$WORK/trace.jsonl"
run "$WORK/replayed.csv" --replay "$WORK/trace.jsonl"
if ! cmp -s "$WORK/direct.csv" "$WORK/replayed.csv"; then
    echo "workload-smoke: replayed trace changed the study result" >&2
    diff "$WORK/direct.csv" "$WORK/replayed.csv" >&2 || true
    exit 1
fi

# --- 3. worker count never affects results -------------------------------- #

run "$WORK/j3.csv" --jobs 3
if ! cmp -s "$WORK/a.csv" "$WORK/j3.csv"; then
    echo "workload-smoke: --jobs 3 changed the study result" >&2
    diff "$WORK/a.csv" "$WORK/j3.csv" >&2 || true
    exit 1
fi

echo "workload-smoke: OK (determinism, trace round-trip, worker independence)"
