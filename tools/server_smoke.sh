#!/usr/bin/env bash
# End-to-end smoke test of the ratsd scheduling service.
#
# Three parts:
#   1. live session: start ratsd, submit two jobs from two tenants over the
#      socket, drain, fetch the event log, shut the daemon down;
#   2. kill/resume: same submissions against a journaled daemon, kill -9 it
#      before draining, restart with --resume, drain — the event log must be
#      byte-identical to an uninterrupted run;
#   3. load driver: ratsd --selftest with the default profile (120 jobs from
#      4 tenants under both RATS and HCPA) must report a full determinism
#      check and throughput/latency figures.
#
# Binaries are expected to be built already (make server-smoke builds first).
set -euo pipefail
cd "$(dirname "$0")/.."

RATSD=_build/default/bin/ratsd.exe
CLIENT=_build/default/bin/rats_client.exe
WORK=$(mktemp -d)
S=$WORK/ratsd.sock
DPID=0
trap 'kill -9 $DPID 2>/dev/null || true; rm -rf "$WORK"' EXIT

wait_ready() { # wait for the daemon to bind its socket
    for _ in $(seq 1 100); do
        [ -S "$S" ] && return 0
        sleep 0.1
    done
    echo "server-smoke: ratsd did not create $S" >&2
    exit 1
}

submit_jobs() {
    "$CLIENT" --socket "$S" --op submit --tenant alice --kind fft --fft-k 2 \
        --procs 8 --at 0 >/dev/null
    "$CLIENT" --socket "$S" --op submit --tenant bob --kind strassen \
        --procs 10 --at 5 --algo hcpa >/dev/null
}

# --- 1. live session ------------------------------------------------------ #

"$RATSD" --socket "$S" --journal-dir "$WORK/j1" &
DPID=$!
wait_ready

"$CLIENT" --socket "$S" --op ping | grep -q pong
submit_jobs
"$CLIENT" --socket "$S" --op drain | grep -q drained
"$CLIENT" --socket "$S" --op log --json > "$WORK/log-live.jsonl"
"$CLIENT" --socket "$S" --op stats | grep -q '"completed"'
"$CLIENT" --socket "$S" --op shutdown | grep -q bye
wait $DPID 2>/dev/null || true

for ev in submitted admitted started completed; do
    grep -q "\"ev\":\"$ev\"" "$WORK/log-live.jsonl" || {
        echo "server-smoke: no $ev event in the live log" >&2
        exit 1
    }
done

# --- 2. kill -9, resume from the journal ---------------------------------- #

rm -f "$S"
"$RATSD" --socket "$S" --journal-dir "$WORK/j2" &
DPID=$!
wait_ready
submit_jobs
kill -9 $DPID
wait $DPID 2>/dev/null || true

rm -f "$S"
"$RATSD" --socket "$S" --journal-dir "$WORK/j2" --resume &
DPID=$!
wait_ready
"$CLIENT" --socket "$S" --op drain | grep -q drained
"$CLIENT" --socket "$S" --op log --json > "$WORK/log-resumed.jsonl"
"$CLIENT" --socket "$S" --op shutdown >/dev/null
wait $DPID 2>/dev/null || true

if ! diff -q "$WORK/log-live.jsonl" "$WORK/log-resumed.jsonl" >/dev/null; then
    echo "server-smoke: resumed event log differs from the uninterrupted run" >&2
    diff "$WORK/log-live.jsonl" "$WORK/log-resumed.jsonl" >&2 || true
    exit 1
fi
echo "server-smoke: resume bit-exact ($(wc -l < "$WORK/log-live.jsonl") events)"

# --- 3. load driver ------------------------------------------------------- #

"$RATSD" --selftest > "$WORK/selftest.out"
grep -q 'selftest: OK' "$WORK/selftest.out"
grep -q 'throughput' "$WORK/selftest.out"
sed 's/^/  /' "$WORK/selftest.out"

echo "server-smoke: OK"
