#!/usr/bin/env bash
# Chaos soak test of the ratsd scheduling service: fault injection, kill -9
# mid-trace, overload shedding, queue-wait deadlines and slow-client
# eviction, all against one determinism oracle.
#
# Five phases (docs/SERVER.md "Failure semantics" documents the semantics
# each one exercises):
#   1. reference: an unfaulted daemon plays a Poisson load trace to
#      completion; its event log is the oracle for phases 2 and 3;
#   2. chaos kill/resume: the same trace against a daemon with every delay
#      site armed at p=1 (journal.append, engine.step, replay.task), killed
#      -9 halfway through submission, restarted with --resume over the stale
#      socket, fed the rest of the trace — the final event log must be
#      byte-identical to the reference (delay faults stall the wall clock
#      only; simulated time must not notice);
#   3. slow-client isolation: a watcher that subscribes and then reads
#      nothing, against a daemon with a tiny --client-buffer; the load must
#      drain undisturbed (log again byte-identical), the watcher must be
#      evicted (health reports it) and exit cleanly;
#   4. overload + deadlines: a burst (rate 50) against queue-limit 4 with a
#      0.5 shed watermark and a 1 s queue-wait deadline — the log must show
#      overloaded rejections carrying retry_after hints and expired events;
#   5. hostile faults: corrupt@server.read + crash@server.client at p=0.3 —
#      individual connections die (clients see clean failures, not hangs),
#      the daemon itself must survive and still answer health.
# Plus socket-claim checks woven in: a second daemon against a live socket
# must refuse to start, a stale socket after kill -9 must be reclaimed, and
# a non-socket path must never be unlinked.
#
# Binaries are expected to be built already (make chaos-smoke builds first).
set -euo pipefail
cd "$(dirname "$0")/.."

RATSD=_build/default/bin/ratsd.exe
CLIENT=_build/default/bin/rats_client.exe
WORK=$(mktemp -d)
S=$WORK/ratsd.sock
DPID=0
WPID=0
JOBS=40
# Never pass pid 0 to kill: that signals the whole process group.
cleanup() {
    [ "$DPID" -gt 0 ] && kill -9 "$DPID" 2>/dev/null || true
    [ "$WPID" -gt 0 ] && kill -9 "$WPID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

wait_ready() { # wait for the daemon to answer a ping on its socket
    for _ in $(seq 1 100); do
        if [ -S "$S" ] && "$CLIENT" --socket "$S" --op ping --timeout 2 \
            >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "chaos-smoke: ratsd did not come up on $S" >&2
    exit 1
}

fail() {
    echo "chaos-smoke: $*" >&2
    exit 1
}

# --- 1. reference run (the determinism oracle) ---------------------------- #

"$RATSD" --socket "$S" --journal-dir "$WORK/jref" &
DPID=$!
wait_ready
"$CLIENT" --socket "$S" --op load --load-jobs $JOBS --timeout 30 >/dev/null
"$CLIENT" --socket "$S" --op drain --timeout 60 | grep -q drained
"$CLIENT" --socket "$S" --op log --json --timeout 30 > "$WORK/ref.jsonl"
"$CLIENT" --socket "$S" --op shutdown >/dev/null
wait $DPID 2>/dev/null || true
[ -s "$WORK/ref.jsonl" ] || fail "reference log is empty"
echo "chaos-smoke: reference log captured ($(wc -l < "$WORK/ref.jsonl") events)"

# --- 2. chaos kill/resume under delay faults ------------------------------ #

# Every delay site fires on every visit; delay_s is small so the soak stays
# fast. Delay faults stall the daemon's wall clock only — if any of them
# leaked into simulated time, the diff below would catch it.
DELAYS="seed=5,delay_s=0.002,delay@journal.append=1,delay@engine.step=1"
DELAYS="$DELAYS,delay@replay.task=0.3"

rm -f "$S"
RATS_FAULT="$DELAYS" "$RATSD" --socket "$S" --journal-dir "$WORK/jchaos" \
    > "$WORK/chaos1.log" 2>&1 &
DPID=$!
wait_ready
grep -q "fault injection armed" "$WORK/chaos1.log" \
    || fail "daemon did not announce its fault spec"
"$CLIENT" --socket "$S" --op load --load-jobs $JOBS \
    --load-to $((JOBS / 2)) --timeout 30 >/dev/null

kill -9 $DPID
wait $DPID 2>/dev/null || true
[ -S "$S" ] || fail "expected a stale socket after kill -9"

# Restart over the stale socket: the claim probe must unlink and rebind.
RATS_FAULT="$DELAYS" "$RATSD" --socket "$S" --journal-dir "$WORK/jchaos" \
    --resume > "$WORK/chaos2.log" 2>&1 &
DPID=$!
wait_ready
grep -q "resumed $((JOBS / 2)) journaled submission" "$WORK/chaos2.log" \
    || fail "resume did not reload the journaled half of the trace"

# While it serves: a second daemon against the live socket must back off.
if "$RATSD" --socket "$S" --journal-dir "$WORK/jdup" 2> "$WORK/dup.err"; then
    fail "second daemon started over a live socket"
fi
grep -q "live daemon" "$WORK/dup.err" \
    || fail "live-socket refusal gave the wrong reason"

"$CLIENT" --socket "$S" --op load --load-jobs $JOBS \
    --load-from $((JOBS / 2)) --timeout 30 >/dev/null
"$CLIENT" --socket "$S" --op drain --timeout 120 | grep -q drained
"$CLIENT" --socket "$S" --op log --json --timeout 30 > "$WORK/chaos.jsonl"
"$CLIENT" --socket "$S" --op health --timeout 10 \
    | grep -q '"journal_writable":true' \
    || fail "journal died under delay faults"
"$CLIENT" --socket "$S" --op shutdown >/dev/null
wait $DPID 2>/dev/null || true

if ! diff -q "$WORK/ref.jsonl" "$WORK/chaos.jsonl" >/dev/null; then
    echo "chaos-smoke: faulted kill/resume log differs from the reference" >&2
    diff "$WORK/ref.jsonl" "$WORK/chaos.jsonl" >&2 || true
    exit 1
fi
echo "chaos-smoke: kill -9 + resume under delay faults is bit-exact"

# --- 3. slow-client isolation --------------------------------------------- #

rm -f "$S"
"$RATSD" --socket "$S" --journal-dir "$WORK/jslow" --client-buffer 4096 \
    2> "$WORK/slow.err" &
DPID=$!
wait_ready

# Subscribe, then read nothing: the event stream must back up against this
# client alone until its buffer budget evicts it.
"$CLIENT" --socket "$S" --op watch --stall 5 > "$WORK/watch.out" 2>&1 &
WPID=$!
sleep 0.5

"$CLIENT" --socket "$S" --op load --load-jobs $JOBS --timeout 30 >/dev/null
"$CLIENT" --socket "$S" --op drain --timeout 60 | grep -q drained
"$CLIENT" --socket "$S" --op log --json --timeout 30 > "$WORK/slow.jsonl"
"$CLIENT" --socket "$S" --op health --timeout 10 > "$WORK/health.json"
grep -q '"evicted":[1-9]' "$WORK/health.json" \
    || fail "stalled watcher was not evicted"
grep -q "evicting client" "$WORK/slow.err" \
    || fail "daemon did not log the eviction"
if ! wait $WPID; then
    fail "evicted watcher exited non-zero"
fi
WPID=0
"$CLIENT" --socket "$S" --op shutdown >/dev/null
wait $DPID 2>/dev/null || true

if ! diff -q "$WORK/ref.jsonl" "$WORK/slow.jsonl" >/dev/null; then
    fail "a stalled watcher perturbed the event log"
fi
echo "chaos-smoke: stalled watcher evicted; other tenants undisturbed"

# --- 4. overload shedding and queue-wait deadlines ------------------------ #

rm -f "$S"
"$RATSD" --socket "$S" --journal-dir "$WORK/jshed" --queue-limit 4 \
    --shed-watermark 0.5 --retry-after 2 --deadline 1 &
DPID=$!
wait_ready
"$CLIENT" --socket "$S" --op load --load-jobs 30 --rate 50 --timeout 30 \
    >/dev/null
"$CLIENT" --socket "$S" --op drain --timeout 60 | grep -q drained
"$CLIENT" --socket "$S" --op log --json --timeout 30 > "$WORK/shed.jsonl"
grep -q '"reason":"overloaded"' "$WORK/shed.jsonl" \
    || fail "burst load produced no overloaded rejections"
grep -q '"retry_after"' "$WORK/shed.jsonl" \
    || fail "overloaded rejections carry no retry_after hint"
grep -q '"ev":"expired"' "$WORK/shed.jsonl" \
    || fail "queue-wait deadline produced no expired events"
"$CLIENT" --socket "$S" --op stats --timeout 10 | grep -q '"expired":' \
    || fail "stats do not report expirations"
"$CLIENT" --socket "$S" --op shutdown >/dev/null
wait $DPID 2>/dev/null || true
echo "chaos-smoke: overload shedding and deadlines fire under burst load"

# --- 5. hostile faults: the daemon outlives its connections ---------------- #

# A non-socket path must never be claimed (checked here where no daemon is
# running; nothing to clean up afterwards).
echo "not a socket" > "$WORK/decoy"
if "$RATSD" --socket "$WORK/decoy" --journal-dir "$WORK/jdecoy" \
    2> "$WORK/decoy.err"; then
    fail "daemon started over a non-socket path"
fi
grep -q "not a socket" "$WORK/decoy.err" \
    || fail "non-socket refusal gave the wrong reason"
[ -f "$WORK/decoy" ] || fail "daemon unlinked a non-socket path"

rm -f "$S"
RATS_FAULT="seed=7,corrupt@server.read=0.3,crash@server.client=0.3" \
    "$RATSD" --socket "$S" --journal-dir "$WORK/jhostile" \
    2> "$WORK/hostile.err" &
DPID=$!
wait_ready

# Individual connections get corrupted or force-disconnected; each attempt
# must fail fast (the 5 s timeout converts a hang into a failure) and the
# daemon must keep serving the survivors.
OK=0
for i in $(seq 1 20); do
    if "$CLIENT" --socket "$S" --op ping --timeout 5 >/dev/null 2>&1; then
        OK=$((OK + 1))
    fi
done
[ "$OK" -ge 1 ] || fail "no ping survived the hostile fault spec"
[ "$OK" -lt 20 ] || fail "hostile fault spec injected nothing"
kill -0 $DPID 2>/dev/null || fail "daemon died under hostile faults"

HEALTHY=0
for i in $(seq 1 10); do
    if "$CLIENT" --socket "$S" --op health --timeout 5 2>/dev/null \
        | grep -q '"ready":true'; then
        HEALTHY=1
        break
    fi
done
[ "$HEALTHY" -eq 1 ] || fail "daemon stopped answering health checks"
echo "chaos-smoke: daemon survived hostile faults ($OK/20 pings got through)"
kill -9 $DPID 2>/dev/null || true
wait $DPID 2>/dev/null || true
DPID=0

echo "chaos-smoke: OK"
