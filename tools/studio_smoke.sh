#!/usr/bin/env bash
# Smoke test of the experiment studio (bin/studio.exe).
#
# Five parts:
#   1. report: a traced smoke-scale fig2 bench run, then `studio report`
#      over its BENCH_runtime.json + trace + metrics must produce one
#      self-contained HTML file: at least one inline SVG, the counter
#      table, the per-target breakdown, and no external fetches (no
#      script/link/src; the only URLs allowed are SVG xmlns declarations);
#   2. workload table: a small study CSV must render with the fairness and
#      p99 columns highlighted;
#   3. diff: a second (warm) run of the same target diffs against the
#      first — per-target deltas print and the exit status is 0;
#   4. scale guard: diffing runs whose `scale` fields differ must print a
#      scale-mismatch warning (docs/PERFORMANCE.md);
#   5. serve: `studio serve --max-requests 1` answers one HTTP request
#      with the live monitor page and exits.
#
# Binaries are expected to be built already (make studio-smoke builds
# first).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH=$PWD/_build/default/bench/main.exe
STUDIO=$PWD/_build/default/bin/studio.exe
WORKLOAD=$PWD/_build/default/bin/workload.exe
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Bench runs execute in $WORK so the repo's committed BENCH_runtime.json,
# cache and journal stay untouched.
cd "$WORK"

run_bench() { # $1 = output directory
    mkdir -p "$1"
    (cd "$1" &&
        RATS_SCALE=smoke RATS_JOURNAL=off RATS_CACHE_DIR="$WORK/cache" \
            "$BENCH" fig2 --trace trace.json --metrics metrics.json >bench.log)
}

# --- 1. self-contained report --------------------------------------------- #

run_bench a
"$WORKLOAD" --cluster grillon --profile poisson:jobs=12,tenants=2,seed=5 \
    --arms delta,hcpa --csv a/study.csv > /dev/null

"$STUDIO" report --bench a/BENCH_runtime.json --trace a/trace.json \
    --metrics a/metrics.json --workload a/study.csv \
    --title "studio smoke" --out a/report.html

[ -s a/report.html ] || { echo "studio-smoke: report.html missing" >&2; exit 1; }

require() { # $1 = pattern, $2 = description
    grep -q "$1" a/report.html || {
        echo "studio-smoke: report lacks $2" >&2
        exit 1
    }
}
require '<svg'                    'an inline SVG figure'
require 'fig2'                    'the fig2 target row'
require 'wall time per target'    'the per-target wall-time chart'
require 'rats_sim_events_total'   'the counter table'
require 'class="hl"'              'highlighted fairness/p99 columns'

# Self-containment: nothing that fetches. SVG xmlns declarations are
# namespace identifiers, not fetches, and are the only URLs allowed.
if grep -q '<script\|<link\| src=' a/report.html; then
    echo "studio-smoke: report contains a script/link/src reference" >&2
    exit 1
fi
if grep -o 'https\?://[^"< ]*' a/report.html | grep -qv 'www.w3.org'; then
    echo "studio-smoke: report references an external URL" >&2
    exit 1
fi

# --- 3. diff of a warm rerun ---------------------------------------------- #

run_bench b
"$STUDIO" diff a/BENCH_runtime.json b/BENCH_runtime.json > diff.txt
grep -q '^target\|^fig2' diff.txt || {
    echo "studio-smoke: diff printed no per-target rows" >&2
    cat diff.txt >&2
    exit 1
}

# --- 4. scale-mismatch warning -------------------------------------------- #

sed 's/"scale": "smoke"/"scale": "paper"/' a/BENCH_runtime.json > rescaled.json
"$STUDIO" diff a/BENCH_runtime.json rescaled.json > rescaled.txt
grep -q 'scale mismatch' rescaled.txt || {
    echo "studio-smoke: diff of differently-scaled runs did not warn" >&2
    cat rescaled.txt >&2
    exit 1
}

# --- 5. one-shot serve ----------------------------------------------------- #

PORT=8473
"$STUDIO" serve --bench a/BENCH_runtime.json --metrics a/metrics.json \
    --port $PORT --max-requests 1 > serve.log &
SERVE_PID=$!
probe() { # one GET /; sets ok=1 when the monitor page comes back
    exec 3<>"/dev/tcp/127.0.0.1/$PORT" || return 1
    printf 'GET / HTTP/1.1\r\nHost: smoke\r\n\r\n' >&3
    if grep -q 'live sweep monitor' <&3; then ok=1; fi
    exec 3<&- 3>&-
}
ok=0
for _ in $(seq 1 50); do
    if probe 2>/dev/null; then break; fi
    sleep 0.1
done
wait "$SERVE_PID"
[ "$ok" = 1 ] || { echo "studio-smoke: serve did not answer" >&2; exit 1; }

echo "studio-smoke: OK (self-contained report, diff + scale guard, one-shot serve)"
