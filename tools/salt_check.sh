#!/usr/bin/env bash
# Cache-salt discipline: a diff that touches simulation/scheduling semantics
# (lib/sim, lib/core, lib/dag, lib/redist) must bump the Cache.version salt
# in lib/runtime/cache.ml in the same range — otherwise a warm cache replays
# results computed by the old semantics and the "bit-identical reruns"
# guarantee silently inverts into "bit-identical wrong reruns".
#
# Usage: salt_check.sh [--strict] [--base REF]
#
#   --base REF   diff range base (default: $SALT_BASE, else origin/main,
#                else main; if that still equals HEAD, HEAD~1 so a freshly
#                committed tree checks its last commit). The range always
#                includes uncommitted changes.
#   --strict     exit 1 on a violation. Without it the rule is advisory
#                (printed, exit 0) because comment/doc-only edits to those
#                directories are legal and this script cannot tell.
set -euo pipefail
cd "$(dirname "$0")/.."

strict=0
base="${SALT_BASE:-}"
while [ $# -gt 0 ]; do
    case "$1" in
        --strict) strict=1 ;;
        --base) shift; base="${1:?--base needs a ref}" ;;
        *) echo "salt-check: unknown argument $1" >&2; exit 2 ;;
    esac
    shift
done

auto_base=0
if [ -z "$base" ]; then
    auto_base=1
    for candidate in origin/main main; do
        if git rev-parse --verify --quiet "$candidate^{commit}" >/dev/null; then
            base=$candidate
            break
        fi
    done
fi
if [ -z "$base" ]; then
    echo "salt-check: no base ref (origin/main or main) — nothing to check" >&2
    exit 0
fi
if [ "$auto_base" -eq 1 ] \
   && [ "$(git rev-parse "$base")" = "$(git rev-parse HEAD)" ]; then
    if git rev-parse --verify --quiet HEAD~1 >/dev/null; then
        base=HEAD~1
    else
        echo "salt-check: single-commit repo — nothing to check" >&2
        exit 0
    fi
fi

salted_dirs='^lib/(sim|core|dag|redist)/'

touched=$(git diff --name-only "$base" -- | grep -E "$salted_dirs" || true)
if [ -z "$touched" ]; then
    echo "salt-check: ok — no semantics directories touched since $base"
    exit 0
fi

if git diff "$base" -- lib/runtime/cache.ml | grep -qE '^[+-].*let version'; then
    echo "salt-check: ok — semantics touched and Cache.version bumped since $base"
    exit 0
fi

cat >&2 <<EOF
salt-check: lib/{sim,core,dag,redist} changed since $base without a
Cache.version bump in lib/runtime/cache.ml:
$(printf '%s\n' "$touched" | sed 's/^/  /')

Rule: any change that can alter a simulated result must also change the
cache salt (the 'let version = ...' line in lib/runtime/cache.ml), or a
warm bench_results/.cache will replay results computed by the old
semantics. If the change is comment/doc-only, this warning is safe to
ignore (that is why it is advisory without --strict).
EOF
[ "$strict" -eq 1 ] && exit 1
exit 0
