#!/usr/bin/env bash
# Lint smoke: the whole-program analyzer must stay fast and deterministic.
#
#   1. cold run (no summary cache) over the real tree under the 2s budget;
#   2. warm (cached) run byte-identical to the cold one;
#   3. baseline ratchet: fixture findings are all fresh against the empty
#      committed baseline (exit 1) and all accepted against a baseline
#      written from the same run (exit 0);
#   4. --graph emits a DOT call graph.
#
# Run from the repo root (or via `make lint-smoke`, which builds first).
set -euo pipefail
cd "$(dirname "$0")/.."

LINT="dune exec --no-build bin/lint.exe --"

fail() { echo "lint_smoke: FAIL: $*" >&2; exit 1; }

rm -f bench_results/.lintcache
start_ns=$(date +%s%N)
cold_out=$($LINT 2>/dev/null) || fail "cold whole-tree run found findings or errored"
end_ns=$(date +%s%N)
elapsed_ms=$(( (end_ns - start_ns) / 1000000 ))
echo "lint_smoke: cold whole-tree run ${elapsed_ms}ms"
[ "$elapsed_ms" -lt 2000 ] || fail "cold run over budget: ${elapsed_ms}ms >= 2000ms"

warm_out=$($LINT 2>/dev/null) || fail "warm (cached) run found findings or errored"
[ "$cold_out" = "$warm_out" ] || fail "warm (cached) output differs from cold run"

# Baseline ratchet, both directions, driven by the deliberately dirty
# fixture tree.
if $LINT --no-cache --root test/lint_fixtures --baseline tools/lint_baseline.txt lib >/dev/null 2>&1; then
  fail "fixture findings must be fresh against the empty committed baseline"
fi
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
$LINT --no-cache --root test/lint_fixtures --write-baseline "$tmp" lib >/dev/null 2>&1 \
  || fail "--write-baseline must exit 0"
$LINT --no-cache --root test/lint_fixtures --baseline "$tmp" lib >/dev/null 2>&1 \
  || fail "baselined fixture findings must not fail the run"

$LINT --graph - 2>/dev/null | grep -q "digraph rats_callgraph" \
  || fail "--graph did not emit a DOT digraph"

echo "lint_smoke: OK (cold ${elapsed_ms}ms; cache, baseline ratchet and graph export verified)"
