#!/usr/bin/env bash
# Diff README.md's consolidated CLI flag table against each binary's --help.
#
# Two directions:
#   1. every (flag, binary) cell in the table must match reality: a flag
#      marked ✓ must appear in that binary's --help, a flag marked — must
#      not;
#   2. every option of bench/main.exe, bin/ratsd.exe, bin/rats_client.exe,
#      bin/workload.exe and bin/studio.exe must have a table row (bench
#      carries exactly the shared runtime/observability flag set, and the
#      service/workload/studio binaries are documented exhaustively, so a
#      flag added to any of them without a table edit fails the check).
#      studio is a subcommand binary: its "help" is the concatenation of
#      the top-level help and every subcommand's.
#
# Binaries are expected to be built already (make check builds first).
set -euo pipefail
cd "$(dirname "$0")/.."

readme=README.md
fail=0

bench_help=$(dune exec --no-build bench/main.exe -- --help 2>&1)
exp_help=$(dune exec --no-build bin/experiments.exe -- --help=plain 2>&1)
run_help=$(dune exec --no-build bin/rats_run.exe -- --help=plain 2>&1)
ratsd_help=$(dune exec --no-build bin/ratsd.exe -- --help=plain 2>&1)
client_help=$(dune exec --no-build bin/rats_client.exe -- --help=plain 2>&1)
workload_help=$(dune exec --no-build bin/workload.exe -- --help=plain 2>&1)
studio_help=$(dune exec --no-build bin/studio.exe -- --help=plain 2>&1
              for sub in report diff serve; do
                  dune exec --no-build bin/studio.exe -- "$sub" --help=plain 2>&1
              done)

# Flag table rows: lines between the markers that start with '| `'.
rows=$(sed -n '/<!-- flags-check:begin -->/,/<!-- flags-check:end -->/p' "$readme" | grep '^| `' || true)
if [ -z "$rows" ]; then
    echo "flags-check: no flag table found between flags-check markers in $readme" >&2
    exit 1
fi

has_flag() { # $1 = help text, $2 = long flag (e.g. --jobs)
    # Here-string, not a pipeline: under pipefail, `printf | grep -q` races —
    # grep exits on the first match, printf takes a SIGPIPE, and the pipeline
    # (and so this function) reports a flag as missing when it is present.
    grep -qE -- "(^|[^-A-Za-z0-9])$2([^-A-Za-z0-9]|$)" <<< "$1"
}

check_cell() { # $1 = flag, $2 = mark, $3 = binary name, $4 = help text
    local flag=$1 mark=$2 name=$3 help=$4
    case "$mark" in
        *✓*)
            if ! has_flag "$help" "$flag"; then
                echo "flags-check: README claims $name supports $flag, but its --help does not mention it" >&2
                fail=1
            fi ;;
        *)
            if has_flag "$help" "$flag"; then
                echo "flags-check: $name's --help mentions $flag, but README marks it unsupported" >&2
                fail=1
            fi ;;
    esac
}

table_flags=""
while IFS='|' read -r _ cell bench exp run ratsd client workload studio _rest; do
    # First long flag named in the row's flag cell.
    flag=$(printf '%s' "$cell" | grep -oE -- '--[a-z][a-z-]*' | head -n1)
    [ -z "$flag" ] && continue
    table_flags="$table_flags $flag"
    check_cell "$flag" "$bench" "bench/main.exe" "$bench_help"
    check_cell "$flag" "$exp" "bin/experiments.exe" "$exp_help"
    check_cell "$flag" "$run" "bin/rats_run.exe" "$run_help"
    check_cell "$flag" "$ratsd" "bin/ratsd.exe" "$ratsd_help"
    check_cell "$flag" "$client" "bin/rats_client.exe" "$client_help"
    check_cell "$flag" "$workload" "bin/workload.exe" "$workload_help"
    check_cell "$flag" "$studio" "bin/studio.exe" "$studio_help"
done <<EOF
$rows
EOF

# Reverse direction: every option of these binaries must be documented in
# the table.
check_documented() { # $1 = binary name, $2 = help text
    local name=$1 help=$2
    for flag in $(printf '%s\n' "$help" | grep -oE -- '--[a-z][a-z-]*' | sort -u); do
        case " $table_flags " in
            *" $flag "*) ;;
            *)
                echo "flags-check: $name --help lists $flag, but the README flag table has no row for it" >&2
                fail=1 ;;
        esac
    done
}
check_documented "bench/main.exe" "$bench_help"
check_documented "bin/ratsd.exe" "$ratsd_help"
check_documented "bin/rats_client.exe" "$client_help"
check_documented "bin/workload.exe" "$workload_help"
check_documented "bin/studio.exe" "$studio_help"

# The lint driver has its own table (lint-flags-check markers), checked in
# the same two directions: every documented flag must exist, every flag in
# --help must be documented.
lint_help=$(dune exec --no-build bin/lint.exe -- --help 2>&1)
lint_rows=$(sed -n '/<!-- lint-flags-check:begin -->/,/<!-- lint-flags-check:end -->/p' "$readme" | grep '^| `' || true)
if [ -z "$lint_rows" ]; then
    echo "flags-check: no lint flag table found between lint-flags-check markers in $readme" >&2
    exit 1
fi
lint_table_flags=""
while IFS='|' read -r _ cell _rest; do
    flag=$(printf '%s' "$cell" | grep -oE -- '--[a-z][a-z-]*' | head -n1)
    [ -z "$flag" ] && continue
    lint_table_flags="$lint_table_flags $flag"
    if ! has_flag "$lint_help" "$flag"; then
        echo "flags-check: README documents $flag for bin/lint.exe, but its --help does not mention it" >&2
        fail=1
    fi
done <<EOF
$lint_rows
EOF
for flag in $(printf '%s\n' "$lint_help" | grep -oE -- '--[a-z][a-z-]*' | sort -u); do
    case " $lint_table_flags " in
        *" $flag "*) ;;
        *)
            echo "flags-check: bin/lint.exe --help lists $flag, but the README lint flag table has no row for it" >&2
            fail=1 ;;
    esac
done

if [ "$fail" -ne 0 ]; then
    echo "flags-check: FAILED — update the tables in $readme (flags-check / lint-flags-check markers) or the binary" >&2
    exit 1
fi
echo "flags-check: README flag tables match all eight binaries' --help"
