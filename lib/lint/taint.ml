(* Pass 2, step 2: transitive determinism taint (D005).

   Seeds are references to raw nondeterminism primitives — the D002 set
   plus the ambient-state [Random] draws and [Sys.time], which are
   deterministic per-seed but order-dependent and invisible to D002's
   per-file scan. lib/obs is the trust boundary: the observability layer
   owns the clock, so sources inside it do not seed and call edges into
   it are not followed (otherwise every [Trace.span] caller would light
   up). A source occurrence whose line carries a D002/D005 allow in its
   own file is a justified exception and does not seed either.

   Taint propagates from callee to caller over the call graph (breadth
   first, sorted at every step, so witnesses — and therefore reported
   paths — are deterministic and minimal). A finding is emitted at the
   taint *frontier* of the result-producing scope: a tainted definition
   whose next hop leaves the scope (or is the source itself). Callers
   further up the chain inside the scope are not re-reported — fixing the
   frontier heals them. *)

let source_names =
  Rules.d002_names
  @ [
      "Sys.time"; "Random.bits"; "Random.bits32"; "Random.bits64";
      "Random.bool"; "Random.float"; "Random.full_int"; "Random.int";
      "Random.int32"; "Random.int64"; "Random.nativeint";
    ]

let trusted_dir dir = dir = "lib/obs"

type witness =
  | Direct of string * int  (** source name, referencing line *)
  | Via of Callgraph.node

let allow_covers_source (s : Summary.t) ~line =
  List.exists
    (fun a ->
      Allow.covers a ~rule_id:"D005" ~line || Allow.covers a ~rule_id:"D002" ~line)
    s.Summary.s_allows

(* (node -> witness) for every tainted definition. *)
let analyze g =
  let tainted : (Callgraph.node, witness) Hashtbl.t = Hashtbl.create 64 in
  let callers : (Callgraph.node, Callgraph.node list) Hashtbl.t =
    Hashtbl.create 64
  in
  let seeds =
    Callgraph.fold_defs g
      (fun acc file (d : Summary.def) ->
        match Callgraph.summary g file with
        | Some s when trusted_dir s.Summary.s_dir -> acc
        | summary_opt ->
            let node = (file, d.Summary.d_name) in
            (* Register reverse edges (skipping edges into the trust
               boundary) while we scan for direct sources. *)
            List.iter
              (fun (((tfile, _) as target), _line) ->
                let target_trusted =
                  match Callgraph.summary g tfile with
                  | Some ts -> trusted_dir ts.Summary.s_dir
                  | None -> false
                in
                if not target_trusted then
                  Hashtbl.replace callers target
                    (node
                    :: Option.value ~default:[]
                         (Hashtbl.find_opt callers target)))
              (Callgraph.succs g file d);
            let direct =
              List.filter
                (fun (name, line) ->
                  List.mem (Rules.normalize name) source_names
                  && not
                       (match summary_opt with
                       | Some s -> allow_covers_source s ~line
                       | None -> false))
                d.Summary.d_refs
              |> List.sort (fun (n1, l1) (n2, l2) ->
                     match Int.compare l1 l2 with
                     | 0 -> String.compare n1 n2
                     | c -> c)
            in
            (match direct with
            | (name, line) :: _ ->
                Hashtbl.replace tainted node
                  (Direct (Rules.normalize name, line))
            | [] -> ());
            if direct <> [] then node :: acc else acc)
      []
  in
  let rec propagate frontier =
    match frontier with
    | [] -> ()
    | _ ->
        let next =
          List.fold_left
            (fun acc node ->
              List.fold_left
                (fun acc caller ->
                  if Hashtbl.mem tainted caller then acc
                  else begin
                    Hashtbl.replace tainted caller (Via node);
                    caller :: acc
                  end)
                acc
                (List.sort_uniq compare
                   (Option.value ~default:[] (Hashtbl.find_opt callers node))))
            []
            (List.sort_uniq compare frontier)
        in
        propagate next
  in
  propagate seeds;
  tainted

(* Follow the witness chain down to the source. *)
let path_of g tainted node =
  let rec go node acc =
    match Hashtbl.find_opt tainted node with
    | Some (Direct (source, _)) ->
        (List.rev (Callgraph.display g node :: acc), source)
    | Some (Via next) -> go next (Callgraph.display g node :: acc)
    | None -> (List.rev (Callgraph.display g node :: acc), "?")
  in
  go node []

let findings g =
  let rule = Rules.rule "D005" in
  let d002 = Rules.rule "D002" in
  let tainted = analyze g in
  Callgraph.fold_defs g
    (fun acc file (d : Summary.def) ->
      let node = (file, d.Summary.d_name) in
      if not (Rule.applies rule ~path:file) then acc
      else
        match Hashtbl.find_opt tainted node with
        | None -> acc
        | Some witness -> (
            let frontier =
              match witness with
              | Direct _ -> true
              | Via (tfile, _) -> not (Rule.applies rule ~path:tfile)
            in
            if not frontier then acc
            else
              match witness with
              | Direct (source, _)
                when List.mem source Rules.d002_names
                     && Rule.applies d002 ~path:file ->
                  (* 0-hop wall-clock call: D002 already reports it. *)
                  acc
              | _ ->
                  let steps, source = path_of g tainted node in
                  let hops = List.length steps in
                  {
                    Finding.rule_id = rule.Rule.id;
                    severity = rule.Rule.severity;
                    file;
                    line = d.Summary.d_line;
                    col = d.Summary.d_col;
                    message =
                      Printf.sprintf
                        "transitively reaches nondeterminism source %s: %s → \
                         %s (%d hop%s) — route time/entropy through lib/obs \
                         or a seeded Rng"
                        source
                        (String.concat " → " steps)
                        source hops
                        (if hops = 1 then "" else "s");
                  }
                  :: acc))
    []
  |> List.sort_uniq Finding.compare
