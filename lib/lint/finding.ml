module Json = Rats_obs.Json

type t = {
  rule_id : string;
  severity : Rule.severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule_id b.rule_id

let to_human t =
  Printf.sprintf "%s:%d:%d: %s %s: %s" t.file t.line t.col t.rule_id
    (Rule.severity_to_string t.severity)
    t.message

let to_json t =
  Json.Obj
    [
      ("rule", Json.Str t.rule_id);
      ("severity", Json.Str (Rule.severity_to_string t.severity));
      ("file", Json.Str t.file);
      ("line", Json.Num (float_of_int t.line));
      ("col", Json.Num (float_of_int t.col));
      ("message", Json.Str t.message);
    ]
