(** Pass 2, step 1: the cross-module call graph over file summaries.

    Nodes are [(file, def name)] pairs; edges come from resolving each
    definition's qualified references against the scanned tree. Resolution
    is deterministic and heuristic (documented in the implementation):
    top-level aliases, same-file definitions, [Rats_*] public library
    names, same-directory siblings, then a tree-unique module basename.
    Unresolved names (Stdlib, Unix, ...) are external — [Taint] matches
    them against its source list but they never become edges. *)

type node = string * string
(** [(root-relative file, def name)]. *)

type t

val build : Summary.t list -> t

val summary : t -> string -> Summary.t option

val resolve : t -> from_file:string -> from_def:string -> string -> node option
(** Resolve one qualified reference appearing inside [from_def] of
    [from_file]; [None] means external. *)

val display : t -> node -> string
(** ["Maxmin.solve"] — module-qualified name for findings and DOT. *)

val succs : t -> string -> Summary.def -> (node * int) list
(** Resolved call edges of one definition with the referencing line,
    sorted and deduplicated. *)

val fold_defs : t -> ('a -> string -> Summary.def -> 'a) -> 'a -> 'a
(** Fold over every definition, files in sorted order. *)

val to_dot : t -> string
(** Module-level DOT projection (one node per file, library-qualified
    labels), byte-stable across runs. *)
