type severity = Error | Warning

type t = {
  id : string;
  severity : severity;
  title : string;
  rationale : string;
  include_dirs : string list;
  exclude_dirs : string list;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let has_prefix path p =
  String.length path >= String.length p && String.sub path 0 (String.length p) = p

let applies t ~path =
  (match t.include_dirs with
  | [] -> true
  | dirs -> List.exists (has_prefix path) dirs)
  && not (List.exists (has_prefix path) t.exclude_dirs)
