module Json = Rats_obs.Json

(* Orchestration, in two passes. Pass 1 turns every [.ml] into a
   {!Summary.t} (per-file findings, allows, defs/refs) — cached across
   runs keyed by source digest. Pass 2 is whole-program: the summaries
   become a {!Callgraph.t}, the taint pass adds D005 findings, unused
   allows become A002 findings, and suppression is applied over the
   union. [lint_file] stops after pass 1 — single-file runs cannot see
   cross-module taint or prove an allow stale. *)

type report = {
  root : string;
  files : string list;
  findings : Finding.t list;
  suppressed : Finding.t list;
  allows : Allow.t list;
  graph : Callgraph.t option;
  cache_stats : (int * int) option;
}

let default_dirs = [ "bench"; "bin"; "lib"; "test" ]
let skip_dir_names = [ "_build"; ".git"; "lint_fixtures" ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A001: a suppression is only acceptable with a written justification. *)
let a001_findings allows =
  let a001 = Rules.rule "A001" in
  List.filter_map
    (fun (a : Allow.t) ->
      match a.reason with
      | Some _ -> None
      | None ->
          Some
            {
              Finding.rule_id = a001.Rule.id;
              severity = a001.Rule.severity;
              file = a.file;
              line = a.line;
              col = 0;
              message =
                Printf.sprintf
                  "suppression of %s has no written justification — add one \
                   after a dash"
                  (String.concat ", " a.rules);
            })
    allows

(* A002 (whole-program only): an allow no finding needed. Usage is
   checked against every non-A002 finding, so an allow naming A002 can
   suppress its own staleness report — that is the sanctioned way to keep
   a deliberately stale fixture. *)
let a002_findings ~used allows =
  let a002 = Rules.rule "A002" in
  List.filter_map
    (fun (a : Allow.t) ->
      if
        List.exists
          (fun (f : Finding.t) ->
            f.Finding.file = a.file
            && Allow.covers a ~rule_id:f.Finding.rule_id ~line:f.Finding.line)
          used
      then None
      else
        Some
          {
            Finding.rule_id = a002.Rule.id;
            severity = a002.Rule.severity;
            file = a.file;
            line = a.line;
            col = 0;
            message =
              Printf.sprintf
                "suppression of %s matches no finding — the hazard is gone or \
                 the code moved; delete or relocate the allow"
                (String.concat ", " a.rules);
          })
    allows

let apply_allows ~allows all =
  let all = List.sort_uniq Finding.compare all in
  let suppressed, findings =
    List.partition
      (fun (f : Finding.t) ->
        List.exists
          (fun (a : Allow.t) ->
            a.file = f.file && Allow.covers a ~rule_id:f.rule_id ~line:f.line)
          allows)
      all
  in
  (findings, suppressed)

let lint_file ~root file =
  let s = Summary.scan ~file (read_file (Filename.concat root file)) in
  let allows = s.Summary.s_allows in
  let findings, suppressed =
    apply_allows ~allows (a001_findings allows @ s.Summary.s_findings)
  in
  {
    root;
    files = [ file ];
    findings;
    suppressed;
    allows;
    graph = None;
    cache_stats = None;
  }

let rec walk root rel acc =
  let abs = if rel = "" then root else Filename.concat root rel in
  let entries = Sys.readdir abs in
  Array.sort String.compare entries;
  Array.fold_left
    (fun acc name ->
      if List.mem name skip_dir_names then acc
      else
        let rel' = if rel = "" then name else rel ^ "/" ^ name in
        let abs' = Filename.concat root rel' in
        if Sys.is_directory abs' then walk root rel' acc
        else if Filename.check_suffix name ".ml" then rel' :: acc
        else acc)
    acc entries

(* --- the summary cache -------------------------------------------------- *)

let load_cache path =
  if not (Sys.file_exists path) then []
  else
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let version, entries =
            (Marshal.from_channel ic : int * (string * Summary.t) list)
          in
          if version = Summary.format_version then entries else [])
    with _ -> []

let save_cache path summaries =
  try
    let dir = Filename.dirname path in
    if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Marshal.to_channel oc
          ( Summary.format_version,
            List.map (fun s -> (s.Summary.s_file, s)) summaries )
          [])
  with Sys_error _ -> ()

let lint_tree ?(dirs = default_dirs) ?cache ~root () =
  let files =
    match dirs with
    | [] -> walk root "" []
    | dirs ->
        List.fold_left
          (fun acc dir ->
            let abs = Filename.concat root dir in
            if Sys.file_exists abs && Sys.is_directory abs then
              walk root dir acc
            else acc)
          [] dirs
  in
  let files = List.sort String.compare files in
  (* Pass 1: summarize (from cache when the digest still matches). *)
  let cached = match cache with Some path -> load_cache path | None -> [] in
  let hits = ref 0 and misses = ref 0 in
  let summaries =
    List.map
      (fun file ->
        let src = read_file (Filename.concat root file) in
        let digest = Digest.to_hex (Digest.string src) in
        match List.assoc_opt file cached with
        | Some s when s.Summary.s_digest = digest ->
            incr hits;
            s
        | _ ->
            incr misses;
            Summary.scan ~file src)
      files
  in
  (match cache with Some path -> save_cache path summaries | None -> ());
  (* Pass 2: whole-program analysis over the summaries. *)
  let graph = Callgraph.build summaries in
  let allows =
    List.sort Allow.compare
      (List.concat_map (fun s -> s.Summary.s_allows) summaries)
  in
  let non_a002 =
    List.concat_map (fun s -> s.Summary.s_findings) summaries
    @ a001_findings allows @ Taint.findings graph
  in
  let all = non_a002 @ a002_findings ~used:non_a002 allows in
  let findings, suppressed = apply_allows ~allows all in
  {
    root;
    files;
    findings;
    suppressed;
    allows;
    graph = Some graph;
    cache_stats = Some (!hits, !misses);
  }

let render_list to_human items =
  String.concat "" (List.map (fun x -> to_human x ^ "\n") items)

let render t = render_list Finding.to_human t.findings
let render_allows t = render_list Allow.to_human t.allows

let to_json t =
  Json.Obj
    [
      ("tool", Json.Str "rats_lint");
      ("root", Json.Str t.root);
      ("files_scanned", Json.Num (float_of_int (List.length t.files)));
      ("findings", Json.Arr (List.map Finding.to_json t.findings));
      ("suppressed", Json.Arr (List.map Finding.to_json t.suppressed));
      ("allows", Json.Arr (List.map Allow.to_json t.allows));
    ]
