module Json = Rats_obs.Json

type report = {
  root : string;
  files : string list;
  findings : Finding.t list;
  suppressed : Finding.t list;
  allows : Allow.t list;
}

let default_dirs = [ "bench"; "bin"; "lib"; "test" ]
let skip_dir_names = [ "_build"; ".git"; "lint_fixtures" ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let split_lines src = Array.of_list (String.split_on_char '\n' src)

let finding_of rule (loc : Location.t) message ~file =
  {
    Finding.rule_id = rule.Rule.id;
    severity = rule.Rule.severity;
    file;
    line = loc.loc_start.pos_lnum;
    col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
    message;
  }

let parse_structure ~file src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception Syntaxerr.Error err ->
      Error (Syntaxerr.location_of_error err, "syntax error")
  | exception Lexer.Error (_, loc) -> Error (loc, "lexer error")

let lint_file ~root file =
  let src = read_file (Filename.concat root file) in
  let lines = split_lines src in
  let raw = ref [] in
  let allows = ref (Allow.scan_comments ~file lines) in
  (match parse_structure ~file src with
  | Error (loc, what) ->
      let rule = Option.get (Rules.by_id "E001") in
      raw := [ finding_of rule loc (what ^ " — file cannot be analyzed") ~file ]
  | Ok structure ->
      let cb =
        {
          Rules.finding =
            (fun rule loc message ->
              if Rule.applies rule ~path:file then
                raw := finding_of rule loc message ~file :: !raw);
          allow =
            (fun ~line ~span ~source spec ->
              let rules, reason = Allow.parse_spec spec in
              if rules <> [] then
                allows :=
                  { Allow.file; line; span; rules; reason; source }
                  :: !allows);
        }
      in
      Rules.check_structure ~lines cb structure);
  let allows = List.sort Allow.compare !allows in
  (* A001: a suppression is only acceptable with a written justification. *)
  let a001 = Option.get (Rules.by_id "A001") in
  let unjustified =
    List.filter_map
      (fun (a : Allow.t) ->
        match a.reason with
        | Some _ -> None
        | None ->
            Some
              {
                Finding.rule_id = a001.Rule.id;
                severity = a001.Rule.severity;
                file;
                line = a.line;
                col = 0;
                message =
                  Printf.sprintf
                    "suppression of %s has no written justification — add one \
                     after a dash"
                    (String.concat ", " a.rules);
              })
      allows
  in
  let all = List.sort_uniq Finding.compare (unjustified @ !raw) in
  let suppressed, findings =
    List.partition
      (fun (f : Finding.t) ->
        List.exists
          (fun a -> Allow.covers a ~rule_id:f.rule_id ~line:f.line)
          allows)
      all
  in
  { root; files = [ file ]; findings; suppressed; allows }

let rec walk root rel acc =
  let abs = if rel = "" then root else Filename.concat root rel in
  let entries = Sys.readdir abs in
  Array.sort String.compare entries;
  Array.fold_left
    (fun acc name ->
      if List.mem name skip_dir_names then acc
      else
        let rel' = if rel = "" then name else rel ^ "/" ^ name in
        let abs' = Filename.concat root rel' in
        if Sys.is_directory abs' then walk root rel' acc
        else if Filename.check_suffix name ".ml" then rel' :: acc
        else acc)
    acc entries

let lint_tree ?(dirs = default_dirs) ~root () =
  let files =
    match dirs with
    | [] -> walk root "" []
    | dirs ->
        List.fold_left
          (fun acc dir ->
            let abs = Filename.concat root dir in
            if Sys.file_exists abs && Sys.is_directory abs then
              walk root dir acc
            else acc)
          [] dirs
  in
  let files = List.sort String.compare files in
  let reports = List.map (lint_file ~root) files in
  {
    root;
    files;
    findings =
      List.sort Finding.compare (List.concat_map (fun r -> r.findings) reports);
    suppressed =
      List.sort Finding.compare
        (List.concat_map (fun r -> r.suppressed) reports);
    allows =
      List.sort Allow.compare (List.concat_map (fun r -> r.allows) reports);
  }

let render_list to_human items =
  String.concat "" (List.map (fun x -> to_human x ^ "\n") items)

let render t = render_list Finding.to_human t.findings
let render_allows t = render_list Allow.to_human t.allows

let to_json t =
  Json.Obj
    [
      ("tool", Json.Str "rats_lint");
      ("root", Json.Str t.root);
      ("files_scanned", Json.Num (float_of_int (List.length t.files)));
      ("findings", Json.Arr (List.map Finding.to_json t.findings));
      ("suppressed", Json.Arr (List.map Finding.to_json t.suppressed));
      ("allows", Json.Arr (List.map Allow.to_json t.allows));
    ]
