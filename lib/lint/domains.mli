(** Domain-safety checks: the R-series rules.

    - [R001] — shared mutable state ([ref], [Hashtbl]/[Buffer]/[Queue]/
      [Stack] creations, [Array.make]/[init], [Bytes]) reachable from a
      closure handed to [Domain.spawn] or [Pool.map*]. The capture set is
      the closure's free variables, expanded through let-bound functions
      defined in the same file (so [Domain.spawn (worker (s + 1))] sees
      what [worker] captures). [Atomic.make]/[Mutex.create] bindings are
      sanctioned; a closure that takes a mutex itself is presumed
      disciplined (R002 audits its unlock path).
    - [R002] — a [Mutex.lock] not immediately followed by
      [Fun.protect ~finally:(... Mutex.unlock ...)] in the same sequence:
      any exception between lock and unlock leaves the mutex held.

    Both checks are per-file and syntactic; like [Rules.check_structure],
    scope filtering and suppression happen in the engine. *)

val check_structure : Rules.callbacks -> Parsetree.structure -> unit
(** Walk one parsed file and report every R001/R002 violation through
    [cb.finding] (the [allow] callback is unused here — attributes are
    collected by [Rules.check_structure]). *)
