open Parsetree

(* Domain-safety checks (R001/R002).

   R001 is a capture analysis: at every parallelism entry point
   (Domain.spawn, the Pool.map family), compute the free variables of the
   closure argument, expand through let-bound helpers defined in the
   same file (pool.ml's [Domain.spawn (worker (s + 1))] idiom), and flag
   any capture whose binding is provably mutable (ref, Hashtbl.create,
   Buffer/Queue/Stack.create, Array.make/init, Bytes.create) unless it is
   an Atomic/Mutex or the closure body takes a mutex itself.

   R002 is structural: a [Mutex.lock] is accepted only when it is the
   first half of [Mutex.lock m; Fun.protect ~finally:(... Mutex.unlock
   ...) ...]; any other shape leaks the lock on an exception. *)

module SS = Set.Make (String)

let rec pat_binders p acc =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> SS.add txt acc
  | Ppat_alias (inner, { txt; _ }) -> pat_binders inner (SS.add txt acc)
  | Ppat_tuple ps | Ppat_array ps ->
      List.fold_left (fun acc p -> pat_binders p acc) acc ps
  | Ppat_construct (_, Some (_, inner)) | Ppat_variant (_, Some inner) ->
      pat_binders inner acc
  | Ppat_record (fields, _) ->
      List.fold_left (fun acc (_, p) -> pat_binders p acc) acc fields
  | Ppat_or (a, b) -> pat_binders b (pat_binders a acc)
  | Ppat_constraint (inner, _)
  | Ppat_lazy inner
  | Ppat_open (_, inner)
  | Ppat_exception inner ->
      pat_binders inner acc
  | _ -> acc

(* Free value variables of [expr] (simple [Lident]s only — qualified names
   are module members, not captured locals). Unhandled constructor shapes
   contribute nothing, which under-approximates: a capture a rule misses
   is a false negative, never a false positive. *)
let free_vars expr =
  let rec fv bound e acc =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident x; _ } ->
        if SS.mem x bound then acc else SS.add x acc
    | Pexp_ident _ | Pexp_constant _ | Pexp_new _ | Pexp_unreachable
    | Pexp_extension _ | Pexp_object _ | Pexp_pack _ | Pexp_override _
    | Pexp_letop _ ->
        acc
    | Pexp_let (rf, vbs, body) ->
        let binders =
          List.fold_left (fun acc vb -> pat_binders vb.pvb_pat acc) SS.empty vbs
        in
        let inner = SS.union bound binders in
        let rhs_bound =
          match rf with Asttypes.Recursive -> inner | Nonrecursive -> bound
        in
        let acc =
          List.fold_left (fun acc vb -> fv rhs_bound vb.pvb_expr acc) acc vbs
        in
        fv inner body acc
    | Pexp_fun (_, default, pat, body) ->
        let acc =
          match default with Some d -> fv bound d acc | None -> acc
        in
        fv (pat_binders pat bound) body acc
    | Pexp_function cases -> cases_fv bound cases acc
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        cases_fv bound cases (fv bound scrut acc)
    | Pexp_apply (f, args) ->
        List.fold_left (fun acc (_, e) -> fv bound e acc) (fv bound f acc) args
    | Pexp_tuple es | Pexp_array es ->
        List.fold_left (fun acc e -> fv bound e acc) acc es
    | Pexp_construct (_, eo) | Pexp_variant (_, eo) -> (
        match eo with Some e -> fv bound e acc | None -> acc)
    | Pexp_record (fields, base) ->
        let acc = match base with Some e -> fv bound e acc | None -> acc in
        List.fold_left (fun acc (_, e) -> fv bound e acc) acc fields
    | Pexp_field (e, _) | Pexp_send (e, _) -> fv bound e acc
    | Pexp_setfield (a, _, b) | Pexp_sequence (a, b) | Pexp_while (a, b) ->
        fv bound b (fv bound a acc)
    | Pexp_ifthenelse (c, t, eo) ->
        let acc = fv bound t (fv bound c acc) in
        (match eo with Some e -> fv bound e acc | None -> acc)
    | Pexp_for (pat, lo, hi, _, body) ->
        fv (pat_binders pat bound) body (fv bound hi (fv bound lo acc))
    | Pexp_constraint (e, _)
    | Pexp_coerce (e, _, _)
    | Pexp_assert e
    | Pexp_lazy e
    | Pexp_newtype (_, e)
    | Pexp_open (_, e)
    | Pexp_letexception (_, e)
    | Pexp_poly (e, _)
    | Pexp_setinstvar (_, e)
    | Pexp_letmodule (_, _, e) ->
        fv bound e acc
  and cases_fv bound cases acc =
    List.fold_left
      (fun acc case ->
        let b = pat_binders case.pc_lhs bound in
        let acc =
          match case.pc_guard with Some g -> fv b g acc | None -> acc
        in
        fv b case.pc_rhs acc)
      acc cases
  in
  fv SS.empty expr SS.empty

(* Every qualified identifier mentioned under [e], for the Mutex-discipline
   and Fun.protect checks. *)
let dotted_idents e =
  let acc = ref SS.empty in
  let expr_hook (it : Ast_iterator.iterator) e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } ->
        acc := SS.add (Rules.normalize (Rules.dotted txt)) !acc
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr = expr_hook } in
  it.expr it e;
  !acc

(* Component-boundary suffix match: ["Pool.map"] matches ["Pool.map"] and
   ["Runtime.Pool.map"], never ["Workpool.map"]. *)
let ends_with ~suffix s =
  let n = String.length s and m = String.length suffix in
  if n < m || String.sub s (n - m) m <> suffix then false
  else n = m || s.[n - m - 1] = '.'

(* How a let-bound RHS classifies for the capture check. *)
type klass =
  | Mutable of string  (** provably shared-mutable; the payload names how *)
  | Guarded  (** Atomic/Mutex/Semaphore — the sanctioned sharing primitives *)
  | Func of expression  (** a local function: expand its free variables *)

let classify rhs =
  match rhs.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> Some (Func rhs)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match Rules.normalize (Rules.dotted txt) with
      | "ref" -> Some (Mutable "ref")
      | ( "Hashtbl.create" | "Buffer.create" | "Queue.create" | "Stack.create"
        | "Array.make" | "Array.init" | "Array.create_float" | "Bytes.create"
        | "Bytes.make" ) as name ->
          Some (Mutable name)
      | "Atomic.make" | "Mutex.create" | "Condition.create"
      | "Semaphore.Counting.make" | "Semaphore.Binary.make" ->
          Some Guarded
      | _ -> None)
  | _ -> None

let spawn_names = [ "Domain.spawn" ]

let pool_suffixes =
  [
    "Pool.map"; "Pool.mapi"; "Pool.map_result"; "Pool.map_array";
    "Pool.map_array_capture";
  ]

let spawn_kind name =
  if List.mem name spawn_names then Some name
  else
    List.find_opt (fun suffix -> ends_with ~suffix name) pool_suffixes
    |> Option.map (fun _ -> name)

let first_positional args =
  List.find_map
    (fun (label, e) ->
      match label with Asttypes.Nolabel -> Some e | _ -> None)
    args

let check_structure cb structure =
  (* File-wide binding classification: name -> klass, last binding wins.
     Scoping is approximated — [free_vars] already keeps locally-bound
     names out, so the map only answers "what does this captured name
     most plausibly refer to". *)
  let env : (string, klass) Hashtbl.t = Hashtbl.create 64 in
  let record_binding vb =
    match pat_binders vb.pvb_pat SS.empty |> SS.elements with
    | [ name ] -> (
        match classify vb.pvb_expr with
        | Some k -> Hashtbl.replace env name k
        | None -> Hashtbl.remove env name)
    | _ -> ()
  in
  let env_pass =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun it vb ->
          record_binding vb;
          Ast_iterator.default_iterator.value_binding it vb);
    }
  in
  env_pass.structure env_pass structure;
  (* Transitive capture set of a closure argument: its free variables,
     plus — through a fixpoint — the free variables of any same-file
     function a free variable names. *)
  let captures arg =
    let seen = ref SS.empty in
    let idents = ref (dotted_idents arg) in
    let rec grow frontier =
      let next =
        SS.fold
          (fun name acc ->
            if SS.mem name !seen then acc
            else begin
              seen := SS.add name !seen;
              match Hashtbl.find_opt env name with
              | Some (Func body) ->
                  idents := SS.union (dotted_idents body) !idents;
                  SS.union (free_vars body) acc
              | _ -> acc
            end)
          frontier SS.empty
      in
      if not (SS.is_empty next) then grow next
    in
    grow (free_vars arg);
    (!seen, !idents)
  in
  let check_spawn loc name args =
    match first_positional args with
    | None -> ()
    | Some arg ->
        let captured, idents = captures arg in
        (* Mutex discipline inside the closure: R002 separately checks the
           unlock path, so a locking closure's captures are presumed
           guarded. *)
        if not (SS.exists (fun id -> ends_with ~suffix:"Mutex.lock" id) idents)
        then begin
          let flagged =
            SS.fold
              (fun v acc ->
                match Hashtbl.find_opt env v with
                | Some (Mutable kind) -> (v, kind) :: acc
                | _ -> acc)
              captured []
            |> List.sort compare
          in
          if flagged <> [] then
            cb.Rules.finding (Rules.rule "R001") loc
              (Printf.sprintf
                 "%s captured by the closure passed to %s — share via \
                  Atomic/Mutex or keep it domain-local"
                 (String.concat ", "
                    (List.map
                       (fun (v, kind) -> Printf.sprintf "`%s` (%s)" v kind)
                       flagged))
                 name)
        end
  in
  (* R002: locks accepted as [Mutex.lock m; Fun.protect ~finally:(...
     Mutex.unlock ...) ...] are marked handled by the enclosing-sequence
     visit (iterators run top-down); any lock reached unmarked leaks. *)
  let handled_locks : (Location.t, unit) Hashtbl.t = Hashtbl.create 8 in
  let lock_loc e =
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _)
      when ends_with ~suffix:"Mutex.lock" (Rules.normalize (Rules.dotted txt))
      ->
        Some loc
    | _ -> None
  in
  let rec protects_unlock e =
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
      when Rules.normalize (Rules.dotted txt) = "Fun.protect" ->
        List.exists
          (fun (label, arg) ->
            label = Asttypes.Labelled "finally"
            && SS.exists
                 (fun id -> ends_with ~suffix:"Mutex.unlock" id)
                 (dotted_idents arg))
          args
    | Pexp_sequence (first, _) -> protects_unlock first
    | Pexp_let (_, vbs, body) ->
        (* [let x = Fun.protect ... in ...] right after the lock is the
           same discipline with the result bound. *)
        List.exists (fun vb -> protects_unlock vb.pvb_expr) vbs
        || protects_unlock body
    | _ -> false
  in
  let expr_hook (it : Ast_iterator.iterator) e =
    (match e.pexp_desc with
    | Pexp_sequence (a, rest) -> (
        match lock_loc a with
        | Some loc when protects_unlock rest -> Hashtbl.replace handled_locks loc ()
        | _ -> ())
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) -> (
        let name = Rules.normalize (Rules.dotted txt) in
        match spawn_kind name with
        | Some name -> check_spawn loc name args
        | None ->
            if
              ends_with ~suffix:"Mutex.lock" name
              && not (Hashtbl.mem handled_locks loc)
            then
              cb.Rules.finding (Rules.rule "R002") loc
                "Mutex.lock without a Fun.protect'd unlock — an exception \
                 before the unlock leaves the mutex held forever")
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr = expr_hook } in
  it.structure it structure
