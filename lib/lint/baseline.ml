(* The CI ratchet: a committed file of accepted findings. A lint run
   compared against a baseline fails only on findings not yet in it, so a
   rule can land before the tree is fully clean and tighten from there.

   The file stores rendered finding lines ([Finding.to_human]) so it is
   reviewable in diffs, but comparison uses a line/column-free key —
   [file|rule|message] — so unrelated edits that shift a finding a few
   lines do not break CI. Lines starting with [#] are comments. *)

let key (f : Finding.t) = f.Finding.file ^ "|" ^ f.rule_id ^ "|" ^ f.message

(* Parse one rendered [file:line:col: ID severity: message] line back into
   a comparison key; [None] for comments, blanks and anything else. *)
let key_of_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match String.split_on_char ':' line with
    | file :: lno :: col :: rest
      when int_of_string_opt lno <> None && int_of_string_opt (String.trim col) <> None
      -> (
        let rest = String.concat ":" rest in
        (* rest = " ID severity: message ..." *)
        match String.index_opt rest ':' with
        | None -> None
        | Some j -> (
            let head = String.trim (String.sub rest 0 j) in
            let message =
              let start = j + 1 in
              String.trim (String.sub rest start (String.length rest - start))
            in
            match String.split_on_char ' ' head with
            | id :: _ when id <> "" -> Some (file ^ "|" ^ id ^ "|" ^ message)
            | _ -> None))
    | _ -> None

let header =
  [
    "# rats_lint baseline — accepted findings; runs with --baseline fail \
     only on findings not listed here.";
    "# Regenerate: dune exec bin/lint.exe -- --write-baseline \
     tools/lint_baseline.txt";
  ]

let save path findings =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter (fun l -> output_string oc (l ^ "\n")) header;
      List.iter
        (fun f -> output_string oc (Finding.to_human f ^ "\n"))
        (List.sort Finding.compare findings))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (match key_of_line line with Some k -> k :: acc | None -> acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

type diff = {
  fresh : Finding.t list;  (** Findings not in the baseline — these fail. *)
  stale : string list;  (** Baseline keys no current finding matches. *)
}

let diff ~baseline findings =
  let current = List.map key findings in
  {
    fresh = List.filter (fun f -> not (List.mem (key f) baseline)) findings;
    stale =
      List.sort_uniq String.compare
        (List.filter (fun k -> not (List.mem k current)) baseline);
  }
