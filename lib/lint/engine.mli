(** Orchestration: walk a source tree, summarize every [.ml] (pass 1,
    digest-cached), run the whole-program analyses over the summaries
    (pass 2: call graph, D005 taint, A002 staleness), apply
    suppressions, and render the result.

    Paths in findings and allows are root-relative with ['/'] separators;
    traversal is sorted, so two runs over the same tree produce
    byte-identical output (the tool obeys its own D003). *)

type report = {
  root : string;
  files : string list;  (** Every [.ml] scanned, sorted. *)
  findings : Finding.t list;  (** Unsuppressed, sorted; nonempty = fail. *)
  suppressed : Finding.t list;  (** Matched by an allow; kept for audit. *)
  allows : Allow.t list;  (** Every suppression found, used or not. *)
  graph : Callgraph.t option;  (** Tree runs only — for [--graph]. *)
  cache_stats : (int * int) option;
      (** Tree runs only: [(hits, misses)] against the summary cache. *)
}

val default_dirs : string list
(** [bench; bin; lib; test] — the dirs [lint.exe] scans by default. *)

val skip_dir_names : string list
(** Directory basenames never descended into ([_build], [.git],
    [lint_fixtures] — the last holds deliberate violations for the
    linter's own tests). *)

val lint_file : root:string -> string -> report
(** Lint a single root-relative file: per-file rules only. Cross-module
    taint (D005) and allow staleness (A002) need the whole tree and are
    not run. *)

val lint_tree : ?dirs:string list -> ?cache:string -> root:string -> unit -> report
(** Lint every [.ml] under [dirs] (existing ones; default
    {!default_dirs}), or the whole root when [dirs] is [[]]. When
    [cache] names a file, per-file summaries are reloaded from it for
    files whose digest is unchanged and the file is rewritten after the
    run; a missing, corrupt or version-skewed cache is ignored. *)

val render : report -> string
(** Human findings, one per line ({!Finding.to_human}), golden-stable. *)

val render_allows : report -> string
(** The [--list-allows] listing, one {!Allow.to_human} line each. *)

val to_json : report -> Rats_obs.Json.t
