(** The CI ratchet: a committed file of accepted findings.

    A run compared with [--baseline FILE] fails only on findings whose
    key is absent from the file, so new rules can land before the tree is
    fully clean and tighten from there. The file stores human-rendered
    finding lines (diff-reviewable); comparison uses the
    line/column-free key [file|rule|message], tolerant of code motion. *)

val key : Finding.t -> string

val key_of_line : string -> string option
(** Comparison key of one stored line; [None] for [#] comments, blank
    lines and unparseable content. *)

val save : string -> Finding.t list -> unit
(** Write a header plus every finding, sorted, one per line. *)

val load : string -> string list
(** The stored comparison keys, in file order. Raises [Sys_error] if the
    file cannot be read. *)

type diff = {
  fresh : Finding.t list;  (** Findings not in the baseline — these fail. *)
  stale : string list;  (** Baseline keys no current finding matches. *)
}

val diff : baseline:string list -> Finding.t list -> diff
