open Parsetree

(* Pass 1 of the whole-program analysis: one self-contained, marshalable
   summary per source file. It carries everything pass 2 needs — the
   per-file findings and allows (so suppression and A001/A002 run without
   re-parsing), plus the module facts the call-graph is built from:
   top-level value definitions, the qualified identifiers each one
   references, and [module M = Path] aliases. Summaries are cached keyed
   by source digest; bump [format_version] whenever this module or any
   per-file rule changes what a summary contains. *)

let format_version = 1

type def = {
  d_name : string;  (** possibly dotted for nested modules, e.g. ["Incremental.add"] *)
  d_line : int;
  d_col : int;
  d_refs : (string * int) list;  (** qualified idents referenced, with line *)
}

type t = {
  s_file : string;  (** root-relative, ['/']-separated *)
  s_digest : string;
  s_dir : string;  (** [Filename.dirname s_file] *)
  s_module : string;  (** capitalized basename, e.g. ["Maxmin"] *)
  s_aliases : (string * string) list;  (** local module name -> dotted path *)
  s_defs : def list;
  s_findings : Finding.t list;  (** per-file rules, scope-filtered *)
  s_allows : Allow.t list;
}

let modname_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

let split_lines src = Array.of_list (String.split_on_char '\n' src)

let finding_of rule (loc : Location.t) message ~file =
  {
    Finding.rule_id = rule.Rule.id;
    severity = rule.Rule.severity;
    file;
    line = loc.loc_start.pos_lnum;
    col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
    message;
  }

let parse_structure ~file src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception Syntaxerr.Error err ->
      Error (Syntaxerr.location_of_error err, "syntax error")
  | exception Lexer.Error (_, loc) -> Error (loc, "lexer error")

(* --- definition / reference extraction --------------------------------- *)

let refs_of_expr e =
  let acc = ref [] in
  let expr_hook (it : Ast_iterator.iterator) e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
        let name = Rules.dotted txt in
        if name <> "" then acc := (name, loc.Location.loc_start.pos_lnum) :: !acc
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr = expr_hook } in
  it.expr it e;
  List.sort_uniq compare !acc

let rec pat_names p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (inner, { txt; _ }) -> txt :: pat_names inner
  | Ppat_tuple ps | Ppat_array ps -> List.concat_map pat_names ps
  | Ppat_construct (_, Some (_, inner)) | Ppat_variant (_, Some inner) ->
      pat_names inner
  | Ppat_record (fields, _) -> List.concat_map (fun (_, p) -> pat_names p) fields
  | Ppat_constraint (inner, _) | Ppat_lazy inner | Ppat_open (_, inner) ->
      pat_names inner
  | _ -> []

let defs_and_aliases structure =
  let defs = ref [] and aliases = ref [] in
  let add_def ~prefix name (loc : Location.t) refs =
    let d_name = if prefix = "" then name else prefix ^ "." ^ name in
    defs :=
      {
        d_name;
        d_line = loc.loc_start.pos_lnum;
        d_col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
        d_refs = refs;
      }
      :: !defs
  in
  let rec walk_items ~prefix items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                let refs = refs_of_expr vb.pvb_expr in
                let loc = vb.pvb_pat.ppat_loc in
                match pat_names vb.pvb_pat with
                | [] ->
                    (* [let () = ...] initialization code still calls
                       things; give it a stable synthetic name. *)
                    add_def ~prefix
                      (Printf.sprintf "_init_%d" loc.loc_start.pos_lnum)
                      loc refs
                | names -> List.iter (fun n -> add_def ~prefix n loc refs) names)
              vbs
        | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } -> (
            match pmb_expr.pmod_desc with
            | Pmod_structure items ->
                walk_items
                  ~prefix:(if prefix = "" then name else prefix ^ "." ^ name)
                  items
            | Pmod_ident { txt; _ } ->
                let path = Rules.dotted txt in
                if prefix = "" && path <> "" then
                  aliases := (name, path) :: !aliases
            | _ -> ())
        | _ -> ())
      items
  in
  walk_items ~prefix:"" structure;
  (List.rev !defs, List.rev !aliases)

(* --- the scan ---------------------------------------------------------- *)

let scan ~file src =
  let lines = split_lines src in
  let raw = ref [] in
  let allows = ref (Allow.scan_comments ~file lines) in
  let defs = ref [] and aliases = ref [] in
  (match parse_structure ~file src with
  | Error (loc, what) ->
      let rule = Rules.rule "E001" in
      raw := [ finding_of rule loc (what ^ " — file cannot be analyzed") ~file ]
  | Ok structure ->
      let cb =
        {
          Rules.finding =
            (fun rule loc message ->
              if Rule.applies rule ~path:file then
                raw := finding_of rule loc message ~file :: !raw);
          allow =
            (fun ~line ~span ~source spec ->
              let rules, reason = Allow.parse_spec spec in
              if rules <> [] then
                allows :=
                  { Allow.file; line; span; rules; reason; source } :: !allows);
        }
      in
      Rules.check_structure ~lines cb structure;
      Domains.check_structure cb structure;
      let d, a = defs_and_aliases structure in
      defs := d;
      aliases := a);
  {
    s_file = file;
    s_digest = Digest.to_hex (Digest.string src);
    s_dir = Filename.dirname file;
    s_module = modname_of_file file;
    s_aliases = !aliases;
    s_defs = !defs;
    s_findings = List.sort_uniq Finding.compare !raw;
    s_allows = List.sort Allow.compare !allows;
  }
