(** The rats_lint rule catalogue and its Parsetree checks.

    Detection is syntactic: the engine hands each parsed [.ml] file to
    [check_structure], which walks it with an {!Ast_iterator} and calls
    back for every violation and every [[@lint.allow]] attribute it
    encounters. Scope filtering ({!Rule.applies}) happens in the engine,
    not here. The catalogue (ids, severities, scopes, rationale) is the
    single source of truth shared by the engine, [--rules] output and
    [docs/LINTING.md]. *)

val catalogue : Rule.t list
(** Every rule, id-sorted: the per-file rules D001–D004, H001–H002, the
    whole-program rules D005 (transitive determinism taint, [Taint]),
    R001/R002 (domain-safety, [Domains]), plus the meta rules A001
    (suppression without justification), A002 (stale suppression,
    whole-program runs only) and E001 (parse error). *)

val by_id : string -> Rule.t option

val rule : string -> Rule.t
(** Like {!by_id} but raises [Invalid_argument] on an unknown id. *)

val dotted : Longident.t -> string
(** ["Unix.gettimeofday"] from the identifier's longident; [Lapply]
    renders as [""]. *)

val normalize : string -> string
(** Strips a leading ["Stdlib."] so aliased stdlib accesses match. *)

val d002_names : string list
(** The direct wall-clock/entropy sources D002 flags; [Taint] skips a
    0-hop D005 finding when D002 already reports the same call. *)

type callbacks = {
  finding : Rule.t -> Location.t -> string -> unit;
      (** Raw violation, before scope filtering and suppression. *)
  allow : line:int -> span:int * int -> source:Allow.source -> string -> unit;
      (** A [[@lint.allow "spec"]] attribute; [line] is where it is
          written, [span] the line range it covers, [source]
          distinguishes floating [[@@@lint.allow]] (file-wide). *)
}

val check_structure :
  lines:string array -> callbacks -> Parsetree.structure -> unit
(** [lines] (index 0 = line 1) feeds D003's flows-through-a-sort
    heuristic: a [Sys.readdir] is accepted when the word ["sort"]
    appears on the call's line or within the three lines below it. *)
