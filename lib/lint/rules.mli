(** The rats_lint rule catalogue and its Parsetree checks.

    Detection is syntactic: the engine hands each parsed [.ml] file to
    [check_structure], which walks it with an {!Ast_iterator} and calls
    back for every violation and every [[@lint.allow]] attribute it
    encounters. Scope filtering ({!Rule.applies}) happens in the engine,
    not here. The catalogue (ids, severities, scopes, rationale) is the
    single source of truth shared by the engine, [--rules] output and
    [docs/LINTING.md]. *)

val catalogue : Rule.t list
(** Every rule, id-sorted: D001–D004, H001–H002, plus the meta rules
    A001 (suppression without justification) and E001 (parse error). *)

val by_id : string -> Rule.t option

type callbacks = {
  finding : Rule.t -> Location.t -> string -> unit;
      (** Raw violation, before scope filtering and suppression. *)
  allow : line:int -> span:int * int -> source:Allow.source -> string -> unit;
      (** A [[@lint.allow "spec"]] attribute; [line] is where it is
          written, [span] the line range it covers, [source]
          distinguishes floating [[@@@lint.allow]] (file-wide). *)
}

val check_structure :
  lines:string array -> callbacks -> Parsetree.structure -> unit
(** [lines] (index 0 = line 1) feeds D003's flows-through-a-sort
    heuristic: a [Sys.readdir] is accepted when the word ["sort"]
    appears on the call's line or within the three lines below it. *)
