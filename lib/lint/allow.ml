module Json = Rats_obs.Json

type source = Comment | Attribute | File_wide

type t = {
  file : string;
  line : int;
  span : int * int;
  rules : string list;
  reason : string option;
  source : source;
}

let source_to_string = function
  | Comment -> "comment"
  | Attribute -> "attribute"
  | File_wide -> "file"

let is_rule_id s =
  String.length s = 4
  && s.[0] >= 'A'
  && s.[0] <= 'Z'
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub s 1 3)

(* The justification starts at the first alphanumeric byte after the rule
   ids, which skips ASCII separators and the UTF-8 em dash alike. *)
let strip_separators s =
  let n = String.length s in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  in
  let rec go i = if i < n && not (is_word s.[i]) then go (i + 1) else i in
  let i = go 0 in
  String.sub s i (n - i)

let parse_spec spec =
  let words =
    String.split_on_char ' ' (String.map (fun c -> if c = ',' then ' ' else c) spec)
    |> List.filter (fun w -> w <> "")
  in
  let rec take_ids acc = function
    | w :: rest when is_rule_id w -> take_ids (w :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let ids, rest = take_ids [] words in
  let reason = strip_separators (String.trim (String.concat " " rest)) in
  (ids, if reason = "" then None else Some reason)

let find_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let scan_comments ~file lines =
  let marker = "lint: allow" in
  let acc = ref [] in
  Array.iteri
    (fun i line ->
      match find_sub ~sub:marker line with
      | None -> ()
      | Some at ->
          let rest = String.sub line (at + String.length marker)
              (String.length line - at - String.length marker)
          in
          (* Stop at the comment terminator so trailing code on the same
             line never leaks into the justification. *)
          let rest =
            match find_sub ~sub:"*)" rest with
            | Some e -> String.sub rest 0 e
            | None -> rest
          in
          let rules, reason = parse_spec rest in
          if rules <> [] then
            acc :=
              {
                file;
                line = i + 1;
                span = (i + 1, i + 1);
                rules;
                reason;
                source = Comment;
              }
              :: !acc)
    lines;
  List.rev !acc

let covers t ~rule_id ~line =
  List.mem rule_id t.rules
  &&
  match t.source with
  | File_wide -> true
  | Comment | Attribute ->
      let lo, hi = t.span in
      line >= lo && line <= hi

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else Stdlib.compare a.rules b.rules

let to_human t =
  Printf.sprintf "%s:%d: allow %s — %s" t.file t.line
    (String.concat ", " t.rules)
    (match t.reason with Some r -> r | None -> "(no justification)")

let to_json t =
  Json.Obj
    [
      ("file", Json.Str t.file);
      ("line", Json.Num (float_of_int t.line));
      ("rules", Json.Arr (List.map (fun r -> Json.Str r) t.rules));
      ( "reason",
        match t.reason with Some r -> Json.Str r | None -> Json.Null );
      ("source", Json.Str (source_to_string t.source));
    ]
