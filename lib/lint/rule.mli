(** Rule identity, severity and scope for the rats_lint analyzer.

    A rule carries everything the engine needs besides its detection
    logic (which lives in [Rules]): a stable id ([D001], [H002], ...),
    a severity, a one-line title used in findings, and a path scope.
    Scopes are directory-prefix globs over repo-relative paths with
    ['/'] separators: a rule applies to a file when the path starts
    with one of [include_dirs] (or the list is empty) and with none of
    [exclude_dirs]. *)

type severity = Error | Warning

type t = {
  id : string;
  severity : severity;
  title : string;  (** One line, embedded in every finding. *)
  rationale : string;  (** Why the rule exists; surfaced in [--rules]. *)
  include_dirs : string list;  (** Path prefixes; [[]] means everywhere. *)
  exclude_dirs : string list;
}

val severity_to_string : severity -> string

val applies : t -> path:string -> bool
(** [applies rule ~path] — [path] must be repo-relative and
    ['/']-separated, e.g. ["lib/sim/engine.ml"]. *)
