(** One analyzer finding: a rule violation anchored to [file:line:col].

    Findings order stably by (file, line, col, rule id), so the human
    rendering is byte-identical across runs — it is golden-tested. *)

type t = {
  rule_id : string;
  severity : Rule.severity;
  file : string;  (** Repo-relative, ['/']-separated. *)
  line : int;  (** 1-based. *)
  col : int;  (** 0-based, matching compiler diagnostics. *)
  message : string;
}

val compare : t -> t -> int

val to_human : t -> string
(** [file:line:col: ID severity: message] — one line, no newline. *)

val to_json : t -> Rats_obs.Json.t
