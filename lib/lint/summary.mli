(** Pass 1 of the whole-program analysis: a self-contained, marshalable
    per-file summary.

    A summary carries the file's per-file findings (D/H/R rules, already
    scope-filtered) and allows, plus the module facts pass 2 builds the
    cross-module call graph from: top-level value definitions with the
    qualified identifiers each references, and top-level
    [module M = Path] aliases. Summaries are pure functions of the source
    text, which is what makes digest-keyed caching sound. *)

val format_version : int
(** Bump whenever the summary shape or any per-file rule changes; the
    engine drops cache files written under a different version. *)

type def = {
  d_name : string;
      (** Dotted for values in nested modules: ["Incremental.add"]. *)
  d_line : int;
  d_col : int;
  d_refs : (string * int) list;
      (** Qualified identifiers the body references, with the line of
          each first occurrence; sorted, deduplicated. *)
}

type t = {
  s_file : string;  (** Root-relative, ['/']-separated. *)
  s_digest : string;  (** Hex digest of the source text. *)
  s_dir : string;
  s_module : string;  (** Capitalized basename: ["Maxmin"]. *)
  s_aliases : (string * string) list;
  s_defs : def list;
  s_findings : Finding.t list;
  s_allows : Allow.t list;
}

val modname_of_file : string -> string

val scan : file:string -> string -> t
(** [scan ~file src] parses and summarizes one file. A file that does not
    parse yields an [E001] finding, comment-scanned allows, and no
    definitions. *)
