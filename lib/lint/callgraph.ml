(* Pass 2, step 1: resolve each summary's references into a cross-module
   call graph. Resolution is heuristic but deterministic, tuned to this
   repo's idioms, tried in order:

   1. alias expansion — [module Metrics = Rats_obs.Metrics] at the top of
      the referencing file rewrites the first path component;
   2. a simple name resolves inside the referencing file (trying the
      def's own nested-module prefix first);
   3. a [Rats_x[_y]] first component resolves through the library map
      (directory [lib/x[/y]] — dune's public names follow that shape);
   4. a sibling module in the same directory;
   5. a module basename unique across the whole scanned tree.

   Anything else (Stdlib, Unix, List, ...) is external: kept as a raw
   reference so [Taint] can match nondeterminism sources, but never an
   edge. *)

type node = string * string  (** (file, def name) *)

type t = {
  summaries : Summary.t list;  (** sorted by file *)
  by_file : (string, Summary.t) Hashtbl.t;
  by_modname : (string, string list) Hashtbl.t;  (** "Maxmin" -> files *)
  lib_dirs : (string, string) Hashtbl.t;  (** "Rats_obs" -> "lib/obs" *)
}

(* "lib/workload/study" -> "Rats_workload_study", mirroring the dune
   public library names; directories outside lib/ get no public name. *)
let lib_name_of_dir dir =
  if String.length dir > 4 && String.sub dir 0 4 = "lib/" then
    let rest = String.sub dir 4 (String.length dir - 4) in
    Some
      ("Rats_"
      ^ String.concat "_" (String.split_on_char '/' rest))
  else None

let build summaries =
  let summaries =
    List.sort (fun a b -> String.compare a.Summary.s_file b.Summary.s_file)
      summaries
  in
  let by_file = Hashtbl.create 64 in
  let by_modname = Hashtbl.create 64 in
  let lib_dirs = Hashtbl.create 16 in
  List.iter
    (fun s ->
      Hashtbl.replace by_file s.Summary.s_file s;
      let files =
        Option.value ~default:[] (Hashtbl.find_opt by_modname s.Summary.s_module)
      in
      Hashtbl.replace by_modname s.Summary.s_module (files @ [ s.Summary.s_file ]);
      match lib_name_of_dir s.Summary.s_dir with
      | Some lib -> Hashtbl.replace lib_dirs lib s.Summary.s_dir
      | None -> ())
    summaries;
  { summaries; by_file; by_modname; lib_dirs }

let summary t file = Hashtbl.find_opt t.by_file file

let find_def t file name =
  match Hashtbl.find_opt t.by_file file with
  | None -> None
  | Some s ->
      List.find_opt (fun d -> d.Summary.d_name = name) s.Summary.s_defs
      |> Option.map (fun d -> ((file, d.Summary.d_name), d))

(* The def-name prefix a nested definition lives under ("Incremental" for
   "Incremental.add"), so its simple-name references try siblings first. *)
let prefix_of_def def_name =
  match String.rindex_opt def_name '.' with
  | None -> ""
  | Some i -> String.sub def_name 0 i

let resolve t ~from_file ~from_def name =
  let name = Rules.normalize name in
  let comps = String.split_on_char '.' name in
  let comps =
    match (comps, summary t from_file) with
    | c0 :: rest, Some s -> (
        match List.assoc_opt c0 s.Summary.s_aliases with
        | Some path -> String.split_on_char '.' path @ rest
        | None -> comps)
    | _ -> comps
  in
  let lookup file rest =
    match rest with
    | [] -> None
    | _ -> find_def t file (String.concat "." rest) |> Option.map fst
  in
  match comps with
  | [] | [ "" ] -> None
  | [ x ] -> (
      let prefix = prefix_of_def from_def in
      match
        if prefix = "" then None else lookup from_file [ prefix; x ]
      with
      | Some hit -> Some hit
      | None -> lookup from_file [ x ])
  | c0 :: rest -> (
      match summary t from_file with
      | Some s when c0 = s.Summary.s_module -> lookup from_file rest
      | _ -> (
          match Hashtbl.find_opt t.lib_dirs c0 with
          | Some dir -> (
              match rest with
              | m :: value ->
                  lookup (dir ^ "/" ^ String.uncapitalize_ascii m ^ ".ml") value
              | [] -> None)
          | None -> (
              let from_s = summary t from_file in
              let sibling =
                match from_s with
                | Some s ->
                    lookup
                      (s.Summary.s_dir ^ "/" ^ String.uncapitalize_ascii c0
                     ^ ".ml")
                      rest
                | None -> None
              in
              match sibling with
              | Some hit -> Some hit
              | None -> (
                  match Hashtbl.find_opt t.by_modname c0 with
                  | Some [ file ] when file <> from_file -> lookup file rest
                  | _ -> None))))

let display t ((file, def) : node) =
  match summary t file with
  | Some s -> s.Summary.s_module ^ "." ^ def
  | None -> file ^ ":" ^ def

(* All resolved call edges of one definition, sorted and deduplicated. *)
let succs t file (d : Summary.def) =
  List.filter_map
    (fun (name, line) ->
      resolve t ~from_file:file ~from_def:d.Summary.d_name name
      |> Option.map (fun target -> (target, line)))
    d.Summary.d_refs
  |> List.sort_uniq compare

let fold_defs t f acc =
  List.fold_left
    (fun acc s ->
      List.fold_left
        (fun acc d -> f acc s.Summary.s_file d)
        acc s.Summary.s_defs)
    acc t.summaries

(* Module-level projection for the DOT export: one node per file, labeled
   with its library-qualified display name, one edge per referencing
   module pair. *)
let to_dot t =
  let label file =
    match summary t file with
    | Some s -> (
        match lib_name_of_dir s.Summary.s_dir with
        | Some lib -> lib ^ "." ^ s.Summary.s_module
        | None -> file)
    | None -> file
  in
  let edges =
    fold_defs t
      (fun acc file d ->
        List.fold_left
          (fun acc (((tfile, _), _) : node * int) ->
            if tfile = file then acc else (label file, label tfile) :: acc)
          acc (succs t file d))
      []
    |> List.sort_uniq compare
  in
  let nodes =
    List.sort_uniq String.compare
      (List.concat_map (fun (a, b) -> [ a; b ]) edges)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph rats_callgraph {\n";
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "  \"%s\";\n" n)) nodes;
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf (Printf.sprintf "  \"%s\" -> \"%s\";\n" a b))
    edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
