(** Pass 2, step 2: transitive determinism taint (D005).

    Seeds taint at references to raw nondeterminism primitives (the D002
    wall-clock set plus ambient [Random] draws and [Sys.time]), propagates
    it callee-to-caller over the whole-program call graph, and reports a
    finding at the taint frontier of the result-producing scope with the
    full witness path in the message. lib/obs is the trust boundary:
    sources inside it do not seed and edges into it are not followed. *)

val source_names : string list
(** Dotted names whose reference seeds taint. *)

type witness =
  | Direct of string * int  (** source name, referencing line *)
  | Via of Callgraph.node   (** next hop toward the source *)

val analyze : Callgraph.t -> (Callgraph.node, witness) Hashtbl.t
(** Map every tainted definition to the witness of its taint. *)

val findings : Callgraph.t -> Finding.t list
(** D005 findings at the taint frontier, sorted and deduplicated.
    0-hop wall-clock references already reported by D002 are skipped. *)
