open Parsetree

(* Result-producing libraries: anything whose outputs land in
   bench_results/*.csv, the cache or the journal. *)
let result_dirs =
  [ "lib/core/"; "lib/dag/"; "lib/exp/"; "lib/redist/"; "lib/runtime/"; "lib/sim/" ]

let catalogue : Rule.t list =
  [
    {
      Rule.id = "A001";
      severity = Rule.Error;
      title = "lint suppression without a written justification";
      rationale =
        "Every allow is an audited exception; --list-allows must show why \
         each one is safe.";
      include_dirs = [];
      exclude_dirs = [];
    };
    {
      Rule.id = "A002";
      severity = Rule.Error;
      title = "stale lint suppression that matches no finding";
      rationale =
        "An allow that suppresses nothing is dead audit weight: either the \
         hazard was fixed (delete the allow) or the code drifted off the \
         allow's line (move it). Whole-program runs only.";
      include_dirs = [];
      exclude_dirs = [];
    };
    {
      Rule.id = "D001";
      severity = Rule.Error;
      title = "unordered hash traversal in a result-producing library";
      rationale =
        "Hashtbl iteration order is unspecified; folding it into results \
         breaks bit-identical CSVs and cache replay.";
      include_dirs = result_dirs;
      exclude_dirs = [];
    };
    {
      Rule.id = "D002";
      severity = Rule.Error;
      title = "wall-clock or entropy source outside lib/obs";
      rationale =
        "Time and randomness must flow through the observability layer so \
         replayed runs compute identical results.";
      include_dirs = [];
      exclude_dirs = [ "lib/obs/" ];
    };
    {
      Rule.id = "D003";
      severity = Rule.Error;
      title = "directory listing not sorted before use";
      rationale =
        "Sys.readdir order depends on the filesystem; recovery scans and \
         sweeps must process entries in sorted order.";
      include_dirs = [];
      exclude_dirs = [];
    };
    {
      Rule.id = "D004";
      severity = Rule.Warning;
      title = "polymorphic comparison on float operands in a hot path";
      rationale =
        "Polymorphic =/compare/min/max on floats box operands and have \
         surprising NaN semantics; Float.equal/compare/min/max state intent.";
      include_dirs = [ "lib/core/"; "lib/sim/" ];
      exclude_dirs = [];
    };
    {
      Rule.id = "D005";
      severity = Rule.Error;
      title =
        "result-producing function transitively reaches a nondeterminism \
         source";
      rationale =
        "A cross-module call chain can smuggle wall-clock/entropy into \
         results D002's per-file scan never sees; the whole-program taint \
         pass reports the full call path to the source.";
      include_dirs =
        [
          "lib/core/"; "lib/dag/"; "lib/redist/"; "lib/server/"; "lib/sim/";
          "lib/workload/";
        ];
      exclude_dirs = [];
    };
    {
      Rule.id = "E001";
      severity = Rule.Error;
      title = "source file does not parse";
      rationale = "An unparseable file cannot be analyzed and cannot build.";
      include_dirs = [];
      exclude_dirs = [];
    };
    {
      Rule.id = "H001";
      severity = Rule.Error;
      title = "catch-all exception handler in runtime retry/pool code";
      rationale =
        "try ... with _ -> swallows Out_of_memory/Stack_overflow and turns \
         fatal conditions into retried task failures.";
      include_dirs = [ "lib/runtime/" ];
      exclude_dirs = [];
    };
    {
      Rule.id = "H002";
      severity = Rule.Error;
      title = "direct stdout print in library code";
      rationale =
        "Library output must go through Runtime.Progress/Report or a \
         formatter argument; stdout belongs to the binaries.";
      include_dirs = [ "lib/" ];
      exclude_dirs = [];
    };
    {
      Rule.id = "R001";
      severity = Rule.Error;
      title =
        "shared mutable state captured by a parallel closure without \
         Atomic/Mutex discipline";
      rationale =
        "A ref/Hashtbl/Buffer/Queue/array reached from a closure handed to \
         Domain.spawn or Pool.map races across domains; share it via \
         Atomic/Mutex or keep it domain-local.";
      include_dirs = [ "lib/" ];
      exclude_dirs = [];
    };
    {
      Rule.id = "R002";
      severity = Rule.Error;
      title = "Mutex.lock without a Fun.protect-guaranteed unlock";
      rationale =
        "If anything between lock and unlock raises, the mutex stays held \
         and every later locker deadlocks; the unlock must sit in a \
         Fun.protect ~finally.";
      include_dirs = [ "lib/" ];
      exclude_dirs = [];
    };
  ]

let by_id id = List.find_opt (fun r -> r.Rule.id = id) catalogue

let rule id =
  match by_id id with
  | Some r -> r
  | None -> invalid_arg ("Rules.rule: unknown id " ^ id)

type callbacks = {
  finding : Rule.t -> Location.t -> string -> unit;
  allow : line:int -> span:int * int -> source:Allow.source -> string -> unit;
}

let rec dotted = function
  | Longident.Lident s -> s
  | Longident.Ldot (l, s) -> dotted l ^ "." ^ s
  | Longident.Lapply _ -> ""

let normalize name =
  if String.length name > 7 && String.sub name 0 7 = "Stdlib." then
    String.sub name 7 (String.length name - 7)
  else name

let d001_names =
  [
    "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.to_seq"; "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values";
  ]

let d002_names = [ "Unix.gettimeofday"; "Unix.time"; "Random.self_init" ]
let d003_names = [ "Sys.readdir"; "Unix.readdir" ]

let h002_names =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_int"; "print_float"; "Printf.printf"; "Format.printf";
    "Format.print_string"; "Format.print_newline";
  ]

let d004_targets =
  [ ("=", "Float.equal"); ("compare", "Float.compare"); ("min", "Float.min");
    ("max", "Float.max") ]

(* D003's dataflow check is a proximity heuristic: the listing is taken to
   flow through a sort when the word "sort" occurs on the call's line or
   within the next three lines (covers [Array.sort compare files] right
   after the call and helpers named [readdir_sorted]). *)
let sorted_nearby lines line =
  let n = Array.length lines in
  let rec contains_sort s i =
    if i + 4 > String.length s then false
    else if String.sub s i 4 = "sort" then true
    else contains_sort s (i + 1)
  in
  let rec go l =
    l <= line + 3 && l <= n
    && (contains_sort lines.(l - 1) 0 || go (l + 1))
  in
  go line

let is_float_type ct =
  match ct.ptyp_desc with
  | Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []) -> true
  | _ -> false

(* Literal/annotation-driven: only flag a comparison when an operand is
   provably a float without type inference. *)
let rec float_evidence e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (inner, ct) -> is_float_type ct || float_evidence inner
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match normalize (dotted txt) with
      | "float_of_int" | "Float.of_int" -> true
      | _ -> false)
  | _ -> false

let rec catch_all pat =
  match pat.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (inner, _) -> catch_all inner
  | Ppat_or (a, b) -> catch_all a || catch_all b
  | _ -> false

let allow_attr_spec attr =
  if attr.attr_name.txt <> "lint.allow" then None
  else
    match attr.attr_payload with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval
                ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] ->
        Some s
    | _ -> Some ""

let span_of_loc (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_end.pos_lnum)

let scan_attrs cb ~span attrs =
  List.iter
    (fun attr ->
      match allow_attr_spec attr with
      | Some spec ->
          cb.allow ~line:attr.attr_loc.loc_start.pos_lnum ~span
            ~source:Allow.Attribute spec
      | None -> ())
    attrs

let check_structure ~lines cb structure =
  let ident loc name =
    let name = normalize name in
    if List.mem name d001_names then cb.finding (rule "D001") loc (name ^ ": hash traversal order is unspecified — fold into a list and sort it first")
    else if List.mem name d002_names then cb.finding (rule "D002") loc (name ^ ": wall-clock/entropy outside lib/obs breaks replayable runs — use Rats_obs.Instr.now_s or route it through the obs layer")
    else if List.mem name h002_names then cb.finding (rule "H002") loc (name ^ ": library code must not print to stdout — use Runtime.Progress/Report or take a formatter")
    else if List.mem name d003_names then begin
      let line = loc.Location.loc_start.pos_lnum in
      if not (sorted_nearby lines line) then
        cb.finding (rule "D003") loc (name ^ ": listing order depends on the filesystem — sort the result before use")
    end
  in
  let handle_cases ~in_try cases =
    List.iter
      (fun case ->
        match case.pc_guard with
        | Some _ -> ()
        | None -> (
            let flag pat =
              cb.finding (rule "H001") pat.ppat_loc
                "catch-all exception handler can swallow \
                 Out_of_memory/Stack_overflow — match specific exceptions or \
                 add a `when Fatal.recoverable e` guard"
            in
            match case.pc_lhs.ppat_desc with
            | Ppat_exception inner when catch_all inner -> flag case.pc_lhs
            | _ when in_try && catch_all case.pc_lhs -> flag case.pc_lhs
            | _ -> ()))
      cases
  in
  let expr_hook (it : Ast_iterator.iterator) e =
    scan_attrs cb ~span:(span_of_loc e.pexp_loc) e.pexp_attributes;
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> ident loc (dotted txt)
    | Pexp_try (_, cases) -> handle_cases ~in_try:true cases
    | Pexp_match (_, cases) -> handle_cases ~in_try:false cases
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) -> (
        match
          List.assoc_opt (normalize (dotted txt)) d004_targets
        with
        | Some replacement
          when List.exists (fun (_, arg) -> float_evidence arg) args ->
            cb.finding (rule "D004") loc
              (Printf.sprintf
                 "polymorphic %s on a float operand — use %s for explicit \
                  NaN/zero semantics"
                 (normalize (dotted txt)) replacement)
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let value_binding_hook (it : Ast_iterator.iterator) vb =
    scan_attrs cb ~span:(span_of_loc vb.pvb_loc) vb.pvb_attributes;
    Ast_iterator.default_iterator.value_binding it vb
  in
  let structure_item_hook (it : Ast_iterator.iterator) item =
    (match item.pstr_desc with
    | Pstr_attribute attr -> (
        match allow_attr_spec attr with
        | Some spec ->
            cb.allow ~line:attr.attr_loc.loc_start.pos_lnum
              ~span:(1, Array.length lines) ~source:Allow.File_wide spec
        | None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.structure_item it item
  in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr = expr_hook;
      value_binding = value_binding_hook;
      structure_item = structure_item_hook;
    }
  in
  iterator.structure iterator structure
