(** Explicit, auditable lint suppressions.

    Two syntaxes, both carrying a written justification:

    - a same-line comment: [(* lint: allow D002 — reason *)] placed on
      the offending line; several ids may be listed ([D001, D003]);
    - an attribute: [[@lint.allow "D002 — reason"]] on an expression or
      value binding (suppresses matching findings anywhere in that
      node's line span), or a floating [[@@@lint.allow "..."]] which
      suppresses for the whole file.

    A suppression without a justification is itself reported (rule
    [A001]), so [--list-allows] is always a complete audit trail. *)

type source = Comment | Attribute | File_wide

type t = {
  file : string;
  line : int;  (** Where the suppression is written (1-based). *)
  span : int * int;  (** Inclusive line range the suppression covers. *)
  rules : string list;  (** Rule ids this allow names. *)
  reason : string option;  (** [None] when no justification was written. *)
  source : source;
}

val parse_spec : string -> string list * string option
(** Splits ["D001, D002 — reason"] into rule ids and the justification
    (separators [—], [-] and [:] are all accepted; an absent or empty
    justification yields [None]). *)

val scan_comments : file:string -> string array -> t list
(** Finds every [lint: allow] comment in the file's lines (index 0 is
    line 1). The resulting allow covers exactly its own line. *)

val covers : t -> rule_id:string -> line:int -> bool

val compare : t -> t -> int

val to_human : t -> string
(** [file:line: allow ID[, ID] — reason] (or [(no justification)]). *)

val to_json : t -> Rats_obs.Json.t
