let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let geometric_mean xs =
  let n = Array.length xs in
  if n = 0 then 1.
  else begin
    let log_sum =
      Array.fold_left
        (fun acc x ->
          if x <= 0. then invalid_arg "Stats.geometric_mean: non-positive value";
          acc +. log x)
        0. xs
    in
    exp (log_sum /. float_of_int n)
  end

let sorted_copy xs =
  let c = Array.copy xs in
  Array.sort compare c;
  c

let median xs =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let s = sorted_copy xs in
    if n mod 2 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.
  end

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let sq = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sqrt (sq /. float_of_int n)
  end

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (min lo x, max hi x))
    (xs.(0), xs.(0))
    xs

let percentile xs p =
  let n = Array.length xs in
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p outside [0, 100]";
  if n = 0 then 0.
  else begin
    let s = sorted_copy xs in
    (* Linear interpolation between closest ranks (the common "type 7"
       estimator): rank r = p/100 · (n−1). *)
    let r = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor r) in
    let hi = int_of_float (Float.ceil r) in
    if lo = hi then s.(lo)
    else begin
      let w = r -. float_of_int lo in
      (s.(lo) *. (1. -. w)) +. (s.(hi) *. w)
    end
  end

let mean_std xs =
  (* Welford's online algorithm: one pass, no catastrophic cancellation on
     large offsets — the streaming-moments form the workload reports use. *)
  let n = Array.length xs in
  if n = 0 then (0., 0.)
  else begin
    let mean = ref 0. in
    let m2 = ref 0. in
    Array.iteri
      (fun i x ->
        let d = x -. !mean in
        mean := !mean +. (d /. float_of_int (i + 1));
        m2 := !m2 +. (d *. (x -. !mean)))
      xs;
    (!mean, if n < 2 then 0. else sqrt (!m2 /. float_of_int n))
  end

let jain_fairness xs =
  let n = Array.length xs in
  if n = 0 then 1.
  else begin
    Array.iter
      (fun x -> if x < 0. then invalid_arg "Stats.jain_fairness: negative value")
      xs;
    let s = Array.fold_left ( +. ) 0. xs in
    let s2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
    if s2 = 0. then 1. else s *. s /. (float_of_int n *. s2)
  end

let fraction_below xs x =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let c = Array.fold_left (fun acc v -> if v < x then acc + 1 else acc) 0 xs in
    float_of_int c /. float_of_int n
  end
