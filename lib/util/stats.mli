(** Small statistics helpers for the experiment harness. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val geometric_mean : float array -> float
(** Geometric mean of strictly positive values; 1 on the empty array. *)

val median : float array -> float
(** Median (average of middle pair for even lengths); 0 on the empty array.
    Does not modify its argument. *)

val stddev : float array -> float
(** Population standard deviation; 0 on arrays of length < 2. *)

val min_max : float array -> float * float
(** Raises [Invalid_argument] on the empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p ∈ \[0, 100\]]: the linearly interpolated
    order statistic at rank [p/100·(n−1)] (the common "type 7" estimator;
    [percentile xs 50. = median xs]). 0 on the empty array; raises
    [Invalid_argument] on [p] outside the range. *)

val mean_std : float array -> float * float
(** One-pass (mean, population standard deviation) via Welford's streaming
    moments — numerically stable on large offsets, and
    [mean_std xs = (mean xs, stddev xs)] up to rounding. (0, 0) on the
    empty array; the deviation is 0 for arrays of length < 2. *)

val jain_fairness : float array -> float
(** Jain's fairness index [(Σx)² / (n·Σx²)] over non-negative allocations:
    1 when every value is equal (perfect fairness), [1/n] when a single
    value holds everything. By convention 1 on the empty and the all-zero
    array (nothing is shared unfairly). Raises [Invalid_argument] on a
    negative value. *)

val fraction_below : float array -> float -> float
(** [fraction_below xs x] is the fraction of elements strictly below [x]. *)

val sorted_copy : float array -> float array
