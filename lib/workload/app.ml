module Rng = Rats_util.Rng
module Suite = Rats_daggen.Suite

type pipeline = {
  stages : int;
  data_elements : float;
  flop : float;
  alpha : float;
}

let validate_pipeline p =
  if p.stages < 1 then invalid_arg "App: pipeline stages < 1";
  if p.data_elements <= 0. then invalid_arg "App: pipeline data_elements <= 0";
  if p.flop <= 0. then invalid_arg "App: pipeline flop <= 0";
  if p.alpha < 0. || p.alpha > 1. then
    invalid_arg "App: pipeline alpha outside [0, 1]"

(* Alternating stage weights (1x, 2x, 3x, 1x, ...): consecutive stages have
   different moldable sweet spots, so a decoupled allocation produces a
   redistribution at every stage boundary — exactly what the
   redistribution-aware strategies are supposed to eliminate. *)
let pipeline_task_params p =
  Array.init p.stages (fun i ->
      (p.data_elements, p.flop *. float_of_int (1 + (i mod 3)), p.alpha))

let pipeline_edges p =
  List.init
    (max 0 (p.stages - 1))
    (fun i -> (i, i + 1, 8. *. p.data_elements))

type template = Suite_spec of Suite.spec | Pipeline of pipeline

let mi = 1024. *. 1024.

let pipeline_name p =
  Printf.sprintf "pipeline-s%d-m%.0f" p.stages (p.data_elements /. mi)

let template_name = function
  | Suite_spec spec -> Suite.name { Suite.spec; sample = 0 }
  | Pipeline p -> pipeline_name p

type t = Generated of Suite.config | Chain of pipeline

let name = function
  | Generated config -> Suite.name config
  | Chain p -> pipeline_name p

type mix = (int * template) array

let validate_mix mix =
  if Array.length mix = 0 then invalid_arg "App: empty mix";
  Array.iter
    (fun (w, template) ->
      if w < 1 then invalid_arg "App: non-positive mix weight";
      match template with
      | Pipeline p -> validate_pipeline p
      | Suite_spec _ -> ())
    mix

let pick mix rng =
  let total = Array.fold_left (fun acc (w, _) -> acc + w) 0 mix in
  let r = Rng.int rng total in
  let rec go i acc =
    let w, template = mix.(i) in
    if r < acc + w then template else go (i + 1) (acc + w)
  in
  go 0 0
