(** Packing-constrained greedy baseline arm (Shafiee & Ghaderi's
    scheduling-with-packing model, PAPERS.md).

    Their model gives every task of a job the {e same} fixed processor
    demand and packs greedily; transplanted here, each real task of the
    DAG is allocated a uniform quarter of the share ([max 1 (n/4)]
    processors; virtual entry/exit tasks keep allocation 1) and the
    baseline greedy mapping ({!Rats_core.Rats.schedule} with [Baseline])
    places the pieces earliest-finish-first without any redistribution
    awareness. Against the RATS arms it isolates what adapting the
    {e allocation} to the DAG (HCPA) and what redistribution-aware
    {e mapping} (delta) each buy. *)

val plan :
  cluster:Rats_platform.Cluster.t ->
  Rats_server.Api.request ->
  Rats_core.Schedule.t
(** Drop-in for the engine's [planner] hook. Deterministic. *)
