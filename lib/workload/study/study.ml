module Profile = Rats_workload.Profile
module Tenant = Rats_workload.Tenant
module Trace = Rats_workload.Trace
module Report = Rats_workload.Report
module Rats = Rats_core.Rats
module Api = Rats_server.Api
module Admission = Rats_server.Admission
module Engine = Rats_server.Engine
module Load = Rats_server.Load
module Metrics = Rats_obs.Metrics
module Instr = Rats_obs.Instr

type arm = Delta | Hcpa | Timecost | Packing

let arm_name = function
  | Delta -> "delta"
  | Hcpa -> "hcpa"
  | Timecost -> "time-cost"
  | Packing -> "packing"

let all_arms = [ Delta; Hcpa; Timecost; Packing ]
let default_arms = [ Delta; Hcpa; Packing ]

let arm_of_string s =
  match List.find_opt (fun a -> arm_name a = s) all_arms with
  | Some a -> Ok a
  | None ->
      Error
        (Printf.sprintf "unknown arm %S (expected one of: %s)" s
           (String.concat ", " (List.map arm_name all_arms)))

(* RATS arms override the trace's baked strategy; the packing arm replaces
   the whole allocate-and-map pipeline. *)
let with_strategy strategy ~cluster (r : Api.request) =
  Api.plan ~cluster { r with Api.strategy }

let planner = function
  | Delta -> Some (with_strategy (Rats.Delta Rats.naive_delta))
  | Hcpa -> Some (with_strategy Rats.Baseline)
  | Timecost -> Some (with_strategy (Rats.Timecost Rats.naive_timecost))
  | Packing -> Some Packing.plan

(* Mutable per-tenant tally, filled from the event log. *)
type tally = {
  mutable submitted : int;
  mutable completed : int;
  mutable rejected : int;
  mutable expired : int;
  mutable rev_sojourns : float list;
}

let run_arm ?(policy = Admission.default) ?jobs ~cluster
    ~(profile : Profile.t) ~(trace : Trace.t) arm =
  let config =
    { (Engine.default_config cluster) with policy; jobs; planner = planner arm }
  in
  let engine = Engine.create config in
  Array.iter
    (fun (job : Trace.job) ->
      match Engine.submit engine ~at:job.Trace.at (Load.request_of_job job) with
      | Ok (_ : int) -> ()
      | Error e -> invalid_arg ("Study.run_arm: invalid trace job: " ^ e))
    trace;
  let end_time = Engine.drain engine in
  let tallies =
    List.map
      (fun (t : Tenant.t) ->
        ( t.Tenant.name,
          {
            submitted = 0;
            completed = 0;
            rejected = 0;
            expired = 0;
            rev_sojourns = [];
          } ))
      profile.Profile.tenants
  in
  List.iter
    (fun (ev : Api.stamped) ->
      match List.assoc_opt ev.Api.tenant tallies with
      | None -> ()
      | Some tally -> (
          match ev.Api.event with
          | Api.Submitted _ -> tally.submitted <- tally.submitted + 1
          | Api.Completed { sojourn; _ } ->
              tally.completed <- tally.completed + 1;
              tally.rev_sojourns <- sojourn :: tally.rev_sojourns
          | Api.Rejected _ -> tally.rejected <- tally.rejected + 1
          | Api.Expired _ -> tally.expired <- tally.expired + 1
          | Api.Admitted | Api.Queued _ | Api.Started _
          | Api.Redistribution _ ->
              ()))
    (Engine.events engine);
  let s = Engine.stats engine in
  Metrics.incr Instr.workload_arm_runs;
  Report.make ~profile:profile.Profile.name ~arm:(arm_name arm) ~end_time
    ~utilization:s.Engine.utilization ~queue_depth_max:s.Engine.queue_depth_max
    (List.map
       (fun (tenant, tally) ->
         {
           Report.tenant;
           submitted = tally.submitted;
           completed = tally.completed;
           rejected = tally.rejected;
           expired = tally.expired;
           sojourns = Array.of_list (List.rev tally.rev_sojourns);
         })
       tallies)

let run ?policy ?jobs ?(arms = default_arms) ~cluster profile =
  let trace = Trace.compile profile in
  List.map (fun arm -> run_arm ?policy ?jobs ~cluster ~profile ~trace arm) arms

let csv reports =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf Report.csv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (Report.csv_row r);
      Buffer.add_char buf '\n')
    reports;
  Buffer.contents buf

let write_csv path reports =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (csv reports))
