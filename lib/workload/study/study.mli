(** The study runner: one compiled trace, several scheduler arms, one
    comparison table.

    Every arm replays the {e same} arrival trace against a fresh online
    {!Rats_server.Engine} whose [planner] hook pins all jobs to the arm's
    scheduler, so the arms differ in nothing but planning: identical
    arrivals, identical admission policy, identical platform. Reports are
    tallied per tenant from the engine's event log in profile tenant
    order, so a study is deterministic end to end — same profile, same
    seed, same policy ⇒ byte-identical CSV. *)

module Profile := Rats_workload.Profile
module Trace := Rats_workload.Trace
module Report := Rats_workload.Report

type arm =
  | Delta  (** RATS delta mapping (naive parameters). *)
  | Hcpa  (** HCPA allocation + baseline greedy mapping. *)
  | Timecost  (** RATS time-cost mapping (naive parameters). *)
  | Packing  (** Packing-constrained greedy baseline ({!Packing}). *)

val arm_name : arm -> string
(** ["delta"], ["hcpa"], ["time-cost"], ["packing"]. *)

val arm_of_string : string -> (arm, string) result

val default_arms : arm list
(** [\[Delta; Hcpa; Packing\]] — the ISSUE's three-way comparison. *)

val all_arms : arm list

val planner :
  arm ->
  (cluster:Rats_platform.Cluster.t ->
   Rats_server.Api.request ->
   Rats_core.Schedule.t)
  option
(** The engine [planner] override implementing the arm. *)

val run_arm :
  ?policy:Rats_server.Admission.policy ->
  ?jobs:int ->
  cluster:Rats_platform.Cluster.t ->
  profile:Profile.t ->
  trace:Trace.t ->
  arm ->
  Report.t
(** Drives [trace] through a fresh engine under the arm's planner and
    tallies the event log. [policy] defaults to
    {!Rats_server.Admission.default}; [jobs] is the engine's
    schedule-computation worker count (pool default when omitted — never
    affects results). Bumps [rats_workload_arm_runs_total]. *)

val run :
  ?policy:Rats_server.Admission.policy ->
  ?jobs:int ->
  ?arms:arm list ->
  cluster:Rats_platform.Cluster.t ->
  Profile.t ->
  Report.t list
(** Compiles the profile's trace once and runs every arm over it
    ([arms] defaults to {!default_arms}), in order. *)

val csv : Report.t list -> string
(** Header plus one row per report, trailing newline — the byte-stable
    golden format under [bench_results/]. *)

val write_csv : string -> Report.t list -> unit
