module Api = Rats_server.Api
module Problem = Rats_core.Problem
module Rats = Rats_core.Rats

let plan ~cluster (r : Api.request) =
  let problem, _hcpa = Api.prepare ~cluster r.Api.job in
  let n = Problem.n_procs problem in
  let demand = max 1 (n / 4) in
  let alloc =
    Array.init (Problem.n_tasks problem) (fun i ->
        if Problem.is_virtual problem i then 1 else demand)
  in
  Rats.schedule ~alloc problem Rats.Baseline
