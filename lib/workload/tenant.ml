type share = Fixed of int | Uniform of { lo : int; hi : int }

let share_range = function
  | Fixed k -> (k, k)
  | Uniform { lo; hi } -> (lo, hi)

type t = {
  name : string;
  arrival : Arrival.t;
  mix : App.mix;
  samples : int;
  share : share;
  strategy : Rats_core.Rats.strategy;
}

let validate t =
  if t.name = "" then invalid_arg "Tenant: empty name";
  if t.samples < 1 then invalid_arg "Tenant: samples < 1";
  Arrival.validate t.arrival;
  App.validate_mix t.mix;
  let lo, hi = share_range t.share in
  if lo < 1 || hi < lo then invalid_arg "Tenant: bad share range"
