(** One simulated tenant: an arrival process, an application mix, a
    share-size distribution and a scheduling strategy.

    The trace compiler ({!Trace.compile}) gives each tenant its own RNG
    stream (derived from the profile seed and the tenant's position), so
    tenants are statistically independent and adding one never perturbs
    the others' jobs. *)

type share =
  | Fixed of int  (** Every job requests exactly this many processors. *)
  | Uniform of { lo : int; hi : int }
      (** Uniform integer draw in [\[lo, hi\]] (inclusive) per job. *)

val share_range : share -> int * int
(** [(lo, hi)] bounds of the distribution. *)

type t = {
  name : string;
  arrival : Arrival.t;
  mix : App.mix;
  samples : int;
      (** Suite applications draw their sample index uniformly in
          [\[0, samples)]; pipelines are deterministic and draw none. *)
  share : share;
  strategy : Rats_core.Rats.strategy;
      (** Baked into the tenant's requests; a study arm may override it
          via the engine's planner hook. *)
}

val validate : t -> unit
(** Raises [Invalid_argument] on an empty name, [samples < 1], an invalid
    mix, arrival process or share range. *)
