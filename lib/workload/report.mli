(** Service-level study reports: one record per (profile, scheduler arm).

    The study runner tallies the engine's event log into per-tenant
    {!per_tenant} records (in the trace's tenant order, so output is
    deterministic) and {!make} folds them into the service-level summary:
    throughput, sojourn moments ({!Rats_util.Stats.mean_std}) and tail
    percentiles (type-7, {!Rats_util.Stats.percentile}) over the pooled
    sojourns, and Jain's fairness index over per-tenant completion counts
    ({!Rats_util.Stats.jain_fairness} — 1 when every tenant got the same
    number of jobs through, → [1/T] when one tenant starves the rest).

    {!csv_header} / {!csv_row} render the comparison CSVs committed under
    [bench_results/]; floats print with [%.6f] so goldens are
    byte-stable. *)

type per_tenant = {
  tenant : string;
  submitted : int;
  completed : int;
  rejected : int;
  expired : int;
  sojourns : float array;  (** Completion order. *)
}

type t = {
  profile : string;
  arm : string;
  jobs : int;  (** Submitted, across tenants. *)
  completed : int;
  rejected : int;
  expired : int;
  end_time : float;  (** Simulated end of the drained trace. *)
  throughput : float;  (** Completed jobs per simulated second. *)
  sojourn_mean : float;
  sojourn_std : float;
  sojourn_p50 : float;
  sojourn_p99 : float;
  sojourn_p999 : float;
  fairness : float;  (** Jain's index over per-tenant completions. *)
  utilization : float;
  queue_depth_max : int;
  tenants : per_tenant list;  (** Trace tenant order. *)
}

val make :
  profile:string ->
  arm:string ->
  end_time:float ->
  utilization:float ->
  queue_depth_max:int ->
  per_tenant list ->
  t

val csv_header : string

val csv_row : t -> string

val pp : Format.formatter -> t -> unit
(** Human-readable multi-line summary with a per-tenant table. *)
