(** Composable arrival processes of the workload engine.

    Each tenant of a workload profile owns one arrival process; the trace
    compiler steps it once per generated job, interleaved with the job's
    other draws on the tenant's {!Rats_util.Rng} stream, so every process
    is deterministic under a seed and adding tenants never perturbs the
    streams of existing ones.

    The four process families cover the service-level study axes:

    - {b Poisson}: memoryless arrivals at a constant [rate] (exponential
      interarrivals by inverse transform) — the classic open-loop load,
      and bit-compatible with the historical [Server.Load] driver.
    - {b Bursty}: a two-state Markov-modulated Poisson process. The
      source alternates between an {e on} phase (rate [rate_on]) and an
      {e off} phase (rate [rate_off], may be 0), with exponentially
      distributed phase lengths of means [mean_on]/[mean_off] seconds —
      flash crowds followed by quiet.
    - {b Diurnal}: a non-homogeneous Poisson process with sinusoidal rate
      [base · (1 + amplitude · sin (2πt/period))], sampled by thinning —
      a day/night load curve.
    - {b Replay}: arrivals at recorded absolute [times] (e.g. from an
      on-disk trace, see {!Trace.load}); past the recorded span the
      pattern repeats, shifted by the span plus one mean interarrival, so
      a short recording can drive a long run. *)

type t =
  | Poisson of { rate : float }
  | Bursty of {
      rate_on : float;
      rate_off : float;
      mean_on : float;
      mean_off : float;
    }
  | Diurnal of { base : float; amplitude : float; period : float }
  | Replay of { times : float array }

val validate : t -> unit
(** Raises [Invalid_argument] when a parameter leaves its domain:
    rates/means/periods must be positive ([rate_off] may be 0 but not
    both rates), [amplitude ∈ \[0, 1\]], replay [times] non-empty,
    non-negative and non-decreasing. *)

val name : t -> string
(** ["poisson"], ["bursty"], ["diurnal"] or ["replay"]. *)

type state
(** Position of one tenant's stream inside its process (immutable). *)

val start : t -> state
(** The state before the first arrival, at simulated time 0. *)

val next : t -> state -> Rats_util.Rng.t -> state * float
(** [next p st rng] draws the next {e absolute} arrival time. Arrival
    times are non-decreasing across successive calls. The number of RNG
    draws consumed per step depends on the process (Poisson consumes
    exactly one, thinning and phase changes consume more), but is a
    deterministic function of the stream so far. *)

val times : t -> Rats_util.Rng.t -> n:int -> float array
(** [times p rng ~n] validates [p] and materialises the first [n]
    arrival times — the test- and analysis-friendly wrapper over
    {!start}/{!next}. *)
