module Stats = Rats_util.Stats

type per_tenant = {
  tenant : string;
  submitted : int;
  completed : int;
  rejected : int;
  expired : int;
  sojourns : float array;
}

type t = {
  profile : string;
  arm : string;
  jobs : int;
  completed : int;
  rejected : int;
  expired : int;
  end_time : float;
  throughput : float;
  sojourn_mean : float;
  sojourn_std : float;
  sojourn_p50 : float;
  sojourn_p99 : float;
  sojourn_p999 : float;
  fairness : float;
  utilization : float;
  queue_depth_max : int;
  tenants : per_tenant list;
}

let make ~profile ~arm ~end_time ~utilization ~queue_depth_max tenants =
  let sum f = List.fold_left (fun acc (pt : per_tenant) -> acc + f pt) 0 tenants in
  let jobs = sum (fun pt -> pt.submitted) in
  let completed = sum (fun pt -> pt.completed) in
  let rejected = sum (fun pt -> pt.rejected) in
  let expired = sum (fun pt -> pt.expired) in
  let sojourns =
    Array.concat (List.map (fun (pt : per_tenant) -> pt.sojourns) tenants)
  in
  let mean, std = Stats.mean_std sojourns in
  let fairness =
    Stats.jain_fairness
      (Array.of_list
         (List.map
            (fun (pt : per_tenant) -> float_of_int pt.completed)
            tenants))
  in
  {
    profile;
    arm;
    jobs;
    completed;
    rejected;
    expired;
    end_time;
    throughput =
      (if end_time > 0. then float_of_int completed /. end_time else 0.);
    sojourn_mean = mean;
    sojourn_std = std;
    sojourn_p50 = Stats.percentile sojourns 50.;
    sojourn_p99 = Stats.percentile sojourns 99.;
    sojourn_p999 = Stats.percentile sojourns 99.9;
    fairness;
    utilization;
    queue_depth_max;
    tenants;
  }

let csv_header =
  "profile,arm,jobs,completed,rejected,expired,end_time,throughput,sojourn_mean,sojourn_std,sojourn_p50,sojourn_p99,sojourn_p999,jain_fairness,utilization,queue_depth_max"

let csv_row r =
  Printf.sprintf "%s,%s,%d,%d,%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%d"
    r.profile r.arm r.jobs r.completed r.rejected r.expired r.end_time
    r.throughput r.sojourn_mean r.sojourn_std r.sojourn_p50 r.sojourn_p99
    r.sojourn_p999 r.fairness r.utilization r.queue_depth_max

let pp ppf r =
  Format.fprintf ppf
    "@[<v>profile            %s@,\
     arm                %s@,\
     jobs submitted     %d@,\
     jobs completed     %d@,\
     jobs rejected      %d@,\
     jobs expired       %d@,\
     end of trace       %.2f s (simulated)@,\
     throughput         %.4f jobs/s@,\
     sojourn mean       %.2f s (std %.2f)@,\
     sojourn p50        %.2f s@,\
     sojourn p99        %.2f s@,\
     sojourn p99.9      %.2f s@,\
     jain fairness      %.4f@,\
     utilization        %.1f%%@,\
     peak queue depth   %d"
    r.profile r.arm r.jobs r.completed r.rejected r.expired r.end_time
    r.throughput r.sojourn_mean r.sojourn_std r.sojourn_p50 r.sojourn_p99
    r.sojourn_p999 r.fairness (100. *. r.utilization) r.queue_depth_max;
  List.iter
    (fun pt ->
      Format.fprintf ppf "@,  %-12s submitted %3d  completed %3d  rejected %3d  expired %3d"
        pt.tenant pt.submitted pt.completed pt.rejected pt.expired)
    r.tenants;
  Format.fprintf ppf "@]"
