(** Deterministic trace compiler: {!Profile.t} → sorted arrival trace.

    Each tenant draws from its own SplitMix64 stream seeded
    [profile.seed + 7919 · tenant_index], so the same profile and seed
    compile to the same trace on every machine and adding a tenant never
    perturbs the others. Per job the draw order is fixed — arrival gap,
    application template, sample index (suite templates only), share size
    (uniform shares only) — and must never change: the [Server.Load] shim
    and the on-disk goldens depend on it.

    Traces round-trip through a JSON-lines file ({!save} / {!load}), one
    job object per line, floats rendered with the repo-wide [%.17g]
    convention so replayed traces are bit-exact. *)

type job = {
  at : float;  (** Arrival time, simulated seconds. *)
  tenant : string;
  app : App.t;
  procs : int;  (** Requested share size. *)
  strategy : Rats_core.Rats.strategy;
}

type t = job array
(** Sorted by [(at, tenant)]. *)

val compile : Profile.t -> t
(** Validates the profile, draws every tenant's jobs and merges them into
    arrival order. Bumps the [rats_workload_traces_compiled_total] and
    [rats_workload_jobs_generated_total] counters. *)

val equal : t -> t -> bool

val save : string -> t -> unit
(** Writes the JSON-lines representation to a file (overwrites). *)

val load : string -> (t, string) result
(** Parses a file written by {!save}; errors carry the line number. *)
