module Rng = Rats_util.Rng
module Suite = Rats_daggen.Suite
module Shape = Rats_daggen.Shape
module Rats = Rats_core.Rats
module J = Rats_obs.Json
module Metrics = Rats_obs.Metrics
module Instr = Rats_obs.Instr

type job = {
  at : float;
  tenant : string;
  app : App.t;
  procs : int;
  strategy : Rats.strategy;
}

type t = job array

(* --- compiler ----------------------------------------------------------- *)

let tenant_jobs ~seed ~tenant_index ~n_jobs (tenant : Tenant.t) =
  (* Per-tenant stream: adding tenants never perturbs existing ones. The
     per-job draw order (arrival, template, sample, share) is frozen — the
     Server.Load shim's byte-identity depends on it. *)
  let rng = Rng.create (seed + (7919 * tenant_index)) in
  let state = ref (Arrival.start tenant.Tenant.arrival) in
  Array.init n_jobs (fun _ ->
      let state', at = Arrival.next tenant.Tenant.arrival !state rng in
      state := state';
      let app =
        match App.pick tenant.Tenant.mix rng with
        | App.Suite_spec spec ->
            let sample = Rng.int_range rng 0 (tenant.Tenant.samples - 1) in
            App.Generated { Suite.spec; sample }
        | App.Pipeline p -> App.Chain p
      in
      let procs =
        match tenant.Tenant.share with
        | Tenant.Fixed k -> k
        | Tenant.Uniform { lo; hi } -> Rng.int_range rng lo hi
      in
      { at; tenant = tenant.Tenant.name; app; procs; strategy = tenant.strategy })

let compile (p : Profile.t) =
  Profile.validate p;
  let split = Profile.jobs_per_tenant p in
  let per_tenant =
    List.mapi
      (fun i tenant -> tenant_jobs ~seed:p.Profile.seed ~tenant_index:i ~n_jobs:split.(i) tenant)
      p.Profile.tenants
  in
  let jobs = Array.concat per_tenant in
  Array.sort
    (fun j1 j2 -> compare (j1.at, j1.tenant) (j2.at, j2.tenant))
    jobs;
  Metrics.incr Instr.workload_traces;
  Metrics.add Instr.workload_jobs (Array.length jobs);
  jobs

let equal (a : t) (b : t) = a = b

(* --- JSON-lines codec ---------------------------------------------------- *)

let num x = J.Num x
let int n = J.Num (float_of_int n)
let ( let* ) = Result.bind

let field name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let str_field name j =
  let* v = field name j in
  match J.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S is not a string" name)

let num_field name j =
  let* v = field name j in
  match J.to_float v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "field %S is not a number" name)

let int_field name j =
  let* v = field name j in
  match J.to_int v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "field %S is not an integer" name)

let bool_field name j =
  let* v = field name j in
  match v with
  | J.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "field %S is not a boolean" name)

(* Mirrors the service API's strategy codec (same "algo" wire names); the
   workload library sits below the server and cannot reuse it. *)
let strategy_to_json = function
  | Rats.Baseline -> J.Obj [ ("algo", J.Str "hcpa") ]
  | Rats.Delta { mindelta; maxdelta } ->
      J.Obj
        [
          ("algo", J.Str "delta");
          ("mindelta", num mindelta);
          ("maxdelta", num maxdelta);
        ]
  | Rats.Timecost { minrho; packing } ->
      J.Obj
        [
          ("algo", J.Str "timecost");
          ("minrho", num minrho);
          ("packing", J.Bool packing);
        ]

let strategy_of_json j =
  let* algo = str_field "algo" j in
  match algo with
  | "hcpa" -> Ok Rats.Baseline
  | "delta" ->
      let* mindelta = num_field "mindelta" j in
      let* maxdelta = num_field "maxdelta" j in
      Ok (Rats.Delta { mindelta; maxdelta })
  | "timecost" ->
      let* minrho = num_field "minrho" j in
      let* packing = bool_field "packing" j in
      Ok (Rats.Timecost { minrho; packing })
  | other -> Error (Printf.sprintf "unknown algo %S" other)

let app_to_json = function
  | App.Generated { Suite.spec; sample } -> (
      match spec with
      | Suite.Layered { n_tasks; shape } ->
          J.Obj
            [
              ("kind", J.Str "layered");
              ("n_tasks", int n_tasks);
              ("width", num shape.Shape.width);
              ("regularity", num shape.Shape.regularity);
              ("density", num shape.Shape.density);
              ("sample", int sample);
            ]
      | Suite.Irregular { n_tasks; shape } ->
          J.Obj
            [
              ("kind", J.Str "irregular");
              ("n_tasks", int n_tasks);
              ("width", num shape.Shape.width);
              ("regularity", num shape.Shape.regularity);
              ("density", num shape.Shape.density);
              ("jump", int shape.Shape.jump);
              ("sample", int sample);
            ]
      | Suite.Fft { k } ->
          J.Obj [ ("kind", J.Str "fft"); ("k", int k); ("sample", int sample) ]
      | Suite.Strassen ->
          J.Obj [ ("kind", J.Str "strassen"); ("sample", int sample) ])
  | App.Chain p ->
      J.Obj
        [
          ("kind", J.Str "pipeline");
          ("stages", int p.App.stages);
          ("data_elements", num p.App.data_elements);
          ("flop", num p.App.flop);
          ("alpha", num p.App.alpha);
        ]

let shape_of_json ?jump j =
  let* width = num_field "width" j in
  let* regularity = num_field "regularity" j in
  let* density = num_field "density" j in
  Ok (Shape.make ~width ~regularity ~density ?jump ())

let app_of_json j =
  let* kind = str_field "kind" j in
  let generated spec =
    let* sample = int_field "sample" j in
    Ok (App.Generated { Suite.spec; sample })
  in
  match kind with
  | "layered" ->
      let* n_tasks = int_field "n_tasks" j in
      let* shape = shape_of_json j in
      generated (Suite.Layered { n_tasks; shape })
  | "irregular" ->
      let* n_tasks = int_field "n_tasks" j in
      let* jump = int_field "jump" j in
      let* shape = shape_of_json ~jump j in
      generated (Suite.Irregular { n_tasks; shape })
  | "fft" ->
      let* k = int_field "k" j in
      generated (Suite.Fft { k })
  | "strassen" -> generated Suite.Strassen
  | "pipeline" ->
      let* stages = int_field "stages" j in
      let* data_elements = num_field "data_elements" j in
      let* flop = num_field "flop" j in
      let* alpha = num_field "alpha" j in
      Ok (App.Chain { App.stages; data_elements; flop; alpha })
  | other -> Error (Printf.sprintf "unknown app kind %S" other)

let job_to_json job =
  J.Obj
    [
      ("at", num job.at);
      ("tenant", J.Str job.tenant);
      ("app", app_to_json job.app);
      ("procs", int job.procs);
      ("strategy", strategy_to_json job.strategy);
    ]

let job_of_json j =
  let* at = num_field "at" j in
  let* tenant = str_field "tenant" j in
  let* app = Result.bind (field "app" j) app_of_json in
  let* procs = int_field "procs" j in
  let* strategy = Result.bind (field "strategy" j) strategy_of_json in
  Ok { at; tenant; app; procs; strategy }

let save path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Array.iter
        (fun job ->
          output_string oc (J.to_string (job_to_json job));
          output_char oc '\n')
        trace)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (Array.of_list (List.rev acc))
        | "" -> go (lineno + 1) acc
        | line -> (
            let parsed =
              let* j = J.parse line in
              job_of_json j
            in
            match parsed with
            | Ok job -> go (lineno + 1) (job :: acc)
            | Error e ->
                Error (Printf.sprintf "%s:%d: %s" path lineno e))
      in
      go 1 [])
