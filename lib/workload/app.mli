(** Application vocabulary of the workload engine.

    A tenant submits jobs drawn from a weighted {!mix} of application
    {e templates}. Two template families exist:

    - the paper's generated suite ({!Rats_daggen.Suite}: layered,
      irregular, FFT, Strassen) — the trace compiler draws a sample index
      per job, so repeated picks of one template yield different DAGs of
      the same shape;
    - {b pipeline-shaped chains} (Benoit, Rehn-Sonigo & Robert's pipeline
      workflows, PAPERS.md): a linear chain of moldable stages whose
      computational weight alternates ([1×, 2×, 3×, 1×, …] of [flop]), so
      consecutive stages want {e different} processor counts and the chain
      is one long redistribution opportunity — the tenant class that
      stresses redistribution-aware mapping hardest. Pipelines are
      deterministic (no sample index).

    The conversion of an {!t} instance to a service request (including
    inline task/edge definitions for pipelines) lives in
    [Server.Load.request_of_job] — this library stays below the service
    layer. *)

module Suite := Rats_daggen.Suite

type pipeline = {
  stages : int;  (** Computation stages chained head to tail (≥ 1). *)
  data_elements : float;
      (** Dataset carried stage to stage, in double elements; each stage
          forwards [8·data_elements] bytes to the next. *)
  flop : float;  (** Base sequential work per stage (scaled per stage). *)
  alpha : float;  (** Amdahl non-parallelizable fraction of every stage. *)
}

val validate_pipeline : pipeline -> unit
(** Raises [Invalid_argument] on non-positive sizes or [alpha] outside
    [0, 1]. *)

val pipeline_task_params : pipeline -> (float * float * float) array
(** Per-stage [(data_elements, flop, alpha)] triples; stage [i]'s flop is
    [flop · (1 + i mod 3)]. *)

val pipeline_edges : pipeline -> (int * int * float) list
(** [(src, dst, bytes)] of the chain's stage-to-stage transfers. *)

(** {2 Templates and instances} *)

type template =
  | Suite_spec of Suite.spec  (** Sample index drawn per job. *)
  | Pipeline of pipeline

val template_name : template -> string

type t =
  | Generated of Suite.config  (** An instantiated suite application. *)
  | Chain of pipeline

val name : t -> string
(** Stable identifier: {!Rats_daggen.Suite.name} for suite apps,
    ["pipeline-s<stages>-m<MiElements>"] for chains. *)

(** {2 Weighted mixes} *)

type mix = (int * template) array
(** Positive integer weights. A uniform mix (all weights 1) consumes
    exactly one [Rng.int] draw of bound [Array.length mix] per pick —
    bit-compatible with the historical [Server.Load] spec pool. *)

val validate_mix : mix -> unit
(** Raises [Invalid_argument] on an empty mix or a non-positive weight. *)

val pick : mix -> Rats_util.Rng.t -> template
(** Weighted draw: one [Rng.int] of bound [Σ weights], walked over the
    entries in order. *)
