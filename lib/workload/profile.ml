module Cluster = Rats_platform.Cluster
module Suite = Rats_daggen.Suite
module Shape = Rats_daggen.Shape
module Rats = Rats_core.Rats

type t = { name : string; seed : int; n_jobs : int; tenants : Tenant.t list }

let validate t =
  if t.n_jobs < 1 then invalid_arg "Profile: n_jobs < 1";
  if t.tenants = [] then invalid_arg "Profile: no tenants";
  let names = List.map (fun (tn : Tenant.t) -> tn.Tenant.name) t.tenants in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Profile: duplicate tenant names";
  List.iter Tenant.validate t.tenants

let jobs_per_tenant t =
  let n_tenants = List.length t.tenants in
  Array.init n_tenants (fun i ->
      (t.n_jobs / n_tenants) + if i < t.n_jobs mod n_tenants then 1 else 0)

(* Small configurations only, in the historical [Server.Load] pool order:
   byte-identical traces for the poisson preset depend on it. *)
let service_mix : App.mix =
  [|
    ( 1,
      App.Suite_spec
        (Suite.Layered
           {
             n_tasks = 25;
             shape = Shape.make ~width:0.5 ~regularity:0.8 ~density:0.2 ();
           }) );
    ( 1,
      App.Suite_spec
        (Suite.Layered
           {
             n_tasks = 25;
             shape = Shape.make ~width:0.2 ~regularity:0.2 ~density:0.8 ();
           }) );
    ( 1,
      App.Suite_spec
        (Suite.Irregular
           {
             n_tasks = 25;
             shape =
               Shape.make ~width:0.5 ~regularity:0.2 ~density:0.2 ~jump:2 ();
           }) );
    (1, App.Suite_spec (Suite.Fft { k = 2 }));
    (1, App.Suite_spec Suite.Strassen);
  |]

let mi = 1024. *. 1024.

let pipeline_mix : App.mix =
  [|
    ( 1,
      App.Pipeline
        { App.stages = 5; data_elements = 4. *. mi; flop = 4e9; alpha = 0.05 }
    );
    ( 1,
      App.Pipeline
        { App.stages = 8; data_elements = 8. *. mi; flop = 6e9; alpha = 0.05 }
    );
    ( 1,
      App.Pipeline
        { App.stages = 12; data_elements = 16. *. mi; flop = 8e9; alpha = 0.1 }
    );
  |]

let service ?name ~n_jobs ~n_tenants ~rate ~seed ~strategy ~procs_min
    ~procs_max () =
  if n_tenants < 1 then invalid_arg "Profile.service: n_tenants < 1";
  if rate <= 0. then invalid_arg "Profile.service: rate <= 0";
  let per_tenant_rate = rate /. float_of_int n_tenants in
  let tenants =
    List.init n_tenants (fun i ->
        {
          Tenant.name = Printf.sprintf "tenant-%d" i;
          arrival = Arrival.Poisson { rate = per_tenant_rate };
          mix = service_mix;
          samples = 3;
          share = Tenant.Uniform { lo = procs_min; hi = procs_max };
          strategy;
        })
  in
  {
    name = Option.value name ~default:"poisson";
    seed;
    n_jobs;
    tenants;
  }

type preset_params = {
  p_jobs : int;
  p_tenants : int;
  p_rate : float;
  p_seed : int;
}

let default_params = { p_jobs = 120; p_tenants = 4; p_rate = 0.05; p_seed = 42 }

let presets = [ "poisson"; "bursty"; "diurnal"; "pipeline"; "mixed" ]

(* Per-tenant arrival process of each non-poisson preset, parameterised by the
   tenant's even share of the aggregate rate. Burst and diurnal shapes keep
   the same long-run average rate as the poisson preset, so arm comparisons
   across presets see the same offered load, differently clumped. *)
let bursty_arrival per_rate =
  (* On one fifth of the time at 5x the average rate: flash crowds. *)
  Arrival.Bursty
    {
      rate_on = 5. *. per_rate;
      rate_off = 0.;
      mean_on = 40. /. per_rate *. 0.2;
      mean_off = 40. /. per_rate *. 0.8;
    }

let diurnal_arrival per_rate =
  Arrival.Diurnal
    { base = per_rate; amplitude = 0.9; period = 400. /. per_rate }

let build_preset ~cluster name params =
  let n = Cluster.n_procs cluster in
  let procs_min = max 1 (n / 4) and procs_max = n in
  let share = Tenant.Uniform { lo = procs_min; hi = procs_max } in
  let strategy = Rats.Delta Rats.naive_delta in
  let per_rate = params.p_rate /. float_of_int params.p_tenants in
  let tenant i arrival mix =
    {
      Tenant.name = Printf.sprintf "tenant-%d" i;
      arrival;
      mix;
      samples = 3;
      share;
      strategy;
    }
  in
  let tenants =
    match name with
    | "poisson" ->
        List.init params.p_tenants (fun i ->
            tenant i (Arrival.Poisson { rate = per_rate }) service_mix)
    | "bursty" ->
        List.init params.p_tenants (fun i ->
            tenant i (bursty_arrival per_rate) service_mix)
    | "diurnal" ->
        List.init params.p_tenants (fun i ->
            tenant i (diurnal_arrival per_rate) service_mix)
    | "pipeline" ->
        List.init params.p_tenants (fun i ->
            tenant i (Arrival.Poisson { rate = per_rate }) pipeline_mix)
    | "mixed" ->
        (* Tenant classes cycle: open-loop, flash-crowd, day/night, pipeline. *)
        List.init params.p_tenants (fun i ->
            match i mod 4 with
            | 0 -> tenant i (Arrival.Poisson { rate = per_rate }) service_mix
            | 1 -> tenant i (bursty_arrival per_rate) service_mix
            | 2 -> tenant i (diurnal_arrival per_rate) service_mix
            | _ ->
                tenant i (Arrival.Poisson { rate = per_rate }) pipeline_mix)
    | other -> invalid_arg ("Profile: unknown preset " ^ other)
  in
  { name; seed = params.p_seed; n_jobs = params.p_jobs; tenants }

let parse_params base kvs =
  List.fold_left
    (fun acc kv ->
      match acc with
      | Error _ -> acc
      | Ok params -> (
          match String.split_on_char '=' kv with
          | [ "jobs"; v ] -> (
              match int_of_string_opt v with
              | Some j when j >= 1 -> Ok { params with p_jobs = j }
              | _ -> Error (Printf.sprintf "bad jobs value %S" v))
          | [ "tenants"; v ] -> (
              match int_of_string_opt v with
              | Some t when t >= 1 -> Ok { params with p_tenants = t }
              | _ -> Error (Printf.sprintf "bad tenants value %S" v))
          | [ "rate"; v ] -> (
              match float_of_string_opt v with
              | Some r when r > 0. -> Ok { params with p_rate = r }
              | _ -> Error (Printf.sprintf "bad rate value %S" v))
          | [ "seed"; v ] -> (
              match int_of_string_opt v with
              | Some s -> Ok { params with p_seed = s }
              | None -> Error (Printf.sprintf "bad seed value %S" v))
          | _ -> Error (Printf.sprintf "bad profile option %S" kv)))
    (Ok base) kvs

let of_string ~cluster ?seed spec =
  let name, kvs =
    match String.index_opt spec ':' with
    | None -> (spec, [])
    | Some i ->
        ( String.sub spec 0 i,
          String.split_on_char ','
            (String.sub spec (i + 1) (String.length spec - i - 1)) )
  in
  if not (List.mem name presets) then
    Error
      (Printf.sprintf "unknown profile %S (expected one of: %s)" name
         (String.concat ", " presets))
  else
    match parse_params default_params kvs with
    | Error e -> Error e
    | Ok params ->
        let params =
          match seed with
          | Some s -> { params with p_seed = s }
          | None -> params
        in
        Ok (build_preset ~cluster name params)
