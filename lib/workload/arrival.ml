module Rng = Rats_util.Rng

type t =
  | Poisson of { rate : float }
  | Bursty of {
      rate_on : float;
      rate_off : float;
      mean_on : float;
      mean_off : float;
    }
  | Diurnal of { base : float; amplitude : float; period : float }
  | Replay of { times : float array }

let validate = function
  | Poisson { rate } ->
      if rate <= 0. then invalid_arg "Arrival: Poisson rate <= 0"
  | Bursty { rate_on; rate_off; mean_on; mean_off } ->
      if rate_on <= 0. then invalid_arg "Arrival: Bursty rate_on <= 0";
      if rate_off < 0. then invalid_arg "Arrival: Bursty rate_off < 0";
      if mean_on <= 0. || mean_off <= 0. then
        invalid_arg "Arrival: Bursty phase mean <= 0"
  | Diurnal { base; amplitude; period } ->
      if base <= 0. then invalid_arg "Arrival: Diurnal base <= 0";
      if amplitude < 0. || amplitude > 1. then
        invalid_arg "Arrival: Diurnal amplitude outside [0, 1]";
      if period <= 0. then invalid_arg "Arrival: Diurnal period <= 0"
  | Replay { times } ->
      let n = Array.length times in
      if n = 0 then invalid_arg "Arrival: Replay with no times";
      if times.(0) < 0. then invalid_arg "Arrival: Replay time < 0";
      for i = 1 to n - 1 do
        if times.(i) < times.(i - 1) then
          invalid_arg "Arrival: Replay times not sorted"
      done

let name = function
  | Poisson _ -> "poisson"
  | Bursty _ -> "bursty"
  | Diurnal _ -> "diurnal"
  | Replay _ -> "replay"

type state = {
  t : float;  (* last arrival (or 0) *)
  on : bool;  (* Bursty: current phase *)
  phase_end : float;  (* Bursty: when the current phase ends *)
  index : int;  (* Replay: next position *)
}

let start _ = { t = 0.; on = true; phase_end = 0.; index = 0 }

(* Exponential interarrival by inverse transform — the exact float
   expression of the historical Server.Load driver, so the Poisson shim
   stays byte-identical. *)
let exponential rng ~rate =
  let u = Rng.float rng 1. in
  -.log (1. -. u) /. rate

let next process st rng =
  match process with
  | Poisson { rate } ->
      let at = st.t +. exponential rng ~rate in
      ({ st with t = at }, at)
  | Bursty { rate_on; rate_off; mean_on; mean_off } ->
      let rec go st =
        if st.phase_end <= st.t then begin
          (* Current phase exhausted (also the initial state): draw the
             length of the phase starting at [st.t]. *)
          let mean = if st.on then mean_on else mean_off in
          let dur = -.mean *. log (1. -. Rng.float rng 1.) in
          go { st with phase_end = st.t +. dur }
        end
        else begin
          let rate = if st.on then rate_on else rate_off in
          if rate <= 0. then
            (* Silent phase: jump to its end and toggle. *)
            go { st with t = st.phase_end; on = not st.on }
          else begin
            let at = st.t +. exponential rng ~rate in
            if at <= st.phase_end then ({ st with t = at }, at)
            else
              (* Candidate past the boundary: the exponential is
                 memoryless, so discarding it and toggling is exact. *)
              go { st with t = st.phase_end; on = not st.on }
          end
        end
      in
      go st
  | Diurnal { base; amplitude; period } ->
      let peak = base *. (1. +. amplitude) in
      let rate_at time =
        base *. (1. +. (amplitude *. sin (2. *. Float.pi *. time /. period)))
      in
      (* Lewis–Shedler thinning against the constant peak rate. *)
      let rec go t =
        let t = t +. exponential rng ~rate:peak in
        let u = Rng.float rng 1. in
        if u *. peak <= rate_at t then t else go t
      in
      let at = go st.t in
      ({ st with t = at }, at)
  | Replay { times } ->
      let n = Array.length times in
      let span = times.(n - 1) in
      let cycle =
        if span > 0. then span +. (span /. float_of_int n) else 1.
      in
      let k = st.index / n and i = st.index mod n in
      let at = times.(i) +. (float_of_int k *. cycle) in
      ({ st with index = st.index + 1; t = at }, at)

let times process rng ~n =
  validate process;
  if n < 0 then invalid_arg "Arrival.times: n < 0";
  let st = ref (start process) in
  Array.init n (fun _ ->
      let st', at = next process !st rng in
      st := st';
      at)
