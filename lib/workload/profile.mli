(** Workload profiles: who submits what, how fast, under which seed.

    A profile is a named set of {!Tenant}s plus a total job budget; the
    trace compiler ({!Trace.compile}) splits the budget round-robin
    across tenants (tenant [i] of [T] gets [n/T] jobs, plus one of the
    first [n mod T] remainders — the historical [Server.Load] split).

    {2 Profile grammar}

    [of_string] accepts [NAME\[:key=value{,key=value}\]] where [NAME] is
    one of {!presets} and the optional keys override the preset's
    defaults:

    - [jobs=N] — total jobs across tenants (default 120);
    - [tenants=K] — tenant count (default 4);
    - [rate=R] — aggregate arrival rate in jobs per simulated second,
      split evenly across tenants (default 0.05);
    - [seed=S] — trace seed (default 42).

    Example: ["bursty:jobs=240,tenants=6,seed=7"].

    {2 Presets}

    - [poisson] — every tenant an independent Poisson source over the
      small-configuration service mix: the classic open-loop load (and
      the exact trace of the historical [ratsd --selftest] driver).
    - [bursty] — on/off MMPP tenants: flash crowds against a quiet
      background.
    - [diurnal] — sinusoidal rate curve tenants (day/night).
    - [pipeline] — Poisson tenants submitting pipeline-shaped chains
      only (the Benoit–Rehn-Sonigo–Robert tenant class).
    - [mixed] — tenant classes cycle through poisson / bursty / diurnal
      service-mix tenants and a pipeline tenant: the heterogeneous
      multi-tenant sweep. *)

type t = {
  name : string;
  seed : int;
  n_jobs : int;  (** Total across tenants. *)
  tenants : Tenant.t list;
}

val validate : t -> unit
(** Raises [Invalid_argument] on a non-positive job budget, no tenants,
    duplicate tenant names or an invalid tenant. *)

val jobs_per_tenant : t -> int array
(** The round-robin split of [n_jobs] over the tenants, in order. *)

val service_mix : App.mix
(** The historical service pool: five small suite configurations
    (two layered, one irregular, FFT k=2, Strassen), uniform weights. *)

val pipeline_mix : App.mix
(** Three pipeline chains of 5/8/12 stages over 4/8/16 Mi-element
    datasets, uniform weights. *)

val service :
  ?name:string ->
  n_jobs:int ->
  n_tenants:int ->
  rate:float ->
  seed:int ->
  strategy:Rats_core.Rats.strategy ->
  procs_min:int ->
  procs_max:int ->
  unit ->
  t
(** The [poisson] preset with explicit share bounds — the profile behind
    [Server.Load]'s driver: [n_tenants] Poisson tenants named
    ["tenant-<i>"] of rate [rate /. n_tenants] each, {!service_mix},
    3 samples, shares uniform in [\[procs_min, procs_max\]]. *)

val presets : string list
(** Preset names accepted by {!of_string}, in documentation order. *)

val of_string :
  cluster:Rats_platform.Cluster.t ->
  ?seed:int ->
  string ->
  (t, string) result
(** Parses the profile grammar above. Share bounds are derived from the
    cluster (uniform between a quarter of the platform and all of it);
    the baked strategy is the naive delta. [?seed] overrides any seed
    from the string (the CLI's [--seed] flag). *)
