module Units = Rats_util.Units
module Procset = Rats_util.Procset

type t = {
  name : string;
  topology : Topology.t;
  speed : float;
  node_link : Link.t;
  uplink : Link.t;
  tcp_wmax : float;
}

let make ~name ~topology ~speed_gflops ?(node_link = Link.gigabit)
    ?(uplink = Link.gigabit) ?(tcp_wmax = 4. *. 1048576.) () =
  if speed_gflops <= 0. then invalid_arg "Cluster.make: non-positive speed";
  if tcp_wmax <= 0. then invalid_arg "Cluster.make: non-positive tcp_wmax";
  { name; topology; speed = Units.gflops speed_gflops; node_link; uplink; tcp_wmax }

let n_procs c = Topology.n_nodes c.topology
let n_links c = n_procs c + Topology.n_uplinks c.topology

let link c i =
  if i < 0 || i >= n_links c then invalid_arg "Cluster.link: out of range";
  if i < n_procs c then c.node_link else c.uplink

let route c ~src ~dst =
  let p = n_procs c in
  if src < 0 || src >= p || dst < 0 || dst >= p then
    invalid_arg "Cluster.route: node out of range";
  if src = dst then [||]
  else if Topology.same_cabinet c.topology src dst then [| src; dst |]
  else
    let cs = Topology.cabinet_of c.topology src
    and cd = Topology.cabinet_of c.topology dst in
    [| src; p + cs; p + cd; dst |]

let one_way_latency c ~route =
  Array.fold_left (fun acc l -> acc +. (link c l).Link.latency) 0. route

let flow_rate_cap c ~route =
  if Array.length route = 0 then infinity
  else begin
    let min_bw =
      Array.fold_left
        (fun acc l -> Float.min acc (link c l).Link.bandwidth)
        infinity route
    in
    let rtt = 2. *. one_way_latency c ~route in
    if rtt <= 0. then min_bw else Float.min min_bw (c.tcp_wmax /. rtt)
  end

let all_procs c = Procset.range 0 (n_procs c)

let chti =
  make ~name:"chti" ~topology:(Topology.Flat 20) ~speed_gflops:4.311 ()

let grillon =
  make ~name:"grillon" ~topology:(Topology.Flat 47) ~speed_gflops:3.379 ()

let grelon =
  make ~name:"grelon"
    ~topology:(Topology.Cabinets { cabinets = 5; per_cabinet = 24 })
    ~speed_gflops:3.185 ()

let presets = [ chti; grillon; grelon ]

let signature c =
  let topo =
    match c.topology with
    | Topology.Flat n -> Printf.sprintf "flat:%d" n
    | Topology.Cabinets { cabinets; per_cabinet } ->
        Printf.sprintf "cab:%dx%d" cabinets per_cabinet
  in
  Printf.sprintf "%s|%s|%h|%h/%h|%h/%h|%h" c.name topo c.speed
    c.node_link.Link.latency c.node_link.Link.bandwidth
    c.uplink.Link.latency c.uplink.Link.bandwidth c.tcp_wmax

let pp ppf c =
  Format.fprintf ppf "%s: %d procs x %.3f GFlop/s, %s" c.name (n_procs c)
    (c.speed /. Units.giga)
    (match c.topology with
    | Topology.Flat _ -> "flat switch"
    | Topology.Cabinets { cabinets; per_cabinet } ->
        Printf.sprintf "%d cabinets x %d nodes" cabinets per_cabinet)
