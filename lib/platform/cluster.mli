(** Homogeneous commodity cluster (paper §II-B, Table II).

    A cluster has [n_procs] single-core nodes of identical [speed] (flop/s),
    each owning one private network link shared — bounded multi-port model —
    by all flows it sends or receives. Hierarchical clusters add a per-cabinet
    uplink. Link indices are global: node [i]'s private link has index [i];
    cabinet [c]'s uplink has index [n_procs + c].

    The three Grid'5000 clusters of the paper's evaluation are provided as
    presets (HPL-measured speeds from Table II, gigabit interconnect). *)

type t = private {
  name : string;
  topology : Topology.t;
  speed : float;  (** Per-node computing speed, flop/s. *)
  node_link : Link.t;
  uplink : Link.t;  (** Per-cabinet uplink; unused for flat clusters. *)
  tcp_wmax : float;
      (** Maximal TCP window (bytes) for SimGrid's empirical bandwidth
          [β' = min(β, Wmax/RTT)]. *)
}

val make :
  name:string -> topology:Topology.t -> speed_gflops:float ->
  ?node_link:Link.t -> ?uplink:Link.t -> ?tcp_wmax:float -> unit -> t
(** Links default to {!Link.gigabit}; [tcp_wmax] defaults to 4 MiB. *)

val n_procs : t -> int

val n_links : t -> int
(** Node links + cabinet uplinks. *)

val link : t -> int -> Link.t
(** Raises [Invalid_argument] on out-of-range link indices. *)

val route : t -> src:int -> dst:int -> int array
(** Link indices crossed by a flow from node [src] to node [dst]. Empty when
    [src = dst] (local memory copy — free). Flat: both private links.
    Hierarchical, different cabinets: both private links + both uplinks. *)

val one_way_latency : t -> route:int array -> float
(** Sum of link latencies along a route. *)

val flow_rate_cap : t -> route:int array -> float
(** SimGrid's empirical end-to-end bandwidth bound for the route:
    [min(min_l β_l, Wmax / RTT)] with [RTT = 2 Σ λ_l]. [infinity] on the
    empty route. *)

val all_procs : t -> Rats_util.Procset.t

(** {1 Paper presets (Table II)} *)

val chti : t
(** Lille: 20 nodes, 4.311 GFlop/s, flat gigabit switch. *)

val grillon : t
(** Nancy: 47 nodes, 3.379 GFlop/s, flat gigabit switch. *)

val grelon : t
(** Nancy: 120 nodes, 3.185 GFlop/s, 5 cabinets of 24 — hierarchical. *)

val presets : t list
(** [chti; grillon; grelon] — the evaluation's three clusters. *)

val pp : Format.formatter -> t -> unit

val signature : t -> string
(** Every field that influences simulation results, rendered exactly ([%h]
    hex floats) — the cluster component of {!Rats_runtime.Cache} keys. Two
    clusters with equal signatures produce identical schedules and
    makespans for any given application. *)
