(** Simulated-time load driver: the service's throughput proof.

    Generates a multi-tenant Poisson arrival trace over the paper's
    application suite, submits it to an online {!Engine}, drains, and
    reports service-level numbers (throughput, p50/p99 sojourn,
    utilization, peak queue depth). Everything is driven by
    {!Rats_util.Rng} streams derived from [seed] — same seed, same
    profile, same platform ⇒ byte-identical event log — so
    [ratsd --selftest] doubles as a determinism check.

    Since the workload engine landed this module is a thin shim: a
    {!profile} maps to {!Rats_workload.Profile.service} (each tenant an
    independent Poisson process of rate [rate /. n_tenants] over the
    small-configuration service mix, shares uniform in
    [\[procs_min, procs_max\]]) and the trace comes from
    {!Rats_workload.Trace.compile} — bit-compatible with the historical
    inline generator, draw for draw. The conversion from workload jobs
    to service requests ({!request_of_job}) lives here because the
    workload library sits below the service API. *)

type profile = {
  n_jobs : int;  (** Total jobs across all tenants. *)
  n_tenants : int;
  rate : float;  (** Aggregate arrival rate, jobs per simulated second. *)
  seed : int;
  strategy : Rats_core.Rats.strategy;  (** Used for every submission. *)
  procs_min : int;
  procs_max : int;
}

val default_profile : Rats_platform.Cluster.t -> profile
(** 120 jobs from 4 tenants at 0.05 jobs/s with the naive delta strategy,
    shares between a quarter and the whole platform, seed 42. *)

val workload_profile : profile -> Rats_workload.Profile.t
(** The workload-engine profile this driver profile denotes. Raises
    [Invalid_argument] on non-positive job counts, tenants or rate, or a
    bad procs range. *)

val request_of_job : Rats_workload.Trace.job -> Api.request
(** Converts a compiled workload job to a service request: suite
    applications submit as [Api.Generated], pipeline chains as
    [Api.Inline] task/edge definitions. *)

val trace : profile -> (float * Api.request) list
(** The arrival trace alone (time, request), sorted by time — what {!run}
    submits. Exposed for tests. *)

type report = {
  jobs : int;  (** Jobs submitted. *)
  completed : int;
  rejected : int;
  expired : int;  (** Dropped at their queue-wait deadline. *)
  end_time : float;  (** Simulated completion time of the whole trace. *)
  throughput : float;  (** Completed jobs per simulated second. *)
  sojourn_mean : float;
  sojourn_p50 : float;
  sojourn_p99 : float;
  utilization : float;
  queue_depth_max : int;
}

val run : Engine.t -> profile -> report
(** Submits the trace (rejecting statically invalid requests is a bug —
    the driver only emits valid ones), drains the engine and summarises
    its {!Engine.stats}. The engine should be fresh. *)

val pp_report : Format.formatter -> report -> unit
(** Multi-line human-readable summary. *)
