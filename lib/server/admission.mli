(** Admission control for the online engine.

    Submission-time (static) validation lives in {!Api.validate}; this
    module decides, {e at arrival in simulated time}, whether an already
    well-formed job may enter the waiting queue. The decision depends only
    on queue occupancy — a deterministic function of the arrival trace — so
    replaying a journal reproduces every accept/reject bit-exactly.

    Policy: a bounded global queue ([queue_limit] jobs waiting or running)
    and a per-tenant bound ([tenant_limit] outstanding jobs), protecting
    tenants from each other the way the packing-constrained schedulers of
    Shafiee & Ghaderi cap per-class occupancy (PAPERS.md). Above a
    [shed_watermark] fraction of the queue limit the engine starts load
    shedding: arrivals are rejected [Overloaded] with a [retry_after]
    backoff hint before the hard limit is reached, keeping headroom for
    tenants already below quota. An optional queue-wait [deadline_s]
    bounds how long an admitted job may wait: the engine drops it with an
    [Expired] event when the deadline passes in simulated time. *)

type policy = {
  queue_limit : int;  (** Maximum jobs waiting in the queue (≥ 1). *)
  tenant_limit : int;
      (** Maximum jobs a tenant may have waiting or running (≥ 1). *)
  shed_watermark : float;
      (** Fraction of [queue_limit] (in (0,1]) past which arrivals are
          shed with [Overloaded]; [1.] disables shedding (the hard
          [queue_full] check fires first). *)
  retry_after_s : float;
      (** Base backoff hint (> 0, simulated seconds) carried by
          [Overloaded] rejections, scaled by the watermark overshoot. *)
  deadline_s : float option;
      (** Queue-wait deadline in simulated seconds; [None] disables
          expiry. *)
}

val default : policy
(** [{ queue_limit = 256; tenant_limit = 64; shed_watermark = 1.;
      retry_after_s = 1.; deadline_s = None }] — identical behavior to
    the pre-shedding service. *)

val make :
  ?shed_watermark:float ->
  ?retry_after_s:float ->
  ?deadline_s:float ->
  queue_limit:int ->
  tenant_limit:int ->
  unit ->
  policy
(** Raises [Invalid_argument] on non-positive limits, a watermark outside
    (0,1], or non-positive [retry_after_s]/[deadline_s]. Defaults are
    {!default}'s values. *)

val shed_threshold : policy -> int
(** First queue depth at which arrivals shed,
    [ceil (shed_watermark * queue_limit)] capped at [queue_limit]. *)

type decision = Accept | Reject of Api.reject_reason

val decide :
  policy -> queue_depth:int -> tenant_outstanding:int -> decision
(** [queue_depth] is the waiting-queue depth at arrival;
    [tenant_outstanding] counts the arriving tenant's waiting + running
    jobs. Checked in order: tenant quota (a tenant over quota is rejected
    even when the queue has room), hard queue capacity, then the shed
    watermark. *)
