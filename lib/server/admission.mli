(** Admission control for the online engine.

    Submission-time (static) validation lives in {!Api.validate}; this
    module decides, {e at arrival in simulated time}, whether an already
    well-formed job may enter the waiting queue. The decision depends only
    on queue occupancy — a deterministic function of the arrival trace — so
    replaying a journal reproduces every accept/reject bit-exactly.

    Policy: a bounded global queue ([queue_limit] jobs waiting or running)
    and a per-tenant bound ([tenant_limit] outstanding jobs), protecting
    tenants from each other the way the packing-constrained schedulers of
    Shafiee & Ghaderi cap per-class occupancy (PAPERS.md). *)

type policy = {
  queue_limit : int;  (** Maximum jobs waiting in the queue (≥ 1). *)
  tenant_limit : int;
      (** Maximum jobs a tenant may have waiting or running (≥ 1). *)
}

val default : policy
(** [{ queue_limit = 256; tenant_limit = 64 }]. *)

val make : queue_limit:int -> tenant_limit:int -> policy
(** Raises [Invalid_argument] on non-positive limits. *)

type decision = Accept | Reject of Api.reject_reason

val decide :
  policy -> queue_depth:int -> tenant_outstanding:int -> decision
(** [queue_depth] is the waiting-queue depth at arrival;
    [tenant_outstanding] counts the arriving tenant's waiting + running
    jobs. Tenant quota is checked first (a tenant over quota is rejected
    even when the queue has room). *)
