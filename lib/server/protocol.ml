module J = Rats_obs.Json

type client_msg =
  | Ping
  | Plan of Api.request
  | Submit of { at : float option; request : Api.request }
  | Watch
  | Drain
  | Log
  | Stats
  | Health
  | Shutdown

type server_msg =
  | Pong
  | Ack of { id : int }
  | Placed of J.t
  | Watching
  | Event of Api.stamped
  | Drained of { end_time : float }
  | Log of Api.stamped list
  | Stats of J.t
  | Healthy of J.t
  | Bye
  | Err of string

let tag_of name j =
  match J.member name j with
  | Some (J.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "%S is not a string" name)
  | None -> Error (Printf.sprintf "missing %S tag" name)

let client_to_json = function
  | Ping -> J.Obj [ ("op", J.Str "ping") ]
  | Plan r -> J.Obj [ ("op", J.Str "plan"); ("req", Api.request_to_json r) ]
  | Submit { at; request } ->
      J.Obj
        (("op", J.Str "submit")
        :: (match at with Some a -> [ ("at", J.Num a) ] | None -> [])
        @ [ ("req", Api.request_to_json request) ])
  | Watch -> J.Obj [ ("op", J.Str "watch") ]
  | Drain -> J.Obj [ ("op", J.Str "drain") ]
  | Log -> J.Obj [ ("op", J.Str "log") ]
  | Stats -> J.Obj [ ("op", J.Str "stats") ]
  | Health -> J.Obj [ ("op", J.Str "health") ]
  | Shutdown -> J.Obj [ ("op", J.Str "shutdown") ]

let client_of_json j =
  match tag_of "op" j with
  | Error _ as e -> e
  | Ok op -> (
      match op with
      | "ping" -> Ok Ping
      | "watch" -> Ok Watch
      | "drain" -> Ok Drain
      | "log" -> Ok Log
      | "stats" -> Ok Stats
      | "health" -> Ok Health
      | "shutdown" -> Ok Shutdown
      | "plan" -> (
          match J.member "req" j with
          | None -> Error "plan: missing \"req\""
          | Some r -> (
              match Api.request_of_json r with
              | Ok r -> Ok (Plan r)
              | Error _ as e -> e))
      | "submit" -> (
          match J.member "req" j with
          | None -> Error "submit: missing \"req\""
          | Some r -> (
              match Api.request_of_json r with
              | Error _ as e -> e
              | Ok request -> (
                  match J.member "at" j with
                  | None -> Ok (Submit { at = None; request })
                  | Some a -> (
                      match J.to_float a with
                      | Some at -> Ok (Submit { at = Some at; request })
                      | None -> Error "submit: \"at\" is not a number"))))
      | op -> Error (Printf.sprintf "unknown op %S" op))

let server_to_json = function
  | Pong -> J.Obj [ ("re", J.Str "pong") ]
  | Ack { id } -> J.Obj [ ("re", J.Str "ack"); ("id", J.Num (float_of_int id)) ]
  | Placed resp -> J.Obj [ ("re", J.Str "placed"); ("resp", resp) ]
  | Watching -> J.Obj [ ("re", J.Str "watching") ]
  | Event ev -> J.Obj [ ("re", J.Str "event"); ("ev", Api.stamped_to_json ev) ]
  | Drained { end_time } ->
      J.Obj [ ("re", J.Str "drained"); ("end", J.Num end_time) ]
  | Log evs ->
      J.Obj
        [
          ("re", J.Str "log");
          ("events", J.Arr (List.map Api.stamped_to_json evs));
        ]
  | Stats s -> J.Obj [ ("re", J.Str "stats"); ("stats", s) ]
  | Healthy h -> J.Obj [ ("re", J.Str "health"); ("health", h) ]
  | Bye -> J.Obj [ ("re", J.Str "bye") ]
  | Err msg -> J.Obj [ ("re", J.Str "error"); ("msg", J.Str msg) ]

let server_of_json j =
  match tag_of "re" j with
  | Error _ as e -> e
  | Ok re -> (
      match re with
      | "pong" -> Ok Pong
      | "watching" -> Ok Watching
      | "bye" -> Ok Bye
      | "ack" -> (
          match Option.bind (J.member "id" j) J.to_int with
          | Some id -> Ok (Ack { id })
          | None -> Error "ack: missing integer \"id\"")
      | "placed" -> (
          match J.member "resp" j with
          | Some r -> Ok (Placed r)
          | None -> Error "placed: missing \"resp\"")
      | "event" -> (
          match J.member "ev" j with
          | None -> Error "event: missing \"ev\""
          | Some e -> (
              match Api.stamped_of_json e with
              | Ok ev -> Ok (Event ev)
              | Error _ as e -> e))
      | "drained" -> (
          match Option.bind (J.member "end" j) J.to_float with
          | Some end_time -> Ok (Drained { end_time })
          | None -> Error "drained: missing number \"end\"")
      | "log" -> (
          match Option.bind (J.member "events" j) J.to_list with
          | None -> Error "log: missing \"events\" array"
          | Some l ->
              let rec go acc = function
                | [] -> Ok (Log (List.rev acc))
                | e :: rest -> (
                    match Api.stamped_of_json e with
                    | Ok ev -> go (ev :: acc) rest
                    | Error _ as e -> e)
              in
              go [] l)
      | "stats" -> (
          match J.member "stats" j with
          | Some s -> Ok (Stats s)
          | None -> Error "stats: missing \"stats\"")
      | "health" -> (
          match J.member "health" j with
          | Some h -> Ok (Healthy h)
          | None -> Error "health: missing \"health\"")
      | "error" -> (
          match Option.bind (J.member "msg" j) J.to_str with
          | Some msg -> Ok (Err msg)
          | None -> Error "error: missing string \"msg\"")
      | re -> Error (Printf.sprintf "unknown reply %S" re))

(* --- framing ------------------------------------------------------------ *)

let max_frame = 16 * 1024 * 1024

let to_frame doc =
  let payload = J.to_string doc in
  let n = String.length payload in
  if n > max_frame then
    invalid_arg (Printf.sprintf "Protocol.to_frame: %d-byte payload" n);
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

module Decoder = struct
  type t = {
    mutable buf : Bytes.t;
    mutable len : int;  (* bytes of [buf] filled *)
    mutable pos : int;  (* bytes of [buf] already consumed *)
    mutable failed : string option;
  }

  let create () = { buf = Bytes.create 4096; len = 0; pos = 0; failed = None }

  let available t = t.len - t.pos

  let feed t src pos len =
    if len < 0 || pos < 0 || pos + len > Bytes.length src then
      invalid_arg "Decoder.feed";
    (* Slide consumed bytes out, then grow if needed. *)
    if t.pos > 0 then begin
      Bytes.blit t.buf t.pos t.buf 0 (available t);
      t.len <- available t;
      t.pos <- 0
    end;
    if t.len + len > Bytes.length t.buf then begin
      let cap = ref (max 4096 (2 * Bytes.length t.buf)) in
      while t.len + len > !cap do
        cap := 2 * !cap
      done;
      let b = Bytes.create !cap in
      Bytes.blit t.buf 0 b 0 t.len;
      t.buf <- b
    end;
    Bytes.blit src pos t.buf t.len len;
    t.len <- t.len + len

  let next t =
    match t.failed with
    | Some e -> Error e
    | None ->
        if available t < 4 then Ok None
        else
          let n = Int32.to_int (Bytes.get_int32_be t.buf t.pos) in
          if n < 0 || n > max_frame then begin
            let e = Printf.sprintf "frame length %d out of range" n in
            t.failed <- Some e;
            Error e
          end
          else if available t < 4 + n then Ok None
          else begin
            let payload = Bytes.sub_string t.buf (t.pos + 4) n in
            t.pos <- t.pos + 4 + n;
            match J.parse payload with
            | Ok doc -> Ok (Some doc)
            | Error e ->
                let e = "bad frame payload: " ^ e in
                t.failed <- Some e;
                Error e
          end
end
