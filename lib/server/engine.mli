(** The online scheduling engine: admission, queueing, dispatch and shared
    simulation, in simulated time.

    One engine owns one platform and one {!Rats_sim.Engine}. Submissions
    ({!submit}) are timestamped arrivals; {!drain} injects every pending
    arrival into the simulation and runs it dry. At its arrival instant a
    job is validated against the {!Admission} policy, queued
    (FIFO-within-tenant, first-fit backfill — {!Jobq}), scheduled with its
    requested strategy against a processor share carved from the free set,
    and replayed on the shared engine ({!Replay}), where its
    redistributions contend with every other running job's. Each step emits
    a typed, stamped {!Api.event}.

    {b Determinism.} The event log is a pure function of the arrival trace
    (the multiset of [(at, request)] pairs with their submission ids):
    pending arrivals are sorted by [(at, tenant, id)] before injection,
    same-instant callbacks run in injection order, dispatch grants
    processors in queue order from the sorted free set, and schedule
    computation ([Pool.map]) is deterministic by index regardless of the
    [jobs] setting. Two runs of the same trace — or a journaled run killed
    and resumed ({!resume}) — produce byte-identical event logs.

    {b Clock.} The engine never reads the wall clock itself; the injected
    [clock] is used only to time schedule computation for the
    [rats_server_schedule_seconds] histogram. Simulated time comes from the
    simulation engine alone. *)

type config = {
  cluster : Rats_platform.Cluster.t;
  policy : Admission.policy;
  jobs : int option;
      (** Worker count for batch schedule computation ([Pool.map ?jobs]);
          [None] = pool default. Never affects results. *)
  clock : unit -> float;
      (** Wall clock for scheduling-latency metrics only
          (e.g. {!Rats_obs.Instr.now_s}). *)
  fault : Rats_runtime.Fault.t option;
      (** Arms the engine's injection sites (["engine.step"] before each
          dispatch batch, ["replay.task"] per task finish — both [Delay],
          wall-clock only) and is passed to {!Replay.start}. [None]
          disables injection; delay faults never change the event log. *)
  planner :
    (cluster:Rats_platform.Cluster.t ->
     Api.request ->
     Rats_core.Schedule.t)
    option;
      (** Per-job planning hook, called with the job's granted share
          exactly where {!Api.plan} would run (inside the dispatch batch's
          [Pool.map]). [None] = {!Api.plan} with the request's own
          strategy. Study runners use it to pin every job of an arm to one
          scheduler (including non-RATS planners such as the
          packing-constrained greedy baseline) without rewriting the
          trace. Must be deterministic for the event-log guarantee to
          hold. *)
}

val default_config : Rats_platform.Cluster.t -> config
(** {!Admission.default}, pool-default [jobs], {!Rats_obs.Instr.now_s},
    no fault injection, no planner override. *)

type t

val create : ?journal:Rats_runtime.Journal.t -> config -> t
(** A fresh engine at simulated time 0 with every processor free. When
    [journal] is given, every accepted submission is appended to it before
    {!submit} returns (the engine does not close the journal). *)

val cluster : t -> Rats_platform.Cluster.t
val now : t -> float
(** Current simulated time. *)

val free_procs : t -> int
val queue_depth : t -> int

val submit : t -> ?at:float -> Api.request -> (int, string) result
(** Registers an arrival at simulated time [at] (clamped up to {!now};
    default {!now}) and returns its submission id. Static validation
    ({!Api.validate}) happens here, synchronously — a malformed request is
    an [Error] and leaves no trace in journal or event log. Admission
    (capacity) is decided later, at the arrival instant inside the
    simulation, so rejections are events and replay identically on resume.
    The resolved arrival time is journaled, so resumed runs see the same
    trace. *)

val resume : t -> int
(** Re-registers the submissions recorded in the engine's journal (in
    submission-id order, without re-journaling them) and returns how many
    were loaded. Call on a fresh engine opened with [resume:true], before
    any new {!submit}. *)

val drain : t -> float
(** Sorts pending arrivals by [(at, tenant, id)], injects them and runs the
    simulation until nothing remains — every admitted job has completed.
    Returns the final simulated time. May be called repeatedly; new
    submissions between drains arrive no earlier than the previous drain's
    end. *)

val subscribe : t -> (Api.stamped -> unit) -> unit
(** Registers an observer called synchronously at every event emission, in
    subscription order, after the event is logged. *)

val events : t -> Api.stamped list
(** Everything emitted so far, in emission (= [seq]) order. *)

(** {2 Service-level statistics} *)

type stats = {
  submitted : int;
  admitted : int;
  rejected : int;
  completed : int;
  expired : int;
      (** Jobs dropped at their queue-wait deadline
          ([policy.deadline_s]). *)
  queue_depth_max : int;
  busy_time : float;
      (** Processor-seconds granted to completed jobs (grant size × hold
          time). *)
  end_time : float;  (** Simulated time of the last drain's end. *)
  utilization : float;
      (** [busy_time / (n_procs × end_time)]; 0 before any drain. *)
  sojourns : float array;  (** Per completed job, completion order. *)
}

val stats : t -> stats
