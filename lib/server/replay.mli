(** Schedule replay on a {e shared} simulation engine.

    {!Rats_core.Evaluate} replays one schedule on a private engine; the
    online service instead replays many jobs' schedules concurrently on one
    engine over the real platform, so their redistributions contend for NIC
    and uplink bandwidth — the multi-tenant effect the batch pipeline
    cannot show. The state machine is the same work-conserving discipline
    as [Evaluate] (a task starts when all inputs have arrived and all its
    processors are free, acquired atomically; freed processors offer
    themselves to their assigned tasks in mapper order); the differences
    are:

    - the schedule's processor ids are {e share-local} ([0 .. k-1]) and are
      mapped onto the granted platform-global processor set, so flows cross
      the real topology (and, on hierarchical clusters, the real uplinks);
    - execution starts at the current simulated time, not 0;
    - progress is reported through callbacks instead of a result record,
      because completion happens inside the shared event loop. *)

type result = {
  start_time : float;  (** Simulated time the replay was started. *)
  finish_time : float;  (** Simulated time the last task finished. *)
  remote_bytes : float;
  local_bytes : float;
  redistributions : int;  (** Paid (partially remote) redistributions. *)
  avoided : int;  (** Data-carrying edges served entirely locally. *)
}

val start :
  Rats_sim.Engine.t ->
  schedule:Rats_core.Schedule.t ->
  grant:Rats_util.Procset.t ->
  ?fault:Rats_runtime.Fault.t ->
  ?fault_key:string ->
  ?on_redistribution:
    (src_task:int -> dst_task:int -> bytes:float -> started:float -> unit) ->
  on_complete:(result -> unit) ->
  unit ->
  unit
(** Launches the schedule on the engine now. [grant] must have exactly the
    schedule's processor count (raises [Invalid_argument] otherwise); the
    schedule's local processor [q] runs on [Procset.nth grant q].
    [on_redistribution] fires when a paid redistribution's last byte
    arrives (the engine's current time is the finish). [on_complete] fires
    when every task has finished — the caller releases the grant there.

    [fault] arms the ["replay.task"] [Delay] site: each task finish may
    stall the {e wall clock} for the injected duration, keyed
    ["<fault_key>:<task>"] ([fault_key] should identify the job, e.g. its
    submission id). Simulated time is untouched, so the event log stays
    byte-identical to an unfaulted run. *)
