module Suite = Rats_daggen.Suite
module Shape = Rats_daggen.Shape
module Cluster = Rats_platform.Cluster
module Topology = Rats_platform.Topology
module Dag = Rats_dag.Dag
module Task = Rats_dag.Task
module Core = Rats_core
module Procset = Rats_util.Procset
module J = Rats_obs.Json

type task_def = { data_elements : float; flop : float; alpha : float }
type edge_def = { src : int; dst : int; bytes : float }

type job_spec =
  | Generated of Suite.config
  | Inline of { name : string; tasks : task_def array; edges : edge_def list }

let spec_name = function
  | Generated c -> Suite.name c
  | Inline { name; _ } -> name

let dag_of_spec = function
  | Generated c -> Suite.generate c
  | Inline { tasks; edges; _ } ->
      if Array.length tasks = 0 then
        invalid_arg "Api.dag_of_spec: inline DAG has no tasks";
      let b = Dag.Builder.create () in
      Array.iteri
        (fun id t ->
          Dag.Builder.add_task b
            (Task.make ~id
               ~name:(Printf.sprintf "t%d" id)
               ~data_elements:t.data_elements ~flop:t.flop ~alpha:t.alpha))
        tasks;
      List.iter
        (fun e -> Dag.Builder.add_edge b ~src:e.src ~dst:e.dst ~bytes:e.bytes)
        edges;
      Dag.ensure_single_entry_exit (Dag.Builder.build b)

type request = {
  tenant : string;
  job : job_spec;
  strategy : Core.Rats.strategy;
  procs : int;
}

let resolve_procs ~n_procs procs =
  if procs = 0 then Ok n_procs
  else if procs < 0 then Error "procs must be non-negative"
  else if procs > n_procs then
    Error
      (Printf.sprintf "requested %d processors but the platform has %d" procs
         n_procs)
  else Ok procs

let validate ~n_procs r =
  if r.tenant = "" then Error "empty tenant id"
  else
    match resolve_procs ~n_procs r.procs with
    | Error _ as e -> e
    | Ok k -> (
        match dag_of_spec r.job with
        | (_ : Dag.t) -> Ok k
        | exception (Invalid_argument msg | Failure msg) ->
            Error ("malformed DAG: " ^ msg))

(* --- scheduling --------------------------------------------------------- *)

let subcluster c k =
  if k = Cluster.n_procs c then c
  else
    Cluster.make
      ~name:(Printf.sprintf "%s#%d" c.Cluster.name k)
      ~topology:(Topology.Flat k)
      ~speed_gflops:(c.Cluster.speed /. Rats_util.Units.gflops 1.)
      ~node_link:c.Cluster.node_link ~uplink:c.Cluster.uplink
      ~tcp_wmax:c.Cluster.tcp_wmax ()

let prepare ~cluster spec =
  let dag = dag_of_spec spec in
  let problem = Core.Problem.make ~dag ~cluster in
  let alloc = Core.Hcpa.allocate problem in
  (problem, alloc)

type placement = {
  task : int;
  procs : int list;
  est_start : float;
  est_finish : float;
}

type response = {
  job_name : string;
  strategy : string;
  n_procs : int;
  est_makespan : float;
  total_work : float;
  placements : placement array;
}

let plan ~cluster ?alloc r =
  let problem, hcpa = prepare ~cluster r.job in
  let alloc = match alloc with Some a -> a | None -> hcpa in
  Core.Rats.schedule ~alloc problem r.strategy

let response_of_schedule ~job_name ~strategy schedule =
  let placements =
    Array.map
      (fun e ->
        {
          task = e.Core.Schedule.task;
          procs = Procset.to_list e.Core.Schedule.procs;
          est_start = e.Core.Schedule.est_start;
          est_finish = e.Core.Schedule.est_finish;
        })
      (Core.Schedule.entries schedule)
  in
  {
    job_name;
    strategy;
    n_procs = Core.Problem.n_procs (Core.Schedule.problem schedule);
    est_makespan = Core.Schedule.makespan_estimated schedule;
    total_work = Core.Schedule.total_work schedule;
    placements;
  }

let run_local ~cluster r =
  match validate ~n_procs:(Cluster.n_procs cluster) r with
  | Error msg -> invalid_arg ("Api.run_local: " ^ msg)
  | Ok k ->
      let share = subcluster cluster k in
      let schedule = plan ~cluster:share r in
      let response =
        response_of_schedule ~job_name:(spec_name r.job)
          ~strategy:(Core.Rats.strategy_name r.strategy)
          schedule
      in
      (response, Core.Evaluate.run schedule)

(* --- events ------------------------------------------------------------- *)

type reject_reason =
  | Queue_full
  | Tenant_quota
  | Overloaded of { retry_after : float }

let reject_reason_name = function
  | Queue_full -> "queue_full"
  | Tenant_quota -> "tenant_quota"
  | Overloaded _ -> "overloaded"

type event =
  | Submitted of { procs : int; strategy : string; spec : string }
  | Admitted
  | Queued of { depth : int }
  | Started of { procs : int list; est_makespan : float }
  | Redistribution of {
      src_task : int;
      dst_task : int;
      bytes : float;
      started : float;
    }
  | Completed of {
      makespan : float;
      sojourn : float;
      waited : float;
      remote_bytes : float;
      redistributions : int;
      avoided : int;
    }
  | Rejected of { reason : reject_reason }
  | Expired of { waited : float }

type stamped = {
  t : float;
  seq : int;
  job_id : int;
  tenant : string;
  job_name : string;
  event : event;
}

(* --- JSON helpers ------------------------------------------------------- *)

let num x = J.Num x
let int n = J.Num (float_of_int n)

let field name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let str_field name j =
  Result.bind (field name j) (fun v ->
      match J.to_str v with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "field %S is not a string" name))

let num_field name j =
  Result.bind (field name j) (fun v ->
      match J.to_float v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S is not a number" name))

let int_field name j =
  Result.bind (field name j) (fun v ->
      match J.to_int v with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "field %S is not an integer" name))

let bool_field name j =
  Result.bind (field name j) (fun v ->
      match v with
      | J.Bool b -> Ok b
      | _ -> Error (Printf.sprintf "field %S is not a boolean" name))

let list_field name j =
  Result.bind (field name j) (fun v ->
      match J.to_list v with
      | Some l -> Ok l
      | None -> Error (Printf.sprintf "field %S is not an array" name))

let ( let* ) = Result.bind

(* --- strategy codec ----------------------------------------------------- *)

let strategy_to_json = function
  | Core.Rats.Baseline -> J.Obj [ ("algo", J.Str "hcpa") ]
  | Core.Rats.Delta { mindelta; maxdelta } ->
      J.Obj
        [
          ("algo", J.Str "delta");
          ("mindelta", num mindelta);
          ("maxdelta", num maxdelta);
        ]
  | Core.Rats.Timecost { minrho; packing } ->
      J.Obj
        [
          ("algo", J.Str "timecost");
          ("minrho", num minrho);
          ("packing", J.Bool packing);
        ]

let strategy_of_json j =
  let* algo = str_field "algo" j in
  match algo with
  | "hcpa" -> Ok Core.Rats.Baseline
  | "delta" ->
      let* mindelta = num_field "mindelta" j in
      let* maxdelta = num_field "maxdelta" j in
      Ok (Core.Rats.Delta { mindelta; maxdelta })
  | "timecost" ->
      let* minrho = num_field "minrho" j in
      let* packing = bool_field "packing" j in
      Ok (Core.Rats.Timecost { minrho; packing })
  | other -> Error (Printf.sprintf "unknown algo %S" other)

(* --- job spec codec ----------------------------------------------------- *)

let shape_fields (s : Shape.t) =
  [
    ("width", num s.Shape.width);
    ("density", num s.Shape.density);
    ("regularity", num s.Shape.regularity);
    ("jump", int s.Shape.jump);
  ]

let shape_of_json j =
  let* width = num_field "width" j in
  let* density = num_field "density" j in
  let* regularity = num_field "regularity" j in
  let* jump = int_field "jump" j in
  match Shape.make ~width ~regularity ~density ~jump () with
  | s -> Ok s
  | exception Invalid_argument msg -> Error msg

let job_spec_to_json = function
  | Generated { spec = Suite.Layered { n_tasks; shape }; sample } ->
      J.Obj
        (("kind", J.Str "layered") :: ("n", int n_tasks)
        :: shape_fields shape
        @ [ ("sample", int sample) ])
  | Generated { spec = Suite.Irregular { n_tasks; shape }; sample } ->
      J.Obj
        (("kind", J.Str "irregular") :: ("n", int n_tasks)
        :: shape_fields shape
        @ [ ("sample", int sample) ])
  | Generated { spec = Suite.Fft { k }; sample } ->
      J.Obj [ ("kind", J.Str "fft"); ("k", int k); ("sample", int sample) ]
  | Generated { spec = Suite.Strassen; sample } ->
      J.Obj [ ("kind", J.Str "strassen"); ("sample", int sample) ]
  | Inline { name; tasks; edges } ->
      J.Obj
        [
          ("kind", J.Str "inline");
          ("name", J.Str name);
          ( "tasks",
            J.Arr
              (Array.to_list
                 (Array.map
                    (fun t ->
                      J.Obj
                        [
                          ("data", num t.data_elements);
                          ("flop", num t.flop);
                          ("alpha", num t.alpha);
                        ])
                    tasks)) );
          ( "edges",
            J.Arr
              (List.map
                 (fun e -> J.Arr [ int e.src; int e.dst; num e.bytes ])
                 edges) );
        ]

let job_spec_of_json j =
  let* kind = str_field "kind" j in
  match kind with
  | "layered" | "irregular" ->
      let* n_tasks = int_field "n" j in
      let* shape = shape_of_json j in
      let* sample = int_field "sample" j in
      let spec =
        if kind = "layered" then Suite.Layered { n_tasks; shape }
        else Suite.Irregular { n_tasks; shape }
      in
      Ok (Generated { Suite.spec; sample })
  | "fft" ->
      let* k = int_field "k" j in
      let* sample = int_field "sample" j in
      Ok (Generated { Suite.spec = Suite.Fft { k }; sample })
  | "strassen" ->
      let* sample = int_field "sample" j in
      Ok (Generated { Suite.spec = Suite.Strassen; sample })
  | "inline" ->
      let* name = str_field "name" j in
      let* tasks = list_field "tasks" j in
      let* edges = list_field "edges" j in
      let* tasks =
        List.fold_left
          (fun acc tj ->
            let* acc = acc in
            let* data_elements = num_field "data" tj in
            let* flop = num_field "flop" tj in
            let* alpha = num_field "alpha" tj in
            Ok ({ data_elements; flop; alpha } :: acc))
          (Ok []) tasks
      in
      let* edges =
        List.fold_left
          (fun acc ej ->
            let* acc = acc in
            match J.to_list ej with
            | Some [ s; d; b ] -> (
                match (J.to_int s, J.to_int d, J.to_float b) with
                | Some src, Some dst, Some bytes ->
                    Ok ({ src; dst; bytes } :: acc)
                | _ -> Error "edge entries must be [src, dst, bytes]")
            | _ -> Error "edge entries must be [src, dst, bytes]")
          (Ok []) edges
      in
      Ok
        (Inline
           {
             name;
             tasks = Array.of_list (List.rev tasks);
             edges = List.rev edges;
           })
  | other -> Error (Printf.sprintf "unknown job kind %S" other)

(* --- request / response codecs ------------------------------------------ *)

let request_to_json (r : request) =
  J.Obj
    [
      ("tenant", J.Str r.tenant);
      ("job", job_spec_to_json r.job);
      ("strategy", strategy_to_json r.strategy);
      ("procs", int r.procs);
    ]

let request_of_json j =
  let* tenant = str_field "tenant" j in
  let* job = Result.bind (field "job" j) job_spec_of_json in
  let* strategy = Result.bind (field "strategy" j) strategy_of_json in
  let* procs = int_field "procs" j in
  Ok { tenant; job; strategy; procs }

let response_to_json (r : response) =
  J.Obj
    [
      ("job_name", J.Str r.job_name);
      ("strategy", J.Str r.strategy);
      ("n_procs", int r.n_procs);
      ("est_makespan", num r.est_makespan);
      ("total_work", num r.total_work);
      ( "placements",
        J.Arr
          (Array.to_list
             (Array.map
                (fun p ->
                  J.Obj
                    [
                      ("task", int p.task);
                      ("procs", J.Arr (List.map int p.procs));
                      ("est_start", num p.est_start);
                      ("est_finish", num p.est_finish);
                    ])
                r.placements)) );
    ]

(* --- event codec -------------------------------------------------------- *)

let event_fields = function
  | Submitted { procs; strategy; spec } ->
      [
        ("ev", J.Str "submitted");
        ("procs", int procs);
        ("strategy", J.Str strategy);
        ("spec", J.Str spec);
      ]
  | Admitted -> [ ("ev", J.Str "admitted") ]
  | Queued { depth } -> [ ("ev", J.Str "queued"); ("depth", int depth) ]
  | Started { procs; est_makespan } ->
      [
        ("ev", J.Str "started");
        ("procs", J.Arr (List.map int procs));
        ("est_makespan", num est_makespan);
      ]
  | Redistribution { src_task; dst_task; bytes; started } ->
      [
        ("ev", J.Str "redistribution");
        ("src", int src_task);
        ("dst", int dst_task);
        ("bytes", num bytes);
        ("started", num started);
      ]
  | Completed { makespan; sojourn; waited; remote_bytes; redistributions;
                avoided } ->
      [
        ("ev", J.Str "completed");
        ("makespan", num makespan);
        ("sojourn", num sojourn);
        ("waited", num waited);
        ("remote_bytes", num remote_bytes);
        ("redistributions", int redistributions);
        ("avoided", int avoided);
      ]
  | Rejected { reason } ->
      ("ev", J.Str "rejected")
      :: ("reason", J.Str (reject_reason_name reason))
      :: (match reason with
         | Overloaded { retry_after } -> [ ("retry_after", num retry_after) ]
         | Queue_full | Tenant_quota -> [])
  | Expired { waited } -> [ ("ev", J.Str "expired"); ("waited", num waited) ]

let event_of_json j =
  let* ev = str_field "ev" j in
  match ev with
  | "submitted" ->
      let* procs = int_field "procs" j in
      let* strategy = str_field "strategy" j in
      let* spec = str_field "spec" j in
      Ok (Submitted { procs; strategy; spec })
  | "admitted" -> Ok Admitted
  | "queued" ->
      let* depth = int_field "depth" j in
      Ok (Queued { depth })
  | "started" ->
      let* procs = list_field "procs" j in
      let* procs =
        List.fold_left
          (fun acc p ->
            let* acc = acc in
            match J.to_int p with
            | Some p -> Ok (p :: acc)
            | None -> Error "proc ids must be integers")
          (Ok []) procs
      in
      let* est_makespan = num_field "est_makespan" j in
      Ok (Started { procs = List.rev procs; est_makespan })
  | "redistribution" ->
      let* src_task = int_field "src" j in
      let* dst_task = int_field "dst" j in
      let* bytes = num_field "bytes" j in
      let* started = num_field "started" j in
      Ok (Redistribution { src_task; dst_task; bytes; started })
  | "completed" ->
      let* makespan = num_field "makespan" j in
      let* sojourn = num_field "sojourn" j in
      let* waited = num_field "waited" j in
      let* remote_bytes = num_field "remote_bytes" j in
      let* redistributions = int_field "redistributions" j in
      let* avoided = int_field "avoided" j in
      Ok
        (Completed
           { makespan; sojourn; waited; remote_bytes; redistributions; avoided })
  | "rejected" -> (
      let* reason = str_field "reason" j in
      match reason with
      | "queue_full" -> Ok (Rejected { reason = Queue_full })
      | "tenant_quota" -> Ok (Rejected { reason = Tenant_quota })
      | "overloaded" ->
          let* retry_after = num_field "retry_after" j in
          Ok (Rejected { reason = Overloaded { retry_after } })
      | other -> Error (Printf.sprintf "unknown reject reason %S" other))
  | "expired" ->
      let* waited = num_field "waited" j in
      Ok (Expired { waited })
  | other -> Error (Printf.sprintf "unknown event %S" other)

let stamped_to_json s =
  J.Obj
    ([
       ("t", num s.t);
       ("seq", int s.seq);
       ("job", int s.job_id);
       ("tenant", J.Str s.tenant);
       ("name", J.Str s.job_name);
     ]
    @ event_fields s.event)

let stamped_of_json j =
  let* t = num_field "t" j in
  let* seq = int_field "seq" j in
  let* job_id = int_field "job" j in
  let* tenant = str_field "tenant" j in
  let* job_name = str_field "name" j in
  let* event = event_of_json j in
  Ok { t; seq; job_id; tenant; job_name; event }

let pp_stamped ppf s =
  let pp_event ppf = function
    | Submitted { procs; strategy; spec } ->
        Format.fprintf ppf "submitted %s on %d procs (%s)" spec procs strategy
    | Admitted -> Format.pp_print_string ppf "admitted"
    | Queued { depth } -> Format.fprintf ppf "queued (depth %d)" depth
    | Started { procs; est_makespan } ->
        Format.fprintf ppf "started on %d procs (est makespan %.2fs)"
          (List.length procs) est_makespan
    | Redistribution { src_task; dst_task; bytes; started } ->
        Format.fprintf ppf "redistribution %d->%d %a (started %.2fs)" src_task
          dst_task Rats_util.Units.pp_bytes bytes started
    | Completed { makespan; sojourn; waited; _ } ->
        Format.fprintf ppf
          "completed: makespan %.2fs, sojourn %.2fs (waited %.2fs)" makespan
          sojourn waited
    | Rejected { reason = Overloaded { retry_after } } ->
        Format.fprintf ppf "rejected (overloaded, retry after %.2fs)"
          retry_after
    | Rejected { reason } ->
        Format.fprintf ppf "rejected (%s)" (reject_reason_name reason)
    | Expired { waited } ->
        Format.fprintf ppf "expired after waiting %.2fs in queue" waited
  in
  Format.fprintf ppf "[%10.2f] #%d %s/%s: %a" s.t s.job_id s.tenant s.job_name
    pp_event s.event
