(** [ratsd]'s wire protocol: length-prefixed JSON frames over a stream.

    A frame is a 4-byte big-endian payload length followed by that many
    bytes of UTF-8 JSON (one {!Rats_obs.Json.t} document). Length prefixing
    makes framing independent of JSON whitespace and keeps the decoder a
    trivial state machine; payloads are capped at {!max_frame} so a
    corrupt or hostile length cannot make the daemon allocate unboundedly.

    The conversation is strictly client-initiated: each {!client_msg} gets
    at least one {!server_msg} reply; [Watch] additionally subscribes the
    connection to the event stream, after which [Event] frames arrive
    interleaved with later replies (each frame is self-describing, so
    clients demultiplex on the ["re"] tag). See docs/SERVER.md for the
    frame-by-frame specification. *)

type client_msg =
  | Ping
  | Plan of Api.request
      (** Pure submit-DAG → get-schedule: no admission, no queue, no
          simulated execution. Replied to with [Placed]. *)
  | Submit of { at : float option; request : Api.request }
      (** Register an arrival (default: the engine's current simulated
          time). Replied to with [Ack] or [Err]. *)
  | Watch  (** Subscribe this connection to the event stream. *)
  | Drain  (** Run the simulation until every pending job completed. *)
  | Log  (** Full event log so far. *)
  | Stats  (** Engine statistics snapshot. *)
  | Health
      (** Daemon liveness/readiness snapshot ([Healthy]): degraded flag,
          client/backlog/eviction counts. Served even when degraded. *)
  | Shutdown  (** Replied to with [Bye]; the daemon then exits. *)

type server_msg =
  | Pong
  | Ack of { id : int }  (** Submission id. *)
  | Placed of Rats_obs.Json.t  (** An {!Api.response}, as JSON. *)
  | Watching
  | Event of Api.stamped
  | Drained of { end_time : float }
  | Log of Api.stamped list
  | Stats of Rats_obs.Json.t
  | Healthy of Rats_obs.Json.t
      (** Health snapshot, shape documented in docs/SERVER.md. *)
  | Bye
  | Err of string

val client_to_json : client_msg -> Rats_obs.Json.t
val client_of_json : Rats_obs.Json.t -> (client_msg, string) result
val server_to_json : server_msg -> Rats_obs.Json.t
val server_of_json : Rats_obs.Json.t -> (server_msg, string) result

(** {2 Framing} *)

val max_frame : int
(** 16 MiB. *)

val to_frame : Rats_obs.Json.t -> string
(** Length prefix + payload, ready to write. Raises [Invalid_argument] if
    the payload exceeds {!max_frame}. *)

(** Incremental frame decoder: feed arbitrary byte chunks, pop complete
    documents. Framing or JSON errors are sticky — the stream has lost
    sync, so the connection must be dropped. *)
module Decoder : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> int -> int -> unit
  (** [feed d buf pos len] appends [len] bytes of [buf] from [pos]. *)

  val next : t -> (Rats_obs.Json.t option, string) result
  (** [Ok None] = incomplete frame (feed more); [Ok (Some doc)] = one
      decoded frame, call again. [Error _] = malformed stream. *)
end
