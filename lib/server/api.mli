(** The pure submit-DAG → get-schedule API of the scheduling service.

    This module is the service's vocabulary, extracted from the batch
    pipeline so the daemon, the client, the online engine and the
    experiment runner all speak the same types: a {!request} names a DAG
    (either a deterministic generator configuration of the paper's suite or
    an inline task/edge listing), a platform share, a scheduling strategy
    and a tenant; a {!response} is the resulting placement; {!event}s are
    what the online engine streams back per job. Everything round-trips
    through {!Rats_obs.Json} (the wire format of [ratsd]'s length-prefixed
    protocol, see docs/SERVER.md) with floats rendered exactly, so event
    logs can be diffed bit-for-bit across runs and resumes.

    Scheduling itself ({!prepare}, {!plan}, {!run_local}) is a thin, pure
    composition of the existing pipeline — {!Rats_core.Problem.make},
    {!Rats_core.Hcpa.allocate}, {!Rats_core.Rats.schedule} — over the
    requested processor share. *)

module Suite := Rats_daggen.Suite
module Cluster := Rats_platform.Cluster

(** {2 Requests} *)

type task_def = { data_elements : float; flop : float; alpha : float }
(** One inline moldable task ({!Rats_dag.Task} parameters). *)

type edge_def = { src : int; dst : int; bytes : float }

type job_spec =
  | Generated of Suite.config
      (** A configuration of the paper's application suite — deterministic:
          the DAG is regenerated from its seeded name on every run. *)
  | Inline of { name : string; tasks : task_def array; edges : edge_def list }
      (** An explicit DAG, e.g. read from a [--dag] JSON file. It is passed
          through {!Rats_dag.Dag.ensure_single_entry_exit}. *)

val spec_name : job_spec -> string
(** Stable human-readable identifier ({!Suite.name} or the inline name). *)

val dag_of_spec : job_spec -> Rats_dag.Dag.t
(** Raises [Invalid_argument] (or [Failure] on a cyclic inline graph) when
    the spec is malformed; {!validate} reports the same errors as [Error]. *)

type request = {
  tenant : string;
  job : job_spec;
  strategy : Rats_core.Rats.strategy;
  procs : int;  (** Requested processor share; [0] means the whole platform. *)
}

val resolve_procs : n_procs:int -> int -> (int, string) result
(** Resolves the share against the platform: [0 → n_procs]; out-of-range
    values are errors. *)

val validate : n_procs:int -> request -> (int, string) result
(** Static (submission-time) validation: share in range, tenant non-empty,
    spec well-formed. Returns the resolved processor count. *)

(** {2 Scheduling} *)

val subcluster : Cluster.t -> int -> Cluster.t
(** [subcluster c k] is the flat [k]-processor platform with [c]'s node
    speed and link parameters — the share a job schedules against. When
    [k = n_procs c] it is [c] itself (bit-compatible with the batch
    pipeline). Hierarchical platforms are approximated as flat shares; the
    shared simulation still routes flows through the real topology. *)

val prepare : cluster:Cluster.t -> job_spec -> Rats_core.Problem.t * int array
(** DAG generation, problem construction and HCPA allocation — the shared
    first step of every strategy (also used by {!Rats_exp.Runner}). *)

type placement = {
  task : int;
  procs : int list;  (** Processor ids, ascending (share-local). *)
  est_start : float;
  est_finish : float;
}

type response = {
  job_name : string;
  strategy : string;
  n_procs : int;  (** Size of the share scheduled against. *)
  est_makespan : float;
  total_work : float;
  placements : placement array;
}

val plan :
  cluster:Cluster.t -> ?alloc:int array -> request -> Rats_core.Schedule.t
(** The pure submit-DAG → get-schedule function on [request.procs]
    processors of [cluster] (which must already be the share, see
    {!subcluster}). *)

val response_of_schedule :
  job_name:string -> strategy:string -> Rats_core.Schedule.t -> response

val run_local :
  cluster:Cluster.t -> request -> response * Rats_core.Evaluate.result
(** One-shot offline path: resolve the share, schedule, then replay the
    schedule alone on it ({!Rats_core.Evaluate.run}) — no daemon, no
    contention with other jobs. *)

(** {2 Events} *)

type reject_reason =
  | Queue_full
  | Tenant_quota
  | Overloaded of { retry_after : float }
      (** Load shed above the admission watermark; [retry_after] is a
          simulated-seconds backoff hint scaled by how far past the
          watermark the queue is. *)

val reject_reason_name : reject_reason -> string

type event =
  | Submitted of { procs : int; strategy : string; spec : string }
  | Admitted
  | Queued of { depth : int }  (** Waiting-queue depth after enqueue. *)
  | Started of { procs : int list; est_makespan : float }
      (** [procs] are platform-global processor ids of the granted share. *)
  | Redistribution of {
      src_task : int;
      dst_task : int;
      bytes : float;  (** Remote bytes of the redistribution. *)
      started : float;
    }  (** Emitted when the last byte arrives; the stamp is the finish. *)
  | Completed of {
      makespan : float;
      sojourn : float;  (** Completion − arrival (simulated). *)
      waited : float;  (** Start − arrival (simulated). *)
      remote_bytes : float;
      redistributions : int;
      avoided : int;
    }
  | Rejected of { reason : reject_reason }
  | Expired of { waited : float }
      (** Dropped from the queue at its simulated queue-wait deadline,
          having waited [waited] seconds without starting. *)

type stamped = {
  t : float;  (** Simulated time of the event. *)
  seq : int;  (** Global emission order — the deterministic tie-break. *)
  job_id : int;
  tenant : string;
  job_name : string;
  event : event;
}

(** {2 JSON codecs}

    Floats are rendered with ["%.17g"] via {!Rats_obs.Json.to_string}, so
    encoding is injective on the values the engine produces and two event
    logs are equal iff their JSON dumps are byte-identical. *)

val strategy_to_json : Rats_core.Rats.strategy -> Rats_obs.Json.t
val strategy_of_json : Rats_obs.Json.t -> (Rats_core.Rats.strategy, string) result

val job_spec_to_json : job_spec -> Rats_obs.Json.t
val job_spec_of_json : Rats_obs.Json.t -> (job_spec, string) result

val request_to_json : request -> Rats_obs.Json.t
val request_of_json : Rats_obs.Json.t -> (request, string) result

val response_to_json : response -> Rats_obs.Json.t

val stamped_to_json : stamped -> Rats_obs.Json.t
val stamped_of_json : Rats_obs.Json.t -> (stamped, string) result

val pp_stamped : Format.formatter -> stamped -> unit
(** One-line human rendering, used by [rats_client]'s pretty printer. *)
