module Cluster = Rats_platform.Cluster
module Procset = Rats_util.Procset
module Sim = Rats_sim.Engine
module Journal = Rats_runtime.Journal
module Pool = Rats_runtime.Pool
module Fault = Rats_runtime.Fault
module Schedule = Rats_core.Schedule
module Rats = Rats_core.Rats
module J = Rats_obs.Json
module Metrics = Rats_obs.Metrics
module Instr = Rats_obs.Instr

type config = {
  cluster : Cluster.t;
  policy : Admission.policy;
  jobs : int option;
  clock : unit -> float;
  fault : Fault.t option;
  planner : (cluster:Cluster.t -> Api.request -> Schedule.t) option;
}

let default_config cluster =
  {
    cluster;
    policy = Admission.default;
    jobs = None;
    clock = Instr.now_s;
    fault = None;
    planner = None;
  }

type job = {
  id : int;
  request : Api.request;
  n_procs : int;  (* resolved share size *)
  name : string;
  strategy : string;
  arrival : float;
}

type stats = {
  submitted : int;
  admitted : int;
  rejected : int;
  completed : int;
  expired : int;
  queue_depth_max : int;
  busy_time : float;
  end_time : float;
  utilization : float;
  sojourns : float array;
}

type t = {
  config : config;
  sim : Sim.t;
  journal : Journal.t option;
  mutable free : Procset.t;
  queue : job Jobq.t;
  outstanding : (string, int) Hashtbl.t;  (* tenant -> queued + running *)
  mutable pending : (float * job) list;  (* submitted, not yet injected *)
  mutable next_id : int;
  mutable next_seq : int;
  mutable rev_events : Api.stamped list;
  mutable subscribers : (Api.stamped -> unit) list;
  (* statistics *)
  mutable n_submitted : int;
  mutable n_admitted : int;
  mutable n_rejected : int;
  mutable n_completed : int;
  mutable n_expired : int;
  mutable queue_depth_max : int;
  mutable busy_time : float;
  mutable end_time : float;
  mutable rev_sojourns : float list;
}

let create ?journal config =
  {
    config;
    sim = Sim.create config.cluster;
    journal;
    free = Procset.range 0 (Cluster.n_procs config.cluster);
    queue = Jobq.create ();
    outstanding = Hashtbl.create 16;
    pending = [];
    next_id = 0;
    next_seq = 0;
    rev_events = [];
    subscribers = [];
    n_submitted = 0;
    n_admitted = 0;
    n_rejected = 0;
    n_completed = 0;
    n_expired = 0;
    queue_depth_max = 0;
    busy_time = 0.;
    end_time = 0.;
    rev_sojourns = [];
  }

let cluster t = t.config.cluster
let now t = Sim.now t.sim
let free_procs t = Procset.size t.free
let queue_depth t = Jobq.depth t.queue

let subscribe t f = t.subscribers <- t.subscribers @ [ f ]
let events t = List.rev t.rev_events

let outstanding_of t tenant =
  Option.value (Hashtbl.find_opt t.outstanding tenant) ~default:0

let adjust_outstanding t tenant d =
  Hashtbl.replace t.outstanding tenant (outstanding_of t tenant + d)

let emit t job event =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let stamped =
    {
      Api.t = Sim.now t.sim;
      seq;
      job_id = job.id;
      tenant = job.request.Api.tenant;
      job_name = job.name;
      event;
    }
  in
  t.rev_events <- stamped :: t.rev_events;
  List.iter (fun f -> f stamped) t.subscribers

let note_queue_depth t =
  let d = Jobq.depth t.queue in
  if d > t.queue_depth_max then t.queue_depth_max <- d;
  Metrics.set Instr.server_queue_depth (float_of_int d);
  Metrics.observe_max Instr.server_queue_depth_max (float_of_int d)

(* --- dispatch ----------------------------------------------------------- *)

let rec start_job t job grant schedule =
  emit t job
    (Api.Started
       {
         procs = Procset.to_list grant;
         est_makespan = Schedule.makespan_estimated schedule;
       });
  Replay.start t.sim ~schedule ~grant ?fault:t.config.fault
    ~fault_key:(string_of_int job.id)
    ~on_redistribution:(fun ~src_task ~dst_task ~bytes ~started ->
      emit t job (Api.Redistribution { src_task; dst_task; bytes; started }))
    ~on_complete:(fun (r : Replay.result) ->
      t.free <- Procset.union t.free grant;
      adjust_outstanding t job.request.Api.tenant (-1);
      t.n_completed <- t.n_completed + 1;
      Metrics.incr Instr.server_jobs_completed;
      let sojourn = r.finish_time -. job.arrival in
      t.rev_sojourns <- sojourn :: t.rev_sojourns;
      t.busy_time <-
        t.busy_time +. (float_of_int job.n_procs *. (r.finish_time -. r.start_time));
      Metrics.observe Instr.server_sojourn_seconds sojourn;
      emit t job
        (Api.Completed
           {
             makespan = r.finish_time -. r.start_time;
             sojourn;
             waited = r.start_time -. job.arrival;
             remote_bytes = r.remote_bytes;
             redistributions = r.redistributions;
             avoided = r.avoided;
           });
      dispatch t)
    ()

and dispatch t =
  (* Pop everything that fits right now, granting the lowest free
     processors in queue order, then compute the batch's schedules in the
     pool (deterministic by index) and start the replays in grant order. *)
  let rec take acc =
    match Jobq.pop t.queue ~fits:(fun j -> j.n_procs <= Procset.size t.free) with
    | None -> List.rev acc
    | Some job ->
        let grant = Procset.first_n t.free job.n_procs in
        t.free <- Procset.diff t.free grant;
        take ((job, grant) :: acc)
  in
  let batch = take [] in
  if batch <> [] then begin
    (* Wall-clock stall before the batch's schedules are computed;
       simulated time and the event log are unaffected. *)
    Fault.delay_point t.config.fault ~site:"engine.step"
      ~key:(string_of_int t.next_seq);
    note_queue_depth t;
    let t0 = t.config.clock () in
    let schedules =
      Pool.map ?jobs:t.config.jobs
        (fun (job, grant) ->
          let share = Api.subcluster t.config.cluster (Procset.size grant) in
          match t.config.planner with
          | Some plan -> plan ~cluster:share job.request
          | None -> Api.plan ~cluster:share job.request)
        batch
    in
    Metrics.observe Instr.server_schedule_seconds (t.config.clock () -. t0);
    List.iter2
      (fun (job, grant) schedule -> start_job t job grant schedule)
      batch schedules
  end

and expire t id =
  (* Only fires if the job is still waiting: a started (or already
     expired) job is no longer in the queue and the timer is a no-op. *)
  match Jobq.remove t.queue ~f:(fun j -> j.id = id) with
  | None -> ()
  | Some job ->
      adjust_outstanding t job.request.Api.tenant (-1);
      t.n_expired <- t.n_expired + 1;
      Metrics.incr Instr.server_jobs_expired;
      emit t job (Api.Expired { waited = Sim.now t.sim -. job.arrival });
      note_queue_depth t;
      (* Dropping a queued job can unblock a younger same-tenant job the
         FIFO lockout was holding back. *)
      dispatch t

(* --- arrivals ----------------------------------------------------------- *)

let arrive t job =
  t.n_submitted <- t.n_submitted + 1;
  Metrics.incr Instr.server_jobs_submitted;
  emit t job
    (Api.Submitted
       { procs = job.n_procs; strategy = job.strategy; spec = job.name });
  match
    Admission.decide t.config.policy ~queue_depth:(Jobq.depth t.queue)
      ~tenant_outstanding:(outstanding_of t job.request.Api.tenant)
  with
  | Admission.Reject reason ->
      t.n_rejected <- t.n_rejected + 1;
      Metrics.incr Instr.server_jobs_rejected;
      emit t job (Api.Rejected { reason })
  | Admission.Accept ->
      t.n_admitted <- t.n_admitted + 1;
      Metrics.incr Instr.server_jobs_admitted;
      adjust_outstanding t job.request.Api.tenant 1;
      emit t job Api.Admitted;
      Jobq.push t.queue ~tenant:job.request.Api.tenant job;
      emit t job (Api.Queued { depth = Jobq.depth t.queue });
      note_queue_depth t;
      (match t.config.policy.Admission.deadline_s with
      | Some d ->
          let id = job.id in
          Sim.at t.sim (Sim.now t.sim +. d) (fun _eng -> expire t id)
      | None -> ());
      dispatch t

(* --- submission --------------------------------------------------------- *)

let journal_key id = Printf.sprintf "sub-%08d" id

let submission_to_json ~at request =
  J.Obj [ ("at", J.Num at); ("req", Api.request_to_json request) ]

let submission_of_json j =
  match (J.member "at" j, J.member "req" j) with
  | Some at_j, Some req_j -> (
      match (J.to_float at_j, Api.request_of_json req_j) with
      | Some at, Ok req -> Ok (at, req)
      | None, _ -> Error "submission: \"at\" is not a number"
      | _, (Error _ as e) -> e)
  | _ -> Error "submission: missing \"at\" or \"req\""

let register t ~at ~id request ~n_procs =
  let job =
    {
      id;
      request;
      n_procs;
      name = Api.spec_name request.Api.job;
      strategy = Rats.strategy_name request.Api.strategy;
      arrival = at;
    }
  in
  t.pending <- (at, job) :: t.pending

let submit t ?at request =
  match Api.validate ~n_procs:(Cluster.n_procs t.config.cluster) request with
  | Error _ as e -> e
  | Ok n_procs ->
      let now = Sim.now t.sim in
      let at =
        match at with Some a when a > now -> a | Some _ | None -> now
      in
      let id = t.next_id in
      t.next_id <- id + 1;
      (match t.journal with
      | Some j ->
          Journal.append j ~key:(journal_key id)
            (J.to_string (submission_to_json ~at request))
      | None -> ());
      register t ~at ~id request ~n_procs;
      Ok id

let resume t =
  match t.journal with
  | None -> 0
  | Some j ->
      let rec go id =
        match Journal.find j (journal_key id) with
        | None -> id
        | Some payload ->
            (match J.parse payload with
            | Error e ->
                failwith
                  (Printf.sprintf "ratsd journal: unparseable record %s: %s"
                     (journal_key id) e)
            | Ok json -> (
                match submission_of_json json with
                | Error e ->
                    failwith
                      (Printf.sprintf "ratsd journal: bad record %s: %s"
                         (journal_key id) e)
                | Ok (at, request) -> (
                    match
                      Api.validate
                        ~n_procs:(Cluster.n_procs t.config.cluster)
                        request
                    with
                    | Error e ->
                        failwith
                          (Printf.sprintf
                             "ratsd journal: record %s no longer valid: %s"
                             (journal_key id) e)
                    | Ok n_procs ->
                        register t ~at ~id request ~n_procs;
                        t.next_id <- id + 1)));
            go (id + 1)
      in
      go 0

(* --- running ------------------------------------------------------------ *)

let drain t =
  let pending =
    List.sort
      (fun (a1, j1) (a2, j2) ->
        compare (a1, j1.request.Api.tenant, j1.id) (a2, j2.request.Api.tenant, j2.id))
      t.pending
  in
  t.pending <- [];
  List.iter
    (fun (at, job) -> Sim.at t.sim at (fun _eng -> arrive t job))
    pending;
  let end_time = Sim.run t.sim in
  t.end_time <- end_time;
  end_time

let stats t =
  let n_procs = Cluster.n_procs t.config.cluster in
  {
    submitted = t.n_submitted;
    admitted = t.n_admitted;
    rejected = t.n_rejected;
    completed = t.n_completed;
    expired = t.n_expired;
    queue_depth_max = t.queue_depth_max;
    busy_time = t.busy_time;
    end_time = t.end_time;
    utilization =
      (if t.end_time > 0. then
         t.busy_time /. (float_of_int n_procs *. t.end_time)
       else 0.);
    sojourns = Array.of_list (List.rev t.rev_sojourns);
  }
