(* Arrival-ordered list; O(n) pops are fine at service queue depths (the
   admission policy bounds n). *)

type 'a entry = { tenant : string; item : 'a }
type 'a t = { mutable entries : 'a entry list (* reversed: newest first *) }

let create () = { entries = [] }

let push t ~tenant item = t.entries <- { tenant; item } :: t.entries

let depth t = List.length t.entries

let tenant_depth t tenant =
  List.length (List.filter (fun e -> e.tenant = tenant) t.entries)

let pop t ~fits =
  let ordered = List.rev t.entries in
  (* Scan in arrival order; once a tenant's job has been skipped, its later
     jobs are locked out of this pop (FIFO within tenant). *)
  let rec go blocked before = function
    | [] -> None
    | e :: rest ->
        if (not (List.mem e.tenant blocked)) && fits e.item then begin
          (* Arrival order without [e] is [rev before @ rest]; stored
             newest-first that is [rev rest @ before]. *)
          t.entries <- List.rev_append rest before;
          Some e.item
        end
        else go (e.tenant :: blocked) (e :: before) rest
  in
  go [] [] ordered

let remove t ~f =
  let ordered = List.rev t.entries in
  let rec go before = function
    | [] -> None
    | e :: rest ->
        if f e.item then begin
          t.entries <- List.rev_append rest before;
          Some e.item
        end
        else go (e :: before) rest
  in
  go [] ordered

let iter f t =
  List.iter (fun e -> f ~tenant:e.tenant e.item) (List.rev t.entries)
