module Rng = Rats_util.Rng
module Stats = Rats_util.Stats
module Cluster = Rats_platform.Cluster
module Suite = Rats_daggen.Suite
module Shape = Rats_daggen.Shape
module Rats = Rats_core.Rats

type profile = {
  n_jobs : int;
  n_tenants : int;
  rate : float;
  seed : int;
  strategy : Rats.strategy;
  procs_min : int;
  procs_max : int;
}

let default_profile cluster =
  let n = Cluster.n_procs cluster in
  {
    n_jobs = 120;
    n_tenants = 4;
    rate = 0.05;
    seed = 42;
    strategy = Rats.Delta Rats.naive_delta;
    procs_min = max 1 (n / 4);
    procs_max = n;
  }

(* Small configurations only: the driver's point is service dynamics, not
   giant DAGs. *)
let spec_pool =
  [|
    Suite.Layered
      {
        n_tasks = 25;
        shape = Shape.make ~width:0.5 ~regularity:0.8 ~density:0.2 ();
      };
    Suite.Layered
      {
        n_tasks = 25;
        shape = Shape.make ~width:0.2 ~regularity:0.2 ~density:0.8 ();
      };
    Suite.Irregular
      {
        n_tasks = 25;
        shape = Shape.make ~width:0.5 ~regularity:0.2 ~density:0.2 ~jump:2 ();
      };
    Suite.Fft { k = 2 };
    Suite.Strassen;
  |]

let validate p =
  if p.n_jobs < 1 then invalid_arg "Load: n_jobs < 1";
  if p.n_tenants < 1 then invalid_arg "Load: n_tenants < 1";
  if p.rate <= 0. then invalid_arg "Load: rate <= 0";
  if p.procs_min < 1 || p.procs_max < p.procs_min then
    invalid_arg "Load: bad procs range"

let trace p =
  validate p;
  let per_tenant_rate = p.rate /. float_of_int p.n_tenants in
  let arrivals = ref [] in
  for tenant = 0 to p.n_tenants - 1 do
    (* Per-tenant stream: adding tenants never perturbs existing ones. *)
    let rng = Rng.create (p.seed + (7919 * tenant)) in
    let tenant_name = Printf.sprintf "tenant-%d" tenant in
    (* Tenant [i] submits every [n_tenants]-th job of the total. *)
    let jobs =
      (p.n_jobs / p.n_tenants)
      + if tenant < p.n_jobs mod p.n_tenants then 1 else 0
    in
    let t = ref 0. in
    for i = 0 to jobs - 1 do
      let u = Rng.float rng 1. in
      t := !t +. (-.log (1. -. u) /. per_tenant_rate);
      let spec = spec_pool.(Rng.int rng (Array.length spec_pool)) in
      let sample = Rng.int_range rng 0 2 in
      let procs = Rng.int_range rng p.procs_min p.procs_max in
      let request =
        {
          Api.tenant = tenant_name;
          job = Api.Generated { Suite.spec; sample };
          strategy = p.strategy;
          procs;
        }
      in
      ignore i;
      arrivals := (!t, request) :: !arrivals
    done
  done;
  List.sort
    (fun ((t1 : float), (r1 : Api.request)) (t2, (r2 : Api.request)) ->
      compare (t1, r1.Api.tenant) (t2, r2.Api.tenant))
    !arrivals

type report = {
  jobs : int;
  completed : int;
  rejected : int;
  expired : int;
  end_time : float;
  throughput : float;
  sojourn_mean : float;
  sojourn_p50 : float;
  sojourn_p99 : float;
  utilization : float;
  queue_depth_max : int;
}

let run engine p =
  let arrivals = trace p in
  List.iter
    (fun (at, request) ->
      match Engine.submit engine ~at request with
      | Ok (_ : int) -> ()
      | Error e -> invalid_arg ("Load.run: generated invalid request: " ^ e))
    arrivals;
  let end_time = Engine.drain engine in
  let s = Engine.stats engine in
  {
    jobs = s.Engine.submitted;
    completed = s.Engine.completed;
    rejected = s.Engine.rejected;
    expired = s.Engine.expired;
    end_time;
    throughput =
      (if end_time > 0. then float_of_int s.Engine.completed /. end_time
       else 0.);
    sojourn_mean = Stats.mean s.Engine.sojourns;
    sojourn_p50 = Stats.percentile s.Engine.sojourns 50.;
    sojourn_p99 = Stats.percentile s.Engine.sojourns 99.;
    utilization = s.Engine.utilization;
    queue_depth_max = s.Engine.queue_depth_max;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>jobs submitted     %d@,\
     jobs completed     %d@,\
     jobs rejected      %d@,\
     jobs expired       %d@,\
     end of trace       %.2f s (simulated)@,\
     throughput         %.4f jobs/s@,\
     sojourn mean       %.2f s@,\
     sojourn p50        %.2f s@,\
     sojourn p99        %.2f s@,\
     utilization        %.1f%%@,\
     peak queue depth   %d@]"
    r.jobs r.completed r.rejected r.expired r.end_time r.throughput
    r.sojourn_mean r.sojourn_p50 r.sojourn_p99 (100. *. r.utilization)
    r.queue_depth_max
