module Stats = Rats_util.Stats
module Cluster = Rats_platform.Cluster
module Rats = Rats_core.Rats
module W_app = Rats_workload.App
module W_profile = Rats_workload.Profile
module W_trace = Rats_workload.Trace

type profile = {
  n_jobs : int;
  n_tenants : int;
  rate : float;
  seed : int;
  strategy : Rats.strategy;
  procs_min : int;
  procs_max : int;
}

let default_profile cluster =
  let n = Cluster.n_procs cluster in
  {
    n_jobs = 120;
    n_tenants = 4;
    rate = 0.05;
    seed = 42;
    strategy = Rats.Delta Rats.naive_delta;
    procs_min = max 1 (n / 4);
    procs_max = n;
  }

let validate p =
  if p.n_jobs < 1 then invalid_arg "Load: n_jobs < 1";
  if p.n_tenants < 1 then invalid_arg "Load: n_tenants < 1";
  if p.rate <= 0. then invalid_arg "Load: rate <= 0";
  if p.procs_min < 1 || p.procs_max < p.procs_min then
    invalid_arg "Load: bad procs range"

let workload_profile p =
  validate p;
  W_profile.service ~n_jobs:p.n_jobs ~n_tenants:p.n_tenants ~rate:p.rate
    ~seed:p.seed ~strategy:p.strategy ~procs_min:p.procs_min
    ~procs_max:p.procs_max ()

let request_of_job (job : W_trace.job) =
  let spec =
    match job.W_trace.app with
    | W_app.Generated config -> Api.Generated config
    | W_app.Chain p ->
        let tasks =
          Array.map
            (fun (data_elements, flop, alpha) ->
              { Api.data_elements; flop; alpha })
            (W_app.pipeline_task_params p)
        in
        let edges =
          List.map
            (fun (src, dst, bytes) -> { Api.src; dst; bytes })
            (W_app.pipeline_edges p)
        in
        Api.Inline { name = W_app.name job.W_trace.app; tasks; edges }
  in
  {
    Api.tenant = job.W_trace.tenant;
    job = spec;
    strategy = job.W_trace.strategy;
    procs = job.W_trace.procs;
  }

let trace p =
  let jobs = W_trace.compile (workload_profile p) in
  Array.to_list
    (Array.map (fun job -> (job.W_trace.at, request_of_job job)) jobs)

type report = {
  jobs : int;
  completed : int;
  rejected : int;
  expired : int;
  end_time : float;
  throughput : float;
  sojourn_mean : float;
  sojourn_p50 : float;
  sojourn_p99 : float;
  utilization : float;
  queue_depth_max : int;
}

let run engine p =
  let arrivals = trace p in
  List.iter
    (fun (at, request) ->
      match Engine.submit engine ~at request with
      | Ok (_ : int) -> ()
      | Error e -> invalid_arg ("Load.run: generated invalid request: " ^ e))
    arrivals;
  let end_time = Engine.drain engine in
  let s = Engine.stats engine in
  {
    jobs = s.Engine.submitted;
    completed = s.Engine.completed;
    rejected = s.Engine.rejected;
    expired = s.Engine.expired;
    end_time;
    throughput =
      (if end_time > 0. then float_of_int s.Engine.completed /. end_time
       else 0.);
    sojourn_mean = Stats.mean s.Engine.sojourns;
    sojourn_p50 = Stats.percentile s.Engine.sojourns 50.;
    sojourn_p99 = Stats.percentile s.Engine.sojourns 99.;
    utilization = s.Engine.utilization;
    queue_depth_max = s.Engine.queue_depth_max;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>jobs submitted     %d@,\
     jobs completed     %d@,\
     jobs rejected      %d@,\
     jobs expired       %d@,\
     end of trace       %.2f s (simulated)@,\
     throughput         %.4f jobs/s@,\
     sojourn mean       %.2f s@,\
     sojourn p50        %.2f s@,\
     sojourn p99        %.2f s@,\
     utilization        %.1f%%@,\
     peak queue depth   %d@]"
    r.jobs r.completed r.rejected r.expired r.end_time r.throughput
    r.sojourn_mean r.sojourn_p50 r.sojourn_p99 (100. *. r.utilization)
    r.queue_depth_max
