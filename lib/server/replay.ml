module Procset = Rats_util.Procset
module Dag = Rats_dag.Dag
module Engine = Rats_sim.Engine
module Redistribution = Rats_redist.Redistribution
module Core = Rats_core
module Schedule = Rats_core.Schedule
module Problem = Rats_core.Problem
module Fault = Rats_runtime.Fault

type result = {
  start_time : float;
  finish_time : float;
  remote_bytes : float;
  local_bytes : float;
  redistributions : int;
  avoided : int;
}

(* Mirror of [Rats_core.Evaluate]'s work-conserving replay (same decision
   order, same event causality), with share-local processor indices and a
   shared engine. Kept in lock-step with that module — when the replay
   discipline changes there, change it here. *)
type state = {
  schedule : Schedule.t;
  grant : int array;  (* local processor q runs on global grant.(q) *)
  start_time : float;
  queues : int array array;  (* per local processor: tasks, mapper order *)
  busy : bool array;  (* per local processor *)
  pending_inputs : int array;
  started : bool array;
  finished : bool array;
  mutable n_finished : int;
  mutable remote_bytes : float;
  mutable local_bytes : float;
  mutable redistributions : int;
  mutable avoided : int;
  on_redistribution :
    src_task:int -> dst_task:int -> bytes:float -> started:float -> unit;
  on_complete : result -> unit;
  fault : Fault.t option;
  fault_key : string;
}

let build_queues schedule =
  let problem = Schedule.problem schedule in
  let p = Problem.n_procs problem in
  let per_proc = Array.make p [] in
  Array.iter
    (fun e ->
      Procset.iter
        (fun q -> per_proc.(q) <- e.Schedule.task :: per_proc.(q))
        e.Schedule.procs)
    (Schedule.entries schedule);
  Array.map
    (fun tasks ->
      let arr = Array.of_list tasks in
      let key t =
        let e = Schedule.entry schedule t in
        (e.Schedule.est_start, e.Schedule.seq)
      in
      Array.sort (fun a b -> compare (key a) (key b)) arr;
      arr)
    per_proc

let procs_free st procs =
  Procset.fold (fun q ok -> ok && not st.busy.(q)) procs true

let rec try_start st eng task =
  let e = Schedule.entry st.schedule task in
  if
    (not st.started.(task))
    && st.pending_inputs.(task) = 0
    && procs_free st e.Schedule.procs
  then begin
    st.started.(task) <- true;
    Procset.iter (fun q -> st.busy.(q) <- true) e.Schedule.procs;
    let problem = Schedule.problem st.schedule in
    let duration =
      Problem.task_time problem task ~procs:(Procset.size e.Schedule.procs)
    in
    Engine.after eng duration (fun eng -> on_finish st eng task)
  end

and try_start_on_proc st eng q =
  (* First eligible assigned task of the processor, in mapper order. *)
  let queue = st.queues.(q) in
  let rec go k =
    if k < Array.length queue && not st.busy.(q) then begin
      let t = queue.(k) in
      if not st.started.(t) then try_start st eng t;
      go (k + 1)
    end
  in
  go 0

and on_finish st eng task =
  (* Wall-clock stall only: simulated time (and thus the event log) is
     untouched, which is what makes delay faults byte-identity-safe. *)
  Fault.delay_point st.fault ~site:"replay.task"
    ~key:(Printf.sprintf "%s:%d" st.fault_key task);
  st.finished.(task) <- true;
  st.n_finished <- st.n_finished + 1;
  let e = Schedule.entry st.schedule task in
  Procset.iter (fun q -> st.busy.(q) <- false) e.Schedule.procs;
  let problem = Schedule.problem st.schedule in
  let dag = Problem.dag problem in
  List.iter
    (fun (succ, bytes) ->
      let se = Schedule.entry st.schedule succ in
      let arrival eng =
        st.pending_inputs.(succ) <- st.pending_inputs.(succ) - 1;
        try_start st eng succ
      in
      if bytes <= 0. then Engine.at eng (Engine.now eng) arrival
      else begin
        let plan =
          Redistribution.plan ~sender:e.Schedule.procs
            ~receiver:se.Schedule.procs ~bytes ()
        in
        let remote = List.filter (fun t -> t.Redistribution.src <> t.dst) plan in
        st.remote_bytes <- st.remote_bytes +. Redistribution.remote_bytes plan;
        st.local_bytes <- st.local_bytes +. Redistribution.local_bytes plan;
        if remote = [] then begin
          st.avoided <- st.avoided + 1;
          Engine.at eng (Engine.now eng) arrival
        end
        else begin
          st.redistributions <- st.redistributions + 1;
          let span_start = Engine.now eng in
          let span_bytes = Redistribution.remote_bytes plan in
          let outstanding = ref (List.length remote) in
          List.iter
            (fun tr ->
              (* Local → platform-global endpoints: the flow crosses the
                 real topology. *)
              Engine.start_flow eng ~src:st.grant.(tr.Redistribution.src)
                ~dst:st.grant.(tr.Redistribution.dst)
                ~bytes:tr.Redistribution.bytes
                ~on_complete:(fun eng ->
                  decr outstanding;
                  if !outstanding = 0 then begin
                    st.on_redistribution ~src_task:task ~dst_task:succ
                      ~bytes:span_bytes ~started:span_start;
                    arrival eng
                  end))
            remote
        end
      end)
    (Dag.succs dag task);
  Procset.iter (fun q -> try_start_on_proc st eng q) e.Schedule.procs;
  if st.n_finished = Schedule.n_tasks st.schedule then begin
    Problem.publish_metrics problem;
    st.on_complete
      {
        start_time = st.start_time;
        finish_time = Engine.now eng;
        remote_bytes = st.remote_bytes;
        local_bytes = st.local_bytes;
        redistributions = st.redistributions;
        avoided = st.avoided;
      }
  end

let start eng ~schedule ~grant ?fault ?(fault_key = "")
    ?(on_redistribution = fun ~src_task:_ ~dst_task:_ ~bytes:_ ~started:_ -> ())
    ~on_complete () =
  let problem = Schedule.problem schedule in
  let k = Problem.n_procs problem in
  if Procset.size grant <> k then
    invalid_arg
      (Printf.sprintf "Replay.start: schedule wants %d processors, grant has %d"
         k (Procset.size grant));
  let n = Schedule.n_tasks schedule in
  let dag = Problem.dag problem in
  let st =
    {
      schedule;
      grant = Procset.to_array grant;
      start_time = Engine.now eng;
      queues = build_queues schedule;
      busy = Array.make k false;
      pending_inputs = Array.init n (fun i -> List.length (Dag.preds dag i));
      started = Array.make n false;
      finished = Array.make n false;
      n_finished = 0;
      remote_bytes = 0.;
      local_bytes = 0.;
      redistributions = 0;
      avoided = 0;
      on_redistribution;
      on_complete;
      fault;
      fault_key;
    }
  in
  (* Kick through the event queue (not inline) so start ordering between
     jobs granted at the same instant follows grant order, like
     [Evaluate]'s time-0 kick. *)
  Engine.at eng (Engine.now eng) (fun eng ->
      for q = 0 to k - 1 do
        try_start_on_proc st eng q
      done)
