type policy = {
  queue_limit : int;
  tenant_limit : int;
  shed_watermark : float;
  retry_after_s : float;
  deadline_s : float option;
}

let default =
  {
    queue_limit = 256;
    tenant_limit = 64;
    shed_watermark = 1.;
    retry_after_s = 1.;
    deadline_s = None;
  }

let make ?(shed_watermark = 1.) ?(retry_after_s = 1.) ?deadline_s ~queue_limit
    ~tenant_limit () =
  if queue_limit < 1 then invalid_arg "Admission.make: queue_limit < 1";
  if tenant_limit < 1 then invalid_arg "Admission.make: tenant_limit < 1";
  if not (shed_watermark > 0. && shed_watermark <= 1.) then
    invalid_arg "Admission.make: shed_watermark not in (0,1]";
  if retry_after_s <= 0. then
    invalid_arg "Admission.make: retry_after_s <= 0";
  (match deadline_s with
  | Some d when d <= 0. -> invalid_arg "Admission.make: deadline_s <= 0"
  | _ -> ());
  { queue_limit; tenant_limit; shed_watermark; retry_after_s; deadline_s }

(* First queue depth that sheds. watermark = 1 makes this queue_limit, so
   the shed check can never fire before the hard queue_full check. *)
let shed_threshold policy =
  min policy.queue_limit
    (int_of_float (ceil (policy.shed_watermark *. float_of_int policy.queue_limit)))

type decision = Accept | Reject of Api.reject_reason

let decide policy ~queue_depth ~tenant_outstanding =
  if tenant_outstanding >= policy.tenant_limit then
    Reject Api.Tenant_quota
  else if queue_depth >= policy.queue_limit then Reject Api.Queue_full
  else
    let threshold = shed_threshold policy in
    if queue_depth >= threshold then
      (* Backoff hint grows linearly with the overshoot: the deeper past
         the watermark, the longer clients are told to stay away. *)
      let overshoot = queue_depth - threshold + 1 in
      Reject
        (Api.Overloaded
           { retry_after = policy.retry_after_s *. float_of_int overshoot })
    else Accept
