type policy = { queue_limit : int; tenant_limit : int }

let default = { queue_limit = 256; tenant_limit = 64 }

let make ~queue_limit ~tenant_limit =
  if queue_limit < 1 then invalid_arg "Admission.make: queue_limit < 1";
  if tenant_limit < 1 then invalid_arg "Admission.make: tenant_limit < 1";
  { queue_limit; tenant_limit }

type decision = Accept | Reject of Api.reject_reason

let decide policy ~queue_depth ~tenant_outstanding =
  if tenant_outstanding >= policy.tenant_limit then
    Reject Api.Tenant_quota
  else if queue_depth >= policy.queue_limit then Reject Api.Queue_full
  else Accept
