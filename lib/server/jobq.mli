(** The waiting queue of admitted jobs.

    Jobs are held in arrival order. Dispatch ({!pop}) scans the queue
    front-to-back and returns the first job that (a) fits the current
    residual platform and (b) belongs to a tenant none of whose earlier
    jobs are still waiting — i.e. {e first-fit backfill across tenants,
    strict FIFO within a tenant}. A small job from tenant B may overtake a
    large blocked job from tenant A (keeping utilization up), but B's own
    jobs never reorder. Entirely deterministic: the outcome is a function
    of queue contents and the [fits] predicate. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> tenant:string -> 'a -> unit
(** Appends at the tail. *)

val depth : 'a t -> int

val tenant_depth : 'a t -> string -> int
(** Waiting jobs of one tenant. *)

val pop : 'a t -> fits:('a -> bool) -> 'a option
(** Removes and returns the first eligible job (see above), or [None] when
    no waiting job is eligible. Callers loop — re-evaluating [fits] against
    the shrinking residual platform — until [None]. *)

val remove : 'a t -> f:('a -> bool) -> 'a option
(** Removes and returns the first (oldest) job satisfying [f], preserving
    the order of the rest — deadline expiry uses this to drop a job
    without disturbing the queue. *)

val iter : (tenant:string -> 'a -> unit) -> 'a t -> unit
(** Front-to-back, for introspection. *)
