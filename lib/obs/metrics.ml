type counter = { c_help : string; count : int Atomic.t }
type gauge = { g_help : string; value : float Atomic.t }

(* 32 log-2 buckets from 1µs up, plus one overflow slot at the end. *)
let n_buckets = 32
let smallest_bucket_s = 1e-6

type histogram = {
  h_help : string;
  buckets : int Atomic.t array;  (* length n_buckets + 1; last = overflow *)
  sum : float Atomic.t;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let counter ?(help = "") name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (C c) -> c
      | Some _ -> invalid_arg ("Metrics: " ^ name ^ " is not a counter")
      | None ->
          let c = { c_help = help; count = Atomic.make 0 } in
          Hashtbl.add registry name (C c);
          c)

let incr c = Atomic.incr c.count
let add c n = ignore (Atomic.fetch_and_add c.count n)
let counter_value c = Atomic.get c.count

let gauge ?(help = "") name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (G g) -> g
      | Some _ -> invalid_arg ("Metrics: " ^ name ^ " is not a gauge")
      | None ->
          let g = { g_help = help; value = Atomic.make 0. } in
          Hashtbl.add registry name (G g);
          g)

let set g v = Atomic.set g.value v

let rec observe_max g v =
  let cur = Atomic.get g.value in
  if v > cur && not (Atomic.compare_and_set g.value cur v) then observe_max g v

let gauge_value g = Atomic.get g.value

let histogram ?(help = "") name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (H h) -> h
      | Some _ -> invalid_arg ("Metrics: " ^ name ^ " is not a histogram")
      | None ->
          let h =
            {
              h_help = help;
              buckets = Array.init (n_buckets + 1) (fun _ -> Atomic.make 0);
              sum = Atomic.make 0.;
            }
          in
          Hashtbl.add registry name (H h);
          h)

let bucket_upper i =
  if i >= n_buckets then infinity
  else smallest_bucket_s *. Float.of_int (1 lsl i)

let bucket_index v =
  if v <= smallest_bucket_s then 0
  else
    let i = int_of_float (Float.ceil (Float.log2 (v /. smallest_bucket_s))) in
    if i >= n_buckets then n_buckets else i

let rec atomic_add_float a x =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. x)) then atomic_add_float a x

let observe h v =
  Atomic.incr h.buckets.(bucket_index v);
  atomic_add_float h.sum v

let hist_count h =
  Array.fold_left (fun acc b -> acc + Atomic.get b) 0 h.buckets

let hist_sum h = Atomic.get h.sum

let bucket_counts h =
  Array.to_list (Array.mapi (fun i b -> (bucket_upper i, Atomic.get b)) h.buckets)

(* --- export ------------------------------------------------------------- *)

let sorted_metrics () =
  with_registry (fun () ->
      Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot () =
  let metrics = sorted_metrics () in
  let counters =
    List.filter_map
      (function
        | name, C c -> Some (name, Json.Num (float_of_int (counter_value c)))
        | _ -> None)
      metrics
  in
  let gauges =
    List.filter_map
      (function name, G g -> Some (name, Json.Num (gauge_value g)) | _ -> None)
      metrics
  in
  let histograms =
    List.filter_map
      (function
        | name, H h ->
            let buckets =
              List.filter_map
                (fun (ub, c) ->
                  (* Empty buckets are noise in a 33-bucket layout; the
                     boundaries are recomputable from the index. *)
                  if c = 0 then None
                  else
                    Some
                      (Json.Obj
                         [
                           ( "le",
                             if ub = infinity then Json.Str "+Inf"
                             else Json.Num ub );
                           ("count", Json.Num (float_of_int c));
                         ]))
                (bucket_counts h)
            in
            Some
              ( name,
                Json.Obj
                  [
                    ("count", Json.Num (float_of_int (hist_count h)));
                    ("sum", Json.Num (hist_sum h));
                    ("buckets", Json.Arr buckets);
                  ] )
        | _ -> None)
      metrics
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
    ]

let to_json () = Json.to_string (snapshot ())

let prom_float v =
  if v = infinity then "+Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let to_prometheus () =
  let buf = Buffer.create 4096 in
  let header name help kind =
    if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun (name, m) ->
      match m with
      | C c ->
          header name c.c_help "counter";
          Buffer.add_string buf (Printf.sprintf "%s %d\n" name (counter_value c))
      | G g ->
          header name g.g_help "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" name (prom_float (gauge_value g)))
      | H h ->
          header name h.h_help "histogram";
          let cumulative = ref 0 in
          List.iter
            (fun (ub, c) ->
              cumulative := !cumulative + c;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (prom_float ub)
                   !cumulative))
            (bucket_counts h);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" name (prom_float (hist_sum h)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count %d\n" name (hist_count h)))
    (sorted_metrics ());
  Buffer.contents buf

let write_file path content =
  let dir = Filename.dirname path in
  let tmp, oc =
    Filename.open_temp_file ~mode:[ Open_binary ] ~temp_dir:dir "metrics" ".tmp"
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content);
  Sys.rename tmp path

let write_json path = write_file path (to_json ())
let write_prometheus path = write_file path (to_prometheus ())

let reset () =
  List.iter
    (fun (_, m) ->
      match m with
      | C c -> Atomic.set c.count 0
      | G g -> Atomic.set g.value 0.
      | H h ->
          Array.iter (fun b -> Atomic.set b 0) h.buckets;
          Atomic.set h.sum 0.)
    (sorted_metrics ())
