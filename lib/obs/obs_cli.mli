(** Shared command-line wiring for tracing and metrics export.

    All three binaries ([bench/main.exe], [bin/experiments.exe],
    [bin/rats_run.exe]) accept [--trace FILE] / [--metrics FILE]; the
    [RATS_TRACE] / [RATS_METRICS] environment variables supply the paths
    when the flags are absent. {!configure} installs the process tracer if
    a trace is requested; {!finalize} writes the requested files once, at
    the end of the run. With neither flag nor variable set both calls are
    no-ops and the nil-sink path stays active. *)

val configure : ?trace:string -> ?metrics:string -> unit -> unit
(** [configure ?trace ?metrics ()] resolves each destination from the
    argument first, the environment second ([RATS_TRACE], [RATS_METRICS];
    empty values disable). Installs a {!Trace} tracer iff a trace path is
    resolved, and registers {!finalize} with [at_exit] whenever any
    destination is resolved, so even [exit 1] paths flush the files. *)

val trace_path : unit -> string option
val metrics_path : unit -> string option

val finalize : unit -> unit
(** Writes the trace (Chrome JSON) and the metrics snapshot to their
    configured paths, creating parent directories as needed. The metrics
    format follows the extension: [.json] → JSON snapshot, anything else →
    Prometheus text. Idempotent; a second call rewrites the same files. *)
