(** Span-based tracing with per-domain buffers and Chrome trace-event
    export.

    A tracer collects {e spans} (named intervals, possibly nested) and
    {e instant events}. Each domain records into its own buffer — recording
    is lock-free; a mutex is taken only once per domain lifetime, to
    register the buffer — and the buffers are merged when the trace is
    flushed. The export format is Chrome trace-event JSON, openable in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}; span
    nesting is reconstructed by the viewer from timestamps within a thread
    lane, so domains appear as separate tracks.

    {b Nil sink.} Instrumentation points go through the module-level
    {!span} / {!instant} functions, which consult a process-global tracer
    slot. With no tracer {!install}ed they reduce to one atomic load and a
    branch — the argument closure is never evaluated, no clock is read,
    nothing allocates per event — so permanently-instrumented hot paths
    cost effectively nothing in an untraced run.

    {b Clock.} Timestamps come from an injectable monotonic microsecond
    clock so tests can drive time deterministically; the default reads the
    system monotonic clock. *)

type clock = unit -> float
(** Monotonic time in microseconds. Only differences are meaningful. *)

val default_clock : clock

(** One recorded event. [ts] and [dur] are microseconds relative to the
    tracer's creation instant; [dur = 0.] for instants. [tid] is the
    recording domain's id. *)
type event = {
  name : string;
  cat : string;
  phase : [ `Span | `Instant ];
  ts : float;
  dur : float;
  tid : int;
  args : (string * string) list;
}

type t

val create : ?clock:clock -> unit -> t
(** A fresh, empty tracer. Its origin (timestamp zero) is [clock ()] at
    creation time. *)

(** {2 Recording on an explicit tracer} *)

val span_on :
  t ->
  ?cat:string ->
  ?args:(unit -> (string * string) list) ->
  string ->
  (unit -> 'a) ->
  'a
(** [span_on t name f] runs [f] and records a span covering its execution,
    including when [f] raises. [args] is evaluated after [f] returns (so
    it can report results); default category is ["app"]. *)

val instant_on :
  t ->
  ?cat:string ->
  ?args:(unit -> (string * string) list) ->
  string ->
  unit

(** {2 The process-global tracer} *)

val install : t -> unit
(** Makes [t] the tracer that {!span} and {!instant} record into,
    replacing any previous one. *)

val uninstall : unit -> unit
val installed : unit -> t option

val is_enabled : unit -> bool
(** [true] iff a tracer is installed. For guarding expensive trace-only
    preparation that the [args] closure alone cannot defer. *)

val span :
  ?cat:string ->
  ?args:(unit -> (string * string) list) ->
  string ->
  (unit -> 'a) ->
  'a
(** {!span_on} against the installed tracer; just [f ()] when none is. *)

val instant :
  ?cat:string -> ?args:(unit -> (string * string) list) -> string -> unit

(** {2 Flushing} *)

val events : t -> event list
(** Merges every domain buffer and returns all events sorted by [ts]
    (ties: longer spans first, so parents precede their children). Safe to
    call while other domains are still recording — it snapshots what has
    been recorded so far. *)

val to_chrome_json : t -> string
(** The flushed trace as a Chrome trace-event document:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)

val write_chrome : t -> string -> unit
(** Writes {!to_chrome_json} to a file (atomic temp-file + rename). *)

(** {2 Parse-back} *)

val events_of_json : Json.t -> (event list, string) result
(** The inverse of {!to_chrome_json}: the events of a parsed Chrome
    trace-event document, in document order. Fails with a diagnostic
    naming the first malformed event — the validation half of
    [bin/trace_check], exposed so report generators can re-render a trace
    file (e.g. {!Rats_viz.Timeline}) without duplicating the decoder. *)
