type clock = unit -> float

let default_clock () = Int64.to_float (Monotonic_clock.now ()) /. 1e3

type event = {
  name : string;
  cat : string;
  phase : [ `Span | `Instant ];
  ts : float;
  dur : float;
  tid : int;
  args : (string * string) list;
}

(* Each domain appends to its own buffer; only the registration of a fresh
   buffer (once per domain per tracer) takes the mutex, so recording itself
   never contends. Buffers of finished domains stay registered — their
   events survive until the flush. *)
type buffer = { mutable rev_events : event list }

type t = {
  clock : clock;
  origin : float;
  mutex : Mutex.t;
  mutable buffers : buffer list;
  mutable key : buffer Domain.DLS.key option;
}

let create ?(clock = default_clock) () =
  let t =
    { clock; origin = clock (); mutex = Mutex.create (); buffers = []; key = None }
  in
  let key =
    Domain.DLS.new_key (fun () ->
        let b = { rev_events = [] } in
        Mutex.lock t.mutex;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.mutex)
          (fun () -> t.buffers <- b :: t.buffers);
        b)
  in
  t.key <- Some key;
  t

let buffer t =
  match t.key with
  | Some key -> Domain.DLS.get key
  | None -> assert false (* only reachable during [create] itself *)

let record t ev =
  let b = buffer t in
  b.rev_events <- ev :: b.rev_events

let tid () = (Domain.self () :> int)

let eval_args = function None -> [] | Some f -> f ()

let span_on t ?(cat = "app") ?args name f =
  let t0 = t.clock () -. t.origin in
  let finish () =
    let t1 = t.clock () -. t.origin in
    record t
      {
        name;
        cat;
        phase = `Span;
        ts = t0;
        dur = Float.max 0. (t1 -. t0);
        tid = tid ();
        args = eval_args args;
      }
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let instant_on t ?(cat = "app") ?args name =
  record t
    {
      name;
      cat;
      phase = `Instant;
      ts = t.clock () -. t.origin;
      dur = 0.;
      tid = tid ();
      args = eval_args args;
    }

(* --- process-global tracer ---------------------------------------------- *)

let current : t option Atomic.t = Atomic.make None

let install t = Atomic.set current (Some t)
let uninstall () = Atomic.set current None
let installed () = Atomic.get current
let is_enabled () = Atomic.get current <> None

let span ?cat ?args name f =
  match Atomic.get current with
  | None -> f ()
  | Some t -> span_on t ?cat ?args name f

let instant ?cat ?args name =
  match Atomic.get current with
  | None -> ()
  | Some t -> instant_on t ?cat ?args name

(* --- flushing ----------------------------------------------------------- *)

let events t =
  Mutex.lock t.mutex;
  let buffers =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mutex)
      (fun () -> t.buffers)
  in
  let all = List.concat_map (fun b -> b.rev_events) buffers in
  (* Ties broken longest-first so an enclosing span sorts before the
     children recorded at the same timestamp (fake clocks produce these). *)
  List.sort
    (fun a b ->
      match compare a.ts b.ts with 0 -> compare b.dur a.dur | c -> c)
    all

let json_of_event ev =
  let base =
    [
      ("name", Json.Str ev.name);
      ("cat", Json.Str ev.cat);
      ("pid", Json.Num 1.);
      ("tid", Json.Num (float_of_int ev.tid));
      ("ts", Json.Num ev.ts);
    ]
  in
  let phase =
    match ev.phase with
    | `Span -> [ ("ph", Json.Str "X"); ("dur", Json.Num ev.dur) ]
    | `Instant -> [ ("ph", Json.Str "i"); ("s", Json.Str "t") ]
  in
  let args =
    match ev.args with
    | [] -> []
    | l -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) l)) ]
  in
  Json.Obj (base @ phase @ args)

let to_chrome_json t =
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.Arr (List.map json_of_event (events t)));
         ("displayTimeUnit", Json.Str "ms");
       ])

let write_chrome t path =
  let dir = Filename.dirname path in
  let tmp, oc =
    Filename.open_temp_file ~mode:[ Open_binary ] ~temp_dir:dir "trace" ".tmp"
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_chrome_json t));
  Sys.rename tmp path

(* --- parse-back ---------------------------------------------------------- *)

let fail fmt = Printf.ksprintf (fun msg -> Error msg) fmt

let ( let* ) = Result.bind

let str_member name json = Option.bind (Json.member name json) Json.to_str
let num_member name json = Option.bind (Json.member name json) Json.to_float

(* One trace-event object back into an {!event}; everything
   [json_of_event] writes must round-trip. *)
let event_of_json i json =
  let* name =
    match str_member "name" json with
    | Some n -> Ok n
    | None -> fail "event %d: missing \"name\"" i
  in
  let err field = fail "event %d (%s): missing %s" i name field in
  let* ts =
    match num_member "ts" json with Some t -> Ok t | None -> err "\"ts\""
  in
  let* tid =
    match num_member "tid" json with
    | Some t -> Ok (int_of_float t)
    | None -> err "\"tid\""
  in
  let cat = Option.value (str_member "cat" json) ~default:"" in
  let args =
    match Json.member "args" json with
    | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
          fields
    | _ -> []
  in
  let* phase, dur =
    match str_member "ph" json with
    | Some "X" -> (
        match num_member "dur" json with
        | Some d when d >= 0. -> Ok (`Span, d)
        | Some _ -> err "nonnegative \"dur\""
        | None -> err "\"dur\"")
    | Some "i" -> Ok (`Instant, 0.)
    | Some ph -> fail "event %d (%s): unexpected ph %S" i name ph
    | None -> err "\"ph\""
  in
  if cat = "" then err "\"cat\"" else Ok { name; cat; phase; ts; dur; tid; args }

let events_of_json json =
  let* events =
    match Option.bind (Json.member "traceEvents" json) Json.to_list with
    | Some l -> Ok l
    | None -> fail "no \"traceEvents\" array"
  in
  let* rev =
    List.fold_left
      (fun acc (i, e) ->
        let* acc = acc in
        let* e = event_of_json i e in
        Ok (e :: acc))
      (Ok [])
      (List.mapi (fun i e -> (i, e)) events)
  in
  Ok (List.rev rev)
