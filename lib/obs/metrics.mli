(** Process-wide metrics registry: atomic counters, gauges and log-bucketed
    latency histograms.

    Metrics are registered by name on first use and live for the process;
    looking a name up twice returns the same metric (registering an
    existing name with a different kind raises [Invalid_argument]). Handles
    are meant to be created once at module initialisation and updated
    lock-free on hot paths — an update is one atomic read-modify-write, so
    the registry is always on and costs nothing measurable.

    Names follow Prometheus conventions ([a-zA-Z0-9_:], counters suffixed
    [_total], histograms in base units, e.g. [_seconds]); {!to_prometheus}
    renders the standard text exposition format and {!snapshot} a JSON
    object, both with metrics sorted by name so output is deterministic. *)

type counter
type gauge
type histogram

val counter : ?help:string -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : ?help:string -> string -> gauge

val set : gauge -> float -> unit

val observe_max : gauge -> float -> unit
(** Monotonic update: keeps the maximum of the current value and the
    observation (high-water-mark gauges). *)

val gauge_value : gauge -> float

val histogram : ?help:string -> string -> histogram
(** Log-2 bucketed histogram for durations in seconds: bucket upper bounds
    are [1µs · 2^i] for [i = 0 .. 31] (≈ 1 µs to ≈ 36 min) plus a [+inf]
    overflow bucket. *)

val observe : histogram -> float -> unit

val hist_count : histogram -> int
val hist_sum : histogram -> float

val bucket_counts : histogram -> (float * int) list
(** Per-bucket (upper bound, count) pairs, non-cumulative, overflow bucket
    last with upper bound [infinity]. *)

val bucket_index : float -> int
(** The bucket an observation lands in — exposed so tests can pin the
    boundary behaviour (values at a bucket's upper bound land in it). *)

val bucket_upper : int -> float
(** Upper bound of bucket [i] ([infinity] for the overflow bucket). *)

(** {2 Export} *)

val snapshot : unit -> Json.t
(** [{"counters": {..}, "gauges": {..}, "histograms": {name: {"count": n,
    "sum": s, "buckets": [{"le": ub, "count": c}, ..]}, ..}}] *)

val to_json : unit -> string
val to_prometheus : unit -> string

val write_json : string -> unit
val write_prometheus : string -> unit

val reset : unit -> unit
(** Zeroes every registered metric (the registry keeps its entries). For
    tests and for delta measurements across bench targets. *)
