let trace_dest = ref None
let metrics_dest = ref None

let resolve arg env_var =
  let v = match arg with Some _ -> arg | None -> Sys.getenv_opt env_var in
  match v with Some "" | None -> None | Some _ as p -> p

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let at_exit_registered = ref false

let rec configure ?trace ?metrics () =
  trace_dest := resolve trace "RATS_TRACE";
  metrics_dest := resolve metrics "RATS_METRICS";
  if !trace_dest <> None then Trace.install (Trace.create ());
  (* [exit 1] paths (failed sweeps) must still flush the files — the trace
     of a failing run is the one worth looking at. *)
  if
    (!trace_dest <> None || !metrics_dest <> None)
    && not !at_exit_registered
  then begin
    at_exit_registered := true;
    at_exit finalize
  end

and finalize () =
  (match (!trace_dest, Trace.installed ()) with
  | Some path, Some t ->
      mkdir_p (Filename.dirname path);
      Trace.write_chrome t path
  | _ -> ());
  match !metrics_dest with
  | Some path ->
      mkdir_p (Filename.dirname path);
      if Filename.check_suffix path ".json" then Metrics.write_json path
      else Metrics.write_prometheus path
  | None -> ()

let trace_path () = !trace_dest
let metrics_path () = !metrics_dest
