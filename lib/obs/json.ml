type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing ----------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let num_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> Buffer.add_string buf (num_to_string v)
  | Str s -> escape_to buf s
  | Arr l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          render buf v)
        l;
      Buffer.add_char buf ']'
  | Obj l ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          render buf v)
        l;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  render buf v;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   let code =
                     match int_of_string_opt ("0x" ^ hex) with
                     | Some c -> c
                     | None -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* UTF-8 encode the code point (surrogates land verbatim;
                      good enough for our ASCII-centric payloads). *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape %C" c));
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* --- accessors ---------------------------------------------------------- *)

let member k = function Obj l -> List.assoc_opt k l | _ -> None
let to_float = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None
