(* --- simulator ---------------------------------------------------------- *)

let sim_runs = Metrics.counter "rats_sim_runs_total" ~help:"Simulations run to completion"

let sim_events =
  Metrics.counter "rats_sim_events_total"
    ~help:"Engine events processed (timer callbacks and flow completions)"

let sim_queue_depth_max =
  Metrics.gauge "rats_sim_event_queue_depth_max"
    ~help:"High-water mark of the simulator event queue"

let maxmin_solves =
  Metrics.counter "rats_sim_maxmin_solves_total" ~help:"Max-min fair rate recomputations"

let maxmin_iterations =
  Metrics.counter "rats_sim_maxmin_iterations_total"
    ~help:"Water-filling rounds across all max-min solves"

let maxmin_inc_refreshes =
  Metrics.counter "rats_sim_maxmin_inc_refreshes_total"
    ~help:"Incremental-solver refreshes that re-solved only dirty components"

let maxmin_full_refreshes =
  Metrics.counter "rats_sim_maxmin_full_refreshes_total"
    ~help:"Incremental-solver refreshes that fell back to re-solving every component"

let maxmin_component_solves =
  Metrics.counter "rats_sim_maxmin_component_solves_total"
    ~help:"Per-component water-fills run by the incremental solver"

let maxmin_inc_iterations =
  Metrics.counter "rats_sim_maxmin_inc_iterations_total"
    ~help:"Water-filling rounds across all incremental component solves"

let maxmin_dirty_flows =
  Metrics.counter "rats_sim_maxmin_dirty_flows_total"
    ~help:"Flows re-solved by incremental refreshes (dirty-set sizes summed)"

let maxmin_skipped_flows =
  Metrics.counter "rats_sim_maxmin_skipped_flows_total"
    ~help:"Flows whose rates were reused untouched by incremental refreshes"

let maxmin_dirty_set_max =
  Metrics.gauge "rats_sim_maxmin_dirty_set_max"
    ~help:"Largest dirty set re-solved by a single incremental refresh"

(* --- scheduling --------------------------------------------------------- *)

let alloc_runs = Metrics.counter "rats_alloc_runs_total" ~help:"CPA/HCPA allocations computed"

let alloc_refinements =
  Metrics.counter "rats_alloc_refinements_total"
    ~help:"One-processor refinement steps during CPA allocation"

let timing_tables =
  Metrics.counter "rats_timing_tables_built_total"
    ~help:"Moldable-timing tables precomputed (one per Problem)"

let timing_table_entries =
  Metrics.counter "rats_timing_table_entries_total"
    ~help:"T(t,p) entries precomputed across all timing tables"

let timing_lookups =
  Metrics.counter "rats_timing_lookups_total"
    ~help:"Moldable-timing table lookups (published at phase boundaries)"

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | '0' .. '9' | '_' -> c | _ -> '_')
    (String.lowercase_ascii name)

let map_strategy_counter ~strategy kind =
  let kind_name, help =
    match kind with
    | `Packed -> ("packed", "Mapping decisions that packed a task")
    | `Stretched -> ("stretched", "Mapping decisions that stretched a task")
    | `Unchanged -> ("unchanged", "Mapping decisions that kept the allocation")
    | `Eliminated -> ("redistributions_eliminated", "Redistributions eliminated by pack/stretch decisions")
  in
  Metrics.counter
    (Printf.sprintf "rats_map_%s_%s_total" (sanitize strategy) kind_name)
    ~help

(* Pre-register the full strategy × kind grid so snapshots always contain
   the names, even for a run that never maps with some strategy. *)
let () =
  List.iter
    (fun strategy ->
      List.iter
        (fun kind -> ignore (map_strategy_counter ~strategy kind))
        [ `Packed; `Stretched; `Unchanged; `Eliminated ])
    [ "hcpa"; "delta"; "time-cost" ]

(* --- runtime ------------------------------------------------------------ *)

let pool_tasks = Metrics.counter "rats_pool_tasks_total" ~help:"Tasks executed by the worker pool"

let pool_steals =
  Metrics.counter "rats_pool_steals_total"
    ~help:"Tasks claimed from another worker's shard"

let pool_workers_max =
  Metrics.gauge "rats_pool_workers_max" ~help:"Largest worker count used by a pool map"

let cache_hits = Metrics.counter "rats_cache_hits_total" ~help:"Result-cache hits"
let cache_misses = Metrics.counter "rats_cache_misses_total" ~help:"Result-cache misses"

let cache_quarantined =
  Metrics.counter "rats_cache_quarantined_total" ~help:"Corrupt cache entries quarantined"

let cache_read_seconds =
  Metrics.histogram "rats_cache_read_seconds" ~help:"Cache lookup latency"

let cache_write_seconds =
  Metrics.histogram "rats_cache_write_seconds" ~help:"Cache store latency"

let exec_failed =
  Metrics.counter "rats_exec_failed_total" ~help:"Tasks that exhausted their retries"

let exec_retried =
  Metrics.counter "rats_exec_retried_total" ~help:"Extra attempts beyond each task's first"

let exec_resumed =
  Metrics.counter "rats_exec_resumed_total" ~help:"Results replayed from the journal"

let exec_timeouts =
  Metrics.counter "rats_exec_timeouts_total" ~help:"Attempts abandoned at their deadline"

let fault_injections =
  Metrics.counter "rats_fault_injections_total"
    ~help:"Faults injected by Runtime.Fault across every site (crash, delay, corrupt)"

(* --- progress ----------------------------------------------------------- *)

let progress_completed =
  Metrics.counter "rats_progress_completed_total" ~help:"Sweep configurations completed"

let progress_cache_hits =
  Metrics.counter "rats_progress_cache_hits_total"
    ~help:"Sweep configurations answered from the cache"

let progress_failed =
  Metrics.counter "rats_progress_failed_total" ~help:"Sweep configurations that failed"

let progress_retried =
  Metrics.counter "rats_progress_retried_total" ~help:"Sweep retries observed by progress"

let progress_resumed =
  Metrics.counter "rats_progress_resumed_total"
    ~help:"Sweep configurations replayed from the journal"

(* --- server ------------------------------------------------------------- *)

let server_jobs_submitted =
  Metrics.counter "rats_server_jobs_submitted_total"
    ~help:"Job submissions that reached the online engine (arrival events)"

let server_jobs_admitted =
  Metrics.counter "rats_server_jobs_admitted_total"
    ~help:"Submissions accepted by the admission policy"

let server_jobs_rejected =
  Metrics.counter "rats_server_jobs_rejected_total"
    ~help:"Submissions rejected by the admission policy"

let server_jobs_completed =
  Metrics.counter "rats_server_jobs_completed_total"
    ~help:"Jobs whose replay on the shared platform finished"

let server_queue_depth =
  Metrics.gauge "rats_server_queue_depth" ~help:"Jobs currently waiting in the service queue"

let server_queue_depth_max =
  Metrics.gauge "rats_server_queue_depth_max"
    ~help:"High-water mark of the service waiting queue"

let server_sojourn_seconds =
  Metrics.histogram "rats_server_sojourn_seconds"
    ~help:"Simulated completion minus arrival time per completed job"

let server_schedule_seconds =
  Metrics.histogram "rats_server_schedule_seconds"
    ~help:"Wall-clock time computing schedules per dispatch batch"

let server_jobs_expired =
  Metrics.counter "rats_server_jobs_expired_total"
    ~help:"Queued jobs dropped because their simulated queue-wait deadline passed"

let server_clients_evicted =
  Metrics.counter "rats_server_clients_evicted_total"
    ~help:"Client connections closed for exceeding their output-buffer budget"

let server_events_shed =
  Metrics.counter "rats_server_events_shed_total"
    ~help:"Event frames dropped instead of queued while the daemon was degraded"

(* --- workload ----------------------------------------------------------- *)

let workload_traces =
  Metrics.counter "rats_workload_traces_compiled_total"
    ~help:"Multi-tenant arrival traces compiled by the workload engine"

let workload_jobs =
  Metrics.counter "rats_workload_jobs_generated_total"
    ~help:"Jobs generated into workload arrival traces"

let workload_arm_runs =
  Metrics.counter "rats_workload_arm_runs_total"
    ~help:"Study arms (scheduler x trace) driven through the online engine"

(* --- helpers ------------------------------------------------------------ *)

let now_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let timed hist f =
  let t0 = now_s () in
  Fun.protect ~finally:(fun () -> Metrics.observe hist (now_s () -. t0)) f
