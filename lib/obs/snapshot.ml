type hist = { count : int; sum : float; buckets : (float * int) list }

type t = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist) list;
}

let empty = { counters = []; gauges = []; histograms = [] }

(* Each section is an object of name → value; members whose value has the
   wrong shape are dropped rather than failing the whole parse, so a
   snapshot from a newer writer still yields everything we understand. *)
let assoc name json of_value =
  match Json.member name json with
  | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun v -> (k, v)) (of_value v))
        fields
  | _ -> []

(* The writer ({!Metrics}) encodes the overflow bucket's bound as the
   string ["+Inf"] — JSON has no infinity literal. *)
let bound_of_json json =
  match json with
  | Json.Str ("+Inf" | "inf" | "Inf" | "Infinity") -> Some infinity
  | _ -> Json.to_float json

let hist_of_json json =
  match (Json.member "count" json, Json.member "sum" json) with
  | Some c, Some s -> (
      match (Json.to_int c, Json.to_float s) with
      | Some count, Some sum ->
          let buckets =
            match Option.bind (Json.member "buckets" json) Json.to_list with
            | Some bs ->
                List.filter_map
                  (fun b ->
                    match
                      ( Option.bind (Json.member "le" b) bound_of_json,
                        Option.bind (Json.member "count" b) Json.to_int )
                    with
                    | Some le, Some n -> Some (le, n)
                    | _ -> None)
                  bs
            | None -> []
          in
          Some { count; sum; buckets }
      | _ -> None)
  | _ -> None

let of_json json =
  match json with
  | Json.Obj _ ->
      Ok
        {
          counters = assoc "counters" json Json.to_int;
          gauges = assoc "gauges" json Json.to_float;
          histograms = assoc "histograms" json hist_of_json;
        }
  | _ -> Error "metrics snapshot: expected a JSON object"

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match Json.parse contents with
      | Error msg -> Error (path ^ ": " ^ msg)
      | Ok json -> of_json json)

let counter t name = List.assoc_opt name t.counters
let gauge t name = List.assoc_opt name t.gauges
let histogram t name = List.assoc_opt name t.histograms
