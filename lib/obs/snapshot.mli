(** Typed read-back of a {!Metrics} snapshot.

    {!Metrics.snapshot} renders the registry as a JSON object; this module
    is the other direction — parsing that object (a [--metrics FILE] dump,
    or the ["metrics"] member embedded in [BENCH_runtime.json] since report
    schema 2) into association lists a report generator can walk without
    re-implementing the shape. Everything is tolerant: a missing section is
    an empty list, a malformed member is skipped, only a document that is
    not an object at all is an error. *)

type hist = {
  count : int;
  sum : float;
  buckets : (float * int) list;
      (** Per-bucket (upper bound, count), non-cumulative, in document
          order; the overflow bucket's bound is [infinity]. *)
}

type t = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist) list;
}
(** All three sections in document order (the registry writes them sorted
    by name, so order is deterministic). *)

val empty : t

val of_json : Json.t -> (t, string) result
(** Parse a snapshot document — the whole [--metrics] file, or the value
    of a report's ["metrics"] member. *)

val of_file : string -> (t, string) result
(** Read and parse a snapshot file written by {!Metrics.write_json}. *)

val counter : t -> string -> int option
val gauge : t -> string -> float option
val histogram : t -> string -> hist option
