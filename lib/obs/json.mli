(** Minimal dependency-free JSON tree, printer and parser.

    The observability layer needs to both emit JSON (Chrome trace-event
    files, metrics snapshots) and read it back (trace validation in tests
    and [bin/trace_check]). A tiny recursive-descent parser keeps the repo
    free of a yojson dependency; it accepts standard JSON (RFC 8259) with
    the usual numeric and string escapes. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering. Numbers print via ["%.17g"] trimmed of a trailing
    [".0"]-less exponent noise, so integers round-trip as integers. *)

val parse : string -> (t, string) result
(** Parses a complete JSON document; trailing whitespace is allowed,
    trailing garbage is an error. Errors carry a byte offset. *)

(** {2 Accessors} — all total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
