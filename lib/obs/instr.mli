(** Instrumentation taxonomy: every metric the RATS stack emits, declared
    in one place.

    Handles are created at module initialisation, so any binary that links
    an instrumented layer exposes the full metric set (zero-valued when
    unused) — consumers like [bin/trace_check] can rely on names being
    present. The span taxonomy (category → names) is documented in
    DESIGN.md §6.

    Metric names are Prometheus-style; the strategy dimension is folded
    into the name ([rats_map_<strategy>_..._total], strategy ∈ {hcpa,
    delta, time_cost}) to keep the registry label-free. *)

(** {2 Simulator ([Sim.Engine], [Sim.Maxmin])} *)

val sim_runs : Metrics.counter
val sim_events : Metrics.counter  (** Engine events processed (timers + flow completions). *)

val sim_queue_depth_max : Metrics.gauge  (** High-water mark of the event queue. *)

val maxmin_solves : Metrics.counter
val maxmin_iterations : Metrics.counter  (** Water-filling rounds across all solves. *)

(** Incremental-solver counters ([Sim.Maxmin.Incremental], batched per
    engine and published when a run completes, like the engine's own
    counters). An {e inc} refresh re-solved only the components reachable
    from changed flows; a {e full} refresh re-solved every component
    (dirty set above the fallback threshold). [dirty + skipped] flows sum
    to the flows alive across all refreshes, so
    [skipped / (dirty + skipped)] is the fraction of rate computations the
    incremental solver avoided. *)

val maxmin_inc_refreshes : Metrics.counter
val maxmin_full_refreshes : Metrics.counter
val maxmin_component_solves : Metrics.counter
val maxmin_inc_iterations : Metrics.counter
val maxmin_dirty_flows : Metrics.counter
val maxmin_skipped_flows : Metrics.counter
val maxmin_dirty_set_max : Metrics.gauge

(** {2 Scheduling ([Core.Cpa]/[Hcpa]/[Rats])} *)

val alloc_runs : Metrics.counter
val alloc_refinements : Metrics.counter  (** One-processor increments during CPA allocation. *)

(** Moldable-timing memoization ([Dag.Timing] via [Core.Problem]). Builds
    and entry counts are bumped when a table is precomputed; lookups are
    accumulated per problem as plain counters and published in batches at
    phase boundaries (allocation, mapping and simulation ends), so the
    hot path never touches an atomic. *)

val timing_tables : Metrics.counter
val timing_table_entries : Metrics.counter
val timing_lookups : Metrics.counter

val map_strategy_counter :
  strategy:string -> [ `Packed | `Stretched | `Unchanged | `Eliminated ] -> Metrics.counter
(** Per-strategy mapping decision counters; [`Eliminated] counts
    redistributions eliminated (= packs + stretches). [strategy] is a
    {!val:Rats_core.Rats.strategy_name} result and is sanitised to
    [a-z0-9_]. *)

(** {2 Runtime ([Pool], [Cache], [Exec]/[Retry])} *)

val pool_tasks : Metrics.counter
val pool_steals : Metrics.counter
val pool_workers_max : Metrics.gauge

val cache_hits : Metrics.counter
val cache_misses : Metrics.counter
val cache_quarantined : Metrics.counter
val cache_read_seconds : Metrics.histogram
val cache_write_seconds : Metrics.histogram

val exec_failed : Metrics.counter
val exec_retried : Metrics.counter
val exec_resumed : Metrics.counter
val exec_timeouts : Metrics.counter

val fault_injections : Metrics.counter
(** Faults actually injected by [Runtime.Fault] (crash raises, delay
    sleeps, corrupted payloads), across every site. Zero in an unfaulted
    run — a chaos harness asserts it moved. *)

(** {2 Progress (sweep-level, fed by [Runtime.Progress])} *)

val progress_completed : Metrics.counter
val progress_cache_hits : Metrics.counter
val progress_failed : Metrics.counter
val progress_retried : Metrics.counter
val progress_resumed : Metrics.counter

(** {2 Online service ([Server.Engine] via [ratsd])}

    Counters follow the engine's event stream (submitted = arrival events,
    so metrics and event log agree); the sojourn histogram is in {e
    simulated} seconds, while [rats_server_schedule_seconds] is wall-clock
    — the service's actual scheduling latency per dispatch batch. *)

val server_jobs_submitted : Metrics.counter
val server_jobs_admitted : Metrics.counter
val server_jobs_rejected : Metrics.counter
val server_jobs_completed : Metrics.counter
val server_queue_depth : Metrics.gauge
val server_queue_depth_max : Metrics.gauge
val server_sojourn_seconds : Metrics.histogram  (** Simulated seconds. *)

val server_schedule_seconds : Metrics.histogram
(** Wall-clock seconds per dispatch batch (uses the engine's injected
    clock). *)

val server_jobs_expired : Metrics.counter
(** Queued jobs dropped at their simulated queue-wait deadline. *)

val server_clients_evicted : Metrics.counter
(** Connections closed by [ratsd] for exceeding their output budget. *)

val server_events_shed : Metrics.counter
(** Event frames dropped (not queued) while [ratsd] was degraded. *)

(** {2 Workload engine ([Rats_workload] via [bin/workload] and the bench)} *)

val workload_traces : Metrics.counter
(** Arrival traces compiled ([Rats_workload.Trace.compile] calls). *)

val workload_jobs : Metrics.counter
(** Jobs generated into arrival traces, across every compile. *)

val workload_arm_runs : Metrics.counter
(** Study arms driven through the online engine
    ([Rats_workload_study.Study.run_arm] calls). *)

(** {2 Helpers} *)

val now_s : unit -> float
(** Monotonic seconds, for latency measurements. *)

val timed : Metrics.histogram -> (unit -> 'a) -> 'a
(** Runs the thunk and observes its wall-clock duration (also when it
    raises). *)
