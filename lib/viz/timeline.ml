module Trace = Rats_obs.Trace

let margin_left = 60.
let margin_top = 40.
let row_height = 14.
let lane_gap = 8.
let chart_width = 900.

(* Same palette trick as the Gantt renderer, keyed by category so all
   pool:task boxes share a color, all cache spans another, etc. *)
let color_of_cat cat =
  let hue = (Hashtbl.hash cat * 2654435761) land 0xFFFF mod 360 in
  Printf.sprintf "hsl(%d, 65%%, 55%%)" hue

(* Nesting depth per span within a lane: events arrive sorted by [ts] with
   longer spans first on ties, so a running stack of enclosing span ends
   gives each event the row it should stack on. *)
let with_depths lane =
  let stack = ref [] in
  List.map
    (fun (e : Trace.event) ->
      let rec pop = function
        | fin :: rest when fin <= e.Trace.ts +. 1e-9 -> pop rest
        | stack -> stack
      in
      stack := pop !stack;
      let depth = List.length !stack in
      if e.Trace.phase = `Span then
        stack := (e.Trace.ts +. e.Trace.dur) :: !stack;
      (depth, e))
    lane

let render ?(title = "trace timeline") events =
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.Trace.tid) events)
  in
  let lanes =
    List.map
      (fun tid ->
        let lane = List.filter (fun e -> e.Trace.tid = tid) events in
        (tid, with_depths lane))
      tids
  in
  let depth_of lane =
    List.fold_left (fun acc (d, _) -> max acc (d + 1)) 1 lane
  in
  let t_max =
    List.fold_left
      (fun acc e -> Float.max acc (e.Trace.ts +. e.Trace.dur))
      1e-9 events
  in
  let total_rows =
    List.fold_left (fun acc (_, lane) -> acc + depth_of lane) 0 lanes
  in
  let height =
    margin_top
    +. (float_of_int total_rows *. row_height)
    +. (float_of_int (List.length lanes) *. lane_gap)
    +. 30.
  in
  let svg = Svg.create ~width:(chart_width +. margin_left +. 20.) ~height in
  Svg.title svg ~x:margin_left ~y:20. title;
  let x_of ts = margin_left +. (ts /. t_max *. chart_width) in
  let lane_top = ref margin_top in
  List.iter
    (fun (tid, lane) ->
      let rows = depth_of lane in
      let lane_h = float_of_int rows *. row_height in
      Svg.text svg ~x:(margin_left -. 6.) ~y:(!lane_top +. row_height -. 3.)
        ~size:8. ~anchor:"end"
        (Printf.sprintf "d%d" tid);
      Svg.line svg ~x1:margin_left ~y1:(!lane_top +. lane_h)
        ~x2:(x_of t_max) ~y2:(!lane_top +. lane_h) ~width:0.5 ~stroke:"#ccc" ();
      List.iter
        (fun (depth, (e : Trace.event)) ->
          let y = !lane_top +. (float_of_int depth *. row_height) in
          match e.Trace.phase with
          | `Span ->
              let x = x_of e.Trace.ts in
              let w = Float.max 0.5 (x_of (e.Trace.ts +. e.Trace.dur) -. x) in
              Svg.rect svg ~x ~y ~w ~h:(row_height -. 1.) ~stroke:"#333"
                ~fill:(color_of_cat e.Trace.cat) ();
              if w > 30. then
                Svg.text svg ~x:(x +. 2.) ~y:(y +. row_height -. 4.) ~size:8.
                  ~fill:"#fff" e.Trace.name
          | `Instant ->
              let x = x_of e.Trace.ts in
              Svg.line svg ~x1:x ~y1:y ~x2:x ~y2:(y +. row_height -. 1.)
                ~width:1.5 ~stroke:"#c00" ())
        lane;
      lane_top := !lane_top +. lane_h +. lane_gap)
    lanes;
  (* Time axis, in milliseconds. *)
  let axis_y = !lane_top in
  Svg.line svg ~x1:margin_left ~y1:axis_y ~x2:(x_of t_max) ~y2:axis_y
    ~stroke:"#444" ();
  for k = 0 to 8 do
    let ts = t_max *. float_of_int k /. 8. in
    let x = x_of ts in
    Svg.line svg ~x1:x ~y1:axis_y ~x2:x ~y2:(axis_y +. 4.) ~stroke:"#444" ();
    Svg.text svg ~x ~y:(axis_y +. 14.) ~size:8. ~anchor:"middle"
      (Printf.sprintf "%.2fms" (ts /. 1e3))
  done;
  svg

let of_trace ?title t = render ?title (Trace.events t)

let save ?title events ~path = Svg.save (render ?title events) path
