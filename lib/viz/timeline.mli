(** Trace timeline renderer.

    Draws a {!Rats_obs.Trace} event list as an SVG timeline: one horizontal
    lane per recording domain ([tid]), spans as colored boxes stacked by
    nesting depth, instants as vertical ticks. A coarse standalone
    complement to loading the Chrome JSON in Perfetto — good enough to eyeball
    worker balance and cache stalls straight from a bench run. *)

val render : ?title:string -> Rats_obs.Trace.event list -> Svg.t
(** Lanes appear in increasing [tid] order; events are colored by
    category. An empty event list still renders a (captioned) empty
    chart. *)

val of_trace : ?title:string -> Rats_obs.Trace.t -> Svg.t
(** [render] applied to {!Rats_obs.Trace.events}. *)

val save : ?title:string -> Rats_obs.Trace.event list -> path:string -> unit
