(* Same palette trick as the Gantt and Timeline renderers: a color is a
   pure function of the label, so the same series keeps its color across
   charts and across runs. *)
let color_of label =
  let hue = (Hashtbl.hash label * 2654435761) land 0xFFFF mod 360 in
  Printf.sprintf "hsl(%d, 60%%, 50%%)" hue

let default_value_label v = Printf.sprintf "%.3g" v

let bars ?(width = 640.) ?(value_label = default_value_label) ~title rows =
  let row_h = 18. in
  let gap = 4. in
  let label_w = 150. in
  let value_w = 70. in
  let top = 34. in
  let n = List.length rows in
  let height = top +. (float_of_int n *. (row_h +. gap)) +. 10. in
  let svg = Svg.create ~width ~height in
  Svg.title svg ~x:10. ~y:20. title;
  let v_max =
    List.fold_left (fun acc (_, v) -> Float.max acc v) 1e-12 rows
  in
  let bar_w_max = width -. label_w -. value_w -. 20. in
  List.iteri
    (fun i (label, v) ->
      let y = top +. (float_of_int i *. (row_h +. gap)) in
      let v = Float.max 0. v in
      let w = v /. v_max *. bar_w_max in
      Svg.text svg ~x:(label_w -. 6.) ~y:(y +. row_h -. 5.) ~size:10.
        ~anchor:"end" label;
      Svg.rect svg ~x:label_w ~y ~w:(Float.max 0.5 w) ~h:(row_h -. 2.)
        ~stroke:"#333" ~fill:(color_of label) ();
      Svg.text svg
        ~x:(label_w +. w +. 6.)
        ~y:(y +. row_h -. 5.)
        ~size:10. (value_label v))
    rows;
  svg

(* Histogram bounds are seconds (1µs·2^i); print them in the unit that
   keeps the mantissa readable. *)
let default_unit_label ub =
  if ub = infinity then "inf"
  else if ub < 1e-3 then Printf.sprintf "%.0fµs" (ub *. 1e6)
  else if ub < 1. then Printf.sprintf "%.3gms" (ub *. 1e3)
  else Printf.sprintf "%.3gs" ub

let histogram ?(width = 640.) ?(unit_label = default_unit_label) ~title
    buckets =
  let chart_h = 90. in
  let top = 34. in
  let bottom = 26. in
  let left = 10. in
  let height = top +. chart_h +. bottom in
  let svg = Svg.create ~width ~height in
  Svg.title svg ~x:10. ~y:20. title;
  let n = List.length buckets in
  if n > 0 then begin
    let slot = (width -. (2. *. left)) /. float_of_int n in
    let bar_w = Float.max 1. (slot -. 3.) in
    let c_max =
      List.fold_left (fun acc (_, c) -> max acc c) 1 buckets
    in
    let baseline = top +. chart_h in
    Svg.line svg ~x1:left ~y1:baseline ~x2:(width -. left) ~y2:baseline
      ~width:0.75 ~stroke:"#444" ();
    List.iteri
      (fun i (ub, count) ->
        let x = left +. (float_of_int i *. slot) in
        let h =
          chart_h *. float_of_int count /. float_of_int c_max
        in
        if count > 0 then begin
          Svg.rect svg ~x ~y:(baseline -. h) ~w:bar_w ~h:(Float.max 0.5 h)
            ~stroke:"#333" ~fill:(color_of title) ();
          Svg.text svg
            ~x:(x +. (bar_w /. 2.))
            ~y:(baseline -. h -. 3.)
            ~size:8. ~anchor:"middle"
            (string_of_int count)
        end;
        Svg.text svg
          ~x:(x +. (bar_w /. 2.))
          ~y:(baseline +. 12.)
          ~size:8. ~anchor:"middle" (unit_label ub))
      buckets
  end;
  svg
