(** Small statistical charts for reports.

    Horizontal bar charts over labeled values and latency-histogram bucket
    bars, rendered with {!Svg} — the building blocks of the experiment
    studio's HTML reports ([Rats_studio.Page]), where each chart is
    embedded inline. Deterministic output: bar order is the input order,
    colors derive from labels the same way {!Gantt} colors tasks. *)

val bars :
  ?width:float ->
  ?value_label:(float -> string) ->
  title:string ->
  (string * float) list ->
  Svg.t
(** [bars ~title rows] renders one horizontal bar per [(label, value)]
    row, longest axis scaled to the maximum value; each bar carries its
    label on the left and its rendered value at the bar's end
    ([value_label], default ["%.3g"]). Negative values are clamped to 0
    (lengths cannot be negative); an empty [rows] yields a chart with just
    the title. *)

val histogram :
  ?width:float ->
  ?unit_label:(float -> string) ->
  title:string ->
  (float * int) list ->
  Svg.t
(** [histogram ~title buckets] renders per-bucket counts — the
    [(upper bound, count)] pairs of {!Rats_obs.Metrics.bucket_counts} or a
    parsed {!Rats_obs.Snapshot.hist} — as vertical bars with the bound as
    the x label ([unit_label] formats it; the default prints seconds
    scaled to µs/ms/s and ["inf"] for the overflow bucket). Empty buckets
    are kept: the gaps are part of the shape. *)
