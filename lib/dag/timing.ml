module Metrics = Rats_obs.Metrics
module Instr = Rats_obs.Instr

type t = {
  max_procs : int;
  time : float array;  (* row-major: task i × procs p at [i*max_procs + p-1] *)
}

let build dag ~speed ~max_procs =
  if max_procs < 1 then invalid_arg "Timing.build: max_procs < 1";
  let n = Dag.n_tasks dag in
  let time = Array.make (n * max_procs) 0. in
  for i = 0 to n - 1 do
    let task = Dag.task dag i in
    let base = i * max_procs in
    for p = 1 to max_procs do
      time.(base + p - 1) <- Task.time task ~speed ~procs:p
    done
  done;
  Metrics.incr Instr.timing_tables;
  if n > 0 then Metrics.add Instr.timing_table_entries (n * max_procs);
  { max_procs; time }

let max_procs t = t.max_procs
let n_tasks t = Array.length t.time / t.max_procs

let time t i ~procs =
  if procs < 1 || procs > t.max_procs then invalid_arg "Timing.time: bad procs";
  t.time.((i * t.max_procs) + procs - 1)

let work t i ~procs = float_of_int procs *. time t i ~procs
