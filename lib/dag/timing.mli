(** Memoized moldable-task timing.

    Every scheduling phase asks for Amdahl times [T(t, p)] and work
    [ω(t, p) = p · T(t, p)] over and over for the same tasks — CPA's
    refinement loop alone recomputes the critical path once per granted
    processor. A table precomputes [T(t, p)] for every task and every
    [p ∈ \[1, max_procs\]] once per (DAG, cluster) pair, so those calls
    become array reads.

    Entries are produced by calling {!Task.time} itself, and {!work}
    multiplies exactly like {!Task.work} — table lookups are bit-identical
    to the direct computations, so memoization cannot change any schedule
    (asserted by tests/test_dag). Builds bump [Instr.timing_tables] and
    [Instr.timing_table_entries]. *)

type t

val build : Dag.t -> speed:float -> max_procs:int -> t
(** Precomputes [n_tasks × max_procs] entries at [speed] flop/s per
    processor. Raises [Invalid_argument] when [max_procs < 1]. *)

val max_procs : t -> int
val n_tasks : t -> int

val time : t -> int -> procs:int -> float
(** [time tbl i ~procs] = [Task.time (task i) ~speed ~procs], bit-exact.
    Raises [Invalid_argument] when [procs] is outside [\[1, max_procs\]]. *)

val work : t -> int -> procs:int -> float
(** [work tbl i ~procs] = [Task.work (task i) ~speed ~procs], bit-exact. *)
