(** Discrete-event simulation engine for flows and timers.

    This is the repository's stand-in for SimGrid (see DESIGN.md §4): a
    classic event-driven core where network flows share link bandwidth under
    Max-Min fairness (bounded multi-port model) and computations are timers —
    on a homogeneous cluster with dedicated processors a task's duration is
    known once its allocation is, so no processor-sharing model is needed;
    exclusivity is enforced by the driver (the schedule evaluator).

    A flow from [src] to [dst] experiences the route's one-way latency, then
    transfers its payload at the Max-Min fair rate, re-evaluated every time a
    flow starts or finishes, subject to SimGrid's empirical end-to-end cap
    [β' = min(β, Wmax/RTT)]. A flow with [src = dst] is a local memory copy
    and completes instantly — redistribution between identical processor sets
    is free (paper §II-A). *)

type t

val create : Rats_platform.Cluster.t -> t

val cluster : t -> Rats_platform.Cluster.t
val now : t -> float

val at : t -> float -> (t -> unit) -> unit
(** [at eng time f] schedules callback [f] at absolute [time] ≥ [now eng]
    (raises [Invalid_argument] on past times). Callbacks at equal times run
    in scheduling order. *)

val after : t -> float -> (t -> unit) -> unit
(** [after eng delay f] = [at eng (now eng +. delay)]. *)

val start_flow :
  t -> src:int -> dst:int -> bytes:float ->
  on_complete:(t -> unit) -> unit
(** Starts a flow now. [on_complete] fires when the last byte arrives. Zero
    (or negative) payloads and self-flows complete at [now] (still through
    the event queue, preserving causality). *)

val active_flows : t -> int

val run : t -> float
(** Runs until no event or flow remains; returns the final simulated time. *)

val run_until : t -> float -> unit
(** Advances simulated time to exactly the given date, processing everything
    scheduled before it. *)

(** {2 Observability}

    Per-engine counters, kept as plain fields (an engine lives on one
    domain) and published to the {!Rats_obs.Metrics} registry when a run
    completes ([rats_sim_events_total], [rats_sim_event_queue_depth_max],
    plus the engine's {!Rats_sim.Maxmin.Incremental} solver counters);
    {!run} additionally records a ["sim:run"] trace span. *)

val events_processed : t -> int
(** Events handled so far: drained timer callbacks plus flow completions. *)

val max_queue_depth : t -> int
(** High-water mark of the pending-event queue. *)
