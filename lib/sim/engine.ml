module Cluster = Rats_platform.Cluster
module Pqueue = Rats_util.Pqueue
module Metrics = Rats_obs.Metrics
module Trace = Rats_obs.Trace
module Instr = Rats_obs.Instr
module Inc = Maxmin.Incremental

type flow = {
  links : int array;
  rate_cap : float;
  mutable remaining : float;
  on_complete : t -> unit;
  mutable handle : Inc.handle;  (* solver slot while active; -1 otherwise *)
  mutable rate : float;  (* fair rate as of the last refresh *)
}

and t = {
  cluster : Cluster.t;
  mutable time : float;
  events : (t -> unit) Pqueue.t;
  solver : Inc.t;
  mutable flows : flow array;  (* active, transferring: indices < n_flows,
                                  in activation order *)
  mutable n_flows : int;
  mutable rates_valid : bool;
  (* Plain (single-domain) observability counters; published to the global
     metrics registry once per [run] so the hot loop never touches an
     atomic. *)
  mutable events_processed : int;
  mutable max_queue_depth : int;
  mutable published_events : int;
}

let dummy_flow =
  {
    links = [||];
    rate_cap = infinity;
    remaining = 0.;
    on_complete = (fun _ -> ());
    handle = -1;
    rate = 0.;
  }

let create cluster =
  {
    cluster;
    time = 0.;
    events = Pqueue.create ();
    solver =
      Inc.create
        ~n_links:(Cluster.n_links cluster)
        ~capacity:(fun l -> (Cluster.link cluster l).Rats_platform.Link.bandwidth)
        ();
    flows = Array.make 64 dummy_flow;
    n_flows = 0;
    rates_valid = false;
    events_processed = 0;
    max_queue_depth = 0;
    published_events = 0;
  }

let cluster t = t.cluster
let now t = t.time

let at t time f =
  if time < t.time -. 1e-12 then invalid_arg "Engine.at: time in the past";
  Pqueue.push t.events (Float.max time t.time) f;
  let depth = Pqueue.size t.events in
  if depth > t.max_queue_depth then t.max_queue_depth <- depth

let after t delay f = at t (t.time +. Float.max 0. delay) f

let activate_flow t flow =
  flow.handle <- Inc.add t.solver ~links:flow.links ~rate_cap:flow.rate_cap;
  if t.n_flows = Array.length t.flows then begin
    let bigger = Array.make (2 * t.n_flows) dummy_flow in
    Array.blit t.flows 0 bigger 0 t.n_flows;
    t.flows <- bigger
  end;
  t.flows.(t.n_flows) <- flow;
  t.n_flows <- t.n_flows + 1;
  t.rates_valid <- false

let start_flow t ~src ~dst ~bytes ~on_complete =
  let route = Cluster.route t.cluster ~src ~dst in
  if bytes <= 0. || Array.length route = 0 then
    (* Free transfer: local copy or empty payload. Completion still goes
       through the queue so observers see a consistent event order. *)
    at t t.time (fun t -> on_complete t)
  else begin
    let latency = Cluster.one_way_latency t.cluster ~route in
    let rate_cap = Cluster.flow_rate_cap t.cluster ~route in
    let flow =
      { links = route; rate_cap; remaining = bytes; on_complete;
        handle = -1; rate = 0. }
    in
    after t latency (fun t -> activate_flow t flow)
  end

let active_flows t = t.n_flows

let refresh_rates t =
  Inc.refresh t.solver;
  for i = 0 to t.n_flows - 1 do
    let f = t.flows.(i) in
    f.rate <- Inc.rate t.solver f.handle
  done;
  t.rates_valid <- true

(* A transferred remainder below this is rounding noise (sub-microbyte). *)
let eps_bytes = 1e-6

let next_flow_completion t =
  let acc = ref infinity in
  for i = 0 to t.n_flows - 1 do
    let f = t.flows.(i) in
    if f.rate > 0. then acc := Float.min !acc (t.time +. (f.remaining /. f.rate))
  done;
  !acc

(* Advance the clock to [date], draining flow payloads at current rates. A
   flow also counts as finished when its residue would drain within a
   nanosecond: otherwise a residue smaller than the clock's ulp could stall
   the simulation (time would stop advancing). *)
let advance_to t date =
  let dt = date -. t.time in
  if dt > 0. then
    for i = 0 to t.n_flows - 1 do
      let f = t.flows.(i) in
      f.remaining <- f.remaining -. (f.rate *. dt)
    done;
  t.time <- date;
  (* Compact survivors in place; finished flows accumulate newest-first
     (their completion callbacks historically ran in reverse activation
     order, and schedule replay observes that order). *)
  let finished = ref [] in
  let live = ref 0 in
  for i = 0 to t.n_flows - 1 do
    let f = t.flows.(i) in
    if f.remaining <= eps_bytes +. (f.rate *. 1e-9) then
      finished := f :: !finished
    else begin
      t.flows.(!live) <- f;
      incr live
    end
  done;
  match !finished with
  | [] -> ()
  | fin ->
      for i = !live to t.n_flows - 1 do
        t.flows.(i) <- dummy_flow
      done;
      t.n_flows <- !live;
      t.rates_valid <- false;
      List.iter
        (fun f ->
          Inc.remove t.solver f.handle;
          f.handle <- -1;
          t.events_processed <- t.events_processed + 1)
        fin;
      List.iter (fun f -> f.on_complete t) fin

let step t =
  if not t.rates_valid then refresh_rates t;
  let t_flow = next_flow_completion t in
  let t_event =
    match Pqueue.peek t.events with None -> infinity | Some (d, _) -> d
  in
  let date = Float.min t_flow t_event in
  if date = infinity then false
  else begin
    advance_to t date;
    (* Run every callback scheduled at this date (callbacks may enqueue more
       work at the same date; keep draining). *)
    let rec drain () =
      match Pqueue.peek t.events with
      | Some (d, _) when d <= t.time +. 1e-15 -> (
          match Pqueue.pop t.events with
          | Some (_, f) ->
              t.events_processed <- t.events_processed + 1;
              f t;
              drain ()
          | None -> ())
      | _ -> ()
    in
    drain ();
    true
  end

let events_processed t = t.events_processed
let max_queue_depth t = t.max_queue_depth

(* Counter deltas go to the registry in one batch; repeated runs of the
   same engine publish only what the latest run added. *)
let publish t =
  let d = t.events_processed - t.published_events in
  if d > 0 then Metrics.add Instr.sim_events d;
  t.published_events <- t.events_processed;
  Metrics.observe_max Instr.sim_queue_depth_max
    (float_of_int t.max_queue_depth);
  Inc.publish t.solver

let run t =
  Trace.span ~cat:"sim" "sim:run"
    ~args:(fun () ->
      [
        ("events", string_of_int t.events_processed);
        ("max_queue_depth", string_of_int t.max_queue_depth);
      ])
    (fun () ->
      while step t do
        ()
      done;
      Metrics.incr Instr.sim_runs;
      publish t;
      t.time)

let run_until t date =
  if date < t.time then invalid_arg "Engine.run_until: date in the past";
  let continue = ref true in
  while !continue do
    if not t.rates_valid then refresh_rates t;
    let t_flow = next_flow_completion t in
    let t_event =
      match Pqueue.peek t.events with None -> infinity | Some (d, _) -> d
    in
    let next = Float.min t_flow t_event in
    if next > date then begin
      advance_to t date;
      continue := false
    end
    else ignore (step t)
  done;
  publish t
