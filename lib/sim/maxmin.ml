module Metrics = Rats_obs.Metrics
module Instr = Rats_obs.Instr

type flow = { links : int array; rate_cap : float }

(* A frozen-rate margin below [eps_of cap] counts as saturated; shared by the
   reference solver and the incremental one so both freeze identically. *)
let eps_of cap = 1e-9 *. Float.max 1. cap

let solve ~n_links ~capacity flows =
  let n = Array.length flows in
  let rates = Array.make n 0. in
  let frozen = Array.make n false in
  let rem = Array.init n_links capacity in
  let users = Array.make n_links 0 in
  (* Validate and set up link user counts. *)
  Array.iteri
    (fun i f ->
      if f.rate_cap <= 0. then invalid_arg "Maxmin.solve: non-positive cap";
      Array.iter
        (fun l ->
          if l < 0 || l >= n_links then invalid_arg "Maxmin.solve: bad link";
          if rem.(l) <= 0. then invalid_arg "Maxmin.solve: non-positive capacity";
          users.(l) <- users.(l) + 1)
        f.links;
      (* Unconstrained flows saturate immediately. *)
      if Array.length f.links = 0 && f.rate_cap = infinity then begin
        rates.(i) <- infinity;
        frozen.(i) <- true
      end)
    flows;
  let active =
    ref (Array.fold_left (fun acc b -> if b then acc else acc + 1) 0 frozen)
  in
  let rounds = ref 0 in
  while !active > 0 do
    incr rounds;
    (* Water level increment: the smallest margin before a link saturates or
       a flow reaches its cap. *)
    let level = ref infinity in
    for l = 0 to n_links - 1 do
      if users.(l) > 0 then
        level := Float.min !level (rem.(l) /. float_of_int users.(l))
    done;
    for i = 0 to n - 1 do
      if not frozen.(i) then
        level := Float.min !level (flows.(i).rate_cap -. rates.(i))
    done;
    if !level = infinity then
      (* Only capless, linkless... cannot happen: such flows were frozen. *)
      invalid_arg "Maxmin.solve: unbounded flow";
    let level = !level in
    for i = 0 to n - 1 do
      if not frozen.(i) then rates.(i) <- rates.(i) +. level
    done;
    for l = 0 to n_links - 1 do
      if users.(l) > 0 then rem.(l) <- rem.(l) -. (level *. float_of_int users.(l))
    done;
    (* Freeze flows on saturated links or at their cap. *)
    for i = 0 to n - 1 do
      if not frozen.(i) then begin
        let f = flows.(i) in
        let saturated_link =
          Array.exists (fun l -> rem.(l) <= eps_of (capacity l)) f.links
        in
        let at_cap =
          f.rate_cap < infinity
          && f.rate_cap -. rates.(i) <= eps_of f.rate_cap
        in
        if saturated_link || at_cap then begin
          frozen.(i) <- true;
          decr active;
          Array.iter (fun l -> users.(l) <- users.(l) - 1) f.links
        end
      end
    done
  done;
  Metrics.incr Instr.maxmin_solves;
  if !rounds > 0 then Metrics.add Instr.maxmin_iterations !rounds;
  rates

let utilization ~n_links flows ~rates l =
  if l < 0 || l >= n_links then invalid_arg "Maxmin.utilization: bad link";
  let acc = ref 0. in
  Array.iteri
    (fun i f -> if Array.exists (fun x -> x = l) f.links then acc := !acc +. rates.(i))
    flows;
  !acc

module Incremental = struct
  type handle = int

  (* The rate vector of a flow set decomposes over the connected components
     of the flow-link graph: a component's rates depend only on its own
     flows and links. The solver exploits that twice. Across refreshes, a
     component untouched since the last refresh keeps its rates verbatim —
     only components reachable from an added or removed flow (the dirty
     set) are re-solved. Within a component, the water-fill runs on the
     observation that every unfrozen flow carries the same accumulated
     rate, so one cumulative level plus per-cap-class counts replaces the
     per-flow scans of the reference solver: a round costs O(component
     links) instead of O(flows + n_links), and every freeze is O(flow
     degree). The arithmetic per component is kept operation-for-operation
     identical to [solve] run on that component alone (min over the same
     margins, the same subtractions in the same order), so re-solving a
     dirty component or all of them yields bit-identical rates and the
     result is a pure function of the alive flow set, however it was
     reached. Against [solve] run on the *whole* flow set the rates agree
     only up to rounding: the reference accumulates globally-minimal
     levels across components, a different float summation (see
     docs/ALGORITHMS.md). *)

  type t = {
    n_links : int;
    link_cap : float array;
    full_threshold : float;
    (* Flow store: one slot per flow, reused through a free list. *)
    mutable f_links : int array array;  (* [||] after free *)
    mutable f_cap : float array;
    mutable f_rate : float array;
    mutable f_alive : bool array;
    mutable high : int;  (* slots ever handed out: ids < high *)
    mutable free : int list;
    mutable n_alive : int;
    mutable n_linked : int;  (* alive flows crossing >= 1 link *)
    (* Dirty links accumulated since the last refresh. *)
    dirty_flag : bool array;
    mutable dirty_links : int list;
    (* link -> alive flows adjacency, rebuilt per refresh (counting sort). *)
    adj_off : int array;  (* n_links + 1 *)
    mutable adj : int array;
    (* Traversal stamps (per flow slot / per link), valid when = stamp. *)
    mutable flow_mark : int array;
    link_mark : int array;
    mutable stamp : int;
    (* Per-component solve scratch. *)
    rem : float array;  (* per link *)
    users : int array;  (* per link *)
    mutable frozen : int array;  (* per flow slot, stamp-valid *)
    mutable class_of : int array;  (* per flow slot, cap-class index *)
    mutable comp_flows : int array;
    mutable comp_links : int array;
    mutable caps : float array;  (* distinct finite caps, ascending *)
    mutable cap_count : int array;  (* unfrozen flows per class *)
    mutable cap_members : int list array;
    (* Plain observability counters (an instance lives on one domain),
       published as registry deltas by [publish]. *)
    mutable inc_refreshes : int;
    mutable full_refreshes : int;
    mutable component_solves : int;
    mutable rounds : int;
    mutable dirty_flows : int;
    mutable skipped_flows : int;
    mutable dirty_set_max : int;
    mutable pub_inc : int;
    mutable pub_full : int;
    mutable pub_comp : int;
    mutable pub_rounds : int;
    mutable pub_dirty : int;
    mutable pub_skipped : int;
  }

  let create ?(full_threshold = 0.5) ~n_links ~capacity () =
    if n_links < 0 then invalid_arg "Maxmin.Incremental.create: n_links < 0";
    if not (full_threshold >= 0.) then
      invalid_arg "Maxmin.Incremental.create: negative threshold";
    let link_cap = Array.init n_links capacity in
    {
      n_links;
      link_cap;
      full_threshold;
      f_links = Array.make 16 [||];
      f_cap = Array.make 16 0.;
      f_rate = Array.make 16 0.;
      f_alive = Array.make 16 false;
      high = 0;
      free = [];
      n_alive = 0;
      n_linked = 0;
      dirty_flag = Array.make n_links false;
      dirty_links = [];
      adj_off = Array.make (n_links + 1) 0;
      adj = Array.make 16 0;
      flow_mark = Array.make 16 0;
      link_mark = Array.make n_links 0;
      stamp = 0;
      rem = Array.make n_links 0.;
      users = Array.make n_links 0;
      frozen = Array.make 16 0;
      class_of = Array.make 16 (-1);
      comp_flows = Array.make 16 0;
      comp_links = Array.make 16 0;
      caps = Array.make 8 0.;
      cap_count = Array.make 8 0;
      cap_members = Array.make 8 [];
      inc_refreshes = 0;
      full_refreshes = 0;
      component_solves = 0;
      rounds = 0;
      dirty_flows = 0;
      skipped_flows = 0;
      dirty_set_max = 0;
      pub_inc = 0;
      pub_full = 0;
      pub_comp = 0;
      pub_rounds = 0;
      pub_dirty = 0;
      pub_skipped = 0;
    }

  let n_flows t = t.n_alive

  let grow_floats a len init =
    let n = Array.length a in
    if len <= n then a
    else begin
      let b = Array.make (max len (2 * n)) init in
      Array.blit a 0 b 0 n;
      b
    end

  let grow_ints a len init =
    let n = Array.length a in
    if len <= n then a
    else begin
      let b = Array.make (max len (2 * n)) init in
      Array.blit a 0 b 0 n;
      b
    end

  let grow_slots t len =
    t.f_links <- grow_ints t.f_links len [||];
    t.f_cap <- grow_floats t.f_cap len 0.;
    t.f_rate <- grow_floats t.f_rate len 0.;
    t.f_alive <-
      (let n = Array.length t.f_alive in
       if len <= n then t.f_alive
       else begin
         let b = Array.make (max len (2 * n)) false in
         Array.blit t.f_alive 0 b 0 n;
         b
       end);
    t.flow_mark <- grow_ints t.flow_mark len 0;
    t.frozen <- grow_ints t.frozen len 0;
    t.class_of <- grow_ints t.class_of len (-1)

  let mark_link_dirty t l =
    if not t.dirty_flag.(l) then begin
      t.dirty_flag.(l) <- true;
      t.dirty_links <- l :: t.dirty_links
    end

  let add t ~links ~rate_cap =
    if rate_cap <= 0. then invalid_arg "Maxmin.Incremental.add: non-positive cap";
    Array.iter
      (fun l ->
        if l < 0 || l >= t.n_links then invalid_arg "Maxmin.Incremental.add: bad link";
        if t.link_cap.(l) <= 0. then
          invalid_arg "Maxmin.Incremental.add: non-positive capacity")
      links;
    let i =
      match t.free with
      | i :: rest ->
          t.free <- rest;
          i
      | [] ->
          let i = t.high in
          grow_slots t (i + 1);
          t.high <- i + 1;
          i
    in
    t.f_links.(i) <- links;
    t.f_cap.(i) <- rate_cap;
    t.f_alive.(i) <- true;
    t.n_alive <- t.n_alive + 1;
    if Array.length links = 0 then
      (* No link interaction: the flow's fair rate is its own cap. *)
      t.f_rate.(i) <- rate_cap
    else begin
      t.f_rate.(i) <- 0.;
      t.n_linked <- t.n_linked + 1;
      Array.iter (fun l -> mark_link_dirty t l) links
    end;
    i

  let remove t i =
    if i < 0 || i >= t.high || not t.f_alive.(i) then
      invalid_arg "Maxmin.Incremental.remove: dead handle";
    t.f_alive.(i) <- false;
    t.n_alive <- t.n_alive - 1;
    if Array.length t.f_links.(i) > 0 then begin
      t.n_linked <- t.n_linked - 1;
      Array.iter (fun l -> mark_link_dirty t l) t.f_links.(i)
    end;
    t.f_links.(i) <- [||];
    t.free <- i :: t.free

  let rate t i =
    if i < 0 || i >= t.high then invalid_arg "Maxmin.Incremental.rate: bad handle";
    t.f_rate.(i)

  (* Rebuild the link -> alive-flow adjacency in two counting passes. *)
  let rebuild_adjacency t =
    let off = t.adj_off in
    Array.fill off 0 (t.n_links + 1) 0;
    let total = ref 0 in
    for i = 0 to t.high - 1 do
      if t.f_alive.(i) then begin
        let links = t.f_links.(i) in
        total := !total + Array.length links;
        Array.iter (fun l -> off.(l + 1) <- off.(l + 1) + 1) links
      end
    done;
    for l = 1 to t.n_links do
      off.(l) <- off.(l) + off.(l - 1)
    done;
    t.adj <- grow_ints t.adj !total 0;
    (* Ascending flow ids within each link's slice. *)
    let cursor = Array.copy off in
    for i = 0 to t.high - 1 do
      if t.f_alive.(i) then
        Array.iter
          (fun l ->
            t.adj.(cursor.(l)) <- i;
            cursor.(l) <- cursor.(l) + 1)
          t.f_links.(i)
    done

  (* --- one component ----------------------------------------------------- *)

  (* Collect the connected component containing flow [seed] into
     [comp_flows]/[comp_links] (stamp-marking visited flows and links) and
     return (n_flows, n_links) of the component. *)
  let collect_component t seed =
    let nf = ref 0 and nl = ref 0 in
    let push_flow i =
      t.flow_mark.(i) <- t.stamp;
      t.comp_flows <- grow_ints t.comp_flows (!nf + 1) 0;
      t.comp_flows.(!nf) <- i;
      incr nf
    in
    let push_link l =
      t.link_mark.(l) <- t.stamp;
      t.comp_links <- grow_ints t.comp_links (!nl + 1) 0;
      t.comp_links.(!nl) <- l;
      incr nl
    in
    push_flow seed;
    let head = ref 0 in
    while !head < !nf do
      let i = t.comp_flows.(!head) in
      incr head;
      Array.iter
        (fun l ->
          if t.link_mark.(l) <> t.stamp then begin
            push_link l;
            for k = t.adj_off.(l) to t.adj_off.(l + 1) - 1 do
              let j = t.adj.(k) in
              if t.flow_mark.(j) <> t.stamp then push_flow j
            done
          end)
        t.f_links.(i);
    done;
    (!nf, !nl)

  (* Water-fill one component. Arithmetic is identical to [solve] run on the
     component's flows alone: every unfrozen flow has accumulated exactly
     [cum], so the reference's per-flow margin min equals
     [smallest unfrozen cap -. cum] (float subtraction is monotonic), and
     rates/remaining-capacity updates perform the same operations in the
     same order. *)
  let solve_component t nf nl =
    t.component_solves <- t.component_solves + 1;
    (* Reset per-link state for the component's links. *)
    for k = 0 to nl - 1 do
      let l = t.comp_links.(k) in
      t.rem.(l) <- t.link_cap.(l);
      t.users.(l) <- 0
    done;
    (* Distinct finite caps, kept ascending (components see few distinct
       caps: routes of equal length share one). *)
    let ncaps = ref 0 in
    let class_index cap =
      let rec find k = if k < !ncaps && t.caps.(k) < cap then find (k + 1) else k in
      let k = find 0 in
      if k < !ncaps && t.caps.(k) = cap then k
      else begin
        t.caps <- grow_floats t.caps (!ncaps + 1) 0.;
        t.cap_count <- grow_ints t.cap_count (!ncaps + 1) 0;
        t.cap_members <-
          (let n = Array.length t.cap_members in
           if !ncaps < n then t.cap_members
           else begin
             let b = Array.make (max (!ncaps + 1) (2 * n)) [] in
             Array.blit t.cap_members 0 b 0 n;
             b
           end);
        for j = !ncaps downto k + 1 do
          t.caps.(j) <- t.caps.(j - 1);
          t.cap_count.(j) <- t.cap_count.(j - 1);
          t.cap_members.(j) <- t.cap_members.(j - 1)
        done;
        t.caps.(k) <- cap;
        t.cap_count.(k) <- 0;
        t.cap_members.(k) <- [];
        incr ncaps;
        (* Shift the class index of already-registered flows. *)
        if k < !ncaps - 1 then
          for m = 0 to nf - 1 do
            let i = t.comp_flows.(m) in
            if t.class_of.(i) >= k && t.frozen.(i) <> t.stamp then
              t.class_of.(i) <- t.class_of.(i) + 1
          done;
        k
      end
    in
    for m = 0 to nf - 1 do
      let i = t.comp_flows.(m) in
      t.frozen.(i) <- 0;
      (* not frozen at this stamp *)
      Array.iter (fun l -> t.users.(l) <- t.users.(l) + 1) t.f_links.(i);
      if t.f_cap.(i) < infinity then begin
        let k = class_index t.f_cap.(i) in
        t.class_of.(i) <- k;
        t.cap_count.(k) <- t.cap_count.(k) + 1;
        t.cap_members.(k) <- i :: t.cap_members.(k)
      end
      else t.class_of.(i) <- -1
    done;
    let active = ref nf in
    let cum = ref 0. in
    let cap_ptr = ref 0 in
    let freeze i =
      t.frozen.(i) <- t.stamp;
      decr active;
      t.f_rate.(i) <- !cum;
      Array.iter (fun l -> t.users.(l) <- t.users.(l) - 1) t.f_links.(i);
      let k = t.class_of.(i) in
      if k >= 0 then t.cap_count.(k) <- t.cap_count.(k) - 1
    in
    while !active > 0 do
      t.rounds <- t.rounds + 1;
      let level = ref infinity in
      for k = 0 to nl - 1 do
        let l = t.comp_links.(k) in
        if t.users.(l) > 0 then
          level := Float.min !level (t.rem.(l) /. float_of_int t.users.(l))
      done;
      while !cap_ptr < !ncaps && t.cap_count.(!cap_ptr) = 0 do
        incr cap_ptr
      done;
      if !cap_ptr < !ncaps then
        level := Float.min !level (t.caps.(!cap_ptr) -. !cum);
      if !level = infinity then
        invalid_arg "Maxmin.Incremental: unbounded flow";
      let level = !level in
      cum := !cum +. level;
      for k = 0 to nl - 1 do
        let l = t.comp_links.(k) in
        if t.users.(l) > 0 then
          t.rem.(l) <- t.rem.(l) -. (level *. float_of_int t.users.(l))
      done;
      (* Freeze flows on saturated links... *)
      for k = 0 to nl - 1 do
        let l = t.comp_links.(k) in
        if t.users.(l) > 0 && t.rem.(l) <= eps_of t.link_cap.(l) then
          for a = t.adj_off.(l) to t.adj_off.(l + 1) - 1 do
            let i = t.adj.(a) in
            if t.frozen.(i) <> t.stamp then freeze i
          done
      done;
      (* ... and whole cap classes that reached their bound. *)
      let continue = ref true in
      while !continue do
        while !cap_ptr < !ncaps && t.cap_count.(!cap_ptr) = 0 do
          incr cap_ptr
        done;
        if
          !cap_ptr < !ncaps
          && t.caps.(!cap_ptr) -. !cum <= eps_of t.caps.(!cap_ptr)
        then
          List.iter
            (fun i -> if t.frozen.(i) <> t.stamp then freeze i)
            t.cap_members.(!cap_ptr)
        else continue := false
      done
    done;
    (* Release member lists so dead flows aren't retained. *)
    for k = 0 to !ncaps - 1 do
      t.cap_members.(k) <- []
    done

  (* --- refresh ----------------------------------------------------------- *)

  (* Solve the component seeded at [i] unless that flow was already solved
     (flow_mark doubles as the "solved this refresh" marker). *)
  let solve_component_of t i =
    if t.flow_mark.(i) <> t.stamp then begin
      let nf, nl = collect_component t i in
      solve_component t nf nl
    end

  let refresh t =
    match t.dirty_links with
    | [] -> ()
    | dirty ->
        t.dirty_links <- [];
        List.iter (fun l -> t.dirty_flag.(l) <- false) dirty;
        rebuild_adjacency t;
        (* Size of the dirty set: flows reachable from a changed link. *)
        t.stamp <- t.stamp + 1;
        let dirty_count = ref 0 in
        let rec visit_link l =
          if t.link_mark.(l) <> t.stamp then begin
            t.link_mark.(l) <- t.stamp;
            for k = t.adj_off.(l) to t.adj_off.(l + 1) - 1 do
              let i = t.adj.(k) in
              if t.flow_mark.(i) <> t.stamp then begin
                t.flow_mark.(i) <- t.stamp;
                incr dirty_count;
                Array.iter visit_link t.f_links.(i)
              end
            done
          end
        in
        List.iter visit_link dirty;
        let dirty_count = !dirty_count in
        if dirty_count > t.dirty_set_max then t.dirty_set_max <- dirty_count;
        if
          float_of_int dirty_count
          > t.full_threshold *. float_of_int t.n_linked
        then begin
          (* Dirty set too large for incrementality to pay: re-solve every
             component (same per-component arithmetic, so same rates). *)
          t.full_refreshes <- t.full_refreshes + 1;
          t.dirty_flows <- t.dirty_flows + t.n_linked;
          t.stamp <- t.stamp + 1;
          for i = 0 to t.high - 1 do
            if t.f_alive.(i) && Array.length t.f_links.(i) > 0 then
              solve_component_of t i
          done
        end
        else begin
          t.inc_refreshes <- t.inc_refreshes + 1;
          t.dirty_flows <- t.dirty_flows + dirty_count;
          t.skipped_flows <- t.skipped_flows + (t.n_linked - dirty_count);
          (* Re-solve exactly the components holding dirty flows. The dirty
             marks are at [stamp]; bump it so component collection re-marks
             flows as it solves them. *)
          let dirty_stamp = t.stamp in
          t.stamp <- t.stamp + 1;
          for i = 0 to t.high - 1 do
            if t.flow_mark.(i) = dirty_stamp && t.f_alive.(i) then
              solve_component_of t i
          done
        end

  let publish t =
    let flush counter total pub =
      let d = total - pub in
      if d > 0 then Metrics.add counter d;
      total
    in
    t.pub_inc <- flush Instr.maxmin_inc_refreshes t.inc_refreshes t.pub_inc;
    t.pub_full <- flush Instr.maxmin_full_refreshes t.full_refreshes t.pub_full;
    t.pub_comp <- flush Instr.maxmin_component_solves t.component_solves t.pub_comp;
    t.pub_rounds <- flush Instr.maxmin_inc_iterations t.rounds t.pub_rounds;
    t.pub_dirty <- flush Instr.maxmin_dirty_flows t.dirty_flows t.pub_dirty;
    t.pub_skipped <- flush Instr.maxmin_skipped_flows t.skipped_flows t.pub_skipped;
    Metrics.observe_max Instr.maxmin_dirty_set_max (float_of_int t.dirty_set_max)
end
