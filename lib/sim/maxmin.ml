module Metrics = Rats_obs.Metrics
module Instr = Rats_obs.Instr

type flow = { links : int array; rate_cap : float }

let solve ~n_links ~capacity flows =
  let n = Array.length flows in
  let rates = Array.make n 0. in
  let frozen = Array.make n false in
  let rem = Array.init n_links capacity in
  let users = Array.make n_links 0 in
  (* Validate and set up link user counts. *)
  Array.iteri
    (fun i f ->
      if f.rate_cap <= 0. then invalid_arg "Maxmin.solve: non-positive cap";
      Array.iter
        (fun l ->
          if l < 0 || l >= n_links then invalid_arg "Maxmin.solve: bad link";
          if rem.(l) <= 0. then invalid_arg "Maxmin.solve: non-positive capacity";
          users.(l) <- users.(l) + 1)
        f.links;
      (* Unconstrained flows saturate immediately. *)
      if Array.length f.links = 0 && f.rate_cap = infinity then begin
        rates.(i) <- infinity;
        frozen.(i) <- true
      end)
    flows;
  let active =
    ref (Array.fold_left (fun acc b -> if b then acc else acc + 1) 0 frozen)
  in
  let rounds = ref 0 in
  while !active > 0 do
    incr rounds;
    (* Water level increment: the smallest margin before a link saturates or
       a flow reaches its cap. *)
    let level = ref infinity in
    for l = 0 to n_links - 1 do
      if users.(l) > 0 then
        level := Float.min !level (rem.(l) /. float_of_int users.(l))
    done;
    for i = 0 to n - 1 do
      if not frozen.(i) then
        level := Float.min !level (flows.(i).rate_cap -. rates.(i))
    done;
    if !level = infinity then
      (* Only capless, linkless... cannot happen: such flows were frozen. *)
      invalid_arg "Maxmin.solve: unbounded flow";
    let level = !level in
    for i = 0 to n - 1 do
      if not frozen.(i) then rates.(i) <- rates.(i) +. level
    done;
    for l = 0 to n_links - 1 do
      if users.(l) > 0 then rem.(l) <- rem.(l) -. (level *. float_of_int users.(l))
    done;
    (* Freeze flows on saturated links or at their cap. *)
    let eps_of cap = 1e-9 *. Float.max 1. cap in
    for i = 0 to n - 1 do
      if not frozen.(i) then begin
        let f = flows.(i) in
        let saturated_link =
          Array.exists (fun l -> rem.(l) <= eps_of (capacity l)) f.links
        in
        let at_cap =
          f.rate_cap < infinity
          && f.rate_cap -. rates.(i) <= eps_of f.rate_cap
        in
        if saturated_link || at_cap then begin
          frozen.(i) <- true;
          decr active;
          Array.iter (fun l -> users.(l) <- users.(l) - 1) f.links
        end
      end
    done
  done;
  Metrics.incr Instr.maxmin_solves;
  if !rounds > 0 then Metrics.add Instr.maxmin_iterations !rounds;
  rates

let utilization ~n_links flows ~rates l =
  if l < 0 || l >= n_links then invalid_arg "Maxmin.utilization: bad link";
  let acc = ref 0. in
  Array.iteri
    (fun i f -> if Array.exists (fun x -> x = l) f.links then acc := !acc +. rates.(i))
    flows;
  !acc
