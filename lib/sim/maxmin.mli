(** Max-Min fair bandwidth sharing (the core of the SimGrid contention model,
    paper §IV-A).

    Given a set of links with finite capacities and a set of flows, each
    crossing a subset of the links and optionally bounded by an end-to-end
    rate cap (SimGrid's empirical TCP bandwidth [β' = min(β, Wmax/RTT)]),
    compute the unique Max-Min fair rate vector by progressive filling: all
    unfrozen flow rates grow at the same speed; when a link saturates (or a
    flow hits its cap) the flows it carries freeze; repeat.

    A flow crossing no links and having an infinite cap gets rate
    [infinity].

    {!solve} is the reference implementation — O(rounds × (flows + links))
    per call, used by tests as an oracle. The simulation engine uses
    {!Incremental}, which keeps solver state across flow arrivals and
    departures and re-solves only the affected connected components (see
    docs/ALGORITHMS.md for invariants and complexity). *)

type flow = {
  links : int array;  (** Indices of the links the flow crosses. *)
  rate_cap : float;  (** End-to-end bound; [infinity] when unconstrained. *)
}

val solve : n_links:int -> capacity:(int -> float) -> flow array -> float array
(** [solve ~n_links ~capacity flows] returns the fair rate of each flow, in
    the order of [flows]. [capacity l] must be > 0 for every link crossed by
    some flow. Raises [Invalid_argument] on out-of-range link indices or
    non-positive capacities/caps. *)

val utilization :
  n_links:int -> flow array -> rates:float array -> int -> float
(** [utilization ~n_links flows ~rates l] is the total rate crossing link
    [l] — handy for asserting feasibility in tests. *)

(** Incremental max-min solver.

    Holds the live flow set and its rate vector across [add]/[remove]
    calls; [refresh] brings the rates up to date by re-solving only the
    connected components (of the flow–link sharing graph) reachable from a
    changed flow, falling back to re-solving every component when the dirty
    set exceeds [full_threshold × live flows].

    The rate vector is a {e pure function of the alive flow set}: any
    sequence of adds and removes reaching the same set yields bit-identical
    rates (each component's water-fill performs the same float operations
    in the same order as {!solve} run on that component alone). Against
    {!solve} on the whole flow set the rates agree to ~1e-9 relative — the
    global algorithm interleaves level increments across components, a
    different float summation order. *)
module Incremental : sig
  type t

  type handle = int
  (** Identifies a live flow; invalid after {!remove}. *)

  val create :
    ?full_threshold:float -> n_links:int -> capacity:(int -> float) -> unit -> t
  (** A solver for a fixed set of links. [capacity] is sampled once, at
      creation. [full_threshold] (default [0.5]) is the dirty-set fraction
      above which {!refresh} re-solves everything; [0.] forces a full
      re-solve on every refresh (useful to test the fallback path). *)

  val add : t -> links:int array -> rate_cap:float -> handle
  (** Registers a flow. Validation matches {!solve}: raises
      [Invalid_argument] on a non-positive cap, out-of-range link or
      non-positive link capacity. The new flow's rate (and its component's)
      is stale until the next {!refresh}. *)

  val remove : t -> handle -> unit
  (** Unregisters a flow. Raises [Invalid_argument] on a dead handle. *)

  val refresh : t -> unit
  (** Re-solves every component containing a flow added or removed since
      the previous refresh. No-op when nothing changed. Raises
      [Invalid_argument "Maxmin.Incremental: unbounded flow"] if a
      component has no finite constraint (cannot happen when every link
      capacity is finite). *)

  val rate : t -> handle -> float
  (** The flow's rate as of the last {!refresh} ([add] of a linkless flow
      sets its final rate immediately). *)

  val n_flows : t -> int
  (** Live flows currently registered. *)

  val publish : t -> unit
  (** Pushes counter deltas since the last publish to the metrics registry
      ([Instr.maxmin_inc_refreshes], [..._full_refreshes],
      [..._component_solves], [..._inc_iterations], [..._dirty_flows],
      [..._skipped_flows]) and folds this solver's largest dirty set into
      the [Instr.maxmin_dirty_set_max] gauge. Counters are kept as plain
      ints in between — the hot path never touches an atomic. *)
end
