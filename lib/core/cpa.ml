module Dag = Rats_dag.Dag
module Metrics = Rats_obs.Metrics
module Trace = Rats_obs.Trace
module Instr = Rats_obs.Instr

let bottom_levels problem ~alloc =
  let dag = Problem.dag problem in
  Dag.bottom_levels dag
    ~task_cost:(fun i -> Problem.task_time problem i ~procs:alloc.(i))
    ~edge_cost:(fun _ _ bytes -> Problem.edge_cost_estimate problem bytes)

let critical_path_length problem ~alloc =
  let bl = bottom_levels problem ~alloc in
  bl.(Problem.entry problem)

let average_area problem ~alloc ~area_procs =
  if area_procs < 1 then invalid_arg "Cpa.average_area: area_procs < 1";
  let total = ref 0. in
  for i = 0 to Problem.n_tasks problem - 1 do
    total := !total +. Problem.task_work problem i ~procs:alloc.(i)
  done;
  !total /. float_of_int area_procs

(* The allocation step deliberately ignores redistribution costs (paper §I:
   they cannot be estimated before tasks are mapped), so its critical paths
   are computation-only. *)
let computation_critical_path problem ~alloc =
  Dag.critical_path (Problem.dag problem)
    ~task_cost:(fun i -> Problem.task_time problem i ~procs:alloc.(i))
    ~edge_cost:(fun _ _ _ -> 0.)

let allocate_capped problem ~cap =
  let area_procs = Problem.n_procs problem in
  let cap i = min (cap i) area_procs in
  for i = 0 to Problem.n_tasks problem - 1 do
    if cap i < 1 then invalid_arg "Cpa.allocate_capped: cap below 1"
  done;
  Trace.span ~cat:"core" "alloc:cpa" (fun () ->
  let refinements = ref 0 in
  let alloc = Array.make (Problem.n_tasks problem) 1 in
  let continue = ref true in
  while !continue do
    let path, c_inf = computation_critical_path problem ~alloc in
    let w = average_area problem ~alloc ~area_procs in
    if c_inf <= w then continue := false
    else begin
      (* Pick the critical-path task that gains the most execution time from
         one extra processor. *)
      let best = ref None in
      List.iter
        (fun i ->
          if alloc.(i) < cap i && not (Problem.is_virtual problem i) then begin
            let gain =
              Problem.task_time problem i ~procs:alloc.(i)
              -. Problem.task_time problem i ~procs:(alloc.(i) + 1)
            in
            match !best with
            | Some (_, g) when g >= gain -> ()
            | _ -> best := Some (i, gain)
          end)
        path;
      match !best with
      | Some (i, gain) when gain > 0. ->
          alloc.(i) <- alloc.(i) + 1;
          incr refinements
      | _ -> continue := false
    end
  done;
  Metrics.incr Instr.alloc_runs;
  if !refinements > 0 then Metrics.add Instr.alloc_refinements !refinements;
  Problem.publish_metrics problem;
  alloc)

let allocate_with problem ~max_per_task =
  if max_per_task < 1 then invalid_arg "Cpa.allocate_with: max_per_task < 1";
  allocate_capped problem ~cap:(fun _ -> max_per_task)

let allocate problem =
  allocate_with problem ~max_per_task:(Problem.n_procs problem)
