module Dag = Rats_dag.Dag

let average_parallelism problem =
  let n = Problem.n_tasks problem in
  let total = ref 0. in
  for i = 0 to n - 1 do
    total := !total +. Problem.task_work problem i ~procs:1
  done;
  (* Computation-only depth: the classic work / critical-path-length
     definition of average parallelism. *)
  let bl =
    Dag.bottom_levels (Problem.dag problem)
      ~task_cost:(fun i -> Problem.task_time problem i ~procs:1)
      ~edge_cost:(fun _ _ _ -> 0.)
  in
  let depth = bl.(Problem.entry problem) in
  if depth <= 0. then 1. else Float.max 1. (!total /. depth)

let max_per_task problem =
  let p = float_of_int (Problem.n_procs problem) in
  let a = average_parallelism problem in
  max 1 (int_of_float (Float.ceil (p /. a)))

let allocate problem =
  Rats_obs.Trace.span ~cat:"core" "alloc:hcpa" (fun () ->
      Cpa.allocate_with problem ~max_per_task:(max_per_task problem))
