(** A scheduling problem: one mixed-parallel application on one cluster.

    Bundles the DAG and the platform and provides the cost helpers every
    scheduling phase needs: Amdahl execution times on the cluster's
    processors, task work, and the allocation-independent edge cost estimate
    used when computing critical paths and bottom-level priorities (one NIC
    serializing the whole transfer — the conventional pre-mapping
    approximation, since actual redistribution costs depend on the processor
    sets chosen later). *)

type t

val make : dag:Rats_dag.Dag.t -> cluster:Rats_platform.Cluster.t -> t
(** Raises [Invalid_argument] if the DAG does not have a single entry and a
    single exit task (apply {!Rats_dag.Dag.ensure_single_entry_exit} first).

    Eagerly precomputes a {!Rats_dag.Timing} table of [T(t, p)] for every
    task and every [p ∈ \[1, n_procs\]], so {!task_time}/{!task_work} are
    array lookups — bit-identical to the direct Amdahl computation. *)

val dag : t -> Rats_dag.Dag.t
val cluster : t -> Rats_platform.Cluster.t

val n_tasks : t -> int
val n_procs : t -> int

val entry : t -> int
val exit_task : t -> int

val task_time : t -> int -> procs:int -> float
(** [task_time p i ~procs] = Amdahl time of task [i] on [procs] nodes.
    Served from the timing table for [procs ∈ \[1, n_procs\]]; computed
    directly (same bits) outside that range. *)

val task_work : t -> int -> procs:int -> float

val publish_metrics : t -> unit
(** Pushes the timing-table lookup count accumulated since the last call to
    the metrics registry ([Instr.timing_lookups]). Called by the scheduling
    phases at their ends (CPA allocation, RATS mapping, evaluation), so
    lookups stay plain field increments in between. *)

val edge_cost_estimate : t -> float -> float
(** [edge_cost_estimate p bytes]: latency + transfer time of [bytes] through
    one node link. *)

val is_virtual : t -> int -> bool
