module Procset = Rats_util.Procset
module Dag = Rats_dag.Dag
module Engine = Rats_sim.Engine
module Redistribution = Rats_redist.Redistribution

type span = {
  src_task : int;
  dst_task : int;
  span_start : float;
  span_finish : float;
  span_bytes : float;  (* remote bytes of the redistribution *)
}

type result = {
  makespan : float;
  starts : float array;
  finishes : float array;
  remote_bytes : float;
  local_bytes : float;
  redistributions : int;
  avoided : int;
  spans : span list;  (* paid redistributions, chronological *)
}

(* Work-conserving replay: a task starts as soon as all its input
   redistributions have arrived and every processor of its set is free —
   processors are acquired atomically, so no partial holds and no deadlock.
   Assigned tasks are considered in the mapper's estimated order, but a task
   whose data is late never blocks a later-ready one (no head-of-line
   blocking), matching how a mixed-parallel runtime executes a schedule. *)
type sim_state = {
  schedule : Schedule.t;
  work_conserving : bool;
  optimize_placement : bool;
  queues : int array array;  (* per processor: assigned tasks, mapper order *)
  busy : bool array;  (* per processor *)
  pending_inputs : int array;  (* per task: input redistributions in flight *)
  started : bool array;
  finished : bool array;
  starts : float array;
  finishes : float array;
  mutable remote_bytes : float;
  mutable local_bytes : float;
  mutable redistributions : int;
  mutable avoided : int;
  mutable rev_spans : span list;
}

let build_queues schedule =
  let problem = Schedule.problem schedule in
  let p = Problem.n_procs problem in
  let per_proc = Array.make p [] in
  Array.iter
    (fun e ->
      Procset.iter
        (fun q -> per_proc.(q) <- e.Schedule.task :: per_proc.(q))
        e.Schedule.procs)
    (Schedule.entries schedule);
  Array.map
    (fun tasks ->
      let arr = Array.of_list tasks in
      let key t =
        let e = Schedule.entry schedule t in
        (e.Schedule.est_start, e.Schedule.seq)
      in
      Array.sort (fun a b -> compare (key a) (key b)) arr;
      arr)
    per_proc

let procs_free st procs =
  Procset.fold (fun q ok -> ok && not st.busy.(q)) procs true

(* In strict (non-work-conserving) mode a task may only start when it is the
   first unfinished task of every processor it is assigned to. *)
let first_unfinished st q =
  let queue = st.queues.(q) in
  let rec go k =
    if k >= Array.length queue then None
    else if st.finished.(queue.(k)) then go (k + 1)
    else Some queue.(k)
  in
  go 0

let strict_eligible st task procs =
  st.work_conserving
  || Procset.fold (fun q ok -> ok && first_unfinished st q = Some task) procs true

let rec try_start st eng task =
  let e = Schedule.entry st.schedule task in
  if
    (not st.started.(task))
    && st.pending_inputs.(task) = 0
    && procs_free st e.Schedule.procs
    && strict_eligible st task e.Schedule.procs
  then begin
    st.started.(task) <- true;
    st.starts.(task) <- Engine.now eng;
    Procset.iter (fun q -> st.busy.(q) <- true) e.Schedule.procs;
    let problem = Schedule.problem st.schedule in
    let duration =
      Problem.task_time problem task ~procs:(Procset.size e.Schedule.procs)
    in
    Engine.after eng duration (fun eng -> on_finish st eng task)
  end

and try_start_on_proc st eng q =
  if st.work_conserving then begin
    (* First eligible assigned task of the processor, in mapper order. *)
    let queue = st.queues.(q) in
    let rec go k =
      if k < Array.length queue && not st.busy.(q) then begin
        let t = queue.(k) in
        if not st.started.(t) then try_start st eng t;
        go (k + 1)
      end
    in
    go 0
  end
  else
    match first_unfinished st q with
    | Some t when not st.started.(t) -> try_start st eng t
    | _ -> ()

and on_finish st eng task =
  st.finishes.(task) <- Engine.now eng;
  st.finished.(task) <- true;
  let e = Schedule.entry st.schedule task in
  Procset.iter (fun q -> st.busy.(q) <- false) e.Schedule.procs;
  (* Launch the redistribution toward every successor. *)
  let problem = Schedule.problem st.schedule in
  let dag = Problem.dag problem in
  List.iter
    (fun (succ, bytes) ->
      let se = Schedule.entry st.schedule succ in
      let arrival eng =
        st.pending_inputs.(succ) <- st.pending_inputs.(succ) - 1;
        try_start st eng succ
      in
      if bytes <= 0. then Engine.at eng (Engine.now eng) arrival
      else begin
        let plan =
          Redistribution.plan ~optimize_placement:st.optimize_placement
            ~sender:e.Schedule.procs ~receiver:se.Schedule.procs ~bytes ()
        in
        let remote = List.filter (fun t -> t.Redistribution.src <> t.dst) plan in
        st.remote_bytes <- st.remote_bytes +. Redistribution.remote_bytes plan;
        st.local_bytes <- st.local_bytes +. Redistribution.local_bytes plan;
        if remote = [] then begin
          st.avoided <- st.avoided + 1;
          Engine.at eng (Engine.now eng) arrival
        end
        else begin
          st.redistributions <- st.redistributions + 1;
          let span_start = Engine.now eng in
          let span_bytes = Redistribution.remote_bytes plan in
          let outstanding = ref (List.length remote) in
          List.iter
            (fun t ->
              Engine.start_flow eng ~src:t.Redistribution.src
                ~dst:t.Redistribution.dst ~bytes:t.Redistribution.bytes
                ~on_complete:(fun eng ->
                  decr outstanding;
                  if !outstanding = 0 then begin
                    st.rev_spans <-
                      {
                        src_task = task;
                        dst_task = succ;
                        span_start;
                        span_finish = Engine.now eng;
                        span_bytes;
                      }
                      :: st.rev_spans;
                    arrival eng
                  end))
            remote
        end
      end)
    (Dag.succs dag task);
  (* Freed processors may admit their next eligible task. *)
  Procset.iter (fun q -> try_start_on_proc st eng q) e.Schedule.procs

let run ?(work_conserving = true) ?(optimize_placement = true) schedule =
  let problem = Schedule.problem schedule in
  let n = Schedule.n_tasks schedule in
  let eng = Engine.create (Problem.cluster problem) in
  let dag = Problem.dag problem in
  let st =
    {
      schedule;
      work_conserving;
      optimize_placement;
      queues = build_queues schedule;
      busy = Array.make (Problem.n_procs problem) false;
      pending_inputs = Array.init n (fun i -> List.length (Dag.preds dag i));
      started = Array.make n false;
      finished = Array.make n false;
      starts = Array.make n nan;
      finishes = Array.make n nan;
      remote_bytes = 0.;
      local_bytes = 0.;
      redistributions = 0;
      avoided = 0;
      rev_spans = [];
    }
  in
  Engine.at eng 0. (fun eng ->
      for q = 0 to Problem.n_procs problem - 1 do
        try_start_on_proc st eng q
      done);
  let final = Engine.run eng in
  Problem.publish_metrics problem;
  Array.iteri
    (fun i f ->
      if Float.is_nan f then
        failwith (Printf.sprintf "Evaluate.run: task %d never finished" i))
    st.finishes;
  {
    makespan = Float.max final (Array.fold_left Float.max 0. st.finishes);
    starts = st.starts;
    finishes = st.finishes;
    remote_bytes = st.remote_bytes;
    local_bytes = st.local_bytes;
    redistributions = st.redistributions;
    avoided = st.avoided;
    spans =
      List.sort
        (fun a b -> compare (a.span_start, a.dst_task) (b.span_start, b.dst_task))
        st.rev_spans;
  }
