module Dag = Rats_dag.Dag
module Task = Rats_dag.Task
module Timing = Rats_dag.Timing
module Cluster = Rats_platform.Cluster
module Link = Rats_platform.Link
module Metrics = Rats_obs.Metrics
module Instr = Rats_obs.Instr

type t = {
  dag : Dag.t;
  cluster : Cluster.t;
  entry : int;
  exit_task : int;
  timing : Timing.t;  (* T(t,p) for p in [1, n_procs], bit-exact *)
  (* Plain (single-domain) lookup counter; published as registry deltas at
     phase boundaries so the hot path never touches an atomic. *)
  mutable lookups : int;
  mutable published_lookups : int;
}

let make ~dag ~cluster =
  match (Dag.entries dag, Dag.exits dag) with
  | [ entry ], [ exit_task ] ->
      let timing =
        Timing.build dag ~speed:cluster.Cluster.speed
          ~max_procs:(Cluster.n_procs cluster)
      in
      { dag; cluster; entry; exit_task; timing;
        lookups = 0; published_lookups = 0 }
  | _ ->
      invalid_arg
        "Problem.make: DAG must have a single entry and exit \
         (use Dag.ensure_single_entry_exit)"

let dag p = p.dag
let cluster p = p.cluster
let n_tasks p = Dag.n_tasks p.dag
let n_procs p = Cluster.n_procs p.cluster
let entry p = p.entry
let exit_task p = p.exit_task

let task_time p i ~procs =
  if procs >= 1 && procs <= Timing.max_procs p.timing then begin
    p.lookups <- p.lookups + 1;
    Timing.time p.timing i ~procs
  end
  else
    (* Out-of-table sizes (only reachable through direct API use; the
       schedulers never allocate beyond the cluster) keep the old path. *)
    Task.time (Dag.task p.dag i) ~speed:p.cluster.Cluster.speed ~procs

let task_work p i ~procs =
  if procs >= 1 && procs <= Timing.max_procs p.timing then begin
    p.lookups <- p.lookups + 1;
    Timing.work p.timing i ~procs
  end
  else Task.work (Dag.task p.dag i) ~speed:p.cluster.Cluster.speed ~procs

let publish_metrics p =
  let d = p.lookups - p.published_lookups in
  if d > 0 then Metrics.add Instr.timing_lookups d;
  p.published_lookups <- p.lookups

let edge_cost_estimate p bytes =
  if bytes <= 0. then 0.
  else begin
    let link = p.cluster.Cluster.node_link in
    link.Link.latency +. (bytes /. link.Link.bandwidth)
  end

let is_virtual p i = Task.is_virtual (Dag.task p.dag i)
