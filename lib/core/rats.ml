module Procset = Rats_util.Procset
module Dag = Rats_dag.Dag
module Metrics = Rats_obs.Metrics
module Trace = Rats_obs.Trace
module Instr = Rats_obs.Instr

type delta_params = { mindelta : float; maxdelta : float }
type timecost_params = { minrho : float; packing : bool }

type strategy =
  | Baseline
  | Delta of delta_params
  | Timecost of timecost_params

let naive_delta = { mindelta = -0.5; maxdelta = 0.5 }
let naive_timecost = { minrho = 0.5; packing = true }

let strategy_name = function
  | Baseline -> "hcpa"
  | Delta _ -> "delta"
  | Timecost _ -> "time-cost"

let check_params = function
  | Baseline -> ()
  | Delta { mindelta; maxdelta } ->
      if mindelta > 0. || mindelta < -1. then
        invalid_arg "Rats: mindelta outside [-1, 0]";
      if maxdelta < 0. then invalid_arg "Rats: maxdelta negative"
  | Timecost { minrho; _ } ->
      if minrho <= 0. || minrho > 1. then
        invalid_arg "Rats: minrho outside (0, 1]"

(* Predecessors that can save a redistribution: mapped, data-carrying, not
   virtual. Returns (pred id, procset). *)
let strategy_preds st i =
  let problem = Mapping.problem st in
  List.filter_map
    (fun (pred, bytes) ->
      if bytes > 0. && not (Problem.is_virtual problem pred) then
        Some (pred, (Mapping.entry st pred).Schedule.procs)
      else None)
    (Dag.preds (Problem.dag problem) i)

(* --- Secondary sort keys (static within a mapping round) ---------------- *)

(* delta strategy: delta(t) = min(delta+, -delta-), +inf when no candidate. *)
let delta_key st i =
  let np = Mapping.alloc st i in
  List.fold_left
    (fun acc (_, procs) ->
      let d = abs (Procset.size procs - np) in
      if d > 0 then min acc d else acc)
    max_int (strategy_preds st i)

(* time-cost strategy: gain(t) = max (T(t,np) - T(t,np_pred)); tasks are
   sorted by decreasing gain. *)
let gain_key st i =
  let problem = Mapping.problem st in
  let np = Mapping.alloc st i in
  let t_np = Problem.task_time problem i ~procs:np in
  List.fold_left
    (fun acc (_, procs) ->
      Float.max acc (t_np -. Problem.task_time problem i ~procs:(Procset.size procs)))
    neg_infinity (strategy_preds st i)

let sort_key strategy st i =
  match strategy with
  | Baseline -> 0.
  | Delta _ ->
      let d = delta_key st i in
      if d = max_int then infinity else float_of_int d
  | Timecost _ -> -.gain_key st i

(* --- Per-task mapping decisions ----------------------------------------- *)

let decide_delta st i { mindelta; maxdelta } =
  let np = Mapping.alloc st i in
  let preds = strategy_preds st i in
  let fnp = float_of_int np in
  let dmax = int_of_float ((maxdelta *. fnp) +. 1e-9) in
  let dmin = -int_of_float ((-.mindelta *. fnp) +. 1e-9) in
  let stretch =
    List.filter_map
      (fun (p, procs) ->
        let d = Procset.size procs - np in
        if d > 0 then Some (d, p, procs) else None)
      preds
  in
  let pack =
    List.filter_map
      (fun (p, procs) ->
        let d = Procset.size procs - np in
        if d < 0 then Some (d, p, procs) else None)
      preds
  in
  let delta_plus =
    List.fold_left (fun acc (d, _, _) -> min acc d) max_int stretch
  in
  let delta_minus =
    List.fold_left (fun acc (d, _, _) -> max acc d) min_int pack
  in
  let stretch_ok = delta_plus <> max_int && delta_plus <= dmax in
  let pack_ok = delta_minus <> min_int && delta_minus >= dmin in
  let chosen_delta =
    match (stretch_ok, pack_ok) with
    | false, false -> None
    | true, false -> Some delta_plus
    | false, true -> Some delta_minus
    (* Both admissible: least modification wins (the same rationale as the
       delta ready-list sort), stretch on ties. *)
    | true, true -> Some (if delta_plus <= -delta_minus then delta_plus else delta_minus)
  in
  match chosen_delta with
  | None -> None
  | Some d ->
      (* Among the predecessors realizing this delta, earliest finish wins. *)
      let cands =
        List.filter (fun (dd, _, _) -> dd = d) (if d > 0 then stretch else pack)
      in
      let best =
        List.fold_left
          (fun acc (_, _, procs) ->
            let _, finish = Mapping.estimate st i procs in
            match acc with
            | Some (_, bf) when bf <= finish -> acc
            | _ -> Some (procs, finish))
          None cands
      in
      Option.map fst best

let decide_timecost st i { minrho; packing } =
  let problem = Mapping.problem st in
  let np = Mapping.alloc st i in
  let preds = strategy_preds st i in
  let work_np = Problem.task_work problem i ~procs:np in
  (* Stretch: predecessor maximizing the time-cost ratio, kept if >= minrho. *)
  let stretch =
    List.filter_map
      (fun (_, procs) ->
        let sz = Procset.size procs in
        if sz > np then begin
          let rho = work_np /. Problem.task_work problem i ~procs:sz in
          Some (rho, procs)
        end
        else None)
      preds
  in
  let best_stretch =
    List.fold_left
      (fun acc (rho, procs) ->
        match acc with
        | Some (brho, bprocs) ->
            if
              rho > brho
              || (rho = brho
                  && snd (Mapping.estimate st i procs)
                     < snd (Mapping.estimate st i bprocs))
            then Some (rho, procs)
            else acc
        | None -> Some (rho, procs))
      None stretch
  in
  match best_stretch with
  | Some (rho, procs) when rho >= minrho -> Some procs
  | _ when not packing -> None
  | _ ->
      (* Pack: allowed only if the task finishes no later than with the
         baseline mapping of its original allocation. *)
      let _, baseline_finish = Mapping.estimate st i (Mapping.baseline_choice st i) in
      let pack_cands =
        List.filter_map
          (fun (_, procs) ->
            if Procset.size procs < np then begin
              let _, finish = Mapping.estimate st i procs in
              if finish <= baseline_finish +. 1e-12 then Some (finish, procs)
              else None
            end
            else None)
          preds
      in
      List.fold_left
        (fun acc (finish, procs) ->
          match acc with
          | Some (bf, _) when bf <= finish -> acc
          | _ -> Some (finish, procs))
        None pack_cands
      |> Option.map snd

let decide strategy st i =
  if Problem.is_virtual (Mapping.problem st) i then None
  else
    match strategy with
    | Baseline -> None
    | Delta params -> decide_delta st i params
    | Timecost params -> decide_timecost st i params

type stats = { stretched : int; packed : int; unchanged : int }

(* --- Main loop (Algorithm 1) -------------------------------------------- *)

(* Publishes one mapping round's decision counts under the strategy's
   metric names; a pack or stretch is precisely one redistribution
   eliminated (paper §III: the task reuses a predecessor's processor
   set). *)
let publish_stats strategy ~stretched ~packed ~unchanged =
  let strategy = strategy_name strategy in
  let bump kind n =
    if n > 0 then Metrics.add (Instr.map_strategy_counter ~strategy kind) n
  in
  bump `Stretched stretched;
  bump `Packed packed;
  bump `Unchanged unchanged;
  bump `Eliminated (stretched + packed)

let schedule_with_stats ?alloc problem strategy =
  check_params strategy;
  let alloc = match alloc with Some a -> a | None -> Hcpa.allocate problem in
  Trace.span ~cat:"core" ("map:" ^ strategy_name strategy) (fun () ->
  let bl = Cpa.bottom_levels problem ~alloc in
  let st = Mapping.create problem ~alloc in
  let dag = Problem.dag problem in
  let n = Problem.n_tasks problem in
  let unmapped_preds = Array.init n (fun i -> List.length (Dag.preds dag i)) in
  let ready = ref [ Problem.entry problem ] in
  let stretched = ref 0 and packed = ref 0 and unchanged = ref 0 in
  while !ready <> [] do
    let keyed = List.map (fun i -> (i, sort_key strategy st i)) !ready in
    let sorted =
      (* Primary: bottom level, decreasing. Secondary: strategy key,
         increasing. Stable, so equal tasks keep ready-list order. *)
      List.stable_sort
        (fun (i, ki) (j, kj) ->
          match compare bl.(j) bl.(i) with 0 -> compare ki kj | c -> c)
        keyed
    in
    let next_ready = ref [] in
    List.iter
      (fun (i, _) ->
        let np = Mapping.alloc st i in
        let set =
          match decide strategy st i with
          | Some procs ->
              if Procset.size procs > np then incr stretched
              else if Procset.size procs < np then incr packed
              else incr unchanged;
              procs
          | None ->
              incr unchanged;
              Mapping.baseline_choice st i
        in
        ignore (Mapping.commit st i set);
        List.iter
          (fun (succ, _) ->
            unmapped_preds.(succ) <- unmapped_preds.(succ) - 1;
            if unmapped_preds.(succ) = 0 then next_ready := succ :: !next_ready)
          (Dag.succs dag i))
      sorted;
    ready := List.rev !next_ready
  done;
  publish_stats strategy ~stretched:!stretched ~packed:!packed
    ~unchanged:!unchanged;
  Problem.publish_metrics problem;
  ( Mapping.to_schedule st,
    { stretched = !stretched; packed = !packed; unchanged = !unchanged } ))

let schedule ?alloc problem strategy =
  fst (schedule_with_stats ?alloc problem strategy)
