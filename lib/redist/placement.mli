(** Receiver rank placement maximizing self-communication.

    When the sender and receiver processor sets of a redistribution
    intersect, the bytes a shared processor would "send to itself" cost
    nothing. The sender-side rank→processor map is fixed (the data already
    lives there, rank order = ascending processor order); the receiver side
    is free, so we pick the receiver rank of each shared processor to
    maximize the amount kept local (paper §II-A: "our redistribution
    algorithm tries to maximize the amount of self communications").

    Exact maximization is an assignment problem; we use the standard greedy:
    consider each shared processor's best (sender rank, receiver rank)
    overlap in decreasing order and claim free receiver ranks, then fill the
    remaining ranks with the remaining processors in ascending order. For
    block distributions the overlap matrix is banded, so each shared
    processor has at most ⌈p/q⌉+1 candidate ranks and greedy is
    near-optimal. Greedy can still lose to the identity permutation on
    adversarial set pairs, so the result is compared against the natural
    (ascending) order and the better of the two is returned — the placement
    is never worse than not optimizing.

    Note: subsequent redistributions model the data on the receiver set in
    ascending processor order again; the placement permutation is a
    mapping-time optimization, mirroring the paper's simulator. *)

val receiver_ranks :
  sender:Rats_util.Procset.t ->
  receiver:Rats_util.Procset.t ->
  bytes:float ->
  int array
(** [receiver_ranks ~sender ~receiver ~bytes] returns [place] with
    [place.(j)] = the processor holding receiver rank [j]. A permutation of
    [receiver]'s members; equals ascending order when the sets are disjoint
    or [bytes = 0]. Raises [Invalid_argument] if either set is empty. *)
