module Procset = Rats_util.Procset

(* Bytes a placement keeps local: for every receiver rank held by a shared
   processor, the overlap between that processor's fixed sender interval
   and the rank's receiver interval. *)
let local_bytes ~sender ~bytes ~p ~q place =
  let total = ref 0. in
  Array.iteri
    (fun j proc ->
      match Procset.rank proc sender with
      | None -> ()
      | Some i ->
          total :=
            !total +. Block.overlap ~amount:bytes ~senders:p ~receivers:q i j)
    place;
  !total

let receiver_ranks ~sender ~receiver ~bytes =
  let p = Procset.size sender and q = Procset.size receiver in
  if p = 0 || q = 0 then invalid_arg "Placement.receiver_ranks: empty set";
  let shared = Procset.inter sender receiver in
  let natural () = Procset.to_array receiver in
  if Procset.is_empty shared || bytes <= 0. then natural ()
  else begin
    (* Candidate (overlap, proc, receiver rank) for every shared processor,
       looking only at the banded non-zero column range of its sender row. *)
    let candidates = ref [] in
    Procset.iter
      (fun proc ->
        match Procset.rank proc sender with
        | None -> assert false
        | Some i ->
            let j_lo = i * q / p and j_hi = min (q - 1) ((((i + 1) * q) - 1) / p) in
            for j = j_lo to j_hi do
              let a = Block.overlap ~amount:bytes ~senders:p ~receivers:q i j in
              if a > 0. then candidates := (a, proc, j) :: !candidates
            done)
      shared;
    let sorted =
      List.sort (fun (a, p1, j1) (b, p2, j2) ->
          (* Largest overlap first; deterministic tie-break. *)
          match compare b a with 0 -> compare (p1, j1) (p2, j2) | c -> c)
        !candidates
    in
    let place = Array.make q (-1) in
    let placed = Hashtbl.create 16 in
    List.iter
      (fun (_, proc, j) ->
        if place.(j) = -1 && not (Hashtbl.mem placed proc) then begin
          place.(j) <- proc;
          Hashtbl.add placed proc ()
        end)
      sorted;
    (* Fill the holes with the unplaced processors, ascending. *)
    let rest =
      Procset.fold
        (fun proc acc -> if Hashtbl.mem placed proc then acc else proc :: acc)
        receiver []
      |> List.rev
    in
    let rest = ref rest in
    Array.iteri
      (fun j v ->
        if v = -1 then
          match !rest with
          | [] -> assert false
          | proc :: tl ->
              place.(j) <- proc;
              rest := tl)
      place;
    (* Greedy claims ranks by per-candidate overlap and can paint itself
       into a corner that keeps fewer bytes local than not permuting at
       all; never return a placement worse than the natural order. *)
    let natural = natural () in
    if
      local_bytes ~sender ~bytes ~p ~q place
      >= local_bytes ~sender ~bytes ~p ~q natural
    then place
    else natural
  end
