(** Domain-based worker pool with a sharded work queue.

    The experiment corpus (557 configurations × 3 clusters, plus the tuning
    grids) is an embarrassingly parallel workload; this pool executes it on
    OCaml 5 domains while keeping the output {e bit-identical} to serial
    execution: every task writes its result into its own slot of a
    pre-allocated array, so the caller sees results in task-index order no
    matter which domain ran which task, and no floating-point operation is
    reordered within a task.

    The queue is sharded: the index space is split into one contiguous shard
    per worker, each drained through its own atomic cursor (no contention on
    the common path); a worker whose shard is empty steals from the shard
    with the most remaining work. With [jobs = 1] (or singleton/empty
    inputs) no domain is spawned at all — the serial fallback is a plain
    [map].

    Two failure contracts coexist. {!map}/{!mapi}/{!map_array} fail fast: a
    raising task stops the sweep and the exception is re-raised in the
    caller. {!map_result} captures: every task runs to completion and a
    raising task becomes a structured [Error] in its own slot, which is what
    the fault-tolerant experiment engine ({!Exec}) consumes — one poisoned
    configuration no longer discards the other results. *)

val default_jobs : unit -> int
(** The [RATS_JOBS] environment variable if set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)

type task_error = {
  index : int;  (** Input position of the task that raised. *)
  exn : exn;
  backtrace : string;
}

type 'a capture = ('a, task_error) result

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f l] is observably [List.map f l] (same order, same values),
    computed by [min jobs (length l)] domains. [jobs] defaults to
    {!default_jobs}. If [f] raises on any element, one such exception is
    re-raised in the caller after all workers have stopped. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** Index-passing variant of {!map}. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array variant of {!map}. The input array must not be mutated during the
    call. *)

val map_result : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b capture list
(** Fault-capturing variant: same order and worker discipline as {!map},
    but a raising task yields [Error] in its slot and the remaining tasks
    still run. The result list always has the length of the input. *)
