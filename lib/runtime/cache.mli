(** Content-addressed on-disk result cache.

    Entries are keyed by an MD5 of the inputs that determine a result —
    suite configuration, cluster signature, algorithm parameters — plus
    {!version}, a code-version salt bumped whenever the scheduling or
    simulation semantics change, so stale results can never be replayed
    across a semantic change. Values are opaque strings; callers serialize
    (the experiment layer uses ["%h"] hex floats for bit-exact round-trips).

    Writes are atomic (unique temp file in the cache directory + [rename]),
    so a crashed or concurrent run can never expose a half-written entry.
    Reads are corruption-tolerant: every entry embeds a checksum of its
    payload, and any unreadable, truncated or tampered file is treated as a
    miss and {e quarantined} — moved to [<dir>/quarantine/] for post-mortem
    instead of silently deleted — leaving the slot writable again. All I/O
    errors (unwritable directory, full disk, partial writes) degrade the
    cache to misses; they never fail the run. Hit/miss/quarantine counters
    are atomics — safe to bump from {!Pool} workers.

    A {!Fault} configuration, when given, drives the error paths on demand:
    [corrupt@cache.write] tears payloads behind the checksum's back and
    [crash@cache.write] aborts writes mid-entry with a simulated [ENOSPC] —
    this is how the quarantine and partial-write behavior is tested. *)

type t

val version : string
(** Code-version salt mixed into every {!key}. Bump on any change that
    invalidates previously cached results. *)

val default_dir : string
(** ["bench_results/.cache"]. *)

val create : ?fault:Fault.t -> ?dir:string -> unit -> t
(** Creates [dir] (and its parent) if possible; an uncreatable directory
    degrades every lookup to a miss and every store to a no-op rather than
    raising. *)

val of_env : ?fault:Fault.t -> unit -> t option
(** [None] when [RATS_CACHE] is ["off"] / ["0"]; otherwise a cache in
    [RATS_CACHE_DIR] (default {!default_dir}). *)

val key : string list -> string
(** Stable content hash of the given parts (order-sensitive, injective on
    part lists, salted with {!version}). *)

val find : t -> string -> string option
(** Payload stored under the key, or [None] (counted as a miss) when absent
    or corrupted; corrupted entries are quarantined. *)

val store : t -> string -> string -> unit
(** [store t key payload] atomically persists the entry. I/O errors are
    swallowed (and the temp file removed) — the cache is an accelerator,
    never a correctness dependency. *)

val path : t -> string -> string
(** On-disk location of a key's entry (exposed for tests and tooling). *)

val quarantine_dir : t -> string
(** Where damaged entries are moved ([<dir>/quarantine]). *)

val hits : t -> int

val misses : t -> int

val quarantined : t -> int
(** Damaged entries encountered (and moved aside) so far. *)

val hit_rate : t -> float
(** Hits over lookups, [0.] before the first lookup. *)

val reset_counters : t -> unit
(** Zeroes {!hits}, {!misses} and {!quarantined} — used to attribute counts
    per bench target. *)
