(** Content-addressed on-disk result cache.

    Entries are keyed by an MD5 of the inputs that determine a result —
    suite configuration, cluster signature, algorithm parameters — plus
    {!version}, a code-version salt bumped whenever the scheduling or
    simulation semantics change, so stale results can never be replayed
    across a semantic change. Values are opaque strings; callers serialize
    (the experiment layer uses ["%h"] hex floats for bit-exact round-trips).

    Writes are atomic (unique temp file in the cache directory + [rename]),
    so a crashed or concurrent run can never expose a half-written entry.
    Reads are corruption-tolerant: every entry embeds a checksum of its
    payload, and any unreadable, truncated or tampered file is treated as a
    miss and deleted. Hit/miss counters are atomics — safe to bump from
    {!Pool} workers. *)

type t

val version : string
(** Code-version salt mixed into every {!key}. Bump on any change that
    invalidates previously cached results. *)

val default_dir : string
(** ["bench_results/.cache"]. *)

val create : ?dir:string -> unit -> t
(** Creates [dir] (and its parent) if needed. *)

val of_env : unit -> t option
(** [None] when [RATS_CACHE] is ["off"] / ["0"]; otherwise a cache in
    [RATS_CACHE_DIR] (default {!default_dir}). *)

val key : string list -> string
(** Stable content hash of the given parts (order-sensitive, injective on
    part lists, salted with {!version}). *)

val find : t -> string -> string option
(** Payload stored under the key, or [None] (counted as a miss) when absent
    or corrupted; corrupted entries are removed. *)

val store : t -> string -> string -> unit
(** [store t key payload] atomically persists the entry. I/O errors are
    swallowed — the cache is an accelerator, never a correctness
    dependency. *)

val path : t -> string -> string
(** On-disk location of a key's entry (exposed for tests and tooling). *)

val hits : t -> int

val misses : t -> int

val hit_rate : t -> float
(** Hits over lookups, [0.] before the first lookup. *)

val reset_counters : t -> unit
(** Zeroes {!hits} and {!misses} — used to attribute counts per bench
    target. *)
