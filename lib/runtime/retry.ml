type error = { message : string; backtrace : string; attempts : int }

type failure =
  | Crashed of error
  | Timed_out of { timeout_s : float; attempts : int }

let failure_to_string = function
  | Crashed e ->
      Printf.sprintf "failed after %d attempt%s: %s" e.attempts
        (if e.attempts = 1 then "" else "s")
        e.message
  | Timed_out { timeout_s; attempts } ->
      Printf.sprintf "timed out (%.3gs) after %d attempt%s" timeout_s attempts
        (if attempts = 1 then "" else "s")

let attempts_of_failure = function
  | Crashed e -> e.attempts
  | Timed_out t -> t.attempts

type policy = {
  retries : int;
  backoff_s : float;
  jitter : float;
  timeout_s : float option;
}

let default = { retries = 0; backoff_s = 0.05; jitter = 0.5; timeout_s = None }

type 'a outcome = { value : ('a, failure) result; attempts : int }

let now_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

(* Deterministic jitter in [0,1): hashed, not drawn, so retry timing never
   depends on a shared RNG touched from several domains. *)
let jitter_unit ~name ~attempt =
  float_of_int (Hashtbl.hash (name, attempt, "jitter") land 0xFFFF) /. 65536.

(* One attempt under a deadline: the task runs on a helper thread while the
   caller polls the monotonic clock. An overdue thread is abandoned, not
   joined — there is no way to kill it in-process — so its eventual result
   is discarded via the [Atomic.t] it alone writes. *)
let attempt_with_timeout ~timeout_s f =
  let slot = Atomic.make None in
  let runner = Thread.create (fun () -> Atomic.set slot (Some (try Ok (f ()) with e when Fatal.recoverable e -> Error (e, Printexc.get_raw_backtrace ())))) () in
  let deadline = now_s () +. timeout_s in
  let rec wait () =
    match Atomic.get slot with
    | Some r ->
        Thread.join runner;
        `Done r
    | None ->
        if now_s () >= deadline then `Timed_out
        else begin
          Thread.delay 0.002;
          wait ()
        end
  in
  wait ()

let run ?(policy = default) ~name f =
  let rec go attempt =
    let result =
      match policy.timeout_s with
      | None -> (
          match f ~attempt with
          | v -> `Done (Ok v)
          | exception e when Fatal.recoverable e ->
              `Done (Error (e, Printexc.get_raw_backtrace ())))
      | Some timeout_s -> attempt_with_timeout ~timeout_s (fun () -> f ~attempt)
    in
    match result with
    | `Done (Ok v) -> { value = Ok v; attempts = attempt }
    | (`Done (Error _) | `Timed_out) as failed -> (
        if attempt <= policy.retries then begin
          let scale = 1. +. (policy.jitter *. jitter_unit ~name ~attempt) in
          let pause =
            policy.backoff_s *. (2. ** float_of_int (attempt - 1)) *. scale
          in
          if pause > 0. then Unix.sleepf pause;
          go (attempt + 1)
        end
        else
          let value =
            match failed with
            | `Timed_out ->
                Error
                  (Timed_out
                     {
                       timeout_s = Option.value policy.timeout_s ~default:0.;
                       attempts = attempt;
                     })
            | `Done (Error (e, bt)) ->
                Error
                  (Crashed
                     {
                       message = Printexc.to_string e;
                       backtrace = Printexc.raw_backtrace_to_string bt;
                       attempts = attempt;
                     })
            | `Done (Ok _) -> assert false
          in
          { value; attempts = attempt })
  in
  go 1
