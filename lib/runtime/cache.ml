type t = { dir : string; hits : int Atomic.t; misses : int Atomic.t }

let version = "rats-runtime-1"

let default_dir = Filename.concat "bench_results" ".cache"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(dir = default_dir) () =
  mkdir_p dir;
  { dir; hits = Atomic.make 0; misses = Atomic.make 0 }

let of_env () =
  match Option.map String.lowercase_ascii (Sys.getenv_opt "RATS_CACHE") with
  | Some ("off" | "0" | "no" | "false") -> None
  | _ ->
      let dir =
        Option.value (Sys.getenv_opt "RATS_CACHE_DIR") ~default:default_dir
      in
      Some (create ~dir ())

(* Length-prefixing each part makes the encoding injective: ["ab"; "c"] and
   ["a"; "bc"] hash differently. *)
let key parts =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf ':';
      Buffer.add_string buf p)
    (version :: parts);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let path t key = Filename.concat t.dir (key ^ ".cache")

(* Entry layout: 32 hex chars (MD5 of the payload), '\n', payload. *)
let read_entry file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      if len < 33 then None
      else begin
        let checksum = really_input_string ic 32 in
        let sep = input_char ic in
        let payload = really_input_string ic (len - 33) in
        if sep = '\n' && Digest.to_hex (Digest.string payload) = checksum then
          Some payload
        else None
      end)

let find t key =
  let file = path t key in
  let entry =
    if Sys.file_exists file then
      match read_entry file with
      | Some _ as e -> e
      | None | (exception _) ->
          (try Sys.remove file with Sys_error _ -> ());
          None
    else None
  in
  (match entry with
  | Some _ -> Atomic.incr t.hits
  | None -> Atomic.incr t.misses);
  entry

let store t key payload =
  try
    mkdir_p t.dir;
    let tmp, oc =
      Filename.open_temp_file ~mode:[ Open_binary ] ~temp_dir:t.dir
        "entry" ".tmp"
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Digest.to_hex (Digest.string payload));
        output_char oc '\n';
        output_string oc payload);
    Sys.rename tmp (path t key)
  with Sys_error _ | Unix.Unix_error _ -> ()

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses

let hit_rate t =
  let h = hits t and m = misses t in
  if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

let reset_counters t =
  Atomic.set t.hits 0;
  Atomic.set t.misses 0
