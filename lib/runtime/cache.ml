module Metrics = Rats_obs.Metrics
module Instr = Rats_obs.Instr

type t = {
  dir : string;
  fault : Fault.t option;
  hits : int Atomic.t;
  misses : int Atomic.t;
  quarantined : int Atomic.t;
}

(* v3: the engine's incremental max-min solver water-fills per connected
   component, shifting fair rates (and thus some makespans) by rounding
   ulps relative to the old whole-set solve. v2: receiver-rank placement
   now falls back to natural order when greedy keeps fewer bytes local. *)
let version = "rats-runtime-3"

let default_dir = Filename.concat "bench_results" ".cache"

let quarantine_subdir = "quarantine"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?fault ?(dir = default_dir) () =
  (* An uncreatable directory (permissions, a file in the way) must not
     kill the run: the cache degrades to a pure miss machine. *)
  (try mkdir_p dir with Sys_error _ | Unix.Unix_error _ -> ());
  {
    dir;
    fault;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    quarantined = Atomic.make 0;
  }

let of_env ?fault () =
  match Option.map String.lowercase_ascii (Sys.getenv_opt "RATS_CACHE") with
  | Some ("off" | "0" | "no" | "false") -> None
  | _ ->
      let dir =
        Option.value (Sys.getenv_opt "RATS_CACHE_DIR") ~default:default_dir
      in
      Some (create ?fault ~dir ())

(* Length-prefixing each part makes the encoding injective: ["ab"; "c"] and
   ["a"; "bc"] hash differently. *)
let key parts =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf ':';
      Buffer.add_string buf p)
    (version :: parts);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let path t key = Filename.concat t.dir (key ^ ".cache")

let quarantine_dir t = Filename.concat t.dir quarantine_subdir

(* Entry layout: 32 hex chars (MD5 of the payload), '\n', payload. *)
let read_entry file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      if len < 33 then None
      else begin
        let checksum = really_input_string ic 32 in
        let sep = input_char ic in
        let payload = really_input_string ic (len - 33) in
        if sep = '\n' && Digest.to_hex (Digest.string payload) = checksum then
          Some payload
        else None
      end)

(* A damaged entry is evidence — of a torn write, bad disk, or injected
   fault — so it is moved aside for post-mortem rather than destroyed; the
   slot becomes writable again either way. *)
let quarantine t file =
  Atomic.incr t.quarantined;
  Metrics.incr Instr.cache_quarantined;
  let moved =
    try
      mkdir_p (quarantine_dir t);
      Sys.rename file
        (Filename.concat (quarantine_dir t) (Filename.basename file));
      true
    with Sys_error _ | Unix.Unix_error _ -> false
  in
  if not moved then try Sys.remove file with Sys_error _ -> ()

let find t key =
  Instr.timed Instr.cache_read_seconds (fun () ->
      let file = path t key in
      let entry =
        if Sys.file_exists file then
          match read_entry file with
          | Some _ as e -> e
          | None | (exception _) ->
              quarantine t file;
              None
        else None
      in
      (match entry with
      | Some _ ->
          Atomic.incr t.hits;
          Metrics.incr Instr.cache_hits
      | None ->
          Atomic.incr t.misses;
          Metrics.incr Instr.cache_misses);
      entry)

let store t key payload =
  Instr.timed Instr.cache_write_seconds @@ fun () ->
  (* Injected write faults: [Corrupt] damages the payload after the
     checksum is taken (a torn write the reader must catch and quarantine);
     [Crash] aborts the write mid-entry like a full disk would. *)
  let checksum = Digest.to_hex (Digest.string payload) in
  let payload_to_write =
    Fault.corrupt_payload t.fault ~site:"cache.write" ~key payload
  in
  let tmp = ref None in
  try
    mkdir_p t.dir;
    let tmp_file, oc =
      Filename.open_temp_file ~mode:[ Open_binary ] ~temp_dir:t.dir
        "entry" ".tmp"
    in
    tmp := Some tmp_file;
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc checksum;
        output_char oc '\n';
        (match t.fault with
        | Some fault when Fault.fires fault Fault.Crash ~site:"cache.write" ~key
          ->
            (* Half the payload lands, then the device fills up. *)
            output_string oc
              (String.sub payload_to_write 0 (String.length payload_to_write / 2));
            raise (Unix.Unix_error (Unix.ENOSPC, "write", tmp_file))
        | _ -> ());
        output_string oc payload_to_write);
    Sys.rename tmp_file (path t key);
    tmp := None
  with Sys_error _ | Unix.Unix_error _ -> (
    (* The cache is an accelerator, never a correctness dependency; a
       failed write must also not leak its temp file. *)
    match !tmp with
    | Some file -> (try Sys.remove file with Sys_error _ -> ())
    | None -> ())

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let quarantined t = Atomic.get t.quarantined

let hit_rate t =
  let h = hits t and m = misses t in
  if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

let reset_counters t =
  Atomic.set t.hits 0;
  Atomic.set t.misses 0;
  Atomic.set t.quarantined 0
