(** Thread-safe progress and throughput reporting.

    Replaces the ad-hoc stderr printing of the experiment runner: one
    reporter is shared by every {!Pool} worker of a suite run, guarded by a
    mutex, and rate-limited so parallel runs do not drown stderr. Reports
    completed/total, configurations per second, an ETA extrapolated from
    current throughput, and the cache-hit rate so far. Fault-tolerance
    counters — results resumed from the journal, configurations that
    failed, retries spent — are tracked separately from completions (a
    failure is never silently counted as done) and appear in the report
    lines only once nonzero, so clean runs print exactly what they always
    did. *)

type t

val create : ?enabled:bool -> label:string -> total:int -> unit -> t
(** [enabled] defaults to [true]; a disabled reporter turns {!step} and
    {!finish} into no-ops so callers never branch. *)

val step :
  ?cache_hit:bool -> ?resumed:bool -> ?failed:bool -> ?retries:int -> t -> unit
(** Record one finished task — [failed] marks it as a failure rather than a
    completion-with-result, [resumed] as a journal replay, [retries] counts
    the extra attempts it needed. Safe to call from any domain. Prints at
    most every half second. *)

val finish : t -> unit
(** Print the summary line (total wall time, throughput, hit rate, fault
    counters when any). *)
