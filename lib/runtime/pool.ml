let default_jobs () =
  match Sys.getenv_opt "RATS_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* One contiguous shard of the index space per worker, drained through an
   atomic cursor. [fetch_and_add] only ever moves cursors forward, so every
   index is claimed exactly once even under concurrent stealing. *)
type shard = { cursor : int Atomic.t; hi : int }

let make_shards n jobs =
  Array.init jobs (fun s ->
      { cursor = Atomic.make (s * n / jobs); hi = (s + 1) * n / jobs })

let rec steal shards =
  let best = ref (-1) and best_remaining = ref 0 in
  Array.iteri
    (fun s shard ->
      let remaining = shard.hi - Atomic.get shard.cursor in
      if remaining > !best_remaining then begin
        best := s;
        best_remaining := remaining
      end)
    shards;
  if !best < 0 then None
  else
    let shard = shards.(!best) in
    let i = Atomic.fetch_and_add shard.cursor 1 in
    if i < shard.hi then Some i else steal shards

let take shards s =
  let shard = shards.(s) in
  let i = Atomic.fetch_and_add shard.cursor 1 in
  if i < shard.hi then Some i else steal shards

let map_array ?jobs f input =
  let n = Array.length input in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let jobs = min jobs n in
  if jobs <= 1 then Array.map f input
  else begin
    let results = Array.make n None in
    let error = Atomic.make None in
    let shards = make_shards n jobs in
    let worker s () =
      let rec loop () =
        if Atomic.get error = None then
          match take shards s with
          | None -> ()
          | Some i ->
              (match f input.(i) with
              | v -> results.(i) <- Some v
              | exception e ->
                  ignore (Atomic.compare_and_set error None (Some e)));
              loop ()
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun s -> Domain.spawn (worker (s + 1))) in
    worker 0 ();
    Array.iter Domain.join domains;
    (match Atomic.get error with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map ?jobs f l = Array.to_list (map_array ?jobs f (Array.of_list l))

let mapi ?jobs f l =
  let input = Array.of_list l in
  Array.to_list (map_array ?jobs (fun (i, x) -> f i x)
                   (Array.mapi (fun i x -> (i, x)) input))
