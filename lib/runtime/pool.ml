module Metrics = Rats_obs.Metrics
module Trace = Rats_obs.Trace
module Instr = Rats_obs.Instr

let default_jobs () =
  match Sys.getenv_opt "RATS_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

type task_error = { index : int; exn : exn; backtrace : string }

type 'a capture = ('a, task_error) result

(* One contiguous shard of the index space per worker, drained through an
   atomic cursor. [fetch_and_add] only ever moves cursors forward, so every
   index is claimed exactly once even under concurrent stealing. *)
type shard = { cursor : int Atomic.t; hi : int }

let make_shards n jobs =
  Array.init jobs (fun s ->
      { cursor = Atomic.make (s * n / jobs); hi = (s + 1) * n / jobs })

let rec steal shards =
  let best = ref (-1) and best_remaining = ref 0 in
  Array.iteri
    (fun s shard ->
      let remaining = shard.hi - Atomic.get shard.cursor in
      if remaining > !best_remaining then begin
        best := s;
        best_remaining := remaining
      end)
    shards;
  if !best < 0 then None
  else
    let shard = shards.(!best) in
    let i = Atomic.fetch_and_add shard.cursor 1 in
    if i < shard.hi then begin
      Metrics.incr Instr.pool_steals;
      Some i
    end
    else steal shards

let take shards s =
  let shard = shards.(s) in
  let i = Atomic.fetch_and_add shard.cursor 1 in
  if i < shard.hi then Some i else steal shards

let capture f i x =
  match f x with
  | v -> Ok v
  | exception exn when Fatal.recoverable exn ->
      Error { index = i; exn; backtrace = Printexc.get_backtrace () }

(* Every task execution, serial or pooled, counts toward the pool-task
   metric and records a busy span on its worker's trace lane. *)
let traced f =
  Metrics.incr Instr.pool_tasks;
  Trace.span ~cat:"pool" "pool:task" f

(* Shared driver. [fail_fast] reproduces the historical [map] contract —
   one raising task makes every worker stop claiming new work and the
   exception is re-raised in the caller; without it every task runs to a
   structured [capture], which is what fault-tolerant sweeps consume. *)
let map_array_capture ?jobs ~fail_fast f input =
  let n = Array.length input in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let jobs = min jobs n in
  if jobs <= 1 then
    (* Serial fallback. Fail-fast callers want the historical contract —
       the exception escapes at the first raising task, later tasks never
       run — so only the capturing mode wraps. *)
    if fail_fast then Array.map (fun x -> Ok (traced (fun () -> f x))) input
    else Array.mapi (fun i x -> traced (fun () -> capture f i x)) input
  else begin
    Metrics.observe_max Instr.pool_workers_max (float_of_int jobs);
    let results = Array.make n None in
    let failed = Atomic.make false in
    let shards = make_shards n jobs in
    let worker s () =
      let rec loop () =
        if not (fail_fast && Atomic.get failed) then
          match take shards s with
          | None -> ()
          | Some i ->
              let r = traced (fun () -> capture f i input.(i)) in
              (match r with
              | Error _ -> Atomic.set failed true
              | Ok _ -> ());
              results.(i) <- Some r;
              loop ()
      in
      Trace.span ~cat:"pool" "pool:worker"
        ~args:(fun () -> [ ("worker", string_of_int s) ])
        loop
    in
    let domains = Array.init (jobs - 1) (fun s -> Domain.spawn (worker (s + 1))) in (* lint: allow R001 — workers claim disjoint [results] slots via the Atomic cursor and the array is read only after every join *)
    worker 0 ();
    Array.iter Domain.join domains;
    (* With [fail_fast] some slots may be unclaimed; represent them as the
       first error so callers never see a hole. Without it every slot is
       filled. *)
    let first_error =
      Array.fold_left
        (fun acc r ->
          match (acc, r) with
          | None, Some (Error _ as e) -> Some e
          | acc, _ -> acc)
        None results
    in
    Array.mapi
      (fun i r ->
        match r with
        | Some r -> r
        | None -> (
            match first_error with
            | Some e -> e
            | None ->
                assert (not fail_fast);
                Error
                  { index = i; exn = Failure "Pool: unclaimed task"; backtrace = "" }))
      results
  end

let map_result ?jobs f l =
  Array.to_list
    (map_array_capture ?jobs ~fail_fast:false f (Array.of_list l))

let map_array ?jobs f input =
  let captured = map_array_capture ?jobs ~fail_fast:true f input in
  (* Raise the first captured error, preserving the historical contract. *)
  (match
     Array.fold_left
       (fun acc r ->
         match (acc, r) with None, Error e -> Some e | acc, _ -> acc)
       None captured
   with
  | Some e -> raise e.exn
  | None -> ());
  Array.map (function Ok v -> v | Error _ -> assert false) captured

let map ?jobs f l = Array.to_list (map_array ?jobs f (Array.of_list l))

let mapi ?jobs f l =
  let input = Array.of_list l in
  Array.to_list (map_array ?jobs (fun (i, x) -> f i x)
                   (Array.mapi (fun i x -> (i, x)) input))
