(** Machine-readable runtime report ([BENCH_runtime.json]).

    The bench harness records one entry per executed target — wall time,
    worker count, cache hits/misses and fault-tolerance counters (failed /
    retried / resumed configurations) attributed to that target — and
    writes a single JSON document at exit, giving future changes a perf and
    reliability trajectory to compare against. JSON is emitted by hand
    (flat schema, no dependency). *)

type entry = {
  label : string;
  wall_s : float;
  jobs : int;
  cache_hits : int;
  cache_misses : int;
  failed : int;
  retried : int;
  resumed : int;
}

type t

val create : scale:string -> jobs:int -> unit -> t

val record :
  t ->
  label:string ->
  wall_s:float ->
  cache_hits:int ->
  cache_misses:int ->
  ?failed:int ->
  ?retried:int ->
  ?resumed:int ->
  unit ->
  unit
(** Entries are reported in recording order; the fault counters default to
    0. *)

val entries : t -> entry list

val write : t -> string -> unit
(** Write the JSON document to the given path (atomically, via temp file +
    rename in the same directory). *)
