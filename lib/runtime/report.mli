(** Machine-readable runtime report ([BENCH_runtime.json]).

    The bench harness records one entry per executed target — wall time,
    worker count, cache hits/misses and fault-tolerance counters (failed /
    retried / resumed configurations) attributed to that target — and
    writes a single JSON document at exit, giving future changes a perf and
    reliability trajectory to compare against. JSON is emitted by hand
    (flat schema, no dependency) and read back with {!Rats_obs.Json}.

    Documents carry a [schema_version] field since version 2 (which also
    embeds the {!Rats_obs.Metrics} registry snapshot under ["metrics"]);
    readers treat its absence as version 1. *)

val schema_version : int
(** The version written by {!write}. *)

type entry = {
  label : string;
  wall_s : float;
  jobs : int;
  cache_hits : int;
  cache_misses : int;
  failed : int;
  retried : int;
  resumed : int;
}

type t

val create : scale:string -> jobs:int -> unit -> t

val record :
  t ->
  label:string ->
  wall_s:float ->
  cache_hits:int ->
  cache_misses:int ->
  ?failed:int ->
  ?retried:int ->
  ?resumed:int ->
  unit ->
  unit
(** Entries are reported in recording order; the fault counters default to
    0. *)

val entries : t -> entry list

val write : t -> string -> unit
(** Write the JSON document to the given path (atomically, via temp file +
    rename in the same directory). *)

val load : string -> (Rats_obs.Json.t, string) result
(** Parse a previously written report. Works on any schema version — use
    {!version_of} to discriminate. *)

val version_of : Rats_obs.Json.t -> int
(** The document's [schema_version]; documents from before the field
    existed report 1. *)
