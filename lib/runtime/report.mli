(** Machine-readable runtime report ([BENCH_runtime.json]).

    The bench harness records one entry per executed target — wall time,
    worker count, cache hits/misses attributed to that target — and writes a
    single JSON document at exit, giving future changes a perf trajectory to
    compare against. JSON is emitted by hand (flat schema, no dependency). *)

type entry = {
  label : string;
  wall_s : float;
  jobs : int;
  cache_hits : int;
  cache_misses : int;
}

type t

val create : scale:string -> jobs:int -> unit -> t

val record :
  t -> label:string -> wall_s:float -> cache_hits:int -> cache_misses:int ->
  unit
(** Entries are reported in recording order. *)

val entries : t -> entry list

val write : t -> string -> unit
(** Write the JSON document to the given path (atomically, via temp file +
    rename in the same directory). *)
