module Json = Rats_obs.Json

(* Version history:
   1 — implicit (no [schema_version] field): targets + cache + faults.
   2 — adds [schema_version] and the embedded metrics registry snapshot. *)
let schema_version = 2

type entry = {
  label : string;
  wall_s : float;
  jobs : int;
  cache_hits : int;
  cache_misses : int;
  failed : int;
  retried : int;
  resumed : int;
}

type t = { scale : string; jobs : int; mutable entries : entry list }

let create ~scale ~jobs () = { scale; jobs; entries = [] }

let record t ~label ~wall_s ~cache_hits ~cache_misses ?(failed = 0)
    ?(retried = 0) ?(resumed = 0) () =
  t.entries <-
    { label; wall_s; jobs = t.jobs; cache_hits; cache_misses; failed; retried; resumed }
    :: t.entries

let entries t = List.rev t.entries

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let write t path =
  let entries = entries t in
  let total_wall = List.fold_left (fun a e -> a +. e.wall_s) 0. entries in
  let sum f = List.fold_left (fun a e -> a + f e) 0 entries in
  let hits = sum (fun e -> e.cache_hits) in
  let misses = sum (fun e -> e.cache_misses) in
  let failed = sum (fun e -> e.failed) in
  let retried = sum (fun e -> e.retried) in
  let resumed = sum (fun e -> e.resumed) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"schema_version\": %d,\n" schema_version);
  Buffer.add_string buf
    (Printf.sprintf "  \"scale\": %s,\n  \"jobs\": %d,\n" (json_string t.scale)
       t.jobs);
  Buffer.add_string buf
    (Printf.sprintf "  \"total_wall_s\": %.3f,\n" total_wall);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"cache\": { \"hits\": %d, \"misses\": %d, \"hit_rate\": %.4f },\n"
       hits misses
       (if hits + misses = 0 then 0.
        else float_of_int hits /. float_of_int (hits + misses)));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"faults\": { \"failed\": %d, \"retried\": %d, \"resumed\": %d },\n"
       failed retried resumed);
  Buffer.add_string buf "  \"targets\": [\n";
  List.iteri
    (fun i e ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"label\": %s, \"wall_s\": %.3f, \"jobs\": %d, \
            \"cache_hits\": %d, \"cache_misses\": %d, \"failed\": %d, \
            \"retried\": %d, \"resumed\": %d }%s\n"
           (json_string e.label) e.wall_s e.jobs e.cache_hits e.cache_misses
           e.failed e.retried e.resumed
           (if i = List.length entries - 1 then "" else ",")))
    entries;
  Buffer.add_string buf "  ],\n";
  (* The process-wide metrics registry snapshot — the same document the
     [--metrics] flag writes standalone — so one file carries both the perf
     trajectory and the run's internal counters. *)
  Buffer.add_string buf
    (Printf.sprintf "  \"metrics\": %s\n"
       (Json.to_string (Rats_obs.Metrics.snapshot ())));
  Buffer.add_string buf "}\n";
  let dir = Filename.dirname path in
  let tmp, oc =
    Filename.open_temp_file ~mode:[ Open_binary ] ~temp_dir:dir "report" ".tmp"
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Buffer.output_buffer oc buf);
  Sys.rename tmp path

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents -> Json.parse contents

(* Reports written before [schema_version] existed are version 1. *)
let version_of json =
  match Json.member "schema_version" json with
  | Some v -> ( match Json.to_int v with Some n -> n | None -> 1)
  | None -> 1
