(** Classify exceptions the runtime may absorb.

    The retry loop and the worker pool turn a raising task into a
    structured failure (captured, retried, reported). That contract must
    not extend to conditions that indicate the whole process is doomed:
    absorbing [Out_of_memory] or [Stack_overflow] as a "task failure"
    retries work the process cannot complete, and absorbing [Sys.Break]
    eats the user's Ctrl-C. Handlers in [lib/runtime] therefore guard
    their catch-alls with [when Fatal.recoverable e] — the lint rule H001
    flags any that don't — so fatal exceptions propagate and kill the
    run. *)

val recoverable : exn -> bool
(** [false] exactly for [Out_of_memory], [Stack_overflow] and
    [Sys.Break]. *)
