module Metrics = Rats_obs.Metrics
module Trace = Rats_obs.Trace
module Instr = Rats_obs.Instr

type stats = {
  failed : int Atomic.t;
  retried : int Atomic.t;
  resumed : int Atomic.t;
}

type t = {
  jobs : int;
  cache : Cache.t option;
  fault : Fault.t option;
  retry : Retry.policy;
  strict : bool;
  journal : Journal.t option;
  stats : stats;
}

exception Task_failed of string * Retry.failure

let () =
  Printexc.register_printer (function
    | Task_failed (name, failure) ->
        Some
          (Printf.sprintf "Exec.Task_failed(%s: %s)" name
             (Retry.failure_to_string failure))
    | _ -> None)

let fresh_stats () =
  { failed = Atomic.make 0; retried = Atomic.make 0; resumed = Atomic.make 0 }

let make ?jobs ?cache ?fault ?(retry = Retry.default) ?(strict = false)
    ?journal () =
  {
    jobs = (match jobs with Some j -> max 1 j | None -> Pool.default_jobs ());
    cache;
    fault;
    retry;
    strict;
    journal;
    stats = fresh_stats ();
  }

let of_env ?jobs ?retry ?strict ?journal () =
  let fault = Fault.of_env () in
  make ?jobs ?cache:(Cache.of_env ?fault ()) ?fault ?retry ?strict ?journal ()

type source = Computed | From_cache | From_journal

type 'a outcome = {
  source : source;
  attempts : int;
  value : ('a, Retry.failure) result;
}

let site = "worker"

let run_task t ~name f =
  let task ~attempt =
    (* The attempt number is part of the fault key: an injected crash is a
       fresh draw on retry, so retry-until-success is testable. *)
    let key = Printf.sprintf "%s#%d" name attempt in
    Fault.crash_point t.fault ~site ~key;
    Fault.delay_point t.fault ~site ~key;
    f ()
  in
  let Retry.{ value; attempts } = Retry.run ~policy:t.retry ~name task in
  if attempts > 1 then begin
    ignore (Atomic.fetch_and_add t.stats.retried (attempts - 1));
    Metrics.add Instr.exec_retried (attempts - 1);
    Trace.instant ~cat:"fault"
      ~args:(fun () ->
        [ ("task", name); ("attempts", string_of_int attempts) ])
      "exec:retry"
  end;
  (match value with
  | Error failure ->
      Atomic.incr t.stats.failed;
      Metrics.incr Instr.exec_failed;
      let kind =
        match failure with
        | Retry.Timed_out _ ->
            Metrics.incr Instr.exec_timeouts;
            "exec:timeout"
        | Retry.Crashed _ -> "exec:failed"
      in
      Trace.instant ~cat:"fault"
        ~args:(fun () ->
          [ ("task", name); ("failure", Retry.failure_to_string failure) ])
        kind;
      if t.strict then raise (Task_failed (name, failure))
  | Ok _ -> ());
  { source = Computed; attempts; value }

let keyed t ~name ~key ~encode ~decode f =
  let cached =
    match t.cache with
    | None -> None
    | Some c -> Option.bind (Cache.find c key) decode
  in
  match cached with
  | Some v -> { source = From_cache; attempts = 1; value = Ok v }
  | None -> (
      let journaled =
        match t.journal with
        | None -> None
        | Some j -> Option.bind (Journal.find j key) decode
      in
      match journaled with
      | Some v ->
          Atomic.incr t.stats.resumed;
          Metrics.incr Instr.exec_resumed;
          Trace.instant ~cat:"fault"
            ~args:(fun () -> [ ("task", name) ])
            "exec:resumed";
          (* Promote into the cache so the next run hits the fast path. *)
          Option.iter (fun c -> Cache.store c key (encode v)) t.cache;
          { source = From_journal; attempts = 1; value = Ok v }
      | None ->
          let outcome = run_task t ~name f in
          (match outcome.value with
          | Ok v ->
              let payload = encode v in
              Option.iter (fun c -> Cache.store c key payload) t.cache;
              Option.iter (fun j -> Journal.append j ~key payload) t.journal
          | Error _ -> ());
          outcome)

let map t ~name ~f l =
  if t.strict then
    (* Fail fast: [run_task] raises [Task_failed]; the pool stops claiming
       work and re-raises it here. *)
    Pool.map ~jobs:t.jobs
      (fun x ->
        match (run_task t ~name:(name x) (fun () -> f x)).value with
        | Ok v -> Ok v
        | Error failure -> Error (name x, failure))
      l
  else
    let captures =
      Pool.map_result ~jobs:t.jobs
        (fun x -> (run_task t ~name:(name x) (fun () -> f x)).value)
        l
    in
    List.map2
      (fun x capture ->
        match capture with
        | Ok (Ok v) -> Ok v
        | Ok (Error failure) -> Error (name x, failure)
        | Error (e : Pool.task_error) ->
            (* An exception that escaped the retry wrapper entirely — a bug
               rather than a task fault, but still one slot, not a lost
               sweep. *)
            Error
              ( name x,
                Retry.Crashed
                  {
                    message = Printexc.to_string e.Pool.exn;
                    backtrace = e.Pool.backtrace;
                    attempts = 1;
                  } ))
      l captures

let map_outcome t ~run l =
  if t.strict then
    (* [run] is built from [run_task]/[keyed], which raise [Task_failed] in
       strict mode; the pool stops claiming work and re-raises here. *)
    Pool.map ~jobs:t.jobs run l
  else
    List.map
      (function
        | Ok o -> o
        | Error (e : Pool.task_error) ->
            (* An exception that escaped the retry wrapper entirely — a bug
               rather than a task fault, but still one slot, not a lost
               sweep. *)
            Atomic.incr t.stats.failed;
            Metrics.incr Instr.exec_failed;
            {
              source = Computed;
              attempts = 1;
              value =
                Error
                  (Retry.Crashed
                     {
                       message = Printexc.to_string e.Pool.exn;
                       backtrace = e.Pool.backtrace;
                       attempts = 1;
                     });
            })
      (Pool.map_result ~jobs:t.jobs run l)

let computed_cleanly t f =
  let before = Atomic.get t.stats.failed in
  let v = f () in
  (v, Atomic.get t.stats.failed = before)

let oks l = List.filter_map (function Ok v -> Some v | Error _ -> None) l

let failures l =
  List.filter_map (function Ok _ -> None | Error e -> Some e) l
