(** Bounded retries with exponential backoff, and per-task timeouts.

    A raising task is retried up to [retries] extra times with exponential
    backoff and deterministic jitter (hashed from the task name and attempt
    — no shared RNG, so parallel sweeps stay reproducible). When a
    [timeout_s] is set, each attempt runs on a helper thread and is
    abandoned once the monotonic clock passes the deadline, turning a hung
    configuration into a {!Timed_out} failure instead of a hung sweep; the
    abandoned thread keeps running until its computation finishes (an
    in-process runtime cannot kill it) but the sweep no longer waits for it.
    With [timeout_s = None] the task runs inline on the calling domain —
    no thread, no overhead, behavior identical to a plain call. *)

type error = {
  message : string;  (** [Printexc.to_string] of the last exception. *)
  backtrace : string;
  attempts : int;  (** Total attempts made, [>= 1]. *)
}

type failure =
  | Crashed of error
  | Timed_out of { timeout_s : float; attempts : int }

val failure_to_string : failure -> string

val attempts_of_failure : failure -> int

type policy = {
  retries : int;  (** Extra attempts after the first; 0 = fail fast. *)
  backoff_s : float;
      (** Base backoff; attempt [k] waits [backoff_s * 2^(k-1)], scaled by
          jitter. *)
  jitter : float;  (** Multiplicative jitter amplitude in [0,1]. *)
  timeout_s : float option;  (** Per-attempt deadline; [None] = no limit. *)
}

val default : policy
(** No retries, no timeout, 50 ms base backoff with 50 % jitter — the
    happy-path policy; {!run} with it is an ordinary call. *)

type 'a outcome = { value : ('a, failure) result; attempts : int }

val run : ?policy:policy -> name:string -> (attempt:int -> 'a) -> 'a outcome
(** [run ~policy ~name f] calls [f ~attempt:1], retrying on exception or
    timeout. [name] seeds the backoff jitter and labels failures. The
    attempt number lets callers vary fault-injection keys so a retried task
    is a fresh draw. *)
